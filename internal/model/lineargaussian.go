package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ken/internal/gauss"
	"ken/internal/mat"
)

// LinearGaussian is the paper's workhorse model (Example 3.3, §5.1): a
// time-varying multivariate Gaussian over a clique of attributes. The
// attribute vector is decomposed into a seasonal (diurnal) mean profile
// plus a residual that follows a VAR(1) process with correlated Gaussian
// innovations:
//
//	x(t) = profile[t mod period] + r(t),   r(t+1) = A·r(t) + w,  w ~ N(0, Q)
//
// The model state is the Gaussian belief over the current residual; Step
// pushes it through the transition (inflating uncertainty by Q), Condition
// collapses it on reported values via Gaussian conditioning. Because the
// transition and conditioning are deterministic given the same inputs, two
// clones remain in lock-step — the replicated-model invariant of Ken.
type LinearGaussian struct {
	n       int
	a       *mat.Dense    // shared, immutable after fit
	aT      *mat.Dense    // a transposed; shared, immutable after fit
	q       *mat.Dense    // shared, immutable after fit
	qChol   *mat.Cholesky // lazily built, shared
	profile [][]float64   // period × n seasonal means; shared, immutable
	period  int
	clock   int
	state   *gauss.Gaussian // belief over the residual r(clock)

	// Per-instance scratch for the in-place Step/Condition path. Never
	// shared between clones: replicas mutate their own scratch while
	// updating, and sharing would break replica independence.
	ws      *gauss.Workspace
	idxBuf  []int
	valsBuf []float64
}

var (
	_ Model                  = (*LinearGaussian)(nil)
	_ MeanWriter             = (*LinearGaussian)(nil)
	_ Sampler                = (*LinearGaussian)(nil)
	_ IncrementalConditioner = (*LinearGaussian)(nil)
)

// FitConfig controls LinearGaussian learning.
type FitConfig struct {
	// Period is the number of steps per seasonal cycle (24 for hourly
	// samples with diurnal behaviour). Zero or one disables seasonality.
	// The seasonal profile is only used when the training data covers at
	// least two full cycles.
	Period int
	// Ridge is the relative ridge regularisation for the VAR solve and the
	// innovation covariance. Defaults to 1e-6 when zero.
	Ridge float64
	// DiagonalA restricts the transition matrix to a diagonal (independent
	// AR(1) per attribute). Spatial correlation then only enters through
	// the innovation covariance Q. This is the paper's implicit structure
	// for small cliques and an ablation point for larger ones.
	DiagonalA bool
}

// FitLinearGaussian learns a LinearGaussian from training rows
// (data[t][i] = attribute i at step t). The returned model's clock is at
// the last training row with a point-mass state on it, so the first Step
// predicts the first post-training step.
func FitLinearGaussian(data [][]float64, cfg FitConfig) (*LinearGaussian, error) {
	T := len(data)
	if T < 4 {
		return nil, fmt.Errorf("model: FitLinearGaussian needs >= 4 rows, got %d", T)
	}
	n := len(data[0])
	if n == 0 {
		return nil, fmt.Errorf("model: training rows are empty")
	}
	for t, row := range data {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d attributes, want %d", ErrDim, t, len(row), n)
		}
	}
	ridge := cfg.Ridge
	if ridge <= 0 {
		ridge = 1e-6
	}

	profile, period := seasonalProfile(data, cfg.Period)

	// Residuals around the seasonal profile.
	res := make([][]float64, T)
	for t, row := range data {
		p := profile[t%period]
		r := make([]float64, n)
		for i := range row {
			r[i] = row[i] - p[i]
		}
		res[t] = r
	}

	a, err := fitVAR(res, ridge, cfg.DiagonalA)
	if err != nil {
		return nil, err
	}

	// Innovation covariance from one-step fit errors.
	errs := make([][]float64, 0, T-1)
	for t := 0; t < T-1; t++ {
		pred, err := a.MulVec(res[t])
		if err != nil {
			return nil, err
		}
		errs = append(errs, mat.SubVec(res[t+1], pred))
	}
	mu, err := gauss.EstimateMean(errs)
	if err != nil {
		return nil, err
	}
	q, err := gauss.EstimateCov(errs, mu, ridge)
	if err != nil {
		return nil, err
	}

	state, err := gauss.New(res[T-1], mat.NewDense(n, n))
	if err != nil {
		return nil, err
	}
	return &LinearGaussian{
		n:       n,
		a:       a,
		aT:      a.T(),
		q:       q,
		profile: profile,
		period:  period,
		clock:   T - 1,
		state:   state,
		ws:      gauss.NewWorkspace(n),
		idxBuf:  make([]int, 0, n),
		valsBuf: make([]float64, 0, n),
	}, nil
}

// seasonalProfile returns the per-phase mean rows and the effective period.
// When the requested period is unusable (shorter than 2 or not covered at
// least twice by the data) it degrades to a single global-mean phase.
func seasonalProfile(data [][]float64, period int) ([][]float64, int) {
	T, n := len(data), len(data[0])
	if period < 2 || T < 2*period {
		mean := make([]float64, n)
		for _, row := range data {
			for i, v := range row {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(T)
		}
		return [][]float64{mean}, 1
	}
	profile := make([][]float64, period)
	counts := make([]int, period)
	for p := range profile {
		profile[p] = make([]float64, n)
	}
	for t, row := range data {
		p := t % period
		counts[p]++
		for i, v := range row {
			profile[p][i] += v
		}
	}
	for p := range profile {
		for i := range profile[p] {
			profile[p][i] /= float64(counts[p])
		}
	}
	return profile, period
}

// fitVAR solves the ridge least-squares problem R1 ≈ R0·Aᵀ for the
// transition matrix A over residual rows.
func fitVAR(res [][]float64, ridge float64, diagonal bool) (*mat.Dense, error) {
	T := len(res) - 1
	n := len(res[0])
	if diagonal {
		a := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			var sxx, sxy float64
			for t := 0; t < T; t++ {
				sxx += res[t][i] * res[t][i]
				sxy += res[t][i] * res[t+1][i]
			}
			den := sxx + ridge*(1+sxx/float64(T))
			if den == 0 {
				a.Set(i, i, 0)
			} else {
				a.Set(i, i, sxy/den)
			}
		}
		return a, nil
	}
	// Normal equations: (R0ᵀR0 + λI)·Aᵀ = R0ᵀR1.
	xtx := mat.NewDense(n, n)
	xty := mat.NewDense(n, n)
	for t := 0; t < T; t++ {
		for i := 0; i < n; i++ {
			xi := res[t][i]
			if xi == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				xtx.Add(i, j, xi*res[t][j])
				xty.Add(i, j, xi*res[t+1][j])
			}
		}
	}
	lambda := ridge * (traceOf(xtx)/float64(n) + 1)
	for i := 0; i < n; i++ {
		xtx.Add(i, i, lambda)
	}
	ch, err := mat.NewCholesky(xtx)
	if err != nil {
		return nil, fmt.Errorf("model: VAR normal equations: %w", err)
	}
	at, err := ch.Solve(xty)
	if err != nil {
		return nil, err
	}
	return at.T(), nil
}

func traceOf(m *mat.Dense) float64 {
	s := 0.0
	for i := 0; i < m.Rows(); i++ {
		s += m.At(i, i)
	}
	return s
}

// Dim implements Model.
func (lg *LinearGaussian) Dim() int { return lg.n }

// Clock returns the model's current time index (for testing phase math).
func (lg *LinearGaussian) Clock() int { return lg.clock }

// Step implements Model: clock++, μ ← A·μ, Σ ← A·Σ·Aᵀ + Q. The update runs
// in place against the instance workspace; results are bit-identical with
// the allocating formulation (see gauss.Gaussian.Predict).
//
//ken:hotpath one predict per epoch; steady state allocates nothing
func (lg *LinearGaussian) Step() {
	if err := lg.state.Predict(lg.a, lg.aT, lg.q, lg.ws); err != nil {
		panic(err) // dimensions fixed at construction
	}
	lg.clock++
}

// phaseMean returns the seasonal profile row for the current clock.
func (lg *LinearGaussian) phaseMean() []float64 {
	return lg.profile[lg.clock%lg.period]
}

// Mean implements Model.
func (lg *LinearGaussian) Mean() []float64 {
	return mat.AddVec(lg.state.Mean(), lg.phaseMean())
}

// MeanInto implements MeanWriter: Mean without the allocation. dst must
// have length Dim().
//
//ken:hotpath writes the mean into the caller's buffer
func (lg *LinearGaussian) MeanInto(dst []float64) error {
	if err := lg.state.MeanInto(dst); err != nil {
		return err
	}
	p := lg.phaseMean()
	for i := range dst {
		dst[i] += p[i]
	}
	return nil
}

// Cov returns the covariance of the current belief (residual scale; the
// seasonal shift does not affect it).
func (lg *LinearGaussian) Cov() *mat.Dense { return lg.state.Cov() }

// toResidual converts absolute observations to residual space.
func (lg *LinearGaussian) toResidual(obs map[int]float64) (map[int]float64, error) {
	if err := checkObs(obs, lg.n); err != nil {
		return nil, err
	}
	p := lg.phaseMean()
	out := make(map[int]float64, len(obs))
	for i, v := range obs {
		out[i] = v - p[i]
	}
	return out, nil
}

// MeanGiven implements Model using Gaussian conditioning without mutation.
func (lg *LinearGaussian) MeanGiven(obs map[int]float64) ([]float64, error) {
	robs, err := lg.toResidual(obs)
	if err != nil {
		return nil, err
	}
	cm, err := lg.state.ConditionalMean(robs)
	if err != nil {
		return nil, err
	}
	return mat.AddVec(cm, lg.phaseMean()), nil
}

// Generation returns the model's state mutation counter (bumped by Step
// and Condition). Cached artifacts derived from the belief state — the
// incremental conditioning factorization below, sink-side query plans —
// key on it for invalidation.
func (lg *LinearGaussian) Generation() uint64 { return lg.ws.Generation() }

// CondReset implements IncrementalConditioner: begin a new hypothetical
// observed set against the current belief state, rebinding the workspace's
// cached factorization to the current generation.
//
//ken:hotpath resets the evaluator within the instance workspace
func (lg *LinearGaussian) CondReset() error {
	return lg.state.CondReset(lg.ws)
}

// CondAdd implements IncrementalConditioner. The absolute value is
// converted to residual space (v − seasonal mean), mirroring Condition;
// the cached observed-block factor grows by one bordered row. A
// degenerate pivot (zero-variance attribute) errors with the evaluator
// unchanged — the caller falls back to the from-scratch search, whose
// jitter ladder absorbs such blocks.
//
//ken:hotpath grows the cached factorization in place
func (lg *LinearGaussian) CondAdd(i int, v float64) error {
	if i < 0 || i >= lg.n {
		return fmt.Errorf("%w: observation index %d out of range %d", ErrDim, i, lg.n)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("model: observation %d is not finite: %v", i, v)
	}
	return lg.state.CondAdd(i, v-lg.phaseMean()[i], lg.ws)
}

// CondMeanInto implements IncrementalConditioner: the same answer as
// MeanGiven on the equivalent map (to numerical tolerance), without
// mutating the model and without refactorizing.
//
//ken:hotpath answers from the cached factorization
func (lg *LinearGaussian) CondMeanInto(dst []float64) error {
	if err := lg.state.CondMeanInto(dst, lg.ws); err != nil {
		return err
	}
	p := lg.phaseMean()
	for i := range dst {
		dst[i] += p[i]
	}
	return nil
}

// Condition implements Model: collapse the belief on the observed values.
// Observed attributes become exact (zero variance) until the next Step
// re-inflates uncertainty through Q. The update runs in place against the
// instance scratch; results are bit-identical with the old
// condition-then-re-embed sequence (see gauss.Gaussian.ObserveExact).
//
//ken:hotpath conditioning reuses the instance scratch buffers
func (lg *LinearGaussian) Condition(obs map[int]float64) error {
	if len(obs) == 0 {
		return nil
	}
	if err := checkObs(obs, lg.n); err != nil {
		return err
	}
	idx := lg.idxBuf[:0]
	for i := range obs {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	p := lg.phaseMean()
	vals := lg.valsBuf[:0]
	for _, i := range idx {
		vals = append(vals, obs[i]-p[i])
	}
	return lg.state.ObserveExact(idx, vals, lg.ws)
}

// Clone implements Model. The learned parameters (A, Q, profile) are
// immutable after fitting and shared between clones; the belief state and
// the update scratch are per-instance — a shared workspace would let one
// replica's update corrupt the other's.
func (lg *LinearGaussian) Clone() Model {
	cp := *lg
	cp.state = lg.state.Clone()
	cp.ws = gauss.NewWorkspace(lg.n)
	cp.idxBuf = make([]int, 0, lg.n)
	cp.valsBuf = make([]float64, 0, lg.n)
	return &cp
}

// SampleState implements Sampler: draw the residual from the belief and add
// the seasonal mean. A point-mass belief (zero covariance) returns the mean.
func (lg *LinearGaussian) SampleState(rng *rand.Rand) ([]float64, error) {
	if lg.state.Cov().MaxAbs() == 0 {
		return lg.Mean(), nil
	}
	r, err := lg.state.Sample(rng)
	if err != nil {
		return nil, err
	}
	return mat.AddVec(r, lg.phaseMean()), nil
}

// SampleNext implements Sampler: given ground truth x at the model's
// current clock, draw x(t+1) from the transition. Call before Step when
// co-simulating truth and belief.
func (lg *LinearGaussian) SampleNext(x []float64, rng *rand.Rand) ([]float64, error) {
	if len(x) != lg.n {
		return nil, fmt.Errorf("%w: sample input %d, model %d", ErrDim, len(x), lg.n)
	}
	if lg.qChol == nil {
		ch, err := mat.NewCholesky(lg.q)
		if err != nil {
			return nil, fmt.Errorf("model: innovation covariance not PD: %w", err)
		}
		lg.qChol = ch
	}
	r := mat.SubVec(x, lg.phaseMean())
	ar, err := lg.a.MulVec(r)
	if err != nil {
		return nil, err
	}
	z := make([]float64, lg.n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	w, err := lg.qChol.MulLVec(z)
	if err != nil {
		return nil, err
	}
	next := lg.profile[(lg.clock+1)%lg.period]
	out := make([]float64, lg.n)
	for i := range out {
		out[i] = next[i] + ar[i] + w[i]
	}
	return out, nil
}
