package model

import (
	"fmt"
	"math"
	"math/rand"
)

// Constant is the paper's Example 3.1: the prediction for every attribute
// is the last value incorporated into the model. As a generative model it
// is a random walk whose per-step innovation standard deviation is learned
// from training data (needed by Monte Carlo reduction-factor estimation).
type Constant struct {
	mean   []float64
	stepSD []float64
}

var (
	_ Model   = (*Constant)(nil)
	_ Sampler = (*Constant)(nil)
)

// NewConstant creates a constant model with the given initial values and
// per-attribute one-step innovation standard deviations.
func NewConstant(initial, stepSD []float64) (*Constant, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("model: constant model needs at least one attribute")
	}
	if len(stepSD) != len(initial) {
		return nil, fmt.Errorf("%w: initial %d, stepSD %d", ErrDim, len(initial), len(stepSD))
	}
	c := &Constant{mean: make([]float64, len(initial)), stepSD: make([]float64, len(stepSD))}
	copy(c.mean, initial)
	copy(c.stepSD, stepSD)
	return c, nil
}

// FitConstant learns a constant model from training rows: the initial value
// is the last row, the innovation SD the standard deviation of one-step
// differences.
func FitConstant(data [][]float64) (*Constant, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("model: FitConstant needs >= 2 rows, got %d", len(data))
	}
	n := len(data[0])
	sd := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum, sumSq float64
		for t := 1; t < len(data); t++ {
			d := data[t][i] - data[t-1][i]
			sum += d
			sumSq += d * d
		}
		m := sum / float64(len(data)-1)
		sd[i] = sqrtNonNeg(sumSq/float64(len(data)-1) - m*m)
	}
	return NewConstant(data[len(data)-1], sd)
}

func sqrtNonNeg(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Dim implements Model.
func (c *Constant) Dim() int { return len(c.mean) }

// Step implements Model: the constant model's prediction does not change.
func (c *Constant) Step() {}

// Mean implements Model.
func (c *Constant) Mean() []float64 {
	out := make([]float64, len(c.mean))
	copy(out, c.mean)
	return out
}

// MeanGiven implements Model: observed attributes take their observed
// values; the constant model carries no cross-attribute correlation, so
// other predictions are unchanged.
func (c *Constant) MeanGiven(obs map[int]float64) ([]float64, error) {
	if err := checkObs(obs, c.Dim()); err != nil {
		return nil, err
	}
	out := c.Mean()
	for i, v := range obs {
		out[i] = v
	}
	return out, nil
}

// Condition implements Model.
func (c *Constant) Condition(obs map[int]float64) error {
	if err := checkObs(obs, c.Dim()); err != nil {
		return err
	}
	for i, v := range obs {
		c.mean[i] = v
	}
	return nil
}

// Clone implements Model.
func (c *Constant) Clone() Model {
	out, err := NewConstant(c.mean, c.stepSD)
	if err != nil {
		panic(err) // invariant: an existing model is always valid
	}
	return out
}

// SampleState implements Sampler: the state is a point mass at the mean.
func (c *Constant) SampleState(rng *rand.Rand) ([]float64, error) {
	return c.Mean(), nil
}

// SampleNext implements Sampler: random-walk innovation.
func (c *Constant) SampleNext(x []float64, rng *rand.Rand) ([]float64, error) {
	if len(x) != c.Dim() {
		return nil, fmt.Errorf("%w: sample input %d, model %d", ErrDim, len(x), c.Dim())
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + c.stepSD[i]*rng.NormFloat64()
	}
	return out, nil
}
