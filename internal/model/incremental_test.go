package model

import (
	"math"
	"math/rand"
	"testing"

	"ken/internal/trace"
)

// gardenCols extracts the first n temperature columns of the garden trace.
func gardenCols(t *testing.T, steps, n int) [][]float64 {
	t.Helper()
	tr, err := trace.GenerateGarden(31, steps)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r[:n]...)
	}
	return out
}

// hideIC wraps a model so only the plain Model interface is visible,
// forcing ChooseReportGreedy onto the from-scratch MeanGiven path.
type hideIC struct{ Model }

// The greedy search through the cached incremental evaluator must choose
// the same report sets as the from-scratch reference path on real replayed
// data — the selection rule is identical and the evaluation paths agree to
// ~1e-12, far below any realistic violation-ratio tie.
func TestChooseReportGreedyIncrementalMatchesScratch(t *testing.T) {
	const n = 6
	data := gardenCols(t, 160, n)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.35
	}
	reports, nonEmpty := 0, 0
	for step := 100; step < 160; step++ {
		lg.Step()
		truth := data[step]
		fast, err := ChooseReportGreedy(lg, truth, eps)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ChooseReportGreedy(hideIC{lg}, truth, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("step %d: incremental chose %v, scratch chose %v", step, fast, slow)
		}
		for i, v := range fast {
			if sv, ok := slow[i]; !ok || sv != v {
				t.Fatalf("step %d: incremental chose %v, scratch chose %v", step, fast, slow)
			}
		}
		if err := lg.Condition(fast); err != nil {
			t.Fatal(err)
		}
		reports++
		if len(fast) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatalf("no report across %d epochs — the search was never exercised; tighten eps", reports)
	}
}

// The model-level evaluator must match MeanGiven for the same growing
// observed set without mutating the model.
func TestLinearGaussianCondEvaluatorMatchesMeanGiven(t *testing.T) {
	const n = 5
	data := gardenCols(t, 120, n)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	lg.Step()
	meanBefore := lg.Mean()
	if err := lg.CondReset(); err != nil {
		t.Fatal(err)
	}
	obs := map[int]float64{}
	dst := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for _, i := range []int{3, 0, 4} {
		v := meanBefore[i] + rng.NormFloat64()
		if err := lg.CondAdd(i, v); err != nil {
			t.Fatal(err)
		}
		obs[i] = v
		if err := lg.CondMeanInto(dst); err != nil {
			t.Fatal(err)
		}
		want, err := lg.MeanGiven(obs)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if math.Abs(dst[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
				t.Fatalf("CondMeanInto[%d] = %v, MeanGiven = %v", k, dst[k], want[k])
			}
		}
	}
	after := lg.Mean()
	for i := range after {
		if after[i] != meanBefore[i] {
			t.Fatal("evaluator mutated the model state")
		}
	}
}

// Generation must tick on Step and Condition (state mutations) and stay
// put across read-only evaluations; a mutation mid-evaluation makes the
// evaluator refuse rather than answer stale, and the greedy search still
// succeeds by re-seeding.
func TestLinearGaussianGenerationAndStaleness(t *testing.T) {
	const n = 4
	data := gardenCols(t, 120, n)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	g0 := lg.Generation()
	lg.Step()
	if lg.Generation() != g0+1 {
		t.Fatalf("generation after Step = %d, want %d", lg.Generation(), g0+1)
	}
	if err := lg.Condition(map[int]float64{1: 20}); err != nil {
		t.Fatal(err)
	}
	if lg.Generation() != g0+2 {
		t.Fatalf("generation after Condition = %d, want %d", lg.Generation(), g0+2)
	}
	if _, err := lg.MeanGiven(map[int]float64{0: 19}); err != nil {
		t.Fatal(err)
	}
	if err := lg.CondReset(); err != nil {
		t.Fatal(err)
	}
	if err := lg.CondAdd(0, 19); err != nil {
		t.Fatal(err)
	}
	if lg.Generation() != g0+2 {
		t.Fatalf("generation after read-only evaluation = %d, want %d", lg.Generation(), g0+2)
	}
	// Mutate mid-evaluation: the evaluator must go stale.
	lg.Step()
	dst := make([]float64, n)
	if err := lg.CondMeanInto(dst); err == nil {
		t.Fatal("CondMeanInto answered from a stale cache after Step")
	}
	// The public search path recovers transparently (CondReset re-seeds).
	truth := data[102]
	eps := []float64{0.01, 0.01, 0.01, 0.01}
	if _, err := ChooseReportGreedy(lg, truth, eps); err != nil {
		t.Fatal(err)
	}
}
