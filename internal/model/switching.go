package model

import (
	"fmt"
	"math"

	"ken/internal/mat"
)

// Switching is a richer model family from the paper's §6 ("Richer
// Probabilistic Models"): a LinearGaussian base augmented with a hidden
// discrete regime that shifts every attribute by a per-regime offset. It
// targets data like the Lab's, where the air-conditioning flips the whole
// zone between two persistent temperature levels that a single Gaussian
// must straddle.
//
// Inference is IMM-style: the replicas maintain a regime posterior that is
// (a) pushed through a sticky transition matrix on Step and (b) reweighted
// by observation likelihoods on Condition, after which the Gaussian base is
// conditioned on the observation with the expected regime offset removed
// (moment-matching collapse). Every update is a deterministic function of
// the conditioned observations, so source and sink replicas remain in
// lock-step — the property Ken requires of any model it deploys.
type Switching struct {
	base    *LinearGaussian
	offsets [][]float64 // regime × n
	trans   [][]float64 // regime transition probabilities (rows sum to 1)
	probs   []float64   // current regime posterior
	// obsSD approximates the per-attribute innovation scale used in the
	// regime likelihoods.
	obsSD []float64
}

var _ Model = (*Switching)(nil)

// SwitchingConfig controls FitSwitching.
type SwitchingConfig struct {
	// Base configures the underlying LinearGaussian fit.
	Base FitConfig
	// Regimes is the number of hidden regimes (default 2).
	Regimes int
	// Iterations bounds the k-means regime-labelling loop (default 20).
	Iterations int
}

// FitSwitching learns a switching model: a first-pass LinearGaussian
// residual is clustered (1-D k-means over the per-step mean residual
// level) into regimes; per-regime offsets, a bigram transition matrix and
// a regime-compensated base model are then fit.
func FitSwitching(data [][]float64, cfg SwitchingConfig) (*Switching, error) {
	if cfg.Regimes <= 0 {
		cfg.Regimes = 2
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20
	}
	if cfg.Regimes == 1 {
		return nil, fmt.Errorf("model: switching model needs >= 2 regimes")
	}
	T := len(data)
	if T < 4*cfg.Regimes {
		return nil, fmt.Errorf("model: FitSwitching needs >= %d rows, got %d", 4*cfg.Regimes, T)
	}
	n := len(data[0])

	// First pass: plain seasonal fit to expose the residual level.
	first, err := FitLinearGaussian(data, cfg.Base)
	if err != nil {
		return nil, err
	}
	profile, period := first.profile, first.period
	level := make([]float64, T)
	for t, row := range data {
		p := profile[t%period]
		s := 0.0
		for i, v := range row {
			s += v - p[i]
		}
		level[t] = s / float64(n)
	}

	labels, centers := kmeans1D(level, cfg.Regimes, cfg.Iterations)

	// Per-regime, per-attribute offsets around the seasonal profile.
	offsets := make([][]float64, cfg.Regimes)
	counts := make([]int, cfg.Regimes)
	for r := range offsets {
		offsets[r] = make([]float64, n)
	}
	for t, row := range data {
		r := labels[t]
		counts[r]++
		p := profile[t%period]
		for i, v := range row {
			offsets[r][i] += v - p[i]
		}
	}
	for r := range offsets {
		if counts[r] == 0 {
			// A starved regime collapses onto its center estimate.
			for i := range offsets[r] {
				offsets[r][i] = centers[r]
			}
			continue
		}
		for i := range offsets[r] {
			offsets[r][i] /= float64(counts[r])
		}
	}

	// Sticky transition matrix from label bigrams (Laplace smoothed).
	trans := make([][]float64, cfg.Regimes)
	for r := range trans {
		trans[r] = make([]float64, cfg.Regimes)
		for q := range trans[r] {
			trans[r][q] = 1 // smoothing
		}
	}
	for t := 1; t < T; t++ {
		trans[labels[t-1]][labels[t]]++
	}
	for r := range trans {
		s := 0.0
		for _, v := range trans[r] {
			s += v
		}
		for q := range trans[r] {
			trans[r][q] /= s
		}
	}

	// Refit the base on regime-compensated data so its residual dynamics
	// exclude the regime shifts.
	comp := make([][]float64, T)
	for t, row := range data {
		r := make([]float64, n)
		for i, v := range row {
			r[i] = v - offsets[labels[t]][i]
		}
		comp[t] = r
	}
	base, err := FitLinearGaussian(comp, cfg.Base)
	if err != nil {
		return nil, err
	}

	obsSD := make([]float64, n)
	for i := 0; i < n; i++ {
		obsSD[i] = math.Sqrt(base.q.At(i, i))
		if obsSD[i] <= 0 {
			obsSD[i] = 1e-6
		}
	}

	probs := make([]float64, cfg.Regimes)
	for r := range probs {
		probs[r] = 1 / float64(cfg.Regimes)
	}
	probs[labels[T-1]] += 0.5 // start near the last observed regime
	normalize(probs)

	return &Switching{
		base:    base,
		offsets: offsets,
		trans:   trans,
		probs:   probs,
		obsSD:   obsSD,
	}, nil
}

// kmeans1D clusters scalar values into k groups, returning labels and
// sorted centers. Deterministic: initial centers are spread quantiles.
func kmeans1D(vals []float64, k, iters int) ([]int, []float64) {
	sorted := append([]float64(nil), vals...)
	insertionSort(sorted)
	centers := make([]float64, k)
	for r := range centers {
		centers[r] = sorted[(2*r+1)*len(sorted)/(2*k)]
	}
	labels := make([]int, len(vals))
	for it := 0; it < iters; it++ {
		changed := false
		for t, v := range vals {
			best, bestD := 0, math.Abs(v-centers[0])
			for r := 1; r < k; r++ {
				if d := math.Abs(v - centers[r]); d < bestD {
					best, bestD = r, d
				}
			}
			if labels[t] != best {
				labels[t] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for t, v := range vals {
			sums[labels[t]] += v
			counts[labels[t]]++
		}
		for r := range centers {
			if counts[r] > 0 {
				centers[r] = sums[r] / float64(counts[r])
			}
		}
		if !changed {
			break
		}
	}
	return labels, centers
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func normalize(p []float64) {
	s := 0.0
	for _, v := range p {
		s += v
	}
	if s <= 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return
	}
	for i := range p {
		p[i] /= s
	}
}

// Dim implements Model.
func (s *Switching) Dim() int { return s.base.Dim() }

// Regimes returns the number of hidden regimes.
func (s *Switching) Regimes() int { return len(s.offsets) }

// RegimeProbs returns a copy of the current regime posterior.
func (s *Switching) RegimeProbs() []float64 {
	return append([]float64(nil), s.probs...)
}

// Step implements Model: advance the base and push the posterior through
// the transition matrix.
func (s *Switching) Step() {
	s.base.Step()
	next := make([]float64, len(s.probs))
	for r, pr := range s.probs {
		for q := range next {
			next[q] += pr * s.trans[r][q]
		}
	}
	s.probs = next
}

// expectedOffset returns Σ_r p_r·offset_r[i] for every attribute.
func (s *Switching) expectedOffset() []float64 {
	out := make([]float64, s.Dim())
	for r, pr := range s.probs {
		for i, o := range s.offsets[r] {
			out[i] += pr * o
		}
	}
	return out
}

// Mean implements Model.
func (s *Switching) Mean() []float64 {
	return mat.AddVec(s.base.Mean(), s.expectedOffset())
}

// posteriorGiven reweights the regime posterior by the likelihood of the
// observations under each regime (diagonal approximation).
func (s *Switching) posteriorGiven(obs map[int]float64) []float64 {
	baseMean := s.base.Mean()
	post := make([]float64, len(s.probs))
	for r, pr := range s.probs {
		ll := 0.0
		for i, v := range obs {
			d := (v - baseMean[i] - s.offsets[r][i]) / s.obsSD[i]
			ll -= 0.5 * d * d
		}
		post[r] = pr * math.Exp(ll)
	}
	normalize(post)
	return post
}

// MeanGiven implements Model: a posterior-weighted mixture of per-regime
// conditional means.
func (s *Switching) MeanGiven(obs map[int]float64) ([]float64, error) {
	if err := checkObs(obs, s.Dim()); err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return s.Mean(), nil
	}
	post := s.posteriorGiven(obs)
	out := make([]float64, s.Dim())
	for r, pr := range post {
		if pr == 0 {
			continue
		}
		shifted := make(map[int]float64, len(obs))
		for i, v := range obs {
			shifted[i] = v - s.offsets[r][i]
		}
		cm, err := s.base.MeanGiven(shifted)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] += pr * (cm[i] + s.offsets[r][i])
		}
	}
	// Observed attributes are exact regardless of the regime mixture.
	for i, v := range obs {
		out[i] = v
	}
	return out, nil
}

// Condition implements Model: update the regime posterior from the
// observations, then condition the base on the observations with the
// expected offset removed (moment-matching collapse of the mixture).
func (s *Switching) Condition(obs map[int]float64) error {
	if err := checkObs(obs, s.Dim()); err != nil {
		return err
	}
	if len(obs) == 0 {
		return nil
	}
	s.probs = s.posteriorGiven(obs)
	off := s.expectedOffset()
	shifted := make(map[int]float64, len(obs))
	for i, v := range obs {
		shifted[i] = v - off[i]
	}
	return s.base.Condition(shifted)
}

// Clone implements Model.
func (s *Switching) Clone() Model {
	cp := &Switching{
		base:    s.base.Clone().(*LinearGaussian),
		offsets: s.offsets, // immutable after fit
		trans:   s.trans,   // immutable after fit
		probs:   append([]float64(nil), s.probs...),
		obsSD:   s.obsSD, // immutable after fit
	}
	return cp
}
