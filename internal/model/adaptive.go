package model

import (
	"fmt"
)

// Adaptive implements the paper's footnote-4 future work: "we plan to
// address the issue of adapting these parameters over time". It wraps a
// LinearGaussian and periodically refits the transition, innovation and
// seasonal parameters from recent history.
//
// The refit must not break the replicated-model invariant, so it trains on
// data both replicas possess: the stream of post-conditioning means (the
// sink's answers, which the source reconstructs exactly and which Ken
// guarantees lie within ε of the truth). Every refit is a deterministic
// function of that shared stream, so source and sink adapt in lock-step
// with zero extra communication.
//
// Adaptive expects the Ken protocol's calling convention — exactly one
// Condition call after each Step (possibly with an empty report set).
type Adaptive struct {
	inner *LinearGaussian
	cfg   AdaptiveConfig

	history    [][]float64 // recent post-conditioning means, oldest first
	sinceRefit int
}

var _ Model = (*Adaptive)(nil)

// AdaptiveConfig controls online refitting.
type AdaptiveConfig struct {
	// RefitEvery triggers a refit after this many steps (default 168, one
	// week of hourly samples).
	RefitEvery int
	// Window is the number of recent steps to train on (default
	// 2×RefitEvery). Must allow a viable fit: at least 4 rows are kept.
	Window int
	// Fit configures each refit (period, ridge, structure).
	Fit FitConfig
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.RefitEvery <= 0 {
		c.RefitEvery = 168
	}
	if c.Window <= 0 {
		c.Window = 2 * c.RefitEvery
	}
	return c
}

// NewAdaptive wraps a fitted model with online refitting.
func NewAdaptive(inner *LinearGaussian, cfg AdaptiveConfig) (*Adaptive, error) {
	if inner == nil {
		return nil, fmt.Errorf("model: NewAdaptive needs a fitted inner model")
	}
	cfg = cfg.withDefaults()
	if cfg.Window < 4 {
		return nil, fmt.Errorf("model: adaptive window %d too small", cfg.Window)
	}
	return &Adaptive{inner: inner.Clone().(*LinearGaussian), cfg: cfg}, nil
}

// Dim implements Model.
func (a *Adaptive) Dim() int { return a.inner.Dim() }

// Step implements Model: record the previous step's post-conditioning mean
// into the shared history, refit when due, then advance.
func (a *Adaptive) Step() {
	a.history = append(a.history, a.inner.Mean())
	if len(a.history) > a.cfg.Window {
		a.history = a.history[len(a.history)-a.cfg.Window:]
	}
	a.sinceRefit++
	if a.sinceRefit >= a.cfg.RefitEvery && len(a.history) >= 4 {
		a.refit()
		a.sinceRefit = 0
	}
	a.inner.Step()
}

// refit re-estimates the model from history, keeping the absolute clock
// (and therefore the seasonal phase) aligned.
func (a *Adaptive) refit() {
	refitted, err := FitLinearGaussian(a.history, a.cfg.Fit)
	if err != nil {
		// A degenerate window (e.g. constant estimates) cannot be fit;
		// keep the current parameters and try again next period.
		return
	}
	clock := a.inner.clock
	// The fitted profile is phased by history index; rotate it so that
	// index (clock − len(history) + 1 + q) mod period owns phase q.
	if refitted.period > 1 {
		start := clock - len(a.history) + 1
		p := refitted.period
		rot := make([][]float64, p)
		for q := 0; q < p; q++ {
			abs := ((start+q)%p + p) % p
			rot[abs] = refitted.profile[q%p]
		}
		// Guard against gaps (cannot happen when len(history) ≥ period,
		// which the 2-cycle fitting rule inside seasonalProfile ensures).
		for q := range rot {
			if rot[q] == nil {
				rot[q] = refitted.profile[q]
			}
		}
		refitted.profile = rot
	}
	refitted.clock = clock
	// Carry the belief state over: same mean, fresh-fit residual frame.
	cur := a.inner.Mean()
	obs := make(map[int]float64, len(cur))
	for i, v := range cur {
		obs[i] = v
	}
	if err := refitted.Condition(obs); err != nil {
		return
	}
	a.inner = refitted
}

// Mean implements Model.
func (a *Adaptive) Mean() []float64 { return a.inner.Mean() }

// MeanGiven implements Model.
func (a *Adaptive) MeanGiven(obs map[int]float64) ([]float64, error) {
	return a.inner.MeanGiven(obs)
}

// Condition implements Model.
func (a *Adaptive) Condition(obs map[int]float64) error {
	return a.inner.Condition(obs)
}

// Clone implements Model.
func (a *Adaptive) Clone() Model {
	cp := &Adaptive{
		inner:      a.inner.Clone().(*LinearGaussian),
		cfg:        a.cfg,
		sinceRefit: a.sinceRefit,
	}
	cp.history = make([][]float64, len(a.history))
	for i, row := range a.history {
		cp.history[i] = append([]float64(nil), row...)
	}
	return cp
}

// Refits is a diagnostic: how many successful refits have run. Exposed via
// history length bookkeeping would be ambiguous, so track per call site in
// tests through behaviour instead; this counter serves logging.
func (a *Adaptive) Inner() *LinearGaussian { return a.inner }
