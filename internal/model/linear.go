package model

import (
	"fmt"
	"math/rand"
)

// Linear is the paper's Example 3.2: an independent per-attribute linear
// prediction model X̂_i(t+1) = α_i·X̂_i(t) + β_i. Used with one attribute
// per clique it is equivalent to the single-node dual-model scheme of Jain
// et al. (DjC1's temporal-only baseline). The residual standard deviation
// of the fit drives Monte Carlo sampling.
type Linear struct {
	mean  []float64
	alpha []float64
	beta  []float64
	resSD []float64
}

var (
	_ Model   = (*Linear)(nil)
	_ Sampler = (*Linear)(nil)
)

// NewLinear creates a linear model from explicit coefficients.
func NewLinear(initial, alpha, beta, resSD []float64) (*Linear, error) {
	n := len(initial)
	if n == 0 {
		return nil, fmt.Errorf("model: linear model needs at least one attribute")
	}
	if len(alpha) != n || len(beta) != n || len(resSD) != n {
		return nil, fmt.Errorf("%w: initial %d, alpha %d, beta %d, resSD %d",
			ErrDim, n, len(alpha), len(beta), len(resSD))
	}
	l := &Linear{
		mean:  append([]float64(nil), initial...),
		alpha: append([]float64(nil), alpha...),
		beta:  append([]float64(nil), beta...),
		resSD: append([]float64(nil), resSD...),
	}
	return l, nil
}

// FitLinear learns per-attribute AR(1) coefficients by least squares on
// consecutive training rows: x(t+1) ≈ α·x(t) + β.
func FitLinear(data [][]float64) (*Linear, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("model: FitLinear needs >= 3 rows, got %d", len(data))
	}
	n := len(data[0])
	alpha := make([]float64, n)
	beta := make([]float64, n)
	resSD := make([]float64, n)
	T := len(data) - 1
	for i := 0; i < n; i++ {
		var sx, sy, sxx, sxy float64
		for t := 0; t < T; t++ {
			x, y := data[t][i], data[t+1][i]
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		den := float64(T)*sxx - sx*sx
		if den == 0 {
			// Degenerate (constant) series: fall back to identity dynamics.
			alpha[i], beta[i] = 1, 0
		} else {
			alpha[i] = (float64(T)*sxy - sx*sy) / den
			beta[i] = (sy - alpha[i]*sx) / float64(T)
		}
		var sse float64
		for t := 0; t < T; t++ {
			r := data[t+1][i] - alpha[i]*data[t][i] - beta[i]
			sse += r * r
		}
		resSD[i] = sqrtNonNeg(sse / float64(T))
	}
	return NewLinear(data[len(data)-1], alpha, beta, resSD)
}

// Dim implements Model.
func (l *Linear) Dim() int { return len(l.mean) }

// Step implements Model.
func (l *Linear) Step() {
	for i := range l.mean {
		l.mean[i] = l.alpha[i]*l.mean[i] + l.beta[i]
	}
}

// Mean implements Model.
func (l *Linear) Mean() []float64 {
	out := make([]float64, len(l.mean))
	copy(out, l.mean)
	return out
}

// MeanGiven implements Model. Attributes are independent under this model,
// so conditioning only pins the observed ones.
func (l *Linear) MeanGiven(obs map[int]float64) ([]float64, error) {
	if err := checkObs(obs, l.Dim()); err != nil {
		return nil, err
	}
	out := l.Mean()
	for i, v := range obs {
		out[i] = v
	}
	return out, nil
}

// Condition implements Model.
func (l *Linear) Condition(obs map[int]float64) error {
	if err := checkObs(obs, l.Dim()); err != nil {
		return err
	}
	for i, v := range obs {
		l.mean[i] = v
	}
	return nil
}

// Clone implements Model.
func (l *Linear) Clone() Model {
	out, err := NewLinear(l.mean, l.alpha, l.beta, l.resSD)
	if err != nil {
		panic(err)
	}
	return out
}

// SampleState implements Sampler.
func (l *Linear) SampleState(rng *rand.Rand) ([]float64, error) {
	return l.Mean(), nil
}

// SampleNext implements Sampler.
func (l *Linear) SampleNext(x []float64, rng *rand.Rand) ([]float64, error) {
	if len(x) != l.Dim() {
		return nil, fmt.Errorf("%w: sample input %d, model %d", ErrDim, len(x), l.Dim())
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = l.alpha[i]*x[i] + l.beta[i] + l.resSD[i]*rng.NormFloat64()
	}
	return out, nil
}
