package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestLinearGaussianJSONRoundTrip(t *testing.T) {
	data := garden2Cols(t, 150)
	lg, err := FitLinearGaussian(data[:120], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Advance and condition so the state is non-trivial.
	lg.Step()
	if err := lg.Condition(map[int]float64{0: 17.5}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveLinearGaussian(&buf, lg); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLinearGaussian(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// The reloaded replica must stay in lock-step with the original.
	a, b := lg.Clone(), loaded.Clone()
	for step := 0; step < 10; step++ {
		a.Step()
		b.Step()
		obs := map[int]float64{step % 2: 16 + float64(step)*0.1}
		if err := a.Condition(obs); err != nil {
			t.Fatal(err)
		}
		if err := b.Condition(obs); err != nil {
			t.Fatal(err)
		}
		ma, mb := a.Mean(), b.Mean()
		for i := range ma {
			if diff := ma[i] - mb[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("replicas diverged after reload at step %d: %v vs %v", step, ma, mb)
			}
		}
	}
	if loaded.Clock() != lg.Clock() {
		t.Fatalf("clock = %d, want %d", loaded.Clock(), lg.Clock())
	}
}

func TestLoadLinearGaussianRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"zero dimension": `{"n":0}`,
		"missing matrix": `{"n":2,"profile":[[1,2]],"period":1,"state_mean":[1,2]}`,
		"shape mismatch": `{"n":2,"a":{"rows":[[1]]},"q":{"rows":[[1,0],[0,1]]},"profile":[[1,2]],"period":1,"clock":0,"state_mean":[1,2],"state_cov":{"rows":[[1,0],[0,1]]}}`,
		"bad profile":    `{"n":1,"a":{"rows":[[1]]},"q":{"rows":[[1]]},"profile":[[1],[2]],"period":1,"clock":0,"state_mean":[1],"state_cov":{"rows":[[1]]}}`,
		"bad state":      `{"n":1,"a":{"rows":[[1]]},"q":{"rows":[[1]]},"profile":[[1]],"period":1,"clock":0,"state_mean":[1,2],"state_cov":{"rows":[[1]]}}`,
	}
	for name, in := range cases {
		if _, err := LoadLinearGaussian(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected load error", name)
		}
	}
}

func TestSwitchingJSONRoundTrip(t *testing.T) {
	data := regimeData(21, 600, 3)
	sw, err := FitSwitching(data, SwitchingConfig{Regimes: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSwitching(&buf, sw); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSwitching(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Reloaded replica stays in lock-step with the original.
	a, b := sw.Clone(), loaded.Clone()
	for step := 0; step < 15; step++ {
		a.Step()
		b.Step()
		obs := map[int]float64{step % 2: 18 + float64(step%5)}
		if err := a.Condition(obs); err != nil {
			t.Fatal(err)
		}
		if err := b.Condition(obs); err != nil {
			t.Fatal(err)
		}
		ma, mb := a.Mean(), b.Mean()
		for i := range ma {
			if d := ma[i] - mb[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("switching replicas diverged after reload: %v vs %v", ma, mb)
			}
		}
	}
}

func TestLoadSwitchingRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"missing base": `{"offsets":[[1],[2]],"trans":[[1,0],[0,1]],"probs":[0.5,0.5],"obs_sd":[1]}`,
		"one regime":   `{"base":{"n":1,"a":{"rows":[[1]]},"q":{"rows":[[1]]},"profile":[[0]],"period":1,"clock":0,"state_mean":[0],"state_cov":{"rows":[[0]]}},"offsets":[[1]],"trans":[[1]],"probs":[1],"obs_sd":[1]}`,
		"bad offsets":  `{"base":{"n":1,"a":{"rows":[[1]]},"q":{"rows":[[1]]},"profile":[[0]],"period":1,"clock":0,"state_mean":[0],"state_cov":{"rows":[[0]]}},"offsets":[[1,2],[3]],"trans":[[0.5,0.5],[0.5,0.5]],"probs":[0.5,0.5],"obs_sd":[1]}`,
	}
	for name, in := range cases {
		if _, err := LoadSwitching(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected load error", name)
		}
	}
}
