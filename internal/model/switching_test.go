package model

import (
	"math"
	"math/rand"
	"testing"
)

// regimeData synthesises a 2-attribute series that flips between two level
// regimes (like the lab's HVAC) with small AR noise.
func regimeData(seed int64, steps int, gap float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, steps)
	level := 0.0
	w1, w2 := 0.0, 0.0
	for t := range data {
		// Sticky regime: flip with 2% probability per step.
		if rng.Float64() < 0.02 {
			if level == 0 {
				level = -gap
			} else {
				level = 0
			}
		}
		w1 = 0.7*w1 + 0.35*rng.NormFloat64()
		w2 = 0.7*w2 + 0.35*rng.NormFloat64()
		data[t] = []float64{20 + level + w1, 20.5 + level + w2}
	}
	return data
}

func TestFitSwitchingValidation(t *testing.T) {
	if _, err := FitSwitching(regimeData(1, 5, 2), SwitchingConfig{Regimes: 2}); err == nil {
		t.Fatal("expected error for too few rows")
	}
	if _, err := FitSwitching(regimeData(1, 100, 2), SwitchingConfig{Regimes: 1}); err == nil {
		t.Fatal("expected error for 1 regime")
	}
}

func TestSwitchingRecoversRegimeGap(t *testing.T) {
	data := regimeData(2, 600, 3)
	s, err := FitSwitching(data, SwitchingConfig{Regimes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Regimes() != 2 {
		t.Fatalf("regimes = %d", s.Regimes())
	}
	// The two learned offsets should be ~3 apart on each attribute.
	gap0 := math.Abs(s.offsets[0][0] - s.offsets[1][0])
	if gap0 < 2 || gap0 > 4 {
		t.Fatalf("recovered regime gap %v, want ~3", gap0)
	}
}

func TestSwitchingPosteriorTracksRegime(t *testing.T) {
	data := regimeData(3, 600, 3)
	s, err := FitSwitching(data, SwitchingConfig{Regimes: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Clone().(*Switching)
	// Feed observations deep in one regime; the posterior must commit.
	m.Step()
	lowRegime := 0
	if s.offsets[1][0] < s.offsets[0][0] {
		lowRegime = 1
	}
	for i := 0; i < 5; i++ {
		m.Step()
		base := m.base.Mean()
		if err := m.Condition(map[int]float64{0: base[0] + m.offsets[lowRegime][0]}); err != nil {
			t.Fatal(err)
		}
	}
	if p := m.RegimeProbs(); p[lowRegime] < 0.7 {
		t.Fatalf("posterior did not track the regime: %v", p)
	}
}

func TestSwitchingReplicaLockstep(t *testing.T) {
	data := regimeData(4, 500, 3)
	s, err := FitSwitching(data, SwitchingConfig{Regimes: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := s.Clone()
	sink := s.Clone()
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 40; step++ {
		src.Step()
		sink.Step()
		obs := map[int]float64{}
		if rng.Intn(2) == 0 {
			obs[rng.Intn(2)] = 18 + 3*rng.Float64()
		}
		if err := src.Condition(obs); err != nil {
			t.Fatal(err)
		}
		if err := sink.Condition(obs); err != nil {
			t.Fatal(err)
		}
		a, b := src.Mean(), sink.Mean()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replicas diverged at step %d: %v vs %v", step, a, b)
			}
		}
	}
}

func TestSwitchingMeanGivenExactOnObserved(t *testing.T) {
	data := regimeData(6, 500, 3)
	s, err := FitSwitching(data, SwitchingConfig{Regimes: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Clone()
	m.Step()
	cm, err := m.MeanGiven(map[int]float64{1: 17.5})
	if err != nil {
		t.Fatal(err)
	}
	if cm[1] != 17.5 {
		t.Fatalf("observed attribute = %v, want exact", cm[1])
	}
	if _, err := m.MeanGiven(map[int]float64{9: 1}); err == nil {
		t.Fatal("expected error for out-of-range observation")
	}
}

// replayReported runs the Ken source loop over rows and returns the
// fraction of values reported.
func replayReported(t *testing.T, m Model, rows [][]float64, eps []float64) float64 {
	t.Helper()
	sent := 0
	for _, row := range rows {
		m.Step()
		obs, err := ChooseReportGreedy(m, row, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Condition(obs); err != nil {
			t.Fatal(err)
		}
		sent += len(obs)
	}
	return float64(sent) / float64(len(rows)*len(rows[0]))
}

func TestSwitchingBeatsPlainGaussianOnRegimeData(t *testing.T) {
	// The §6 motivation: on regime-switching data a single Gaussian
	// straddles the two levels; the switching model should report less.
	all := regimeData(7, 1500, 4)
	train, test := all[:500], all[500:]
	eps := []float64{0.5, 0.5}

	plain, err := FitLinearGaussian(train, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plainFrac := replayReported(t, plain.Clone(), test, eps)

	sw, err := FitSwitching(train, SwitchingConfig{Regimes: 2})
	if err != nil {
		t.Fatal(err)
	}
	swFrac := replayReported(t, sw.Clone(), test, eps)

	if swFrac >= plainFrac {
		t.Fatalf("switching (%v) should report less than plain Gaussian (%v)", swFrac, plainFrac)
	}
}

func TestSwitchingGuaranteeAfterConditioning(t *testing.T) {
	// Regardless of regime confusion, conditioning on the minimal report
	// set must restore ε-accuracy (the Ken invariant).
	all := regimeData(8, 900, 3)
	train, test := all[:300], all[300:]
	eps := []float64{0.5, 0.5}
	sw, err := FitSwitching(train, SwitchingConfig{Regimes: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := sw.Clone()
	for step, row := range test {
		m.Step()
		obs, err := ChooseReportGreedy(m, row, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Condition(obs); err != nil {
			t.Fatal(err)
		}
		if !WithinBounds(m.Mean(), row, eps) {
			t.Fatalf("step %d: post-report prediction violates ε", step)
		}
	}
}

func TestKMeans1D(t *testing.T) {
	vals := []float64{0, 0.1, -0.1, 5, 5.1, 4.9}
	labels, centers := kmeans1D(vals, 2, 20)
	if labels[0] == labels[3] {
		t.Fatalf("clusters not separated: %v", labels)
	}
	lo, hi := centers[0], centers[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo) > 0.2 || math.Abs(hi-5) > 0.2 {
		t.Fatalf("centers = %v", centers)
	}
}
