package model

import (
	"testing"

	"ken/internal/alloctest"
)

// TestAllocBudgetLinearGaussian pins the per-epoch model operations at
// zero heap allocations — the committed budget table in docs/LINT.md.
func TestAllocBudgetLinearGaussian(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	data := garden2Cols(t, 120)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, lg.Dim())
	obs := map[int]float64{0: 20.25}

	budget := func(name string, want float64, f func()) {
		t.Helper()
		if got := testing.AllocsPerRun(100, f); got != want {
			t.Errorf("%s: %v allocs/op, budget %v", name, got, want)
		}
	}
	budget("Step", 0, func() { lg.Step() })
	budget("MeanInto", 0, func() {
		if err := lg.MeanInto(dst); err != nil {
			t.Fatal(err)
		}
	})
	// Condition consumes the belief's observed rows, so each run steps
	// first — exactly the per-epoch predict/condition cycle of §3.
	budget("Step+Condition", 0, func() {
		lg.Step()
		if err := lg.Condition(obs); err != nil {
			t.Fatal(err)
		}
	})
}
