// Package model implements Ken's dynamic probabilistic models (§3.1):
// Markovian models that are stepped forward by a transition, queried for
// expected attribute values, and conditioned on observed subsets.
//
// Three families are provided, mirroring the paper's examples:
//
//   - Constant (Example 3.1): X̂(t+1) = X̂(t), a random-walk model whose
//     prediction is the last incorporated value.
//   - Linear (Example 3.2): per-attribute AR(1), X̂(t+1) = α·X̂(t) + β,
//     equivalent to the single-node dual models of Jain et al.
//   - LinearGaussian (Example 3.3, §5.1): a multivariate time-varying
//     Gaussian with a VAR(1) transition and a seasonal (diurnal) mean
//     profile, capturing both temporal and spatial correlations.
//
// All models are deterministic replicas: two clones stepped and conditioned
// identically produce identical predictions, which is the invariant that
// keeps Ken's source and sink in sync.
package model

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Model is a replicated dynamic probabilistic model over a fixed set of
// attributes (clique-local indexing).
type Model interface {
	// Dim returns the number of attributes the model covers.
	Dim() int
	// Step advances the model one time step through its transition.
	Step()
	// Mean returns the current expected values — the sink's answer vector.
	Mean() []float64
	// MeanGiven returns the expected values after hypothetically observing
	// obs (attribute index → value), without mutating the model.
	MeanGiven(obs map[int]float64) ([]float64, error)
	// Condition permanently incorporates the observations.
	Condition(obs map[int]float64) error
	// Clone returns an independent deep copy.
	Clone() Model
}

// MeanWriter is implemented by models whose mean can be read without
// allocating. MeanInto writes the same values Mean returns into dst
// (which must have length Dim()); hot replay loops use it with a reused
// buffer to keep suppressed epochs allocation-free.
type MeanWriter interface {
	MeanInto(dst []float64) error
}

// Sampler is implemented by models that can generate synthetic data from
// themselves; Monte Carlo data-reduction estimation (§4.4) requires it.
type Sampler interface {
	Model
	// SampleState draws a ground-truth vector from the current state.
	SampleState(rng *rand.Rand) ([]float64, error)
	// SampleNext draws x(t+1) given ground truth x(t) from the transition.
	SampleNext(x []float64, rng *rand.Rand) ([]float64, error)
}

// IncrementalConditioner is implemented by models that can answer the
// greedy report search's "what if I also reported x_i?" questions
// incrementally: the hypothetical observed set grows by one attribute per
// round, and the model keeps the conditioning factorization cached between
// rounds instead of refactorizing from scratch on every evaluation
// (O(m²) per round instead of O(m³) plus allocations).
//
// The evaluator is a read-only view: none of the three methods may mutate
// the model's replicated state. Implementations cache against their
// current state generation and must fail (rather than answer stale) if the
// model mutates between calls; callers treat any error from CondAdd or
// CondMeanInto as "fall back to the from-scratch MeanGiven path", which
// remains the reference semantics.
type IncrementalConditioner interface {
	Model
	// CondReset begins a new hypothetical observed set, empty.
	CondReset() error
	// CondAdd adds attribute i at value v to the hypothetical set.
	CondAdd(i int, v float64) error
	// CondMeanInto writes the full-length conditional mean given the
	// current hypothetical set into dst (length Dim()): observed positions
	// take their hypothesised values, the rest their conditional
	// expectations — the same answer as MeanGiven on the equivalent map,
	// to numerical tolerance.
	CondMeanInto(dst []float64) error
}

// ErrDim is returned when an observation or bound vector has the wrong
// dimensionality for the model.
var ErrDim = errors.New("model: dimension mismatch")

// checkObs validates observation indices against dim.
func checkObs(obs map[int]float64, dim int) error {
	for i, v := range obs {
		if i < 0 || i >= dim {
			return fmt.Errorf("%w: observation index %d out of range %d", ErrDim, i, dim)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("model: observation %d is not finite: %v", i, v)
		}
	}
	return nil
}

// ChooseReportGreedy finds a small attribute subset whose values, when
// reported, make every prediction ε-accurate (source step 4(a), §3.2).
// It greedily adds the attribute with the largest normalised violation
// |X̂_i − x_i|/ε_i until all predictions are within bounds. Reporting every
// attribute always satisfies the bounds, so the loop terminates in at most
// Dim() rounds. The returned map is empty when the unconditioned prediction
// is already accurate.
func ChooseReportGreedy(m Model, truth, eps []float64) (map[int]float64, error) {
	n := m.Dim()
	if len(truth) != n || len(eps) != n {
		return nil, fmt.Errorf("%w: truth %d, eps %d, model %d", ErrDim, len(truth), len(eps), n)
	}
	// The first round of the search scans every attribute, so a
	// non-positive ε is always a definitive error regardless of which
	// evaluation path answers the rounds.
	for i := range eps {
		if eps[i] <= 0 {
			return nil, fmt.Errorf("model: non-positive epsilon %v for attribute %d", eps[i], i)
		}
	}
	if ic, isIC := m.(IncrementalConditioner); isIC {
		if obs, ok := chooseReportIncremental(ic, truth, eps); ok {
			return obs, nil
		}
		// Evaluator declined (stale cache, degenerate pivot with no jitter
		// ladder, …): the from-scratch search below is the reference path.
	}
	obs := map[int]float64{}
	for len(obs) < n {
		mean, err := m.MeanGiven(obs)
		if err != nil {
			return nil, err
		}
		worst, worstRatio := -1, 1.0
		for i := 0; i < n; i++ {
			if _, ok := obs[i]; ok {
				continue
			}
			if r := math.Abs(mean[i]-truth[i]) / eps[i]; r > worstRatio {
				worst, worstRatio = i, r
			}
		}
		if worst < 0 {
			return obs, nil
		}
		obs[worst] = truth[worst]
	}
	return obs, nil
}

// chooseReportIncremental runs the greedy search against a model's cached
// incremental conditioning evaluator: identical selection rule (largest
// normalised violation, strict improvement over ratio 1), but each round
// grows the cached factorization by one attribute instead of
// reconditioning from scratch. Returns ok=false when the evaluator cannot
// answer — the caller then reruns on the reference MeanGiven path.
func chooseReportIncremental(ic IncrementalConditioner, truth, eps []float64) (map[int]float64, bool) {
	n := ic.Dim()
	if err := ic.CondReset(); err != nil {
		return nil, false
	}
	mean := make([]float64, n)
	obs := map[int]float64{}
	for len(obs) < n {
		if err := ic.CondMeanInto(mean); err != nil {
			return nil, false
		}
		worst, worstRatio := -1, 1.0
		for i := 0; i < n; i++ {
			if _, ok := obs[i]; ok {
				continue
			}
			if r := math.Abs(mean[i]-truth[i]) / eps[i]; r > worstRatio {
				worst, worstRatio = i, r
			}
		}
		if worst < 0 {
			return obs, true
		}
		if err := ic.CondAdd(worst, truth[worst]); err != nil {
			return nil, false
		}
		obs[worst] = truth[worst]
	}
	return obs, true
}

// ChooseReportGreedyPartial is ChooseReportGreedy under partial
// observability: truth is known only for the attributes present in the
// avail map (clique members whose readings reached the root — others may
// be dead or their collection messages lost). Only available attributes
// are checked against ε and eligible for reporting; unavailable ones are
// left to the model.
func ChooseReportGreedyPartial(m Model, avail map[int]float64, eps []float64) (map[int]float64, error) {
	n := m.Dim()
	if len(eps) != n {
		return nil, fmt.Errorf("%w: eps %d, model %d", ErrDim, len(eps), n)
	}
	if err := checkObs(avail, n); err != nil {
		return nil, err
	}
	obs := map[int]float64{}
	for len(obs) < len(avail) {
		mean, err := m.MeanGiven(obs)
		if err != nil {
			return nil, err
		}
		worst, worstRatio := -1, 1.0
		for i, v := range avail {
			if _, ok := obs[i]; ok {
				continue
			}
			if eps[i] <= 0 {
				return nil, fmt.Errorf("model: non-positive epsilon %v for attribute %d", eps[i], i)
			}
			if r := math.Abs(mean[i]-v) / eps[i]; r > worstRatio {
				worst, worstRatio = i, r
			}
		}
		if worst < 0 {
			return obs, nil
		}
		obs[worst] = avail[worst]
	}
	return obs, nil
}

// ChooseReportExhaustive finds the smallest subset (breaking ties by the
// first found in index order) whose reporting restores ε-accuracy, by
// enumerating subsets in order of increasing size. Exponential in Dim();
// intended for small cliques and for validating the greedy heuristic.
func ChooseReportExhaustive(m Model, truth, eps []float64) (map[int]float64, error) {
	n := m.Dim()
	if len(truth) != n || len(eps) != n {
		return nil, fmt.Errorf("%w: truth %d, eps %d, model %d", ErrDim, len(truth), len(eps), n)
	}
	if n > 20 {
		return nil, fmt.Errorf("model: exhaustive subset search infeasible for dim %d", n)
	}
	for i := range eps {
		if eps[i] <= 0 {
			return nil, fmt.Errorf("model: non-positive epsilon %v for attribute %d", eps[i], i)
		}
	}
	for size := 0; size <= n; size++ {
		found, err := searchSubsets(m, truth, eps, size)
		if err != nil {
			return nil, err
		}
		if found != nil {
			return found, nil
		}
	}
	// Unreachable: the full set always satisfies the bounds.
	return nil, errors.New("model: no satisfying subset found")
}

// searchSubsets tries every subset of exactly the given size.
func searchSubsets(m Model, truth, eps []float64, size int) (map[int]float64, error) {
	n := m.Dim()
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	for {
		obs := make(map[int]float64, size)
		for _, i := range idx {
			obs[i] = truth[i]
		}
		mean, err := m.MeanGiven(obs)
		if err != nil {
			return nil, err
		}
		if withinBounds(mean, truth, eps) {
			return obs, nil
		}
		// Next combination in lexicographic order.
		i := size - 1
		for i >= 0 && idx[i] == n-size+i {
			i--
		}
		if i < 0 {
			return nil, nil
		}
		idx[i]++
		for j := i + 1; j < size; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// withinBounds reports whether every |mean_i − truth_i| ≤ eps_i.
func withinBounds(mean, truth, eps []float64) bool {
	for i := range mean {
		if math.Abs(mean[i]-truth[i]) > eps[i] {
			return false
		}
	}
	return true
}

// WithinBounds exposes the ε-accuracy check for callers that audit Ken's
// output guarantee.
func WithinBounds(mean, truth, eps []float64) bool {
	return withinBounds(mean, truth, eps)
}
