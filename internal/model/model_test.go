package model

import (
	"math"
	"math/rand"
	"testing"

	"ken/internal/trace"
)

func TestConstantBasics(t *testing.T) {
	c, err := NewConstant([]float64{1, 2}, []float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim() != 2 {
		t.Fatalf("dim = %d", c.Dim())
	}
	c.Step()
	if m := c.Mean(); m[0] != 1 || m[1] != 2 {
		t.Fatalf("constant model moved: %v", m)
	}
	if err := c.Condition(map[int]float64{1: 7}); err != nil {
		t.Fatal(err)
	}
	if m := c.Mean(); m[1] != 7 || m[0] != 1 {
		t.Fatalf("condition wrong: %v", m)
	}
	mg, err := c.MeanGiven(map[int]float64{0: 9})
	if err != nil {
		t.Fatal(err)
	}
	if mg[0] != 9 || mg[1] != 7 {
		t.Fatalf("MeanGiven = %v", mg)
	}
	// MeanGiven must not mutate.
	if m := c.Mean(); m[0] != 1 {
		t.Fatal("MeanGiven mutated the model")
	}
}

func TestConstantValidation(t *testing.T) {
	if _, err := NewConstant(nil, nil); err == nil {
		t.Fatal("expected error for empty model")
	}
	if _, err := NewConstant([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for SD length mismatch")
	}
	c, _ := NewConstant([]float64{1}, []float64{1})
	if err := c.Condition(map[int]float64{5: 1}); err == nil {
		t.Fatal("expected error for out-of-range observation")
	}
	if err := c.Condition(map[int]float64{0: math.NaN()}); err == nil {
		t.Fatal("expected error for NaN observation")
	}
}

func TestFitConstant(t *testing.T) {
	data := [][]float64{{0}, {1}, {2}, {3}}
	c, err := FitConstant(data)
	if err != nil {
		t.Fatal(err)
	}
	if m := c.Mean(); m[0] != 3 {
		t.Fatalf("initial = %v, want last row 3", m)
	}
	// Steps are exactly +1 each: zero innovation variance around the mean step.
	if c.stepSD[0] != 0 {
		t.Fatalf("stepSD = %v, want 0", c.stepSD[0])
	}
	if _, err := FitConstant([][]float64{{1}}); err == nil {
		t.Fatal("expected error for too few rows")
	}
}

func TestConstantClone(t *testing.T) {
	c, _ := NewConstant([]float64{1}, []float64{0.5})
	cl := c.Clone()
	if err := cl.Condition(map[int]float64{0: 42}); err != nil {
		t.Fatal(err)
	}
	if c.Mean()[0] != 1 {
		t.Fatal("clone shares state")
	}
}

func TestConstantSampler(t *testing.T) {
	c, _ := NewConstant([]float64{5}, []float64{2})
	rng := rand.New(rand.NewSource(1))
	s, err := c.SampleState(rng)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 5 {
		t.Fatalf("SampleState = %v", s)
	}
	var sum, sumSq float64
	const N = 5000
	for i := 0; i < N; i++ {
		nx, err := c.SampleNext([]float64{5}, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += nx[0]
		sumSq += (nx[0] - 5) * (nx[0] - 5)
	}
	if m := sum / N; math.Abs(m-5) > 0.1 {
		t.Fatalf("sample mean = %v", m)
	}
	if v := sumSq / N; math.Abs(v-4) > 0.3 {
		t.Fatalf("sample var = %v, want ~4", v)
	}
	if _, err := c.SampleNext([]float64{1, 2}, rng); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestFitLinearRecoversAR1(t *testing.T) {
	// Generate AR(1): x(t+1) = 0.8 x(t) + 3 + noise.
	rng := rand.New(rand.NewSource(2))
	data := make([][]float64, 600)
	x := 15.0
	for i := range data {
		data[i] = []float64{x}
		x = 0.8*x + 3 + 0.2*rng.NormFloat64()
	}
	l, err := FitLinear(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.alpha[0]-0.8) > 0.05 {
		t.Fatalf("alpha = %v, want ~0.8", l.alpha[0])
	}
	if math.Abs(l.beta[0]-3) > 0.8 {
		t.Fatalf("beta = %v, want ~3", l.beta[0])
	}
	if math.Abs(l.resSD[0]-0.2) > 0.05 {
		t.Fatalf("resSD = %v, want ~0.2", l.resSD[0])
	}
}

func TestLinearStepAndCondition(t *testing.T) {
	l, err := NewLinear([]float64{10}, []float64{0.5}, []float64{1}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	l.Step()
	if m := l.Mean(); m[0] != 6 {
		t.Fatalf("step mean = %v, want 0.5*10+1 = 6", m)
	}
	if err := l.Condition(map[int]float64{0: 4}); err != nil {
		t.Fatal(err)
	}
	l.Step()
	if m := l.Mean(); m[0] != 3 {
		t.Fatalf("mean = %v, want 0.5*4+1 = 3", m)
	}
}

func TestFitLinearDegenerateConstantSeries(t *testing.T) {
	data := [][]float64{{5}, {5}, {5}, {5}}
	l, err := FitLinear(data)
	if err != nil {
		t.Fatal(err)
	}
	l.Step()
	if m := l.Mean(); m[0] != 5 {
		t.Fatalf("constant series should stay at 5, got %v", m)
	}
}

func TestLinearValidation(t *testing.T) {
	if _, err := NewLinear(nil, nil, nil, nil); err == nil {
		t.Fatal("expected error for empty model")
	}
	if _, err := NewLinear([]float64{1}, []float64{1, 2}, []float64{0}, []float64{0}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := FitLinear([][]float64{{1}, {2}}); err == nil {
		t.Fatal("expected error for too few rows")
	}
}

func garden2Cols(t *testing.T, steps int) [][]float64 {
	t.Helper()
	tr, err := trace.GenerateGarden(31, steps)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = []float64{r[0], r[1]}
	}
	return out
}

func TestFitLinearGaussianValidation(t *testing.T) {
	if _, err := FitLinearGaussian([][]float64{{1}, {2}, {3}}, FitConfig{}); err == nil {
		t.Fatal("expected error for too few rows")
	}
	if _, err := FitLinearGaussian([][]float64{{1}, {2}, {3}, {}}, FitConfig{}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestLinearGaussianReplicaLockstep(t *testing.T) {
	// The replicated-model invariant: two clones stepped and conditioned
	// identically give identical predictions forever.
	data := garden2Cols(t, 120)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	src := lg.Clone()
	sink := lg.Clone()
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 20; step++ {
		src.Step()
		sink.Step()
		obs := map[int]float64{}
		if rng.Intn(2) == 0 {
			obs[rng.Intn(2)] = 20 + rng.NormFloat64()
		}
		if err := src.Condition(obs); err != nil {
			t.Fatal(err)
		}
		if err := sink.Condition(obs); err != nil {
			t.Fatal(err)
		}
		a, b := src.Mean(), sink.Mean()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replicas diverged at step %d: %v vs %v", step, a, b)
			}
		}
	}
}

func TestLinearGaussianConditionExactAndCorrelated(t *testing.T) {
	data := garden2Cols(t, 150)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	m := lg.Clone().(*LinearGaussian)
	m.Step()
	before := m.Mean()
	obsVal := before[0] + 2 // report a value 2 degrees above prediction
	if err := m.Condition(map[int]float64{0: obsVal}); err != nil {
		t.Fatal(err)
	}
	after := m.Mean()
	if math.Abs(after[0]-obsVal) > 1e-9 {
		t.Fatalf("observed attribute not exact: %v vs %v", after[0], obsVal)
	}
	// Spatial correlation: the unobserved neighbour must move toward the
	// reported deviation (garden nodes 0 and 1 are strongly correlated).
	if after[1] <= before[1] {
		t.Fatalf("correlated attribute did not move: before %v after %v", before[1], after[1])
	}
}

func TestLinearGaussianPredictsDiurnalCycle(t *testing.T) {
	// With no reports at all, the seasonal profile should keep hourly
	// predictions within a couple of degrees on held-out data.
	data := garden2Cols(t, 24*20)
	train, test := data[:24*14], data[24*14:]
	lg, err := FitLinearGaussian(train, FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	m := lg.Clone()
	var sumAbs float64
	var count int
	for _, row := range test {
		m.Step()
		mean := m.Mean()
		for i := range row {
			sumAbs += math.Abs(mean[i] - row[i])
			count++
		}
	}
	if mae := sumAbs / float64(count); mae > 2.5 {
		t.Fatalf("unconditioned MAE = %v, seasonal model should track the cycle", mae)
	}
}

func TestLinearGaussianClockAndClone(t *testing.T) {
	data := garden2Cols(t, 60)
	lg, err := FitLinearGaussian(data[:50], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if lg.Clock() != 49 {
		t.Fatalf("clock = %d, want 49", lg.Clock())
	}
	cl := lg.Clone().(*LinearGaussian)
	cl.Step()
	if lg.Clock() != 49 || cl.Clock() != 50 {
		t.Fatalf("clone clock coupling: %d, %d", lg.Clock(), cl.Clock())
	}
}

func TestLinearGaussianSampler(t *testing.T) {
	data := garden2Cols(t, 120)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x, err := lg.SampleState(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 2 {
		t.Fatalf("sample dim = %d", len(x))
	}
	nx, err := lg.SampleNext(x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(nx) != 2 {
		t.Fatalf("next dim = %d", len(nx))
	}
	// Samples stay in a physically plausible band.
	for _, v := range nx {
		if v < -20 || v > 60 {
			t.Fatalf("implausible sampled temperature %v", v)
		}
	}
	if _, err := lg.SampleNext([]float64{1}, rng); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestSeasonalProfileFallback(t *testing.T) {
	// 10 rows with period 24: cannot cover two cycles, must fall back to a
	// single global phase.
	data := make([][]float64, 10)
	for i := range data {
		data[i] = []float64{float64(i)}
	}
	profile, period := seasonalProfile(data, 24)
	if period != 1 || len(profile) != 1 {
		t.Fatalf("period = %d, profile rows = %d; want 1, 1", period, len(profile))
	}
	if math.Abs(profile[0][0]-4.5) > 1e-12 {
		t.Fatalf("global mean = %v, want 4.5", profile[0][0])
	}
}

func TestChooseReportGreedyEmptyWhenAccurate(t *testing.T) {
	c, _ := NewConstant([]float64{1, 2}, []float64{0, 0})
	obs, err := ChooseReportGreedy(c, []float64{1.1, 2.1}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 0 {
		t.Fatalf("report = %v, want empty", obs)
	}
}

func TestChooseReportGreedyIndependent(t *testing.T) {
	c, _ := NewConstant([]float64{0, 0, 0}, []float64{0, 0, 0})
	truth := []float64{5, 0.1, -3}
	eps := []float64{0.5, 0.5, 0.5}
	obs, err := ChooseReportGreedy(c, truth, eps)
	if err != nil {
		t.Fatal(err)
	}
	// Independent model: exactly the two violating attributes.
	if len(obs) != 2 {
		t.Fatalf("report = %v, want 2 attributes", obs)
	}
	if _, ok := obs[0]; !ok {
		t.Fatal("attribute 0 should be reported")
	}
	if _, ok := obs[2]; !ok {
		t.Fatal("attribute 2 should be reported")
	}
}

func TestChooseReportUsesCorrelation(t *testing.T) {
	// Strongly correlated pair where both predictions are off by the same
	// shared shift: reporting one attribute should fix both (the paper's
	// Figure 2 walk-through).
	data := garden2Cols(t, 200)
	lg, err := FitLinearGaussian(data[:180], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	m := lg.Clone()
	m.Step()
	mean := m.Mean()
	truth := []float64{mean[0] + 1.2, mean[1] + 1.2}
	eps := []float64{0.5, 0.5}
	obs, err := ChooseReportGreedy(m, truth, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("report = %v, want a single attribute via spatial correlation", obs)
	}
	// And the guarantee holds after conditioning.
	if err := m.Condition(obs); err != nil {
		t.Fatal(err)
	}
	if !WithinBounds(m.Mean(), truth, eps) {
		t.Fatal("post-report predictions violate ε")
	}
}

func TestChooseReportExhaustiveMatchesOrBeatsGreedy(t *testing.T) {
	data := garden2Cols(t, 200)
	lg, err := FitLinearGaussian(data[:180], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := lg.Clone()
		m.Step()
		mean := m.Mean()
		truth := []float64{mean[0] + rng.NormFloat64()*1.5, mean[1] + rng.NormFloat64()*1.5}
		eps := []float64{0.5, 0.5}
		g, err := ChooseReportGreedy(m, truth, eps)
		if err != nil {
			t.Fatal(err)
		}
		e, err := ChooseReportExhaustive(m, truth, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(e) > len(g) {
			t.Fatalf("exhaustive (%d) worse than greedy (%d)", len(e), len(g))
		}
		// Both must satisfy the bound.
		for _, obs := range []map[int]float64{g, e} {
			mm, err := m.MeanGiven(obs)
			if err != nil {
				t.Fatal(err)
			}
			if !WithinBounds(mm, truth, eps) {
				t.Fatalf("report set %v does not restore accuracy", obs)
			}
		}
	}
}

func TestChooseReportValidation(t *testing.T) {
	c, _ := NewConstant([]float64{0}, []float64{0})
	if _, err := ChooseReportGreedy(c, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := ChooseReportGreedy(c, []float64{9}, []float64{0}); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
	if _, err := ChooseReportExhaustive(c, []float64{9}, []float64{-1}); err == nil {
		t.Fatal("expected error for negative epsilon")
	}
	if _, err := ChooseReportExhaustive(c, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestDiagonalAFit(t *testing.T) {
	data := garden2Cols(t, 150)
	lg, err := FitLinearGaussian(data[:120], FitConfig{Period: 24, DiagonalA: true})
	if err != nil {
		t.Fatal(err)
	}
	// Off-diagonal transition entries must be exactly zero.
	if lg.a.At(0, 1) != 0 || lg.a.At(1, 0) != 0 {
		t.Fatalf("diagonal fit has off-diagonal entries: %v", lg.a)
	}
	// Diagonal entries should be a plausible AR coefficient.
	if a := lg.a.At(0, 0); a < 0 || a > 1.2 {
		t.Fatalf("AR coefficient = %v", a)
	}
}

func TestChooseReportGreedyPartial(t *testing.T) {
	c, _ := NewConstant([]float64{0, 0, 0}, []float64{0, 0, 0})
	eps := []float64{0.5, 0.5, 0.5}
	// Attribute 0 violates but is unavailable; attribute 2 violates and is
	// available: only 2 can be reported.
	avail := map[int]float64{1: 0.1, 2: 5}
	obs, err := ChooseReportGreedyPartial(c, avail, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("obs = %v, want only attribute 2", obs)
	}
	if _, ok := obs[2]; !ok {
		t.Fatalf("obs = %v, want attribute 2", obs)
	}
	// No available attributes: nothing to send.
	obs, err = ChooseReportGreedyPartial(c, nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 0 {
		t.Fatalf("obs = %v, want empty", obs)
	}
	// Validation.
	if _, err := ChooseReportGreedyPartial(c, map[int]float64{9: 1}, eps); err == nil {
		t.Fatal("expected error for out-of-range availability")
	}
	if _, err := ChooseReportGreedyPartial(c, map[int]float64{0: 5}, []float64{0, 1, 1}); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
	if _, err := ChooseReportGreedyPartial(c, avail, []float64{1}); err == nil {
		t.Fatal("expected error for eps dim mismatch")
	}
}

func TestChooseReportGreedyPartialMatchesFullWhenAllAvailable(t *testing.T) {
	data := garden2Cols(t, 200)
	lg, err := FitLinearGaussian(data[:180], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		m := lg.Clone()
		m.Step()
		mean := m.Mean()
		truth := []float64{mean[0] + rng.NormFloat64(), mean[1] + rng.NormFloat64()}
		eps := []float64{0.5, 0.5}
		full, err := ChooseReportGreedy(m, truth, eps)
		if err != nil {
			t.Fatal(err)
		}
		avail := map[int]float64{0: truth[0], 1: truth[1]}
		part, err := ChooseReportGreedyPartial(m, avail, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(full) != len(part) {
			t.Fatalf("partial (%v) and full (%v) disagree with all attrs available", part, full)
		}
	}
}

// TestLinearGaussianLongRunStability: a thousand predict/condition cycles
// must not blow up numerically — means stay finite and physically
// plausible, covariance diagonals stay non-negative.
func TestLinearGaussianLongRunStability(t *testing.T) {
	tr, err := trace.GenerateGarden(87, 1200)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([][]float64, len(rows))
	for i, r := range rows {
		cols[i] = r[:5]
	}
	lg, err := FitLinearGaussian(cols[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	m := lg.Clone().(*LinearGaussian)
	eps := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	for step, row := range cols[100:] {
		m.Step()
		obs, err := ChooseReportGreedy(m, row, eps)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := m.Condition(obs); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for i, v := range m.Mean() {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < -50 || v > 80 {
				t.Fatalf("step %d: mean[%d] = %v diverged", step, i, v)
			}
		}
		cov := m.Cov()
		for i := 0; i < 5; i++ {
			if cov.At(i, i) < -1e-9 {
				t.Fatalf("step %d: negative variance %v", step, cov.At(i, i))
			}
		}
	}
}
