package model

import (
	"encoding/json"
	"fmt"
	"io"

	"ken/internal/gauss"
	"ken/internal/mat"
)

// Fitted models must survive deployment: the base station fits once on
// training data and ships the parameters to the motes, after which both
// sides instantiate identical replicas. This file provides the JSON wire
// format for LinearGaussian (the deployable workhorse model).

// linearGaussianJSON is the stable wire form of a LinearGaussian.
type linearGaussianJSON struct {
	N         int         `json:"n"`
	A         *mat.Dense  `json:"a"`
	Q         *mat.Dense  `json:"q"`
	Profile   [][]float64 `json:"profile"`
	Period    int         `json:"period"`
	Clock     int         `json:"clock"`
	StateMean []float64   `json:"state_mean"`
	StateCov  *mat.Dense  `json:"state_cov"`
}

// MarshalJSON implements json.Marshaler.
func (lg *LinearGaussian) MarshalJSON() ([]byte, error) {
	return json.Marshal(linearGaussianJSON{
		N:         lg.n,
		A:         lg.a,
		Q:         lg.q,
		Profile:   lg.profile,
		Period:    lg.period,
		Clock:     lg.clock,
		StateMean: lg.state.Mean(),
		StateCov:  lg.state.Cov(),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (lg *LinearGaussian) UnmarshalJSON(data []byte) error {
	var w linearGaussianJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("model: %w", err)
	}
	if w.N <= 0 {
		return fmt.Errorf("model: json model has dimension %d", w.N)
	}
	if w.A == nil || w.Q == nil || w.StateCov == nil {
		return fmt.Errorf("model: json model missing matrices")
	}
	if w.A.Rows() != w.N || w.A.Cols() != w.N || w.Q.Rows() != w.N || w.Q.Cols() != w.N {
		return fmt.Errorf("model: json matrices do not match dimension %d", w.N)
	}
	if w.Period <= 0 || len(w.Profile) != w.Period {
		return fmt.Errorf("model: json profile has %d phases, period %d", len(w.Profile), w.Period)
	}
	for p, row := range w.Profile {
		if len(row) != w.N {
			return fmt.Errorf("model: json profile phase %d has dim %d, want %d", p, len(row), w.N)
		}
	}
	if len(w.StateMean) != w.N || w.StateCov.Rows() != w.N || w.StateCov.Cols() != w.N {
		return fmt.Errorf("model: json state does not match dimension %d", w.N)
	}
	state, err := gauss.New(w.StateMean, w.StateCov)
	if err != nil {
		return err
	}
	lg.n = w.N
	lg.a = w.A
	lg.aT = w.A.T()
	lg.q = w.Q
	lg.qChol = nil
	lg.profile = w.Profile
	lg.period = w.Period
	lg.clock = w.Clock
	lg.state = state
	lg.ws = gauss.NewWorkspace(w.N)
	lg.idxBuf = make([]int, 0, w.N)
	lg.valsBuf = make([]float64, 0, w.N)
	return nil
}

// SaveLinearGaussian writes the model as JSON.
func SaveLinearGaussian(w io.Writer, lg *LinearGaussian) error {
	enc := json.NewEncoder(w)
	return enc.Encode(lg)
}

// LoadLinearGaussian reads a model previously written by
// SaveLinearGaussian.
func LoadLinearGaussian(r io.Reader) (*LinearGaussian, error) {
	var lg LinearGaussian
	dec := json.NewDecoder(r)
	if err := dec.Decode(&lg); err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	return &lg, nil
}

// switchingJSON is the stable wire form of a Switching model.
type switchingJSON struct {
	Base    *LinearGaussian `json:"base"`
	Offsets [][]float64     `json:"offsets"`
	Trans   [][]float64     `json:"trans"`
	Probs   []float64       `json:"probs"`
	ObsSD   []float64       `json:"obs_sd"`
}

// MarshalJSON implements json.Marshaler.
func (s *Switching) MarshalJSON() ([]byte, error) {
	return json.Marshal(switchingJSON{
		Base:    s.base,
		Offsets: s.offsets,
		Trans:   s.trans,
		Probs:   s.probs,
		ObsSD:   s.obsSD,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Switching) UnmarshalJSON(data []byte) error {
	var w switchingJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("model: %w", err)
	}
	if w.Base == nil {
		return fmt.Errorf("model: json switching model missing base")
	}
	r := len(w.Offsets)
	if r < 2 || len(w.Trans) != r || len(w.Probs) != r {
		return fmt.Errorf("model: json switching model regime shapes inconsistent (%d offsets, %d trans, %d probs)",
			r, len(w.Trans), len(w.Probs))
	}
	n := w.Base.Dim()
	for i, o := range w.Offsets {
		if len(o) != n {
			return fmt.Errorf("model: json switching offset %d has dim %d, want %d", i, len(o), n)
		}
	}
	for i, row := range w.Trans {
		if len(row) != r {
			return fmt.Errorf("model: json switching transition row %d has %d cols, want %d", i, len(row), r)
		}
	}
	if len(w.ObsSD) != n {
		return fmt.Errorf("model: json switching obsSD dim %d, want %d", len(w.ObsSD), n)
	}
	s.base = w.Base
	s.offsets = w.Offsets
	s.trans = w.Trans
	s.probs = w.Probs
	s.obsSD = w.ObsSD
	return nil
}

// SaveSwitching writes the model as JSON.
func SaveSwitching(w io.Writer, s *Switching) error {
	return json.NewEncoder(w).Encode(s)
}

// LoadSwitching reads a model previously written by SaveSwitching.
func LoadSwitching(r io.Reader) (*Switching, error) {
	var s Switching
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	return &s, nil
}
