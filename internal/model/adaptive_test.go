package model

import (
	"math"
	"math/rand"
	"testing"
)

// driftData synthesises a 2-attribute diurnal series whose amplitude and
// mean level shift permanently at the midpoint — the environment drifting
// away from what the initial training window saw.
func driftData(seed int64, steps int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, steps)
	w1, w2 := 0.0, 0.0
	for t := range data {
		amp, base := 1.5, 20.0
		if t >= steps/2 {
			amp, base = 3.2, 22.5 // season change
		}
		diurnal := amp * math.Sin(2*math.Pi*float64(t)/24)
		w1 = 0.75*w1 + 0.3*rng.NormFloat64()
		w2 = 0.75*w2 + 0.3*rng.NormFloat64()
		shared := 0.25 * rng.NormFloat64()
		data[t] = []float64{base + diurnal + w1 + shared, base + 0.4 + diurnal + w2 + shared}
	}
	return data
}

func TestNewAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(nil, AdaptiveConfig{}); err == nil {
		t.Fatal("expected error for nil inner model")
	}
	data := driftData(1, 200)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAdaptive(lg, AdaptiveConfig{RefitEvery: 1, Window: 2}); err == nil {
		t.Fatal("expected error for tiny window")
	}
}

func TestAdaptiveReplicaLockstep(t *testing.T) {
	data := driftData(2, 400)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptive(lg, AdaptiveConfig{RefitEvery: 48, Window: 96, Fit: FitConfig{Period: 24}})
	if err != nil {
		t.Fatal(err)
	}
	src := a.Clone()
	sink := a.Clone()
	eps := []float64{0.5, 0.5}
	for _, row := range data[100:300] {
		src.Step()
		sink.Step()
		obs, err := ChooseReportGreedy(src, row, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Condition(obs); err != nil {
			t.Fatal(err)
		}
		if err := sink.Condition(obs); err != nil {
			t.Fatal(err)
		}
		ma, mb := src.Mean(), sink.Mean()
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("adaptive replicas diverged: %v vs %v", ma, mb)
			}
		}
	}
}

func TestAdaptiveGuaranteeHolds(t *testing.T) {
	data := driftData(3, 600)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptive(lg, AdaptiveConfig{RefitEvery: 72, Window: 144, Fit: FitConfig{Period: 24}})
	if err != nil {
		t.Fatal(err)
	}
	m := a.Clone()
	eps := []float64{0.5, 0.5}
	for step, row := range data[100:] {
		m.Step()
		obs, err := ChooseReportGreedy(m, row, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Condition(obs); err != nil {
			t.Fatal(err)
		}
		if !WithinBounds(m.Mean(), row, eps) {
			t.Fatalf("step %d: adaptive model violated ε after conditioning", step)
		}
	}
}

func TestAdaptiveBeatsStaticUnderDrift(t *testing.T) {
	// After the mid-series season change, the static model's seasonal
	// profile and level are stale; the adaptive model relearns them from
	// the sink-visible stream and should report less on the second half.
	data := driftData(4, 1400)
	train := data[:100]
	test := data[100:]
	half := len(test) / 2
	eps := []float64{0.5, 0.5}

	lg, err := FitLinearGaussian(train, FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}

	run := func(m Model) (first, second float64) {
		sentFirst, sentSecond := 0, 0
		for i, row := range test {
			m.Step()
			obs, err := ChooseReportGreedy(m, row, eps)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Condition(obs); err != nil {
				t.Fatal(err)
			}
			if i < half {
				sentFirst += len(obs)
			} else {
				sentSecond += len(obs)
			}
		}
		den := float64(half * 2)
		return float64(sentFirst) / den, float64(sentSecond) / den
	}

	_, staticSecond := run(lg.Clone())
	adaptive, err := NewAdaptive(lg, AdaptiveConfig{RefitEvery: 96, Window: 240, Fit: FitConfig{Period: 24}})
	if err != nil {
		t.Fatal(err)
	}
	_, adaptiveSecond := run(adaptive.Clone())

	if adaptiveSecond >= staticSecond {
		t.Fatalf("adaptive (%v) should report less than static (%v) after the drift",
			adaptiveSecond, staticSecond)
	}
}

func TestAdaptiveRefitKeepsPhase(t *testing.T) {
	// After a refit the clock (and therefore the diurnal phase) must stay
	// aligned with absolute time.
	data := driftData(5, 500)
	lg, err := FitLinearGaussian(data[:100], FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptive(lg, AdaptiveConfig{RefitEvery: 50, Window: 100, Fit: FitConfig{Period: 24}})
	if err != nil {
		t.Fatal(err)
	}
	m := a.Clone().(*Adaptive)
	eps := []float64{0.5, 0.5}
	for _, row := range data[100:300] {
		m.Step()
		obs, err := ChooseReportGreedy(m, row, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Condition(obs); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := m.Inner().Clock(), 99+200; got != want {
		t.Fatalf("clock = %d, want %d", got, want)
	}
}
