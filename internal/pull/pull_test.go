package pull

import (
	"errors"
	"math"
	"testing"

	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/trace"
)

// gardenModel fits a 4-node garden LinearGaussian plus test rows.
func gardenModel(t *testing.T) (*model.LinearGaussian, [][]float64) {
	t.Helper()
	tr, err := trace.GenerateGarden(61, 250)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([][]float64, len(rows))
	for i, r := range rows {
		cols[i] = r[:4]
	}
	m, err := model.FitLinearGaussian(cols[:100], model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	return m, cols[100:]
}

// rowSource serves readings from a fixed row.
func rowSource(row []float64) Source {
	return SourceFunc(func(attr int) (float64, error) {
		if attr < 0 || attr >= len(row) {
			return 0, errors.New("bad attr")
		}
		return row[attr], nil
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("expected error for nil model")
	}
	m, _ := gardenModel(t)
	top, err := network.Uniform(7, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, top); err == nil {
		t.Fatal("expected error for topology size mismatch")
	}
}

func TestQueryValidation(t *testing.T) {
	m, test := gardenModel(t)
	e, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rowSource(test[0])
	if _, err := e.Query(ValueQuery{}, src); err == nil {
		t.Fatal("expected error for empty query")
	}
	if _, err := e.Query(ValueQuery{Attrs: []int{0}, Epsilon: 0, Confidence: 0.9}, src); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
	if _, err := e.Query(ValueQuery{Attrs: []int{0}, Epsilon: 1, Confidence: 1}, src); err == nil {
		t.Fatal("expected error for confidence 1")
	}
	if _, err := e.Query(ValueQuery{Attrs: []int{9}, Epsilon: 1, Confidence: 0.9}, src); err == nil {
		t.Fatal("expected error for out-of-range attribute")
	}
	if _, err := e.Query(ValueQuery{Attrs: []int{0}, Epsilon: 1, Confidence: 0.9}, nil); err == nil {
		t.Fatal("expected error for nil source")
	}
}

func TestFreshModelAnswersWithoutAcquisition(t *testing.T) {
	// Immediately after fitting, the state is a near point mass: any
	// reasonable query is answerable from the model alone.
	m, test := gardenModel(t)
	e, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(ValueQuery{Attrs: []int{0, 1}, Epsilon: 0.5, Confidence: 0.95}, rowSource(test[0]))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Acquired) != 0 || ans.Cost != 0 {
		t.Fatalf("fresh model acquired %v at cost %v", ans.Acquired, ans.Cost)
	}
	for _, c := range ans.Confidence {
		if c < 0.95 {
			t.Fatalf("confidence %v below requirement", c)
		}
	}
}

func TestUncertaintyGrowsUntilAcquisitionNeeded(t *testing.T) {
	m, test := gardenModel(t)
	e, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Let uncertainty accumulate for a day without any observations.
	for i := 0; i < 24; i++ {
		e.Step()
	}
	ans, err := e.Query(ValueQuery{Attrs: []int{0, 1, 2, 3}, Epsilon: 0.5, Confidence: 0.95},
		rowSource(test[23]))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Acquired) == 0 {
		t.Fatal("a day of drift should force acquisition at ε=0.5, δ=0.95")
	}
	for k, c := range ans.Confidence {
		if c < 0.95 {
			t.Fatalf("attr %d confidence %v below requirement", k, c)
		}
	}
	// Acquired attributes answer exactly.
	for _, a := range ans.Acquired {
		for k, qa := range []int{0, 1, 2, 3} {
			if qa == a && math.Abs(ans.Values[k]-test[23][a]) > 1e-9 {
				t.Fatalf("acquired attr %d not exact: %v vs %v", a, ans.Values[k], test[23][a])
			}
		}
	}
}

func TestSpatialCorrelationSavesAcquisitions(t *testing.T) {
	// At a looser precision, conditioning on a couple of readings should
	// satisfy the whole query through spatial correlation — BBQ's central
	// trick.
	m, test := gardenModel(t)
	e, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		e.Step()
	}
	ans, err := e.Query(ValueQuery{Attrs: []int{0, 1, 2, 3}, Epsilon: 1.2, Confidence: 0.9},
		rowSource(test[23]))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Acquired) == 0 {
		t.Fatal("expected some acquisition after a day of drift")
	}
	if len(ans.Acquired) >= 4 {
		t.Fatalf("acquired everything (%v); correlations unused", ans.Acquired)
	}
}

func TestLooseQueryCheaperThanTightQuery(t *testing.T) {
	m, test := gardenModel(t)
	run := func(eps float64) float64 {
		e, err := New(m.Clone().(*model.LinearGaussian), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			e.Step()
		}
		ans, err := e.Query(ValueQuery{Attrs: []int{0, 1, 2, 3}, Epsilon: eps, Confidence: 0.95},
			rowSource(test[23]))
		if err != nil {
			t.Fatal(err)
		}
		return ans.Cost
	}
	if tight, loose := run(0.3), run(3.0); loose > tight {
		t.Fatalf("loose query cost %v exceeds tight query cost %v", loose, tight)
	}
}

func TestAcquisitionCostUsesTopology(t *testing.T) {
	m, test := gardenModel(t)
	top, err := network.Uniform(4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(m.Clone().(*model.LinearGaussian), top)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		e.Step()
	}
	ans, err := e.Query(ValueQuery{Attrs: []int{0, 1, 2, 3}, Epsilon: 0.5, Confidence: 0.95},
		rowSource(test[23]))
	if err != nil {
		t.Fatal(err)
	}
	// Each acquisition is a round trip of cost 2×5.
	if want := float64(len(ans.Acquired)) * 10; math.Abs(ans.Cost-want) > 1e-9 {
		t.Fatalf("cost %v, want %v", ans.Cost, want)
	}
}

func TestCombinedPushPull(t *testing.T) {
	// §2: Ken and BBQ are complementary. A replica kept warm by pushes
	// (Condition) answers pull queries cheaper than a cold one.
	m, test := gardenModel(t)

	cold, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		cold.Step()
		warm.Step()
		// The warm replica receives a Ken push of node 0 every few hours.
		if i%4 == 0 {
			if err := warm.Condition(map[int]float64{0: test[i][0]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := ValueQuery{Attrs: []int{0, 1, 2, 3}, Epsilon: 0.5, Confidence: 0.9}
	coldAns, err := cold.Query(q, rowSource(test[23]))
	if err != nil {
		t.Fatal(err)
	}
	warmAns, err := warm.Query(q, rowSource(test[23]))
	if err != nil {
		t.Fatal(err)
	}
	if warmAns.Cost > coldAns.Cost {
		t.Fatalf("push-warmed replica cost %v exceeds cold cost %v", warmAns.Cost, coldAns.Cost)
	}
}

func TestQuerySourceError(t *testing.T) {
	m, _ := gardenModel(t)
	e, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		e.Step()
	}
	bad := SourceFunc(func(int) (float64, error) { return 0, errors.New("radio down") })
	if _, err := e.Query(ValueQuery{Attrs: []int{0}, Epsilon: 0.1, Confidence: 0.99}, bad); err == nil {
		t.Fatal("expected source error to propagate")
	}
}

func TestQueryAverageValidation(t *testing.T) {
	m, test := gardenModel(t)
	e, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rowSource(test[0])
	if _, err := e.QueryAverage(AvgQuery{}, src); err == nil {
		t.Fatal("expected error for empty query")
	}
	if _, err := e.QueryAverage(AvgQuery{Attrs: []int{0}, Epsilon: 0, Confidence: 0.9}, src); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
	if _, err := e.QueryAverage(AvgQuery{Attrs: []int{0}, Epsilon: 1, Confidence: 0}, src); err == nil {
		t.Fatal("expected error for zero confidence")
	}
	if _, err := e.QueryAverage(AvgQuery{Attrs: []int{9}, Epsilon: 1, Confidence: 0.9}, src); err == nil {
		t.Fatal("expected error for out-of-range attribute")
	}
	if _, err := e.QueryAverage(AvgQuery{Attrs: []int{0}, Epsilon: 1, Confidence: 0.9}, nil); err == nil {
		t.Fatal("expected error for nil source")
	}
}

func TestQueryAverageCheaperThanValues(t *testing.T) {
	// The aggregate query should need fewer acquisitions than the value
	// query at the same ε/δ: averaging cancels idiosyncratic noise.
	m, test := gardenModel(t)
	drift := func() *Engine {
		e, err := New(m.Clone().(*model.LinearGaussian), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			e.Step()
		}
		return e
	}
	q := []int{0, 1, 2, 3}
	vAns, err := drift().Query(ValueQuery{Attrs: q, Epsilon: 0.5, Confidence: 0.95}, rowSource(test[23]))
	if err != nil {
		t.Fatal(err)
	}
	aAns, err := drift().QueryAverage(AvgQuery{Attrs: q, Epsilon: 0.5, Confidence: 0.95}, rowSource(test[23]))
	if err != nil {
		t.Fatal(err)
	}
	if aAns.Cost > vAns.Cost {
		t.Fatalf("average query cost %v exceeds value query cost %v", aAns.Cost, vAns.Cost)
	}
	if aAns.Confidence < 0.95 {
		t.Fatalf("average confidence %v below requirement", aAns.Confidence)
	}
	// The answer should be close to the true average.
	truth := 0.0
	for _, a := range q {
		truth += test[23][a]
	}
	truth /= float64(len(q))
	if d := math.Abs(aAns.Value - truth); d > 1.5 {
		t.Fatalf("average estimate %v vs truth %v", aAns.Value, truth)
	}
}

func TestQueryAverageFreshModelFree(t *testing.T) {
	m, test := gardenModel(t)
	e, err := New(m.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.QueryAverage(AvgQuery{Attrs: []int{0, 1, 2, 3}, Epsilon: 0.5, Confidence: 0.95},
		rowSource(test[0]))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Cost != 0 {
		t.Fatalf("fresh model paid %v for an average", ans.Cost)
	}
}
