// Package pull implements a BBQ-style pull-based query engine over the
// same probabilistic models Ken pushes with. The paper (§2) positions the
// two as complementary: Ken proactively pushes anomalies so the sink is
// never more than ε wrong; BBQ answers on-demand queries by *acquiring* the
// minimum set of readings needed to make the model confident enough.
//
// A value query asks for attribute values within ±ε with confidence at
// least δ. The engine computes per-attribute confidence from the model's
// posterior marginals; while any queried attribute falls short, it acquires
// the reading that most cheaply raises confidence (observing an attribute
// drives its own uncertainty to zero and, through spatial correlation,
// shrinks its neighbours'), conditions the model, and re-checks.
package pull

import (
	"errors"
	"fmt"
	"math"

	"ken/internal/mat"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
)

// Source supplies ground-truth readings on demand — in a deployment this
// is the sensornet; in tests, the trace.
type Source interface {
	// Read acquires the current reading of the attribute.
	Read(attr int) (float64, error)
}

// SourceFunc adapts a function to Source.
type SourceFunc func(attr int) (float64, error)

// Read implements Source.
func (f SourceFunc) Read(attr int) (float64, error) { return f(attr) }

// ValueQuery asks for the listed attributes within ±Epsilon with
// per-attribute confidence at least Confidence.
type ValueQuery struct {
	Attrs      []int
	Epsilon    float64
	Confidence float64
}

// Answer is the engine's response.
type Answer struct {
	// Values holds the posterior means of the queried attributes, in query
	// order (acquired attributes are exact).
	Values []float64
	// Confidence holds P(|X − value| ≤ ε) per queried attribute.
	Confidence []float64
	// Acquired lists the attributes read from the network, in order.
	Acquired []int
	// Cost is the total acquisition communication cost (round trip per
	// reading when a topology is attached; one unit otherwise).
	Cost float64
}

// Engine evaluates pull queries against a LinearGaussian model replica.
type Engine struct {
	m   *model.LinearGaussian
	top *network.Topology // optional acquisition pricing

	// Observability handles (nil and no-op until Instrument is called).
	tracer        *obs.Tracer
	queries       int64
	querySpan     int64          // span id of the in-flight query, 0 when untraced
	mQueries      *obs.Counter   // pull_queries_total
	mAcquisitions *obs.Counter   // pull_acquisitions_total
	gCost         *obs.Gauge     // pull_acquisition_cost_total
	hPerQuery     *obs.Histogram // pull_acquisitions_per_query
}

// Instrument attaches metrics and pull-request event tracing to the
// engine. A nil observer leaves it unobserved (the default).
func (e *Engine) Instrument(ob *obs.Observer) {
	e.tracer = ob.Tracer()
	reg := ob.Registry()
	e.mQueries = reg.Counter("pull_queries_total")
	e.mAcquisitions = reg.Counter("pull_acquisitions_total")
	e.gCost = reg.Gauge("pull_acquisition_cost_total")
	e.hPerQuery = reg.Histogram("pull_acquisitions_per_query")
}

// observeAcquire records one on-demand reading acquisition, parented to
// the in-flight query's span so the auditor can group a query's
// acquisitions together.
func (e *Engine) observeAcquire(attr int, v, cost float64) {
	e.mAcquisitions.Inc()
	e.gCost.Add(cost)
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Type: obs.EvPull, Step: e.queries, Clique: -1, Node: attr,
			Values: []float64{v}, Parent: e.querySpan,
			Payload: &obs.Payload{Observed: []float64{v}, Bytes: obs.WireBytesPerValue},
		})
	}
}

// beginQuery counts the query and allocates its span id (0 when untraced).
func (e *Engine) beginQuery() {
	e.queries++
	e.mQueries.Inc()
	e.querySpan = e.tracer.NewSpanID()
}

// New builds an engine over the model. top may be nil (unit acquisition
// costs).
func New(m *model.LinearGaussian, top *network.Topology) (*Engine, error) {
	if m == nil {
		return nil, errors.New("pull: nil model")
	}
	if top != nil && top.N() != m.Dim() {
		return nil, fmt.Errorf("pull: topology has %d nodes, model %d", top.N(), m.Dim())
	}
	return &Engine{m: m, top: top}, nil
}

// Step advances the model one sampling period (uncertainty grows between
// queries, exactly as in BBQ's temporal model).
func (e *Engine) Step() { e.m.Step() }

// Condition folds externally learned values (e.g. Ken pushes in a combined
// push/pull deployment) into the replica.
func (e *Engine) Condition(obs map[int]float64) error { return e.m.Condition(obs) }

// Model exposes the underlying replica (read-only use expected).
func (e *Engine) Model() *model.LinearGaussian { return e.m }

// confidence returns P(|X_i − μ_i| ≤ ε) under the marginal posterior.
func confidence(variance, eps float64) float64 {
	if variance <= 0 {
		return 1
	}
	return math.Erf(eps / math.Sqrt(2*variance))
}

// acquisitionCost prices reading one attribute: a round trip to the node.
func (e *Engine) acquisitionCost(attr int) float64 {
	if e.top == nil {
		return 1
	}
	return 2 * e.top.CommToBase(attr)
}

// Query answers a value query, acquiring readings as needed. The model is
// left conditioned on everything acquired (subsequent queries benefit).
func (e *Engine) Query(q ValueQuery, src Source) (*Answer, error) {
	if len(q.Attrs) == 0 {
		return nil, errors.New("pull: query has no attributes")
	}
	if q.Epsilon <= 0 {
		return nil, fmt.Errorf("pull: non-positive epsilon %v", q.Epsilon)
	}
	if q.Confidence <= 0 || q.Confidence >= 1 {
		return nil, fmt.Errorf("pull: confidence %v outside (0,1)", q.Confidence)
	}
	n := e.m.Dim()
	for _, a := range q.Attrs {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("pull: attribute %d out of range %d", a, n)
		}
	}
	if src == nil {
		return nil, errors.New("pull: nil source")
	}
	e.beginQuery()

	ans := &Answer{}
	acquired := map[int]bool{}
	for {
		cov := e.m.Cov()
		worst, worstScore := -1, 0.0
		allOK := true
		for _, a := range q.Attrs {
			if acquired[a] {
				continue
			}
			c := confidence(cov.At(a, a), q.Epsilon)
			if c >= q.Confidence {
				continue
			}
			allOK = false
			// Greedy pick: the largest confidence deficit per unit
			// acquisition cost.
			score := (q.Confidence - c) / e.acquisitionCost(a)
			if worst < 0 || score > worstScore {
				worst, worstScore = a, score
			}
		}
		if allOK {
			break
		}
		v, err := src.Read(worst)
		if err != nil {
			return nil, fmt.Errorf("pull: acquiring attribute %d: %w", worst, err)
		}
		if err := e.m.Condition(map[int]float64{worst: v}); err != nil {
			return nil, err
		}
		acquired[worst] = true
		ans.Acquired = append(ans.Acquired, worst)
		ans.Cost += e.acquisitionCost(worst)
		e.observeAcquire(worst, v, e.acquisitionCost(worst))
	}
	e.hPerQuery.Observe(float64(len(ans.Acquired)))

	mean := e.m.Mean()
	cov := e.m.Cov()
	ans.Values = make([]float64, len(q.Attrs))
	ans.Confidence = make([]float64, len(q.Attrs))
	for k, a := range q.Attrs {
		ans.Values[k] = mean[a]
		ans.Confidence[k] = confidence(cov.At(a, a), q.Epsilon)
	}
	return ans, nil
}

// AvgQuery asks for the average of the listed attributes within ±Epsilon
// with confidence at least Confidence — the aggregate query class BBQ
// optimises. Spatial correlation makes these dramatically cheaper than
// value queries: the posterior variance of an average shrinks with every
// acquired reading of any correlated attribute.
type AvgQuery struct {
	Attrs      []int
	Epsilon    float64
	Confidence float64
}

// AvgAnswer is the engine's aggregate response.
type AvgAnswer struct {
	Value      float64
	Confidence float64
	Acquired   []int
	Cost       float64
}

// avgVariance returns Var(mean of attrs) = wᵀΣw with w = 1/k on attrs.
func avgVariance(cov *mat.Dense, attrs []int) float64 {
	k := float64(len(attrs))
	v := 0.0
	for _, i := range attrs {
		for _, j := range attrs {
			v += cov.At(i, j)
		}
	}
	return v / (k * k)
}

// QueryAverage answers an aggregate query, acquiring readings until the
// average's posterior is confident enough. The model keeps everything
// acquired.
func (e *Engine) QueryAverage(q AvgQuery, src Source) (*AvgAnswer, error) {
	if len(q.Attrs) == 0 {
		return nil, errors.New("pull: average query has no attributes")
	}
	if q.Epsilon <= 0 {
		return nil, fmt.Errorf("pull: non-positive epsilon %v", q.Epsilon)
	}
	if q.Confidence <= 0 || q.Confidence >= 1 {
		return nil, fmt.Errorf("pull: confidence %v outside (0,1)", q.Confidence)
	}
	n := e.m.Dim()
	for _, a := range q.Attrs {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("pull: attribute %d out of range %d", a, n)
		}
	}
	if src == nil {
		return nil, errors.New("pull: nil source")
	}
	e.beginQuery()

	ans := &AvgAnswer{}
	acquired := map[int]bool{}
	for {
		cov := e.m.Cov()
		if confidence(avgVariance(cov, q.Attrs), q.Epsilon) >= q.Confidence {
			break
		}
		// Acquire the attribute whose covariance with the query set is
		// largest per unit cost — observing it collapses the most
		// aggregate variance.
		best, bestScore := -1, 0.0
		for _, a := range q.Attrs {
			if acquired[a] {
				continue
			}
			contrib := 0.0
			for _, j := range q.Attrs {
				contrib += cov.At(a, j)
			}
			if score := contrib / e.acquisitionCost(a); best < 0 || score > bestScore {
				best, bestScore = a, score
			}
		}
		if best < 0 {
			// Everything acquired and still unconfident: the average of
			// exact readings is exact — numerically this cannot persist,
			// but guard against an infinite loop.
			break
		}
		v, err := src.Read(best)
		if err != nil {
			return nil, fmt.Errorf("pull: acquiring attribute %d: %w", best, err)
		}
		if err := e.m.Condition(map[int]float64{best: v}); err != nil {
			return nil, err
		}
		acquired[best] = true
		ans.Acquired = append(ans.Acquired, best)
		ans.Cost += e.acquisitionCost(best)
		e.observeAcquire(best, v, e.acquisitionCost(best))
	}
	e.hPerQuery.Observe(float64(len(ans.Acquired)))

	mean := e.m.Mean()
	cov := e.m.Cov()
	s := 0.0
	for _, a := range q.Attrs {
		s += mean[a]
	}
	ans.Value = s / float64(len(q.Attrs))
	ans.Confidence = confidence(avgVariance(cov, q.Attrs), q.Epsilon)
	return ans, nil
}
