package deploy

import (
	"testing"

	"ken/internal/stream"
)

func TestBuildDefaults(t *testing.T) {
	dep, err := Build(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.N != 11 {
		t.Fatalf("garden N = %d", dep.N)
	}
	if len(dep.Test) != 500 {
		t.Fatalf("test steps = %d", len(dep.Test))
	}
	if err := dep.Partition.Validate(dep.N); err != nil {
		t.Fatal(err)
	}
	if dep.Partition.MaxCliqueSize() > 2 {
		t.Fatalf("default K=2 violated: %s", dep.Partition)
	}
}

func TestBuildUnknownDataset(t *testing.T) {
	if _, err := Build(Params{Dataset: "mars"}); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestBuildDeterministicAcrossProcesses(t *testing.T) {
	// The property the two binaries rely on: identical parameters yield
	// identical partitions and lock-stepped replicas.
	p := Params{Dataset: "garden", Seed: 9, TrainSteps: 100, TestSteps: 150, K: 3}
	a, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Partition.String() != b.Partition.String() {
		t.Fatalf("partitions differ: %s vs %s", a.Partition, b.Partition)
	}
	src, err := stream.NewSource(a.Config)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := stream.NewReplica(b.Config) // built from the "other process"
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range a.Test {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Apply(f); err != nil {
			t.Fatal(err)
		}
		est := sink.Estimates()
		for i := range row {
			if d := est[i] - row[i]; d > 0.5+1e-9 || d < -0.5-1e-9 {
				t.Fatalf("cross-process replicas violated ε: %v vs %v", est[i], row[i])
			}
		}
	}
}

func TestBuildEpsilonOverride(t *testing.T) {
	dep, err := Build(Params{Epsilon: 2.0, TestSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range dep.Config.Eps {
		if e != 2.0 {
			t.Fatalf("eps = %v, want override 2.0", e)
		}
	}
}
