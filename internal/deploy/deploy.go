// Package deploy assembles ready-to-run Ken deployments from the synthetic
// datasets: it generates the trace, fits and selects a Disjoint-Cliques
// partition, and produces the shared endpoint configuration the streaming
// binaries (kensource / kensink) need. Because every step is a
// deterministic function of the flags, two independent processes built
// from the same parameters end up with bit-identical replicas — the
// property the replicated-model protocol depends on.
package deploy

import (
	"fmt"

	"ken/internal/cliques"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/stream"
	"ken/internal/trace"
)

// Params selects and sizes a deployment.
type Params struct {
	// Dataset is "garden" or "lab".
	Dataset string
	// Seed drives trace generation, Monte Carlo estimation and partition
	// selection. Both endpoints must use the same seed.
	Seed int64
	// TrainSteps and TestSteps size the trace (defaults 100 / 500).
	TrainSteps, TestSteps int
	// K caps the Greedy-k clique size (default 2).
	K int
	// Epsilon overrides the attribute default when positive.
	Epsilon float64
	// HeartbeatEvery is forwarded to the stream config.
	HeartbeatEvery int
}

func (p Params) withDefaults() Params {
	if p.Dataset == "" {
		p.Dataset = "garden"
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.TrainSteps <= 0 {
		p.TrainSteps = 100
	}
	if p.TestSteps <= 0 {
		p.TestSteps = 500
	}
	if p.K <= 0 {
		p.K = 2
	}
	return p
}

// Deployment is everything both endpoints agree on, plus the test data the
// source streams.
type Deployment struct {
	Params    Params
	N         int
	Partition *cliques.Partition
	Config    stream.Config
	Test      [][]float64
}

// Build assembles the deployment deterministically from the parameters.
func Build(p Params) (*Deployment, error) {
	p = p.withDefaults()
	var (
		tr  *trace.Trace
		err error
	)
	steps := p.TrainSteps + p.TestSteps
	switch p.Dataset {
	case "garden":
		tr, err = trace.GenerateGarden(p.Seed, steps)
	case "lab":
		tr, err = trace.GenerateLab(p.Seed, steps)
	default:
		return nil, fmt.Errorf("deploy: unknown dataset %q (garden or lab)", p.Dataset)
	}
	if err != nil {
		return nil, err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	n := tr.Deployment.N()
	train, test := rows[:p.TrainSteps], rows[p.TrainSteps:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = trace.Temperature.DefaultEpsilon()
		if p.Epsilon > 0 {
			eps[i] = p.Epsilon
		}
	}

	eval, err := cliques.NewMCEvaluator(train, eps, model.FitConfig{Period: 24},
		mc.Config{Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	top, err := network.Uniform(n, 1, 5)
	if err != nil {
		return nil, err
	}
	part, err := cliques.Greedy(top, eval, cliques.GreedyConfig{
		K:      p.K,
		Metric: cliques.MetricReduction,
	})
	if err != nil {
		return nil, err
	}

	return &Deployment{
		Params:    p,
		N:         n,
		Partition: part,
		Config: stream.Config{
			Partition:      part,
			Train:          train,
			Eps:            eps,
			FitCfg:         model.FitConfig{Period: 24},
			HeartbeatEvery: p.HeartbeatEvery,
		},
		Test: test,
	}, nil
}
