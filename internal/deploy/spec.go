// Deployment-spec wire schema. The session handshake (internal/wire,
// internal/stream) carries a serialized Params in the HELLO frame so the
// sink can build a bit-identical replica from the client's spec instead
// of trusting matched CLI flags. The encoding is versioned and pinned by
// a golden test: changing it silently would strand deployed sources.
package deploy

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math"
)

// SpecVersion is the serialized Params schema version. Decoders accept
// every version they know how to parse; unknown versions yield
// ErrSpecVersion so a sink can name the gap instead of misparsing.
const SpecVersion = 1

// ErrSpecVersion reports a serialized spec from an unknown schema version.
var ErrSpecVersion = errors.New("deploy: unknown spec version")

// maxSpecSteps bounds the step counts a remote spec may request, so a
// hostile HELLO cannot make the sink generate an absurd trace.
const maxSpecSteps = 1 << 20

// Register installs the shared deployment flag block — -dataset, -seed,
// -train, -k and -eps — on fs, replacing the hand-copied per-binary sets.
// Defaults match the historical kensink/kensource flags. TestSteps and
// HeartbeatEvery stay per-binary flags: they shape the source's run, not
// the replica both sides must agree on.
func (p *Params) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.Dataset, "dataset", "garden", "deployment: garden or lab")
	fs.Int64Var(&p.Seed, "seed", 1, "shared deployment seed")
	fs.IntVar(&p.TrainSteps, "train", 100, "shared training steps")
	fs.IntVar(&p.K, "k", 2, "shared max clique size")
	fs.Float64Var(&p.Epsilon, "eps", 0, "shared error bound override (0 = attribute default)")
}

// Validate checks the (default-normalized) parameters without building
// anything — the admission check a sink runs on a decoded HELLO spec.
func (p Params) Validate() error {
	p = p.withDefaults()
	switch p.Dataset {
	case "garden", "lab":
	default:
		return fmt.Errorf("deploy: unknown dataset %q (garden or lab)", p.Dataset)
	}
	if p.TrainSteps > maxSpecSteps || p.TestSteps > maxSpecSteps {
		return fmt.Errorf("deploy: %d train / %d test steps exceed the %d-step limit",
			p.TrainSteps, p.TestSteps, maxSpecSteps)
	}
	if p.K > 64 {
		return fmt.Errorf("deploy: clique size k=%d exceeds 64", p.K)
	}
	if p.Epsilon < 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) {
		return fmt.Errorf("deploy: invalid epsilon %v", p.Epsilon)
	}
	if p.HeartbeatEvery < 0 {
		return fmt.Errorf("deploy: negative heartbeat interval %d", p.HeartbeatEvery)
	}
	return nil
}

// EncodeSpec serialises the default-normalized parameters for the HELLO
// frame. Encoding normalizes first so two specs that build the same
// deployment encode to the same bytes.
func (p Params) EncodeSpec() []byte {
	p = p.withDefaults()
	buf := make([]byte, 0, 32+len(p.Dataset))
	buf = binary.AppendUvarint(buf, SpecVersion)
	buf = binary.AppendUvarint(buf, uint64(len(p.Dataset)))
	buf = append(buf, p.Dataset...)
	buf = binary.AppendVarint(buf, p.Seed)
	buf = binary.AppendUvarint(buf, uint64(p.TrainSteps))
	buf = binary.AppendUvarint(buf, uint64(p.TestSteps))
	buf = binary.AppendUvarint(buf, uint64(p.K))
	var eps [8]byte
	binary.LittleEndian.PutUint64(eps[:], math.Float64bits(p.Epsilon))
	buf = append(buf, eps[:]...)
	buf = binary.AppendUvarint(buf, uint64(p.HeartbeatEvery))
	return buf
}

// DecodeSpec parses a serialized spec. It accepts every schema version
// this build knows (currently v1) and returns ErrSpecVersion — naming the
// version — for anything newer.
func DecodeSpec(buf []byte) (Params, error) {
	version, n := binary.Uvarint(buf)
	if n <= 0 {
		return Params{}, errors.New("deploy: corrupt spec: version")
	}
	if version != 1 {
		return Params{}, fmt.Errorf("%w %d (this build speaks v%d)", ErrSpecVersion, version, SpecVersion)
	}
	rest := buf[n:]
	dsLen, n := binary.Uvarint(rest)
	if n <= 0 || dsLen > 64 {
		return Params{}, errors.New("deploy: corrupt spec: dataset length")
	}
	rest = rest[n:]
	if uint64(len(rest)) < dsLen {
		return Params{}, errors.New("deploy: corrupt spec: truncated dataset")
	}
	var p Params
	p.Dataset = string(rest[:dsLen])
	rest = rest[dsLen:]
	seed, n := binary.Varint(rest)
	if n <= 0 {
		return Params{}, errors.New("deploy: corrupt spec: seed")
	}
	rest = rest[n:]
	p.Seed = seed
	for _, f := range []struct {
		dst  *int
		what string
	}{
		{&p.TrainSteps, "train steps"},
		{&p.TestSteps, "test steps"},
		{&p.K, "k"},
	} {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > maxSpecSteps {
			return Params{}, fmt.Errorf("deploy: corrupt spec: %s", f.what)
		}
		rest = rest[n:]
		*f.dst = int(v)
	}
	if len(rest) < 8 {
		return Params{}, errors.New("deploy: corrupt spec: epsilon")
	}
	p.Epsilon = math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
	rest = rest[8:]
	hb, n := binary.Uvarint(rest)
	if n <= 0 || hb > maxSpecSteps {
		return Params{}, errors.New("deploy: corrupt spec: heartbeat")
	}
	rest = rest[n:]
	if len(rest) != 0 {
		return Params{}, errors.New("deploy: corrupt spec: trailing bytes")
	}
	p.HeartbeatEvery = int(hb)
	return p, nil
}

// ReplicaKey is the canonical string of the fields that determine the
// sink replica — dataset, seed, training prefix, clique bound and ε.
// TestSteps and HeartbeatEvery are deliberately excluded: they shape the
// source's run, not the replica, so two tenants that differ only there
// share one build (and a pinned sink accepts both).
func (p Params) ReplicaKey() string {
	p = p.withDefaults()
	return fmt.Sprintf("%s/seed=%d/train=%d/k=%d/eps=%g",
		p.Dataset, p.Seed, p.TrainSteps, p.K, p.Epsilon)
}
