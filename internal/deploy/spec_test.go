package deploy

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"math"
	"testing"
)

// TestSpecGoldenBytes pins the v1 serialized-spec encoding across schema
// versions: a sink must keep decoding specs from already-deployed sources.
func TestSpecGoldenBytes(t *testing.T) {
	p := Params{
		Dataset: "garden", Seed: 1, TrainSteps: 100, TestSteps: 500,
		K: 2, Epsilon: 0.5, HeartbeatEvery: 24,
	}
	got := p.EncodeSpec()
	want := []byte{
		0x01,                         // spec version 1
		0x06,                         // dataset length
		'g', 'a', 'r', 'd', 'e', 'n', // dataset
		0x02,       // seed 1 (zigzag varint)
		0x64,       // train 100
		0xF4, 0x03, // test 500
		0x02,                                           // k
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F, // ε = 0.5 (LE float64 bits)
		0x18, // heartbeat 24
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("spec v1 format changed:\n got  %#v\n want %#v", got, want)
	}
	back, err := DecodeSpec(want)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("golden bytes decode to %+v, want %+v", back, p)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cases := []Params{
		{}, // all defaults
		{Dataset: "lab", Seed: -7, TrainSteps: 50, TestSteps: 120, K: 3, Epsilon: 0.25},
		{Dataset: "garden", Seed: 1 << 40, TrainSteps: 100, TestSteps: 1, K: 2, HeartbeatEvery: 1},
	}
	for _, p := range cases {
		back, err := DecodeSpec(p.EncodeSpec())
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		// Encoding normalizes, so the round trip lands on the defaulted form.
		if back != p.withDefaults() {
			t.Fatalf("round trip: %+v vs %+v", back, p.withDefaults())
		}
	}
}

func TestDecodeSpecUnknownVersion(t *testing.T) {
	buf := Params{}.EncodeSpec()
	buf[0] = 0x02 // future schema version
	_, err := DecodeSpec(buf)
	if !errors.Is(err, ErrSpecVersion) {
		t.Fatalf("future version decoded: %v", err)
	}
}

func TestDecodeSpecCorrupt(t *testing.T) {
	valid := Params{}.EncodeSpec()
	cases := map[string][]byte{
		"empty":        {},
		"dataset huge": {0x01, 0xFF, 0x01},
		"truncated":    valid[:len(valid)-3],
		"trailing":     append(append([]byte{}, valid...), 0x00),
	}
	for name, buf := range cases {
		if _, err := DecodeSpec(buf); err == nil {
			t.Errorf("%s: decoded garbage %#v", name, buf)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Params{
		{}, // defaults
		{Dataset: "lab", Epsilon: 0.1},
		{TestSteps: maxSpecSteps},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", p, err)
		}
	}
	bad := []Params{
		{Dataset: "office"},
		{TestSteps: maxSpecSteps + 1},
		{TrainSteps: maxSpecSteps + 1},
		{K: 65},
		{Epsilon: -1},
		{Epsilon: math.NaN()},
		{Epsilon: math.Inf(1)},
		{HeartbeatEvery: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

// TestRegister: the one shared flag block drives kensink, kensource and
// kensinkd; parsing it must populate exactly the replica-relevant fields.
func TestRegister(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var p Params
	p.Register(fs)
	if err := fs.Parse([]string{"-dataset", "lab", "-seed", "9", "-train", "80", "-k", "3", "-eps", "0.75"}); err != nil {
		t.Fatal(err)
	}
	want := Params{Dataset: "lab", Seed: 9, TrainSteps: 80, K: 3, Epsilon: 0.75}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}

	// Defaults must match the historical per-binary flag values.
	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	var d Params
	d.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if d != (Params{Dataset: "garden", Seed: 1, TrainSteps: 100, K: 2}) {
		t.Fatalf("flag defaults drifted: %+v", d)
	}
}

// TestReplicaKey: TestSteps and HeartbeatEvery shape the source's run,
// not the replica, so they must not split the build cache or a pin.
func TestReplicaKey(t *testing.T) {
	a := Params{Dataset: "garden", Seed: 1, TestSteps: 10, HeartbeatEvery: 5}
	b := Params{Dataset: "garden", Seed: 1, TestSteps: 9999, HeartbeatEvery: 0}
	if a.ReplicaKey() != b.ReplicaKey() {
		t.Fatalf("source-local fields leak into the key: %q vs %q", a.ReplicaKey(), b.ReplicaKey())
	}
	c := Params{Dataset: "garden", Seed: 2}
	if a.ReplicaKey() == c.ReplicaKey() {
		t.Fatalf("different seeds share a key: %q", a.ReplicaKey())
	}
	// The key is default-normalized: zero Params equals explicit defaults.
	if (Params{}).ReplicaKey() != (Params{Dataset: "garden", Seed: 1, TrainSteps: 100, K: 2}).ReplicaKey() {
		t.Fatal("key is not default-normalized")
	}
}
