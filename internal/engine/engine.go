// Package engine is the parallel experiment runner underneath kenbench and
// kensim. An experiment (one paper figure, one scheme comparison) decomposes
// into independent cells — (scheme × config × trace window) units that share
// no mutable state — and the engine executes those cells across a bounded
// worker pool while a keyed, single-flight artifact cache deduplicates the
// expensive inputs they share: generated traces, trained models, Monte
// Carlo evaluators and clique partitions.
//
// # Determinism
//
// Parallel execution must be invisible in the results. The engine
// guarantees this by construction:
//
//   - Map returns results in item order, whatever order cells finish in.
//   - Cells receive no shared mutable state; artifacts handed out by the
//     cache are treated as immutable by convention.
//   - Randomness inside a cell is seeded from the experiment seed and the
//     cell's identity via CellSeed, never from a shared RNG whose
//     consumption order would depend on scheduling.
//
// Together these make a Workers=8 run byte-identical to a Workers=1 run
// (enforced by the golden tests in internal/bench).
package engine

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"runtime"
	"strconv"
	"sync"

	"ken/internal/obs"
)

// Options configure an Engine.
type Options struct {
	// Workers bounds concurrent cells; <= 0 uses runtime.GOMAXPROCS(0).
	Workers int
	// Obs, when non-nil, receives per-cell timers and cache hit/miss
	// counters (engine_* metrics). Nil runs dark at zero cost.
	Obs *obs.Observer
}

// Engine is a worker pool plus a shared artifact cache. It is safe for
// concurrent use; a single Engine is meant to outlive many experiments so
// artifacts deduplicate across them.
type Engine struct {
	workers int
	sem     chan struct{}
	cache   *Cache

	mCells    *obs.Counter // engine_cells_total
	mCellErrs *obs.Counter // engine_cell_errors_total
	tCell     *obs.Timer   // engine_cell_seconds
}

// New builds an engine. The zero Options give a GOMAXPROCS-wide pool with
// observability off.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	reg := opts.Obs.Registry()
	return &Engine{
		workers:   w,
		sem:       make(chan struct{}, w),
		cache:     NewCache(opts.Obs),
		mCells:    reg.Counter("engine_cells_total"),
		mCellErrs: reg.Counter("engine_cell_errors_total"),
		tCell:     reg.Timer("engine_cell_seconds"),
	}
}

// Workers returns the pool width.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's shared artifact cache.
func (e *Engine) Cache() *Cache { return e.cache }

// inCellKey marks contexts handed to parallel cells, so a nested Map from
// inside a cell degrades to inline sequential execution instead of
// deadlocking on the pool semaphore.
type inCellKey struct{}

// scopeKey carries the trace scope path through cell contexts.
type scopeKey struct{}

// WithScope returns a context whose trace scope gains one path segment
// (nested under any existing scope with "/"). Experiments set a base scope
// before calling Map; Map then appends each cell's index, so events from
// concurrent cells sharing one trace file stay attributable — and, because
// the segment is the item index, a Workers=8 trace labels events exactly
// like a Workers=1 trace.
func WithScope(ctx context.Context, label string) context.Context {
	if label == "" {
		return ctx
	}
	if prev := Scope(ctx); prev != "" {
		label = prev + "/" + label
	}
	return context.WithValue(ctx, scopeKey{}, label)
}

// Scope returns the trace scope accumulated on the context ("" when
// unset). Pass it to core.RunOptions.Scope or obs.Tracer.WithScope.
func Scope(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	s, _ := ctx.Value(scopeKey{}).(string)
	return s
}

// Map runs fn over every item and returns the results in item order. Cells
// run concurrently up to the pool width; the first cell error cancels the
// cells that have not started yet and is returned (preferring a real error
// over the cancellations it induced). A canceled ctx stops new cells
// between items. A nil engine, a single-worker pool, or a call from inside
// another cell all run the items inline in order — same results, no
// concurrency.
func Map[T, R any](ctx context.Context, e *Engine, items []T, fn func(ctx context.Context, idx int, item T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	if e == nil || e.workers <= 1 || len(items) == 1 || ctx.Value(inCellKey{}) != nil {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			r, err := runCell(ctx, e, i, item, fn)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(context.WithValue(ctx, inCellKey{}, true))
	defer cancel()
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i := range items {
		select {
		case <-cctx.Done():
			errs[i] = cctx.Err()
			continue
		case e.sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, item T) {
			defer wg.Done()
			defer func() { <-e.sem }()
			r, err := runCell(cctx, e, i, item, fn)
			out[i], errs[i] = r, err
			if err != nil {
				cancel()
			}
		}(i, items[i])
	}
	wg.Wait()
	return out, firstError(errs)
}

// runCell executes one cell with per-cell timing. Clock access lives
// behind obs.Timer.Start so this package stays free of wall-clock reads
// (the kenlint nondeterminism invariant); all handles are nil-safe, so a
// nil engine runs dark at no cost.
func runCell[T, R any](ctx context.Context, e *Engine, i int, item T, fn func(ctx context.Context, idx int, item T) (R, error)) (R, error) {
	var tCell *obs.Timer
	var mCells, mCellErrs *obs.Counter
	if e != nil {
		tCell, mCells, mCellErrs = e.tCell, e.mCells, e.mCellErrs
	}
	stop := tCell.Start()
	r, err := fn(WithScope(ctx, strconv.Itoa(i)), i, item)
	stop()
	mCells.Inc()
	if err != nil {
		mCellErrs.Inc()
	}
	return r, err
}

// firstError picks the error to surface from a cell batch: the
// lowest-index error that is not a cancellation knock-on, falling back to
// the lowest-index error of any kind.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}

// CellSeed derives a deterministic per-cell RNG seed from an experiment
// seed and the cell's identity. Distinct labels decorrelate; the same
// (base, labels) always yields the same seed, so results do not depend on
// scheduling or worker count. The FNV-64a hash runs inline over the label
// bytes — no hash.Hash or []byte conversion allocations — with the same
// constants and NUL label separator as the hash/fnv implementation it
// replaces, so historical seeds are unchanged (pinned by the golden test).
//
//ken:hotpath inline FNV-64a over label bytes; allocates nothing
func CellSeed(base int64, labels ...string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= prime64
		}
		// NUL separator byte: XOR with zero is the identity, leaving only
		// the multiply.
		h *= prime64
	}
	return base ^ int64(h)
}

// KeyMatrix fingerprints a float64 matrix for use in cache keys. It hashes
// dimensions and raw float bits with FNV-64a — cheap, deterministic, and
// collision-resistant enough for the handful of training matrices one
// benchmark run touches.
func KeyMatrix(rows [][]float64) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(len(rows)))
	for _, row := range rows {
		put(uint64(len(row)))
		for _, v := range row {
			put(math.Float64bits(v))
		}
	}
	s := h.Sum64()
	const hex = "0123456789abcdef"
	var out [16]byte
	for i := range out {
		out[i] = hex[(s>>(60-4*i))&0xf]
	}
	return string(out[:])
}
