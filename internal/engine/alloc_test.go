package engine

import (
	"testing"

	"ken/internal/alloctest"
)

// TestAllocBudgetCellSeed pins the per-cell seed derivation at zero heap
// allocations: the FNV-64a hash runs inline over the label bytes, with no
// hash.Hash construction or string-to-byte conversions.
func TestAllocBudgetCellSeed(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	labels := []string{"scheme", "cfg3", "window7"}
	var sink int64
	if got := testing.AllocsPerRun(100, func() {
		sink = CellSeed(42, labels...)
	}); got != 0 {
		t.Errorf("CellSeed: %v allocs/op, budget 0", got)
	}
	if want := CellSeed(42, "scheme", "cfg3", "window7"); sink != want {
		t.Fatalf("seed %d, want %d", sink, want)
	}
}
