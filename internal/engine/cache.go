package engine

import (
	"fmt"
	"sync"

	"ken/internal/obs"
)

// Cache is a keyed, concurrency-safe, single-flight artifact store. The
// first Do for a key runs the build function; concurrent callers for the
// same key block until that build finishes and then share its result, so an
// expensive artifact (a generated trace, a fitted model, a clique
// partition) is produced exactly once per key no matter how many cells race
// for it.
//
// Results are held for the cache's lifetime and must be treated as
// immutable by every consumer — callers that need private mutable state
// clone what the cache hands out (model.Model.Clone is the canonical
// example).
type Cache struct {
	mu      sync.Mutex
	flights map[string]*flight

	mHits   *obs.Counter // engine_cache_hits_total
	mMisses *obs.Counter // engine_cache_misses_total
}

// flight is one key's build: done closes when val/err are final.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache builds an empty cache; ob may be nil.
func NewCache(ob *obs.Observer) *Cache {
	reg := ob.Registry()
	return &Cache{
		flights: map[string]*flight{},
		mHits:   reg.Counter("engine_cache_hits_total"),
		mMisses: reg.Counter("engine_cache_misses_total"),
	}
}

// Do returns the cached value for key, building it with build on first use.
// Errors are cached alongside values: builds are expected to be
// deterministic, so retrying a failed build would fail identically.
func (c *Cache) Do(key string, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.mHits.Inc()
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	c.mMisses.Inc()
	f.val, f.err = build()
	close(f.done)
	return f.val, f.err
}

// Len returns the number of keys ever built or in flight.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flights)
}

// Get is the typed wrapper around Cache.Do: it builds a T on first use and
// type-asserts on hits, failing loudly when two call sites collide on one
// key with different types.
func Get[T any](c *Cache, key string, build func() (T, error)) (T, error) {
	v, err := c.Do(key, func() (any, error) { return build() })
	if err != nil {
		var zero T
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("engine: cache key %q holds %T, not %T", key, v, zero)
	}
	return t, nil
}
