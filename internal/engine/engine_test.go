package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ken/internal/obs"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		e := New(Options{Workers: workers})
		items := make([]int, 100)
		for i := range items {
			items[i] = i
		}
		out, err := Map(context.Background(), e, items, func(_ context.Context, idx, item int) (string, error) {
			return fmt.Sprintf("%d*%d", idx, item), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range out {
			if want := fmt.Sprintf("%d*%d", i, i); got != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got, want)
			}
		}
	}
}

func TestMapNilEngineRunsInline(t *testing.T) {
	out, err := Map(context.Background(), nil, []int{1, 2, 3}, func(_ context.Context, _, item int) (int, error) {
		return item * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 4 || out[2] != 6 {
		t.Fatalf("out = %v", out)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	e := New(Options{Workers: 4})
	boom := errors.New("boom")
	_, err := Map(context.Background(), e, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(_ context.Context, idx, _ int) (int, error) {
		if idx == 3 {
			return 0, boom
		}
		return idx, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cell error (not a cancellation knock-on)", err)
	}
}

func TestMapCancellation(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Map(ctx, e, make([]int, 64), func(cctx context.Context, idx, _ int) (int, error) {
			started.Add(1)
			select {
			case <-release:
			case <-cctx.Done():
				return 0, cctx.Err()
			}
			return idx, nil
		})
	}()
	// Let the first cells occupy the pool, then cancel: the remaining
	// items must not start.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 64 {
		t.Fatalf("all %d cells started despite cancellation", n)
	}
	if len(out) != 64 {
		t.Fatalf("result slice has %d slots, want 64", len(out))
	}
}

func TestMapNestedRunsInline(t *testing.T) {
	e := New(Options{Workers: 4})
	out, err := Map(context.Background(), e, []int{10, 20}, func(ctx context.Context, _, item int) (int, error) {
		// A nested Map must not compete for pool slots; it runs inline.
		inner, err := Map(ctx, e, []int{1, 2, 3}, func(_ context.Context, _, v int) (int, error) {
			return v * item, nil
		})
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 60 || out[1] != 120 {
		t.Fatalf("out = %v, want [60 120]", out)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(nil)
	var builds atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := Get(c, "shared", func() (int, error) {
				builds.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want exactly once", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d saw %d", g, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d keys, want 1", c.Len())
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache(nil)
	var builds atomic.Int64
	boom := errors.New("deterministic failure")
	for i := 0; i < 3; i++ {
		_, err := Get(c, "bad", func() (int, error) {
			builds.Add(1)
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v", i, err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("failed build retried %d times, want cached after 1", n)
	}
}

func TestCacheTypeMismatch(t *testing.T) {
	c := NewCache(nil)
	if _, err := Get(c, "k", func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(c, "k", func() (string, error) { return "x", nil }); err == nil {
		t.Fatal("expected a type-mismatch error for reused key")
	}
}

func TestCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(&obs.Observer{Reg: reg})
	for i := 0; i < 5; i++ {
		if _, err := Get(c, "k", func() (int, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["engine_cache_misses_total"] != 1 {
		t.Fatalf("misses = %d, want 1", snap.Counters["engine_cache_misses_total"])
	}
	if snap.Counters["engine_cache_hits_total"] != 4 {
		t.Fatalf("hits = %d, want 4", snap.Counters["engine_cache_hits_total"])
	}
}

func TestCellSeedDeterministic(t *testing.T) {
	a := CellSeed(1, "fig9", "garden", "DjC3")
	b := CellSeed(1, "fig9", "garden", "DjC3")
	if a != b {
		t.Fatalf("same labels gave %d and %d", a, b)
	}
	if CellSeed(1, "fig9", "garden", "DjC3") == CellSeed(1, "fig9", "garden", "DjC4") {
		t.Fatal("distinct labels collided")
	}
	if CellSeed(1, "a", "b") == CellSeed(1, "ab") {
		t.Fatal("label boundary not separated: {a,b} collided with {ab}")
	}
	if CellSeed(1, "x") == CellSeed(2, "x") {
		t.Fatal("base seed ignored")
	}
}

func TestKeyMatrixDistinguishes(t *testing.T) {
	a := KeyMatrix([][]float64{{1, 2}, {3, 4}})
	if a != KeyMatrix([][]float64{{1, 2}, {3, 4}}) {
		t.Fatal("same matrix, different keys")
	}
	if a == KeyMatrix([][]float64{{1, 2}, {3, 5}}) {
		t.Fatal("different values, same key")
	}
	if a == KeyMatrix([][]float64{{1, 2, 3, 4}}) {
		t.Fatal("different shape, same key")
	}
}

func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Workers: 2, Obs: &obs.Observer{Reg: reg}})
	_, err := Map(context.Background(), e, []int{1, 2, 3}, func(_ context.Context, idx, _ int) (int, error) {
		if idx == 2 {
			return 0, errors.New("fail")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	snap := reg.Snapshot()
	if snap.Counters["engine_cells_total"] < 1 {
		t.Fatal("no cells counted")
	}
	if snap.Counters["engine_cell_errors_total"] != 1 {
		t.Fatalf("cell errors = %d, want 1", snap.Counters["engine_cell_errors_total"])
	}
	if snap.Histograms["engine_cell_seconds"].Count < 1 {
		t.Fatal("no cell timings observed")
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := New(Options{}).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(Options{Workers: 8}).Workers(); w != 8 {
		t.Fatalf("workers = %d, want 8", w)
	}
}

// TestCellSeedGolden pins the exact seeds CellSeed derives for a table of
// realistic (base, labels) inputs. Every experiment's randomness flows
// from these values, so a refactor of the derivation (hash choice, label
// separator, mixing) that reshuffles them would silently invalidate every
// recorded figure; this table makes that a loud test failure instead. If
// the derivation is changed on purpose, regenerate the constants and say
// so in the commit.
func TestCellSeedGolden(t *testing.T) {
	cases := []struct {
		base   int64
		labels []string
		want   int64
	}{
		{1, nil, -3750763034362895580},
		{1, []string{"fig9"}, 4448017665298023149},
		{1, []string{"fig9", "garden"}, 4297119662474363278},
		{1, []string{"fig9", "garden", "DjC3"}, -6129311539209244868},
		{1, []string{"fig9", "garden", "DjC4"}, -6132181264558307901},
		{2, []string{"fig9", "garden", "DjC3"}, -6129311539209244865},
		{1, []string{"a", "b"}, -6106644141146341257},
		{1, []string{"ab"}, -1792429245696181217},
		{1, []string{"ab", ""}, -188762490092427525},
		{-7, []string{"sweep", "eps=0.25"}, 8800710353843282620},
		{42, []string{"fig11", "lab", "greedy", "k=4"}, -7986850645219838730},
	}
	for _, c := range cases {
		if got := CellSeed(c.base, c.labels...); got != c.want {
			t.Errorf("CellSeed(%d, %q) = %d, want %d", c.base, c.labels, got, c.want)
		}
	}
}

// TestCellSeedStableAndCollisionFree sweeps a realistic experiment grid:
// every (base, labels) cell must derive the same seed on a second pass
// (stability) and no two distinct label sets may share one (the grid is
// tiny against a 64-bit space, so any collision means a separator bug,
// not bad luck).
func TestCellSeedStableAndCollisionFree(t *testing.T) {
	seen := map[int64]string{}
	for _, fig := range []string{"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "sweep", "ext"} {
		for _, ds := range []string{"garden", "lab"} {
			for _, scheme := range []string{"TinyDB", "ApC", "Avg", "DjC1", "DjC2", "DjC3", "DjC4", "DjC5"} {
				for k := 0; k < 4; k++ {
					labels := []string{fig, ds, scheme, "k=" + string(rune('0'+k))}
					id := fig + "/" + ds + "/" + scheme + "/" + labels[3]
					seed := CellSeed(1, labels...)
					if again := CellSeed(1, labels...); again != seed {
						t.Fatalf("unstable seed for %s: %d then %d", id, seed, again)
					}
					if prev, ok := seen[seed]; ok {
						t.Fatalf("seed collision: %s and %s both derive %d", prev, id, seed)
					}
					seen[seed] = id
				}
			}
		}
	}
	if len(seen) != 8*2*8*4 {
		t.Fatalf("grid covered %d cells, want %d", len(seen), 8*2*8*4)
	}
}

// TestScopeNesting checks the trace-scope context plumbing: WithScope
// nests with "/", Scope is nil-safe, and empty labels are no-ops.
func TestScopeNesting(t *testing.T) {
	if got := Scope(nil); got != "" {
		t.Fatalf("Scope(nil) = %q, want empty", got)
	}
	ctx := context.Background()
	if got := Scope(ctx); got != "" {
		t.Fatalf("Scope(background) = %q, want empty", got)
	}
	ctx = WithScope(ctx, "bench")
	ctx = WithScope(ctx, "") // no-op
	ctx = WithScope(ctx, "sweep")
	if got := Scope(ctx); got != "bench/sweep" {
		t.Fatalf("Scope = %q, want bench/sweep", got)
	}
}

// TestMapScopesCellsByIndex checks that every cell — inline or parallel —
// sees its item index appended to the context scope, identically across
// worker counts, so parallel traces label events exactly like sequential
// ones.
func TestMapScopesCellsByIndex(t *testing.T) {
	base := WithScope(context.Background(), "exp")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	collect := func(workers int) []string {
		e := New(Options{Workers: workers})
		out, err := Map(base, e, items, func(ctx context.Context, idx, _ int) (string, error) {
			return Scope(ctx), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := collect(1)
	par := collect(8)
	for i := range items {
		want := fmt.Sprintf("exp/%d", i)
		if seq[i] != want || par[i] != want {
			t.Fatalf("cell %d scopes: sequential %q parallel %q, want %q", i, seq[i], par[i], want)
		}
	}
}
