package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ken/internal/obs"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		e := New(Options{Workers: workers})
		items := make([]int, 100)
		for i := range items {
			items[i] = i
		}
		out, err := Map(context.Background(), e, items, func(_ context.Context, idx, item int) (string, error) {
			return fmt.Sprintf("%d*%d", idx, item), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range out {
			if want := fmt.Sprintf("%d*%d", i, i); got != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got, want)
			}
		}
	}
}

func TestMapNilEngineRunsInline(t *testing.T) {
	out, err := Map(context.Background(), nil, []int{1, 2, 3}, func(_ context.Context, _, item int) (int, error) {
		return item * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 4 || out[2] != 6 {
		t.Fatalf("out = %v", out)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	e := New(Options{Workers: 4})
	boom := errors.New("boom")
	_, err := Map(context.Background(), e, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(_ context.Context, idx, _ int) (int, error) {
		if idx == 3 {
			return 0, boom
		}
		return idx, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cell error (not a cancellation knock-on)", err)
	}
}

func TestMapCancellation(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Map(ctx, e, make([]int, 64), func(cctx context.Context, idx, _ int) (int, error) {
			started.Add(1)
			select {
			case <-release:
			case <-cctx.Done():
				return 0, cctx.Err()
			}
			return idx, nil
		})
	}()
	// Let the first cells occupy the pool, then cancel: the remaining
	// items must not start.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 64 {
		t.Fatalf("all %d cells started despite cancellation", n)
	}
	if len(out) != 64 {
		t.Fatalf("result slice has %d slots, want 64", len(out))
	}
}

func TestMapNestedRunsInline(t *testing.T) {
	e := New(Options{Workers: 4})
	out, err := Map(context.Background(), e, []int{10, 20}, func(ctx context.Context, _, item int) (int, error) {
		// A nested Map must not compete for pool slots; it runs inline.
		inner, err := Map(ctx, e, []int{1, 2, 3}, func(_ context.Context, _, v int) (int, error) {
			return v * item, nil
		})
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 60 || out[1] != 120 {
		t.Fatalf("out = %v, want [60 120]", out)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(nil)
	var builds atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := Get(c, "shared", func() (int, error) {
				builds.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want exactly once", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d saw %d", g, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d keys, want 1", c.Len())
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache(nil)
	var builds atomic.Int64
	boom := errors.New("deterministic failure")
	for i := 0; i < 3; i++ {
		_, err := Get(c, "bad", func() (int, error) {
			builds.Add(1)
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v", i, err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("failed build retried %d times, want cached after 1", n)
	}
}

func TestCacheTypeMismatch(t *testing.T) {
	c := NewCache(nil)
	if _, err := Get(c, "k", func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(c, "k", func() (string, error) { return "x", nil }); err == nil {
		t.Fatal("expected a type-mismatch error for reused key")
	}
}

func TestCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(&obs.Observer{Reg: reg})
	for i := 0; i < 5; i++ {
		if _, err := Get(c, "k", func() (int, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["engine_cache_misses_total"] != 1 {
		t.Fatalf("misses = %d, want 1", snap.Counters["engine_cache_misses_total"])
	}
	if snap.Counters["engine_cache_hits_total"] != 4 {
		t.Fatalf("hits = %d, want 4", snap.Counters["engine_cache_hits_total"])
	}
}

func TestCellSeedDeterministic(t *testing.T) {
	a := CellSeed(1, "fig9", "garden", "DjC3")
	b := CellSeed(1, "fig9", "garden", "DjC3")
	if a != b {
		t.Fatalf("same labels gave %d and %d", a, b)
	}
	if CellSeed(1, "fig9", "garden", "DjC3") == CellSeed(1, "fig9", "garden", "DjC4") {
		t.Fatal("distinct labels collided")
	}
	if CellSeed(1, "a", "b") == CellSeed(1, "ab") {
		t.Fatal("label boundary not separated: {a,b} collided with {ab}")
	}
	if CellSeed(1, "x") == CellSeed(2, "x") {
		t.Fatal("base seed ignored")
	}
}

func TestKeyMatrixDistinguishes(t *testing.T) {
	a := KeyMatrix([][]float64{{1, 2}, {3, 4}})
	if a != KeyMatrix([][]float64{{1, 2}, {3, 4}}) {
		t.Fatal("same matrix, different keys")
	}
	if a == KeyMatrix([][]float64{{1, 2}, {3, 5}}) {
		t.Fatal("different values, same key")
	}
	if a == KeyMatrix([][]float64{{1, 2, 3, 4}}) {
		t.Fatal("different shape, same key")
	}
}

func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Workers: 2, Obs: &obs.Observer{Reg: reg}})
	_, err := Map(context.Background(), e, []int{1, 2, 3}, func(_ context.Context, idx, _ int) (int, error) {
		if idx == 2 {
			return 0, errors.New("fail")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	snap := reg.Snapshot()
	if snap.Counters["engine_cells_total"] < 1 {
		t.Fatal("no cells counted")
	}
	if snap.Counters["engine_cell_errors_total"] != 1 {
		t.Fatalf("cell errors = %d, want 1", snap.Counters["engine_cell_errors_total"])
	}
	if snap.Histograms["engine_cell_seconds"].Count < 1 {
		t.Fatal("no cell timings observed")
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := New(Options{}).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(Options{Workers: 8}).Workers(); w != 8 {
		t.Fatalf("workers = %d, want 8", w)
	}
}
