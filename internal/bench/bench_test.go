package bench

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

// cell fetches a table cell by row label (first column) and column name.
func cell(t *testing.T, tb *Table, rowLabel, col string) string {
	t.Helper()
	ci := -1
	for i, c := range tb.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("column %q not in %v", col, tb.Columns)
	}
	for _, row := range tb.Rows {
		if row[0] == rowLabel {
			return row[ci]
		}
	}
	t.Fatalf("row %q not found in table %q", rowLabel, tb.Title)
	return ""
}

// pctVal parses "41.0%" to 0.41.
func pctVal(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v / 100
}

func TestTableWriteTo(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "b"}, Notes: []string{"n1"}}
	tb.AddRow("x", "1")
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "x", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadDatasetUnknown(t *testing.T) {
	if _, err := loadDataset(nil, "nope", Quick()); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestFig7And8Overviews(t *testing.T) {
	for _, fn := range []Runner{Fig7, Fig8} {
		tb, err := fn(context.Background(), nil, Quick())
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != 24 {
			t.Fatalf("%s: %d rows, want 24 hours", tb.Title, len(tb.Rows))
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tb, err := Fig9(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	tiny := pctVal(t, cell(t, tb, "TinyDB", "reported"))
	apc := pctVal(t, cell(t, tb, "ApC", "reported"))
	avg := pctVal(t, cell(t, tb, "Avg", "reported"))
	djc1 := pctVal(t, cell(t, tb, "DjC1", "reported"))
	djc2 := pctVal(t, cell(t, tb, "DjC2", "reported"))
	djc6 := pctVal(t, cell(t, tb, "DjC6", "reported"))

	if tiny != 1 {
		t.Fatalf("TinyDB = %v, want 100%%", tiny)
	}
	// Paper shape: substantial savings for every approximate scheme.
	if apc >= 0.9 || djc1 >= 0.9 {
		t.Fatalf("no meaningful savings: ApC %v, DjC1 %v", apc, djc1)
	}
	// Spatial correlation helps monotonically (weakly) with clique size.
	if djc2 >= djc1 {
		t.Fatalf("DjC2 (%v) not better than DjC1 (%v)", djc2, djc1)
	}
	if djc6 > djc2+1e-9 {
		t.Fatalf("DjC6 (%v) worse than DjC2 (%v)", djc6, djc2)
	}
	// Average reports at a higher rate than DjC2 (paper §5.3).
	if avg <= djc2 {
		t.Fatalf("Avg (%v) should report more than DjC2 (%v)", avg, djc2)
	}
	// All guarantees hold.
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Fatalf("scheme %s violated bounds %s times", row[0], row[3])
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tb, err := Fig10(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	djc1 := pctVal(t, cell(t, tb, "DjC1", "reported"))
	djc5 := pctVal(t, cell(t, tb, "DjC5", "reported"))
	if djc5 >= djc1 {
		t.Fatalf("lab DjC5 (%v) not better than DjC1 (%v)", djc5, djc1)
	}
	// Lab is harder than garden: compare DjC5 levels.
	g, err := Fig9(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	gardenDjc5 := pctVal(t, cell(t, g, "DjC5", "reported"))
	if djc5 <= gardenDjc5 {
		t.Fatalf("lab DjC5 (%v) should report more than garden DjC5 (%v)", djc5, gardenDjc5)
	}
}

func TestFig11GreedyNearOptimal(t *testing.T) {
	tb, err := Fig11(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want k=1..4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1-1e-9 {
			t.Fatalf("k=%s: greedy (%s) beat the exhaustive optimum (%s) — DP broken",
				row[0], row[1], row[2])
		}
		if ratio > 1.35 {
			t.Fatalf("k=%s: greedy/optimal = %v, want near-optimal", row[0], ratio)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tb, err := Fig12(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	total := func(base, scheme string) float64 {
		for _, row := range tb.Rows {
			if row[0] == base && row[1] == scheme {
				v, err := strconv.ParseFloat(row[4], 64)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("row %s/%s missing", base, scheme)
		return 0
	}
	// Ken beats approximate caching at every base cost.
	for _, base := range []string{"x2", "x5", "x10"} {
		if total(base, "DjC5") >= total(base, "ApC") {
			t.Fatalf("%s: DjC5 (%v) not cheaper than ApC (%v)",
				base, total(base, "DjC5"), total(base, "ApC"))
		}
	}
	// At ×10, exploiting spatial correlations must beat pure singletons.
	if total("x10", "DjC5") >= total("x10", "DjC1") {
		t.Fatalf("x10: DjC5 (%v) not cheaper than DjC1 (%v)",
			total("x10", "DjC5"), total("x10", "DjC1"))
	}
}

func TestFig13Shape(t *testing.T) {
	tb, err := Fig13(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	total := func(regionPrefix, scheme string) float64 {
		for _, row := range tb.Rows {
			if strings.HasPrefix(row[0], regionPrefix) && row[1] == scheme {
				v, err := strconv.ParseFloat(row[4], 64)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("row %s/%s missing", regionPrefix, scheme)
		return 0
	}
	// The west region (far from base) pays more per step than the east.
	if total("west", "DjC1") <= total("east", "DjC1") {
		t.Fatal("west region should be costlier than east")
	}
	// Far from the base, spatial cliques give a modest net gain.
	if total("west", "DjC5") >= total("west", "DjC1") {
		t.Fatalf("west: DjC5 (%v) should modestly beat DjC1 (%v)",
			total("west", "DjC5"), total("west", "DjC1"))
	}
}

func TestFig14Shape(t *testing.T) {
	tb, err := Fig14(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) float64 { return pctVal(t, cell(t, tb, label, "reported")) }
	none := get("no compression")
	singles := get("{T,H,V} singletons")
	vth := get("{V, TH}")
	full := get("{THV} one clique")
	if none != 1 {
		t.Fatalf("no compression = %v", none)
	}
	// Any compression far exceeds none (paper §5.5).
	if singles > 0.7 {
		t.Fatalf("singleton compression too weak: %v", singles)
	}
	// Exploiting inter-attribute correlation improves on singletons.
	if vth >= singles {
		t.Fatalf("{V,TH} (%v) should beat singletons (%v)", vth, singles)
	}
	if full > vth+1e-9 {
		t.Fatalf("{THV} (%v) should be at least as good as {V,TH} (%v)", full, vth)
	}
}

func TestExtensionsTable(t *testing.T) {
	tb, err := Extensions(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 8 {
		t.Fatalf("extensions table has %d rows", len(tb.Rows))
	}
	get := func(experiment, variant string) string {
		for _, row := range tb.Rows {
			if row[0] == experiment && row[1] == variant {
				return row[3]
			}
		}
		t.Fatalf("row %s/%s missing", experiment, variant)
		return ""
	}
	// Crisp regime data: switching must beat plain.
	crispPlain := pctVal(t, get("switching model (crisp 2-level data)", "plain Gaussian"))
	crispSwitch := pctVal(t, get("switching model (crisp 2-level data)", "2-regime switching"))
	if crispSwitch >= crispPlain {
		t.Fatalf("switching (%v) should beat plain (%v) on crisp data", crispSwitch, crispPlain)
	}
	// Adaptive must beat static under drift.
	st := pctVal(t, get("adaptive refit (garden, +2.5°C shift)", "static"))
	ad := pctVal(t, get("adaptive refit (garden, +2.5°C shift)", "adaptive"))
	if ad >= st {
		t.Fatalf("adaptive (%v) should beat static (%v) under drift", ad, st)
	}
	// Ken must outlive TinyDB.
	tiny := get("network lifetime (11-node chain)", "tinydb")
	kenLife := get("network lifetime (11-node chain)", "ken")
	tn, err1 := strconv.Atoi(strings.TrimPrefix(tiny, ">"))
	kn, err2 := strconv.Atoi(strings.TrimPrefix(kenLife, ">"))
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable lifetimes %q %q", tiny, kenLife)
	}
	if kn <= tn {
		t.Fatalf("ken lifetime %d not beyond tinydb %d", kn, tn)
	}
	// Ken frames must be smaller than naive streaming.
	kb, err1 := strconv.Atoi(get("streaming wire bytes (garden)", "ken frames"))
	nb, err2 := strconv.Atoi(get("streaming wire bytes (garden)", "naive 10 B/reading"))
	if err1 != nil || err2 != nil || kb >= nb {
		t.Fatalf("wire bytes %d not below naive %d", kb, nb)
	}
}

func TestTableWriteMarkdown(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "b"}, Notes: []string{"n1"}}
	tb.AddRow("x", "1")
	tb.AddRow("y") // short row pads gracefully
	var buf bytes.Buffer
	if _, err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### demo", "| a | b |", "|---|---|", "| x | 1 |", "| y |  |", "*n1*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionsJointMultiAttr(t *testing.T) {
	tb, err := Extensions(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	get := func(variant string) float64 {
		for _, row := range tb.Rows {
			if row[0] == "joint multi-attribute (33 logical attrs)" && row[1] == variant {
				return pctVal(t, row[3])
			}
		}
		t.Fatalf("joint row %q missing", variant)
		return 0
	}
	indep := get("independent per-attr DjC2")
	joint := get("joint logical DjC4")
	// Cross-attribute cliques must not lose to independent collection.
	if joint > indep+0.01 {
		t.Fatalf("joint (%v) worse than independent (%v)", joint, indep)
	}
}

func TestSweepsShape(t *testing.T) {
	tb, err := Sweeps(context.Background(), nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	var prevApc, prevDjc float64
	seenEps := 0
	for _, row := range tb.Rows {
		if row[0] != "ε bound" {
			continue
		}
		apc := pctVal(t, row[2])
		djc := pctVal(t, row[3])
		// DjC2 never reports more than ApC at any bound.
		if djc > apc+1e-9 {
			t.Fatalf("%s: DjC2 (%v) above ApC (%v)", row[1], djc, apc)
		}
		// Reported fractions fall monotonically as ε loosens.
		if seenEps > 0 && (apc > prevApc+1e-9 || djc > prevDjc+1e-9) {
			t.Fatalf("%s: reported fraction rose with looser ε", row[1])
		}
		prevApc, prevDjc = apc, djc
		seenEps++
	}
	if seenEps < 4 {
		t.Fatalf("only %d ε rows", seenEps)
	}
	rateRows := 0
	for _, row := range tb.Rows {
		if row[0] == "sampling rate" {
			rateRows++
			if pctVal(t, row[3]) > pctVal(t, row[2])+1e-9 {
				t.Fatalf("%s: DjC2 above ApC", row[1])
			}
		}
	}
	if rateRows != 3 {
		t.Fatalf("rate rows = %d", rateRows)
	}
}
