// Package bench regenerates every figure of the paper's evaluation (§5)
// over the synthetic Lab and Garden deployments:
//
//	Fig 7/8   — dataset overviews (diurnal profiles, value ranges)
//	Fig 9/10  — % of data reported per scheme (topology-independent)
//	Fig 11    — Greedy-k vs Exhaustive-k partition cost
//	Fig 12    — total messaging cost on Garden under ×2/×5/×10 base cost
//	Fig 13    — total messaging cost on Lab east/central/west regions
//	Fig 14    — multi-attribute compression on a single node
//
// Each runner decomposes its figure into independent cells — one table row
// or row group per cell — and submits them to an engine.Engine, which runs
// them across a worker pool and deduplicates shared artifacts (generated
// traces, Monte Carlo evaluators, clique partitions) through its
// single-flight cache. Results come back in row order, so a parallel run is
// byte-identical to a sequential one (golden_test.go enforces this).
// cmd/kenbench prints the tables, and bench_test.go wraps the runners as
// testing.B benchmarks.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/engine"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
	"ken/internal/trace"
)

// Runner regenerates one figure. A nil engine runs the cells sequentially
// with a private artifact cache; ctx cancels mid-figure.
type Runner func(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error)

// ensureEngine gives figure runners a non-nil engine: callers that do not
// care about parallelism (unit tests, one-shot invocations) pass nil and get
// a sequential engine whose cache still deduplicates artifacts within the
// figure.
func ensureEngine(eng *engine.Engine) *engine.Engine {
	if eng == nil {
		return engine.New(engine.Options{Workers: 1})
	}
	return eng
}

// cacheGet fetches a shared artifact through the engine cache, building it
// on first use. A nil engine builds directly (no caching).
func cacheGet[T any](eng *engine.Engine, key string, build func() (T, error)) (T, error) {
	if eng == nil {
		return build()
	}
	return engine.Get(eng.Cache(), key, build)
}

// Config sizes an experiment. The zero value is filled with paper-like
// defaults by withDefaults; Quick returns a configuration small enough for
// unit tests.
type Config struct {
	// Seed drives trace generation and Monte Carlo estimation.
	Seed int64
	// TrainSteps is the model-learning prefix (paper: 100 hours).
	TrainSteps int
	// TestSteps is the evaluation window (paper: 5000 hours; default 1500
	// to keep full runs minutes, not hours — pass more for paper scale).
	TestSteps int
	// MCTrajectories and MCHorizon size the §4.4 Monte Carlo estimate.
	MCTrajectories int
	MCHorizon      int
	// NeighborLimit caps Greedy-k candidate pools (see cliques.GreedyConfig).
	NeighborLimit int
	// Obs, when non-nil, receives every replay's metrics and protocol
	// events; cells scope their trace events by figure and cell index, so a
	// parallel run's trace audits identically to a sequential one. Obs is
	// runtime plumbing, not experiment identity — it never enters cache
	// keys.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TrainSteps <= 0 {
		c.TrainSteps = 100
	}
	if c.TestSteps <= 0 {
		c.TestSteps = 1500
	}
	if c.MCTrajectories <= 0 {
		c.MCTrajectories = 8
	}
	if c.MCHorizon <= 0 {
		c.MCHorizon = 48
	}
	if c.NeighborLimit <= 0 {
		c.NeighborLimit = 8
	}
	return c
}

// Quick returns a configuration small enough for unit tests while keeping
// every code path exercised.
func Quick() Config {
	return Config{
		Seed:           1,
		TrainSteps:     100,
		TestSteps:      250,
		MCTrajectories: 4,
		MCHorizon:      24,
		NeighborLimit:  4,
	}
}

// Table is a printable experiment result: the rows/series of one figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteMarkdown renders the table as a GitHub-flavoured markdown table,
// ready to paste into EXPERIMENTS.md.
func (t *Table) WriteMarkdown(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString("### ")
	sb.WriteString(t.Title)
	sb.WriteString("\n\n|")
	for _, c := range t.Columns {
		sb.WriteString(" ")
		sb.WriteString(c)
		sb.WriteString(" |")
	}
	sb.WriteString("\n|")
	for range t.Columns {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			sb.WriteString(" ")
			sb.WriteString(cell)
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		sb.WriteString("\n*")
		sb.WriteString(n)
		sb.WriteString("*\n")
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteTo renders the table as padded text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// dataset bundles everything an experiment needs from one deployment. key
// identifies the (deployment, seed, split) in engine cache keys; cells must
// treat every field as immutable — datasets are shared across workers.
type dataset struct {
	name        string
	key         string
	dep         *trace.Deployment
	train, test [][]float64 // temperature matrices
	eps         []float64
	full        *trace.Trace
}

// cachedTrace returns the shared generated trace for a named deployment,
// producing it once per (name, seed, steps) no matter how many cells ask.
func cachedTrace(eng *engine.Engine, name string, seed int64, steps int) (*trace.Trace, error) {
	key := fmt.Sprintf("trace:%s:seed=%d:steps=%d", name, seed, steps)
	return cacheGet(eng, key, func() (*trace.Trace, error) {
		switch name {
		case "garden":
			return trace.GenerateGarden(seed, steps)
		case "lab":
			return trace.GenerateLab(seed, steps)
		default:
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
	})
}

// cachedGenerate returns the shared trace for a custom generator
// configuration (rate sweeps, drift splices). label names the deployment;
// the full GenConfig is folded into the key, so distinct settings never
// collide.
func cachedGenerate(eng *engine.Engine, label string, dep *trace.Deployment, gc trace.GenConfig) (*trace.Trace, error) {
	key := fmt.Sprintf("trace:%s:cfg=%+v", label, gc)
	return cacheGet(eng, key, func() (*trace.Trace, error) {
		return trace.Generate(dep, gc)
	})
}

// loadDataset generates (or fetches) a deployment trace and splits it. The
// returned dataset is shared across cells and must not be mutated.
func loadDataset(eng *engine.Engine, name string, cfg Config) (*dataset, error) {
	key := fmt.Sprintf("ds:%s:seed=%d:train=%d:test=%d", name, cfg.Seed, cfg.TrainSteps, cfg.TestSteps)
	return cacheGet(eng, key, func() (*dataset, error) {
		tr, err := cachedTrace(eng, name, cfg.Seed, cfg.TrainSteps+cfg.TestSteps)
		if err != nil {
			return nil, err
		}
		rows, err := tr.Rows(trace.Temperature)
		if err != nil {
			return nil, err
		}
		n := tr.Deployment.N()
		eps := make([]float64, n)
		for i := range eps {
			eps[i] = trace.Temperature.DefaultEpsilon()
		}
		return &dataset{
			name:  name,
			key:   key,
			dep:   tr.Deployment,
			train: rows[:cfg.TrainSteps],
			test:  rows[cfg.TrainSteps:],
			eps:   eps,
			full:  tr,
		}, nil
	})
}

// evaluator returns the shared Monte Carlo m_C estimator for the dataset
// plus its cache key (for composing dependent keys, e.g. partitions). The
// evaluator is internally synchronised and its estimates are deterministic
// per clique, so sharing it across cells cannot change any result.
func (d *dataset) evaluator(eng *engine.Engine, cfg Config) (*cliques.MCEvaluator, string, error) {
	mcCfg := mc.Config{Trajectories: cfg.MCTrajectories, Horizon: cfg.MCHorizon, Seed: cfg.Seed}
	key := fmt.Sprintf("eval:%s:train=%s:mc=%+v", d.key, engine.KeyMatrix(d.train), mcCfg)
	eval, err := cacheGet(eng, key, func() (*cliques.MCEvaluator, error) {
		return cliques.NewMCEvaluator(d.train, d.eps, model.FitConfig{Period: 24}, mcCfg)
	})
	return eval, key, err
}

// cachedGreedy returns the shared Greedy-k partition for (evaluator,
// topology, config), validated against n nodes. topoKey must identify how
// the topology was constructed.
func cachedGreedy(eng *engine.Engine, eval *cliques.MCEvaluator, evalKey string, top *network.Topology, topoKey string, gcfg cliques.GreedyConfig, n int) (*cliques.Partition, error) {
	key := fmt.Sprintf("part:greedy:%s:%s:cfg=%+v", evalKey, topoKey, gcfg)
	return cacheGet(eng, key, func() (*cliques.Partition, error) {
		p, err := cliques.Greedy(top, eval, gcfg)
		if err != nil {
			return nil, fmt.Errorf("bench: greedy k=%d: %w", gcfg.K, err)
		}
		if err := p.Validate(n); err != nil {
			return nil, err
		}
		return p, nil
	})
}

// subset restricts the dataset to the given node indices.
func (d *dataset) subset(nodes []int) *dataset {
	pick := func(rows [][]float64) [][]float64 {
		out := make([][]float64, len(rows))
		for t, row := range rows {
			r := make([]float64, len(nodes))
			for k, i := range nodes {
				r[k] = row[i]
			}
			out[t] = r
		}
		return out
	}
	eps := make([]float64, len(nodes))
	for k, i := range nodes {
		eps[k] = d.eps[i]
	}
	return &dataset{
		name:  d.name,
		key:   fmt.Sprintf("%s:sub=%v", d.key, nodes),
		dep:   d.dep,
		train: pick(d.train),
		test:  pick(d.test),
		eps:   eps,
		full:  d.full,
	}
}

// replay runs a scheme over the dataset's test rows, enforcing that
// deterministic schemes keep the ε guarantee. The run reports into
// cfg.Obs under the cell scope accumulated on ctx, so traces from
// concurrent cells stay attributable and auditable.
func (d *dataset) replay(ctx context.Context, cfg Config, s core.Scheme) (*core.Result, error) {
	return core.Run(ctx, s, d.test, core.RunOptions{
		Eps: d.eps, Observer: cfg.Obs, Scope: engine.Scope(ctx),
	})
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func f2(f float64) string { return fmt.Sprintf("%.2f", f) }
