// Package bench regenerates every figure of the paper's evaluation (§5)
// over the synthetic Lab and Garden deployments:
//
//	Fig 7/8   — dataset overviews (diurnal profiles, value ranges)
//	Fig 9/10  — % of data reported per scheme (topology-independent)
//	Fig 11    — Greedy-k vs Exhaustive-k partition cost
//	Fig 12    — total messaging cost on Garden under ×2/×5/×10 base cost
//	Fig 13    — total messaging cost on Lab east/central/west regions
//	Fig 14    — multi-attribute compression on a single node
//
// Each runner returns a Table whose rows are the series the paper plots;
// cmd/kenbench prints them, and bench_test.go wraps them as testing.B
// benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/trace"
)

// Config sizes an experiment. The zero value is filled with paper-like
// defaults by withDefaults; Quick returns a configuration small enough for
// unit tests.
type Config struct {
	// Seed drives trace generation and Monte Carlo estimation.
	Seed int64
	// TrainSteps is the model-learning prefix (paper: 100 hours).
	TrainSteps int
	// TestSteps is the evaluation window (paper: 5000 hours; default 1500
	// to keep full runs minutes, not hours — pass more for paper scale).
	TestSteps int
	// MCTrajectories and MCHorizon size the §4.4 Monte Carlo estimate.
	MCTrajectories int
	MCHorizon      int
	// NeighborLimit caps Greedy-k candidate pools (see cliques.GreedyConfig).
	NeighborLimit int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TrainSteps <= 0 {
		c.TrainSteps = 100
	}
	if c.TestSteps <= 0 {
		c.TestSteps = 1500
	}
	if c.MCTrajectories <= 0 {
		c.MCTrajectories = 8
	}
	if c.MCHorizon <= 0 {
		c.MCHorizon = 48
	}
	if c.NeighborLimit <= 0 {
		c.NeighborLimit = 8
	}
	return c
}

// Quick returns a configuration small enough for unit tests while keeping
// every code path exercised.
func Quick() Config {
	return Config{
		Seed:           1,
		TrainSteps:     100,
		TestSteps:      250,
		MCTrajectories: 4,
		MCHorizon:      24,
		NeighborLimit:  4,
	}
}

// Table is a printable experiment result: the rows/series of one figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteMarkdown renders the table as a GitHub-flavoured markdown table,
// ready to paste into EXPERIMENTS.md.
func (t *Table) WriteMarkdown(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString("### ")
	sb.WriteString(t.Title)
	sb.WriteString("\n\n|")
	for _, c := range t.Columns {
		sb.WriteString(" ")
		sb.WriteString(c)
		sb.WriteString(" |")
	}
	sb.WriteString("\n|")
	for range t.Columns {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			sb.WriteString(" ")
			sb.WriteString(cell)
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		sb.WriteString("\n*")
		sb.WriteString(n)
		sb.WriteString("*\n")
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteTo renders the table as padded text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// dataset bundles everything an experiment needs from one deployment.
type dataset struct {
	name        string
	dep         *trace.Deployment
	train, test [][]float64 // temperature matrices
	eps         []float64
	full        *trace.Trace
}

// loadDataset generates a deployment trace and splits it.
func loadDataset(name string, cfg Config) (*dataset, error) {
	var (
		tr  *trace.Trace
		err error
	)
	steps := cfg.TrainSteps + cfg.TestSteps
	switch name {
	case "garden":
		tr, err = trace.GenerateGarden(cfg.Seed, steps)
	case "lab":
		tr, err = trace.GenerateLab(cfg.Seed, steps)
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
	if err != nil {
		return nil, err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	n := tr.Deployment.N()
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = trace.Temperature.DefaultEpsilon()
	}
	return &dataset{
		name:  name,
		dep:   tr.Deployment,
		train: rows[:cfg.TrainSteps],
		test:  rows[cfg.TrainSteps:],
		eps:   eps,
		full:  tr,
	}, nil
}

// evaluator builds the cached Monte Carlo m_C estimator for a dataset.
func (d *dataset) evaluator(cfg Config) (*cliques.MCEvaluator, error) {
	return cliques.NewMCEvaluator(d.train, d.eps,
		model.FitConfig{Period: 24},
		mc.Config{Trajectories: cfg.MCTrajectories, Horizon: cfg.MCHorizon, Seed: cfg.Seed})
}

// subset restricts the dataset to the given node indices.
func (d *dataset) subset(nodes []int) *dataset {
	pick := func(rows [][]float64) [][]float64 {
		out := make([][]float64, len(rows))
		for t, row := range rows {
			r := make([]float64, len(nodes))
			for k, i := range nodes {
				r[k] = row[i]
			}
			out[t] = r
		}
		return out
	}
	eps := make([]float64, len(nodes))
	for k, i := range nodes {
		eps[k] = d.eps[i]
	}
	return &dataset{
		name:  d.name,
		dep:   d.dep,
		train: pick(d.train),
		test:  pick(d.test),
		eps:   eps,
		full:  d.full,
	}
}

// replay runs a scheme over the dataset's test rows, enforcing that
// deterministic schemes keep the ε guarantee.
func (d *dataset) replay(s core.Scheme) (*core.Result, error) {
	res, err := core.Run(s, d.test, d.eps)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func f2(f float64) string { return fmt.Sprintf("%.2f", f) }
