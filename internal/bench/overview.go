package bench

import (
	"context"
	"fmt"
	"math"

	"ken/internal/engine"
	"ken/internal/trace"
)

// Fig7 reproduces the Lab data overview: the hour-of-day profile and value
// ranges of temperature and humidity across the deployment. (The paper's
// figure is a raw time-series plot; kentrace dumps the same series as CSV —
// this table summarises its shape.)
func Fig7(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	return overview(ctx, eng, "lab", cfg)
}

// Fig8 reproduces the Garden data overview.
func Fig8(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	return overview(ctx, eng, "garden", cfg)
}

func overview(ctx context.Context, eng *engine.Engine, name string, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	d, err := loadDataset(eng, name, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig %s: %s data overview (%d nodes, %d hourly steps)", figNum(name), name, d.dep.N(), d.full.Steps()),
		Columns: []string{"hour", "temp mean", "temp min", "temp max", "hum mean", "hum min", "hum max"},
	}
	temp, err := d.full.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	hum, err := d.full.Rows(trace.Humidity)
	if err != nil {
		return nil, err
	}
	for h := 0; h < 24; h++ {
		tm, tmin, tmax := hourStats(temp, h)
		hm, hmin, hmax := hourStats(hum, h)
		t.AddRow(fmt.Sprintf("%02d", h), f2(tm), f2(tmin), f2(tmax), f2(hm), f2(hmin), f2(hmax))
	}
	t.Notes = append(t.Notes,
		"both attributes fluctuate cyclically with a 24 h period (paper §5.1)",
		"dump the raw series with: kentrace -dataset "+name)
	return t, nil
}

func figNum(name string) string {
	if name == "lab" {
		return "7"
	}
	return "8"
}

// hourStats aggregates all readings whose step index falls on hour h.
func hourStats(rows [][]float64, h int) (mean, min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	sum, count := 0.0, 0
	for t := h; t < len(rows); t += 24 {
		for _, v := range rows[t] {
			sum += v
			count++
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if count == 0 {
		return 0, 0, 0
	}
	return sum / float64(count), min, max
}
