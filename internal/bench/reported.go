package bench

import (
	"fmt"
	"math"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/trace"
)

// Fig9 reproduces "% of data reported under various schemes for the garden
// dataset": TinyDB, Approximate Caching, the Average model, and Ken with
// Disjoint-Cliques of maximum size 1–6. Accounting is topology-independent,
// exactly as in the paper's §5.3.
func Fig9(cfg Config) (*Table, error) {
	return reportedFigure("garden", 6, "9", cfg)
}

// Fig10 reproduces the same comparison for the lab dataset (clique sizes
// 1–5).
func Fig10(cfg Config) (*Table, error) {
	return reportedFigure("lab", 5, "10", cfg)
}

func reportedFigure(name string, kmax int, fig string, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	d, err := loadDataset(name, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig %s: %% of data reported, %s dataset (ε=%.1f°C, %d test steps)", fig, name, d.eps[0], len(d.test)),
		Columns: []string{"scheme", "reported", "max |err|", "violations"},
	}

	add := func(s core.Scheme) error {
		res, err := d.replay(s)
		if err != nil {
			return fmt.Errorf("bench: %s on %s: %w", s.Name(), name, err)
		}
		t.AddRow(s.Name(), pct(res.FractionReported()), f2(res.MaxAbsError),
			fmt.Sprintf("%d", res.BoundViolations))
		return nil
	}

	tiny, err := core.NewTinyDB(d.dep.N(), nil)
	if err != nil {
		return nil, err
	}
	if err := add(tiny); err != nil {
		return nil, err
	}
	apc, err := core.NewCache(d.eps, nil)
	if err != nil {
		return nil, err
	}
	if err := add(apc); err != nil {
		return nil, err
	}
	avg, err := core.NewAverage(d.train, d.eps, model.FitConfig{Period: 24}, nil)
	if err != nil {
		return nil, err
	}
	if err := add(avg); err != nil {
		return nil, err
	}

	parts, err := djcPartitions(d, cfg, kmax, cliques.MetricReduction)
	if err != nil {
		return nil, err
	}
	for k := 1; k <= kmax; k++ {
		s, err := core.NewKen(core.KenConfig{
			Name:      fmt.Sprintf("DjC%d", k),
			Partition: parts[k],
			Train:     d.train,
			Eps:       d.eps,
			FitCfg:    model.FitConfig{Period: 24},
		})
		if err != nil {
			return nil, err
		}
		if err := add(s); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: TinyDB = 100%; ApC ≈ DjC1; reported fraction falls as clique size grows",
		"violations must be 0 — Ken's bounded-loss guarantee is unconditional")
	return t, nil
}

// djcPartitions runs Greedy-k for every k in 1..kmax over the dataset,
// reusing one cached Monte Carlo evaluator. Partition selection uses the
// deployment's geometric topology (spatially-near nodes are cheap to pool),
// which is independent of the cost accounting chosen at replay time.
func djcPartitions(d *dataset, cfg Config, kmax int, metric cliques.Metric) (map[int]*cliques.Partition, error) {
	top, err := geometricTopology(d.dep)
	if err != nil {
		return nil, err
	}
	eval, err := d.evaluator(cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[int]*cliques.Partition, kmax)
	for k := 1; k <= kmax; k++ {
		p, err := cliques.Greedy(top, eval, cliques.GreedyConfig{
			K:             k,
			NeighborLimit: cfg.NeighborLimit,
			Metric:        metric,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: greedy k=%d on %s: %w", k, d.name, err)
		}
		if err := p.Validate(d.dep.N()); err != nil {
			return nil, err
		}
		out[k] = p
	}
	return out, nil
}

// geometricTopology derives a connectivity graph from node positions: links
// within 2.5× the typical nearest-neighbour spacing, one hop ≈ one cost
// unit, base station just east of the deployment ("the base station resides
// at the east end of the network", §5.4).
func geometricTopology(dep *trace.Deployment) (*network.Topology, error) {
	spacing := typicalSpacing(dep)
	maxX, midY := math.Inf(-1), 0.0
	for _, nd := range dep.Nodes {
		if nd.X > maxX {
			maxX = nd.X
		}
		midY += nd.Y
	}
	midY /= float64(dep.N())
	return network.Geometric(dep, maxX+spacing, midY, 2.5*spacing, 1/spacing, 0.5)
}

// typicalSpacing is the median nearest-neighbour distance.
func typicalSpacing(dep *trace.Deployment) float64 {
	nearest := make([]float64, 0, dep.N())
	for i, a := range dep.Nodes {
		best := math.Inf(1)
		for j, b := range dep.Nodes {
			if i == j {
				continue
			}
			if d := a.Distance(b); d < best {
				best = d
			}
		}
		nearest = append(nearest, best)
	}
	// Median by selection; n is tiny.
	for i := 1; i < len(nearest); i++ {
		for j := i; j > 0 && nearest[j] < nearest[j-1]; j-- {
			nearest[j], nearest[j-1] = nearest[j-1], nearest[j]
		}
	}
	return nearest[len(nearest)/2]
}
