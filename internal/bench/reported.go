package bench

import (
	"context"
	"fmt"
	"math"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/engine"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/trace"
)

// Fig9 reproduces "% of data reported under various schemes for the garden
// dataset": TinyDB, Approximate Caching, the Average model, and Ken with
// Disjoint-Cliques of maximum size 1–6. Accounting is topology-independent,
// exactly as in the paper's §5.3.
func Fig9(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	return reportedFigure(ctx, eng, "garden", 6, "9", cfg)
}

// Fig10 reproduces the same comparison for the lab dataset (clique sizes
// 1–5).
func Fig10(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	return reportedFigure(ctx, eng, "lab", 5, "10", cfg)
}

func reportedFigure(ctx context.Context, eng *engine.Engine, name string, kmax int, fig string, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	ctx = engine.WithScope(ctx, "fig"+fig)
	d, err := loadDataset(eng, name, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig %s: %% of data reported, %s dataset (ε=%.1f°C, %d test steps)", fig, name, d.eps[0], len(d.test)),
		Columns: []string{"scheme", "reported", "max |err|", "violations"},
	}

	// One cell per table row: the baseline schemes followed by DjC1..kmax.
	// Every DjC cell selects its own partition, but the Monte Carlo
	// evaluator and geometric topology behind the selection come from the
	// engine cache, so the expensive work happens once per dataset.
	cells := []string{"TinyDB", "ApproxCache", "Average"}
	for k := 1; k <= kmax; k++ {
		cells = append(cells, fmt.Sprintf("DjC%d", k))
	}
	rows, err := engine.Map(ctx, eng, cells, func(ctx context.Context, _ int, scheme string) ([]string, error) {
		s, err := buildReportedScheme(eng, d, cfg, scheme)
		if err != nil {
			return nil, err
		}
		res, err := d.replay(ctx, cfg, s)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on %s: %w", s.Name(), name, err)
		}
		return []string{s.Name(), pct(res.FractionReported()), f2(res.MaxAbsError),
			fmt.Sprintf("%d", res.BoundViolations)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper shape: TinyDB = 100%; ApC ≈ DjC1; reported fraction falls as clique size grows",
		"violations must be 0 — Ken's bounded-loss guarantee is unconditional")
	return t, nil
}

// buildReportedScheme resolves one Fig 9/10 row through the scheme
// registry. DjC rows get a cached Greedy-k partition over the deployment's
// geometric topology (spatially-near nodes are cheap to pool), which is
// independent of the cost accounting chosen at replay time.
func buildReportedScheme(eng *engine.Engine, d *dataset, cfg Config, scheme string) (core.Scheme, error) {
	spec := core.SchemeSpec{
		Scheme: scheme,
		N:      d.dep.N(),
		Eps:    d.eps,
		Train:  d.train,
		FitCfg: model.FitConfig{Period: 24},
		Obs:    cfg.Obs,
	}
	if k, ok := djcK(scheme); ok {
		p, err := djcPartition(eng, d, cfg, k, cliques.MetricReduction)
		if err != nil {
			return nil, err
		}
		spec.Partition = p
	}
	return core.Build(spec)
}

// djcK extracts k from a "DjC<k>" scheme name.
func djcK(scheme string) (int, bool) {
	var k int
	if _, err := fmt.Sscanf(scheme, "DjC%d", &k); err != nil || k < 1 {
		return 0, false
	}
	return k, true
}

// djcPartition runs Greedy-k over the dataset's geometric topology, sharing
// the Monte Carlo evaluator and the resulting partition through the engine
// cache.
func djcPartition(eng *engine.Engine, d *dataset, cfg Config, k int, metric cliques.Metric) (*cliques.Partition, error) {
	topoKey := "topo:geom:" + d.name
	top, err := cacheGet(eng, topoKey, func() (*network.Topology, error) {
		return geometricTopology(d.dep)
	})
	if err != nil {
		return nil, err
	}
	eval, evalKey, err := d.evaluator(eng, cfg)
	if err != nil {
		return nil, err
	}
	return cachedGreedy(eng, eval, evalKey, top, topoKey, cliques.GreedyConfig{
		K:             k,
		NeighborLimit: cfg.NeighborLimit,
		Metric:        metric,
	}, d.dep.N())
}

// geometricTopology derives a connectivity graph from node positions: links
// within 2.5× the typical nearest-neighbour spacing, one hop ≈ one cost
// unit, base station just east of the deployment ("the base station resides
// at the east end of the network", §5.4).
func geometricTopology(dep *trace.Deployment) (*network.Topology, error) {
	spacing := typicalSpacing(dep)
	maxX, midY := math.Inf(-1), 0.0
	for _, nd := range dep.Nodes {
		if nd.X > maxX {
			maxX = nd.X
		}
		midY += nd.Y
	}
	midY /= float64(dep.N())
	return network.Geometric(dep, maxX+spacing, midY, 2.5*spacing, 1/spacing, 0.5)
}

// typicalSpacing is the median nearest-neighbour distance.
func typicalSpacing(dep *trace.Deployment) float64 {
	nearest := make([]float64, 0, dep.N())
	for i, a := range dep.Nodes {
		best := math.Inf(1)
		for j, b := range dep.Nodes {
			if i == j {
				continue
			}
			if d := a.Distance(b); d < best {
				best = d
			}
		}
		nearest = append(nearest, best)
	}
	// Median by selection; n is tiny.
	for i := 1; i < len(nearest); i++ {
		for j := i; j > 0 && nearest[j] < nearest[j-1]; j-- {
			nearest[j], nearest[j-1] = nearest[j-1], nearest[j]
		}
	}
	return nearest[len(nearest)/2]
}
