package bench

import (
	"context"
	"fmt"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/engine"
	"ken/internal/model"
	"ken/internal/obs"
	"ken/internal/stream"
)

// BaselineWorkload is one prepared throughput yardstick. All expensive
// setup — trace generation, model fitting, clique selection — happens in
// BaselineWorkloads, so timing Run measures the layer's steady-state
// throughput and nothing else. This package stays free of wall-clock
// reads (the determinism lint); the caller owns the stopwatch.
type BaselineWorkload struct {
	Name string // file stem: BENCH_<Name>.json
	Unit string // what Run's count measures per second
	Desc string // the configuration behind the number
	Run  func(ctx context.Context) (count int, err error)
}

// BaselineWorkloads prepares the three layer yardsticks over the Lab
// deployment:
//
//   - core: a DjC2 Ken replay through core.Run — epochs/sec
//   - engine: the Fig 9 cell suite on a fresh (cold-cache) engine —
//     cells/sec
//   - stream: the framed source→replica loop (Collect + Apply) —
//     frames/sec
func BaselineWorkloads(cfg Config) ([]BaselineWorkload, error) {
	cfg = cfg.withDefaults()
	cfg.Obs = nil // yardsticks run untraced; tracing is its own cost
	eng := engine.New(engine.Options{Workers: 1})
	d, err := loadDataset(eng, "lab", cfg)
	if err != nil {
		return nil, err
	}
	p, err := djcPartition(eng, d, cfg, 2, cliques.MetricReduction)
	if err != nil {
		return nil, err
	}
	fit := model.FitConfig{Period: 24}

	scheme, err := core.Build(core.SchemeSpec{
		Scheme: "DjC2", N: d.dep.N(), Eps: d.eps, Train: d.train,
		FitCfg: fit, Partition: p,
	})
	if err != nil {
		return nil, err
	}
	coreWL := BaselineWorkload{
		Name: "core", Unit: "epochs/sec",
		Desc: fmt.Sprintf("DjC2 Ken replay, lab dataset, n=%d, test=%d", d.dep.N(), len(d.test)),
		Run: func(ctx context.Context) (int, error) {
			res, err := core.Run(ctx, scheme, d.test, core.RunOptions{Eps: d.eps})
			if err != nil {
				return 0, err
			}
			return res.Steps, nil
		},
	}

	engCfg := cfg
	engineWL := BaselineWorkload{
		Name: "engine", Unit: "cells/sec",
		Desc: fmt.Sprintf("Fig 9 suite, cold cache, workers=GOMAXPROCS, test=%d", engCfg.TestSteps),
		Run: func(ctx context.Context) (int, error) {
			reg := obs.NewRegistry()
			cold := engine.New(engine.Options{Obs: &obs.Observer{Reg: reg}})
			if _, err := Fig9(ctx, cold, engCfg); err != nil {
				return 0, err
			}
			return int(reg.Snapshot().Counters["engine_cells_total"]), nil
		},
	}

	scfg := stream.Config{Partition: p, Train: d.train, Eps: d.eps, FitCfg: fit}
	src, err := stream.NewSource(scfg)
	if err != nil {
		return nil, err
	}
	sink, err := stream.NewReplica(scfg)
	if err != nil {
		return nil, err
	}
	streamWL := BaselineWorkload{
		Name: "stream", Unit: "frames/sec",
		Desc: fmt.Sprintf("source Collect → replica Apply, lab DjC2, n=%d, frames=%d", d.dep.N(), len(d.test)),
		Run: func(ctx context.Context) (int, error) {
			for i, row := range d.test {
				if i%256 == 0 {
					if err := ctx.Err(); err != nil {
						return 0, err
					}
				}
				f, err := src.Collect(row)
				if err != nil {
					return 0, err
				}
				if err := sink.Apply(f); err != nil {
					return 0, err
				}
			}
			return len(d.test), nil
		},
	}

	return []BaselineWorkload{coreWL, engineWL, streamWL}, nil
}
