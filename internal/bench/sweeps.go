package bench

import (
	"context"
	"fmt"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/engine"
	"ken/internal/model"
	"ken/internal/obs"
	"ken/internal/trace"
)

// Sweeps backs the paper's §5.1 remark that "we also experimented with
// other various sampling rates and bounds, and observed very similar
// performance trends": it sweeps the error bound ε and the sampling
// interval on the garden dataset and reports ApC and DjC2 reporting rates
// for each setting. Every (sweep, setting) pair is one engine cell.
func Sweeps(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	t := &Table{
		Title:   "Sweeps: error bound and sampling rate (garden, ApC vs DjC2)",
		Columns: []string{"sweep", "setting", "ApC reported", "DjC2 reported", "DjC2/ApC"},
	}
	epsRows, err := sweepEpsilon(ctx, eng, cfg)
	if err != nil {
		return nil, err
	}
	rateRows, err := sweepRate(ctx, eng, cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(epsRows, rateRows...)
	t.Notes = append(t.Notes,
		"paper §5.1: trends are stable across bounds and rates — Ken's advantage persists",
		"looser ε and faster sampling both reduce the reported fraction")
	return t, nil
}

// pairPart builds adjacent pairs over n attributes.
func pairPart(n int) *cliques.Partition {
	p := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
		} else {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	return p
}

// runPair replays ApC and DjC2 on the rows at the given ε and seasonal
// period, returning their reported fractions. Both replays trace into ob
// under the cell's scope, so a sweep's trace segments audit per setting.
func runPair(ctx context.Context, ob *obs.Observer, train, test [][]float64, epsVal float64, period int) (apc, djc float64, err error) {
	n := len(train[0])
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = epsVal
	}
	cache, err := core.Build(core.SchemeSpec{Scheme: "ApproxCache", Eps: eps, Obs: ob})
	if err != nil {
		return 0, 0, err
	}
	cres, err := core.Run(ctx, cache, test, core.RunOptions{Eps: eps, Observer: ob, Scope: engine.Scope(ctx)})
	if err != nil {
		return 0, 0, err
	}
	ken, err := core.Build(core.SchemeSpec{
		Scheme:    "Ken",
		Partition: pairPart(n),
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: period},
		Obs:       ob,
	})
	if err != nil {
		return 0, 0, err
	}
	kres, err := core.Run(ctx, ken, test, core.RunOptions{Eps: eps, Observer: ob, Scope: engine.Scope(ctx)})
	if err != nil {
		return 0, 0, err
	}
	if kres.BoundViolations != 0 {
		return 0, 0, fmt.Errorf("bench: sweep run violated ε")
	}
	return cres.FractionReported(), kres.FractionReported(), nil
}

// sweepEpsilon varies the error bound at the hourly rate, one cell per
// bound over the shared garden dataset.
func sweepEpsilon(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error) {
	ctx = engine.WithScope(ctx, "sweep-eps")
	d, err := loadDataset(eng, "garden", cfg)
	if err != nil {
		return nil, err
	}
	bounds := []float64{0.1, 0.25, 0.5, 1.0, 2.0}
	return engine.Map(ctx, eng, bounds, func(ctx context.Context, _ int, e float64) ([]string, error) {
		apc, djc, err := runPair(ctx, cfg.Obs, d.train, d.test, e, 24)
		if err != nil {
			return nil, err
		}
		return []string{"ε bound", fmt.Sprintf("±%.2f°C", e), pct(apc), pct(djc),
			fmt.Sprintf("%.2f", safeRatio(djc, apc))}, nil
	})
}

// sweepRate varies the sampling interval at ε = 0.5 °C, one cell per rate.
// Faster sampling means smaller per-step changes, so every scheme reports a
// smaller fraction (the paper's FREQ f knob). Each cell's custom-rate trace
// comes from the engine cache.
func sweepRate(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error) {
	type rateSetting struct {
		label   string
		minutes float64
		period  int
	}
	settings := []rateSetting{
		{"every 30 min", 30, 48},
		{"hourly", 60, 24},
		{"every 2 h", 120, 12},
	}
	ctx = engine.WithScope(ctx, "sweep-rate")
	return engine.Map(ctx, eng, settings, func(ctx context.Context, _ int, sc rateSetting) ([]string, error) {
		gc := trace.GardenConfig(cfg.Seed, cfg.TrainSteps+cfg.TestSteps)
		gc.StepMinutes = sc.minutes
		tr, err := cachedGenerate(eng, "garden", trace.GardenDeployment(), gc)
		if err != nil {
			return nil, err
		}
		rows, err := tr.Rows(trace.Temperature)
		if err != nil {
			return nil, err
		}
		train, test := rows[:cfg.TrainSteps], rows[cfg.TrainSteps:]
		apc, djc, err := runPair(ctx, cfg.Obs, train, test, 0.5, sc.period)
		if err != nil {
			return nil, err
		}
		return []string{"sampling rate", sc.label, pct(apc), pct(djc),
			fmt.Sprintf("%.2f", safeRatio(djc, apc))}, nil
	})
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
