package bench

import (
	"context"
	"fmt"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/engine"
	"ken/internal/model"
	"ken/internal/trace"
)

// Fig14 reproduces "Compression using correlations among temperature,
// humidity and voltage" on a single garden node (§5.5). Multiple attributes
// of one physical node behave like logical nodes with zero communication
// cost between them, so larger cliques always help; the figure compares the
// attribute groupings {T,H,V} (all singletons), {V,TH}, {H,TV}, {T,HV},
// plus no compression, on % data reported. We add the full clique {THV} as
// a bonus row.
func Fig14(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	ctx = engine.WithScope(ctx, "fig14")
	tr, err := cachedTrace(eng, "garden", cfg.Seed, cfg.TrainSteps+cfg.TestSteps)
	if err != nil {
		return nil, err
	}
	const node = 0
	attrs := []trace.Attribute{trace.Temperature, trace.Humidity, trace.Voltage}
	all, err := tr.MultiAttr(node, attrs)
	if err != nil {
		return nil, err
	}
	train, test := all[:cfg.TrainSteps], all[cfg.TrainSteps:]
	eps := []float64{
		trace.Temperature.DefaultEpsilon(),
		trace.Humidity.DefaultEpsilon(),
		trace.Voltage.DefaultEpsilon(),
	}

	// Attribute index mnemonics: 0 = T, 1 = H, 2 = V.
	type grouping struct {
		name  string
		parts [][]int
	}
	groupings := []grouping{
		{"{T,H,V} singletons", [][]int{{0}, {1}, {2}}},
		{"{V, TH}", [][]int{{2}, {0, 1}}},
		{"{H, TV}", [][]int{{1}, {0, 2}}},
		{"{T, HV}", [][]int{{0}, {1, 2}}},
		{"{THV} one clique", [][]int{{0, 1, 2}}},
	}

	t := &Table{
		Title:   fmt.Sprintf("Fig 14: multi-attribute compression, garden node %d (%d test steps)", node, len(test)),
		Columns: []string{"configuration", "reported", "max clique"},
	}
	t.AddRow("no compression", pct(1), "-")

	// One cell per grouping: each builds its own Ken over the shared
	// multi-attribute rows with a fixed partition.
	rows, err := engine.Map(ctx, eng, groupings, func(ctx context.Context, _ int, g grouping) ([]string, error) {
		p := &cliques.Partition{}
		for _, members := range g.parts {
			// All logical nodes live on the same physical node: root 0,
			// intra cost structurally zero.
			p.Cliques = append(p.Cliques, cliques.Clique{Members: members, Root: 0})
		}
		s, err := core.Build(core.SchemeSpec{
			Scheme:    "Ken",
			Name:      g.name,
			Partition: p,
			Train:     train,
			Eps:       eps,
			FitCfg:    model.FitConfig{Period: 24},
			Obs:       cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		res, err := core.Run(ctx, s, test, core.RunOptions{Eps: eps, Observer: cfg.Obs, Scope: engine.Scope(ctx)})
		if err != nil {
			return nil, err
		}
		if res.BoundViolations != 0 {
			return nil, fmt.Errorf("bench: %s violated ε %d times", g.name, res.BoundViolations)
		}
		return []string{g.name, pct(res.FractionReported()), fmt.Sprintf("%d", p.MaxCliqueSize())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Notes = append(t.Notes,
		"paper shape: any compression far exceeds none; inter-attribute cliques improve further",
		"intra-source cost is structurally zero — all attributes share one physical node")
	return t, nil
}
