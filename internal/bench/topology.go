package bench

import (
	"context"
	"fmt"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/engine"
	"ken/internal/model"
	"ken/internal/network"
)

// uniformTopology builds the paper's synthetic garden topology: equivalent
// unit path costs between every pair of nodes and baseMult to the base.
func uniformTopology(n int, baseMult float64) (*network.Topology, error) {
	return network.Uniform(n, 1, baseMult)
}

// costCell is one Fig 12/13 row: a scheme replayed on a dataset under a
// priced topology. k = 0 means Approximate Caching; k >= 1 means DjC<k>
// with a cached Greedy-k partition.
type costCell struct {
	label   string
	d       *dataset
	top     *network.Topology
	topoKey string
	k       int
}

// Fig12 reproduces "Total communication cost for the garden dataset under
// different network topologies": the cost to the base is swept over ×2, ×5
// and ×10 the pairwise node cost, and for each topology we replay ApC and
// Ken with Greedy-k partitions for k = 1..5, decomposing the measured cost
// into intra-source and source-sink components.
func Fig12(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	ctx = engine.WithScope(ctx, "fig12")
	d, err := loadDataset(eng, "garden", cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 12: total messaging cost per step, garden (%d test steps)", len(d.test)),
		Columns: []string{"base cost", "scheme", "intra", "inter", "total", "max clique"},
	}
	var cells []costCell
	for _, mult := range []float64{2, 5, 10} {
		top, err := uniformTopology(d.dep.N(), mult)
		if err != nil {
			return nil, err
		}
		topoKey := fmt.Sprintf("topo:uniform:n=%d:base=%.0f", d.dep.N(), mult)
		cells = append(cells, topologyCells(d, top, topoKey, fmt.Sprintf("x%.0f", mult), 5)...)
	}
	rows, err := runCostCells(ctx, eng, cfg, cells)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper shape: larger cliques pay off as the base cost multiplier grows, then level off",
		"intra/inter are per-step averages over the replayed test trace")
	return t, nil
}

// Fig13 reproduces "Total communication cost for the Lab deployment
// partitioned into three node groups, east, central and west": each region
// is evaluated with its own cost-to-base multiplier (×1.5 / ×3 / ×6,
// reflecting the base station at the east end).
func Fig13(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	ctx = engine.WithScope(ctx, "fig13")
	d, err := loadDataset(eng, "lab", cfg)
	if err != nil {
		return nil, err
	}
	regions := network.LabRegions(d.dep)
	t := &Table{
		Title:   fmt.Sprintf("Fig 13: total messaging cost per step, lab regions (%d test steps)", len(d.test)),
		Columns: []string{"region", "scheme", "intra", "inter", "total", "max clique"},
	}
	var cells []costCell
	for _, reg := range regions {
		sub := d.subset(reg.Nodes)
		top, err := uniformTopology(len(reg.Nodes), reg.BaseMultiplier)
		if err != nil {
			return nil, err
		}
		topoKey := fmt.Sprintf("topo:uniform:n=%d:base=%.1f", len(reg.Nodes), reg.BaseMultiplier)
		label := fmt.Sprintf("%s x%.1f", reg.Name, reg.BaseMultiplier)
		cells = append(cells, topologyCells(sub, top, topoKey, label, 5)...)
	}
	rows, err := runCostCells(ctx, eng, cfg, cells)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper shape: regions close to the base gain nothing from larger cliques;",
		"the far (west) region gains modestly — lab data is harder to predict than garden")
	return t, nil
}

// topologyCells enumerates the ApC + DjC1..kmax rows for one priced
// topology, in the order the paper's figure lists them.
func topologyCells(d *dataset, top *network.Topology, topoKey, label string, kmax int) []costCell {
	cells := []costCell{{label: label, d: d, top: top, topoKey: topoKey, k: 0}}
	for k := 1; k <= kmax; k++ {
		cells = append(cells, costCell{label: label, d: d, top: top, topoKey: topoKey, k: k})
	}
	return cells
}

// runCostCells replays every cell through the engine and formats the
// per-step cost rows.
func runCostCells(ctx context.Context, eng *engine.Engine, cfg Config, cells []costCell) ([][]string, error) {
	return engine.Map(ctx, eng, cells, func(ctx context.Context, _ int, c costCell) ([]string, error) {
		steps := float64(len(c.d.test))
		spec := core.SchemeSpec{
			Eps:      c.d.eps,
			Train:    c.d.train,
			FitCfg:   model.FitConfig{Period: 24},
			Topology: c.top,
			Obs:      cfg.Obs,
		}
		maxClique := "1"
		if c.k == 0 {
			spec.Scheme = "ApproxCache"
		} else {
			p, err := c.d.greedyOn(eng, cfg, c.top, c.topoKey, c.k)
			if err != nil {
				return nil, fmt.Errorf("bench: greedy k=%d (%s): %w", c.k, c.label, err)
			}
			spec.Scheme = fmt.Sprintf("DjC%d", c.k)
			spec.Partition = p
			maxClique = fmt.Sprintf("%d", p.MaxCliqueSize())
		}
		s, err := core.Build(spec)
		if err != nil {
			return nil, err
		}
		res, err := c.d.replay(ctx, cfg, s)
		if err != nil {
			return nil, err
		}
		if c.k > 0 && res.BoundViolations != 0 {
			return nil, fmt.Errorf("bench: %s violated ε %d times on %s", s.Name(), res.BoundViolations, c.label)
		}
		return []string{c.label, s.Name(), f2(res.IntraCost / steps), f2(res.SinkCost / steps),
			f2(res.TotalCost() / steps), maxClique}, nil
	})
}

// greedyOn selects (or fetches) the Greedy-k partition for this dataset on
// an explicit topology, sharing evaluator and partition via the engine
// cache.
func (d *dataset) greedyOn(eng *engine.Engine, cfg Config, top *network.Topology, topoKey string, k int) (*cliques.Partition, error) {
	eval, evalKey, err := d.evaluator(eng, cfg)
	if err != nil {
		return nil, err
	}
	return cachedGreedy(eng, eval, evalKey, top, topoKey, cliques.GreedyConfig{
		K:             k,
		NeighborLimit: cfg.NeighborLimit,
	}, len(d.eps))
}
