package bench

import (
	"fmt"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/network"
)

// uniformTopology builds the paper's synthetic garden topology: equivalent
// unit path costs between every pair of nodes and baseMult to the base.
func uniformTopology(n int, baseMult float64) (*network.Topology, error) {
	return network.Uniform(n, 1, baseMult)
}

// Fig12 reproduces "Total communication cost for the garden dataset under
// different network topologies": the cost to the base is swept over ×2, ×5
// and ×10 the pairwise node cost, and for each topology we replay ApC and
// Ken with Greedy-k partitions for k = 1..5, decomposing the measured cost
// into intra-source and source-sink components.
func Fig12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	d, err := loadDataset("garden", cfg)
	if err != nil {
		return nil, err
	}
	eval, err := d.evaluator(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 12: total messaging cost per step, garden (%d test steps)", len(d.test)),
		Columns: []string{"base cost", "scheme", "intra", "inter", "total", "max clique"},
	}
	for _, mult := range []float64{2, 5, 10} {
		top, err := uniformTopology(d.dep.N(), mult)
		if err != nil {
			return nil, err
		}
		if err := topologyRows(t, d, eval, top, fmt.Sprintf("x%.0f", mult), 5, cfg); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: larger cliques pay off as the base cost multiplier grows, then level off",
		"intra/inter are per-step averages over the replayed test trace")
	return t, nil
}

// Fig13 reproduces "Total communication cost for the Lab deployment
// partitioned into three node groups, east, central and west": each region
// is evaluated with its own cost-to-base multiplier (×1.5 / ×3 / ×6,
// reflecting the base station at the east end).
func Fig13(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	d, err := loadDataset("lab", cfg)
	if err != nil {
		return nil, err
	}
	regions := network.LabRegions(d.dep)
	t := &Table{
		Title:   fmt.Sprintf("Fig 13: total messaging cost per step, lab regions (%d test steps)", len(d.test)),
		Columns: []string{"region", "scheme", "intra", "inter", "total", "max clique"},
	}
	for _, reg := range regions {
		sub := d.subset(reg.Nodes)
		eval, err := sub.evaluator(cfg)
		if err != nil {
			return nil, err
		}
		top, err := uniformTopology(len(reg.Nodes), reg.BaseMultiplier)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%s x%.1f", reg.Name, reg.BaseMultiplier)
		if err := topologyRows(t, sub, eval, top, label, 5, cfg); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: regions close to the base gain nothing from larger cliques;",
		"the far (west) region gains modestly — lab data is harder to predict than garden")
	return t, nil
}

// topologyRows replays ApC and DjC1..DjCkmax on the dataset under the given
// topology and appends per-step cost rows.
func topologyRows(t *Table, d *dataset, eval *cliques.MCEvaluator, top *network.Topology, label string, kmax int, cfg Config) error {
	steps := float64(len(d.test))

	apc, err := core.NewCache(d.eps, top)
	if err != nil {
		return err
	}
	res, err := d.replay(apc)
	if err != nil {
		return err
	}
	t.AddRow(label, "ApC", f2(res.IntraCost/steps), f2(res.SinkCost/steps),
		f2(res.TotalCost()/steps), "1")

	for k := 1; k <= kmax; k++ {
		p, err := cliques.Greedy(top, eval, cliques.GreedyConfig{
			K:             k,
			NeighborLimit: cfg.NeighborLimit,
		})
		if err != nil {
			return fmt.Errorf("bench: greedy k=%d (%s): %w", k, label, err)
		}
		s, err := core.NewKen(core.KenConfig{
			Name:      fmt.Sprintf("DjC%d", k),
			Partition: p,
			Train:     d.train,
			Eps:       d.eps,
			FitCfg:    model.FitConfig{Period: 24},
			Topology:  top,
		})
		if err != nil {
			return err
		}
		res, err := d.replay(s)
		if err != nil {
			return err
		}
		if res.BoundViolations != 0 {
			return fmt.Errorf("bench: %s violated ε %d times on %s", s.Name(), res.BoundViolations, label)
		}
		t.AddRow(label, s.Name(), f2(res.IntraCost/steps), f2(res.SinkCost/steps),
			f2(res.TotalCost()/steps), fmt.Sprintf("%d", p.MaxCliqueSize()))
	}
	return nil
}
