package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/engine"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/simnet"
	"ken/internal/stream"
	"ken/internal/trace"
)

// Extensions regenerates the beyond-the-paper results recorded in
// EXPERIMENTS.md: the §6 switching model on HVAC-affected lab data, the
// footnote-4 adaptive refitting under seasonal drift, distributed network
// lifetime on the packet simulator, and the streaming wire efficiency. Each
// experiment is one engine cell producing its own row group; the generated
// traces they share come from the engine cache.
func Extensions(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	ctx = engine.WithScope(ctx, "ext")
	t := &Table{
		Title:   "Extensions: §6 and footnote-4 features, system-level results",
		Columns: []string{"experiment", "variant", "metric", "value"},
	}
	type experiment struct {
		name string
		fn   func(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error)
	}
	exps := []experiment{
		{"switching", extSwitching},
		{"adaptive", extAdaptive},
		{"probabilistic", extProbabilistic},
		{"lifetime", extLifetime},
		{"streaming", extStreaming},
		{"joint-multiattr", extJointMultiAttr},
	}
	chunks, err := engine.Map(ctx, eng, exps, func(ctx context.Context, _ int, e experiment) ([][]string, error) {
		rows, err := e.fn(ctx, eng, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: extension %s: %w", e.name, err)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range chunks {
		t.Rows = append(t.Rows, rows...)
	}
	t.Notes = append(t.Notes,
		"switching/adaptive: fraction of values reported (lower is better)",
		"lifetime: hourly epochs until the first battery death on an 11-node chain",
		"streaming: bytes on the wire for a garden SELECT * stream")
	return t, nil
}

// extSwitching compares the plain Gaussian and the regime-switching model
// on a lab clique inside one HVAC zone.
func extSwitching(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error) {
	tr, err := cachedTrace(eng, "lab", cfg.Seed, cfg.TrainSteps+cfg.TestSteps)
	if err != nil {
		return nil, err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	// Nodes 0,1,7 share the west HVAC zone and sit close together.
	members := []int{0, 1, 7}
	cols := make([][]float64, len(rows))
	for i, r := range rows {
		c := make([]float64, len(members))
		for k, g := range members {
			c[k] = r[g]
		}
		cols[i] = c
	}
	train, test := cols[:cfg.TrainSteps], cols[cfg.TrainSteps:]
	eps := []float64{0.5, 0.5, 0.5}

	plain, err := model.FitLinearGaussian(train, model.FitConfig{Period: 24})
	if err != nil {
		return nil, err
	}
	sw, err := model.FitSwitching(train, model.SwitchingConfig{Regimes: 2, Base: model.FitConfig{Period: 24}})
	if err != nil {
		return nil, err
	}
	pf, err := replayFraction(plain.Clone(), test, eps)
	if err != nil {
		return nil, err
	}
	sf, err := replayFraction(sw.Clone(), test, eps)
	if err != nil {
		return nil, err
	}
	out := [][]string{
		{"switching model (lab HVAC clique)", "plain Gaussian", "reported", pct(pf)},
		{"switching model (lab HVAC clique)", "2-regime switching", "reported", pct(sf)},
	}

	// Crisp two-level data (instant regime shifts, no diurnal smoothing):
	// the scenario where the model class decisively matters.
	crisp := regimeRows(cfg.Seed, cfg.TrainSteps+cfg.TestSteps)
	ctrain, ctest := crisp[:cfg.TrainSteps+200], crisp[cfg.TrainSteps+200:]
	ceps := []float64{0.5, 0.5}
	cplain, err := model.FitLinearGaussian(ctrain, model.FitConfig{})
	if err != nil {
		return nil, err
	}
	csw, err := model.FitSwitching(ctrain, model.SwitchingConfig{Regimes: 2})
	if err != nil {
		return nil, err
	}
	cpf, err := replayFraction(cplain.Clone(), ctest, ceps)
	if err != nil {
		return nil, err
	}
	csf, err := replayFraction(csw.Clone(), ctest, ceps)
	if err != nil {
		return nil, err
	}
	out = append(out,
		[]string{"switching model (crisp 2-level data)", "plain Gaussian", "reported", pct(cpf)},
		[]string{"switching model (crisp 2-level data)", "2-regime switching", "reported", pct(csf)})
	return out, nil
}

// regimeRows synthesises instantly-switching two-level data (the switching
// model's target regime, unlike the lab's lag-smoothed HVAC which a plain
// AR already tracks).
func regimeRows(seed int64, steps int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, steps)
	level := 0.0
	w1, w2 := 0.0, 0.0
	for t := range data {
		if rng.Float64() < 0.02 {
			if level == 0 {
				level = -4
			} else {
				level = 0
			}
		}
		w1 = 0.7*w1 + 0.35*rng.NormFloat64()
		w2 = 0.7*w2 + 0.35*rng.NormFloat64()
		data[t] = []float64{20 + level + w1, 20.5 + level + w2}
	}
	return data
}

// extAdaptive compares static and adaptive models when the garden's
// climate shifts mid-stream (simulated by splicing two different seeds).
// Online refitting needs room to relearn (windows of days, multiple
// refits after the shift), so this experiment enforces its own minimum
// horizon regardless of the quick configuration.
func extAdaptive(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error) {
	testSteps := cfg.TestSteps
	if testSteps < 1200 {
		testSteps = 1200
	}
	a, err := cachedTrace(eng, "garden", cfg.Seed, cfg.TrainSteps+testSteps/2)
	if err != nil {
		return nil, err
	}
	warmCfg := trace.GardenConfig(cfg.Seed+1, testSteps-testSteps/2)
	warmCfg.TempBase += 2.5 // the drift: a warmer second half
	warm, err := cachedGenerate(eng, "garden", trace.GardenDeployment(), warmCfg)
	if err != nil {
		return nil, err
	}
	ra, err := a.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	rb, err := warm.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	pick := func(rows [][]float64) [][]float64 {
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = []float64{r[0], r[1], r[2]}
		}
		return out
	}
	all := append(pick(ra), pick(rb)...)
	train, test := all[:cfg.TrainSteps], all[cfg.TrainSteps:]
	eps := []float64{0.5, 0.5, 0.5}

	lg, err := model.FitLinearGaussian(train, model.FitConfig{Period: 24})
	if err != nil {
		return nil, err
	}
	sf, err := replayFraction(lg.Clone(), test, eps)
	if err != nil {
		return nil, err
	}
	ad, err := model.NewAdaptive(lg, model.AdaptiveConfig{
		RefitEvery: 96, Window: 240, Fit: model.FitConfig{Period: 24}})
	if err != nil {
		return nil, err
	}
	af, err := replayFraction(ad.Clone(), test, eps)
	if err != nil {
		return nil, err
	}
	return [][]string{
		{"adaptive refit (garden, +2.5°C shift)", "static", "reported", pct(sf)},
		{"adaptive refit (garden, +2.5°C shift)", "adaptive", "reported", pct(af)},
	}, nil
}

// replayFraction runs the Ken source loop and returns the reported
// fraction.
func replayFraction(m model.Model, rows [][]float64, eps []float64) (float64, error) {
	sent := 0
	for _, row := range rows {
		m.Step()
		obs, err := model.ChooseReportGreedy(m, row, eps)
		if err != nil {
			return 0, err
		}
		if err := m.Condition(obs); err != nil {
			return 0, err
		}
		sent += len(obs)
	}
	return float64(sent) / float64(len(rows)*len(eps)), nil
}

// extProbabilistic sweeps the §6 relaxed reporting function: lower
// steepness trades more ε violations for fewer reports; high steepness
// approaches the deterministic guarantee.
func extProbabilistic(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error) {
	d, err := loadDataset(eng, "garden", cfg)
	if err != nil {
		return nil, err
	}
	part := pairPart(d.dep.N())
	var out [][]string
	run := func(prob *core.ProbConfig, label string) error {
		s, err := core.Build(core.SchemeSpec{
			Scheme:    "Ken",
			Name:      "DjC2",
			Partition: part,
			Train:     d.train,
			Eps:       d.eps,
			FitCfg:    model.FitConfig{Period: 24},
			Prob:      prob,
			Obs:       cfg.Obs,
		})
		if err != nil {
			return err
		}
		res, err := core.Run(ctx, s, d.test, core.RunOptions{Eps: d.eps, Observer: cfg.Obs, Scope: engine.Scope(ctx)})
		if err != nil {
			return err
		}
		out = append(out, []string{"probabilistic reporting (garden)", label, "reported / violations",
			fmt.Sprintf("%s / %.2f%%", pct(res.FractionReported()),
				100*float64(res.BoundViolations)/float64(res.Steps*res.Dim))})
		return nil
	}
	if err := run(nil, "deterministic"); err != nil {
		return nil, err
	}
	for _, steep := range []float64{5, 2, 1} {
		if err := run(&core.ProbConfig{Steepness: steep, Seed: cfg.Seed},
			fmt.Sprintf("steepness %.0f", steep)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// extLifetime runs the distributed programs on the packet simulator.
func extLifetime(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error) {
	tr, err := cachedTrace(eng, "garden", cfg.Seed, cfg.TrainSteps+cfg.TestSteps)
	if err != nil {
		return nil, err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	n := tr.Deployment.N()
	train, test := rows[:cfg.TrainSteps], rows[cfg.TrainSteps:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	links := make([]network.Link, 0, n)
	for i := 0; i < n; i++ {
		links = append(links, network.Link{U: i, V: i + 1, Cost: 1})
	}
	top, err := network.New(n, links)
	if err != nil {
		return nil, err
	}
	radio := simnet.DefaultRadio()
	// Size the battery so TinyDB's hotspot dies about a third into the
	// window regardless of the configured test length.
	radio.BatteryJ = float64(cfg.TestSteps) / 3 * 11 * 40 * radio.TxPerByte
	radio.IdlePerEpoch = 1e-5
	part := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i + 1})
		} else {
			part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	var out [][]string
	for _, name := range []string{"tinydb", "ken"} {
		net, err := simnet.New(top, radio, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// Each program gets its own trace scope so the auditor sees two
		// separate open segments rather than one interleaved stream.
		//lint:ignore obshandle two construction-time iterations, each instrumenting a fresh network
		net.Instrument(cfg.Obs.Scoped(engine.Scope(ctx)).Scoped(name))
		var prog simnet.Program
		if name == "tinydb" {
			prog, err = simnet.NewDistributedTinyDB(net, eps)
		} else {
			prog, err = simnet.NewDistributedKen(net, part, train, eps, model.FitConfig{Period: 24})
		}
		if err != nil {
			return nil, err
		}
		death, epochs, err := simnet.RunLifetime(net, prog, test)
		if err != nil {
			return nil, err
		}
		val := fmt.Sprintf("%d", death)
		if death < 0 {
			val = fmt.Sprintf(">%d", epochs)
		}
		out = append(out, []string{"network lifetime (11-node chain)", name, "first death epoch", val})
	}
	return out, nil
}

// extStreaming measures wire bytes through the source→sink pipeline.
func extStreaming(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error) {
	tr, err := cachedTrace(eng, "garden", cfg.Seed, cfg.TrainSteps+cfg.TestSteps)
	if err != nil {
		return nil, err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	n := tr.Deployment.N()
	train, test := rows[:cfg.TrainSteps], rows[cfg.TrainSteps:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	scfg := stream.Config{
		Partition: pairPart(n), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	}
	src, err := stream.NewSource(scfg)
	if err != nil {
		return nil, err
	}
	sink, err := stream.NewReplica(scfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	for _, row := range test {
		f, err := src.Collect(row)
		if err != nil {
			return nil, err
		}
		if err := stream.WriteFrame(&buf, f, src.Resolution()); err != nil {
			return nil, err
		}
	}
	wireBytes := buf.Len() // record before Serve drains the buffer
	if err := sink.Serve(&buf); err != nil {
		return nil, err
	}
	naive := len(test) * n * 10
	return [][]string{
		{"streaming wire bytes (garden)", "ken frames", "bytes", fmt.Sprintf("%d", wireBytes)},
		{"streaming wire bytes (garden)", "naive 10 B/reading", "bytes", fmt.Sprintf("%d", naive)},
	}, nil
}

// extJointMultiAttr runs the full SELECT * over all three attributes of
// every node as one collection problem: the physical topology is expanded
// to (node, attribute) logical vertices (network.Logical), so Greedy-k can
// build cliques that mix attributes on one node (zero intra cost, §5.5)
// with spatial neighbours. Compared against running the three attributes
// as independent Ken instances.
func extJointMultiAttr(ctx context.Context, eng *engine.Engine, cfg Config) ([][]string, error) {
	tr, err := cachedTrace(eng, "garden", cfg.Seed, cfg.TrainSteps+cfg.TestSteps)
	if err != nil {
		return nil, err
	}
	n := tr.Deployment.N()
	attrs := []trace.Attribute{trace.Temperature, trace.Humidity, trace.Voltage}
	k := len(attrs)

	// Logical training/test matrices: column node*k + attr.
	byAttr := make([][][]float64, k)
	for a, attr := range attrs {
		rows, err := tr.Rows(attr)
		if err != nil {
			return nil, err
		}
		byAttr[a] = rows
	}
	steps := cfg.TrainSteps + cfg.TestSteps
	all := make([][]float64, steps)
	eps := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for a, attr := range attrs {
			eps[i*k+a] = attr.DefaultEpsilon()
		}
	}
	for s := 0; s < steps; s++ {
		row := make([]float64, n*k)
		for i := 0; i < n; i++ {
			for a := 0; a < k; a++ {
				row[i*k+a] = byAttr[a][s][i]
			}
		}
		all[s] = row
	}
	train, test := all[:cfg.TrainSteps], all[cfg.TrainSteps:]

	// Independent baseline: each attribute collected alone with DjC2.
	indepReported, indepTotal := 0, 0
	for a := range attrs {
		cols := make([][]float64, steps)
		e := make([]float64, n)
		for i := range e {
			e[i] = attrs[a].DefaultEpsilon()
		}
		for s := 0; s < steps; s++ {
			r := make([]float64, n)
			for i := 0; i < n; i++ {
				r[i] = byAttr[a][s][i]
			}
			cols[s] = r
		}
		s, err := core.Build(core.SchemeSpec{
			Scheme:        "DjC2",
			Train:         cols[:cfg.TrainSteps],
			Eps:           e,
			FitCfg:        model.FitConfig{Period: 24},
			NeighborLimit: cfg.NeighborLimit,
			MC:            mcConfigFor(cfg),
			Metric:        cliques.MetricReduction,
			Obs:           cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		res, err := core.Run(ctx, s, cols[cfg.TrainSteps:], core.RunOptions{Eps: e, Observer: cfg.Obs, Scope: engine.Scope(ctx)})
		if err != nil {
			return nil, err
		}
		if res.BoundViolations != 0 {
			return nil, fmt.Errorf("bench: independent run violated ε")
		}
		indepReported += res.ValuesReported
		indepTotal += res.Steps * res.Dim
	}

	// Joint collection over the logical topology.
	phys, err := uniformTopology(n, 5)
	if err != nil {
		return nil, err
	}
	logical, err := network.Logical(phys, k, 0.01)
	if err != nil {
		return nil, err
	}
	eval, err := cliques.NewMCEvaluator(train, eps, model.FitConfig{Period: 24}, mcConfigFor(cfg))
	if err != nil {
		return nil, err
	}
	p, err := cliques.Greedy(logical, eval, cliques.GreedyConfig{
		K: 4, NeighborLimit: cfg.NeighborLimit, Metric: cliques.MetricReduction})
	if err != nil {
		return nil, err
	}
	s, err := core.Build(core.SchemeSpec{
		Scheme:    "Ken",
		Name:      "DjC4",
		Partition: p,
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
		Obs:       cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	res, err := core.Run(ctx, s, test, core.RunOptions{Eps: eps, Observer: cfg.Obs, Scope: engine.Scope(ctx)})
	if err != nil {
		return nil, err
	}
	if res.BoundViolations != 0 {
		return nil, fmt.Errorf("bench: joint run violated ε")
	}
	return [][]string{
		{"joint multi-attribute (33 logical attrs)", "independent per-attr DjC2",
			"reported", pct(float64(indepReported) / float64(indepTotal))},
		{"joint multi-attribute (33 logical attrs)", "joint logical DjC4",
			"reported", pct(res.FractionReported())},
	}, nil
}

// mcConfigFor derives the shared Monte Carlo settings.
func mcConfigFor(cfg Config) mc.Config {
	return mc.Config{Trajectories: cfg.MCTrajectories, Horizon: cfg.MCHorizon, Seed: cfg.Seed}
}
