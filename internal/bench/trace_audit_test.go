package bench

import (
	"bytes"
	"context"
	"testing"

	"ken/internal/audit"
	"ken/internal/engine"
	"ken/internal/obs"
)

// TestBenchTraceAuditsIdenticallyAtAnyWidth replays one figure with tracing
// at pool widths 1 and 8 and requires the audit reports to be byte-identical:
// the engine's per-cell scopes make a parallel trace's interleaving
// irrelevant to the auditor, which is the property the audit-smoke CI target
// locks in for the full benchmark suite.
func TestBenchTraceAuditsIdenticallyAtAnyWidth(t *testing.T) {
	var reports [][]byte
	for _, workers := range []int{1, 8} {
		var buf bytes.Buffer
		ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(&buf)}
		cfg := Quick()
		cfg.Obs = ob
		eng := engine.New(engine.Options{Workers: workers, Obs: ob})
		if _, err := Fig14(context.Background(), eng, cfg); err != nil {
			t.Fatalf("Fig14 (workers=%d): %v", workers, err)
		}
		if err := ob.Trace.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		rep, err := audit.AuditTrace(&buf)
		if err != nil {
			t.Fatalf("audit (workers=%d): %v", workers, err)
		}
		if !rep.Clean() {
			t.Fatalf("workers=%d: audit found violations: %v", workers, rep.Violations)
		}
		if rep.Epochs == 0 {
			t.Fatalf("workers=%d: trace carried no epochs", workers)
		}
		var out bytes.Buffer
		if err := rep.WriteJSON(&out); err != nil {
			t.Fatalf("report: %v", err)
		}
		reports = append(reports, out.Bytes())
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Fatalf("audit reports differ between workers=1 and workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			reports[0], reports[1])
	}
}
