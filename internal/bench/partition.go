package bench

import (
	"fmt"

	"ken/internal/cliques"
)

// Fig11 reproduces "Comparing Greedy-k and Exhaustive-k for various k": on
// the garden deployment (small enough for the dynamic program), both
// partitioners run with the same Monte Carlo evaluator and clique-size cap,
// and we report their expected total communication cost. The paper finds
// the greedy heuristic "very often within 12% of the optimal".
func Fig11(cfg Config) (*Table, error) {
	return fig11On("garden", 4, cfg)
}

func fig11On(name string, kmax int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	d, err := loadDataset(name, cfg)
	if err != nil {
		return nil, err
	}
	eval, err := d.evaluator(cfg)
	if err != nil {
		return nil, err
	}
	// The paper's cost study uses the uniform garden topology with an
	// elevated base cost, where clique choice genuinely matters.
	top, err := uniformTopology(d.dep.N(), 5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 11: Greedy-k vs Exhaustive-k expected cost, %s (base cost ×5)", name),
		Columns: []string{"k", "greedy cost", "exhaustive cost", "greedy/optimal", "greedy max clique", "optimal max clique"},
	}
	for k := 1; k <= kmax; k++ {
		grd, err := cliques.Greedy(top, eval, cliques.GreedyConfig{
			K:             k,
			NeighborLimit: cfg.NeighborLimit,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: greedy k=%d: %w", k, err)
		}
		exh, err := cliques.Exhaustive(top, eval, k)
		if err != nil {
			return nil, fmt.Errorf("bench: exhaustive k=%d: %w", k, err)
		}
		ratio := 1.0
		if exh.TotalCost() > 0 {
			ratio = grd.TotalCost() / exh.TotalCost()
		}
		t.AddRow(fmt.Sprintf("%d", k),
			f2(grd.TotalCost()), f2(exh.TotalCost()),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%d", grd.MaxCliqueSize()),
			fmt.Sprintf("%d", exh.MaxCliqueSize()))
	}
	t.Notes = append(t.Notes,
		"paper shape: greedy within ~12% of the optimal dynamic program",
		"cost is the expected per-step total (intra-source + source-sink)")
	return t, nil
}
