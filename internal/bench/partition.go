package bench

import (
	"context"
	"fmt"

	"ken/internal/cliques"
	"ken/internal/engine"
)

// Fig11 reproduces "Comparing Greedy-k and Exhaustive-k for various k": on
// the garden deployment (small enough for the dynamic program), both
// partitioners run with the same Monte Carlo evaluator and clique-size cap,
// and we report their expected total communication cost. The paper finds
// the greedy heuristic "very often within 12% of the optimal".
func Fig11(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	return fig11On(ctx, eng, "garden", 4, cfg)
}

func fig11On(ctx context.Context, eng *engine.Engine, name string, kmax int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	d, err := loadDataset(eng, name, cfg)
	if err != nil {
		return nil, err
	}
	eval, evalKey, err := d.evaluator(eng, cfg)
	if err != nil {
		return nil, err
	}
	// The paper's cost study uses the uniform garden topology with an
	// elevated base cost, where clique choice genuinely matters.
	top, err := uniformTopology(d.dep.N(), 5)
	if err != nil {
		return nil, err
	}
	topoKey := fmt.Sprintf("topo:uniform:n=%d:base=5", d.dep.N())
	t := &Table{
		Title:   fmt.Sprintf("Fig 11: Greedy-k vs Exhaustive-k expected cost, %s (base cost ×5)", name),
		Columns: []string{"k", "greedy cost", "exhaustive cost", "greedy/optimal", "greedy max clique", "optimal max clique"},
	}
	ks := make([]int, 0, kmax)
	for k := 1; k <= kmax; k++ {
		ks = append(ks, k)
	}
	rows, err := engine.Map(ctx, eng, ks, func(ctx context.Context, _ int, k int) ([]string, error) {
		grd, err := cachedGreedy(eng, eval, evalKey, top, topoKey, cliques.GreedyConfig{
			K:             k,
			NeighborLimit: cfg.NeighborLimit,
		}, d.dep.N())
		if err != nil {
			return nil, err
		}
		exhKey := fmt.Sprintf("part:exhaustive:%s:%s:k=%d", evalKey, topoKey, k)
		exh, err := cacheGet(eng, exhKey, func() (*cliques.Partition, error) {
			return cliques.Exhaustive(top, eval, k)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: exhaustive k=%d: %w", k, err)
		}
		ratio := 1.0
		if exh.TotalCost() > 0 {
			ratio = grd.TotalCost() / exh.TotalCost()
		}
		return []string{fmt.Sprintf("%d", k),
			f2(grd.TotalCost()), f2(exh.TotalCost()),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%d", grd.MaxCliqueSize()),
			fmt.Sprintf("%d", exh.MaxCliqueSize())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper shape: greedy within ~12% of the optimal dynamic program",
		"cost is the expected per-step total (intra-source + source-sink)")
	return t, nil
}
