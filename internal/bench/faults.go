package bench

import (
	"context"
	"fmt"

	"ken/internal/engine"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/simnet"
	"ken/internal/trace"
)

// Faults sweeps per-hop loss rate against the reliability layer on the
// Lab deployment: the bare distributed protocol (a lost unicast
// desynchronises the replicas until the next report), stop-and-wait ARQ
// with up to 3 retransmissions, and ARQ plus a full-value heartbeat every
// 10 epochs (§6). The figure shows ε violations collapsing as the
// delivery machinery under the guarantee hardens, at the price of
// retransmission traffic.
func Faults(ctx context.Context, eng *engine.Engine, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eng = ensureEngine(eng)
	ctx = engine.WithScope(ctx, "faults")
	t := &Table{
		Title:   "Reliability: ε violations vs per-hop loss (Lab, 200 epochs)",
		Columns: []string{"loss", "variant", "violations", "retx", "values delivered"},
	}

	type variant struct {
		name    string
		retries int
		hb      int
	}
	variants := []variant{
		{"no-arq", 0, 0},
		{"arq3", 3, 0},
		{"arq3+hb10", 3, 10},
	}
	type cell struct {
		loss float64
		v    variant
	}
	var cells []cell
	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		for _, v := range variants {
			cells = append(cells, cell{loss, v})
		}
	}

	epochs := cfg.TestSteps
	if epochs > 200 {
		epochs = 200
	}
	tr, err := cachedTrace(eng, "lab", cfg.Seed, cfg.TrainSteps+epochs)
	if err != nil {
		return nil, err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return nil, err
	}
	n := tr.Deployment.N()
	train, test := rows[:cfg.TrainSteps], rows[cfg.TrainSteps:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = trace.Temperature.DefaultEpsilon()
	}
	// Single-hop star: every node one link from the base, so the per-hop
	// loss rate is exactly the per-message loss rate.
	links := make([]network.Link, 0, n)
	for i := 0; i < n; i++ {
		links = append(links, network.Link{U: i, V: n, Cost: 1})
	}
	top, err := network.New(n, links)
	if err != nil {
		return nil, err
	}

	out, err := engine.Map(ctx, eng, cells, func(ctx context.Context, _ int, c cell) ([]string, error) {
		label := fmt.Sprintf("loss%.2f-%s", c.loss, c.v.name)
		radio := simnet.DefaultRadio()
		radio.LossRate = c.loss
		radio.ARQ.MaxRetries = c.v.retries
		net, err := simnet.New(top, radio, engine.CellSeed(cfg.Seed, "faults", label))
		if err != nil {
			return nil, err
		}
		//lint:ignore obshandle resolved once per cell at construction
		net.Instrument(cfg.Obs.Scoped(engine.Scope(ctx)).Scoped(label))
		prog, err := simnet.NewDistributedKenConfig(net, pairPart(n), train, eps, model.FitConfig{Period: 24},
			simnet.KenNetConfig{HeartbeatEvery: c.v.hb})
		if err != nil {
			return nil, err
		}
		violations, delivered := 0, 0
		for _, row := range test {
			res, err := prog.Epoch(row)
			if err != nil {
				return nil, err
			}
			violations += res.Violations
			delivered += res.ValuesDelivered
		}
		return []string{
			fmt.Sprintf("%.0f%%", c.loss*100), c.v.name,
			fmt.Sprintf("%d", violations),
			fmt.Sprintf("%d", net.Stats().Retransmits),
			fmt.Sprintf("%d", delivered),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, out...)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d-node Lab star, %d epochs; ARQ acks charge energy both ways", n, len(test)),
		"violations: node-epochs where the base's estimate missed ε")
	return t, nil
}
