package bench

import (
	"bytes"
	"context"
	"testing"

	"ken/internal/engine"
)

// goldenRunners lists every figure the parallel engine must reproduce
// byte-for-byte.
var goldenRunners = []struct {
	name string
	fn   Runner
}{
	{"Fig7", Fig7},
	{"Fig8", Fig8},
	{"Fig9", Fig9},
	{"Fig10", Fig10},
	{"Fig11", Fig11},
	{"Fig12", Fig12},
	{"Fig13", Fig13},
	{"Fig14", Fig14},
	{"Extensions", Extensions},
	{"Sweeps", Sweeps},
	{"Faults", Faults},
}

// render runs one figure on the given engine and returns its padded-text
// rendering.
func render(t *testing.T, fn Runner, eng *engine.Engine) []byte {
	t.Helper()
	tb, err := fn(context.Background(), eng, Quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSequential is the engine's core guarantee: a Workers=8
// run of every figure produces byte-identical tables to a Workers=1 run.
// Each figure gets fresh engines so the comparison also covers cold-cache
// artifact construction on both sides.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure twice")
	}
	for _, r := range goldenRunners {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			seq := render(t, r.fn, engine.New(engine.Options{Workers: 1}))
			par := render(t, r.fn, engine.New(engine.Options{Workers: 8}))
			if !bytes.Equal(seq, par) {
				t.Errorf("parallel output differs from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
			}
		})
	}
}

// TestSharedEngineReusesArtifacts runs two figures that need the same
// dataset on one engine and checks the cache deduplicated the underlying
// trace (one "trace:garden:..." flight, not two).
func TestSharedEngineReusesArtifacts(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	if _, err := Fig8(context.Background(), eng, Quick()); err != nil {
		t.Fatal(err)
	}
	before := eng.Cache().Len()
	if before == 0 {
		t.Fatal("Fig8 populated no cache entries")
	}
	// Fig9 uses the same garden dataset: the trace and dataset keys must
	// hit, so the cache grows only by Fig9's evaluator/partition entries.
	if _, err := Fig9(context.Background(), eng, Quick()); err != nil {
		t.Fatal(err)
	}
	after := eng.Cache().Len()
	if after == before {
		t.Fatal("Fig9 added no cache entries (evaluator/partitions expected)")
	}
	// Rerunning Fig9 must add nothing: every artifact is already cached.
	if _, err := Fig9(context.Background(), eng, Quick()); err != nil {
		t.Fatal(err)
	}
	if eng.Cache().Len() != after {
		t.Fatalf("rerun grew the cache from %d to %d entries", after, eng.Cache().Len())
	}
}

// TestFigureCancellation verifies a canceled context aborts a figure
// instead of running it to completion.
func TestFigureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.Options{Workers: 4})
	if _, err := Fig9(ctx, eng, Quick()); err == nil {
		t.Fatal("expected cancellation error")
	}
}
