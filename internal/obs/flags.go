package obs

import (
	"flag"
	"log/slog"
	"os"
)

// CmdFlags is the uniform observability flag block of the cmd binaries:
// -obs-addr, -trace-out, -trace-timestamps, -log-level and -log-json. It
// replaces the per-binary copies of the same setup so every binary can
// produce auditable traces the same way.
//
//	var of obs.CmdFlags
//	of.Register(flag.CommandLine)
//	flag.Parse()
//	ob, done, err := of.Setup()
//	// ... run ...
//	done()
type CmdFlags struct {
	Addr       string
	TraceOut   string
	Timestamps bool
	Log        LogFlags
}

// Register installs the shared observability flags on the flag set.
func (c *CmdFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Addr, "obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run (empty = off)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write protocol event JSONL (epoch spans, reports, applies) to this file for kenaudit")
	fs.BoolVar(&c.Timestamps, "trace-timestamps", false, "stamp trace events with wall-clock time (enables kenaudit latency histograms, breaks byte-comparable traces)")
	c.Log.Register(fs)
}

// Setup configures logging, assembles the observer (registry always;
// tracer when -trace-out is set) and starts the HTTP endpoint when
// -obs-addr is set. The returned cleanup flushes and closes the trace
// sink; call it once the run is over (it is safe to call on the error
// path too). Errors are returned unlogged so the binary owns its exit.
func (c CmdFlags) Setup() (*Observer, func(), error) {
	if _, err := c.Log.Setup(nil); err != nil {
		return nil, nil, err
	}
	ob := &Observer{Reg: NewRegistry()}
	cleanup := func() {}
	if c.TraceOut != "" {
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return nil, nil, err
		}
		ob.Trace = NewTracer(f)
		if c.Timestamps {
			ob.Trace.StampWallClock()
		}
		path := c.TraceOut
		cleanup = func() {
			if err := ob.Trace.Flush(); err != nil {
				slog.Warn("trace flush failed", "err", err)
			}
			if err := f.Close(); err != nil {
				slog.Warn("trace close failed", "err", err)
			}
			slog.Info("protocol trace written", "path", path, "events", ob.Trace.Events())
		}
	}
	if c.Addr != "" {
		_, bound, err := Serve(c.Addr, ob.Reg)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		slog.Info("observability endpoint up", "addr", bound.String(),
			"paths", "/metrics /debug/vars /debug/pprof/")
	}
	return ob, cleanup, nil
}
