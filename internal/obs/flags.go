package obs

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ken/internal/tracestore"
)

// CmdFlags is the uniform observability flag block of the cmd binaries:
// -obs-addr, -trace-out, -trace-timestamps, -trace-segment-events,
// -trace-segment-bytes, -log-level and -log-json. It replaces the
// per-binary copies of the same setup so every binary can produce
// auditable traces the same way.
//
//	var of obs.CmdFlags
//	of.Register(flag.CommandLine)
//	flag.Parse()
//	ob, done, err := of.Setup()
//	// ... run ...
//	done()
type CmdFlags struct {
	Addr          string
	TraceOut      string
	Timestamps    bool
	SegmentEvents int
	SegmentBytes  int64
	Log           LogFlags
}

// Register installs the shared observability flags on the flag set.
func (c *CmdFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Addr, "obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run (empty = off)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write protocol event JSONL (epoch spans, reports, applies) for kenaudit; a directory path (trailing slash or existing directory) selects the segmented, hash-chained trace store")
	fs.BoolVar(&c.Timestamps, "trace-timestamps", false, "stamp trace events with wall-clock time (enables kenaudit latency histograms, breaks byte-comparable traces)")
	fs.IntVar(&c.SegmentEvents, "trace-segment-events", 0, "segmented store: roll the segment after this many events (0 = default)")
	fs.Int64Var(&c.SegmentBytes, "trace-segment-bytes", 0, "segmented store: roll the segment after this many bytes (0 = default)")
	c.Log.Register(fs)
}

// traceIsDir reports whether -trace-out selects the segmented store: a
// trailing separator always does, and so does an existing directory.
func (c CmdFlags) traceIsDir() bool {
	if strings.HasSuffix(c.TraceOut, "/") || strings.HasSuffix(c.TraceOut, string(os.PathSeparator)) {
		return true
	}
	fi, err := os.Stat(c.TraceOut)
	return err == nil && fi.IsDir()
}

// Setup configures logging, assembles the observer (registry always;
// tracer when -trace-out is set) and starts the HTTP endpoint when
// -obs-addr is set. The returned cleanup flushes and closes the trace
// sink; call it once the run is over (it is safe to call on the error
// path too). Errors are returned unlogged so the binary owns its exit.
//
// While a trace sink is open, SIGINT/SIGTERM flush it (and seal the open
// segment, in store mode) so an interrupted run still leaves an
// auditable trace; the handler does not exit — the binary's own context
// cancellation drives shutdown, and cleanup unregisters the handler.
func (c CmdFlags) Setup() (*Observer, func(), error) {
	if _, err := c.Log.Setup(nil); err != nil {
		return nil, nil, err
	}
	ob := &Observer{Reg: NewRegistry()}
	cleanup := func() {}
	switch {
	case c.TraceOut != "" && c.traceIsDir():
		w, err := tracestore.Create(c.TraceOut, tracestore.Options{
			MaxEvents: c.SegmentEvents, MaxBytes: c.SegmentBytes,
		})
		if err != nil {
			return nil, nil, err
		}
		ob.Trace = NewTracerSink(w)
		if c.Timestamps {
			ob.Trace.StampWallClock()
		}
		stop := sealOnSignal(ob.Trace, w)
		dir := c.TraceOut
		cleanup = func() {
			stop()
			if err := ob.Trace.Flush(); err != nil {
				slog.Warn("trace flush failed", "err", err)
			}
			segments := w.Segments()
			if err := w.Close(); err != nil {
				slog.Warn("trace store close failed", "err", err)
			}
			slog.Info("segmented protocol trace written", "dir", dir,
				"segments", segments, "events", ob.Trace.Events())
		}
	case c.TraceOut != "":
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return nil, nil, err
		}
		ob.Trace = NewTracer(f)
		if c.Timestamps {
			ob.Trace.StampWallClock()
		}
		stop := sealOnSignal(ob.Trace, nil)
		path := c.TraceOut
		cleanup = func() {
			stop()
			if err := ob.Trace.Flush(); err != nil {
				slog.Warn("trace flush failed", "err", err)
			}
			if err := f.Close(); err != nil {
				slog.Warn("trace close failed", "err", err)
			}
			slog.Info("protocol trace written", "path", path, "events", ob.Trace.Events())
		}
	}
	if c.Addr != "" {
		_, bound, err := Serve(c.Addr, ob.Reg)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		slog.Info("observability endpoint up", "addr", bound.String(),
			"paths", "/metrics /debug/vars /debug/pprof/")
	}
	return ob, cleanup, nil
}

// sealOnSignal installs a handler that flushes the tracer — and seals
// the segmented store, when one is behind it — on SIGINT/SIGTERM, so an
// interrupted run still leaves an auditable trace. The tracer keeps
// working after a seal (the next event opens the successor segment), so
// binaries with their own signal.NotifyContext drain gracefully and
// re-flush on exit; a second signal force-exits with status 130 after a
// final flush+seal, covering binaries without one. The returned stop
// function unregisters the handler; it is idempotent.
func sealOnSignal(t *Tracer, w *tracestore.Writer) func() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	finished := make(chan struct{})
	flushSeal := func() {
		if err := t.Flush(); err != nil {
			slog.Warn("trace flush on signal failed", "err", err)
		}
		if w != nil {
			if err := w.Seal(); err != nil {
				slog.Warn("trace seal on signal failed", "err", err)
			}
		}
	}
	go func() {
		defer close(finished)
		seen := 0
		for {
			select {
			case <-sig:
				seen++
				flushSeal()
				if seen == 1 {
					slog.Info("trace flushed and sealed on signal; interrupt again to force exit")
					continue
				}
				os.Exit(130)
			case <-done:
				return
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		signal.Stop(sig)
		close(done)
		<-finished
	}
}
