// Package obs is the observability layer of the Ken pipeline: a
// dependency-free, concurrency-safe metrics registry (counters, gauges,
// histograms with quantile snapshots, timers), a structured protocol event
// tracer that writes JSONL sinks (trace.go), an expvar-compatible +
// Prometheus-text HTTP endpoint with pprof wired in (http.go), and a shared
// log/slog setup helper for the cmd binaries (log.go).
//
// Everything Ken's value proposition rests on is a number — reports
// suppressed, messages priced, Joules spent, ε-violations audited — and
// this package gives those numbers one uniform home instead of the ad-hoc
// result structs and print statements the binaries grew up with.
//
// # Nil fast path
//
// Instrumentation must cost nothing when nobody is watching. Every metric
// handle and the tracer are nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Timer or *Tracer return immediately, and a nil *Registry
// hands out nil handles. Instrumented code therefore resolves its handles
// once at construction time and calls them unconditionally on the hot path
// — with no observer attached the calls are a nil check and a return,
// allocating nothing (see TestNilFastPathAllocates nothing and
// BenchmarkNilFastPath).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for the value to stay monotone; this
// is not enforced). No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can move both ways (alive-node count,
// remaining energy, current max error).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates v with a CAS loop. No-op on a nil gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of every histogram: one underflow
// bucket plus base-√2 exponential buckets spanning 2^-33 .. 2^32 — wide
// enough for nanosecond-scale timer readings (stored as seconds) and for
// byte/message counts, with ≤ ~20% relative quantile error.
const histBuckets = 132

// histUpper returns the inclusive upper bound of bucket i.
func histUpper(i int) float64 {
	return math.Pow(2, float64(i-66)/2)
}

// histIndex maps a value onto the bucket grid. Non-positive and NaN values
// land in the underflow bucket.
func histIndex(v float64) int {
	if !(v > 0) {
		return 0
	}
	i := 66 + int(math.Ceil(2*math.Log2(v)))
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Histogram is a fixed-memory exponential-bucket histogram. Observations
// are commutative atomic increments, so snapshots are deterministic for a
// given multiset of observations regardless of goroutine interleaving.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // encMM-encoded; 0 means "no observation yet"
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// encMM/decMM encode a float for the min/max slots with 0 reserved as the
// "unset" sentinel, so an observed value of exactly 0.0 stays
// distinguishable from no observation at all.
func encMM(v float64) uint64 { return math.Float64bits(v) + 1 }
func decMM(b uint64) float64 { return math.Float64frombits(b - 1) }

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[histIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if old != 0 && decMM(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, encMM(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if old != 0 && decMM(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, encMM(v)) {
			break
		}
	}
	// Count is bumped last so a snapshot that observes count > 0 always
	// reads initialized min/max slots.
	h.count.Add(1)
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot captures count, sum, min/max and interpolated quantiles. The
// zero snapshot is returned for nil or empty histograms.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	n := h.count.Load()
	if n == 0 {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: n,
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Min:   decMM(h.minBits.Load()),
		Max:   decMM(h.maxBits.Load()),
	}
	s.P50 = h.quantile(n, 0.50, s.Min, s.Max)
	s.P90 = h.quantile(n, 0.90, s.Min, s.Max)
	s.P95 = h.quantile(n, 0.95, s.Min, s.Max)
	s.P99 = h.quantile(n, 0.99, s.Min, s.Max)
	return s
}

// quantile estimates the q-quantile from bucket counts, clamped into the
// exact observed [min, max] range.
func (h *Histogram) quantile(n int64, q, lo, hi float64) float64 {
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			v := histUpper(i)
			return math.Max(lo, math.Min(hi, v))
		}
	}
	return hi
}

// Timer records durations into a histogram of seconds.
type Timer struct {
	h *Histogram
}

// Observe records one duration. No-op on a nil timer.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// noopStop is the shared stop function handed out by nil timers, so the
// nil fast path stays allocation-free.
var noopStop = func() {}

// Start reads the wall clock and returns a stop function that records the
// elapsed time; it keeps clock access inside obs so deterministic packages
// can time their work without touching time.Now themselves (the kenlint
// nondeterminism invariant). A nil timer returns a shared no-op stop.
func (t *Timer) Start() func() {
	if t == nil {
		return noopStop
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Snapshot exposes the underlying histogram (seconds).
func (t *Timer) Snapshot() HistSnapshot {
	if t == nil {
		return HistSnapshot{}
	}
	return t.h.Snapshot()
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is fully usable and hands out nil
// handles, making it the "observability off" mode.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]any{}, help: map[string]string{}}
}

// Describe attaches a one-line help string to a metric name, emitted as
// the Prometheus # HELP line. May be called before or after the metric
// is first used; the last call wins. No-op on a nil registry.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = map[string]string{}
	}
	r.help[name] = help
}

// lookup returns the named metric, creating it with mk on first use, and
// panics when the name is already registered with a different type — a
// programming error, matching Prometheus client behaviour.
func lookup[T any](r *Registry, name string, mk func() *T) *T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(*T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different type (%T)", name, m))
		}
		return t
	}
	t := mk()
	r.metrics[name] = t
	return t
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil handle.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Histogram { return &Histogram{} })
}

// Timer returns a timer over the named histogram (of seconds). A nil
// registry returns a nil handle.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name)}
}

// Snapshot is a point-in-time copy of every metric, with deterministic
// (sorted) marshalling — the payload of kenbench's -metrics-out file.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Help       map[string]string       `json:"help,omitempty"`
}

// Snapshot captures every registered metric. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, m := range r.metrics {
		switch m := m.(type) {
		case *Counter:
			if s.Counters == nil {
				s.Counters = map[string]int64{}
			}
			s.Counters[name] = m.Value()
		case *Gauge:
			if s.Gauges == nil {
				s.Gauges = map[string]float64{}
			}
			s.Gauges[name] = m.Value()
		case *Histogram:
			if s.Histograms == nil {
				s.Histograms = map[string]HistSnapshot{}
			}
			s.Histograms[name] = m.Snapshot()
		}
	}
	for name, help := range r.help {
		if s.Help == nil {
			s.Help = map[string]string{}
		}
		s.Help[name] = help
	}
	return s
}

// names returns the sorted metric names (for deterministic text output).
func (s Snapshot) names() []string {
	var out []string
	for n := range s.Counters {
		out = append(out, n)
	}
	for n := range s.Gauges {
		out = append(out, n)
	}
	for n := range s.Histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Observer bundles the two observability sinks instrumented code accepts.
// A nil *Observer (and nil fields) disables everything; the accessors are
// nil-safe so call sites never branch.
type Observer struct {
	Reg   *Registry
	Trace *Tracer
}

// Registry returns the metrics registry (nil when unobserved).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the protocol event tracer (nil when unobserved).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Scoped returns an Observer whose trace events carry scope (appended to
// any scope the tracer already has, "/"-separated). Metrics are shared
// with the receiver. Nil-safe: without a tracer, or with an empty scope,
// the receiver is returned unchanged.
func (o *Observer) Scoped(scope string) *Observer {
	if o == nil || o.Trace == nil || scope == "" {
		return o
	}
	return &Observer{Reg: o.Reg, Trace: o.Trace.WithScope(scope)}
}
