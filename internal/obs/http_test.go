package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ken/internal/obs"
)

// goldenRegistry builds a registry with one of each metric kind and known
// values: counter c=3 (described), gauge g=2.5, histogram h over {1, 2, 4}.
func goldenRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(3)
	reg.Describe("c", "a described counter")
	reg.Gauge("g").Set(2.5)
	h := reg.Histogram("h")
	h.Observe(1)
	h.Observe(2)
	h.Observe(4)
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	const want = `# HELP c a described counter
# TYPE c counter
c 3
# HELP g g
# TYPE g gauge
g 2.5
# HELP h h
# TYPE h summary
h{quantile="0.5"} 2
h{quantile="0.9"} 4
h{quantile="0.95"} 4
h{quantile="0.99"} 4
h_sum 7
h_count 3
`
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteExpvarGolden(t *testing.T) {
	const want = `{
  "c": 3,
  "g": 2.5,
  "h": {
    "count": 3,
    "sum": 7,
    "min": 1,
    "max": 4,
    "p50": 2,
    "p90": 4,
    "p95": 4,
    "p99": 4
  }
}
`
	var buf bytes.Buffer
	if err := obs.WriteExpvar(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("expvar output:\n%s\nwant:\n%s", got, want)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(obs.Handler(goldenRegistry()))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "c 3") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ctype)
	}

	code, body, _ = get("/debug/vars")
	var flat map[string]any
	if err := json.Unmarshal([]byte(body), &flat); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if code != http.StatusOK || flat["c"] != float64(3) {
		t.Errorf("/debug/vars: code=%d c=%v", code, flat["c"])
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code=%d", code)
	}

	if code, _, _ = get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code=%d, want 404", code)
	}
}

// TestServeLiveScrape boots the real background server on :0 and scrapes a
// metric that changes between requests — the kensim -obs-addr flow.
func TestServeLiveScrape(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get("http://" + addr.String() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	reg.Counter("epochs").Inc()
	if got := scrape(); !strings.Contains(got, "epochs 1") {
		t.Errorf("first scrape: %q", got)
	}
	reg.Counter("epochs").Inc()
	if got := scrape(); !strings.Contains(got, "epochs 2") {
		t.Errorf("second scrape: %q", got)
	}
}
