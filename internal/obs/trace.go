package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventType names a protocol event. The set covers the observable decision
// points of the Ken pipeline; docs/OBSERVABILITY.md maps each to its place
// in the paper.
type EventType string

const (
	// EvEpochStart marks the beginning of one sampling epoch (one trace row
	// replayed, or one simnet round). Its Span is the epoch span id every
	// event inside the epoch carries in Epoch.
	EvEpochStart EventType = "epoch_start"
	// EvEpochEnd closes an epoch; N carries the values reported during it
	// and Payload carries the audit triple (predicted, observed, ε) plus the
	// epoch's bytes on wire.
	EvEpochEnd EventType = "epoch_end"
	// EvReport records a clique source transmitting Attrs/Values to the
	// sink — the minimal set that pulls predictions back inside ε (§3.2).
	// Payload carries the source model's predictions for the reported
	// attributes, the observed values, the bounds, and the bytes on wire.
	EvReport EventType = "report"
	// EvSuppress records the attributes a clique did NOT transmit because
	// the replicated model already predicted them within ε — the savings
	// the paper's Figs 9/10 plot.
	EvSuppress EventType = "suppress"
	// EvApply records the sink replica folding in a delivered report (the
	// causal tail of an EvReport: Parent links back to the report span).
	EvApply EventType = "sink_apply"
	// EvPull records a BBQ-style pull engine acquiring one reading on
	// demand (attribute in Node, reading in Values).
	EvPull EventType = "pull_acquire"
	// EvHop records one link-level radio transmission in simnet (Node is
	// the transmitter; Payload carries from/to/bytes).
	EvHop EventType = "net_hop"
	// EvDrop records a message dying in flight (Detail: "loss", "noroute"
	// or "dead"); Parent links to the span whose traffic was lost.
	EvDrop EventType = "net_drop"
	// EvNodeFailure records a simulated node exhausting its battery.
	EvNodeFailure EventType = "node_failure"
	// EvRetx records an ARQ retransmission: the sender heard no ack and is
	// re-sending (N carries the backoff slots drawn, Payload.Attempt the
	// 1-based retransmission number).
	EvRetx EventType = "net_retx"
	// EvAck records a link-layer acknowledgement completing its return trip
	// to the original sender (Payload carries the ack's endpoints and wire
	// bytes).
	EvAck EventType = "net_ack"
	// EvSuspect records the base-station failure detector turning
	// suspicious about a silent node (§6; N carries the silence length).
	EvSuspect EventType = "failure_suspect"
	// EvResync records a full-value heartbeat re-synchronising the
	// replicated models after possible divergence (§6 message loss).
	EvResync EventType = "model_resync"
	// EvRunEnd closes one core.Run replay; Payload carries the Result
	// totals (steps, values, violations, bytes) the offline auditor checks
	// the per-epoch accounting against.
	EvRunEnd EventType = "run_end"
)

// Payload is the typed audit payload of an event. Which fields are set
// depends on the event type (see docs/OBSERVABILITY.md, "Event schema").
type Payload struct {
	// Predicted / Observed / Eps are parallel per-attribute triples: the
	// model's prediction, the ground truth, and the error bound.
	Predicted []float64 `json:"pred,omitempty"`
	Observed  []float64 `json:"obs,omitempty"`
	Eps       []float64 `json:"eps,omitempty"`
	// Chunk sequences messages/frames within their epoch (stream frame
	// index, simnet send sequence).
	Chunk int `json:"chunk,omitempty"`
	// Bytes is the payload size on the wire.
	Bytes int `json:"bytes,omitempty"`
	// From/To name the endpoints of a link-level transmission (EvHop).
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Attempt is the 1-based retransmission number of an EvRetx.
	Attempt int `json:"attempt,omitempty"`
	// Retx and LinkBytes are per-epoch radio-ledger totals declared on an
	// EvEpochEnd: retransmissions issued and link-level bytes transmitted
	// (every hop of every message, acks included). They are audited against
	// the epoch's EvRetx/EvHop events, while Bytes is audited against the
	// protocol ledger of EvReport payloads — see docs/OBSERVABILITY.md,
	// "Two byte ledgers".
	Retx      int `json:"retx,omitempty"`
	LinkBytes int `json:"link_bytes,omitempty"`
	// Run-summary totals (EvRunEnd only).
	Steps      int `json:"steps,omitempty"`
	Values     int `json:"values,omitempty"`
	Violations int `json:"violations,omitempty"`
}

// WireBytesPerValue is the first-order cost of one reported (attribute,
// value) pair on a mote radio: a 2-byte attribute id plus a 2-byte
// ADC-width reading — the same accounting simnet's Message uses (simnet
// additionally charges per-message header overhead).
const WireBytesPerValue = 4

// Event is one structured protocol event. Clique and Node are -1 when not
// applicable so that index 0 stays unambiguous. Epoch/Span/Parent are the
// causal span context: Epoch is the enclosing epoch span id, Span the
// event's own id (when it roots further causation), and Parent the id of
// the span that caused it (0 = uncaused/root).
type Event struct {
	Type    EventType `json:"type"`
	Step    int64     `json:"step"`
	Clique  int       `json:"clique"`
	Node    int       `json:"node"`
	Epoch   int64     `json:"epoch,omitempty"`
	Span    int64     `json:"span,omitempty"`
	Parent  int64     `json:"parent,omitempty"`
	Scope   string    `json:"scope,omitempty"`
	TS      int64     `json:"ts,omitempty"` // wall-clock nanos, only with StampWallClock
	Attrs   []int     `json:"attrs,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	N       int       `json:"n,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	Payload *Payload  `json:"payload,omitempty"`
}

// TraceKind and TraceSchema identify the JSONL trace format. The first
// line of every trace written by NewTracer is a TraceHeader; readers
// reject schemas they do not understand instead of silently decoding
// partial events.
const (
	TraceKind   = "ken-trace"
	TraceSchema = 2
)

// TraceHeader is the first JSONL line of a trace file.
type TraceHeader struct {
	Kind   string `json:"kind"`
	Schema int    `json:"schema"`
}

// LineSink receives encoded event lines instead of a flat byte stream —
// the seam between the tracer and a segmented store. The scope and step
// ride alongside the line so the sink can index without decoding it;
// the line is the exact JSON the flat tracer would have written, sans
// newline. tracestore.Writer satisfies this structurally, keeping the
// dependency arrow pointing obs → tracestore.
type LineSink interface {
	WriteEventLine(scope string, step int64, line []byte) error
	Flush() error
}

// tracerCore is the shared sink behind every scoped Tracer view. Exactly
// one of (bw, enc) or sink is set: flat-file mode encodes straight into
// the buffered writer; sink mode hands each encoded line to a LineSink.
type tracerCore struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	sink   LineSink
	err    error
	events int64
	spans  atomic.Int64
	stamp  bool
}

// Tracer serialises protocol events as JSON Lines. A nil *Tracer is the
// "tracing off" mode: Emit returns immediately. Emit is safe for
// concurrent use. WithScope derives cheap views that label every event
// with a scope path, so concurrent experiment cells writing one file stay
// attributable.
type Tracer struct {
	scope string
	c     *tracerCore
}

// NewTracer wraps the writer (typically an *os.File) in a buffered JSONL
// encoder and writes the schema header line. Call Flush (or Close the
// underlying file after Flush) when done.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	t := &Tracer{c: &tracerCore{bw: bw, enc: json.NewEncoder(bw)}}
	if err := t.c.enc.Encode(TraceHeader{Kind: TraceKind, Schema: TraceSchema}); err != nil {
		t.c.err = fmt.Errorf("obs: trace header: %w", err)
	}
	return t
}

// NewTracerSink routes events to a LineSink (a segmented trace store)
// instead of a flat file. No schema-2 header is written — the sink owns
// its own framing. Everything else (scoped views, spans, wall-clock
// stamping, sticky errors) behaves identically to NewTracer.
func NewTracerSink(s LineSink) *Tracer {
	return &Tracer{c: &tracerCore{sink: s}}
}

// WithScope returns a view of the tracer whose events carry the given
// scope label, nested under any existing scope with "/". Views share the
// underlying sink, error state, event count and span id space. Safe on
// nil; an empty label returns the receiver. Resolve scoped views once per
// run, not inside hot loops.
func (t *Tracer) WithScope(scope string) *Tracer {
	if t == nil || scope == "" {
		return t
	}
	if t.scope != "" {
		scope = t.scope + "/" + scope
	}
	return &Tracer{scope: scope, c: t.c}
}

// Scope returns the view's scope path ("" for the root view or nil).
func (t *Tracer) Scope() string {
	if t == nil {
		return ""
	}
	return t.scope
}

// StampWallClock makes the tracer stamp every event with wall-clock
// nanoseconds (Event.TS). Off by default: deterministic pipelines produce
// byte-comparable traces, and the auditor derives epoch latency only when
// stamps are present. Clock access stays inside obs, like Timer.
func (t *Tracer) StampWallClock() {
	if t == nil {
		return
	}
	t.c.mu.Lock()
	t.c.stamp = true
	t.c.mu.Unlock()
}

// NewSpanID allocates the next span id (monotone per underlying trace,
// shared across scoped views). 0 on nil.
func (t *Tracer) NewSpanID() int64 {
	if t == nil {
		return 0
	}
	return t.c.spans.Add(1)
}

// Emit appends one event, stamping the view's scope (unless the event
// already carries one). The first encoding error sticks and is reported
// by Flush; later events are dropped so a broken sink cannot stall the
// protocol.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.Scope == "" {
		e.Scope = t.scope
	}
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	if c.stamp && e.TS == 0 {
		e.TS = time.Now().UnixNano()
	}
	if c.sink != nil {
		line, err := json.Marshal(e)
		if err != nil {
			c.err = fmt.Errorf("obs: trace emit: %w", err)
			return
		}
		if err := c.sink.WriteEventLine(e.Scope, e.Step, line); err != nil {
			c.err = fmt.Errorf("obs: trace emit: %w", err)
			return
		}
		c.events++
		return
	}
	if err := c.enc.Encode(e); err != nil {
		c.err = fmt.Errorf("obs: trace emit: %w", err)
		return
	}
	c.events++
}

// Events returns how many events were successfully emitted (the header
// line is not an event).
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	return t.c.events
}

// Flush drains the buffer and returns the first error seen (emit or
// flush). Safe on nil.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.c.sink != nil {
		if err := t.c.sink.Flush(); err != nil && t.c.err == nil {
			t.c.err = fmt.Errorf("obs: trace flush: %w", err)
		}
		return t.c.err
	}
	//lint:ignore locksafe the tracer serializes writer access behind the lock by design; Flush races Emit otherwise
	if err := t.c.bw.Flush(); err != nil && t.c.err == nil {
		t.c.err = fmt.Errorf("obs: trace flush: %w", err)
	}
	return t.c.err
}

// Span is a causal epoch context: a handle that stamps every event
// emitted through it with the enclosing epoch id, its own span id, and
// its parent link, so an offline auditor can walk report → hop → apply
// chains. Spans are nil-safe — every method on a nil *Span is a no-op —
// so instrumented code holds one handle and calls it unconditionally;
// guard only payload construction, via Active.
type Span struct {
	t      *Tracer
	epoch  int64
	id     int64
	parent int64
}

// StartEpoch allocates an epoch span and emits its EvEpochStart event
// (the passed event's Type/Epoch/Span/Parent are overwritten). Returns
// nil on a nil tracer.
func (t *Tracer) StartEpoch(e Event) *Span {
	if t == nil {
		return nil
	}
	id := t.NewSpanID()
	e.Type, e.Epoch, e.Span, e.Parent = EvEpochStart, id, id, 0
	t.Emit(e)
	return &Span{t: t, epoch: id, id: id}
}

// Active reports whether emitting through the span reaches a sink — the
// sanctioned guard for skipping payload construction on the dark path.
func (s *Span) Active() bool { return s != nil && s.t != nil }

// EpochID returns the enclosing epoch span id (0 on nil).
func (s *Span) EpochID() int64 {
	if s == nil {
		return 0
	}
	return s.epoch
}

// ID returns this span's own id (0 on nil).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child allocates a sub-span parented to this one: events emitted through
// the child carry Parent = s.ID(). Nil-safe.
func (s *Span) Child() *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, epoch: s.epoch, id: s.t.NewSpanID(), parent: s.id}
}

// Emit stamps the span context (Epoch, Span, Parent) onto the event and
// emits it. Nil-safe.
func (s *Span) Emit(e Event) {
	if s == nil {
		return
	}
	e.Epoch, e.Span, e.Parent = s.epoch, s.id, s.parent
	s.t.Emit(e)
}

// EndEpoch closes the epoch: emits EvEpochEnd carrying the span context
// (the passed event's Type/Epoch/Span/Parent are overwritten). Nil-safe.
func (s *Span) EndEpoch(e Event) {
	if s == nil {
		return
	}
	e.Type, e.Epoch, e.Span, e.Parent = EvEpochEnd, s.epoch, s.id, s.parent
	s.t.Emit(e)
}

// SchemaError reports a trace whose header declares a schema this build
// does not read.
type SchemaError struct {
	Got, Want int
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("obs: trace schema %d is not supported (this build reads schema %d); regenerate the trace with a matching build", e.Got, e.Want)
}

// StreamEvents decodes a JSONL stream written by a Tracer, handing each
// event to fn as it is read — the constant-memory replay side of
// protocol tracing. A schema header, when present, must match
// TraceSchema (else *SchemaError); headerless streams are accepted as
// the legacy (schema 1) format. An error from fn aborts the stream and
// is returned verbatim.
func StreamEvents(r io.Reader, fn func(Event) error) error {
	dec := json.NewDecoder(r)
	first := true
	n := 0
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("obs: reading trace event %d: %w", n, err)
		}
		if first {
			first = false
			var hdr TraceHeader
			if err := json.Unmarshal(raw, &hdr); err == nil && hdr.Kind == TraceKind {
				if hdr.Schema != TraceSchema {
					return &SchemaError{Got: hdr.Schema, Want: TraceSchema}
				}
				continue
			}
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("obs: reading trace event %d: %w", n, err)
		}
		if err := fn(e); err != nil {
			return err
		}
		n++
	}
}

// ReadEvents decodes a JSONL stream written by a Tracer into a slice —
// StreamEvents for callers that want everything in memory. On error the
// events read so far are returned alongside it, except for a schema
// mismatch, which returns nil.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	err := StreamEvents(r, func(e Event) error {
		out = append(out, e)
		return nil
	})
	var se *SchemaError
	if errors.As(err, &se) {
		return nil, err
	}
	return out, err
}
