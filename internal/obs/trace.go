package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventType names a protocol event. The set covers the observable decision
// points of the Ken pipeline; docs/OBSERVABILITY.md maps each to its place
// in the paper.
type EventType string

const (
	// EvEpochStart marks the beginning of one sampling epoch (one trace row
	// replayed, or one simnet round).
	EvEpochStart EventType = "epoch_start"
	// EvEpochEnd closes an epoch; N carries the values reported during it.
	EvEpochEnd EventType = "epoch_end"
	// EvReport records a clique source transmitting Attrs/Values to the
	// sink — the minimal set that pulls predictions back inside ε (§3.2).
	EvReport EventType = "report"
	// EvSuppress records the attributes a clique did NOT transmit because
	// the replicated model already predicted them within ε — the savings
	// the paper's Figs 9/10 plot.
	EvSuppress EventType = "suppress"
	// EvPull records a BBQ-style pull engine acquiring one reading on
	// demand (attribute in Node, reading in Values).
	EvPull EventType = "pull_acquire"
	// EvNodeFailure records a simulated node exhausting its battery.
	EvNodeFailure EventType = "node_failure"
	// EvResync records a full-value heartbeat re-synchronising the
	// replicated models after possible divergence (§6 message loss).
	EvResync EventType = "model_resync"
)

// Event is one structured protocol event. Clique and Node are -1 when not
// applicable so that index 0 stays unambiguous.
type Event struct {
	Type   EventType `json:"type"`
	Step   int64     `json:"step"`
	Clique int       `json:"clique"`
	Node   int       `json:"node"`
	Attrs  []int     `json:"attrs,omitempty"`
	Values []float64 `json:"values,omitempty"`
	N      int       `json:"n,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Tracer serialises protocol events as JSON Lines. A nil *Tracer is the
// "tracing off" mode: Emit returns immediately. Emit is safe for
// concurrent use.
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	err    error
	events int64
}

// NewTracer wraps the writer (typically an *os.File) in a buffered JSONL
// encoder. Call Flush (or Close the underlying file after Flush) when done.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit appends one event. The first encoding error sticks and is reported
// by Flush; later events are dropped so a broken sink cannot stall the
// protocol.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(e); err != nil {
		t.err = fmt.Errorf("obs: trace emit: %w", err)
		return
	}
	t.events++
}

// Events returns how many events were successfully emitted.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Flush drains the buffer and returns the first error seen (emit or
// flush). Safe on nil.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = fmt.Errorf("obs: trace flush: %w", err)
	}
	return t.err
}

// ReadEvents decodes a JSONL stream written by a Tracer — the replay side
// of protocol tracing.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: reading trace event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
