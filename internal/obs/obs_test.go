package obs_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ken/internal/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter=%d, want 5", got)
	}
	if again := reg.Counter("c"); again != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := reg.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge=%v, want 1.5", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h")
	for _, v := range []float64{1, 2, 4} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 7 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("snapshot=%+v, want count 3 sum 7 min 1 max 4", s)
	}
	if s.P50 != 2 || s.P90 != 4 || s.P95 != 4 || s.P99 != 4 {
		t.Fatalf("quantiles p50=%v p90=%v p95=%v p99=%v, want 2/4/4/4", s.P50, s.P90, s.P95, s.P99)
	}
}

// TestHistogramZeroMin checks the min/max sentinel encoding: an observed
// value of exactly 0.0 must be reported as the minimum, not confused with
// the "no observation yet" state.
func TestHistogramZeroMin(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h")
	h.Observe(0)
	h.Observe(5)
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 5 || s.Count != 2 {
		t.Fatalf("snapshot=%+v, want min 0 max 5 count 2", s)
	}
}

func TestEmptyHistogramSnapshotIsZero(t *testing.T) {
	reg := obs.NewRegistry()
	if s := reg.Histogram("h").Snapshot(); s != (obs.HistSnapshot{}) {
		t.Fatalf("empty snapshot=%+v, want zero", s)
	}
	var nilHist *obs.Histogram
	if s := nilHist.Snapshot(); s != (obs.HistSnapshot{}) {
		t.Fatalf("nil snapshot=%+v, want zero", s)
	}
}

// TestHistogramSingleObservation pins the quantile edge case every
// percentile of a one-sample distribution is that sample.
func TestHistogramSingleObservation(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h")
	h.Observe(3.5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("snapshot=%+v, want count 1 and min=max=sum=3.5", s)
	}
	if s.P50 != 3.5 || s.P90 != 3.5 || s.P95 != 3.5 || s.P99 != 3.5 {
		t.Fatalf("quantiles %v/%v/%v/%v, want all 3.5", s.P50, s.P90, s.P95, s.P99)
	}
}

// TestHistogramAllEqual pins the degenerate distribution: with every
// observation identical the quantiles must collapse onto that value, not
// interpolate across the containing bucket.
func TestHistogramAllEqual(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h")
	for i := 0; i < 100; i++ {
		h.Observe(7)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 700 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("snapshot=%+v, want count 100 sum 700 min=max=7", s)
	}
	if s.P50 != 7 || s.P90 != 7 || s.P95 != 7 || s.P99 != 7 {
		t.Fatalf("quantiles %v/%v/%v/%v, want all 7", s.P50, s.P90, s.P95, s.P99)
	}
}

func TestTimerRecordsSeconds(t *testing.T) {
	reg := obs.NewRegistry()
	tm := reg.Timer("t")
	tm.Observe(250 * time.Millisecond)
	tm.Observe(750 * time.Millisecond)
	s := tm.Snapshot()
	if s.Count != 2 || s.Sum != 1.0 {
		t.Fatalf("timer snapshot=%+v, want count 2 sum 1.0", s)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x")
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run with -race this is the concurrency-safety proof, and the
// final values double as a linearizability check (all updates commute).
func TestConcurrentUpdates(t *testing.T) {
	reg := obs.NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c") // concurrent lookup too
			g := reg.Gauge("g")
			h := reg.Histogram("h")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(1 + i%4))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter=%d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("g").Value(); got != workers*perWorker*0.5 {
		t.Errorf("gauge=%v, want %v", got, workers*perWorker*0.5)
	}
	s := reg.Histogram("h").Snapshot()
	if s.Count != workers*perWorker || s.Min != 1 || s.Max != 4 {
		t.Errorf("histogram snapshot=%+v, want count %d min 1 max 4", s, workers*perWorker)
	}
}

// TestSnapshotDeterminism applies the same observation multiset to two
// registries — one sequentially, one from racing goroutines — and requires
// bit-identical rendered output. This is the property that makes golden
// tests and diffable /metrics scrapes possible: bucket counts, sums over
// the same values, and min/max are all order-independent.
func TestSnapshotDeterminism(t *testing.T) {
	values := make([]float64, 400)
	for i := range values {
		values[i] = float64(i%7) + 0.25
	}

	sequential := obs.NewRegistry()
	for _, v := range values {
		sequential.Counter("c").Inc()
		sequential.Histogram("h").Observe(v)
	}

	racing := obs.NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; i < len(values); i += 4 {
				racing.Counter("c").Inc()
				racing.Histogram("h").Observe(values[i])
			}
		}(w)
	}
	wg.Wait()

	var a, b bytes.Buffer
	if err := obs.WritePrometheus(&a, sequential.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePrometheus(&b, racing.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshots differ:\nsequential:\n%s\nracing:\n%s", a.String(), b.String())
	}
}

func TestNilObserverAccessors(t *testing.T) {
	var ob *obs.Observer
	if ob.Registry() != nil || ob.Tracer() != nil {
		t.Fatal("nil observer handed out non-nil sinks")
	}
	ob = &obs.Observer{}
	if ob.Registry() != nil || ob.Tracer() != nil {
		t.Fatal("empty observer handed out non-nil sinks")
	}
}

// TestNilFastPathAllocatesNothing is the acceptance-criterion proof that
// instrumentation with no sink attached is free: every handle from a nil
// registry is nil, and calling the full metric surface plus a nil tracer
// allocates zero bytes.
func TestNilFastPathAllocatesNothing(t *testing.T) {
	var reg *obs.Registry
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	tm := reg.Timer("t")
	var tr *obs.Tracer
	ev := obs.Event{Type: obs.EvReport, Step: 1, Clique: -1, Node: -1}

	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(3)
		tm.Observe(time.Millisecond)
		tm.Start()()
		tr.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("nil fast path allocates %v bytes/op, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil handles accumulated state")
	}
}

func BenchmarkNilFastPath(b *testing.B) {
	var reg *obs.Registry
	c := reg.Counter("c")
	h := reg.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i))
	}
}

func BenchmarkLiveCounter(b *testing.B) {
	c := obs.NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkLiveHistogram(b *testing.B) {
	h := obs.NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

// TestTimerStartRecordsElapsed covers the Start/stop pair engine cells
// time themselves with: one observation lands, and it measures at least
// the slept interval.
func TestTimerStartRecordsElapsed(t *testing.T) {
	reg := obs.NewRegistry()
	tm := reg.Timer("t")
	stop := tm.Start()
	time.Sleep(2 * time.Millisecond)
	stop()
	s := tm.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.Sum < 0.002 {
		t.Fatalf("sum = %v s, want >= 2ms", s.Sum)
	}
	var nilTimer *obs.Timer
	nilTimer.Start()() // must not panic and must not record anywhere
}
