package obs_test

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"ken/internal/obs"
)

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	in := []obs.Event{
		{Type: obs.EvEpochStart, Step: 0, Clique: -1, Node: -1, Detail: "DjC2"},
		{Type: obs.EvReport, Step: 0, Clique: 1, Node: 3, Attrs: []int{2, 3}, Values: []float64{19.5, 20.25}},
		{Type: obs.EvSuppress, Step: 0, Clique: 0, Node: 0, Attrs: []int{0, 1}},
		{Type: obs.EvEpochEnd, Step: 0, Clique: -1, Node: -1, N: 2},
	}
	for _, e := range in {
		tr.Emit(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Events(); got != int64(len(in)) {
		t.Fatalf("Events()=%d, want %d", got, len(in))
	}
	// One schema-header line precedes the events.
	if lines := strings.Count(buf.String(), "\n"); lines != len(in)+1 {
		t.Fatalf("wrote %d JSONL lines, want %d (events + header)", lines, len(in)+1)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], `"schema"`) {
		t.Fatalf("first line is not a schema header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}

	out, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Type != in[i].Type || out[i].Step != in[i].Step ||
			out[i].Clique != in[i].Clique || out[i].Node != in[i].Node ||
			out[i].N != in[i].N || out[i].Detail != in[i].Detail ||
			len(out[i].Attrs) != len(in[i].Attrs) || len(out[i].Values) != len(in[i].Values) {
			t.Errorf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

// TestTracerConcurrentEmit hammers one tracer core from several scoped
// views at once (run with -race): every JSONL line must stay intact — no
// interleaving, no truncation — and Events() must equal the decoded line
// count.
func TestTracerConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := tr.WithScope(strings.Repeat("w", w+1)) // scoped views share the core
			for i := 0; i < perWorker; i++ {
				sp := view.StartEpoch(obs.Event{Step: int64(i), Clique: -1, Node: w})
				sp.EndEpoch(obs.Event{Step: int64(i), Clique: -1, Node: w})
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	const want = workers * perWorker * 2 // epoch_start + epoch_end per iteration
	if got := tr.Events(); got != int64(want) {
		t.Fatalf("Events()=%d, want %d", got, want)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != want+1 {
		t.Fatalf("wrote %d JSONL lines, want %d (events + header)", lines, want+1)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != want {
		t.Fatalf("read %d events, want %d", len(events), want)
	}
	// Every event must carry its epoch linkage intact.
	for _, e := range events {
		if e.Epoch == 0 || e.Scope == "" {
			t.Fatalf("event lost span or scope under concurrency: %+v", e)
		}
	}
}

// TestReadEventsSchemaGate checks both sides of the version gate: a trace
// from an unknown schema is rejected with a clear error, and a headerless
// legacy trace is still accepted.
func TestReadEventsSchemaGate(t *testing.T) {
	_, err := obs.ReadEvents(strings.NewReader(`{"kind":"ken-trace","schema":99}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("unknown schema not rejected clearly: %v", err)
	}
	events, err := obs.ReadEvents(strings.NewReader(`{"type":"report","step":3,"clique":0,"node":1}` + "\n"))
	if err != nil {
		t.Fatalf("legacy headerless trace rejected: %v", err)
	}
	if len(events) != 1 || events[0].Type != obs.EvReport || events[0].Step != 3 {
		t.Fatalf("legacy trace misread: %+v", events)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink broken") }

// TestTracerStickyError checks that a broken sink reports its error on
// Flush and stops counting events instead of stalling the protocol.
func TestTracerStickyError(t *testing.T) {
	tr := obs.NewTracer(failWriter{})
	tr.Emit(obs.Event{Type: obs.EvResync, Clique: -1, Node: -1})
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush on broken sink returned nil")
	}
	before := tr.Events()
	tr.Emit(obs.Event{Type: obs.EvResync, Clique: -1, Node: -1})
	if got := tr.Events(); got != before {
		t.Fatalf("events counted after sticky error: %d -> %d", before, got)
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	_, err := obs.ReadEvents(strings.NewReader("{\"type\":\"report\"}\nnot json\n"))
	if err == nil {
		t.Fatal("ReadEvents accepted malformed JSONL")
	}
}
