package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
)

// LogFlags is the shared logging configuration of the cmd binaries.
// Register it on a FlagSet with Register, then call Setup after
// flag.Parse.
type LogFlags struct {
	Level string
	JSON  bool
}

// Register installs the -log-level and -log-json flags.
func (l *LogFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&l.Level, "log-level", "info", "log level: debug, info, warn or error")
	fs.BoolVar(&l.JSON, "log-json", false, "emit structured JSON logs instead of text")
}

// Setup builds the logger on w (os.Stderr when nil), installs it as the
// slog default, and returns it.
func (l LogFlags) Setup(w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	var level slog.Level
	switch l.Level {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", l.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if l.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger, nil
}
