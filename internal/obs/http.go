package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges map directly; histograms are
// exported as summaries (quantile series plus _sum and _count), which is
// what the bucketless quantile snapshot corresponds to. Every metric gets
// a # HELP line — the string set via Registry.Describe, defaulting to the
// metric name so scrapers always see a well-formed pair. Output is sorted
// by metric name, so identical registries render identical bytes.
func WritePrometheus(w io.Writer, s Snapshot) error {
	help := func(name string) string {
		if h, ok := s.Help[name]; ok && h != "" {
			return h
		}
		return name
	}
	for _, name := range s.names() {
		if v, ok := s.Counters[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help(name), name, name, v); err != nil {
				return err
			}
			continue
		}
		if v, ok := s.Gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help(name), name, name, v); err != nil {
				return err
			}
			continue
		}
		if h, ok := s.Histograms[name]; ok {
			_, err := fmt.Fprintf(w,
				"# HELP %s %s\n# TYPE %s summary\n%s{quantile=\"0.5\"} %v\n%s{quantile=\"0.9\"} %v\n%s{quantile=\"0.95\"} %v\n%s{quantile=\"0.99\"} %v\n%s_sum %v\n%s_count %d\n",
				name, help(name), name, name, h.P50, name, h.P90, name, h.P95, name, h.P99, name, h.Sum, name, h.Count)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteExpvar renders the snapshot as a flat JSON object in the style of
// expvar's /debug/vars: counters and gauges map name → number, histograms
// map name → their snapshot object. Keys are emitted sorted (encoding/json
// sorts map keys), so output is deterministic.
func WriteExpvar(w io.Writer, s Snapshot) error {
	flat := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n, v := range s.Counters {
		flat[n] = v
	}
	for n, v := range s.Gauges {
		flat[n] = v
	}
	for n, h := range s.Histograms {
		flat[n] = h
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}

// Handler serves the registry over HTTP:
//
//	/metrics        Prometheus text format
//	/debug/vars     expvar-compatible JSON
//	/debug/pprof/   the standard runtime profiles (CPU, heap, goroutine, …)
//
// pprof is mounted explicitly rather than via the net/http/pprof side
// effect on http.DefaultServeMux, so the profiling surface exists only on
// servers that opt in with -obs-addr.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteExpvar(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "ken observability endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts the observability endpoint on addr in a background
// goroutine and returns the server (for Shutdown/Close) and the bound
// address — useful with ":0" in tests.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	//lint:ignore goleak the returned *http.Server is the lifecycle: srv.Shutdown/Close ends Serve and the goroutine exits
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
