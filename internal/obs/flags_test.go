package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"ken/internal/tracestore"
)

// setupWith runs Setup with the given -trace-out, returning the observer
// and cleanup.
func setupWith(t *testing.T, traceOut string, extra ...string) (*Observer, func()) {
	t.Helper()
	var c CmdFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	args := append([]string{"-trace-out", traceOut}, extra...)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	ob, cleanup, err := c.Setup()
	if err != nil {
		t.Fatal(err)
	}
	return ob, cleanup
}

func TestSetupFlatFileTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	ob, cleanup := setupWith(t, path)
	ob.Trace.Emit(Event{Type: EvReport, Clique: -1, Node: 1, Scope: "s"})
	cleanup()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EvReport {
		t.Fatalf("read %d events, want the 1 emitted", len(evs))
	}
}

func TestSetupSegmentedTraceByTrailingSlash(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace") + "/"
	ob, cleanup := setupWith(t, dir, "-trace-segment-events", "3")
	for i := 0; i < 10; i++ {
		ob.Trace.Emit(Event{Type: EvReport, Step: int64(i), Clique: -1, Node: 1, Scope: "s"})
	}
	cleanup()
	info, err := tracestore.VerifyChain(dir)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if info.Events != 10 || info.Segments != 4 {
		t.Fatalf("chain info = %+v, want 10 events over 4 segments", info)
	}
}

func TestSetupSegmentedTraceByExistingDir(t *testing.T) {
	dir := t.TempDir() // exists, no trailing slash
	ob, cleanup := setupWith(t, dir)
	ob.Trace.Emit(Event{Type: EvReport, Clique: -1, Node: 1, Scope: "s"})
	cleanup()
	if _, err := tracestore.VerifyChain(dir); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

// TestSignalSealsSegmentedTrace delivers a real SIGINT to the process
// and asserts the open segment gets flushed and sealed — the "interrupted
// runs leave auditable traces" contract. The handler does not exit on the
// first signal, so the test keeps running.
func TestSignalSealsSegmentedTrace(t *testing.T) {
	dir := t.TempDir()
	ob, cleanup := setupWith(t, dir)
	defer cleanup()
	for i := 0; i < 5; i++ {
		ob.Trace.Emit(Event{Type: EvReport, Step: int64(i), Clique: -1, Node: 1, Scope: "s"})
	}
	// Nothing sealed yet: the chain must fail before the signal.
	if _, err := tracestore.VerifyChain(dir); err == nil {
		t.Fatal("unsealed store passed verification before signal")
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := tracestore.VerifyChain(dir)
		if err == nil {
			if info.Events != 5 {
				t.Fatalf("sealed store holds %d events, want 5", info.Events)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("store still unverifiable 5s after SIGINT: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSignalFlushesFlatTrace is the same contract for the flat-file
// tracer: after SIGINT the events must be on disk even though the
// process keeps running.
func TestSignalFlushesFlatTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	ob, cleanup := setupWith(t, path)
	defer cleanup()
	ob.Trace.Emit(Event{Type: EvReport, Clique: -1, Node: 1, Scope: "s"})
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		evs, err := ReadEvents(f)
		f.Close()
		if err == nil && len(evs) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace still unflushed 5s after SIGINT (events=%d err=%v)", len(evs), err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSegmentedTraceResumesAfterSignalSeal: events emitted after a
// signal-triggered seal land in a successor segment and the final chain
// still verifies end to end.
func TestSegmentedTraceResumesAfterSignalSeal(t *testing.T) {
	dir := t.TempDir()
	ob, cleanup := setupWith(t, dir)
	ob.Trace.Emit(Event{Type: EvReport, Step: 1, Clique: -1, Node: 1, Scope: "s"})
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tracestore.VerifyChain(dir); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store not sealed after SIGINT")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ob.Trace.Emit(Event{Type: EvReport, Step: 2, Clique: -1, Node: 1, Scope: "s"})
	cleanup()
	info, err := tracestore.VerifyChain(dir)
	if err != nil {
		t.Fatalf("VerifyChain after resume: %v", err)
	}
	if info.Segments != 2 || info.Events != 2 {
		t.Fatalf("chain info = %+v, want 2 segments / 2 events", info)
	}
}

func TestTracerSinkMatchesFlatEncoding(t *testing.T) {
	dir := t.TempDir()
	w, err := tracestore.Create(dir, tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracerSink(w)
	scoped := tr.WithScope("cell")
	sp := scoped.StartEpoch(Event{Step: 3, Clique: 0, Node: -1})
	sp.Emit(Event{Type: EvReport, Step: 3, Clique: 0, Node: 2, Attrs: []int{1}, Values: []float64{4.5}})
	sp.EndEpoch(Event{Step: 3, Clique: 0, Node: -1, N: 1})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := tracestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := st.Scan(func(line []byte) error {
		return StreamEvents(bytes.NewReader(line), func(e Event) error {
			got = append(got, e)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d events, want 3", len(got))
	}
	for i, e := range got {
		if e.Scope != "cell" {
			t.Fatalf("event %d lost its scope: %+v", i, e)
		}
	}
	if got[0].Type != EvEpochStart || got[1].Type != EvReport || got[2].Type != EvEpochEnd {
		t.Fatalf("event order/type wrong: %v %v %v", got[0].Type, got[1].Type, got[2].Type)
	}
	if got[1].Epoch != got[0].Span || got[1].Parent != 0 && got[1].Parent != got[0].Span {
		t.Fatalf("span context not preserved: %+v", got[1])
	}
	if tr.Events() != 3 {
		t.Fatalf("Events() = %d, want 3", tr.Events())
	}
}
