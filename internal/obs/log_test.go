package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"

	"ken/internal/obs"
)

// keepDefaultLogger restores the process-wide slog default after a test
// that calls Setup (which installs its logger globally).
func keepDefaultLogger(t *testing.T) {
	t.Helper()
	prev := slog.Default()
	t.Cleanup(func() { slog.SetDefault(prev) })
}

func TestLogFlagsRegisterAndParse(t *testing.T) {
	var lf obs.LogFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	lf.Register(fs)
	if err := fs.Parse([]string{"-log-level", "warn", "-log-json"}); err != nil {
		t.Fatal(err)
	}
	if lf.Level != "warn" || !lf.JSON {
		t.Fatalf("parsed %+v, want level warn, JSON true", lf)
	}
}

func TestLogSetupLevelFiltering(t *testing.T) {
	keepDefaultLogger(t)
	var buf bytes.Buffer
	logger, err := obs.LogFlags{Level: "warn"}.Setup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hidden")
	logger.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %q", out)
	}
	if !strings.Contains(out, "visible") {
		t.Errorf("warn line missing: %q", out)
	}
}

func TestLogSetupJSONHandler(t *testing.T) {
	keepDefaultLogger(t)
	var buf bytes.Buffer
	logger, err := obs.LogFlags{Level: "info", JSON: true}.Setup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("event", "epoch", 7)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "event" || rec["epoch"] != float64(7) {
		t.Errorf("record=%v", rec)
	}
}

func TestLogSetupInstallsDefault(t *testing.T) {
	keepDefaultLogger(t)
	var buf bytes.Buffer
	if _, err := (obs.LogFlags{Level: "info"}).Setup(&buf); err != nil {
		t.Fatal(err)
	}
	slog.Info("via default")
	if !strings.Contains(buf.String(), "via default") {
		t.Errorf("slog default not installed: %q", buf.String())
	}
}

func TestLogSetupUnknownLevel(t *testing.T) {
	if _, err := (obs.LogFlags{Level: "loud"}).Setup(&bytes.Buffer{}); err == nil {
		t.Fatal("unknown level accepted")
	}
}
