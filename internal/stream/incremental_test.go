package stream

import (
	"testing"

	"ken/internal/model"
)

// scratchStreamModel hides model.IncrementalConditioner so the greedy
// report search runs on the from-scratch MeanGiven reference path.
type scratchStreamModel struct{ model.Model }

func (s scratchStreamModel) Clone() model.Model { return scratchStreamModel{s.Model.Clone()} }

// TestStreamLockStepScratch pins the package invariant advertised in the
// package doc: with the source's greedy search running through the cached
// incremental conditioning evaluator, every frame carries exactly the
// report set the from-scratch reference search would have chosen, and the
// sink replica's answers stay bitwise identical to an independent
// simulation of the protocol on a model with the evaluator hidden.
func TestStreamLockStepScratch(t *testing.T) {
	cfg, rows := testConfig(t)
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := src.Resolution()

	// Rebuild the per-clique models exactly as build does (FitLinearGaussian
	// is deterministic), but wrapped so only the Model interface is visible.
	type simClique struct {
		members []int
		mdl     model.Model
		eps     []float64 // effective (ε − resolution/2), as on the wire
	}
	n := len(cfg.Train[0])
	var sim []simClique
	for _, c := range cfg.Partition.Cliques {
		cols := make([][]float64, len(cfg.Train))
		for ti, row := range cfg.Train {
			r := make([]float64, len(c.Members))
			for i, g := range c.Members {
				r[i] = row[g]
			}
			cols[ti] = r
		}
		m, err := model.FitLinearGaussian(cols, cfg.FitCfg)
		if err != nil {
			t.Fatal(err)
		}
		eff := make([]float64, len(c.Members))
		for i, g := range c.Members {
			eff[i] = cfg.Eps[g] - res/2
		}
		sim = append(sim, simClique{
			members: append([]int(nil), c.Members...),
			mdl:     scratchStreamModel{m.Clone()},
			eps:     eff,
		})
	}

	est := make([]float64, n)
	var st ApplyStats
	totalReported := 0
	for step, truth := range rows[:120] {
		frame, err := src.Collect(truth)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.ApplyObserved(frame, &st); err != nil {
			t.Fatal(err)
		}
		frameObs := make(map[int]float64, len(frame.Attrs))
		for k, a := range frame.Attrs {
			frameObs[a] = frame.Values[k]
		}
		simReported := 0
		for ci := range sim {
			c := &sim[ci]
			c.mdl.Step()
			local := make([]float64, len(c.members))
			for i, g := range c.members {
				local[i] = truth[g]
			}
			obs, err := model.ChooseReportGreedy(c.mdl, local, c.eps)
			if err != nil {
				t.Fatal(err)
			}
			quant := make(map[int]float64, len(obs))
			for i, v := range obs {
				qv := quantize(v, res)
				quant[i] = qv
				fv, ok := frameObs[c.members[i]]
				if !ok || fv != qv {
					t.Fatalf("step %d: scratch search reported attr %d = %v, frame carried %v (present %v)",
						step, c.members[i], qv, fv, ok)
				}
			}
			simReported += len(quant)
			if len(quant) > 0 {
				if err := c.mdl.Condition(quant); err != nil {
					t.Fatal(err)
				}
			}
			mean := c.mdl.Mean()
			for i, g := range c.members {
				est[g] = mean[i]
			}
		}
		if simReported != len(frame.Attrs) {
			t.Fatalf("step %d: frame carried %d values, scratch search chose %d", step, len(frame.Attrs), simReported)
		}
		got := rep.Estimates()
		for g := range got {
			if got[g] != est[g] {
				t.Fatalf("step %d: sink answer for attr %d is %v, scratch replica says %v", step, g, got[g], est[g])
			}
		}
		totalReported += len(frame.Attrs)
	}
	if totalReported == 0 {
		t.Fatal("no value reported across the replay — the search was never exercised; tighten eps")
	}
}
