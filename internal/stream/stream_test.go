package stream

import (
	"bytes"
	"io"
	"math"
	"net"
	"testing"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/trace"
	"ken/internal/wire"
)

// testConfig builds a shared endpoint config over garden data and returns
// it with the test rows.
func testConfig(t *testing.T) (Config, [][]float64) {
	t.Helper()
	tr, err := trace.GenerateGarden(71, 350)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Deployment.N()
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	p := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
		} else {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	cfg := Config{
		Partition: p,
		Train:     rows[:100],
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
	}
	return cfg, rows[100:]
}

func TestConfigValidation(t *testing.T) {
	cfg, _ := testConfig(t)
	bad := cfg
	bad.Partition = nil
	if _, err := NewSource(bad); err == nil {
		t.Fatal("expected error for missing partition")
	}
	bad = cfg
	bad.Train = nil
	if _, err := NewReplica(bad); err == nil {
		t.Fatal("expected error for missing training data")
	}
	bad = cfg
	bad.Eps = cfg.Eps[:2]
	if _, err := NewSource(bad); err == nil {
		t.Fatal("expected error for eps mismatch")
	}
	bad = cfg
	bad.Resolution = 2 // coarser than ε
	if _, err := NewSource(bad); err == nil {
		t.Fatal("expected error for too-coarse resolution")
	}
}

func TestEndToEndGuaranteeOverBuffer(t *testing.T) {
	cfg, test := testConfig(t)
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Resolution() != sink.Resolution() {
		t.Fatal("endpoints negotiated different resolutions")
	}
	var pipe bytes.Buffer
	sent := 0
	for step, row := range test {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		sent += len(f.Attrs)
		if err := WriteFrame(&pipe, f, src.Resolution()); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&pipe, sink.Resolution())
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Apply(got); err != nil {
			t.Fatal(err)
		}
		est := sink.Estimates()
		for i := range row {
			if d := math.Abs(est[i] - row[i]); d > 0.5+1e-9 {
				t.Fatalf("step %d attr %d: estimate %v vs truth %v exceeds ε", step, i, est[i], row[i])
			}
		}
	}
	if frac := float64(sent) / float64(len(test)*11); frac >= 1 || frac <= 0.05 {
		t.Fatalf("fraction sent %v out of plausible range", frac)
	}
	if sink.Steps() != len(test) {
		t.Fatalf("sink applied %d frames, want %d", sink.Steps(), len(test))
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	cfg, test := testConfig(t)
	test = test[:120]
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serveErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		defer conn.Close()
		serveErr <- sink.Serve(conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Pump(conn, test); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if sink.Steps() != len(test) {
		t.Fatalf("sink applied %d frames, want %d", sink.Steps(), len(test))
	}
	est := sink.Estimates()
	last := test[len(test)-1]
	for i := range last {
		if d := math.Abs(est[i] - last[i]); d > 0.5+1e-9 {
			t.Fatalf("final estimate %d off by %v", i, d)
		}
	}
}

func TestHeartbeatFrames(t *testing.T) {
	cfg, test := testConfig(t)
	cfg.HeartbeatEvery = 10
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	test = test[:50]
	for _, row := range test {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	if hb := sink.Heartbeats(); hb != 5 {
		t.Fatalf("heartbeats = %d, want 5", hb)
	}
}

func TestApplyRejectsOutOfOrderFrames(t *testing.T) {
	cfg, test := testConfig(t)
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := src.Collect(test[0])
	if err != nil {
		t.Fatal(err)
	}
	f1, err := src.Collect(test[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Apply(f1); err == nil {
		t.Fatal("expected error for skipped frame")
	}
	if err := sink.Apply(f0); err != nil {
		t.Fatal(err)
	}
	bad := wire.Frame{Step: 1, Attrs: []int{99}, Values: []float64{1}}
	if err := sink.Apply(bad); err == nil {
		t.Fatal("expected error for out-of-range attribute")
	}
}

func TestReadFrameErrors(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil), 0.01); err != io.EOF {
		t.Fatalf("empty reader: got %v, want io.EOF", err)
	}
	// Partial header.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), 0.01); err == nil || err == io.EOF {
		t.Fatalf("partial header: got %v", err)
	}
	// Oversized frame.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf, 0.01); err == nil {
		t.Fatal("expected error for oversized frame")
	}
	// Truncated body.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 2})
	if _, err := ReadFrame(&buf, 0.01); err == nil || err == io.EOF {
		t.Fatal("expected error for truncated body")
	}
}

func TestSourceCollectValidation(t *testing.T) {
	cfg, _ := testConfig(t)
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Collect([]float64{1, 2}); err == nil {
		t.Fatal("expected error for truth dim mismatch")
	}
}

// TestReplicaConcurrentEstimates hammers Estimates from readers while
// frames apply — the sink serves live queries during ingestion, so this
// must be race-free (run under -race).
func TestReplicaConcurrentEstimates(t *testing.T) {
	cfg, test := testConfig(t)
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				est := sink.Estimates()
				if len(est) != 11 {
					t.Errorf("estimates dim %d", len(est))
					return
				}
				_ = sink.Steps()
				_ = sink.Heartbeats()
			}
		}
	}()
	for _, row := range test[:150] {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
}
