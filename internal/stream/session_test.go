package stream

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"ken/internal/wire"
)

// pipePair runs the sink side in a goroutine and the client side inline.
func pipePair(t *testing.T, sink func(net.Conn)) net.Conn {
	t.Helper()
	client, srv := net.Pipe()
	t.Cleanup(func() { client.Close(); srv.Close() })
	go sink(srv)
	return client
}

func TestHandshakeAccept(t *testing.T) {
	spec := []byte{1, 2, 3}
	client := pipePair(t, func(conn net.Conn) {
		h, err := ReadHello(conn)
		if err != nil {
			t.Errorf("sink ReadHello: %v", err)
			return
		}
		if h.Version != wire.SessionVersion || h.Tenant != "a" || !bytes.Equal(h.Spec, spec) {
			t.Errorf("sink got hello %+v", h)
		}
		// Version left 0: WriteAccept fills in this build's version.
		if err := WriteAccept(conn, wire.Accept{Tenant: "a"}); err != nil {
			t.Errorf("sink WriteAccept: %v", err)
		}
	})
	acc, err := Handshake(client, wire.Hello{Tenant: "a", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Tenant != "a" || acc.Version != wire.SessionVersion {
		t.Fatalf("accept %+v", acc)
	}
}

func TestHandshakeReject(t *testing.T) {
	client := pipePair(t, func(conn net.Conn) {
		if _, err := ReadHello(conn); err != nil {
			t.Errorf("sink ReadHello: %v", err)
			return
		}
		_ = WriteReject(conn, wire.Reject{Code: wire.RejectSpecMismatch, Reason: "pinned to garden/seed=1"})
	})
	_, err := Handshake(client, wire.Hello{Tenant: "b"})
	if !errors.Is(err, wire.ErrSpecRejected) {
		t.Fatalf("reject surfaced as %v, want ErrSpecRejected", err)
	}
	if !strings.Contains(err.Error(), "pinned to garden/seed=1") {
		t.Fatalf("sink's reason lost: %v", err)
	}
}

func TestHandshakeVersionSkew(t *testing.T) {
	client := pipePair(t, func(conn net.Conn) {
		if _, err := ReadHello(conn); err != nil {
			return
		}
		_ = WriteAccept(conn, wire.Accept{Version: 99, Tenant: "c"})
	})
	_, err := Handshake(client, wire.Hello{Tenant: "c"})
	if !errors.Is(err, wire.ErrVersionMismatch) {
		t.Fatalf("skewed accept surfaced as %v, want ErrVersionMismatch", err)
	}
	// The error must name both sides' versions.
	if !strings.Contains(err.Error(), "v1") || !strings.Contains(err.Error(), "v99") {
		t.Fatalf("error %q does not name both versions", err)
	}
}

// TestHandshakeStaleSink: a pre-session sink echoes nothing the session
// parser understands; here it answers with a raw report frame and the
// client must call that a version mismatch, not corruption.
func TestHandshakeStaleSink(t *testing.T) {
	client := pipePair(t, func(conn net.Conn) {
		if _, err := ReadHello(conn); err != nil {
			return
		}
		f := wire.Frame{Step: 1, Attrs: []int{0}, Values: []float64{1}}
		_ = WriteFrame(conn, f, 0.01)
	})
	_, err := Handshake(client, wire.Hello{})
	if !errors.Is(err, wire.ErrVersionMismatch) {
		t.Fatalf("stale sink surfaced as %v, want ErrVersionMismatch", err)
	}
}

func TestHandshakeSinkClosed(t *testing.T) {
	client := pipePair(t, func(conn net.Conn) {
		if _, err := ReadHello(conn); err != nil {
			return
		}
		conn.Close()
	})
	_, err := Handshake(client, wire.Hello{})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("closed sink surfaced as %v, want ErrUnexpectedEOF", err)
	}
}

// TestReadHelloStalePeer: sink-side, a client that opens with a raw
// report frame is a stale binary — a typed version mismatch the daemon
// turns into a RejectVersion frame.
func TestReadHelloStalePeer(t *testing.T) {
	var buf bytes.Buffer
	f := wire.Frame{Step: 1, Attrs: []int{0}, Values: []float64{1}}
	if err := WriteFrame(&buf, f, 0.01); err != nil {
		t.Fatal(err)
	}
	_, err := ReadHello(&buf)
	if !errors.Is(err, wire.ErrVersionMismatch) {
		t.Fatalf("stale client surfaced as %v, want ErrVersionMismatch", err)
	}
}

// TestReadHelloWrongKind: an ACCEPT where a HELLO belongs is a protocol
// violation, named as such.
func TestReadHelloWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAccept(&buf, wire.Accept{Tenant: "x"}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadHello(&buf)
	if err == nil || !strings.Contains(err.Error(), "expected hello") {
		t.Fatalf("wrong-kind frame surfaced as %v", err)
	}
}
