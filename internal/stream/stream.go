// Package stream runs the Ken protocol between two real processes: a
// Source colocated with the sensor network and a sink Replica at the base
// station, exchanging compact wire frames over any io.Reader/io.Writer —
// in production a TCP connection, in tests a net.Pipe.
//
// This realises the paper's §6 observation that the replicated-model
// approach extends naturally to approximate caching and distributed
// streams: the sink answers continuously from its replica, and the source
// ships only the minimal frames needed to keep every answer within ε.
//
// Values travel quantized (wire.Frame); the Source conditions its own
// replica on the quantized values it sends, so both replicas stay in
// bit-exact lock-step, and it runs the protocol at ε − resolution/2 so the
// end-to-end guarantee remains ±ε.
//
// The source's greedy report search runs through the model's cached
// incremental conditioning evaluator when available (see
// model.IncrementalConditioner). The evaluator is read-only and exists
// only on the source side of the search; both replicas still mutate
// exclusively through Step and Condition on identical inputs, so the
// bit-exact lock-step invariant is untouched — TestStreamLockStepScratch
// pins this against a model with the evaluator hidden.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/obs"
	"ken/internal/wire"
)

// maxFrameBytes bounds a length-prefixed frame read (corruption guard).
const maxFrameBytes = 1 << 20

// Config assembles both endpoints; the two sides must be built with
// identical configurations (same training data, partition, bounds and
// resolution).
type Config struct {
	// Partition assigns attributes to cliques.
	Partition *cliques.Partition
	// Train is the shared training matrix.
	Train [][]float64
	// Eps are the per-attribute end-to-end error bounds.
	Eps []float64
	// FitCfg controls model learning.
	FitCfg model.FitConfig
	// Resolution is the wire quantisation step (default: min ε / 100).
	Resolution float64
	// HeartbeatEvery, when positive, makes the source transmit a
	// full-value heartbeat frame every so many steps (§6 robustness).
	HeartbeatEvery int
}

// endpoints share per-clique bookkeeping.
type cliqueState struct {
	members []int
	mdl     model.Model
	eps     []float64 // effective (ε − resolution/2)

	// mw is mdl's allocation-free mean writer (nil when unsupported);
	// local/meanBuf/obsScratch are per-clique step scratch, reused across
	// frames. Sources and replicas never share a cliqueState, and both run
	// their protocol loops serialized (the Replica under its mutex), so the
	// scratch needs no locking of its own.
	mw         model.MeanWriter
	local      []float64
	meanBuf    []float64
	obsScratch map[int]float64
}

// build fits the per-clique models once and validates the config.
func build(cfg Config) ([]cliqueState, float64, error) {
	if cfg.Partition == nil {
		return nil, 0, errors.New("stream: config needs a partition")
	}
	if len(cfg.Train) == 0 {
		return nil, 0, errors.New("stream: config needs training data")
	}
	n := len(cfg.Train[0])
	if len(cfg.Eps) != n {
		return nil, 0, fmt.Errorf("stream: eps dim %d, training dim %d", len(cfg.Eps), n)
	}
	if err := cfg.Partition.Validate(n); err != nil {
		return nil, 0, err
	}
	res := cfg.Resolution
	minEps := math.Inf(1)
	for i, e := range cfg.Eps {
		if e <= 0 {
			return nil, 0, fmt.Errorf("stream: non-positive epsilon %v for attribute %d", e, i)
		}
		minEps = math.Min(minEps, e)
	}
	if res <= 0 {
		res = minEps / 100
	}
	if res/2 >= minEps {
		return nil, 0, fmt.Errorf("stream: resolution %v too coarse for ε %v", res, minEps)
	}
	var states []cliqueState
	for _, c := range cfg.Partition.Cliques {
		cols := make([][]float64, len(cfg.Train))
		for t, row := range cfg.Train {
			r := make([]float64, len(c.Members))
			for i, g := range c.Members {
				r[i] = row[g]
			}
			cols[t] = r
		}
		mdl, err := model.FitLinearGaussian(cols, cfg.FitCfg)
		if err != nil {
			return nil, 0, fmt.Errorf("stream: fitting clique %v: %w", c.Members, err)
		}
		eps := make([]float64, len(c.Members))
		for i, g := range c.Members {
			eps[i] = cfg.Eps[g] - res/2
		}
		cl := mdl.Clone()
		mw, _ := cl.(model.MeanWriter)
		states = append(states, cliqueState{
			members:    append([]int(nil), c.Members...),
			mdl:        cl,
			eps:        eps,
			mw:         mw,
			local:      make([]float64, len(c.Members)),
			meanBuf:    make([]float64, len(c.Members)),
			obsScratch: make(map[int]float64, len(c.Members)),
		})
	}
	return states, res, nil
}

// Source is the sensor-network endpoint: it consumes ground-truth rows and
// emits wire frames.
type Source struct {
	cl      []cliqueState
	res     float64
	n       int
	step    uint64
	hbEvery int
	sinceHB int

	// Observability handles (nil and no-op until Instrument is called).
	tracer      *obs.Tracer
	mFrames     *obs.Counter // stream_frames_sent_total
	mValues     *obs.Counter // stream_values_sent_total
	mHeartbeats *obs.Counter // stream_heartbeats_sent_total
}

// Instrument attaches metrics and heartbeat-resync tracing to the source
// endpoint. A nil observer leaves it unobserved (the default).
func (s *Source) Instrument(ob *obs.Observer) {
	s.tracer = ob.Tracer()
	reg := ob.Registry()
	s.mFrames = reg.Counter("stream_frames_sent_total")
	s.mValues = reg.Counter("stream_values_sent_total")
	s.mHeartbeats = reg.Counter("stream_heartbeats_sent_total")
}

// NewSource builds the source endpoint.
func NewSource(cfg Config) (*Source, error) {
	cl, res, err := build(cfg)
	if err != nil {
		return nil, err
	}
	return &Source{cl: cl, res: res, n: len(cfg.Eps), hbEvery: cfg.HeartbeatEvery}, nil
}

// quantize snaps v onto the wire grid.
func quantize(v, res float64) float64 {
	return math.Round(v/res) * res
}

// Collect advances one sampling step: runs the source protocol on the
// fresh readings and returns the frame to transmit (possibly with zero
// reports — the frame itself carries the step so the sink's clock stays
// aligned even without data).
func (s *Source) Collect(truth []float64) (wire.Frame, error) {
	if len(truth) != s.n {
		return wire.Frame{}, fmt.Errorf("stream: truth dim %d, want %d", len(truth), s.n)
	}
	sp := s.tracer.StartEpoch(obs.Event{Step: int64(s.step), Clique: -1, Node: -1, Detail: "stream"})
	frame := wire.Frame{Step: s.step}
	s.sinceHB++
	heartbeat := s.hbEvery > 0 && s.sinceHB >= s.hbEvery
	if heartbeat {
		frame.Special = wire.KindHeartbeat
		s.sinceHB = 0
	}
	for ci := range s.cl {
		c := &s.cl[ci]
		c.mdl.Step()
		local := c.local
		for i, g := range c.members {
			local[i] = truth[g]
		}
		var obs map[int]float64
		if heartbeat {
			obs = make(map[int]float64, len(local))
			for i, v := range local {
				obs[i] = v
			}
		} else {
			// Fast path: a prediction already within every bound makes the
			// greedy search return the empty set — skip it (and its
			// allocations) outright. Suppressed steps then touch only the
			// reused clique scratch.
			if c.mw != nil && c.mw.MeanInto(c.meanBuf) == nil &&
				model.WithinBounds(c.meanBuf, local, c.eps) {
				continue
			}
			var err error
			obs, err = model.ChooseReportGreedy(c.mdl, local, c.eps)
			if err != nil {
				return wire.Frame{}, err
			}
		}
		if len(obs) == 0 {
			continue
		}
		// Quantize, transmit, and condition on exactly what was sent.
		quant := make(map[int]float64, len(obs))
		for i, v := range obs {
			qv := quantize(v, s.res)
			quant[i] = qv
			frame.Attrs = append(frame.Attrs, c.members[i])
			frame.Values = append(frame.Values, qv)
		}
		if err := c.mdl.Condition(quant); err != nil {
			return wire.Frame{}, err
		}
	}
	s.mFrames.Inc()
	s.mValues.Add(int64(len(frame.Attrs)))
	if sp.Active() {
		if len(frame.Attrs) > 0 {
			sp.Child().Emit(obs.Event{
				Type: obs.EvReport, Step: int64(s.step), Clique: -1, Node: -1,
				Attrs: frame.Attrs, Values: frame.Values,
				Payload: &obs.Payload{
					Observed: frame.Values, Chunk: int(s.step),
					Bytes: obs.WireBytesPerValue * len(frame.Attrs),
				},
			})
		}
		if heartbeat {
			sp.Emit(obs.Event{Type: obs.EvResync, Step: int64(s.step), Clique: -1, Node: -1})
		}
		sp.EndEpoch(obs.Event{Step: int64(s.step), Clique: -1, Node: -1, N: len(frame.Attrs),
			Payload: &obs.Payload{Bytes: obs.WireBytesPerValue * len(frame.Attrs)}})
	}
	if heartbeat {
		s.mHeartbeats.Inc()
	}
	s.step++
	return frame, nil
}

// Resolution returns the negotiated wire resolution.
func (s *Source) Resolution() float64 { return s.res }

// Replica is the base-station endpoint: it applies frames and serves
// estimates. Safe for concurrent Apply/Estimates.
type Replica struct {
	mu   sync.Mutex
	cl   []cliqueState
	res  float64
	n    int
	eps  []float64 // end-to-end per-attribute bounds (from the config)
	next uint64    // expected next frame step
	// Frames counts applied frames; Heartbeats counts heartbeat frames.
	frames, heartbeats int
	// byAttr is Apply's reused frame-index scratch, guarded by mu.
	byAttr map[int]float64

	// Observability handles (nil and no-op until Instrument is called).
	tracer      *obs.Tracer
	mFrames     *obs.Counter // stream_frames_applied_total
	mValues     *obs.Counter // stream_values_applied_total
	mHeartbeats *obs.Counter // stream_heartbeats_applied_total
	gStep       *obs.Gauge   // stream_replica_step
}

// Instrument attaches metrics and sink-apply tracing to the sink endpoint.
// A nil observer leaves it unobserved (the default).
func (r *Replica) Instrument(ob *obs.Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = ob.Tracer()
	reg := ob.Registry()
	r.mFrames = reg.Counter("stream_frames_applied_total")
	r.mValues = reg.Counter("stream_values_applied_total")
	r.mHeartbeats = reg.Counter("stream_heartbeats_applied_total")
	r.gStep = reg.Gauge("stream_replica_step")
}

// NewReplica builds the sink endpoint.
func NewReplica(cfg Config) (*Replica, error) {
	cl, res, err := build(cfg)
	if err != nil {
		return nil, err
	}
	return &Replica{cl: cl, res: res, n: len(cfg.Eps),
		eps:    append([]float64(nil), cfg.Eps...),
		byAttr: make(map[int]float64, len(cfg.Eps))}, nil
}

// Resolution returns the negotiated wire resolution.
func (r *Replica) Resolution() float64 { return r.res }

// ApplyStats reports what one frame did to the replica, measured against
// the pre-apply predictions — the raw material of the live ε audit
// (internal/slo). A reported value whose prediction was off by more than
// its end-to-end ε is a deviation: expected for report frames (a report
// exists because the source's lock-step prediction missed), suspicious
// for heartbeat values the protocol promises the replica already tracks.
type ApplyStats struct {
	// Step is the applied frame's protocol step.
	Step uint64
	// Values counts the reported values the frame carried.
	Values int
	// Heartbeat marks a full-value heartbeat frame.
	Heartbeat bool
	// Deviations counts reported values whose pre-apply prediction
	// missed the attribute's end-to-end ε.
	Deviations int
	// MaxDevEps is the largest |prediction − value| / ε over the frame's
	// reported values (0 when none, or when ε is unbounded).
	MaxDevEps float64
}

// Apply folds one frame into the replica. Frames must arrive in step
// order; a gap means lost frames and is an error (the transport below is
// reliable — for lossy transports see core.LossyKen and simnet).
//
// The frame is not retained: its slices are read synchronously (the trace
// event, too, is marshalled before Emit returns), so callers may reuse the
// frame's backing arrays for the next read (Serve does, via
// wire.DecodeInto). Steady-state empty frames apply without allocating.
//
//ken:hotpath the sink's per-frame apply loop
func (r *Replica) Apply(f wire.Frame) error {
	return r.ApplyObserved(f, nil)
}

// ApplyObserved is Apply plus pre-apply deviation measurement into st
// (skipped when st is nil). The measurement reads each clique's predicted
// mean for the step before the frame's values are conditioned in, so it
// sees exactly what the replica would have answered had the frame never
// arrived — the live analogue of kenaudit's ε-bound check. st is fully
// overwritten; the measurement reuses the cliques' mean scratch and
// allocates nothing.
//
//ken:hotpath the sink's per-frame apply loop (measured form)
func (r *Replica) ApplyObserved(f wire.Frame, st *ApplyStats) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st != nil {
		*st = ApplyStats{Step: f.Step, Values: len(f.Attrs), Heartbeat: f.Special == wire.KindHeartbeat}
	}
	if f.Step != r.next {
		return fmt.Errorf("stream: frame for step %d, expected %d", f.Step, r.next)
	}
	clear(r.byAttr)
	for i, a := range f.Attrs {
		if a < 0 || a >= r.n {
			return fmt.Errorf("stream: frame attribute %d out of range %d", a, r.n)
		}
		r.byAttr[a] = f.Values[i]
	}
	for ci := range r.cl {
		c := &r.cl[ci]
		c.mdl.Step()
		clear(c.obsScratch)
		if len(r.byAttr) > 0 {
			for i, g := range c.members {
				if v, ok := r.byAttr[g]; ok {
					c.obsScratch[i] = v
				}
			}
		}
		if st != nil && len(c.obsScratch) > 0 && c.mw != nil && c.mw.MeanInto(c.meanBuf) == nil {
			for i, g := range c.members {
				v, ok := c.obsScratch[i]
				if !ok {
					continue
				}
				eps := r.eps[g]
				if eps <= 0 {
					continue
				}
				dev := math.Abs(c.meanBuf[i]-v) / eps
				if dev > 1 {
					st.Deviations++
				}
				if dev > st.MaxDevEps {
					st.MaxDevEps = dev
				}
			}
		}
		if err := c.mdl.Condition(c.obsScratch); err != nil {
			return err
		}
	}
	r.next++
	r.frames++
	r.mFrames.Inc()
	r.mValues.Add(int64(len(f.Attrs)))
	r.gStep.Set(float64(f.Step))
	//lint:ignore hotalloc traced replicas marshal the apply event; the tracer handle is nil (a no-op) everywhere performance matters
	r.tracer.Emit(obs.Event{
		Type: obs.EvApply, Step: int64(f.Step), Clique: -1, Node: -1,
		Attrs: f.Attrs, Values: f.Values, N: len(f.Attrs),
	})
	if f.Special == wire.KindHeartbeat {
		r.heartbeats++
		r.mHeartbeats.Inc()
	}
	return nil
}

// Estimates returns the replica's current answer vector.
func (r *Replica) Estimates() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, r.n)
	for ci := range r.cl {
		c := &r.cl[ci]
		mean := c.mdl.Mean()
		for i, g := range c.members {
			out[g] = mean[i]
		}
	}
	return out
}

// Answer is a self-consistent snapshot of the replica's live SELECT *
// answer: the estimates and the ±ε contract they were collected under,
// tagged with the number of frames folded in. The slices are copies — the
// caller may keep them across further Apply calls.
type Answer struct {
	// Step counts the frames applied when the snapshot was taken.
	Step int `json:"step"`
	// Estimates is the per-attribute answer vector.
	Estimates []float64 `json:"estimates"`
	// Eps is the per-attribute end-to-end error bound.
	Eps []float64 `json:"eps"`
	// Heartbeats counts heartbeat frames among the applied ones.
	Heartbeats int `json:"heartbeats"`
}

// Answer atomically snapshots the live answer with its bounds — the unit
// a concurrent query API serves while frames keep applying.
func (r *Replica) Answer() Answer {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, r.n)
	for ci := range r.cl {
		c := &r.cl[ci]
		mean := c.mdl.Mean()
		for i, g := range c.members {
			out[g] = mean[i]
		}
	}
	return Answer{
		Step:       r.frames,
		Estimates:  out,
		Eps:        append([]float64(nil), r.eps...),
		Heartbeats: r.heartbeats,
	}
}

// Steps returns how many frames have been applied.
func (r *Replica) Steps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frames
}

// Heartbeats returns how many heartbeat frames arrived.
func (r *Replica) Heartbeats() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.heartbeats
}

// writeRaw length-prefixes and writes one encoded frame body.
func writeRaw(w io.Writer, buf []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("stream: write header: %w", err)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("stream: write frame: %w", err)
	}
	return nil
}

// readRaw reads one length-prefixed frame body. io.EOF at a frame boundary
// is returned as io.EOF; a partial frame is an unexpected-EOF error.
func readRaw(rd io.Reader) ([]byte, error) { return readRawInto(rd, nil) }

// readRawInto is readRaw reading into buf's backing array when its
// capacity suffices, allocating a larger one otherwise. The returned slice
// (resized to the frame) replaces buf for the next call.
func readRawInto(rd io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("stream: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrameBytes {
		return nil, fmt.Errorf("stream: frame of %d bytes exceeds limit", size)
	}
	if cap(buf) < int(size) {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(rd, buf); err != nil {
		return nil, fmt.Errorf("stream: read frame: %w", err)
	}
	return buf, nil
}

// WriteFrame length-prefixes and writes one encoded frame.
func WriteFrame(w io.Writer, f wire.Frame, res float64) error {
	buf, err := wire.Encode(f, res)
	if err != nil {
		return err
	}
	return writeRaw(w, buf)
}

// ReadFrame reads one length-prefixed frame. io.EOF at a frame boundary is
// returned as io.EOF; a partial frame is an unexpected-EOF error.
func ReadFrame(rd io.Reader, res float64) (wire.Frame, error) {
	f, _, err := ReadFrameBuf(rd, res, nil)
	return f, err
}

// ReadFrameBuf is ReadFrame with a caller-owned raw-body buffer: the frame
// body is read into buf's backing array when its capacity suffices, and the
// (possibly grown) buffer is returned for the next call. The decoded
// frame's Attrs/Values are freshly allocated, so the frame may be retained
// or queued while buf is reused for further reads.
func ReadFrameBuf(rd io.Reader, res float64, buf []byte) (wire.Frame, []byte, error) {
	body, err := readRawInto(rd, buf)
	if err != nil {
		if err == io.EOF {
			return wire.Frame{}, buf, io.EOF
		}
		return wire.Frame{}, buf, err
	}
	f, err := wire.Decode(body, res)
	if err != nil {
		return wire.Frame{}, body, err
	}
	return f, body, nil
}

// Serve applies frames from the reader until EOF or error. It returns nil
// on clean EOF. The loop owns a persistent frame and body buffer, decoding
// each frame in place (wire.DecodeInto) before the synchronous Apply — so a
// steady-state stream of suppressed (empty) frames serves without
// allocating per frame.
func (r *Replica) Serve(rd io.Reader) error {
	var f wire.Frame
	var body []byte
	for {
		var err error
		body, err = readRawInto(rd, body)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := wire.DecodeInto(&f, body, r.res); err != nil {
			return err
		}
		if err := r.Apply(f); err != nil {
			return err
		}
	}
}

// Pump runs the source over the rows, writing one frame per row.
func (s *Source) Pump(w io.Writer, rows [][]float64) error {
	for _, row := range rows {
		f, err := s.Collect(row)
		if err != nil {
			return err
		}
		if err := WriteFrame(w, f, s.res); err != nil {
			return err
		}
	}
	return nil
}
