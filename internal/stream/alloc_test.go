package stream

import (
	"testing"

	"ken/internal/alloctest"
	"ken/internal/wire"
)

// TestAllocBudgetStream pins the endpoints' steady state — suppressed
// source epochs and empty sink frames — at zero heap allocations per step
// (the committed budget table in docs/LINT.md). Bounds far wider than the
// signal make every step suppress deterministically.
func TestAllocBudgetStream(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	cfg, test := testConfig(t)
	for i := range cfg.Eps {
		cfg.Eps[i] = 100
	}
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := test[0]

	if got := testing.AllocsPerRun(100, func() {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Attrs) != 0 {
			t.Fatal("step reported despite wide bounds — budget premise broken")
		}
	}); got != 0 {
		t.Errorf("suppressed Source.Collect: %v allocs/op, budget 0", got)
	}

	var step uint64
	if got := testing.AllocsPerRun(100, func() {
		if err := rep.Apply(wire.Frame{Step: step}); err != nil {
			t.Fatal(err)
		}
		step++
	}); got != 0 {
		t.Errorf("empty Replica.Apply: %v allocs/op, budget 0", got)
	}
}
