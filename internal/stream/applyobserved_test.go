package stream

import (
	"testing"

	"ken/internal/alloctest"
	"ken/internal/wire"
)

// TestApplyObservedMeasuresDeviations drives a real source/replica pair
// and checks the pre-apply deviation accounting: an empty frame measures
// nothing, and every reporting frame must show at least one deviation —
// the source reported precisely because its (lock-step identical)
// prediction missed ε.
func TestApplyObservedMeasuresDeviations(t *testing.T) {
	cfg, test := testConfig(t)
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var reporting, deviating int
	var st ApplyStats
	for step, row := range test[:120] {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.ApplyObserved(f, &st); err != nil {
			t.Fatal(err)
		}
		if st.Step != uint64(step) || st.Values != len(f.Attrs) {
			t.Fatalf("step %d: stats {step %d, values %d}, frame has %d attrs", step, st.Step, st.Values, len(f.Attrs))
		}
		if st.Heartbeat != (f.Special == wire.KindHeartbeat) {
			t.Fatalf("step %d: heartbeat flag %v, frame special %v", step, st.Heartbeat, f.Special)
		}
		if len(f.Attrs) == 0 {
			if st.Deviations != 0 || st.MaxDevEps != 0 {
				t.Fatalf("step %d: empty frame measured deviations=%d maxDev=%v", step, st.Deviations, st.MaxDevEps)
			}
			continue
		}
		reporting++
		if st.Deviations > 0 {
			deviating++
			if st.MaxDevEps <= 1 {
				t.Fatalf("step %d: %d deviations but maxDev=%v ≤ 1ε", step, st.Deviations, st.MaxDevEps)
			}
		}
	}
	if reporting == 0 {
		t.Fatal("no reporting frames in 120 steps — test premise broken")
	}
	if deviating == 0 {
		t.Errorf("0 of %d reporting frames measured a deviation — lock-step says each report is one", reporting)
	}
}

// TestApplyObservedFlagsWildValue pins the divergence-sentinel input: a
// hand-built frame carrying a value far outside the model's range must
// measure a deviation of many ε.
func TestApplyObservedFlagsWildValue(t *testing.T) {
	cfg, _ := testConfig(t)
	sink, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st ApplyStats
	f := wire.Frame{Step: 0, Attrs: []int{0}, Values: []float64{1e6}}
	if err := sink.ApplyObserved(f, &st); err != nil {
		t.Fatal(err)
	}
	if st.Deviations != 1 {
		t.Fatalf("deviations=%d, want 1", st.Deviations)
	}
	if st.MaxDevEps < 100 {
		t.Fatalf("maxDev=%v ε, want ≥ 100 for a value 1e6 off", st.MaxDevEps)
	}
}

// TestAllocBudgetApplyObserved extends the stream budget to the measured
// apply path: a reporting single-attribute frame, with stats collection
// on, must still apply without allocating.
func TestAllocBudgetApplyObserved(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	cfg, test := testConfig(t)
	rep, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st ApplyStats
	var step uint64
	v := test[0][0]
	f := wire.Frame{Attrs: []int{0}, Values: []float64{v}}
	// Warm up once so byAttr/obsScratch maps reach steady-state capacity.
	f.Step = step
	if err := rep.ApplyObserved(f, &st); err != nil {
		t.Fatal(err)
	}
	step++
	if got := testing.AllocsPerRun(100, func() {
		f.Step = step
		if err := rep.ApplyObserved(f, &st); err != nil {
			t.Fatal(err)
		}
		step++
	}); got != 0 {
		t.Errorf("reporting ApplyObserved: %v allocs/op, budget 0", got)
	}
}
