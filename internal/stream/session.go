// Session handshake transport. Session frames (wire.Hello / wire.Accept /
// wire.Reject) travel length-prefixed exactly like report frames, so one
// connection carries a handshake followed by the report stream. The spec
// bytes inside HELLO are opaque here — internal/deploy owns that schema;
// this layer moves and types them.
package stream

import (
	"fmt"
	"io"

	"ken/internal/wire"
)

// Handshake opens a session client-side: it writes HELLO and blocks for
// the sink's reply. A REJECT comes back as the typed error of its code
// (wire.ErrVersionMismatch or wire.ErrSpecRejected); an ACCEPT from a
// sink speaking a different session version is a version mismatch naming
// both sides.
func Handshake(rw io.ReadWriter, h wire.Hello) (wire.Accept, error) {
	if h.Version == 0 {
		h.Version = wire.SessionVersion
	}
	buf, err := wire.EncodeHello(h)
	if err != nil {
		return wire.Accept{}, err
	}
	if err := writeRaw(rw, buf); err != nil {
		return wire.Accept{}, err
	}
	s, err := ReadSession(rw)
	if err != nil {
		if err == io.EOF {
			return wire.Accept{}, fmt.Errorf("stream: sink closed the connection during handshake: %w", io.ErrUnexpectedEOF)
		}
		return wire.Accept{}, err
	}
	switch {
	case s.Reject != nil:
		return wire.Accept{}, s.Reject.Err()
	case s.Accept != nil:
		if s.Accept.Version != h.Version {
			return wire.Accept{}, fmt.Errorf("%w: local v%d, remote v%d",
				wire.ErrVersionMismatch, h.Version, s.Accept.Version)
		}
		return *s.Accept, nil
	default:
		return wire.Accept{}, fmt.Errorf("stream: sink answered the handshake with a %v frame", s.Kind())
	}
}

// ReadHello reads the client's opening session frame sink-side. A peer
// that opens with a pre-session report frame surfaces as
// wire.ErrVersionMismatch (stale binary), not as corruption.
func ReadHello(rd io.Reader) (wire.Hello, error) {
	s, err := ReadSession(rd)
	if err != nil {
		return wire.Hello{}, err
	}
	if s.Hello == nil {
		return wire.Hello{}, fmt.Errorf("stream: expected hello, got %v frame", s.Kind())
	}
	return *s.Hello, nil
}

// ReadSession reads and decodes one length-prefixed session frame.
func ReadSession(rd io.Reader) (wire.Session, error) {
	buf, err := readRaw(rd)
	if err != nil {
		return wire.Session{}, err
	}
	return wire.DecodeSession(buf)
}

// WriteAccept sends an ACCEPT, filling in this build's session version
// when unset.
func WriteAccept(w io.Writer, a wire.Accept) error {
	if a.Version == 0 {
		a.Version = wire.SessionVersion
	}
	buf, err := wire.EncodeAccept(a)
	if err != nil {
		return err
	}
	return writeRaw(w, buf)
}

// WriteReject sends a REJECT, filling in this build's session version
// when unset. Sinks send it instead of ACCEPT during the handshake, or
// mid-stream (RejectSlowTenant) just before shedding a connection.
func WriteReject(w io.Writer, r wire.Reject) error {
	if r.Version == 0 {
		r.Version = wire.SessionVersion
	}
	buf, err := wire.EncodeReject(r)
	if err != nil {
		return err
	}
	return writeRaw(w, buf)
}
