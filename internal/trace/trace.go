// Package trace provides sensor-network deployment descriptions and time
// series traces for Ken's evaluation.
//
// The paper evaluates on two real deployments whose raw traces are not
// available here: the Intel Research Lab ("Lab", 49 mica2 motes) and the UC
// Berkeley Botanical Garden ("Garden", 11 mica2 motes). This package
// substitutes synthetic generators (see generate.go) that reproduce the
// statistical structure the paper's conclusions rest on: diurnal cycles,
// distance-decaying spatial correlation, attribute cross-correlation
// (temperature/humidity/voltage) and, for Lab, abrupt HVAC disturbances.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// Attribute identifies a sensed physical quantity.
type Attribute int

// The attributes studied in the paper (§5.1).
const (
	Temperature Attribute = iota
	Humidity
	Voltage
)

// Attributes lists all supported attributes in canonical order.
var Attributes = []Attribute{Temperature, Humidity, Voltage}

// String returns the attribute name.
func (a Attribute) String() string {
	switch a {
	case Temperature:
		return "temperature"
	case Humidity:
		return "humidity"
	case Voltage:
		return "voltage"
	default:
		return fmt.Sprintf("attribute(%d)", int(a))
	}
}

// DefaultEpsilon returns the paper's default error bound for the attribute:
// 0.5 °C for temperature, 2 % for humidity, 0.1 V for voltage (§5.1).
func (a Attribute) DefaultEpsilon() float64 {
	switch a {
	case Temperature:
		return 0.5
	case Humidity:
		return 2.0
	case Voltage:
		return 0.1
	default:
		return 0.5
	}
}

// Node is one sensor device with a planar position in metres.
type Node struct {
	ID   int
	X, Y float64
}

// Distance returns the Euclidean distance to other.
func (n Node) Distance(other Node) float64 {
	dx, dy := n.X-other.X, n.Y-other.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Deployment is a named set of sensor nodes.
type Deployment struct {
	Name  string
	Nodes []Node
}

// N returns the node count.
func (d *Deployment) N() int { return len(d.Nodes) }

// Trace holds a multi-attribute time series over a deployment.
// Data[attr][t][i] is the reading of node i at time step t.
type Trace struct {
	Deployment  *Deployment
	StepMinutes float64
	Data        map[Attribute][][]float64
}

// Steps returns the number of time steps (0 for an empty trace).
func (tr *Trace) Steps() int {
	for _, rows := range tr.Data {
		return len(rows)
	}
	return 0
}

// HasAttribute reports whether the trace carries the attribute.
func (tr *Trace) HasAttribute(a Attribute) bool {
	_, ok := tr.Data[a]
	return ok
}

// Rows returns the [t][node] matrix for an attribute.
func (tr *Trace) Rows(a Attribute) ([][]float64, error) {
	rows, ok := tr.Data[a]
	if !ok {
		return nil, fmt.Errorf("trace: deployment %q has no %v data", tr.Deployment.Name, a)
	}
	return rows, nil
}

// ErrSplit is returned when a train/test split point is out of range.
var ErrSplit = errors.New("trace: split point out of range")

// Split divides the trace into a training prefix of trainSteps rows and a
// test suffix, sharing the underlying row slices (rows are not copied).
func (tr *Trace) Split(trainSteps int) (train, test *Trace, err error) {
	total := tr.Steps()
	if trainSteps <= 0 || trainSteps >= total {
		return nil, nil, fmt.Errorf("%w: %d of %d", ErrSplit, trainSteps, total)
	}
	train = &Trace{Deployment: tr.Deployment, StepMinutes: tr.StepMinutes, Data: map[Attribute][][]float64{}}
	test = &Trace{Deployment: tr.Deployment, StepMinutes: tr.StepMinutes, Data: map[Attribute][][]float64{}}
	for a, rows := range tr.Data {
		train.Data[a] = rows[:trainSteps]
		test.Data[a] = rows[trainSteps:]
	}
	return train, test, nil
}

// Column extracts the full time series of a single node for an attribute.
func (tr *Trace) Column(a Attribute, node int) ([]float64, error) {
	rows, err := tr.Rows(a)
	if err != nil {
		return nil, err
	}
	if node < 0 || node >= tr.Deployment.N() {
		return nil, fmt.Errorf("trace: node %d out of range %d", node, tr.Deployment.N())
	}
	out := make([]float64, len(rows))
	for t, row := range rows {
		out[t] = row[node]
	}
	return out, nil
}

// MultiAttr flattens chosen attributes of a single node into a [t][k]
// matrix, one column per attribute in the given order. This is the "multiple
// logical nodes with zero communication cost" view of §5.5.
func (tr *Trace) MultiAttr(node int, attrs []Attribute) ([][]float64, error) {
	if len(attrs) == 0 {
		return nil, errors.New("trace: MultiAttr needs at least one attribute")
	}
	cols := make([][]float64, len(attrs))
	for k, a := range attrs {
		c, err := tr.Column(a, node)
		if err != nil {
			return nil, err
		}
		cols[k] = c
	}
	steps := len(cols[0])
	out := make([][]float64, steps)
	for t := 0; t < steps; t++ {
		row := make([]float64, len(attrs))
		for k := range attrs {
			row[k] = cols[k][t]
		}
		out[t] = row
	}
	return out, nil
}

// InjectAnomaly adds delta to node's attribute readings on steps
// [from, to). Used by the anomaly/event-detection example to verify that
// Ken pushes unpredicted values immediately.
func (tr *Trace) InjectAnomaly(a Attribute, node, from, to int, delta float64) error {
	rows, err := tr.Rows(a)
	if err != nil {
		return err
	}
	if node < 0 || node >= tr.Deployment.N() {
		return fmt.Errorf("trace: node %d out of range %d", node, tr.Deployment.N())
	}
	if from < 0 || to > len(rows) || from >= to {
		return fmt.Errorf("trace: anomaly window [%d,%d) out of range %d", from, to, len(rows))
	}
	for t := from; t < to; t++ {
		rows[t][node] += delta
	}
	return nil
}

// Downsample returns a new trace keeping every k-th step (k >= 1), sharing
// row storage. The paper samples the deployments at minute granularity but
// evaluates Ken at hourly granularity; this is that operation.
func (tr *Trace) Downsample(k int) (*Trace, error) {
	if k < 1 {
		return nil, fmt.Errorf("trace: downsample factor %d < 1", k)
	}
	out := &Trace{Deployment: tr.Deployment, StepMinutes: tr.StepMinutes * float64(k), Data: map[Attribute][][]float64{}}
	for a, rows := range tr.Data {
		kept := make([][]float64, 0, (len(rows)+k-1)/k)
		for t := 0; t < len(rows); t += k {
			kept = append(kept, rows[t])
		}
		out.Data[a] = kept
	}
	return out, nil
}
