package trace

import (
	"bytes"
	"math"
	"testing"
)

func TestAttributeString(t *testing.T) {
	cases := map[Attribute]string{
		Temperature:  "temperature",
		Humidity:     "humidity",
		Voltage:      "voltage",
		Attribute(9): "attribute(9)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}

func TestDefaultEpsilon(t *testing.T) {
	if Temperature.DefaultEpsilon() != 0.5 {
		t.Error("temperature ε should be 0.5")
	}
	if Humidity.DefaultEpsilon() != 2.0 {
		t.Error("humidity ε should be 2.0")
	}
	if Voltage.DefaultEpsilon() != 0.1 {
		t.Error("voltage ε should be 0.1")
	}
}

func TestNodeDistance(t *testing.T) {
	a := Node{ID: 0, X: 0, Y: 0}
	b := Node{ID: 1, X: 3, Y: 4}
	if d := a.Distance(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %v, want 5", d)
	}
}

func TestDeployments(t *testing.T) {
	g := GardenDeployment()
	if g.N() != 11 {
		t.Fatalf("garden N = %d, want 11", g.N())
	}
	l := LabDeployment()
	if l.N() != 49 {
		t.Fatalf("lab N = %d, want 49", l.N())
	}
	seen := map[int]bool{}
	for _, nd := range l.Nodes {
		if seen[nd.ID] {
			t.Fatalf("duplicate node ID %d", nd.ID)
		}
		seen[nd.ID] = true
	}
}

func TestGenerateShapes(t *testing.T) {
	tr, err := GenerateGarden(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != 200 {
		t.Fatalf("steps = %d, want 200", tr.Steps())
	}
	for _, a := range Attributes {
		rows, err := tr.Rows(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 200 || len(rows[0]) != 11 {
			t.Fatalf("%v shape = %dx%d", a, len(rows), len(rows[0]))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateGarden(42, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateGarden(42, 50)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Rows(Temperature)
	rb, _ := b.Rows(Temperature)
	for t2 := range ra {
		for i := range ra[t2] {
			if ra[t2][i] != rb[t2][i] {
				t.Fatalf("same seed diverged at (%d,%d)", t2, i)
			}
		}
	}
	c, err := GenerateGarden(43, 50)
	if err != nil {
		t.Fatal(err)
	}
	rc, _ := c.Rows(Temperature)
	same := true
	for t2 := range ra {
		for i := range ra[t2] {
			if ra[t2][i] != rc[t2][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(&Deployment{Name: "empty"}, GardenConfig(1, 10)); err == nil {
		t.Fatal("expected error for empty deployment")
	}
	cfg := GardenConfig(1, 0)
	if _, err := Generate(GardenDeployment(), cfg); err == nil {
		t.Fatal("expected error for zero steps")
	}
	cfg = GardenConfig(1, 10)
	cfg.StepMinutes = 0
	if _, err := Generate(GardenDeployment(), cfg); err == nil {
		t.Fatal("expected error for zero step duration")
	}
}

func TestDiurnalCycle(t *testing.T) {
	// Over 10 days of hourly samples, mean afternoon temperature must
	// exceed mean pre-dawn temperature by a few degrees.
	tr, err := GenerateGarden(7, 240)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tr.Column(Temperature, 5)
	if err != nil {
		t.Fatal(err)
	}
	var dawn, noon []float64
	for h, v := range col {
		switch h % 24 {
		case 4, 5:
			dawn = append(dawn, v)
		case 14, 15:
			noon = append(noon, v)
		}
	}
	if len(dawn) == 0 || len(noon) == 0 {
		t.Fatal("sampling buckets empty")
	}
	// The preset diurnal half-swing is 2.2 °C; afternoon minus pre-dawn
	// should recover most of the peak-to-peak amplitude.
	if meanOf(noon)-meanOf(dawn) < 2 {
		t.Fatalf("diurnal swing too small: dawn %v noon %v", meanOf(dawn), meanOf(noon))
	}
}

func meanOf(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

func TestSpatialCorrelationDecays(t *testing.T) {
	// Nearby lab nodes must correlate more strongly than distant ones.
	tr, err := GenerateLab(3, 600)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := tr.Rows(Temperature)
	near := corrOf(rows, 0, 1) // adjacent in grid
	far := corrOf(rows, 0, 48) // opposite corners
	if near <= far {
		t.Fatalf("spatial correlation does not decay: near=%v far=%v", near, far)
	}
}

// corrOf computes the Pearson correlation of two node columns.
func corrOf(rows [][]float64, i, j int) float64 {
	var xi, xj []float64
	for _, r := range rows {
		xi = append(xi, r[i])
		xj = append(xj, r[j])
	}
	mi, mj := meanOf(xi), meanOf(xj)
	var sij, sii, sjj float64
	for t := range xi {
		di, dj := xi[t]-mi, xj[t]-mj
		sij += di * dj
		sii += di * di
		sjj += dj * dj
	}
	return sij / math.Sqrt(sii*sjj)
}

func TestHumidityAnticorrelatedWithTemperature(t *testing.T) {
	tr, err := GenerateGarden(4, 400)
	if err != nil {
		t.Fatal(err)
	}
	temp, _ := tr.Column(Temperature, 0)
	hum, _ := tr.Column(Humidity, 0)
	rows := make([][]float64, len(temp))
	for i := range temp {
		rows[i] = []float64{temp[i], hum[i]}
	}
	if c := corrOf(rows, 0, 1); c >= -0.5 {
		t.Fatalf("temp/humidity correlation = %v, want strongly negative", c)
	}
}

func TestVoltageDrains(t *testing.T) {
	tr, err := GenerateGarden(5, 3000)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tr.Column(Voltage, 3)
	early := meanOf(v[:200])
	late := meanOf(v[len(v)-200:])
	if late >= early {
		t.Fatalf("battery did not drain: early %v late %v", early, late)
	}
}

func TestLabHarderThanGarden(t *testing.T) {
	// After removing the (predictable) diurnal profile, the lab's residual
	// one-step changes must exceed the garden's: HVAC jumps plus weaker
	// correlation make the lab harder to predict — the property underlying
	// the paper's Fig 9 vs Fig 10 contrast.
	g, err := GenerateGarden(6, 800)
	if err != nil {
		t.Fatal(err)
	}
	l, err := GenerateLab(6, 800)
	if err != nil {
		t.Fatal(err)
	}
	if gv, lv := meanAbsResidualStep(g), meanAbsResidualStep(l); lv <= gv {
		t.Fatalf("lab not harder: garden residual step %v, lab residual step %v", gv, lv)
	}
}

// meanAbsResidualStep deseasonalises each node's temperature series by its
// hour-of-day mean profile and returns the mean absolute one-step change of
// the residual.
func meanAbsResidualStep(tr *Trace) float64 {
	rows, _ := tr.Rows(Temperature)
	n := len(rows[0])
	res := make([][]float64, len(rows))
	for i := range res {
		res[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		var profile [24]float64
		var count [24]int
		for t := range rows {
			profile[t%24] += rows[t][j]
			count[t%24]++
		}
		for h := range profile {
			profile[h] /= float64(count[h])
		}
		for t := range rows {
			res[t][j] = rows[t][j] - profile[t%24]
		}
	}
	s, c := 0.0, 0
	for t := 1; t < len(res); t++ {
		for i := range res[t] {
			s += math.Abs(res[t][i] - res[t-1][i])
			c++
		}
	}
	return s / float64(c)
}

func TestSplit(t *testing.T) {
	tr, err := GenerateGarden(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := tr.Split(30)
	if err != nil {
		t.Fatal(err)
	}
	if train.Steps() != 30 || test.Steps() != 70 {
		t.Fatalf("split sizes %d/%d", train.Steps(), test.Steps())
	}
	if _, _, err := tr.Split(0); err == nil {
		t.Fatal("expected error for split at 0")
	}
	if _, _, err := tr.Split(100); err == nil {
		t.Fatal("expected error for split at end")
	}
}

func TestColumnErrors(t *testing.T) {
	tr, err := GenerateGarden(9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Column(Temperature, 99); err == nil {
		t.Fatal("expected error for bad node")
	}
	empty := &Trace{Deployment: GardenDeployment(), Data: map[Attribute][][]float64{}}
	if _, err := empty.Rows(Temperature); err == nil {
		t.Fatal("expected error for missing attribute")
	}
}

func TestMultiAttr(t *testing.T) {
	tr, err := GenerateGarden(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tr.MultiAttr(2, []Attribute{Temperature, Voltage})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 20 || len(m[0]) != 2 {
		t.Fatalf("multiattr shape %dx%d", len(m), len(m[0]))
	}
	temp, _ := tr.Column(Temperature, 2)
	if m[5][0] != temp[5] {
		t.Fatal("multiattr column mismatch")
	}
	if _, err := tr.MultiAttr(2, nil); err == nil {
		t.Fatal("expected error for empty attribute list")
	}
}

func TestInjectAnomaly(t *testing.T) {
	tr, err := GenerateGarden(11, 50)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := tr.Column(Temperature, 4)
	base := before[10]
	if err := tr.InjectAnomaly(Temperature, 4, 10, 12, 30); err != nil {
		t.Fatal(err)
	}
	after, _ := tr.Column(Temperature, 4)
	if math.Abs(after[10]-base-30) > 1e-12 {
		t.Fatalf("anomaly not applied: %v -> %v", base, after[10])
	}
	if after[12] != before[12] {
		t.Fatal("anomaly leaked past window")
	}
	if err := tr.InjectAnomaly(Temperature, 99, 0, 1, 1); err == nil {
		t.Fatal("expected error for bad node")
	}
	if err := tr.InjectAnomaly(Temperature, 0, 10, 5, 1); err == nil {
		t.Fatal("expected error for inverted window")
	}
}

func TestDownsample(t *testing.T) {
	tr, err := GenerateGarden(12, 100)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := tr.Downsample(10)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Steps() != 10 {
		t.Fatalf("downsampled steps = %d, want 10", ds.Steps())
	}
	if ds.StepMinutes != tr.StepMinutes*10 {
		t.Fatalf("step duration = %v", ds.StepMinutes)
	}
	orig, _ := tr.Rows(Temperature)
	down, _ := ds.Rows(Temperature)
	if down[1][0] != orig[10][0] {
		t.Fatal("downsample picked wrong rows")
	}
	if _, err := tr.Downsample(0); err == nil {
		t.Fatal("expected error for factor 0")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := GenerateGarden(13, 25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf, Humidity); err != nil {
		t.Fatal(err)
	}
	got, step, err := ReadCSVMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != tr.StepMinutes {
		t.Fatalf("inferred step = %v, want %v", step, tr.StepMinutes)
	}
	want, _ := tr.Rows(Humidity)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for t2 := range want {
		for i := range want[t2] {
			if math.Abs(got[t2][i]-want[t2][i]) > 1e-6 {
				t.Fatalf("round trip diverged at (%d,%d): %v vs %v", t2, i, got[t2][i], want[t2][i])
			}
		}
	}
}

func TestReadCSVMatrixErrors(t *testing.T) {
	if _, _, err := ReadCSVMatrix(bytes.NewBufferString("")); err == nil {
		t.Fatal("expected error for empty csv")
	}
	if _, _, err := ReadCSVMatrix(bytes.NewBufferString("minute,node0\nbad,1\n")); err == nil {
		t.Fatal("expected error for non-numeric minute")
	}
	if _, _, err := ReadCSVMatrix(bytes.NewBufferString("minute,node0\n0,notanumber\n")); err == nil {
		t.Fatal("expected error for non-numeric value")
	}
}

func TestFromMatrixAndFromCSV(t *testing.T) {
	d := GardenDeployment()
	rows := make([][]float64, 5)
	for i := range rows {
		row := make([]float64, d.N())
		for j := range row {
			row[j] = float64(i*100 + j)
		}
		rows[i] = row
	}
	tr, err := FromMatrix(d, Temperature, rows, 30)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != 5 || tr.StepMinutes != 30 {
		t.Fatalf("steps %d, minutes %v", tr.Steps(), tr.StepMinutes)
	}
	col, err := tr.Column(Temperature, 3)
	if err != nil {
		t.Fatal(err)
	}
	if col[2] != 203 {
		t.Fatalf("col[2] = %v", col[2])
	}
	// Round trip through CSV.
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf, Temperature); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV(&buf, d, Temperature)
	if err != nil {
		t.Fatal(err)
	}
	if back.StepMinutes != 30 {
		t.Fatalf("round-trip minutes %v", back.StepMinutes)
	}
	got, _ := back.Column(Temperature, 3)
	if got[2] != 203 {
		t.Fatalf("round-trip col = %v", got[2])
	}
	// Validation.
	if _, err := FromMatrix(nil, Temperature, rows, 30); err == nil {
		t.Fatal("expected error for nil deployment")
	}
	if _, err := FromMatrix(d, Temperature, nil, 30); err == nil {
		t.Fatal("expected error for no rows")
	}
	if _, err := FromMatrix(d, Temperature, [][]float64{{1}}, 30); err == nil {
		t.Fatal("expected error for node mismatch")
	}
	if _, err := FromMatrix(d, Temperature, rows, 0); err == nil {
		t.Fatal("expected error for zero step")
	}
}

func TestFillGaps(t *testing.T) {
	nan := math.NaN()
	rows := [][]float64{
		{nan, 5},
		{10, nan},
		{nan, nan},
		{nan, 8},
		{16, nan},
	}
	if err := FillGaps(rows, 3); err != nil {
		t.Fatal(err)
	}
	// Column 0: leading backfill 10; interior gap 10→16 over 3 steps.
	if rows[0][0] != 10 {
		t.Fatalf("leading fill = %v", rows[0][0])
	}
	if math.Abs(rows[2][0]-12) > 1e-12 || math.Abs(rows[3][0]-14) > 1e-12 {
		t.Fatalf("interpolation = %v, %v want 12, 14", rows[2][0], rows[3][0])
	}
	// Column 1: interior 5→8 over rows 1..2; trailing forward fill 8.
	if math.Abs(rows[1][1]-6) > 1e-12 || math.Abs(rows[2][1]-7) > 1e-12 {
		t.Fatalf("interpolation = %v, %v want 6, 7", rows[1][1], rows[2][1])
	}
	if rows[4][1] != 8 {
		t.Fatalf("trailing fill = %v", rows[4][1])
	}
	for _, r := range rows {
		for _, v := range r {
			if math.IsNaN(v) {
				t.Fatal("NaN survived FillGaps")
			}
		}
	}
}

func TestFillGapsErrors(t *testing.T) {
	nan := math.NaN()
	if err := FillGaps(nil, 3); err == nil {
		t.Fatal("expected error for empty matrix")
	}
	if err := FillGaps([][]float64{{1}}, 0); err == nil {
		t.Fatal("expected error for maxGap 0")
	}
	if err := FillGaps([][]float64{{1, 2}, {1}}, 3); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	// Gap longer than maxGap.
	long := [][]float64{{1}, {nan}, {nan}, {nan}, {5}}
	if err := FillGaps(long, 2); err == nil {
		t.Fatal("expected error for oversized gap")
	}
	// Column with no data.
	if err := FillGaps([][]float64{{nan}, {nan}}, 3); err == nil {
		t.Fatal("expected error for empty column")
	}
	// Oversized leading gap.
	lead := [][]float64{{nan}, {nan}, {nan}, {4}}
	if err := FillGaps(lead, 2); err == nil {
		t.Fatal("expected error for oversized leading gap")
	}
	// Oversized trailing gap.
	trail := [][]float64{{4}, {nan}, {nan}, {nan}}
	if err := FillGaps(trail, 2); err == nil {
		t.Fatal("expected error for oversized trailing gap")
	}
}

func TestFillGapsCleanMatrixUntouched(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	want := [][]float64{{1, 2}, {3, 4}}
	if err := FillGaps(rows, 3); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != want[i][j] {
				t.Fatal("clean matrix modified")
			}
		}
	}
}
