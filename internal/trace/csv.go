package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV writes one attribute's time series as CSV: a header row of node
// IDs, then one row per time step. This is the interchange format of the
// kentrace tool.
func (tr *Trace) WriteCSV(w io.Writer, a Attribute) error {
	rows, err := tr.Rows(a)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := make([]string, tr.Deployment.N()+1)
	header[0] = "minute"
	for i, nd := range tr.Deployment.Nodes {
		header[i+1] = fmt.Sprintf("node%d", nd.ID)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for t, row := range rows {
		rec[0] = strconv.FormatFloat(float64(t)*tr.StepMinutes, 'f', -1, 64)
		for i, v := range row {
			rec[i+1] = strconv.FormatFloat(v, 'g', 10, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVMatrix parses a CSV written by WriteCSV back into a [t][node]
// matrix, ignoring the leading minute column. It returns the matrix and the
// inferred step duration in minutes (0 when fewer than two rows).
func ReadCSVMatrix(r io.Reader) ([][]float64, float64, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, 0, fmt.Errorf("trace: csv parse: %w", err)
	}
	if len(recs) < 2 {
		return nil, 0, fmt.Errorf("trace: csv has %d rows, need header + data", len(recs))
	}
	cols := len(recs[0])
	if cols < 2 {
		return nil, 0, fmt.Errorf("trace: csv has %d columns, need minute + nodes", cols)
	}
	out := make([][]float64, 0, len(recs)-1)
	minutes := make([]float64, 0, len(recs)-1)
	for rn, rec := range recs[1:] {
		if len(rec) != cols {
			return nil, 0, fmt.Errorf("trace: csv row %d has %d fields, want %d", rn+2, len(rec), cols)
		}
		minute, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("trace: csv row %d minute: %w", rn+2, err)
		}
		minutes = append(minutes, minute)
		row := make([]float64, cols-1)
		for i, f := range rec[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("trace: csv row %d col %d: %w", rn+2, i+2, err)
			}
			row[i] = v
		}
		out = append(out, row)
	}
	step := 0.0
	if len(minutes) >= 2 {
		step = minutes[1] - minutes[0]
	}
	return out, step, nil
}

// FromMatrix wraps an externally obtained [t][node] matrix as a Trace for
// one attribute — the entry point for running Ken on real deployment data
// (e.g. the original Intel-lab CSV) instead of the synthetic generators.
// The node count must match the deployment.
func FromMatrix(d *Deployment, a Attribute, rows [][]float64, stepMinutes float64) (*Trace, error) {
	if d == nil || d.N() == 0 {
		return nil, fmt.Errorf("trace: FromMatrix needs a non-empty deployment")
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: FromMatrix needs at least one row")
	}
	if stepMinutes <= 0 {
		return nil, fmt.Errorf("trace: step duration %v minutes", stepMinutes)
	}
	for t, row := range rows {
		if len(row) != d.N() {
			return nil, fmt.Errorf("trace: row %d has %d readings, deployment has %d nodes", t, len(row), d.N())
		}
	}
	return &Trace{
		Deployment:  d,
		StepMinutes: stepMinutes,
		Data:        map[Attribute][][]float64{a: rows},
	}, nil
}

// FromCSV reads a CSV in the WriteCSV format into a single-attribute Trace
// over the deployment.
func FromCSV(r io.Reader, d *Deployment, a Attribute) (*Trace, error) {
	rows, step, err := ReadCSVMatrix(r)
	if err != nil {
		return nil, err
	}
	if step <= 0 {
		step = 60
	}
	return FromMatrix(d, a, rows, step)
}

// FillGaps repairs missing readings (NaNs) in a [t][node] matrix in place:
// interior gaps are linearly interpolated per column, and leading/trailing
// gaps are filled with the nearest valid reading. Real deployment traces
// (including the original Intel-lab data) are full of holes from radio
// loss and reboots; model fitting needs complete rows. Gaps longer than
// maxGap consecutive steps are refused — interpolating across hours of
// silence would invent data, and the caller should split the trace there
// instead. A column with no valid readings at all is an error.
func FillGaps(rows [][]float64, maxGap int) error {
	if len(rows) == 0 {
		return fmt.Errorf("trace: FillGaps on empty matrix")
	}
	if maxGap < 1 {
		return fmt.Errorf("trace: maxGap %d < 1", maxGap)
	}
	n := len(rows[0])
	for t, row := range rows {
		if len(row) != n {
			return fmt.Errorf("trace: row %d has %d cols, want %d", t, len(row), n)
		}
	}
	T := len(rows)
	for j := 0; j < n; j++ {
		// Collect indices of valid readings.
		prev := -1
		anyValid := false
		for t := 0; t <= T; t++ {
			valid := t < T && !math.IsNaN(rows[t][j])
			if t < T && valid {
				anyValid = true
				if prev >= 0 && t-prev > 1 {
					gap := t - prev - 1
					if gap > maxGap {
						return fmt.Errorf("trace: column %d has a %d-step gap ending at %d (max %d)", j, gap, t, maxGap)
					}
					// Linear interpolation across the interior gap.
					a, b := rows[prev][j], rows[t][j]
					for k := 1; k <= gap; k++ {
						rows[prev+k][j] = a + (b-a)*float64(k)/float64(gap+1)
					}
				}
				prev = t
			}
		}
		if !anyValid {
			return fmt.Errorf("trace: column %d has no valid readings", j)
		}
		// Leading gap: backfill from the first valid reading.
		first := 0
		for math.IsNaN(rows[first][j]) {
			first++
		}
		if first > maxGap {
			return fmt.Errorf("trace: column %d starts with a %d-step gap (max %d)", j, first, maxGap)
		}
		for t := 0; t < first; t++ {
			rows[t][j] = rows[first][j]
		}
		// Trailing gap: forward fill from the last valid reading.
		last := T - 1
		for math.IsNaN(rows[last][j]) {
			last--
		}
		if T-1-last > maxGap {
			return fmt.Errorf("trace: column %d ends with a %d-step gap (max %d)", j, T-1-last, maxGap)
		}
		for t := last + 1; t < T; t++ {
			rows[t][j] = rows[last][j]
		}
	}
	return nil
}
