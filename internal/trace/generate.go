package trace

import (
	"fmt"
	"math"
	"math/rand"

	"ken/internal/mat"
)

// GenConfig parameterises the synthetic deployment generator. The two
// preset configurations (LabConfig, GardenConfig) are tuned so that the
// generated data reproduces the qualitative contrasts the paper reports
// between the deployments: the Garden is smoother, more strongly spatially
// correlated, and free of human disturbances; the Lab is noisier, more
// weakly correlated, and punctuated by abrupt HVAC (air-conditioning)
// events ("human intervention ... results in this data being much harder to
// predict than the garden data", §5.4).
type GenConfig struct {
	Seed        int64
	Steps       int
	StepMinutes float64

	// Temperature model.
	TempBase       float64 // mean °C
	TempDiurnalAmp float64 // diurnal half-swing °C
	TempTrendAmp   float64 // slow multi-day drift amplitude °C
	TempNoiseSD    float64 // stationary noise std-dev °C

	// Humidity model (anti-correlated with temperature).
	HumBase         float64 // mean %RH
	HumTempCoupling float64 // %RH decrease per °C above base
	HumNoiseSD      float64 // %RH

	// Voltage model.
	VoltStart        float64 // initial battery volts
	VoltDrainPerStep float64 // volts lost per step
	VoltTempCoeff    float64 // volts per °C above base
	VoltNoiseSD      float64

	// Spatio-temporal noise field. The spatial kernel is a two-scale
	// mixture SpatialMix·exp(−d/SpatialScale) +
	// (1−SpatialMix)·exp(−d/SpatialScale2): a strong short-range component
	// (microclimate shared by neighbouring motes) plus a weaker long-range
	// one (weather shared by the whole deployment). SpatialMix 1 or
	// SpatialScale2 0 degrade to a single scale.
	SpatialScale  float64 // short correlation length ℓ₁ (metres)
	SpatialScale2 float64 // long correlation length ℓ₂ (metres)
	SpatialMix    float64 // weight of the short-range component in [0,1]
	ARCoeff       float64 // temporal AR(1) coefficient of the noise field
	NodeOffsetSD  float64 // per-node constant calibration offsets °C
	PhaseJitter   float64 // per-node diurnal phase jitter (fraction of a day)

	// HVAC disturbances (Lab only).
	HVAC            bool
	HVACAmp         float64 // °C drop while the AC runs
	HVACMeanOnMin   float64 // mean AC on-duration (minutes)
	HVACMeanOffMin  float64 // mean AC off-duration (minutes)
	HVACZones       int     // independent AC zones splitting nodes by x-position
	HVACResponseLag float64 // 0..1 smoothing of the temperature response per step
}

// GardenDeployment returns the 11-node Garden layout: a transect of motes a
// few metres apart, as in the Botanical Garden deployment.
func GardenDeployment() *Deployment {
	nodes := make([]Node, 11)
	for i := range nodes {
		// A gently curved transect, ~4 m spacing.
		nodes[i] = Node{ID: i, X: float64(i) * 4, Y: 2 * math.Sin(float64(i)/2)}
	}
	return &Deployment{Name: "garden", Nodes: nodes}
}

// LabDeployment returns the 49-node Lab layout: a 7×7 grid over a
// ~36 m × 30 m office floor, matching the Intel lab's mote count.
func LabDeployment() *Deployment {
	nodes := make([]Node, 0, 49)
	for r := 0; r < 7; r++ {
		for c := 0; c < 7; c++ {
			nodes = append(nodes, Node{ID: len(nodes), X: float64(c) * 6, Y: float64(r) * 5})
		}
	}
	return &Deployment{Name: "lab", Nodes: nodes}
}

// GardenConfig returns the preset generator settings for the Garden
// deployment: steps hourly samples (the paper's evaluation granularity).
func GardenConfig(seed int64, steps int) GenConfig {
	return GenConfig{
		Seed:        seed,
		Steps:       steps,
		StepMinutes: 60,

		TempBase:       16,
		TempDiurnalAmp: 2.2,
		TempTrendAmp:   1.2,
		TempNoiseSD:    0.9,

		HumBase:         65,
		HumTempCoupling: 2.2,
		HumNoiseSD:      1.4,

		VoltStart:        3.0,
		VoltDrainPerStep: 2.0e-5,
		VoltTempCoeff:    0.004,
		VoltNoiseSD:      0.012,

		SpatialScale:  18, // strong microclimate correlation between neighbours
		SpatialScale2: 60,
		SpatialMix:    0.85,
		ARCoeff:       0.8,
		NodeOffsetSD:  0.35,
		PhaseJitter:   0.01,
	}
}

// LabConfig returns the preset generator settings for the Lab deployment.
func LabConfig(seed int64, steps int) GenConfig {
	return GenConfig{
		Seed:        seed,
		Steps:       steps,
		StepMinutes: 60,

		TempBase:       21,
		TempDiurnalAmp: 2.5,
		TempTrendAmp:   1,
		TempNoiseSD:    0.8,

		HumBase:         42,
		HumTempCoupling: 1.6,
		HumNoiseSD:      2.0,

		VoltStart:        3.0,
		VoltDrainPerStep: 2.5e-5,
		VoltTempCoeff:    0.004,
		VoltNoiseSD:      0.015,

		SpatialScale:  13, // correlation decays over a few desks
		SpatialScale2: 45,
		SpatialMix:    0.8,
		ARCoeff:       0.65,
		NodeOffsetSD:  0.6,
		PhaseJitter:   0.02,

		HVAC:            true,
		HVACAmp:         2.2,
		HVACMeanOnMin:   240,
		HVACMeanOffMin:  420,
		HVACZones:       2,
		HVACResponseLag: 0.5,
	}
}

// Generate synthesises a full multi-attribute trace for the deployment.
func Generate(d *Deployment, cfg GenConfig) (*Trace, error) {
	n := d.N()
	if n == 0 {
		return nil, fmt.Errorf("trace: deployment %q has no nodes", d.Name)
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("trace: config requests %d steps", cfg.Steps)
	}
	if cfg.StepMinutes <= 0 {
		return nil, fmt.Errorf("trace: step duration %v minutes", cfg.StepMinutes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Spatially correlated innovation factor: Cholesky of the two-scale
	// kernel.
	chol, err := spatialCholesky(d, cfg)
	if err != nil {
		return nil, err
	}

	// Per-node fixed calibration offsets and diurnal phase jitter.
	offset := make([]float64, n)
	phase := make([]float64, n)
	ampScale := make([]float64, n)
	for i := 0; i < n; i++ {
		offset[i] = rng.NormFloat64() * cfg.NodeOffsetSD
		phase[i] = rng.NormFloat64() * cfg.PhaseJitter
		ampScale[i] = 1 + 0.08*rng.NormFloat64()
	}

	hvac := newHVACState(d, cfg, rng)

	temp := make([][]float64, cfg.Steps)
	hum := make([][]float64, cfg.Steps)
	volt := make([][]float64, cfg.Steps)

	// AR(1) spatio-temporal noise fields for temperature and humidity.
	wTemp := make([]float64, n)
	wHum := make([]float64, n)
	hvacEffect := make([]float64, n)

	stepDays := cfg.StepMinutes / (24 * 60)
	for t := 0; t < cfg.Steps; t++ {
		day := float64(t) * stepDays
		advanceField(wTemp, cfg.ARCoeff, chol, rng)
		advanceField(wHum, cfg.ARCoeff, chol, rng)
		hvac.advance(cfg, rng)

		rowT := make([]float64, n)
		rowH := make([]float64, n)
		rowV := make([]float64, n)
		trend := cfg.TempTrendAmp * math.Sin(2*math.Pi*day/5.3) // slow weather drift
		for i := 0; i < n; i++ {
			diurnal := cfg.TempDiurnalAmp * ampScale[i] *
				math.Sin(2*math.Pi*(day+phase[i])-math.Pi/2) // coldest pre-dawn
			target := 0.0
			if cfg.HVAC {
				target = hvac.effect(i) * cfg.HVACAmp
			}
			// First-order response of room temperature to the AC state.
			hvacEffect[i] += (target - hvacEffect[i]) * cfg.HVACResponseLag
			rowT[i] = cfg.TempBase + trend + diurnal + offset[i] +
				cfg.TempNoiseSD*wTemp[i] + hvacEffect[i]
			rowH[i] = cfg.HumBase - cfg.HumTempCoupling*(rowT[i]-cfg.TempBase) +
				cfg.HumNoiseSD*wHum[i]
			rowV[i] = cfg.VoltStart - cfg.VoltDrainPerStep*float64(t) +
				cfg.VoltTempCoeff*(rowT[i]-cfg.TempBase) +
				cfg.VoltNoiseSD*rng.NormFloat64()
		}
		temp[t], hum[t], volt[t] = rowT, rowH, rowV
	}

	return &Trace{
		Deployment:  d,
		StepMinutes: cfg.StepMinutes,
		Data: map[Attribute][][]float64{
			Temperature: temp,
			Humidity:    hum,
			Voltage:     volt,
		},
	}, nil
}

// spatialCholesky factors the deployment's two-scale spatial kernel.
func spatialCholesky(d *Deployment, cfg GenConfig) (*mat.Cholesky, error) {
	n := d.N()
	mix := cfg.SpatialMix
	if cfg.SpatialScale2 <= 0 {
		mix = 1
	}
	if mix < 0 || mix > 1 {
		return nil, fmt.Errorf("trace: spatial mix %v outside [0,1]", mix)
	}
	kernel := func(dist float64) float64 {
		v := 0.0
		if cfg.SpatialScale > 0 {
			v += mix * math.Exp(-dist/cfg.SpatialScale)
		} else if dist == 0 {
			v += mix
		}
		if cfg.SpatialScale2 > 0 {
			v += (1 - mix) * math.Exp(-dist/cfg.SpatialScale2)
		} else if dist == 0 {
			v += 1 - mix
		}
		return v
	}
	k := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				k.Set(i, j, 1)
				continue
			}
			k.Set(i, j, kernel(d.Nodes[i].Distance(d.Nodes[j])))
		}
	}
	ch, err := mat.NewCholesky(k)
	if err != nil {
		return nil, fmt.Errorf("trace: spatial kernel not PD: %w", err)
	}
	return ch, nil
}

// advanceField steps a unit-variance AR(1) field with spatially correlated
// innovations: w ← ρ·w + √(1−ρ²)·L·z.
func advanceField(w []float64, rho float64, chol *mat.Cholesky, rng *rand.Rand) {
	n := len(w)
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	lz, err := chol.MulLVec(z)
	if err != nil {
		// Dimensions are fixed by construction; this cannot happen.
		panic(err)
	}
	s := math.Sqrt(1 - rho*rho)
	for i := range w {
		w[i] = rho*w[i] + s*lz[i]
	}
}

// hvacState models per-zone air-conditioning on/off processes with
// exponential holding times.
type hvacState struct {
	zone     []int // node → zone
	on       []bool
	minsLeft []float64
}

func newHVACState(d *Deployment, cfg GenConfig, rng *rand.Rand) *hvacState {
	if !cfg.HVAC || cfg.HVACZones <= 0 {
		return &hvacState{}
	}
	// Split zones by x-position quantiles.
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, nd := range d.Nodes {
		minX = math.Min(minX, nd.X)
		maxX = math.Max(maxX, nd.X)
	}
	span := maxX - minX
	if span == 0 {
		span = 1
	}
	h := &hvacState{
		zone:     make([]int, d.N()),
		on:       make([]bool, cfg.HVACZones),
		minsLeft: make([]float64, cfg.HVACZones),
	}
	for i, nd := range d.Nodes {
		z := int((nd.X - minX) / span * float64(cfg.HVACZones))
		if z >= cfg.HVACZones {
			z = cfg.HVACZones - 1
		}
		h.zone[i] = z
	}
	for z := range h.on {
		h.minsLeft[z] = rng.ExpFloat64() * cfg.HVACMeanOffMin
	}
	return h
}

// advance moves every zone's on/off process forward one step.
func (h *hvacState) advance(cfg GenConfig, rng *rand.Rand) {
	if len(h.on) == 0 {
		return
	}
	for z := range h.on {
		h.minsLeft[z] -= cfg.StepMinutes
		for h.minsLeft[z] <= 0 {
			h.on[z] = !h.on[z]
			mean := cfg.HVACMeanOffMin
			if h.on[z] {
				mean = cfg.HVACMeanOnMin
			}
			h.minsLeft[z] += rng.ExpFloat64() * mean
		}
	}
}

// effect returns the steady-state temperature offset the AC imposes on node
// i's zone right now; the caller applies a first-order lag.
func (h *hvacState) effect(i int) float64 {
	if len(h.on) == 0 {
		return 0
	}
	if h.on[h.zone[i]] {
		return -1
	}
	return 0
}

// GenerateGarden is a convenience wrapper: Garden deployment + preset config.
func GenerateGarden(seed int64, steps int) (*Trace, error) {
	return Generate(GardenDeployment(), GardenConfig(seed, steps))
}

// GenerateLab is a convenience wrapper: Lab deployment + preset config.
func GenerateLab(seed int64, steps int) (*Trace, error) {
	return Generate(LabDeployment(), LabConfig(seed, steps))
}
