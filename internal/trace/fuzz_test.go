package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSVMatrix hardens the trace CSV parser against arbitrary input:
// it must reject garbage with an error, never panic, and anything it
// accepts must round-trip through WriteCSV.
func FuzzReadCSVMatrix(f *testing.F) {
	f.Add("minute,node0,node1\n0,1.5,2.5\n60,1.6,2.6\n")
	f.Add("minute,node0\n0,1\n")
	f.Add("")
	f.Add("a,b\nc,d\n")
	f.Add("minute,node0\n0,NaN\n")

	f.Fuzz(func(t *testing.T, in string) {
		rows, step, err := ReadCSVMatrix(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(rows) == 0 {
			t.Fatal("accepted csv produced no rows")
		}
		n := len(rows[0])
		for _, r := range rows {
			if len(r) != n {
				t.Fatal("accepted csv produced ragged rows")
			}
		}
		if step < 0 {
			return // negative steps are parseable; FromMatrix rejects them
		}
		// Accepted matrices must be usable as a Trace when shapes allow.
		dep := &Deployment{Name: "fuzz", Nodes: make([]Node, n)}
		for i := range dep.Nodes {
			dep.Nodes[i] = Node{ID: i, X: float64(i)}
		}
		if step == 0 {
			step = 60
		}
		tr, err := FromMatrix(dep, Temperature, rows, step)
		if err != nil {
			t.Fatalf("accepted csv rejected by FromMatrix: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf, Temperature); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
	})
}
