// Package alloctest supports the hot-path allocation budget tests
// (TestAllocBudget* across the tree, run by `make alloc-check`). Its one
// export, RaceEnabled, tells a budget test whether the race detector is
// compiled in: race instrumentation allocates behind the scenes, making
// testing.AllocsPerRun counts meaningless, so budget tests skip themselves
// under -race and the race suite (`make race`) stays green.
package alloctest
