//go:build !race

package alloctest

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
