// Package audit replays a JSONL protocol trace offline and verifies the
// invariants the Ken pipeline claims at runtime — the audit trail that
// makes the paper's headline guarantee ("every sink-reported value is
// within ε of ground truth regardless of model quality", §1/§3)
// checkable after the fact instead of taken on faith.
//
// The auditor groups events by scope (concurrent engine cells write
// disjoint scopes into one file), splits each scope at run_end boundaries
// into segments (one segment per core.Run replay, or one open-ended
// segment for simnet/stream traces), and checks three invariants per
// segment:
//
//  1. ε-bound — every epoch_end audit triple (pred, obs, ε) stays within
//     bounds; for replay segments the audited miss count must equal the
//     violations the run itself declared in run_end, so an out-of-ε value
//     injected into the trace is caught even when the run was lossy or
//     probabilistic and legitimately recorded misses.
//  2. silent divergence — every value a source reported is either applied
//     at the sink (sink_apply in the report span's subtree) or visibly
//     lost (net_drop); applies happen at the report's step; per-clique
//     apply steps never regress. Replicas may diverge under loss, but
//     never silently.
//  3. byte accounting — per-epoch bytes sum to the run_end totals, as do
//     values and steps, and each layer's ledger is verified against its
//     own events: the protocol ledger (epoch_end Bytes vs the report
//     payloads inside the epoch) and, for simnet traces, the radio ledger
//     (epoch_end LinkBytes vs the net_hop bytes inside the epoch). The
//     two ledgers are NOT compared to each other — see
//     docs/OBSERVABILITY.md, "Two byte ledgers".
//  4. retx accounting — every epoch's declared retransmission count
//     matches the net_retx events inside it.
//
// Under ARQ a drop only excuses an ε miss while it stays unrepaired: a
// dropped report whose attributes were all still applied at the sink (a
// retransmit got through) explains nothing and is not counted as a
// failure cause.
//
// On top of the invariants the auditor rolls up per-node, per-clique and
// per-link communication (messages, bytes, and a first-order energy
// estimate priced by simnet's radio cost model) plus epoch histograms —
// values, bytes, and latency when the trace carries wall-clock stamps.
//
// Everything in the Report is deterministic: raw span ids never appear
// (they depend on goroutine interleaving), scopes and keys are sorted,
// and integer byte totals are converted to energy only at the end — so a
// kenbench -parallel trace audits to a byte-identical report as its
// sequential twin.
//
// # Streaming
//
// The auditor is a streaming state machine: Feed events one at a time
// (or let Audit/AuditTrace drive it) and collect the Report from Finish.
// Because every pipeline emits an epoch's events strictly between its
// epoch_start and epoch_end, all per-epoch state — span links, report
// causal tails, drop records — is finalized and evicted the moment the
// epoch ends, so memory is bounded by the active-epoch window (plus the
// violations found), not by trace length. A million-epoch trace audits
// in the same memory as a hundred-epoch one.
package audit

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ken/internal/obs"
	"ken/internal/simnet"
)

// Invariant names as they appear in Violation.Invariant.
const (
	InvEpsilon    = "epsilon-bound"
	InvDivergence = "silent-divergence"
	InvBytes      = "byte-accounting"
	InvRetx       = "retx-accounting"
)

// epsSlack mirrors core.Run's audit tolerance.
const epsSlack = 1e-9

// Violation is one invariant breach, located as precisely as the trace
// allows. Epoch is the epoch's ordinal within its segment (not the raw
// span id, which is not stable across runs); Clique and Node are -1 when
// not applicable.
type Violation struct {
	Invariant string `json:"invariant"`
	Scope     string `json:"scope"`
	Segment   int    `json:"segment"`
	Epoch     int    `json:"epoch"`
	Step      int64  `json:"step"`
	Clique    int    `json:"clique"`
	Node      int    `json:"node"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: scope %q segment %d epoch %d step %d clique %d node %d: %s",
		v.Invariant, v.Scope, v.Segment, v.Epoch, v.Step, v.Clique, v.Node, v.Detail)
}

// RunTotals are the declared totals of one run_end event.
type RunTotals struct {
	Steps      int `json:"steps"`
	Values     int `json:"values"`
	Violations int `json:"violations"`
	Bytes      int `json:"bytes"`
}

// SegmentReport summarises one audited segment (one core.Run replay, or
// one open-ended simnet/stream trace).
type SegmentReport struct {
	Scheme       string     `json:"scheme,omitempty"`
	Epochs       int        `json:"epochs"`
	Values       int        `json:"values"`
	Bytes        int        `json:"bytes"`
	EpsilonMiss  int        `json:"epsilon_misses"`
	Declared     *RunTotals `json:"declared,omitempty"`
	ViolationIdx []int      `json:"violations,omitempty"` // indices into Report.Violations
}

// ScopeReport groups a scope's segments.
type ScopeReport struct {
	Scope    string          `json:"scope"`
	Segments []SegmentReport `json:"segments"`
}

// NodeStats is the per-node communication/energy rollup.
type NodeStats struct {
	Node       int     `json:"node"`
	TxMessages int     `json:"tx_messages"`
	TxBytes    int     `json:"tx_bytes"`
	RxBytes    int     `json:"rx_bytes"`
	Reports    int     `json:"reports"`
	Values     int     `json:"values"`
	Suppressed int     `json:"suppressed"`
	Pulls      int     `json:"pulls"`
	Retx       int     `json:"retx,omitempty"`
	Acks       int     `json:"acks,omitempty"`
	Suspected  int     `json:"suspected,omitempty"`
	Died       bool    `json:"died,omitempty"`
	EnergyJ    float64 `json:"energy_j"`
}

// CliqueStats is the per-clique protocol rollup.
type CliqueStats struct {
	Clique     int `json:"clique"`
	Reports    int `json:"reports"`
	Values     int `json:"values"`
	Suppressed int `json:"suppressed"`
	Applied    int `json:"applied"`
	Dropped    int `json:"dropped"`
	Bytes      int `json:"bytes"`
}

// LinkStats is the per-link radio rollup.
type LinkStats struct {
	From     int `json:"from"`
	To       int `json:"to"`
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`
}

// Report is the auditor's full output. WriteJSON and WriteMarkdown render
// it; everything is deterministically ordered.
type Report struct {
	Events       int               `json:"events"`
	Epochs       int               `json:"epochs"`
	Violations   []Violation       `json:"violations"`
	Scopes       []ScopeReport     `json:"scopes"`
	Nodes        []NodeStats       `json:"nodes,omitempty"`
	Cliques      []CliqueStats     `json:"cliques,omitempty"`
	Links        []LinkStats       `json:"links,omitempty"`
	EpochValues  obs.HistSnapshot  `json:"epoch_values"`
	EpochBytes   obs.HistSnapshot  `json:"epoch_bytes"`
	EpochLatency *obs.HistSnapshot `json:"epoch_latency_seconds,omitempty"`
	PayloadBytes int               `json:"payload_bytes"`
	LinkBytes    int               `json:"link_bytes"`
	TotalEnergyJ float64           `json:"total_energy_j"`
}

// Clean reports whether no invariant was violated.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// Auditor verifies a trace. The zero value prices energy with
// simnet.DefaultRadio().
//
// Two ways to drive it: hand Audit a decoded slice, or stream with
// Feed + Finish when the trace is too large to hold — both run the same
// state machine and produce byte-identical reports.
type Auditor struct {
	// Radio prices the first-order energy estimate of the per-node rollup
	// (Joules = TxPerByte·tx + RxPerByte·rx). Nil uses simnet.DefaultRadio().
	Radio *simnet.Radio

	st *stream
}

func (a *Auditor) radio() simnet.Radio {
	if a.Radio != nil {
		return *a.Radio
	}
	return simnet.DefaultRadio()
}

// Feed streams one event into the auditor. State accumulates until
// Finish. Memory stays bounded by the active-epoch window: per-epoch
// bookkeeping is dropped as each epoch ends.
func (a *Auditor) Feed(e obs.Event) {
	if a.st == nil {
		a.st = newStream(a.radio())
	}
	a.st.feed(&e)
}

// Finish closes all open segments, builds the Report, and resets the
// auditor for the next trace.
func (a *Auditor) Finish() *Report {
	if a.st == nil {
		a.st = newStream(a.radio())
	}
	rep := a.st.finish()
	a.st = nil
	return rep
}

// Audit verifies the invariants over a decoded event stream and builds
// the rollups. It never fails — problems become Violations in the report.
// Independent of any Feed stream in flight.
func (a *Auditor) Audit(events []obs.Event) *Report {
	s := newStream(a.radio())
	for i := range events {
		s.feed(&events[i])
	}
	return s.finish()
}

// Audit runs a zero-value Auditor over the events.
func Audit(events []obs.Event) *Report { return (&Auditor{}).Audit(events) }

// AuditTrace streams a JSONL trace (via obs.StreamEvents, so unknown
// schema versions are rejected) through the auditor without holding the
// events in memory.
func AuditTrace(r io.Reader) (*Report, error) {
	a := &Auditor{}
	if err := obs.StreamEvents(r, func(e obs.Event) error {
		a.Feed(e)
		return nil
	}); err != nil {
		return nil, err
	}
	return a.Finish(), nil
}

type hists struct {
	values, bytes, latency *obs.Histogram
	sawLatency             bool
}

// stream is the auditor's state machine. Scope states are independent
// (a scope is written by one goroutine, so file order is program order
// there, while cross-scope interleaving depends on scheduling and must
// not matter); the rollups and histograms take order-insensitive
// updates, so any interleaving of the same per-scope streams produces a
// byte-identical report.
type stream struct {
	radio  simnet.Radio
	events int
	scopes map[string]*scopeState
	h      *hists

	// rollup state (bounded by the node/clique/link population)
	nodes     map[int]*NodeStats
	cliques   map[int]*CliqueStats
	links     map[linkKey]*LinkStats
	linkBytes int
}

type linkKey struct{ from, to int }

func newStream(radio simnet.Radio) *stream {
	reg := obs.NewRegistry()
	return &stream{
		radio:  radio,
		scopes: map[string]*scopeState{},
		h: &hists{
			values:  reg.Histogram("epoch_values"),
			bytes:   reg.Histogram("epoch_bytes"),
			latency: reg.Histogram("epoch_latency_seconds"),
		},
		nodes:   map[int]*NodeStats{},
		cliques: map[int]*CliqueStats{},
		links:   map[linkKey]*LinkStats{},
	}
}

// scopeState is one scope's segment sequence: closed segments plus the
// one being fed.
type scopeState struct {
	closed []closedSegment
	cur    *segState
}

type closedSegment struct {
	seg   SegmentReport
	viols []Violation
}

func (s *stream) feed(e *obs.Event) {
	s.events++
	s.rollupEvent(e)
	sc, ok := s.scopes[e.Scope]
	if !ok {
		sc = &scopeState{}
		s.scopes[e.Scope] = sc
	}
	if sc.cur == nil {
		sc.cur = newSegState()
	}
	sc.cur.feed(s, e)
	if e.Type == obs.EvRunEnd {
		// run_end closes the segment it belongs to; the next event of the
		// scope (if any) opens the successor.
		sc.closed = append(sc.closed, sc.cur.close(s))
		sc.cur = nil
	}
}

func (s *stream) finish() *Report {
	rep := &Report{Events: s.events, Violations: []Violation{}}
	names := make([]string, 0, len(s.scopes))
	for name := range s.scopes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sc := s.scopes[name]
		if sc.cur != nil { // trailing open-ended segment
			sc.closed = append(sc.closed, sc.cur.close(s))
			sc.cur = nil
		}
		sr := ScopeReport{Scope: name}
		for segIdx, cs := range sc.closed {
			seg := cs.seg
			for i := range cs.viols {
				cs.viols[i].Scope, cs.viols[i].Segment = name, segIdx
				seg.ViolationIdx = append(seg.ViolationIdx, len(rep.Violations))
				rep.Violations = append(rep.Violations, cs.viols[i])
			}
			sr.Segments = append(sr.Segments, seg)
			rep.Epochs += seg.Epochs
			rep.PayloadBytes += seg.Bytes
		}
		rep.Scopes = append(rep.Scopes, sr)
	}
	s.finishRollup(rep)
	rep.EpochValues = s.h.values.Snapshot()
	rep.EpochBytes = s.h.bytes.Snapshot()
	if s.h.sawLatency {
		snap := s.h.latency.Snapshot()
		rep.EpochLatency = &snap
	}
	return rep
}

// epochRec is one epoch's audit state while it is open; everything here
// is resolved and dropped at the epoch's end.
type epochRec struct {
	id          int64
	ord         int
	step        int64
	startTS     int64
	reportBytes int
	hasReports  bool
	hopBytes    int // radio ledger: sum of net_hop bytes inside the epoch
	retx        int // net_retx events inside the epoch
	tail        epochTail
}

// epochTail is the causal bookkeeping attached to an epoch (or, for
// events outside any open epoch, to the segment's residual tail): the
// spans registered inside it, the report records rooted in it, and the
// drops recorded in it.
type epochTail struct {
	spans   []int64
	reports []*reportRec
	drops   []dropRec
}

// reportRec tracks the causal tail of one report span.
type reportRec struct {
	ev        obs.Event
	ord       int // creation ordinal within the segment, for stable output order
	epochOrd  int
	applied   map[int]bool
	dropped   map[int]bool
	blindDrop bool // a drop without attribute info covers the whole report
}

// dropRec defers the "does this drop excuse an ε miss" decision to the
// end of its epoch: a drop inside a report span whose attributes were
// all applied anyway (an ARQ retransmit repaired it) caused no divergence
// and must not excuse anything.
type dropRec struct {
	step  int64
	rr    *reportRec
	attrs []int
}

// epsMiss is one audited out-of-ε reading, held until the segment closes
// (whether it is a violation depends on the run_end totals, which arrive
// last).
type epsMiss struct {
	epochOrd int
	step     int64
	node     int
	detail   string
}

// divGroup is one report's deferred divergence violations, emitted only
// if the segment turns out to trace span-linked applies at all.
type divGroup struct {
	ord   int
	viols []Violation
}

// pendingByteV is one byte/retx-accounting violation found at an epoch's
// end. The protocol-ledger check for a zero-bytes epoch only counts when
// the segment has a run_end (an open-ended trace may legitimately not
// account bytes), which is unknown until the segment closes.
type pendingByteV struct {
	v          Violation
	needRunEnd bool
}

// segState audits one segment of one scope. Memory discipline: open
// epochs, the watermark map (one entry per clique), and anything derived
// from actual rule breaches (misses, pending violations) — never
// anything proportional to the number of finalized epochs.
type segState struct {
	open        map[int64]*epochRec
	epochCount  int
	firstDetail string
	haveDetail  bool
	sumBytes    int
	sumN        int

	parentOf     map[int64]int64
	reportBySpan map[int64]*reportRec
	residual     epochTail // events outside any open epoch (malformed traces)
	reportOrd    int

	watermark      map[int]int64
	minFail        int64 // earliest recorded death/unrepaired-loss step
	hasFail        bool
	spannedApplies bool
	runEnd         *obs.Event

	misses       []epsMiss
	vLoop        []Violation // watermark + apply-step breaches, event order
	vMalformed   []Violation // malformed audit triples, epoch order
	pendingDiv   []divGroup
	pendingBytes []pendingByteV
}

func newSegState() *segState {
	return &segState{
		open:         map[int64]*epochRec{},
		parentOf:     map[int64]int64{},
		reportBySpan: map[int64]*reportRec{},
		watermark:    map[int]int64{},
	}
}

// tailFor returns the epoch tail an event's bookkeeping belongs to: its
// open epoch, or the segment residual when it is outside any.
func (st *segState) tailFor(epochID int64) *epochTail {
	if er, ok := st.open[epochID]; ok {
		return &er.tail
	}
	return &st.residual
}

// epochOrdOf maps an epoch span id to its ordinal (-1 when unknown —
// outside any open epoch).
func (st *segState) epochOrdOf(epochID int64) int {
	if er, ok := st.open[epochID]; ok {
		return er.ord
	}
	return -1
}

func (st *segState) recordFail(step int64) {
	if !st.hasFail || step < st.minFail {
		st.minFail, st.hasFail = step, true
	}
}

// excused reports whether a recorded loss or death at or before step
// explains an ε miss there.
func (st *segState) excused(step int64) bool {
	return st.hasFail && st.minFail <= step
}

func (st *segState) feed(s *stream, e *obs.Event) {
	if e.Span != 0 {
		st.parentOf[e.Span] = e.Parent
		st.tailFor(e.Epoch).spans = append(st.tailFor(e.Epoch).spans, e.Span)
	}
	switch e.Type {
	case obs.EvEpochStart:
		er := &epochRec{id: e.Span, ord: st.epochCount, step: e.Step, startTS: e.TS}
		st.epochCount++
		if !st.haveDetail {
			st.firstDetail, st.haveDetail = e.Detail, true
		}
		if e.Span != 0 {
			st.open[e.Span] = er
		}
	case obs.EvEpochEnd:
		if er, ok := st.open[e.Epoch]; ok {
			st.finalizeEpoch(s, er, e)
			delete(st.open, e.Epoch)
		}
	case obs.EvReport:
		rr := &reportRec{ev: *e, ord: st.reportOrd, epochOrd: st.epochOrdOf(e.Epoch),
			applied: map[int]bool{}, dropped: map[int]bool{}}
		st.reportOrd++
		tail := st.tailFor(e.Epoch)
		tail.reports = append(tail.reports, rr)
		if e.Span != 0 {
			st.reportBySpan[e.Span] = rr
		}
		if er, ok := st.open[e.Epoch]; ok {
			er.hasReports = true
			if e.Payload != nil {
				er.reportBytes += e.Payload.Bytes
			}
		}
	case obs.EvApply:
		if e.Parent != 0 {
			st.spannedApplies = true
		}
		if e.Clique >= 0 {
			if last, ok := st.watermark[e.Clique]; ok && e.Step < last {
				st.vLoop = append(st.vLoop, Violation{Invariant: InvDivergence,
					Epoch: st.epochOrdOf(e.Epoch), Step: e.Step, Clique: e.Clique, Node: e.Node,
					Detail: fmt.Sprintf("sink apply step %d regresses below clique watermark %d", e.Step, last)})
			} else {
				st.watermark[e.Clique] = e.Step
			}
		}
		if rr := reportFor(st.reportBySpan, st.parentOf, e.Parent); rr != nil {
			for _, attr := range e.Attrs {
				rr.applied[attr] = true
			}
			if e.Step != rr.ev.Step {
				st.vLoop = append(st.vLoop, Violation{Invariant: InvDivergence,
					Epoch: st.epochOrdOf(e.Epoch), Step: e.Step, Clique: e.Clique, Node: e.Node,
					Detail: fmt.Sprintf("sink applied at step %d a report from step %d", e.Step, rr.ev.Step)})
			}
		}
	case obs.EvDrop:
		rr := reportFor(st.reportBySpan, st.parentOf, e.Parent)
		tail := st.tailFor(e.Epoch)
		tail.drops = append(tail.drops, dropRec{step: e.Step, rr: rr, attrs: e.Attrs})
		if rr != nil {
			if len(e.Attrs) == 0 {
				rr.blindDrop = true
			}
			for _, attr := range e.Attrs {
				rr.dropped[attr] = true
			}
		}
	case obs.EvHop:
		if er, ok := st.open[e.Epoch]; ok && e.Payload != nil {
			er.hopBytes += e.Payload.Bytes
		}
	case obs.EvRetx:
		if er, ok := st.open[e.Epoch]; ok {
			er.retx++
		}
	case obs.EvNodeFailure:
		st.recordFail(e.Step)
	case obs.EvRunEnd:
		ev := *e
		st.runEnd = &ev
	}
}

// finalizeEpoch resolves everything the epoch's end settles — the audit
// triple, drop repair status, report divergence, ledger checks, sums and
// histograms — then evicts the epoch's span bookkeeping. All pipelines
// emit an epoch's events strictly inside its start/end bracket, so
// nothing resolved here can be contradicted by later events.
func (st *segState) finalizeEpoch(s *stream, er *epochRec, end *obs.Event) {
	n := end.N
	bytes := 0
	if end.Payload != nil {
		bytes = end.Payload.Bytes
	}
	st.sumN += n
	st.sumBytes += bytes

	s.h.values.Observe(float64(n))
	s.h.bytes.Observe(float64(bytes))
	if er.startTS != 0 && end.TS != 0 {
		s.h.latency.Observe(float64(end.TS-er.startTS) / 1e9)
		s.h.sawLatency = true
	}

	// ε triple. Misses are held until the segment closes (the verdict
	// depends on run_end); malformed triples are violations outright.
	if p := end.Payload; p != nil && len(p.Eps) > 0 {
		if len(p.Predicted) != len(p.Observed) || len(p.Eps) != len(p.Observed) {
			st.vMalformed = append(st.vMalformed, Violation{Invariant: InvEpsilon,
				Epoch: er.ord, Step: er.step, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("malformed audit triple: %d predicted, %d observed, %d eps",
					len(p.Predicted), len(p.Observed), len(p.Eps))})
		} else {
			for i := range p.Observed {
				if d := math.Abs(p.Predicted[i] - p.Observed[i]); d > p.Eps[i]+epsSlack {
					st.misses = append(st.misses, epsMiss{epochOrd: er.ord, step: er.step, node: i,
						detail: fmt.Sprintf("estimate %g misses truth %g by %g > ε %g",
							p.Predicted[i], p.Observed[i], d, p.Eps[i])})
				}
			}
		}
	}

	st.resolveTail(&er.tail)

	// Ledger checks. The protocol-ledger check on a zero-bytes epoch only
	// stands in run_end-closed segments, which is unknown until close.
	if er.hasReports && er.reportBytes != bytes {
		st.pendingBytes = append(st.pendingBytes, pendingByteV{
			needRunEnd: bytes == 0,
			v: Violation{Invariant: InvBytes, Epoch: er.ord, Step: er.step, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("report events carry %d bytes but the epoch accounts %d", er.reportBytes, bytes)},
		})
	}
	if p := end.Payload; p != nil {
		if p.LinkBytes != er.hopBytes {
			st.pendingBytes = append(st.pendingBytes, pendingByteV{
				v: Violation{Invariant: InvBytes, Epoch: er.ord, Step: er.step, Clique: -1, Node: -1,
					Detail: fmt.Sprintf("net_hop events carry %d link bytes but the epoch declares %d", er.hopBytes, p.LinkBytes)},
			})
		}
		if p.Retx != er.retx {
			st.pendingBytes = append(st.pendingBytes, pendingByteV{
				v: Violation{Invariant: InvRetx, Epoch: er.ord, Step: er.step, Clique: -1, Node: -1,
					Detail: fmt.Sprintf("trace shows %d retransmissions but the epoch declares %d", er.retx, p.Retx)},
			})
		}
	}
}

// resolveTail settles a finished tail: classifies its drops (repaired or
// excusing), records each report's divergence verdicts, and evicts its
// span bookkeeping.
func (st *segState) resolveTail(tail *epochTail) {
	// A drop excuses misses only while unrepaired: if every attribute it
	// lost was applied at the sink anyway, a retransmit repaired it and the
	// replicas never diverged. Drops outside a report span (member-to-root
	// collection traffic, dead-source drops) cannot be proven repaired and
	// stay valid excuses.
	for _, d := range tail.drops {
		repaired := d.rr != nil && len(d.attrs) > 0
		if repaired {
			for _, attr := range d.attrs {
				if !d.rr.applied[attr] {
					repaired = false
					break
				}
			}
		}
		if !repaired {
			st.recordFail(d.step)
		}
	}
	// Divergence verdicts per report, deferred behind the segment-wide
	// spannedApplies gate (a source-only stream trace has reports with no
	// visible sink and is not held to this invariant).
	for _, rr := range tail.reports {
		if rr.ev.Span == 0 {
			continue
		}
		var viols []Violation
		for _, attr := range rr.ev.Attrs {
			if !rr.applied[attr] && !rr.dropped[attr] && !rr.blindDrop {
				viols = append(viols, Violation{Invariant: InvDivergence,
					Epoch: rr.epochOrd, Step: rr.ev.Step, Clique: rr.ev.Clique, Node: rr.ev.Node,
					Detail: fmt.Sprintf("reported attribute %d has neither a sink apply nor a recorded drop", attr)})
			}
		}
		for _, attr := range sortedIntKeys(rr.applied) {
			if !containsInt(rr.ev.Attrs, attr) {
				viols = append(viols, Violation{Invariant: InvDivergence,
					Epoch: rr.epochOrd, Step: rr.ev.Step, Clique: rr.ev.Clique, Node: rr.ev.Node,
					Detail: fmt.Sprintf("sink applied attribute %d that was never reported", attr)})
			}
		}
		if len(viols) > 0 {
			st.pendingDiv = append(st.pendingDiv, divGroup{ord: rr.ord, viols: viols})
		}
	}
	for _, span := range tail.spans {
		delete(st.parentOf, span)
		delete(st.reportBySpan, span)
	}
	*tail = epochTail{}
}

// close finishes the segment: resolves everything that waited on the
// run_end (or its absence), assembles the violation list in the report's
// canonical order, and returns the summary.
func (st *segState) close(s *stream) closedSegment {
	// Epochs that never ended, and events outside any epoch, still owe
	// their drop/divergence resolution (their triples and ledgers are
	// unjudgeable without an epoch_end).
	openIDs := make([]int64, 0, len(st.open))
	for id := range st.open {
		openIDs = append(openIDs, id)
	}
	sort.Slice(openIDs, func(i, j int) bool { return openIDs[i] < openIDs[j] })
	for _, id := range openIDs {
		st.resolveTail(&st.open[id].tail)
	}
	st.resolveTail(&st.residual)

	var declared *RunTotals
	if st.runEnd != nil && st.runEnd.Payload != nil {
		declared = &RunTotals{
			Steps: st.runEnd.Payload.Steps, Values: st.runEnd.Payload.Values,
			Violations: st.runEnd.Payload.Violations, Bytes: st.runEnd.Payload.Bytes,
		}
	}

	// ε verdict, now that the declared totals are known.
	var vEps []Violation
	switch {
	case declared != nil && len(st.misses) != declared.Violations:
		// The trace and the run disagree about how often ε was missed —
		// either the payloads were tampered with or the sink lied.
		if declared.Violations == 0 {
			for _, m := range st.misses {
				vEps = append(vEps, Violation{Invariant: InvEpsilon, Epoch: m.epochOrd, Step: m.step,
					Clique: -1, Node: m.node, Detail: m.detail})
			}
		} else {
			v := Violation{Invariant: InvEpsilon, Epoch: -1, Step: -1, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("trace shows %d ε misses but run_end declares %d", len(st.misses), declared.Violations)}
			if len(st.misses) > 0 {
				m := st.misses[0]
				v.Epoch, v.Step, v.Node = m.epochOrd, m.step, m.node
			}
			vEps = append(vEps, v)
		}
	case declared == nil:
		// Open-ended segment (simnet/stream): a miss is legitimate only
		// when the trace shows a cause — message loss or a node death at or
		// before the epoch. A miss on a clean network is a broken guarantee.
		for _, m := range st.misses {
			if !st.excused(m.step) {
				vEps = append(vEps, Violation{Invariant: InvEpsilon, Epoch: m.epochOrd, Step: m.step,
					Clique: -1, Node: m.node, Detail: m.detail})
			}
		}
	}

	var viols []Violation
	viols = append(viols, st.vLoop...)
	viols = append(viols, st.vMalformed...)
	viols = append(viols, vEps...)
	if st.spannedApplies {
		sort.SliceStable(st.pendingDiv, func(i, j int) bool { return st.pendingDiv[i].ord < st.pendingDiv[j].ord })
		for _, g := range st.pendingDiv {
			viols = append(viols, g.viols...)
		}
	}
	for _, pv := range st.pendingBytes {
		if pv.needRunEnd && st.runEnd == nil {
			continue
		}
		viols = append(viols, pv.v)
	}
	if declared != nil {
		if st.epochCount != declared.Steps {
			viols = append(viols, Violation{Invariant: InvBytes, Epoch: -1, Step: -1, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("trace has %d epochs but run_end declares %d steps", st.epochCount, declared.Steps)})
		}
		if st.sumN != declared.Values {
			viols = append(viols, Violation{Invariant: InvBytes, Epoch: -1, Step: -1, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("epochs report %d values but run_end declares %d", st.sumN, declared.Values)})
		}
		if st.sumBytes != declared.Bytes {
			viols = append(viols, Violation{Invariant: InvBytes, Epoch: -1, Step: -1, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("epochs account %d bytes but run_end declares %d", st.sumBytes, declared.Bytes)})
		}
	}

	seg := SegmentReport{
		Epochs: st.epochCount, Values: st.sumN, Bytes: st.sumBytes,
		EpsilonMiss: len(st.misses), Declared: declared,
	}
	if st.runEnd != nil && st.runEnd.Detail != "" {
		seg.Scheme = st.runEnd.Detail
	} else if st.haveDetail {
		seg.Scheme = st.firstDetail
	}
	return closedSegment{seg: seg, viols: viols}
}

// reportFor walks the span parent chain from parent up to the report span
// that caused it (nil when uncaused). The walk is bounded to survive
// corrupted parent cycles.
func reportFor(reports map[int64]*reportRec, parentOf map[int64]int64, parent int64) *reportRec {
	for hops := 0; parent != 0 && hops < 64; hops++ {
		if rr, ok := reports[parent]; ok {
			return rr
		}
		parent = parentOf[parent]
	}
	return nil
}

func sortedIntKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// rollupEvent feeds one event into the per-node / per-clique / per-link
// communication tables. All updates are integer additions, so arrival
// order cannot perturb the totals; energy stays un-priced until
// finishRollup so summation order cannot perturb the floats either.
func (s *stream) rollupEvent(e *obs.Event) {
	node := func(i int) *NodeStats {
		if n, ok := s.nodes[i]; ok {
			return n
		}
		n := &NodeStats{Node: i}
		s.nodes[i] = n
		return n
	}
	clique := func(i int) *CliqueStats {
		if c, ok := s.cliques[i]; ok {
			return c
		}
		c := &CliqueStats{Clique: i}
		s.cliques[i] = c
		return c
	}
	switch e.Type {
	case obs.EvHop:
		if e.Payload == nil {
			return
		}
		tx := node(e.Payload.From)
		tx.TxMessages++
		tx.TxBytes += e.Payload.Bytes
		node(e.Payload.To).RxBytes += e.Payload.Bytes
		s.linkBytes += e.Payload.Bytes
		k := linkKey{e.Payload.From, e.Payload.To}
		l, ok := s.links[k]
		if !ok {
			l = &LinkStats{From: k.from, To: k.to}
			s.links[k] = l
		}
		l.Messages++
		l.Bytes += e.Payload.Bytes
	case obs.EvReport:
		if e.Node >= 0 {
			n := node(e.Node)
			n.Reports++
			n.Values += len(e.Attrs)
		}
		if e.Clique >= 0 {
			c := clique(e.Clique)
			c.Reports++
			c.Values += len(e.Attrs)
			if e.Payload != nil {
				c.Bytes += e.Payload.Bytes
			}
		}
	case obs.EvSuppress:
		if e.Node >= 0 {
			node(e.Node).Suppressed += len(e.Attrs)
		}
		if e.Clique >= 0 {
			clique(e.Clique).Suppressed += len(e.Attrs)
		}
	case obs.EvApply:
		if e.Clique >= 0 {
			clique(e.Clique).Applied += len(e.Attrs)
		}
	case obs.EvDrop:
		if e.Clique >= 0 {
			clique(e.Clique).Dropped += len(e.Attrs)
		}
	case obs.EvPull:
		if e.Node >= 0 {
			node(e.Node).Pulls++
		}
	case obs.EvRetx:
		if e.Node >= 0 {
			node(e.Node).Retx++
		}
	case obs.EvAck:
		if e.Node >= 0 {
			node(e.Node).Acks++
		}
	case obs.EvSuspect:
		if e.Node >= 0 {
			node(e.Node).Suspected++
		}
	case obs.EvNodeFailure:
		if e.Node >= 0 {
			node(e.Node).Died = true
		}
	}
}

// finishRollup prices energy and emits the sorted rollup tables.
func (s *stream) finishRollup(rep *Report) {
	rep.LinkBytes = s.linkBytes
	totalTx, totalRx := 0, 0
	for _, i := range sortedNodeKeys(s.nodes) {
		n := s.nodes[i]
		n.EnergyJ = float64(n.TxBytes)*s.radio.TxPerByte + float64(n.RxBytes)*s.radio.RxPerByte
		totalTx += n.TxBytes
		totalRx += n.RxBytes
		rep.Nodes = append(rep.Nodes, *n)
	}
	rep.TotalEnergyJ = float64(totalTx)*s.radio.TxPerByte + float64(totalRx)*s.radio.RxPerByte
	for _, i := range sortedCliqueKeys(s.cliques) {
		rep.Cliques = append(rep.Cliques, *s.cliques[i])
	}
	linkKeys := make([]linkKey, 0, len(s.links))
	for k := range s.links {
		linkKeys = append(linkKeys, k)
	}
	sort.Slice(linkKeys, func(i, j int) bool {
		if linkKeys[i].from != linkKeys[j].from {
			return linkKeys[i].from < linkKeys[j].from
		}
		return linkKeys[i].to < linkKeys[j].to
	})
	for _, k := range linkKeys {
		rep.Links = append(rep.Links, *s.links[k])
	}
}

func sortedNodeKeys(m map[int]*NodeStats) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedCliqueKeys(m map[int]*CliqueStats) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
