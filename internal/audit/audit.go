// Package audit replays a JSONL protocol trace offline and verifies the
// invariants the Ken pipeline claims at runtime — the audit trail that
// makes the paper's headline guarantee ("every sink-reported value is
// within ε of ground truth regardless of model quality", §1/§3)
// checkable after the fact instead of taken on faith.
//
// The auditor groups events by scope (concurrent engine cells write
// disjoint scopes into one file), splits each scope at run_end boundaries
// into segments (one segment per core.Run replay, or one open-ended
// segment for simnet/stream traces), and checks three invariants per
// segment:
//
//  1. ε-bound — every epoch_end audit triple (pred, obs, ε) stays within
//     bounds; for replay segments the audited miss count must equal the
//     violations the run itself declared in run_end, so an out-of-ε value
//     injected into the trace is caught even when the run was lossy or
//     probabilistic and legitimately recorded misses.
//  2. silent divergence — every value a source reported is either applied
//     at the sink (sink_apply in the report span's subtree) or visibly
//     lost (net_drop); applies happen at the report's step; per-clique
//     apply steps never regress. Replicas may diverge under loss, but
//     never silently.
//  3. byte accounting — per-epoch bytes sum to the run_end totals, as do
//     values and steps, and each layer's ledger is verified against its
//     own events: the protocol ledger (epoch_end Bytes vs the report
//     payloads inside the epoch) and, for simnet traces, the radio ledger
//     (epoch_end LinkBytes vs the net_hop bytes inside the epoch). The
//     two ledgers are NOT compared to each other — see
//     docs/OBSERVABILITY.md, "Two byte ledgers".
//  4. retx accounting — every epoch's declared retransmission count
//     matches the net_retx events inside it.
//
// Under ARQ a drop only excuses an ε miss while it stays unrepaired: a
// dropped report whose attributes were all still applied at the sink (a
// retransmit got through) explains nothing and is not counted as a
// failure cause.
//
// On top of the invariants the auditor rolls up per-node, per-clique and
// per-link communication (messages, bytes, and a first-order energy
// estimate priced by simnet's radio cost model) plus epoch histograms —
// values, bytes, and latency when the trace carries wall-clock stamps.
//
// Everything in the Report is deterministic: raw span ids never appear
// (they depend on goroutine interleaving), scopes and keys are sorted,
// and integer byte totals are converted to energy only at the end — so a
// kenbench -parallel trace audits to a byte-identical report as its
// sequential twin.
package audit

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ken/internal/obs"
	"ken/internal/simnet"
)

// Invariant names as they appear in Violation.Invariant.
const (
	InvEpsilon    = "epsilon-bound"
	InvDivergence = "silent-divergence"
	InvBytes      = "byte-accounting"
	InvRetx       = "retx-accounting"
)

// epsSlack mirrors core.Run's audit tolerance.
const epsSlack = 1e-9

// Violation is one invariant breach, located as precisely as the trace
// allows. Epoch is the epoch's ordinal within its segment (not the raw
// span id, which is not stable across runs); Clique and Node are -1 when
// not applicable.
type Violation struct {
	Invariant string `json:"invariant"`
	Scope     string `json:"scope"`
	Segment   int    `json:"segment"`
	Epoch     int    `json:"epoch"`
	Step      int64  `json:"step"`
	Clique    int    `json:"clique"`
	Node      int    `json:"node"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: scope %q segment %d epoch %d step %d clique %d node %d: %s",
		v.Invariant, v.Scope, v.Segment, v.Epoch, v.Step, v.Clique, v.Node, v.Detail)
}

// RunTotals are the declared totals of one run_end event.
type RunTotals struct {
	Steps      int `json:"steps"`
	Values     int `json:"values"`
	Violations int `json:"violations"`
	Bytes      int `json:"bytes"`
}

// SegmentReport summarises one audited segment (one core.Run replay, or
// one open-ended simnet/stream trace).
type SegmentReport struct {
	Scheme       string     `json:"scheme,omitempty"`
	Epochs       int        `json:"epochs"`
	Values       int        `json:"values"`
	Bytes        int        `json:"bytes"`
	EpsilonMiss  int        `json:"epsilon_misses"`
	Declared     *RunTotals `json:"declared,omitempty"`
	ViolationIdx []int      `json:"violations,omitempty"` // indices into Report.Violations
}

// ScopeReport groups a scope's segments.
type ScopeReport struct {
	Scope    string          `json:"scope"`
	Segments []SegmentReport `json:"segments"`
}

// NodeStats is the per-node communication/energy rollup.
type NodeStats struct {
	Node       int     `json:"node"`
	TxMessages int     `json:"tx_messages"`
	TxBytes    int     `json:"tx_bytes"`
	RxBytes    int     `json:"rx_bytes"`
	Reports    int     `json:"reports"`
	Values     int     `json:"values"`
	Suppressed int     `json:"suppressed"`
	Pulls      int     `json:"pulls"`
	Retx       int     `json:"retx,omitempty"`
	Acks       int     `json:"acks,omitempty"`
	Suspected  int     `json:"suspected,omitempty"`
	Died       bool    `json:"died,omitempty"`
	EnergyJ    float64 `json:"energy_j"`
}

// CliqueStats is the per-clique protocol rollup.
type CliqueStats struct {
	Clique     int `json:"clique"`
	Reports    int `json:"reports"`
	Values     int `json:"values"`
	Suppressed int `json:"suppressed"`
	Applied    int `json:"applied"`
	Dropped    int `json:"dropped"`
	Bytes      int `json:"bytes"`
}

// LinkStats is the per-link radio rollup.
type LinkStats struct {
	From     int `json:"from"`
	To       int `json:"to"`
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`
}

// Report is the auditor's full output. WriteJSON and WriteMarkdown render
// it; everything is deterministically ordered.
type Report struct {
	Events       int               `json:"events"`
	Epochs       int               `json:"epochs"`
	Violations   []Violation       `json:"violations"`
	Scopes       []ScopeReport     `json:"scopes"`
	Nodes        []NodeStats       `json:"nodes,omitempty"`
	Cliques      []CliqueStats     `json:"cliques,omitempty"`
	Links        []LinkStats       `json:"links,omitempty"`
	EpochValues  obs.HistSnapshot  `json:"epoch_values"`
	EpochBytes   obs.HistSnapshot  `json:"epoch_bytes"`
	EpochLatency *obs.HistSnapshot `json:"epoch_latency_seconds,omitempty"`
	PayloadBytes int               `json:"payload_bytes"`
	LinkBytes    int               `json:"link_bytes"`
	TotalEnergyJ float64           `json:"total_energy_j"`
}

// Clean reports whether no invariant was violated.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// Auditor verifies a trace. The zero value prices energy with
// simnet.DefaultRadio().
type Auditor struct {
	// Radio prices the first-order energy estimate of the per-node rollup
	// (Joules = TxPerByte·tx + RxPerByte·rx). Nil uses simnet.DefaultRadio().
	Radio *simnet.Radio
}

// Audit verifies the invariants over a decoded event stream and builds
// the rollups. It never fails — problems become Violations in the report.
func (a *Auditor) Audit(events []obs.Event) *Report {
	rep := &Report{Events: len(events), Violations: []Violation{}}

	// Group by scope, preserving file order inside each scope: a scope is
	// written by one goroutine, so file order is program order there, while
	// cross-scope interleaving depends on scheduling and must not matter.
	byScope := map[string][]obs.Event{}
	var scopes []string
	for _, e := range events {
		if _, ok := byScope[e.Scope]; !ok {
			scopes = append(scopes, e.Scope)
		}
		byScope[e.Scope] = append(byScope[e.Scope], e)
	}
	sort.Strings(scopes)

	reg := obs.NewRegistry()
	h := &hists{
		values:  reg.Histogram("epoch_values"),
		bytes:   reg.Histogram("epoch_bytes"),
		latency: reg.Histogram("epoch_latency_seconds"),
	}

	for _, scope := range scopes {
		sr := ScopeReport{Scope: scope}
		for segIdx, seg := range splitSegments(byScope[scope]) {
			sr.Segments = append(sr.Segments, a.auditSegment(scope, segIdx, seg, rep, h))
		}
		rep.Scopes = append(rep.Scopes, sr)
	}

	a.rollup(scopes, byScope, rep)

	rep.EpochValues = h.values.Snapshot()
	rep.EpochBytes = h.bytes.Snapshot()
	if h.sawLatency {
		s := h.latency.Snapshot()
		rep.EpochLatency = &s
	}
	return rep
}

// Audit runs a zero-value Auditor over the events.
func Audit(events []obs.Event) *Report { return (&Auditor{}).Audit(events) }

// AuditTrace reads a JSONL trace (via obs.ReadEvents, so unknown schema
// versions are rejected) and audits it.
func AuditTrace(r io.Reader) (*Report, error) {
	events, err := obs.ReadEvents(r)
	if err != nil {
		return nil, err
	}
	return Audit(events), nil
}

type hists struct {
	values, bytes, latency *obs.Histogram
	sawLatency             bool
}

// splitSegments cuts a scope's event stream at run_end boundaries (the
// run_end closes the segment it belongs to). Trailing events with no
// run_end form one open-ended segment.
func splitSegments(events []obs.Event) [][]obs.Event {
	var out [][]obs.Event
	start := 0
	for i := range events {
		if events[i].Type == obs.EvRunEnd {
			out = append(out, events[start:i+1])
			start = i + 1
		}
	}
	if start < len(events) {
		out = append(out, events[start:])
	}
	return out
}

// epochRec is one epoch's audit state inside a segment.
type epochRec struct {
	id          int64
	ord         int
	step        int64
	detail      string
	n           int
	bytes       int
	end         *obs.Event
	startTS     int64
	endTS       int64
	reportBytes int
	hasReports  bool
	hopBytes    int // radio ledger: sum of net_hop bytes inside the epoch
	retx        int // net_retx events inside the epoch
}

// reportRec tracks the causal tail of one report span.
type reportRec struct {
	ev        *obs.Event
	epochOrd  int
	applied   map[int]bool
	dropped   map[int]bool
	blindDrop bool // a drop without attribute info covers the whole report
}

// dropRec defers the "does this drop excuse an ε miss" decision to the
// end of the segment: a drop inside a report span whose attributes were
// all applied anyway (an ARQ retransmit repaired it) caused no divergence
// and must not excuse anything.
type dropRec struct {
	step  int64
	rr    *reportRec
	attrs []int
}

// epsMiss is one audited out-of-ε reading.
type epsMiss struct {
	epochOrd int
	step     int64
	node     int
	detail   string
}

// auditSegment checks the three invariants over one segment, appending
// violations to rep and returning the segment summary.
func (a *Auditor) auditSegment(scope string, segIdx int, events []obs.Event, rep *Report, h *hists) SegmentReport {
	var epochs []*epochRec
	byID := map[int64]*epochRec{}
	parentOf := map[int64]int64{}
	var reports []*reportRec
	reportBySpan := map[int64]*reportRec{}
	var runEnd *obs.Event
	spannedApplies := false
	watermark := map[int]int64{}
	var failSteps []int64 // steps with recorded node death or unrepaired loss
	var drops []dropRec   // classified after the loop, once applies are known

	violate := func(v Violation) {
		v.Scope, v.Segment = scope, segIdx
		rep.Violations = append(rep.Violations, v)
	}
	startLen := len(rep.Violations)

	epochOrd := func(id int64) int {
		if er := byID[id]; er != nil {
			return er.ord
		}
		return -1
	}

	for i := range events {
		e := &events[i]
		if e.Span != 0 {
			parentOf[e.Span] = e.Parent
		}
		switch e.Type {
		case obs.EvEpochStart:
			er := &epochRec{id: e.Span, ord: len(epochs), step: e.Step, detail: e.Detail, startTS: e.TS}
			epochs = append(epochs, er)
			if e.Span != 0 {
				byID[e.Span] = er
			}
		case obs.EvEpochEnd:
			if er := byID[e.Epoch]; er != nil {
				er.end = e
				er.n = e.N
				er.endTS = e.TS
				if e.Payload != nil {
					er.bytes = e.Payload.Bytes
				}
			}
		case obs.EvReport:
			rr := &reportRec{ev: e, epochOrd: epochOrd(e.Epoch), applied: map[int]bool{}, dropped: map[int]bool{}}
			reports = append(reports, rr)
			if e.Span != 0 {
				reportBySpan[e.Span] = rr
			}
			if er := byID[e.Epoch]; er != nil {
				er.hasReports = true
				if e.Payload != nil {
					er.reportBytes += e.Payload.Bytes
				}
			}
		case obs.EvApply:
			if e.Parent != 0 {
				spannedApplies = true
			}
			if e.Clique >= 0 {
				if last, ok := watermark[e.Clique]; ok && e.Step < last {
					violate(Violation{Invariant: InvDivergence, Epoch: epochOrd(e.Epoch),
						Step: e.Step, Clique: e.Clique, Node: e.Node,
						Detail: fmt.Sprintf("sink apply step %d regresses below clique watermark %d", e.Step, last)})
				} else {
					watermark[e.Clique] = e.Step
				}
			}
			if rr := reportFor(reportBySpan, parentOf, e.Parent); rr != nil {
				for _, attr := range e.Attrs {
					rr.applied[attr] = true
				}
				if e.Step != rr.ev.Step {
					violate(Violation{Invariant: InvDivergence, Epoch: epochOrd(e.Epoch),
						Step: e.Step, Clique: e.Clique, Node: e.Node,
						Detail: fmt.Sprintf("sink applied at step %d a report from step %d", e.Step, rr.ev.Step)})
				}
			}
		case obs.EvDrop:
			rr := reportFor(reportBySpan, parentOf, e.Parent)
			drops = append(drops, dropRec{step: e.Step, rr: rr, attrs: e.Attrs})
			if rr != nil {
				if len(e.Attrs) == 0 {
					rr.blindDrop = true
				}
				for _, attr := range e.Attrs {
					rr.dropped[attr] = true
				}
			}
		case obs.EvHop:
			if er := byID[e.Epoch]; er != nil && e.Payload != nil {
				er.hopBytes += e.Payload.Bytes
			}
		case obs.EvRetx:
			if er := byID[e.Epoch]; er != nil {
				er.retx++
			}
		case obs.EvNodeFailure:
			failSteps = append(failSteps, e.Step)
		case obs.EvRunEnd:
			runEnd = e
		}
	}

	// A drop excuses misses only while unrepaired: if every attribute it
	// lost was applied at the sink anyway, a retransmit repaired it and the
	// replicas never diverged. Drops outside a report span (member-to-root
	// collection traffic, dead-source drops) cannot be proven repaired and
	// stay valid excuses.
	for _, d := range drops {
		repaired := d.rr != nil && len(d.attrs) > 0
		if repaired {
			for _, attr := range d.attrs {
				if !d.rr.applied[attr] {
					repaired = false
					break
				}
			}
		}
		if !repaired {
			failSteps = append(failSteps, d.step)
		}
	}

	// Invariant 1 — ε-bound. Collect audited misses from the epoch audit
	// triples, then reconcile with the run's own count when one exists.
	var misses []epsMiss
	for _, er := range epochs {
		if er.end == nil || er.end.Payload == nil {
			continue
		}
		p := er.end.Payload
		if len(p.Eps) == 0 {
			continue // run audited without an ε contract; nothing to hold it to
		}
		if len(p.Predicted) != len(p.Observed) || len(p.Eps) != len(p.Observed) {
			violate(Violation{Invariant: InvEpsilon, Epoch: er.ord, Step: er.step, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("malformed audit triple: %d predicted, %d observed, %d eps",
					len(p.Predicted), len(p.Observed), len(p.Eps))})
			continue
		}
		for i := range p.Observed {
			if d := math.Abs(p.Predicted[i] - p.Observed[i]); d > p.Eps[i]+epsSlack {
				misses = append(misses, epsMiss{epochOrd: er.ord, step: er.step, node: i,
					detail: fmt.Sprintf("estimate %g misses truth %g by %g > ε %g",
						p.Predicted[i], p.Observed[i], d, p.Eps[i])})
			}
		}
	}
	var declared *RunTotals
	if runEnd != nil && runEnd.Payload != nil {
		declared = &RunTotals{
			Steps: runEnd.Payload.Steps, Values: runEnd.Payload.Values,
			Violations: runEnd.Payload.Violations, Bytes: runEnd.Payload.Bytes,
		}
	}
	switch {
	case declared != nil && len(misses) != declared.Violations:
		// The trace and the run disagree about how often ε was missed —
		// either the payloads were tampered with or the sink lied.
		if declared.Violations == 0 {
			for _, m := range misses {
				violate(Violation{Invariant: InvEpsilon, Epoch: m.epochOrd, Step: m.step,
					Clique: -1, Node: m.node, Detail: m.detail})
			}
		} else {
			v := Violation{Invariant: InvEpsilon, Epoch: -1, Step: -1, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("trace shows %d ε misses but run_end declares %d", len(misses), declared.Violations)}
			if len(misses) > 0 {
				m := misses[0]
				v.Epoch, v.Step, v.Node = m.epochOrd, m.step, m.node
			}
			violate(v)
		}
	case declared == nil:
		// Open-ended segment (simnet/stream): a miss is legitimate only
		// when the trace shows a cause — message loss or a node death at or
		// before the epoch. A miss on a clean network is a broken guarantee.
		for _, m := range misses {
			if !excused(failSteps, m.step) {
				violate(Violation{Invariant: InvEpsilon, Epoch: m.epochOrd, Step: m.step,
					Clique: -1, Node: m.node, Detail: m.detail})
			}
		}
	}

	// Invariant 2 — silent divergence. Only meaningful when the pipeline
	// traces span-linked sink applies at all (a source-only stream trace
	// has reports with no visible sink).
	if spannedApplies {
		for _, rr := range reports {
			if rr.ev.Span == 0 {
				continue
			}
			for _, attr := range rr.ev.Attrs {
				if !rr.applied[attr] && !rr.dropped[attr] && !rr.blindDrop {
					violate(Violation{Invariant: InvDivergence, Epoch: rr.epochOrd, Step: rr.ev.Step,
						Clique: rr.ev.Clique, Node: rr.ev.Node,
						Detail: fmt.Sprintf("reported attribute %d has neither a sink apply nor a recorded drop", attr)})
				}
			}
			for _, attr := range sortedIntKeys(rr.applied) {
				if !containsInt(rr.ev.Attrs, attr) {
					violate(Violation{Invariant: InvDivergence, Epoch: rr.epochOrd, Step: rr.ev.Step,
						Clique: rr.ev.Clique, Node: rr.ev.Node,
						Detail: fmt.Sprintf("sink applied attribute %d that was never reported", attr)})
				}
			}
		}
	}

	// Invariant 3 — byte accounting. Each ledger is checked against its
	// own layer: the protocol ledger (epoch Bytes vs the report payloads
	// inside it) and the radio ledger (epoch LinkBytes vs the net_hop
	// bytes inside it). Invariant 4 does the same for retransmissions.
	sumBytes, sumN := 0, 0
	for _, er := range epochs {
		if er.end == nil {
			continue
		}
		sumBytes += er.bytes
		sumN += er.n
		if (runEnd != nil || er.bytes != 0) && er.hasReports && er.reportBytes != er.bytes {
			violate(Violation{Invariant: InvBytes, Epoch: er.ord, Step: er.step, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("report events carry %d bytes but the epoch accounts %d", er.reportBytes, er.bytes)})
		}
		if p := er.end.Payload; p != nil {
			if p.LinkBytes != er.hopBytes {
				violate(Violation{Invariant: InvBytes, Epoch: er.ord, Step: er.step, Clique: -1, Node: -1,
					Detail: fmt.Sprintf("net_hop events carry %d link bytes but the epoch declares %d", er.hopBytes, p.LinkBytes)})
			}
			if p.Retx != er.retx {
				violate(Violation{Invariant: InvRetx, Epoch: er.ord, Step: er.step, Clique: -1, Node: -1,
					Detail: fmt.Sprintf("trace shows %d retransmissions but the epoch declares %d", er.retx, p.Retx)})
			}
		}
	}
	if declared != nil {
		if len(epochs) != declared.Steps {
			violate(Violation{Invariant: InvBytes, Epoch: -1, Step: -1, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("trace has %d epochs but run_end declares %d steps", len(epochs), declared.Steps)})
		}
		if sumN != declared.Values {
			violate(Violation{Invariant: InvBytes, Epoch: -1, Step: -1, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("epochs report %d values but run_end declares %d", sumN, declared.Values)})
		}
		if sumBytes != declared.Bytes {
			violate(Violation{Invariant: InvBytes, Epoch: -1, Step: -1, Clique: -1, Node: -1,
				Detail: fmt.Sprintf("epochs account %d bytes but run_end declares %d", sumBytes, declared.Bytes)})
		}
	}

	// Histograms + segment summary.
	for _, er := range epochs {
		if er.end == nil {
			continue
		}
		h.values.Observe(float64(er.n))
		h.bytes.Observe(float64(er.bytes))
		if er.startTS != 0 && er.endTS != 0 {
			h.latency.Observe(float64(er.endTS-er.startTS) / 1e9)
			h.sawLatency = true
		}
	}
	rep.Epochs += len(epochs)
	rep.PayloadBytes += sumBytes

	seg := SegmentReport{
		Epochs: len(epochs), Values: sumN, Bytes: sumBytes,
		EpsilonMiss: len(misses), Declared: declared,
	}
	if runEnd != nil && runEnd.Detail != "" {
		seg.Scheme = runEnd.Detail
	} else if len(epochs) > 0 {
		seg.Scheme = epochs[0].detail
	}
	for i := startLen; i < len(rep.Violations); i++ {
		seg.ViolationIdx = append(seg.ViolationIdx, i)
	}
	return seg
}

// reportFor walks the span parent chain from parent up to the report span
// that caused it (nil when uncaused). The walk is bounded to survive
// corrupted parent cycles.
func reportFor(reports map[int64]*reportRec, parentOf map[int64]int64, parent int64) *reportRec {
	for hops := 0; parent != 0 && hops < 64; hops++ {
		if rr, ok := reports[parent]; ok {
			return rr
		}
		parent = parentOf[parent]
	}
	return nil
}

// excused reports whether a recorded loss or death at or before step
// explains an ε miss there.
func excused(failSteps []int64, step int64) bool {
	for _, s := range failSteps {
		if s <= step {
			return true
		}
	}
	return false
}

func sortedIntKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// rollup builds the per-node / per-clique / per-link communication and
// energy tables. Byte totals stay integers until the final energy
// multiplication, so summation order cannot perturb the floats.
func (a *Auditor) rollup(scopes []string, byScope map[string][]obs.Event, rep *Report) {
	radio := simnet.DefaultRadio()
	if a.Radio != nil {
		radio = *a.Radio
	}
	nodes := map[int]*NodeStats{}
	cliques := map[int]*CliqueStats{}
	type linkKey struct{ from, to int }
	links := map[linkKey]*LinkStats{}

	node := func(i int) *NodeStats {
		if n, ok := nodes[i]; ok {
			return n
		}
		n := &NodeStats{Node: i}
		nodes[i] = n
		return n
	}
	clique := func(i int) *CliqueStats {
		if c, ok := cliques[i]; ok {
			return c
		}
		c := &CliqueStats{Clique: i}
		cliques[i] = c
		return c
	}

	for _, scope := range scopes {
		for _, e := range byScope[scope] {
			switch e.Type {
			case obs.EvHop:
				if e.Payload == nil {
					continue
				}
				tx := node(e.Payload.From)
				tx.TxMessages++
				tx.TxBytes += e.Payload.Bytes
				node(e.Payload.To).RxBytes += e.Payload.Bytes
				rep.LinkBytes += e.Payload.Bytes
				k := linkKey{e.Payload.From, e.Payload.To}
				l, ok := links[k]
				if !ok {
					l = &LinkStats{From: k.from, To: k.to}
					links[k] = l
				}
				l.Messages++
				l.Bytes += e.Payload.Bytes
			case obs.EvReport:
				if e.Node >= 0 {
					n := node(e.Node)
					n.Reports++
					n.Values += len(e.Attrs)
				}
				if e.Clique >= 0 {
					c := clique(e.Clique)
					c.Reports++
					c.Values += len(e.Attrs)
					if e.Payload != nil {
						c.Bytes += e.Payload.Bytes
					}
				}
			case obs.EvSuppress:
				if e.Node >= 0 {
					node(e.Node).Suppressed += len(e.Attrs)
				}
				if e.Clique >= 0 {
					clique(e.Clique).Suppressed += len(e.Attrs)
				}
			case obs.EvApply:
				if e.Clique >= 0 {
					clique(e.Clique).Applied += len(e.Attrs)
				}
			case obs.EvDrop:
				if e.Clique >= 0 {
					clique(e.Clique).Dropped += len(e.Attrs)
				}
			case obs.EvPull:
				if e.Node >= 0 {
					node(e.Node).Pulls++
				}
			case obs.EvRetx:
				if e.Node >= 0 {
					node(e.Node).Retx++
				}
			case obs.EvAck:
				if e.Node >= 0 {
					node(e.Node).Acks++
				}
			case obs.EvSuspect:
				if e.Node >= 0 {
					node(e.Node).Suspected++
				}
			case obs.EvNodeFailure:
				if e.Node >= 0 {
					node(e.Node).Died = true
				}
			}
		}
	}

	totalTx, totalRx := 0, 0
	for _, i := range sortedNodeKeys(nodes) {
		n := nodes[i]
		n.EnergyJ = float64(n.TxBytes)*radio.TxPerByte + float64(n.RxBytes)*radio.RxPerByte
		totalTx += n.TxBytes
		totalRx += n.RxBytes
		rep.Nodes = append(rep.Nodes, *n)
	}
	rep.TotalEnergyJ = float64(totalTx)*radio.TxPerByte + float64(totalRx)*radio.RxPerByte
	for _, i := range sortedCliqueKeys(cliques) {
		rep.Cliques = append(rep.Cliques, *cliques[i])
	}
	linkKeys := make([]linkKey, 0, len(links))
	for k := range links {
		linkKeys = append(linkKeys, k)
	}
	sort.Slice(linkKeys, func(i, j int) bool {
		if linkKeys[i].from != linkKeys[j].from {
			return linkKeys[i].from < linkKeys[j].from
		}
		return linkKeys[i].to < linkKeys[j].to
	})
	for _, k := range linkKeys {
		rep.Links = append(rep.Links, *links[k])
	}
}

func sortedNodeKeys(m map[int]*NodeStats) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedCliqueKeys(m map[int]*CliqueStats) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
