package audit

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
	"ken/internal/simnet"
	"ken/internal/trace"
)

// labData returns (train, test, eps) for the first n Lab nodes.
func labData(t testing.TB, n, trainN, testN int) (train, test [][]float64, eps []float64) {
	t.Helper()
	tr, err := trace.GenerateLab(42, trainN+testN)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	all := make([][]float64, len(rows))
	for i, r := range rows {
		all[i] = r[:n]
	}
	eps = make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	return all[:trainN], all[trainN:], eps
}

func pairPartition(n int) *cliques.Partition {
	p := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
		} else {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	return p
}

// runTraced builds a scheme against a fresh Observer (so scheme-side
// report/apply events share the run's trace), replays it, and returns the
// decoded events plus the Result the run itself produced.
func runTraced(t *testing.T, build func(ob *obs.Observer) (core.Scheme, error), test [][]float64, eps []float64, scope string) ([]obs.Event, *core.Result) {
	t.Helper()
	var buf bytes.Buffer
	ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(&buf)}
	s, err := build(ob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), s, test, core.RunOptions{Eps: eps, Observer: ob, Scope: scope})
	if err != nil {
		t.Fatal(err)
	}
	if err := ob.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

// buildKen returns a Ken builder over pair cliques.
func buildKen(train [][]float64, eps []float64, n int) func(ob *obs.Observer) (core.Scheme, error) {
	return func(ob *obs.Observer) (core.Scheme, error) {
		return core.NewKen(core.KenConfig{Partition: pairPartition(n), Train: train, Eps: eps,
			FitCfg: model.FitConfig{Period: 24}, Obs: ob})
	}
}

// TestAuditCleanKenRun is the happy path: a clean deterministic Ken replay
// audits green, and the report's totals agree with the run's own Result.
func TestAuditCleanKenRun(t *testing.T) {
	const n, trainN, testN = 6, 100, 150
	train, test, eps := labData(t, n, trainN, testN)
	events, res := runTraced(t, buildKen(train, eps, n), test, eps, "run")

	rep := Audit(events)
	if !rep.Clean() {
		t.Fatalf("clean run reported violations: %v", rep.Violations)
	}
	if rep.Epochs != testN {
		t.Fatalf("Epochs = %d, want %d", rep.Epochs, testN)
	}
	if rep.PayloadBytes != res.WireBytes {
		t.Fatalf("PayloadBytes = %d, want WireBytes %d", rep.PayloadBytes, res.WireBytes)
	}
	if rep.EpochValues.Count != int64(testN) {
		t.Fatalf("EpochValues.Count = %d, want %d", rep.EpochValues.Count, testN)
	}
	if rep.EpochLatency != nil {
		t.Fatal("latency histogram present without wall-clock stamps")
	}
	if len(rep.Scopes) != 1 || rep.Scopes[0].Scope != "run" || len(rep.Scopes[0].Segments) != 1 {
		t.Fatalf("unexpected scope layout: %+v", rep.Scopes)
	}
	seg := rep.Scopes[0].Segments[0]
	if seg.Declared == nil || seg.Declared.Values != res.ValuesReported || seg.Declared.Bytes != res.WireBytes {
		t.Fatalf("declared totals %+v do not match result %d values / %d bytes",
			seg.Declared, res.ValuesReported, res.WireBytes)
	}
	if seg.Scheme != res.Scheme {
		t.Fatalf("segment scheme %q, want %q", seg.Scheme, res.Scheme)
	}
}

// TestAuditLossyRunStaysConsistent checks the reconciliation rule: a lossy
// run legitimately misses ε, but because it declares those misses in
// run_end and its drops are on the record, the audit stays green.
func TestAuditLossyRunStaysConsistent(t *testing.T) {
	const n, trainN, testN = 6, 100, 200
	train, test, eps := labData(t, n, trainN, testN)
	events, res := runTraced(t, func(ob *obs.Observer) (core.Scheme, error) {
		return core.NewLossyKen(
			core.KenConfig{Partition: pairPartition(n), Train: train, Eps: eps,
				FitCfg: model.FitConfig{Period: 24}, Obs: ob},
			core.LossyConfig{LossRate: 0.3, HeartbeatEvery: 24, Seed: 9})
	}, test, eps, "lossy")

	rep := Audit(events)
	if !rep.Clean() {
		t.Fatalf("consistent lossy run reported violations: %v", rep.Violations)
	}
	seg := rep.Scopes[0].Segments[0]
	if res.BoundViolations == 0 || seg.EpsilonMiss != res.BoundViolations {
		t.Fatalf("audited %d ε misses, run declared %d (want equal and > 0)",
			seg.EpsilonMiss, res.BoundViolations)
	}
}

// TestAuditCatchesInjectedEpsilonMiss corrupts one epoch audit payload —
// the sink claims a value it could not have held — and expects the audit
// to fail naming the epoch, node and invariant.
func TestAuditCatchesInjectedEpsilonMiss(t *testing.T) {
	const n, trainN, testN = 6, 100, 150
	train, test, eps := labData(t, n, trainN, testN)
	events, _ := runTraced(t, buildKen(train, eps, n), test, eps, "run")

	const badEpoch, badNode = 40, 3
	tampered := 0
	for i := range events {
		if events[i].Type == obs.EvEpochEnd && events[i].Step == badEpoch && events[i].Payload != nil {
			events[i].Payload.Observed[badNode] += 100 // far outside ε = 0.5
			tampered++
		}
	}
	if tampered != 1 {
		t.Fatalf("tampered %d epoch_end events, want 1", tampered)
	}

	rep := Audit(events)
	if rep.Clean() {
		t.Fatal("audit passed a trace with an injected out-of-ε value")
	}
	v := rep.Violations[0]
	if v.Invariant != InvEpsilon || v.Epoch != badEpoch || v.Step != badEpoch || v.Node != badNode {
		t.Fatalf("violation %+v does not name invariant %s epoch %d node %d", v, InvEpsilon, badEpoch, badNode)
	}
}

// TestAuditCatchesTamperedRunTotals flips the run_end byte total and
// expects the byte-accounting invariant to fire.
func TestAuditCatchesTamperedRunTotals(t *testing.T) {
	const n, trainN, testN = 4, 100, 100
	train, test, eps := labData(t, n, trainN, testN)
	events, _ := runTraced(t, buildKen(train, eps, n), test, eps, "run")

	for i := range events {
		if events[i].Type == obs.EvRunEnd && events[i].Payload != nil {
			events[i].Payload.Bytes++
		}
	}
	rep := Audit(events)
	if rep.Clean() {
		t.Fatal("audit passed a trace whose run_end byte total was tampered")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == InvBytes && strings.Contains(v.Detail, "run_end declares") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no byte-accounting violation in %v", rep.Violations)
	}
}

// TestAuditCatchesSilentDivergence removes one sink_apply event — a value
// the source reported now reaches no replica and no drop explains it —
// and expects the divergence invariant to fire.
func TestAuditCatchesSilentDivergence(t *testing.T) {
	const n, trainN, testN = 6, 100, 150
	train, test, eps := labData(t, n, trainN, testN)
	events, _ := runTraced(t, buildKen(train, eps, n), test, eps, "run")

	cut := -1
	for i := range events {
		if events[i].Type == obs.EvApply && events[i].Parent != 0 {
			cut = i
		}
	}
	if cut < 0 {
		t.Fatal("trace has no span-linked sink_apply events")
	}
	removedStep := events[cut].Step
	events = append(events[:cut], events[cut+1:]...)

	rep := Audit(events)
	if rep.Clean() {
		t.Fatal("audit passed a trace with a silently un-applied report")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == InvDivergence && v.Step == removedStep {
			found = true
		}
	}
	if !found {
		t.Fatalf("no divergence violation at step %d in %v", removedStep, rep.Violations)
	}
}

// TestAuditApplyWatermarkRegression feeds a synthetic trace where a sink
// apply goes back in time for its clique.
func TestAuditApplyWatermarkRegression(t *testing.T) {
	events := []obs.Event{
		{Type: obs.EvApply, Step: 5, Clique: 0, Node: -1, Attrs: []int{0}, N: 1},
		{Type: obs.EvApply, Step: 3, Clique: 0, Node: -1, Attrs: []int{0}, N: 1},
	}
	rep := Audit(events)
	if len(rep.Violations) != 1 || rep.Violations[0].Invariant != InvDivergence {
		t.Fatalf("want one divergence violation, got %v", rep.Violations)
	}
	if !strings.Contains(rep.Violations[0].Detail, "watermark") {
		t.Fatalf("violation does not name the watermark: %v", rep.Violations[0])
	}
}

// gardenNet builds an 11-node garden network over a uniform topology.
func gardenNet(t *testing.T, radio simnet.Radio, seed int64) (*simnet.Network, [][]float64, [][]float64, []float64) {
	t.Helper()
	tr, err := trace.GenerateGarden(21, 300)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Deployment.N()
	top, err := network.Uniform(n, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := simnet.New(top, radio, seed)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	return net, rows[:100], rows[100:], eps
}

// runSimnetTraced drives a DistributedKen over the rows under a tracer.
func runSimnetTraced(t *testing.T, radio simnet.Radio, seed int64, epochs int) []obs.Event {
	t.Helper()
	net, train, test, eps := gardenNet(t, radio, seed)
	var buf bytes.Buffer
	ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(&buf)}
	net.Instrument(ob)
	prog, err := simnet.NewDistributedKen(net, pairPartition(len(eps)), train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if epochs > len(test) {
		epochs = len(test)
	}
	for _, row := range test[:epochs] {
		if _, err := prog.Epoch(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := ob.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// TestAuditSimnetRollupsAndEnergy audits a clean distributed Ken run and
// checks the per-node / per-link communication and energy rollups.
func TestAuditSimnetRollupsAndEnergy(t *testing.T) {
	events := runSimnetTraced(t, simnet.DefaultRadio(), 1, 60)
	rep := Audit(events)
	if !rep.Clean() {
		t.Fatalf("clean simnet run reported violations: %v", rep.Violations)
	}
	if len(rep.Nodes) == 0 || len(rep.Links) == 0 {
		t.Fatalf("missing rollups: %d nodes, %d links", len(rep.Nodes), len(rep.Links))
	}
	if rep.LinkBytes == 0 {
		t.Fatal("no link bytes accounted")
	}
	if rep.TotalEnergyJ <= 0 {
		t.Fatalf("TotalEnergyJ = %g, want > 0", rep.TotalEnergyJ)
	}
	var sum float64
	txBytes := 0
	for _, n := range rep.Nodes {
		sum += n.EnergyJ
		txBytes += n.TxBytes
	}
	if diff := sum - rep.TotalEnergyJ; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("per-node energy sums to %g, total says %g", sum, rep.TotalEnergyJ)
	}
	if txBytes != rep.LinkBytes {
		t.Fatalf("per-node tx bytes %d != link bytes %d", txBytes, rep.LinkBytes)
	}
}

// TestAuditSimnetLossExcusesMisses audits a lossy distributed run: ε
// misses happen, but every one is explained by an on-record drop, so the
// audit stays green while still counting the misses.
func TestAuditSimnetLossExcusesMisses(t *testing.T) {
	radio := simnet.DefaultRadio()
	radio.LossRate = 0.3
	events := runSimnetTraced(t, radio, 2, 120)
	rep := Audit(events)
	if !rep.Clean() {
		t.Fatalf("explained lossy run reported violations: %v", rep.Violations)
	}
	misses := 0
	for _, sr := range rep.Scopes {
		for _, seg := range sr.Segments {
			misses += seg.EpsilonMiss
		}
	}
	if misses == 0 {
		t.Fatal("expected ε misses under 30% loss (test would not exercise the excuse path)")
	}
}

// TestAuditScopeInterleavingInvariance simulates a parallel trace: the
// same two runs, written scope-after-scope versus interleaved event by
// event, must audit to byte-identical JSON and markdown reports.
func TestAuditScopeInterleavingInvariance(t *testing.T) {
	const n, trainN, testN = 4, 100, 80
	train, test, eps := labData(t, n, trainN, testN)

	var buf bytes.Buffer
	ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(&buf)}
	for _, scope := range []string{"bench/0", "bench/1"} {
		s, err := buildKen(train, eps, n)(ob)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Run(context.Background(), s, test, core.RunOptions{Eps: eps, Observer: ob, Scope: scope}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ob.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	sequential, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Interleave the two scopes' events while preserving per-scope order —
	// exactly what concurrent cells sharing one trace file produce.
	var a, b, interleaved []obs.Event
	for _, e := range sequential {
		if e.Scope == "bench/0" {
			a = append(a, e)
		} else {
			b = append(b, e)
		}
	}
	for len(a) > 0 || len(b) > 0 {
		if len(a) > 0 {
			interleaved = append(interleaved, a[0])
			a = a[1:]
		}
		if len(b) > 0 {
			interleaved = append(interleaved, b[0])
			b = b[1:]
		}
	}

	render := func(events []obs.Event) (string, string) {
		rep := Audit(events)
		var j, m bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteMarkdown(&m); err != nil {
			t.Fatal(err)
		}
		return j.String(), m.String()
	}
	j1, m1 := render(sequential)
	j2, m2 := render(interleaved)
	if j1 != j2 {
		t.Fatal("JSON report differs between sequential and interleaved event order")
	}
	if m1 != m2 {
		t.Fatal("markdown report differs between sequential and interleaved event order")
	}
	if !strings.Contains(m1, "PASS") {
		t.Fatalf("markdown does not carry the verdict:\n%s", m1)
	}
}

// TestAuditTraceRejectsUnknownSchema keeps the version gate: a trace from
// a future build must be rejected, not misread.
func TestAuditTraceRejectsUnknownSchema(t *testing.T) {
	in := strings.NewReader(`{"kind":"ken-trace","schema":99}` + "\n")
	if _, err := AuditTrace(in); err == nil {
		t.Fatal("AuditTrace accepted an unknown schema version")
	}
}
