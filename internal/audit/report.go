package audit

import (
	"encoding/json"
	"fmt"
	"io"

	"ken/internal/obs"
)

// WriteJSON renders the report as indented JSON, stable across runs.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMarkdown renders the human-readable summary.
func (r *Report) WriteMarkdown(w io.Writer) error {
	p := &printer{w: w}
	p.f("# kenaudit report\n\n")
	verdict := "PASS — all invariants hold"
	if !r.Clean() {
		verdict = fmt.Sprintf("FAIL — %d invariant violation(s)", len(r.Violations))
	}
	p.f("**%s** over %d events, %d epochs.\n\n", verdict, r.Events, r.Epochs)

	if len(r.Violations) > 0 {
		p.f("## Violations\n\n")
		for _, v := range r.Violations {
			p.f("- `%s`\n", v.String())
		}
		p.f("\n")
	}

	p.f("## Runs\n\n")
	p.f("| scope | segment | scheme | epochs | values | bytes | ε misses | declared misses |\n")
	p.f("|---|---:|---|---:|---:|---:|---:|---:|\n")
	for _, sr := range r.Scopes {
		for i, seg := range sr.Segments {
			decl := "—"
			if seg.Declared != nil {
				decl = fmt.Sprintf("%d", seg.Declared.Violations)
			}
			p.f("| %s | %d | %s | %d | %d | %d | %d | %s |\n",
				mdScope(sr.Scope), i, seg.Scheme, seg.Epochs, seg.Values, seg.Bytes, seg.EpsilonMiss, decl)
		}
	}
	p.f("\n")

	p.f("## Epoch profile\n\n")
	p.f("| histogram | count | sum | min | p50 | p90 | p99 | max |\n")
	p.f("|---|---:|---:|---:|---:|---:|---:|---:|\n")
	p.hist("values/epoch", r.EpochValues)
	p.hist("bytes/epoch", r.EpochBytes)
	if r.EpochLatency != nil {
		p.hist("latency (s)", *r.EpochLatency)
	}
	p.f("\n")

	if len(r.Nodes) > 0 {
		p.f("## Nodes\n\n")
		p.f("| node | tx msgs | tx bytes | rx bytes | reports | values | suppressed | pulls | retx | acks | energy (J) |\n")
		p.f("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, n := range r.Nodes {
			name := fmt.Sprintf("%d", n.Node)
			if n.Died {
				name += " †"
			}
			p.f("| %s | %d | %d | %d | %d | %d | %d | %d | %d | %d | %.6g |\n",
				name, n.TxMessages, n.TxBytes, n.RxBytes, n.Reports, n.Values, n.Suppressed, n.Pulls, n.Retx, n.Acks, n.EnergyJ)
		}
		p.f("\n")
	}

	if len(r.Cliques) > 0 {
		p.f("## Cliques\n\n")
		p.f("| clique | reports | values | suppressed | applied | dropped | bytes |\n")
		p.f("|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, c := range r.Cliques {
			p.f("| %d | %d | %d | %d | %d | %d | %d |\n",
				c.Clique, c.Reports, c.Values, c.Suppressed, c.Applied, c.Dropped, c.Bytes)
		}
		p.f("\n")
	}

	if len(r.Links) > 0 {
		p.f("## Links\n\n")
		p.f("| link | messages | bytes |\n")
		p.f("|---|---:|---:|\n")
		for _, l := range r.Links {
			p.f("| %d → %d | %d | %d |\n", l.From, l.To, l.Messages, l.Bytes)
		}
		p.f("\n")
	}

	p.f("## Totals\n\n")
	p.f("- payload bytes (epoch accounting): %d\n", r.PayloadBytes)
	p.f("- link bytes (radio, incl. overhead): %d\n", r.LinkBytes)
	p.f("- estimated radio energy: %.6g J\n", r.TotalEnergyJ)
	return p.err
}

// mdScope renders a scope name for a table cell ("" becomes the root marker).
func mdScope(s string) string {
	if s == "" {
		return "(root)"
	}
	return s
}

// printer accumulates the first write error so table code stays linear.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) f(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) hist(name string, s obs.HistSnapshot) {
	p.f("| %s | %d | %.6g | %.6g | %.6g | %.6g | %.6g | %.6g |\n",
		name, s.Count, s.Sum, s.Min, s.P50, s.P90, s.P99, s.Max)
}
