package audit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"ken/internal/obs"
	"ken/internal/simnet"
)

// reportBytes renders a report the way kenaudit does (JSON + markdown),
// so "byte-identical" covers everything a consumer can observe.
func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeTrace renders events back to schema-2 JSONL, as a Tracer would.
func encodeTrace(t *testing.T, events []obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	hdr, err := json.Marshal(obs.TraceHeader{Kind: obs.TraceKind, Schema: obs.TraceSchema})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	enc := json.NewEncoder(&buf)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestStreamingMatchesBatchAudit: the three ways to drive the auditor —
// Audit over a slice, Feed/Finish event by event, AuditTrace over the
// encoded JSONL — must produce byte-identical reports, on clean, lossy
// and tampered traces alike.
func TestStreamingMatchesBatchAudit(t *testing.T) {
	n := 4
	train, test, eps := labData(t, n, 200, 60)
	kenEvents, _ := runTraced(t, buildKen(train, eps, n), test, eps, "run")

	tampered := make([]obs.Event, len(kenEvents))
	copy(tampered, kenEvents)
	for i := range tampered {
		e := &tampered[i]
		if e.Type == obs.EvEpochEnd && e.Step == 30 && e.Payload != nil && len(e.Payload.Observed) > 0 {
			p := *e.Payload
			obsCopy := append([]float64(nil), p.Observed...)
			obsCopy[0] += 100 * (eps[0] + 1)
			p.Observed = obsCopy
			e.Payload = &p
			break
		}
	}

	lossy := simnet.DefaultRadio()
	lossy.LossRate = 0.3
	cases := []struct {
		name   string
		events []obs.Event
	}{
		{"ken-clean", kenEvents},
		{"ken-tampered", tampered},
		{"simnet-clean", runSimnetTraced(t, simnet.DefaultRadio(), 1, 60)},
		{"simnet-lossy", runSimnetTraced(t, lossy, 2, 120)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batch := reportBytes(t, Audit(tc.events))

			var a Auditor
			for _, e := range tc.events {
				a.Feed(e)
			}
			streamed := reportBytes(t, a.Finish())
			if !bytes.Equal(batch, streamed) {
				t.Fatal("Feed/Finish report differs from batch Audit report")
			}

			rep, err := AuditTrace(bytes.NewReader(encodeTrace(t, tc.events)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(batch, reportBytes(t, rep)) {
				t.Fatal("AuditTrace report differs from batch Audit report")
			}
		})
	}
}

// TestAuditorResetsBetweenTraces: Finish must leave the auditor ready for
// an unrelated trace with no state bleeding across.
func TestAuditorResetsBetweenTraces(t *testing.T) {
	events := runSimnetTraced(t, simnet.DefaultRadio(), 1, 30)
	want := reportBytes(t, Audit(events))
	var a Auditor
	a.Feed(obs.Event{Type: obs.EvReport, Scope: "junk", Step: 9, Clique: -1, Node: 0})
	a.Finish()
	for _, e := range events {
		a.Feed(e)
	}
	if !bytes.Equal(want, reportBytes(t, a.Finish())) {
		t.Fatal("second trace's report contaminated by the first")
	}
}

// feedSyntheticEpochs streams count single-report epochs (start, report,
// apply, end with a full audit triple) into the auditor. Each epoch
// carries ~4 events and fresh span ids, so an auditor that retained
// per-epoch state would grow without bound.
func feedSyntheticEpochs(a *Auditor, count int, from int) {
	for i := from; i < from+count; i++ {
		sid := int64(i)*8 + 1
		step := int64(i)
		a.Feed(obs.Event{Type: obs.EvEpochStart, Span: sid, Step: step, Clique: 0, Node: -1, Scope: "mem"})
		a.Feed(obs.Event{Type: obs.EvReport, Span: sid + 1, Parent: sid, Epoch: sid, Step: step,
			Clique: 0, Node: 1, Scope: "mem", Attrs: []int{0, 1, 2}, Values: []float64{1, 2, 3},
			Payload: &obs.Payload{Bytes: 64}})
		a.Feed(obs.Event{Type: obs.EvApply, Span: sid + 2, Parent: sid + 1, Epoch: sid, Step: step,
			Clique: 0, Node: -1, Scope: "mem", Attrs: []int{0, 1, 2}})
		a.Feed(obs.Event{Type: obs.EvEpochEnd, Epoch: sid, Step: step, Clique: 0, Node: -1,
			Scope: "mem", N: 3, Payload: &obs.Payload{
				Bytes:     64,
				Predicted: []float64{1, 2, 3},
				Observed:  []float64{1, 2, 3},
				Eps:       []float64{0.5, 0.5, 0.5},
			}})
	}
}

// TestAuditBoundedMemory is the constant-memory contract: a trace of
// 120k epochs (~480k events, ~100 MB if retained) must audit with the
// heap staying under a ceiling a few orders of magnitude smaller,
// because per-epoch state is evicted as each epoch ends.
func TestAuditBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		epochs  = 120_000
		chunk   = 10_000
		ceiling = 32 << 20 // bytes of HeapAlloc after GC
	)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	var a Auditor
	var peak uint64
	for done := 0; done < epochs; done += chunk {
		feedSyntheticEpochs(&a, chunk, done)
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	rep := a.Finish()
	if !rep.Clean() {
		t.Fatalf("synthetic trace reported violations: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
	if rep.Epochs != epochs {
		t.Fatalf("audited %d epochs, want %d", rep.Epochs, epochs)
	}
	if rep.Events != epochs*4 {
		t.Fatalf("audited %d events, want %d", rep.Events, epochs*4)
	}
	if peak > base+ceiling {
		t.Fatalf("peak heap %d bytes (baseline %d) exceeds the %d-byte ceiling — per-epoch state is not being evicted",
			peak, base, uint64(ceiling))
	}
	t.Logf("peak heap over %s epochs: %.1f MiB (baseline %.1f MiB)",
		fmtCount(epochs), float64(peak)/(1<<20), float64(base)/(1<<20))
}

func fmtCount(n int) string {
	if n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
