package mat

import (
	"fmt"
	"math"
)

// Cholesky is the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ. It supports solves against vectors and
// matrices, inversion, log-determinant, and rank-1 up/down-dates —
// everything Gaussian conditioning needs without ever forming an
// explicit inverse.
type Cholesky struct {
	n     int
	l     *Dense    // lower triangular, upper part zero
	work  []float64 // rank-1 update scratch, sized to the workspace order
	valid bool      // false until a factorisation succeeds; failure poisons
}

// NewCholesky factorises the symmetric matrix a. Only the lower triangle of
// a is read. If a is merely positive semi-definite (common for covariance
// matrices of near-deterministic attributes), a tiny diagonal jitter
// proportional to the matrix scale is added before failing outright.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrDimension, a.rows, a.cols)
	}
	c := NewCholeskyWorkspace(a.rows)
	if err := c.Factorize(a); err != nil {
		return nil, err
	}
	return c, nil
}

// NewCholeskyWorkspace returns a Cholesky sized to factorise matrices of
// order up to n via Factorize, reusing one backing array across calls. The
// workspace starts invalid: solves error with ErrSingular until the first
// successful Factorize (or Reset for incremental Extend-driven builds).
func NewCholeskyWorkspace(n int) *Cholesky {
	return &Cholesky{n: n, l: NewDense(n, n), work: make([]float64, n)}
}

// choleskyJitter is the escalating diagonal jitter ladder tried when the
// plain factorisation fails: covariance matrices assembled from finite
// samples are often PSD-but-not-PD.
var choleskyJitter = [...]float64{1e-12, 1e-10, 1e-8}

// errNotPD is the terminal Factorize failure; a package-level value so the
// hot path returns it without allocating.
var errNotPD = fmt.Errorf("%w: matrix not positive definite", ErrSingular)

// errFactorInvalid is returned by solves against a workspace whose last
// factorisation failed (or never ran): the factor holds partial writes from
// the last jitter rung and must not be consulted.
var errFactorInvalid = fmt.Errorf("%w: factorization invalid (failed or not yet run)", ErrSingular)

// Factorize refactorises c against the symmetric matrix a, reusing c's
// backing storage; a must fit within the workspace's construction order.
// The factorisation (jitter ladder included) is bit-identical with
// NewCholesky's.
//
// A failed factorisation leaves the workspace invalid: the factor buffer
// holds partial writes from the last jitter rung, so every solve returns
// ErrSingular until the next successful Factorize.
//
//ken:hotpath refactorises into the preallocated factor
func (c *Cholesky) Factorize(a *Dense) error {
	if a.rows != a.cols {
		return fmt.Errorf("%w: cholesky of %dx%d", ErrDimension, a.rows, a.cols)
	}
	n := a.rows
	if n*n > cap(c.l.data) {
		return fmt.Errorf("%w: cholesky order %d exceeds workspace capacity %d", ErrDimension, n, cap(c.l.data))
	}
	c.n = n
	c.valid = false
	c.l.reshape(n, n)
	if tryCholeskyInto(c.l, a, 0) {
		c.valid = true
		return nil
	}
	scale := a.MaxAbs()
	if isZero(scale) {
		scale = 1
	}
	for _, eps := range choleskyJitter {
		if tryCholeskyInto(c.l, a, eps*scale) {
			c.valid = true
			return nil
		}
	}
	return errNotPD
}

// Reset makes c the (trivially valid) factor of the empty 0×0 matrix, the
// seed state for incremental factor construction via Extend.
//
//ken:hotpath resets within preallocated capacity
func (c *Cholesky) Reset() {
	c.n = 0
	c.l.reshape(0, 0)
	c.valid = true
}

// tryCholeskyInto attempts the factorisation of a + jitter·I into l, which
// must match a's order. l is zeroed at entry: a failed earlier attempt
// leaves partial writes behind. Non-finite pivots are rejected: a NaN
// anywhere and a +Inf on the diagonal both poison every later column, and
// math.Sqrt(+Inf) would otherwise succeed and propagate silently.
func tryCholeskyInto(l, a *Dense, jitter float64) bool {
	n := a.rows
	clear(l.data)
	for j := 0; j < n; j++ {
		d := a.At(j, j) + jitter
		for k := 0; k < j; k++ {
			ljk := l.data[j*n+k]
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return false
		}
		ljj := math.Sqrt(d)
		l.data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			l.data[i*n+j] = s / ljj
		}
	}
	return true
}

// Size returns the dimension n.
func (c *Cholesky) Size() int { return c.n }

// Valid reports whether the workspace holds a usable factor (the last
// Factorize/Update/Downdate/Extend succeeded).
func (c *Cholesky) Valid() bool { return c.valid }

// L returns a copy of the lower-triangular factor, or nil when the factor
// is invalid (the last factorisation failed).
func (c *Cholesky) L() *Dense {
	if !c.valid {
		return nil
	}
	return c.l.Clone()
}

// SolveVec solves A·x = b and returns x.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if !c.valid {
		return nil, errFactorInvalid
	}
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: solve len %d, want %d", ErrDimension, len(b), c.n)
	}
	y := make([]float64, c.n)
	copy(y, b)
	c.forwardSolve(y)
	c.backSolve(y)
	return y, nil
}

// SolveVecInPlace solves A·x = b, overwriting b with x. Bit-identical with
// SolveVec.
//
//ken:hotpath solves in place against the caller's buffer
func (c *Cholesky) SolveVecInPlace(b []float64) error {
	if !c.valid {
		return errFactorInvalid
	}
	if len(b) != c.n {
		return fmt.Errorf("%w: solve len %d, want %d", ErrDimension, len(b), c.n)
	}
	c.forwardSolve(b)
	c.backSolve(b)
	return nil
}

// Solve solves A·X = B column-by-column and returns X.
func (c *Cholesky) Solve(b *Dense) (*Dense, error) {
	if !c.valid {
		return nil, errFactorInvalid
	}
	if b.rows != c.n {
		return nil, fmt.Errorf("%w: solve %dx%d against order %d", ErrDimension, b.rows, b.cols, c.n)
	}
	out := NewDense(c.n, b.cols)
	col := make([]float64, c.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		c.forwardSolve(col)
		c.backSolve(col)
		for i := 0; i < c.n; i++ {
			out.data[i*out.cols+j] = col[i]
		}
	}
	return out, nil
}

// forwardSolve solves L·y = b in place.
func (c *Cholesky) forwardSolve(b []float64) {
	n := c.n
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.l.data[i*n : i*n+i]
		for k, lik := range row {
			s -= lik * b[k]
		}
		b[i] = s / c.l.data[i*n+i]
	}
}

// backSolve solves Lᵀ·x = y in place.
func (c *Cholesky) backSolve(b []float64) {
	n := c.n
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.data[k*n+i] * b[k]
		}
		b[i] = s / c.l.data[i*n+i]
	}
}

// Inverse returns A⁻¹ as a new matrix.
func (c *Cholesky) Inverse() (*Dense, error) {
	return c.Solve(Identity(c.n))
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.data[i*c.n+i])
	}
	return 2 * s
}

// Det returns |A|.
func (c *Cholesky) Det() float64 { return math.Exp(c.LogDet()) }

// MulLVec returns L·v, used to transform standard normal samples into
// samples with covariance A.
func (c *Cholesky) MulLVec(v []float64) ([]float64, error) {
	if !c.valid {
		return nil, errFactorInvalid
	}
	if len(v) != c.n {
		return nil, fmt.Errorf("%w: MulLVec len %d, want %d", ErrDimension, len(v), c.n)
	}
	out := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := 0.0
		row := c.l.data[i*c.n : i*c.n+i+1]
		for k, lik := range row {
			s += lik * v[k]
		}
		out[i] = s
	}
	return out, nil
}
