package mat

import (
	"fmt"
	"math"
)

// Cholesky is the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ. It supports solves against vectors and
// matrices, inversion, and log-determinant — everything Gaussian
// conditioning needs without ever forming an explicit inverse.
type Cholesky struct {
	n int
	l *Dense // lower triangular, upper part zero
}

// NewCholesky factorises the symmetric matrix a. Only the lower triangle of
// a is read. If a is merely positive semi-definite (common for covariance
// matrices of near-deterministic attributes), a tiny diagonal jitter
// proportional to the matrix scale is added before failing outright.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrDimension, a.rows, a.cols)
	}
	c := NewCholeskyWorkspace(a.rows)
	if err := c.Factorize(a); err != nil {
		return nil, err
	}
	return c, nil
}

// NewCholeskyWorkspace returns a Cholesky sized to factorise matrices of
// order up to n via Factorize, reusing one backing array across calls.
func NewCholeskyWorkspace(n int) *Cholesky {
	return &Cholesky{n: n, l: NewDense(n, n)}
}

// choleskyJitter is the escalating diagonal jitter ladder tried when the
// plain factorisation fails: covariance matrices assembled from finite
// samples are often PSD-but-not-PD.
var choleskyJitter = [...]float64{1e-12, 1e-10, 1e-8}

// errNotPD is the terminal Factorize failure; a package-level value so the
// hot path returns it without allocating.
var errNotPD = fmt.Errorf("%w: matrix not positive definite", ErrSingular)

// Factorize refactorises c against the symmetric matrix a, reusing c's
// backing storage; a must fit within the workspace's construction order.
// The factorisation (jitter ladder included) is bit-identical with
// NewCholesky's.
//
//ken:hotpath refactorises into the preallocated factor
func (c *Cholesky) Factorize(a *Dense) error {
	if a.rows != a.cols {
		return fmt.Errorf("%w: cholesky of %dx%d", ErrDimension, a.rows, a.cols)
	}
	n := a.rows
	if n*n > cap(c.l.data) {
		return fmt.Errorf("%w: cholesky order %d exceeds workspace capacity %d", ErrDimension, n, cap(c.l.data))
	}
	c.n = n
	c.l.reshape(n, n)
	if tryCholeskyInto(c.l, a, 0) {
		return nil
	}
	scale := a.MaxAbs()
	if isZero(scale) {
		scale = 1
	}
	for _, eps := range choleskyJitter {
		if tryCholeskyInto(c.l, a, eps*scale) {
			return nil
		}
	}
	return errNotPD
}

// tryCholeskyInto attempts the factorisation of a + jitter·I into l, which
// must match a's order. l is zeroed at entry: a failed earlier attempt
// leaves partial writes behind.
func tryCholeskyInto(l, a *Dense, jitter float64) bool {
	n := a.rows
	clear(l.data)
	for j := 0; j < n; j++ {
		d := a.At(j, j) + jitter
		for k := 0; k < j; k++ {
			ljk := l.data[j*n+k]
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		ljj := math.Sqrt(d)
		l.data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			l.data[i*n+j] = s / ljj
		}
	}
	return true
}

// Size returns the dimension n.
func (c *Cholesky) Size() int { return c.n }

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveVec solves A·x = b and returns x.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: solve len %d, want %d", ErrDimension, len(b), c.n)
	}
	y := make([]float64, c.n)
	copy(y, b)
	c.forwardSolve(y)
	c.backSolve(y)
	return y, nil
}

// SolveVecInPlace solves A·x = b, overwriting b with x. Bit-identical with
// SolveVec.
//
//ken:hotpath solves in place against the caller's buffer
func (c *Cholesky) SolveVecInPlace(b []float64) error {
	if len(b) != c.n {
		return fmt.Errorf("%w: solve len %d, want %d", ErrDimension, len(b), c.n)
	}
	c.forwardSolve(b)
	c.backSolve(b)
	return nil
}

// Solve solves A·X = B column-by-column and returns X.
func (c *Cholesky) Solve(b *Dense) (*Dense, error) {
	if b.rows != c.n {
		return nil, fmt.Errorf("%w: solve %dx%d against order %d", ErrDimension, b.rows, b.cols, c.n)
	}
	out := NewDense(c.n, b.cols)
	col := make([]float64, c.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		c.forwardSolve(col)
		c.backSolve(col)
		for i := 0; i < c.n; i++ {
			out.data[i*out.cols+j] = col[i]
		}
	}
	return out, nil
}

// forwardSolve solves L·y = b in place.
func (c *Cholesky) forwardSolve(b []float64) {
	n := c.n
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.l.data[i*n : i*n+i]
		for k, lik := range row {
			s -= lik * b[k]
		}
		b[i] = s / c.l.data[i*n+i]
	}
}

// backSolve solves Lᵀ·x = y in place.
func (c *Cholesky) backSolve(b []float64) {
	n := c.n
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.data[k*n+i] * b[k]
		}
		b[i] = s / c.l.data[i*n+i]
	}
}

// Inverse returns A⁻¹ as a new matrix.
func (c *Cholesky) Inverse() (*Dense, error) {
	return c.Solve(Identity(c.n))
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.data[i*c.n+i])
	}
	return 2 * s
}

// Det returns |A|.
func (c *Cholesky) Det() float64 { return math.Exp(c.LogDet()) }

// MulLVec returns L·v, used to transform standard normal samples into
// samples with covariance A.
func (c *Cholesky) MulLVec(v []float64) ([]float64, error) {
	if len(v) != c.n {
		return nil, fmt.Errorf("%w: MulLVec len %d, want %d", ErrDimension, len(v), c.n)
	}
	out := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := 0.0
		row := c.l.data[i*c.n : i*c.n+i+1]
		for k, lik := range row {
			s += lik * v[k]
		}
		out[i] = s
	}
	return out, nil
}
