package mat

import (
	"encoding/json"
	"fmt"
)

// denseJSON is the wire form of a Dense matrix: a slice of row slices.
type denseJSON struct {
	Rows [][]float64 `json:"rows"`
}

// MarshalJSON implements json.Marshaler.
func (m *Dense) MarshalJSON() ([]byte, error) {
	rows := make([][]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		rows[i] = m.Row(i)
	}
	return json.Marshal(denseJSON{Rows: rows})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Dense) UnmarshalJSON(data []byte) error {
	var dj denseJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return fmt.Errorf("mat: %w", err)
	}
	if len(dj.Rows) == 0 {
		*m = *NewDense(0, 0)
		return nil
	}
	cols := len(dj.Rows[0])
	for i, r := range dj.Rows {
		if len(r) != cols {
			return fmt.Errorf("mat: json row %d has %d cols, want %d", i, len(r), cols)
		}
	}
	*m = *NewDenseFrom(dj.Rows)
	return nil
}
