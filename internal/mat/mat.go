// Package mat provides the dense linear algebra needed by Ken's
// probabilistic models: vectors, matrices, Cholesky factorisation,
// triangular and general solves, inversion and determinants.
//
// The package is deliberately small and self-contained (stdlib only).
// Matrices are row-major dense float64. Dimensions in Ken are tiny —
// a clique rarely exceeds a dozen attributes — so the implementation
// favours clarity and numerical robustness (symmetrisation, jitter on
// near-singular Cholesky) over blocked performance tricks.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimension is returned (wrapped) when operand shapes are incompatible.
var ErrDimension = errors.New("mat: dimension mismatch")

// ErrSingular is returned (wrapped) when a factorisation or solve meets a
// singular or non-positive-definite matrix.
var ErrSingular = errors.New("mat: singular matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of row slices. All rows must
// have equal length. The data is copied.
func NewDenseFrom(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add accumulates v into element (i, j).
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Scale returns s·m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// AddMat returns m + b as a new matrix.
func (m *Dense) AddMat(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: add %dx%d with %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// SubMat returns m - b as a new matrix.
func (m *Dense) SubMat(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: sub %dx%d with %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Mul returns m·b as a new matrix.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if isZero(mik) {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out, nil
}

// MulVec returns m·v as a new vector.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: mulvec %dx%d by len %d", ErrDimension, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for k, mik := range mi {
			s += mik * v[k]
		}
		out[i] = s
	}
	return out, nil
}

// Submatrix returns the matrix restricted to the given row and column index
// sets, in the given order. Indices may repeat.
func (m *Dense) Submatrix(rowIdx, colIdx []int) *Dense {
	out := NewDense(len(rowIdx), len(colIdx))
	for a, i := range rowIdx {
		for b, j := range colIdx {
			out.data[a*out.cols+b] = m.At(i, j)
		}
	}
	return out
}

// Symmetrize overwrites m with (m + mᵀ)/2. It panics when m is not square.
// This keeps covariance matrices symmetric through repeated predict/condition
// cycles despite floating-point drift.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: Symmetrize on %dx%d", m.rows, m.cols))
	}
	n := m.rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.data[i*n+j] + m.data[j*n+i]) / 2
			m.data[i*n+j] = v
			m.data[j*n+i] = v
		}
	}
}

// MaxAbs returns the largest absolute element, or 0 for empty matrices.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether m and b have the same shape and all elements within
// tol of each other.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.data[i*m.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// isZero reports exact equality with zero. Degenerate-input guards are the
// one place exact float comparison is right: any nonzero value, however
// tiny, is a usable divisor, while a true zero means the computation is
// undefined and must take the fallback path.
//
//lint:comparator exact zero sentinel backing division and pivot guards
func isZero(v float64) bool { return v == 0 }
