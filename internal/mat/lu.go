package mat

import (
	"fmt"
	"math"
)

// LU is an LU factorisation with partial pivoting, P·A = L·U. It serves the
// few places that need a general (non-symmetric) solve, such as inverting a
// learned VAR transition matrix when checking model stability.
type LU struct {
	n    int
	lu   *Dense // packed L (unit diagonal, below) and U (on and above)
	piv  []int  // row permutation
	sign int    // determinant sign from pivoting
}

// NewLU factorises the square matrix a.
func NewLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrDimension, a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below row k.
		p := k
		max := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > max {
				max, p = a, i
			}
		}
		if isZero(max) {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = f
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("%w: solve len %d, want %d", ErrDimension, len(b), f.n)
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward: L·y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu.data[i*n+k] * x[k]
		}
		x[i] = s
	}
	// Back: U·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.data[i*n+k] * x[k]
		}
		x[i] = s / f.lu.data[i*n+i]
	}
	return x, nil
}

// Solve solves A·X = B column-by-column.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	if b.rows != f.n {
		return nil, fmt.Errorf("%w: solve %dx%d against order %d", ErrDimension, b.rows, b.cols, f.n)
	}
	out := NewDense(f.n, b.cols)
	for j := 0; j < b.cols; j++ {
		x, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		for i := 0; i < f.n; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out, nil
}

// Inverse returns A⁻¹.
func (f *LU) Inverse() (*Dense, error) { return f.Solve(Identity(f.n)) }

// Det returns the determinant of A.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu.data[i*f.n+i]
	}
	return d
}
