package mat

import "fmt"

// In-place variants of the allocating Dense operations. Hot paths — the
// per-epoch predict/condition cycle — run these against preallocated
// workspaces so steady-state epochs stay allocation-free. Each variant
// replicates its allocating counterpart's loop structure and operation
// order exactly, so results are bit-identical with the cloning API; that
// is what keeps Ken's replicated models in lock-step when one replica
// runs the in-place path and the other the allocating one.

// reshape resizes m to rows×cols within its existing capacity without
// touching element values; callers overwrite every element. It panics when
// the backing array is too small — workspaces are sized once at
// construction, so an undersized reuse is a programming error.
//
//ken:hotpath resizes within preallocated capacity; allocates nothing
func (m *Dense) reshape(rows, cols int) {
	if rows < 0 || cols < 0 || rows*cols > cap(m.data) {
		panic(fmt.Sprintf("mat: reshape %dx%d exceeds capacity %d", rows, cols, cap(m.data)))
	}
	m.rows, m.cols = rows, cols
	m.data = m.data[:rows*cols]
}

// ReuseAs reshapes m to rows×cols within its existing capacity and zeroes
// the active region. It panics when the backing array is too small (see
// reshape).
//
//ken:hotpath reshapes and zeroes within preallocated capacity
func (m *Dense) ReuseAs(rows, cols int) {
	m.reshape(rows, cols)
	clear(m.data)
}

// MulInto computes a·b into dst, reshaping dst within its capacity. dst
// must not alias either operand. Bit-identical with Mul, including the
// exact-zero skip.
//
//ken:hotpath multiplies into the preallocated destination
func (dst *Dense) MulInto(a, b *Dense) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: mul %dx%d by %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	if dst == a || dst == b {
		return fmt.Errorf("%w: MulInto destination aliases an operand", ErrDimension)
	}
	dst.ReuseAs(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		ai := a.data[i*a.cols : (i+1)*a.cols]
		oi := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, aik := range ai {
			if isZero(aik) {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += aik * bkj
			}
		}
	}
	return nil
}

// MulVecInto computes m·v into dst, which must have length m.Rows() and
// must not alias v. Bit-identical with MulVec.
//
//ken:hotpath multiplies into the caller's vector
func (m *Dense) MulVecInto(dst, v []float64) error {
	if m.cols != len(v) {
		return fmt.Errorf("%w: mulvec %dx%d by len %d", ErrDimension, m.rows, m.cols, len(v))
	}
	if len(dst) != m.rows {
		return fmt.Errorf("%w: mulvec dst len %d, want %d", ErrDimension, len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for k, mik := range mi {
			s += mik * v[k]
		}
		dst[i] = s
	}
	return nil
}

// AddInto computes a + b into dst, reshaping dst within its capacity.
// dst may alias a or b (every element is written exactly once from
// already-read operands). Bit-identical with AddMat.
//
//ken:hotpath adds into the preallocated destination
func (dst *Dense) AddInto(a, b *Dense) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: add %dx%d with %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	dst.reshape(a.rows, a.cols)
	for i, av := range a.data {
		dst.data[i] = av + b.data[i]
	}
	return nil
}

// SubInPlace subtracts b from m element-wise. Bit-identical with SubMat.
//
//ken:hotpath subtracts into the receiver
func (m *Dense) SubInPlace(b *Dense) error {
	if m.rows != b.rows || m.cols != b.cols {
		return fmt.Errorf("%w: sub %dx%d with %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	for i, bv := range b.data {
		m.data[i] -= bv
	}
	return nil
}

// SubmatrixInto extracts src restricted to the given row and column index
// sets into dst, reshaping dst within its capacity. dst must not alias
// src. Out-of-range indices panic, as with Submatrix.
//
//ken:hotpath extracts into the preallocated destination
func (dst *Dense) SubmatrixInto(src *Dense, rowIdx, colIdx []int) error {
	if dst == src {
		return fmt.Errorf("%w: SubmatrixInto destination aliases the source", ErrDimension)
	}
	dst.reshape(len(rowIdx), len(colIdx))
	for a, i := range rowIdx {
		for b, j := range colIdx {
			dst.data[a*dst.cols+b] = src.At(i, j)
		}
	}
	return nil
}
