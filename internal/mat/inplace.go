package mat

import "fmt"

// In-place variants of the allocating Dense operations. Hot paths — the
// per-epoch predict/condition cycle — run these against preallocated
// workspaces so steady-state epochs stay allocation-free. Each variant
// replicates its allocating counterpart's loop structure and operation
// order exactly, so results are bit-identical with the cloning API; that
// is what keeps Ken's replicated models in lock-step when one replica
// runs the in-place path and the other the allocating one.

// reshape resizes m to rows×cols within its existing capacity without
// touching element values; callers overwrite every element. It panics when
// the backing array is too small — workspaces are sized once at
// construction, so an undersized reuse is a programming error.
//
//ken:hotpath resizes within preallocated capacity; allocates nothing
func (m *Dense) reshape(rows, cols int) {
	if rows < 0 || cols < 0 || rows*cols > cap(m.data) {
		panic(fmt.Sprintf("mat: reshape %dx%d exceeds capacity %d", rows, cols, cap(m.data)))
	}
	m.rows, m.cols = rows, cols
	m.data = m.data[:rows*cols]
}

// ReuseAs reshapes m to rows×cols within its existing capacity and zeroes
// the active region. It panics when the backing array is too small (see
// reshape).
//
//ken:hotpath reshapes and zeroes within preallocated capacity
func (m *Dense) ReuseAs(rows, cols int) {
	m.reshape(rows, cols)
	clear(m.data)
}

// mulBlock is the tile edge for the blocked multiply: a 64×64 float64
// tile of b is 32 KiB, comfortably cache-resident while it is reused
// across every row of a.
const mulBlock = 64

// MulInto computes a·b into dst, reshaping dst within its capacity. dst
// must not alias either operand. Bit-identical with Mul, including the
// exact-zero skip: the blocked path taken for large operands visits k in
// the same ascending order per output element as the naive loop, so the
// floating-point accumulation order — and therefore the result bits — are
// unchanged.
//
//ken:hotpath multiplies into the preallocated destination
func (dst *Dense) MulInto(a, b *Dense) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: mul %dx%d by %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	if dst == a || dst == b {
		return fmt.Errorf("%w: MulInto destination aliases an operand", ErrDimension)
	}
	dst.ReuseAs(a.rows, b.cols)
	if a.rows >= mulBlock && a.cols >= mulBlock && b.cols >= mulBlock {
		mulIntoBlocked(dst, a, b)
		return nil
	}
	for i := 0; i < a.rows; i++ {
		ai := a.data[i*a.cols : (i+1)*a.cols]
		oi := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, aik := range ai {
			if isZero(aik) {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += aik * bkj
			}
		}
	}
	return nil
}

// mulIntoBlocked is the cache-tiled inner multiply for large operands. It
// tiles b into mulBlock×mulBlock panels and reuses each panel across all
// rows of a, bounding the streamed working set regardless of order. Per
// output element the k-blocks run ascending and k ascends within each
// block, so every dst entry accumulates over k in exactly the naive loop's
// order: bit-identical output.
//
//ken:hotpath tiled multiply into the preallocated destination
func mulIntoBlocked(dst, a, b *Dense) {
	ar, ac, bc := a.rows, a.cols, b.cols
	for jb := 0; jb < bc; jb += mulBlock {
		jEnd := jb + mulBlock
		if jEnd > bc {
			jEnd = bc
		}
		for kb := 0; kb < ac; kb += mulBlock {
			kEnd := kb + mulBlock
			if kEnd > ac {
				kEnd = ac
			}
			for i := 0; i < ar; i++ {
				ai := a.data[i*ac+kb : i*ac+kEnd]
				oi := dst.data[i*bc+jb : i*bc+jEnd]
				for dk, aik := range ai {
					if isZero(aik) {
						continue
					}
					k := kb + dk
					bk := b.data[k*bc+jb : k*bc+jEnd]
					for j, bkj := range bk {
						oi[j] += aik * bkj
					}
				}
			}
		}
	}
}

// CopyFrom copies src into dst element-for-element, reshaping dst within
// its capacity. The non-allocating counterpart of Clone.
//
//ken:hotpath copies into the preallocated destination
func (dst *Dense) CopyFrom(src *Dense) {
	dst.reshape(src.rows, src.cols)
	copy(dst.data, src.data)
}

// RowView returns row i as a mutable view into m's backing storage — the
// zero-copy counterpart of Row for kernels that stream whole rows. Writes
// through the view mutate m; the view is invalidated by reshape/ReuseAs.
//
//ken:hotpath returns a view, no copy
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %dx%d", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// MulVecInto computes m·v into dst, which must have length m.Rows() and
// must not alias v. Bit-identical with MulVec.
//
//ken:hotpath multiplies into the caller's vector
func (m *Dense) MulVecInto(dst, v []float64) error {
	if m.cols != len(v) {
		return fmt.Errorf("%w: mulvec %dx%d by len %d", ErrDimension, m.rows, m.cols, len(v))
	}
	if len(dst) != m.rows {
		return fmt.Errorf("%w: mulvec dst len %d, want %d", ErrDimension, len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for k, mik := range mi {
			s += mik * v[k]
		}
		dst[i] = s
	}
	return nil
}

// AddInto computes a + b into dst, reshaping dst within its capacity.
// dst may alias a or b (every element is written exactly once from
// already-read operands). Bit-identical with AddMat.
//
//ken:hotpath adds into the preallocated destination
func (dst *Dense) AddInto(a, b *Dense) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: add %dx%d with %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	dst.reshape(a.rows, a.cols)
	for i, av := range a.data {
		dst.data[i] = av + b.data[i]
	}
	return nil
}

// SubInPlace subtracts b from m element-wise. Bit-identical with SubMat.
//
//ken:hotpath subtracts into the receiver
func (m *Dense) SubInPlace(b *Dense) error {
	if m.rows != b.rows || m.cols != b.cols {
		return fmt.Errorf("%w: sub %dx%d with %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	for i, bv := range b.data {
		m.data[i] -= bv
	}
	return nil
}

// SubmatrixInto extracts src restricted to the given row and column index
// sets into dst, reshaping dst within its capacity. dst must not alias
// src. Out-of-range indices panic, as with Submatrix.
//
//ken:hotpath extracts into the preallocated destination
func (dst *Dense) SubmatrixInto(src *Dense, rowIdx, colIdx []int) error {
	if dst == src {
		return fmt.Errorf("%w: SubmatrixInto destination aliases the source", ErrDimension)
	}
	dst.reshape(len(rowIdx), len(colIdx))
	for a, i := range rowIdx {
		for b, j := range colIdx {
			dst.data[a*dst.cols+b] = src.At(i, j)
		}
	}
	return nil
}
