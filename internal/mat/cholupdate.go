package mat

import (
	"fmt"
	"math"
)

// Rank-1 Cholesky modifications. Conditioning a Gaussian on one observed
// attribute perturbs the relevant covariance blocks by a symmetric rank-1
// term, so the per-epoch hot path wants to move an existing factor to the
// factor of A ± v·vᵀ (Update/Downdate) or of A bordered by one extra
// row/column (Extend) in O(n²), instead of refactorising from scratch in
// O(n³). All three run in place against the workspace factor and reuse the
// scratch vector allocated at construction.

// errDowndateNotPD is returned when A − v·vᵀ is not positive definite; the
// factor is left untouched so callers can fall back to a full Factorize of
// whatever they actually hold. Package-level so the hot path returns it
// without allocating.
var errDowndateNotPD = fmt.Errorf("%w: downdate would leave matrix non positive definite", ErrSingular)

// errUpdateNotFinite is returned when an up/down-date vector carries a NaN
// or Inf; the factor is left untouched.
var errUpdateNotFinite = fmt.Errorf("%w: rank-1 update vector not finite", ErrSingular)

// checkFiniteVec reports whether every entry of v is finite.
func checkFiniteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Update moves the factor of A to the factor of A + v·vᵀ in O(n²) via a
// sweep of Givens rotations in hypot form: column j's rotation zeroes the
// j-th entry of the carried vector against the diagonal pivot, exactly the
// classical cholupdate/LINPACK dchud sweep. v is read, not modified. A
// positive-definite A stays positive definite under a rank-1 addition, so
// with a valid factor and finite v the update cannot fail; a non-finite v
// is rejected up front with the factor untouched.
//
//ken:hotpath rank-1 update in place on the workspace factor
func (c *Cholesky) Update(v []float64) error {
	if !c.valid {
		return errFactorInvalid
	}
	if len(v) != c.n {
		return fmt.Errorf("%w: update len %d, want %d", ErrDimension, len(v), c.n)
	}
	if !checkFiniteVec(v) {
		return errUpdateNotFinite
	}
	n := c.n
	w := c.work[:n]
	copy(w, v)
	for j := 0; j < n; j++ {
		wj := w[j]
		if isZero(wj) {
			continue
		}
		ljj := c.l.data[j*n+j]
		r := math.Hypot(ljj, wj)
		cos := r / ljj
		sin := wj / ljj
		c.l.data[j*n+j] = r
		for i := j + 1; i < n; i++ {
			lij := (c.l.data[i*n+j] + sin*w[i]) / cos
			c.l.data[i*n+j] = lij
			w[i] = cos*w[i] - sin*lij
		}
	}
	return nil
}

// Downdate moves the factor of A to the factor of A − v·vᵀ in O(n²), the
// hyperbolic-rotation mirror of Update. Positive definiteness can genuinely
// be lost here, so the downdate is pre-checked before the factor is
// touched: with p = L⁻¹v, A − v·vᵀ is positive definite iff ρ² = 1 − pᵀp
// is positive. A degenerate downdate returns ErrSingular (wrapped) with the
// factor fully intact — callers fall back to refactorising the true matrix
// rather than ever holding a non-PD factor. In the marginal case where the
// pre-check passes but a pivot still collapses in floating point, the
// factor is invalidated (solves error until the next Factorize), never left
// silently unusable. v is read, not modified.
//
//ken:hotpath rank-1 downdate in place on the workspace factor
func (c *Cholesky) Downdate(v []float64) error {
	if !c.valid {
		return errFactorInvalid
	}
	if len(v) != c.n {
		return fmt.Errorf("%w: downdate len %d, want %d", ErrDimension, len(v), c.n)
	}
	if !checkFiniteVec(v) {
		return errUpdateNotFinite
	}
	n := c.n
	p := c.work[:n]
	copy(p, v)
	c.forwardSolve(p) // p = L⁻¹ v; reads the factor, mutates only scratch
	rho2 := 1.0
	for _, pi := range p {
		rho2 -= pi * pi
	}
	if rho2 <= 0 || math.IsNaN(rho2) {
		return errDowndateNotPD
	}
	w := p
	copy(w, v)
	for j := 0; j < n; j++ {
		wj := w[j]
		if isZero(wj) {
			continue
		}
		ljj := c.l.data[j*n+j]
		// r² = l_jj² − w_j², computed as a product of sum and difference to
		// dodge the cancellation of squaring first.
		r2 := (ljj - wj) * (ljj + wj)
		if r2 <= 0 || math.IsNaN(r2) {
			c.valid = false
			return errDowndateNotPD
		}
		r := math.Sqrt(r2)
		cos := r / ljj
		sin := wj / ljj
		c.l.data[j*n+j] = r
		for i := j + 1; i < n; i++ {
			lij := (c.l.data[i*n+j] - sin*w[i]) / cos
			c.l.data[i*n+j] = lij
			w[i] = cos*w[i] - sin*lij
		}
	}
	return nil
}

// Extend grows the factor of the order-m matrix A to the factor of the
// order-m+1 bordered matrix [[A, col], [colᵀ, diag]] in O(m²): one forward
// solve L·w = col gives the new off-diagonal row, and the new pivot is
// diag − wᵀw. This is how an incremental conditioning evaluator grows a
// cached observed-block factor by one attribute instead of refactorising
// the whole block. A non-positive (or non-finite) new pivot returns
// ErrSingular with the previous factor intact. Seed an empty factor with
// Reset; the workspace's construction order caps the growth.
//
//ken:hotpath grows the cached factor by one index in place
func (c *Cholesky) Extend(col []float64, diag float64) error {
	if !c.valid {
		return errFactorInvalid
	}
	m := c.n
	if len(col) != m {
		return fmt.Errorf("%w: extend col len %d, want %d", ErrDimension, len(col), m)
	}
	if (m+1)*(m+1) > cap(c.l.data) {
		return fmt.Errorf("%w: extend to order %d exceeds workspace capacity %d", ErrDimension, m+1, cap(c.l.data))
	}
	if !checkFiniteVec(col) || math.IsNaN(diag) || math.IsInf(diag, 0) {
		return errUpdateNotFinite
	}
	w := c.work[:m]
	copy(w, col)
	c.forwardSolve(w) // L·w = col
	d := diag
	for _, wi := range w {
		d -= wi * wi
	}
	if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return errNotPD
	}
	// Repack the m×m factor into the m+1 stride, last row first so the
	// in-place move never overwrites a row it has yet to read (row i moves
	// from offset i·m to the strictly larger offset i·(m+1) for i ≥ 1).
	n := m + 1
	c.l.reshape(n, n)
	for i := m - 1; i >= 1; i-- {
		src := c.l.data[i*m : i*m+i+1]
		dst := c.l.data[i*n : i*n+i+1]
		copy(dst, src)
	}
	// Zero the (strictly upper) remainder of each repacked row and write
	// the new bottom row.
	for i := 0; i < m; i++ {
		row := c.l.data[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			row[j] = 0
		}
	}
	last := c.l.data[m*n : (m+1)*n]
	copy(last[:m], w)
	last[m] = math.Sqrt(d)
	c.n = n
	return nil
}
