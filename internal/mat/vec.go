package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on length mismatch,
// matching the convention of builtin copy-style helpers used pervasively in
// hot paths where lengths are established by construction.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot len %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// AddVec returns a + b as a new vector.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: AddVec len %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a - b as a new vector.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SubVec len %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns s·a as a new vector.
func ScaleVec(s float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i, ai := range a {
		out[i] = s * ai
	}
	return out
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	s := 0.0
	for _, ai := range a {
		s += ai * ai
	}
	return math.Sqrt(s)
}

// NormInf returns the max-absolute-value norm of a.
func NormInf(a []float64) float64 {
	max := 0.0
	for _, ai := range a {
		if v := math.Abs(ai); v > max {
			max = v
		}
	}
	return max
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for _, ai := range a {
		s += ai
	}
	return s / float64(len(a))
}

// Variance returns the unbiased sample variance of a, or 0 when len(a) < 2.
func Variance(a []float64) float64 {
	if len(a) < 2 {
		return 0
	}
	m := Mean(a)
	s := 0.0
	for _, ai := range a {
		d := ai - m
		s += d * d
	}
	return s / float64(len(a)-1)
}

// Select returns the elements of a at the given indices, in order.
func Select(a []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = a[i]
	}
	return out
}

// Outer returns the outer product a·bᵀ.
func Outer(a, b []float64) *Dense {
	out := NewDense(len(a), len(b))
	for i, ai := range a {
		for j, bj := range b {
			out.data[i*out.cols+j] = ai * bj
		}
	}
	return out
}
