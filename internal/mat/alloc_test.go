package mat

import (
	"testing"

	"ken/internal/alloctest"
)

// TestAllocBudgetMat pins the in-place kernels at zero heap allocations
// per call — the committed budget table in docs/LINT.md. AllocsPerRun is
// meaningless with race instrumentation, so the budget only runs in the
// plain suite.
func TestAllocBudgetMat(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	const n = 8
	a := NewDense(n, n)
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(1+i+j))
			b.Set(i, j, float64(i-j))
		}
		// Diagonal dominance keeps a positive definite for Factorize.
		a.Add(i, i, float64(n))
	}
	dst := NewDense(n, n)
	sub := NewDense(n, n)
	v := make([]float64, n)
	out := make([]float64, n)
	for i := range v {
		v[i] = float64(i) + 0.5
	}
	ch := NewCholeskyWorkspace(n)
	idx := []int{1, 3, 5}

	budget := func(name string, want float64, f func()) {
		t.Helper()
		if got := testing.AllocsPerRun(100, f); got != want {
			t.Errorf("%s: %v allocs/op, budget %v", name, got, want)
		}
	}
	budget("MulInto", 0, func() {
		if err := dst.MulInto(a, b); err != nil {
			t.Fatal(err)
		}
	})
	budget("MulVecInto", 0, func() {
		if err := a.MulVecInto(out, v); err != nil {
			t.Fatal(err)
		}
	})
	budget("AddInto", 0, func() {
		if err := dst.AddInto(a, b); err != nil {
			t.Fatal(err)
		}
	})
	budget("SubInPlace", 0, func() {
		if err := dst.SubInPlace(b); err != nil {
			t.Fatal(err)
		}
	})
	budget("SubmatrixInto", 0, func() {
		if err := sub.SubmatrixInto(a, idx, idx); err != nil {
			t.Fatal(err)
		}
	})
	budget("Cholesky.Factorize", 0, func() {
		if err := ch.Factorize(a); err != nil {
			t.Fatal(err)
		}
	})
	budget("Cholesky.SolveVecInPlace", 0, func() {
		copy(out, v)
		if err := ch.SolveVecInPlace(out); err != nil {
			t.Fatal(err)
		}
	})
	uv := make([]float64, n)
	for i := range uv {
		uv[i] = 0.01 * float64(i+1)
	}
	budget("Cholesky.Update+Downdate", 0, func() {
		if err := ch.Update(uv); err != nil {
			t.Fatal(err)
		}
		if err := ch.Downdate(uv); err != nil {
			t.Fatal(err)
		}
	})
	// Extend from empty back up to order n, entirely within the workspace.
	col := make([]float64, n)
	budget("Cholesky.Reset+Extend", 0, func() {
		ch.Reset()
		for m := 0; m < n; m++ {
			cm := col[:m]
			for i := 0; i < m; i++ {
				cm[i] = a.At(i, m)
			}
			if err := ch.Extend(cm, a.At(m, m)); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Leave the workspace holding a factor of a for any later budgets.
	if err := ch.Factorize(a); err != nil {
		t.Fatal(err)
	}
}
