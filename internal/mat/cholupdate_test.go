package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: after Update(v), the factor reconstructs A + v·vᵀ.
func TestQuickCholUpdateMatchesRefactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSPD(r, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64() * 3
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		if err := ch.Update(v); err != nil {
			return false
		}
		l := ch.L()
		got, _ := l.Mul(l.T())
		want := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want.Add(i, j, v[i]*v[j])
			}
		}
		return got.Equal(want, 1e-8*(1+want.MaxAbs()))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Update(v) then Downdate(v) round-trips to the original factor.
func TestQuickCholUpdateDowndateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSPD(r, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64() * 2
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		before := ch.L()
		if err := ch.Update(v); err != nil {
			return false
		}
		if err := ch.Downdate(v); err != nil {
			return false
		}
		return ch.L().Equal(before, 1e-8*(1+before.MaxAbs()))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: downdating the factor of B + v·vᵀ by v recovers the factor of B.
func TestQuickCholDowndateMatchesRefactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		b := randomSPD(r, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64() * 2
		}
		a := b.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Add(i, j, v[i]*v[j])
			}
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		if err := ch.Downdate(v); err != nil {
			return false
		}
		want, err := NewCholesky(b)
		if err != nil {
			return false
		}
		return ch.L().Equal(want.L(), 1e-7*(1+b.MaxAbs()))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// A degenerate downdate (A − v·vᵀ not PD) must fail with ErrSingular and
// leave the factor fully usable, so the caller can fall back to a full
// refactorize of the matrix it actually holds.
func TestCholDowndateDegenerateLeavesFactorIntact(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 2},
	})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L()
	// v = 3·e₀ drives the (0,0) entry of A − v·vᵀ to 4 − 9 < 0.
	v := []float64{3, 0, 0}
	if err := ch.Downdate(v); !errors.Is(err, ErrSingular) {
		t.Fatalf("degenerate downdate err = %v, want ErrSingular", err)
	}
	if !ch.Valid() {
		t.Fatal("degenerate downdate invalidated the factor; pre-check should reject before mutation")
	}
	if !ch.L().Equal(before, 0) {
		t.Fatal("degenerate downdate mutated the factor")
	}
	// The fallback path: refactorize whatever the caller holds still works.
	if err := ch.Factorize(a); err != nil {
		t.Fatalf("refactorize after rejected downdate: %v", err)
	}
}

// Extend must reproduce the factor of the bordered matrix: growing from the
// empty factor one column at a time matches a from-scratch factorization.
func TestQuickCholExtendMatchesFactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSPD(r, n)
		ch := NewCholeskyWorkspace(n)
		ch.Reset()
		col := make([]float64, 0, n)
		for m := 0; m < n; m++ {
			col = col[:m]
			for i := 0; i < m; i++ {
				col[i] = a.At(i, m)
			}
			if err := ch.Extend(col, a.At(m, m)); err != nil {
				return false
			}
		}
		want, err := NewCholesky(a)
		if err != nil {
			return false
		}
		return ch.Size() == n && ch.L().Equal(want.L(), 1e-8*(1+a.MaxAbs()))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCholExtendRejectsBadPivotIntact(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 0}, {0, 3}})
	ch := NewCholeskyWorkspace(3)
	if err := ch.Factorize(a); err != nil {
		t.Fatal(err)
	}
	before := ch.L()
	// Bordering with diag 0 and col (2, 0) gives pivot 0 − (2/√2)² < 0.
	if err := ch.Extend([]float64{2, 0}, 0); !errors.Is(err, ErrSingular) {
		t.Fatalf("extend err = %v, want ErrSingular", err)
	}
	if ch.Size() != 2 || !ch.Valid() {
		t.Fatalf("rejected extend changed the factor: size %d valid %v", ch.Size(), ch.Valid())
	}
	if !ch.L().Equal(before, 0) {
		t.Fatal("rejected extend mutated the factor")
	}
	// Capacity guard: a workspace of order 3 cannot grow to 4.
	ok := []float64{2, 0}
	if err := ch.Extend(ok, 9); err != nil {
		t.Fatalf("in-capacity extend: %v", err)
	}
	if err := ch.Extend([]float64{0, 0, 0}, 1); !errors.Is(err, ErrDimension) {
		t.Fatalf("over-capacity extend err = %v, want ErrDimension", err)
	}
}

// Regression for the poisoned-factor bug: a failed Factorize used to leave
// partial writes in the factor with solves still answering. Now failure
// invalidates the workspace until the next successful factorization.
func TestCholeskyFactorizeFailureInvalidates(t *testing.T) {
	good := NewDenseFrom([][]float64{{4, 1}, {1, 3}})
	// Indefinite: eigenvalues straddle zero, beyond the jitter ladder's reach.
	bad := NewDenseFrom([][]float64{{1, 9}, {9, 1}})
	ch := NewCholeskyWorkspace(2)
	if err := ch.Factorize(good); err != nil {
		t.Fatal(err)
	}
	if err := ch.Factorize(bad); !errors.Is(err, ErrSingular) {
		t.Fatalf("factorize indefinite err = %v, want ErrSingular", err)
	}
	if ch.Valid() {
		t.Fatal("failed Factorize left the workspace valid")
	}
	if l := ch.L(); l != nil {
		t.Fatal("L() returned a factor after failed Factorize")
	}
	if _, err := ch.SolveVec([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("SolveVec after failure err = %v, want ErrSingular", err)
	}
	b := []float64{1, 2}
	if err := ch.SolveVecInPlace(b); !errors.Is(err, ErrSingular) {
		t.Fatalf("SolveVecInPlace after failure err = %v, want ErrSingular", err)
	}
	if _, err := ch.Solve(Identity(2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("Solve after failure err = %v, want ErrSingular", err)
	}
	if _, err := ch.MulLVec([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("MulLVec after failure err = %v, want ErrSingular", err)
	}
	if err := ch.Update([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("Update after failure err = %v, want ErrSingular", err)
	}
	// Recovery: the next successful Factorize restores service.
	if err := ch.Factorize(good); err != nil {
		t.Fatal(err)
	}
	x, err := ch.SolveVec([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := good.MulVec(x)
	if NormInf(SubVec(ax, []float64{1, 2})) > 1e-10 {
		t.Fatal("solve after recovery inaccurate")
	}
}

// A fresh workspace has never factorized anything; it must refuse to solve.
func TestCholeskyWorkspaceStartsInvalid(t *testing.T) {
	ch := NewCholeskyWorkspace(3)
	if ch.Valid() {
		t.Fatal("fresh workspace reports valid")
	}
	if _, err := ch.SolveVec([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("SolveVec on fresh workspace err = %v, want ErrSingular", err)
	}
}

// Table test for the Inf-pivot satellite: non-finite and negative inputs
// must all be rejected by the factorization rather than propagating through
// math.Sqrt into the factor.
func TestCholeskyRejectsNonFinite(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		name string
		a    *Dense
	}{
		{"inf diagonal", NewDenseFrom([][]float64{{inf, 0}, {0, 1}})},
		{"neg inf diagonal", NewDenseFrom([][]float64{{math.Inf(-1), 0}, {0, 1}})},
		{"nan diagonal", NewDenseFrom([][]float64{{nan, 0}, {0, 1}})},
		{"inf off-diagonal", NewDenseFrom([][]float64{{1, 0}, {inf, 1}})},
		{"nan off-diagonal", NewDenseFrom([][]float64{{1, 0}, {nan, 1}})},
		{"negative diagonal", NewDenseFrom([][]float64{{-1, 0}, {0, 1}})},
		{"indefinite", NewDenseFrom([][]float64{{1, 9}, {9, 1}})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCholesky(tc.a); !errors.Is(err, ErrSingular) {
				t.Fatalf("NewCholesky(%s) err = %v, want ErrSingular", tc.name, err)
			}
		})
	}
}

// Up/down-dates must reject non-finite vectors before touching the factor.
func TestCholUpdateRejectsNonFinite(t *testing.T) {
	a := NewDenseFrom([][]float64{{4, 1}, {1, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L()
	for _, v := range [][]float64{{math.NaN(), 0}, {math.Inf(1), 0}, {0, math.Inf(-1)}} {
		if err := ch.Update(v); !errors.Is(err, ErrSingular) {
			t.Fatalf("Update(%v) err = %v, want ErrSingular", v, err)
		}
		if err := ch.Downdate(v); !errors.Is(err, ErrSingular) {
			t.Fatalf("Downdate(%v) err = %v, want ErrSingular", v, err)
		}
	}
	if err := ch.Update([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("short Update err = %v, want ErrDimension", err)
	}
	if err := ch.Downdate([]float64{1, 2, 3}); !errors.Is(err, ErrDimension) {
		t.Fatalf("long Downdate err = %v, want ErrDimension", err)
	}
	if !ch.L().Equal(before, 0) {
		t.Fatal("rejected update mutated the factor")
	}
}

// The blocked multiply path must be bit-identical with the naive one: both
// the allocating Mul (always naive) and small-operand MulInto accumulate
// over k in ascending order, and the tiled path preserves that order.
func TestMulIntoBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := []struct{ m, k, n int }{
		{64, 64, 64},    // exactly at threshold, single full tile
		{100, 100, 100}, // one full + one partial tile per axis
		{65, 128, 97},   // uneven edges
	}
	for _, s := range shapes {
		a := NewDense(s.m, s.k)
		b := NewDense(s.k, s.n)
		for i := 0; i < s.m; i++ {
			for j := 0; j < s.k; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		for i := 0; i < s.k; i++ {
			for j := 0; j < s.n; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		// Exercise the exact-zero skip inside tiles too.
		a.Set(0, 0, 0)
		a.Set(s.m-1, s.k-1, 0)
		want, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		got := NewDense(s.m, s.n)
		if err := got.MulInto(a, b); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("blocked MulInto differs from Mul at %dx%dx%d", s.m, s.k, s.n)
		}
	}
}

func BenchmarkMulInto128(b *testing.B) {
	const n = 128
	rng := rand.New(rand.NewSource(3))
	x := NewDense(n, n)
	y := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, rng.NormFloat64())
			y.Set(i, j, rng.NormFloat64())
		}
	}
	dst := NewDense(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.MulInto(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholUpdate(b *testing.B) {
	const n = 32
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Update then downdate keeps the factor bounded across iterations.
		if err := ch.Update(v); err != nil {
			b.Fatal(err)
		}
		if err := ch.Downdate(v); err != nil {
			b.Fatal(err)
		}
	}
}
