package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3.5)
	m.Add(0, 1, 1.5)
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %v, want 5", got)
	}
}

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestNewDenseFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	m := Diag([]float64{2, 3})
	if m.At(0, 0) != 2 || m.At(1, 1) != 3 || m.At(0, 1) != 0 {
		t.Fatalf("unexpected diag matrix: %v", m)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestRowColCopies(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row returned a view, want a copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v, want [2 4]", c)
	}
}

func TestSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 {
		t.Fatalf("At(1,2) = %v, want 9", m.At(1, 2))
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 {
		t.Fatalf("T(2,1) = %v, want 6", tr.At(2, 1))
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDenseFrom([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 1e-12) {
		t.Fatalf("a*b = %v, want %v", c, want)
	}
}

func TestMulDimensionError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("a*v = %v, want [3 7]", v)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := Identity(2)
	sum, err := a.AddMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 2 || sum.At(1, 1) != 5 {
		t.Fatalf("sum = %v", sum)
	}
	diff, err := sum.SubMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a, 1e-12) {
		t.Fatalf("(a+I)-I = %v, want %v", diff, a)
	}
	if s := a.Scale(2); s.At(1, 1) != 8 {
		t.Fatalf("scale = %v", s)
	}
}

func TestSubmatrix(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Submatrix([]int{2, 0}, []int{1})
	if s.Rows() != 2 || s.Cols() != 1 || s.At(0, 0) != 8 || s.At(1, 0) != 2 {
		t.Fatalf("submatrix = %v", s)
	}
}

func TestSymmetrize(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {4, 3}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("symmetrized = %v", a)
	}
}

func TestMaxAbs(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, -9}, {4, 3}})
	if a.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v, want 9", a.MaxAbs())
	}
}

// randomSPD builds a random symmetric positive definite matrix B·Bᵀ + n·I.
func randomSPD(rng *rand.Rand, n int) *Dense {
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	bt := b.T()
	spd, _ := b.Mul(bt)
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := ch.L()
		llt, _ := l.Mul(l.T())
		if !llt.Equal(a, 1e-8) {
			t.Fatalf("n=%d: L·Lᵀ ≠ A (max diff matters)", n)
		}
	}
}

func TestCholeskySolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 6)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b, _ := a.MulVec(want)
	got, err := ch.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("solve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 5)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := ch.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	if !prod.Equal(Identity(5), 1e-8) {
		t.Fatalf("A·A⁻¹ ≠ I:\n%v", prod)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := Diag([]float64{2, 3, 4})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(24)
	if got := ch.LogDet(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", got, want)
	}
	if got := ch.Det(); math.Abs(got-24) > 1e-9 {
		t.Fatalf("Det = %v, want 24", got)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 0}, {0, -5}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestCholeskyPSDJitter(t *testing.T) {
	// Rank-1 PSD matrix: should succeed via jitter.
	a := NewDenseFrom([][]float64{{1, 1}, {1, 1}})
	if _, err := NewCholesky(a); err != nil {
		t.Fatalf("PSD matrix should factor with jitter: %v", err)
	}
}

func TestCholeskyMulLVec(t *testing.T) {
	a := Diag([]float64{4, 9})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ch.MulLVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-2) > 1e-12 || math.Abs(v[1]-3) > 1e-12 {
		t.Fatalf("L·v = %v, want [2 3]", v)
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := NewDenseFrom([][]float64{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	b, _ := a.MulVec(want)
	got, err := lu.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("solve = %v, want %v", got, want)
		}
	}
	// det([[0,2,1],[1,-2,-3],[-1,1,2]]) = 1 (cofactor expansion along row 0).
	if d := lu.Det(); math.Abs(d-1) > 1e-9 {
		t.Fatalf("Det = %v, want 1", d)
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 6
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Add(i, i, float64(n)) // diagonally dominant, well conditioned
	}
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := lu.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	if !prod.Equal(Identity(n), 1e-8) {
		t.Fatal("A·A⁻¹ ≠ I")
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestVecHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v, want 32", Dot(a, b))
	}
	if s := AddVec(a, b); s[2] != 9 {
		t.Fatalf("AddVec = %v", s)
	}
	if d := SubVec(b, a); d[0] != 3 {
		t.Fatalf("SubVec = %v", d)
	}
	if s := ScaleVec(2, a); s[1] != 4 {
		t.Fatalf("ScaleVec = %v", s)
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2(3,4) != 5")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("NormInf != 7")
	}
	if Mean(a) != 2 {
		t.Fatal("Mean != 2")
	}
	if v := Variance([]float64{1, 2, 3}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("Variance = %v, want 1", v)
	}
	if got := Select(b, []int{2, 0}); got[0] != 6 || got[1] != 4 {
		t.Fatalf("Select = %v", got)
	}
	o := Outer([]float64{1, 2}, []float64{3, 4})
	if o.At(1, 0) != 6 {
		t.Fatalf("Outer = %v", o)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton should be 0")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

// Property: for random SPD A and random b, Cholesky solve satisfies A·x ≈ b.
func TestQuickCholeskySolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x, err := ch.SolveVec(b)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		return NormInf(SubVec(ax, b)) < 1e-6*(1+NormInf(b))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and (A·B)ᵀ = Bᵀ·Aᵀ.
func TestQuickTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := NewDense(m, k)
		b := NewDense(k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, r.NormFloat64())
			}
		}
		if !a.T().T().Equal(a, 0) {
			return false
		}
		ab, _ := a.Mul(b)
		btat, _ := b.T().Mul(a.T())
		return ab.T().Equal(btat, 1e-10)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: LU solve residual is small for diagonally dominant matrices.
func TestQuickLUSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, float64(2*n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 5
		}
		lu, err := NewLU(a)
		if err != nil {
			return false
		}
		x, err := lu.SolveVec(b)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		return NormInf(SubVec(ax, b)) < 1e-7*(1+NormInf(b))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
