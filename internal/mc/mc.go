// Package mc estimates a clique's expected data reduction factor by Monte
// Carlo simulation (paper §4.4).
//
// The paper defines the data reduction factor m_C of a clique C as the
// expected number of attribute values communicated to the sink per time
// step when Ken runs over C with its model. Even for a single linear
// Gaussian attribute no closed form exists, so — exactly as the paper does —
// we estimate it numerically: generate synthetic trajectories from the
// model itself, run the Ken source protocol (predict → check ε → minimal
// report → condition) against them, and average the number of values sent.
package mc

import (
	"errors"
	"fmt"
	"math/rand"

	"ken/internal/model"
)

// Config controls the Monte Carlo estimate.
type Config struct {
	// Trajectories is the number of independent simulated runs (default 8).
	Trajectories int
	// Horizon is the number of steps per run (default 48).
	Horizon int
	// Seed seeds the simulation RNG.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Trajectories <= 0 {
		c.Trajectories = 8
	}
	if c.Horizon <= 0 {
		c.Horizon = 48
	}
	return c
}

// ErrNoSampler is returned when the model cannot generate synthetic data.
var ErrNoSampler = errors.New("mc: model does not implement model.Sampler")

// ExpectedReports estimates m_C: the mean number of attribute values Ken
// transmits per time step for a clique governed by the sampler model, with
// per-attribute error bounds eps.
func ExpectedReports(m model.Sampler, eps []float64, cfg Config) (float64, error) {
	if m == nil {
		return 0, ErrNoSampler
	}
	if len(eps) != m.Dim() {
		return 0, fmt.Errorf("mc: eps dim %d, model dim %d", len(eps), m.Dim())
	}
	for i, e := range eps {
		if e <= 0 {
			return 0, fmt.Errorf("mc: non-positive epsilon %v for attribute %d", e, i)
		}
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	totalSent := 0
	totalSteps := 0
	for run := 0; run < cfg.Trajectories; run++ {
		sent, err := simulate(m, eps, cfg.Horizon, rng)
		if err != nil {
			return 0, err
		}
		totalSent += sent
		totalSteps += cfg.Horizon
	}
	return float64(totalSent) / float64(totalSteps), nil
}

// simulate runs one trajectory: the belief replica tracks ground truth the
// model itself generates, and we count reported values.
func simulate(m model.Sampler, eps []float64, horizon int, rng *rand.Rand) (int, error) {
	belief, ok := m.Clone().(model.Sampler)
	if !ok {
		return 0, ErrNoSampler
	}
	truth, err := belief.SampleState(rng)
	if err != nil {
		return 0, err
	}
	sent := 0
	for t := 0; t < horizon; t++ {
		// Draw tomorrow's truth from today's, then advance the belief.
		next, err := belief.SampleNext(truth, rng)
		if err != nil {
			return 0, err
		}
		belief.Step()
		obs, err := model.ChooseReportGreedy(belief, next, eps)
		if err != nil {
			return 0, err
		}
		if err := belief.Condition(obs); err != nil {
			return 0, err
		}
		sent += len(obs)
		truth = next
	}
	return sent, nil
}

// ExpectedStepsToMiss estimates, for a single-attribute model, the expected
// number of steps before the first prediction error — the quantity the
// paper inverts to obtain the reduction factor of a size-1 clique. Runs
// until the first miss or the horizon, whichever is sooner.
func ExpectedStepsToMiss(m model.Sampler, eps float64, cfg Config) (float64, error) {
	if m == nil {
		return 0, ErrNoSampler
	}
	if m.Dim() != 1 {
		return 0, fmt.Errorf("mc: ExpectedStepsToMiss needs a 1-attribute model, got %d", m.Dim())
	}
	if eps <= 0 {
		return 0, fmt.Errorf("mc: non-positive epsilon %v", eps)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	totalSteps := 0.0
	for run := 0; run < cfg.Trajectories; run++ {
		belief, ok := m.Clone().(model.Sampler)
		if !ok {
			return 0, ErrNoSampler
		}
		truth, err := belief.SampleState(rng)
		if err != nil {
			return 0, err
		}
		steps := cfg.Horizon // censored at the horizon
		for t := 1; t <= cfg.Horizon; t++ {
			next, err := belief.SampleNext(truth, rng)
			if err != nil {
				return 0, err
			}
			belief.Step()
			if d := belief.Mean()[0] - next[0]; d > eps || d < -eps {
				steps = t
				break
			}
			truth = next
		}
		totalSteps += float64(steps)
	}
	return totalSteps / float64(cfg.Trajectories), nil
}
