package mc

import (
	"math"
	"testing"

	"ken/internal/model"
	"ken/internal/trace"
)

// noisyConstant returns a 1-attribute random-walk model with the given
// per-step innovation SD.
func noisyConstant(t *testing.T, sd float64) *model.Constant {
	t.Helper()
	c, err := model.NewConstant([]float64{0}, []float64{sd})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExpectedReportsValidation(t *testing.T) {
	c := noisyConstant(t, 1)
	if _, err := ExpectedReports(nil, []float64{1}, Config{}); err == nil {
		t.Fatal("expected error for nil model")
	}
	if _, err := ExpectedReports(c, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("expected error for eps dim mismatch")
	}
	if _, err := ExpectedReports(c, []float64{0}, Config{}); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
}

func TestExpectedReportsDeterministic(t *testing.T) {
	c := noisyConstant(t, 1)
	cfg := Config{Trajectories: 4, Horizon: 30, Seed: 7}
	a, err := ExpectedReports(c, []float64{0.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExpectedReports(c, []float64{0.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}

func TestExpectedReportsMonotoneInEpsilon(t *testing.T) {
	// A looser bound must never require more reports.
	c := noisyConstant(t, 1)
	cfg := Config{Trajectories: 16, Horizon: 60, Seed: 3}
	tight, err := ExpectedReports(c, []float64{0.3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := ExpectedReports(c, []float64{3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loose > tight {
		t.Fatalf("loose ε reported more: %v > %v", loose, tight)
	}
	if tight <= 0 || tight > 1 {
		t.Fatalf("tight rate out of range: %v", tight)
	}
}

func TestExpectedReportsTinyNoiseNearZero(t *testing.T) {
	// Innovations far below ε: almost nothing should be reported.
	c := noisyConstant(t, 0.01)
	m, err := ExpectedReports(c, []float64{1}, Config{Trajectories: 8, Horizon: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m > 0.1 {
		t.Fatalf("near-deterministic model reported %v of steps", m)
	}
}

func TestExpectedReportsHugeNoiseNearOne(t *testing.T) {
	// Innovations far above ε: nearly every step must report.
	c := noisyConstant(t, 10)
	m, err := ExpectedReports(c, []float64{0.1}, Config{Trajectories: 8, Horizon: 50, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if m < 0.9 {
		t.Fatalf("unpredictable model reported only %v of steps", m)
	}
}

func TestCorrelatedCliqueBeatsIndependent(t *testing.T) {
	// Two highly correlated garden attributes in one multivariate model
	// should need fewer reported values than two independent single models
	// — the core premise of the Disjoint-Cliques family.
	tr, err := trace.GenerateGarden(41, 220)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	pair := make([][]float64, 200)
	for i := range pair {
		pair[i] = []float64{rows[i][0], rows[i][1]}
	}
	joint, err := model.FitLinearGaussian(pair, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Trajectories: 12, Horizon: 60, Seed: 9}
	eps := []float64{0.5, 0.5}
	mJoint, err := ExpectedReports(joint, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}

	single := make([][]float64, 200)
	for i := range single {
		single[i] = []float64{rows[i][0]}
	}
	m1, err := model.FitLinearGaussian(single, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	mSingle, err := ExpectedReports(m1, []float64{0.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mJoint >= 2*mSingle {
		t.Fatalf("joint model (%v) no better than 2 independents (2×%v)", mJoint, mSingle)
	}
}

func TestExpectedStepsToMiss(t *testing.T) {
	c := noisyConstant(t, 1)
	cfg := Config{Trajectories: 32, Horizon: 100, Seed: 11}
	steps, err := ExpectedStepsToMiss(c, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A unit-SD random walk against ε = 0.5 misses almost immediately.
	if steps < 1 || steps > 3 {
		t.Fatalf("steps to miss = %v, want ~1-2", steps)
	}
	stepsLoose, err := ExpectedStepsToMiss(c, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stepsLoose <= steps {
		t.Fatalf("looser bound should survive longer: %v vs %v", stepsLoose, steps)
	}
	// Paper's identity: reduction factor ≈ 1/E[steps to miss].
	m, err := ExpectedReports(c, []float64{0.5}, Config{Trajectories: 32, Horizon: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if inv := 1 / steps; math.Abs(m-inv) > 0.25 {
		t.Fatalf("m=%v vs 1/E[steps]=%v disagree badly", m, inv)
	}
}

func TestExpectedStepsToMissValidation(t *testing.T) {
	if _, err := ExpectedStepsToMiss(nil, 1, Config{}); err == nil {
		t.Fatal("expected error for nil model")
	}
	two, err := model.NewConstant([]float64{0, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedStepsToMiss(two, 1, Config{}); err == nil {
		t.Fatal("expected error for multi-attribute model")
	}
	c := noisyConstant(t, 1)
	if _, err := ExpectedStepsToMiss(c, 0, Config{}); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
}
