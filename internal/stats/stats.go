// Package stats provides the time-series diagnostics Ken's model selection
// rests on: autocorrelation (temporal predictability), cross-node Pearson
// correlation (spatial structure), and seasonal-strength decomposition
// (how much of the variance a diurnal profile explains). kentrace -diagnose
// prints them so a deployment engineer can judge which model family and
// clique sizes a dataset will reward before spending Monte Carlo cycles.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrShort is returned when a series is too short for the statistic.
var ErrShort = errors.New("stats: series too short")

// isZero reports exact equality with zero. Degenerate-input guards are the
// one place exact float comparison is right: any nonzero value, however
// tiny, is a usable divisor, while a true zero means the computation is
// undefined and must take the fallback path.
//
//lint:comparator exact zero sentinel backing division guards
func isZero(v float64) bool { return v == 0 }

// Mean returns the arithmetic mean.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance around the mean.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Autocorrelation returns the lag-k autocorrelation of x.
func Autocorrelation(x []float64, lag int) (float64, error) {
	if lag < 0 {
		return 0, fmt.Errorf("stats: negative lag %d", lag)
	}
	if len(x) <= lag+1 {
		return 0, fmt.Errorf("%w: len %d for lag %d", ErrShort, len(x), lag)
	}
	m := Mean(x)
	var num, den float64
	for t := 0; t < len(x); t++ {
		d := x[t] - m
		den += d * d
		if t+lag < len(x) {
			num += d * (x[t+lag] - m)
		}
	}
	if isZero(den) {
		return 0, fmt.Errorf("stats: constant series")
	}
	return num / den, nil
}

// Pearson returns the correlation coefficient of paired series.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("%w: len %d", ErrShort, len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if isZero(sxx) || isZero(syy) {
		return 0, fmt.Errorf("stats: constant series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// SeasonalStrength decomposes x against a cycle of the given period and
// returns the fraction of variance explained by the per-phase mean profile
// (0 = no seasonality, → 1 = purely seasonal).
func SeasonalStrength(x []float64, period int) (float64, error) {
	if period < 2 {
		return 0, fmt.Errorf("stats: period %d < 2", period)
	}
	if len(x) < 2*period {
		return 0, fmt.Errorf("%w: len %d for period %d", ErrShort, len(x), period)
	}
	profile := make([]float64, period)
	counts := make([]int, period)
	for t, v := range x {
		profile[t%period] += v
		counts[t%period]++
	}
	for p := range profile {
		profile[p] /= float64(counts[p])
	}
	total := Variance(x)
	if isZero(total) {
		return 0, fmt.Errorf("stats: constant series")
	}
	residual := make([]float64, len(x))
	for t, v := range x {
		residual[t] = v - profile[t%period]
	}
	frac := 1 - Variance(residual)/total
	if frac < 0 {
		frac = 0
	}
	return frac, nil
}

// CorrelationMatrix returns the n×n Pearson matrix of the columns of
// rows[t][i]. Constant columns yield zero correlation entries.
func CorrelationMatrix(rows [][]float64) ([][]float64, error) {
	if len(rows) < 2 {
		return nil, fmt.Errorf("%w: %d rows", ErrShort, len(rows))
	}
	n := len(rows[0])
	cols := make([][]float64, n)
	for i := 0; i < n; i++ {
		cols[i] = make([]float64, len(rows))
	}
	for t, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("stats: row %d has %d cols, want %d", t, len(row), n)
		}
		for i, v := range row {
			cols[i][t] = v
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r, err := Pearson(cols[i], cols[j])
			if err != nil {
				r = 0
			}
			out[i][j], out[j][i] = r, r
		}
	}
	return out, nil
}

// MeanAbsDiff returns the mean absolute one-step change, the statistic
// that predicts approximate-caching performance (a cache at threshold ε
// reports roughly min(1, E|Δx|/ε) of the time).
func MeanAbsDiff(x []float64) (float64, error) {
	if len(x) < 2 {
		return 0, fmt.Errorf("%w: len %d", ErrShort, len(x))
	}
	s := 0.0
	for t := 1; t < len(x); t++ {
		s += math.Abs(x[t] - x[t-1])
	}
	return s / float64(len(x)-1), nil
}
