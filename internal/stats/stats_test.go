package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if Mean(x) != 2.5 {
		t.Fatalf("mean = %v", Mean(x))
	}
	if v := Variance(x); math.Abs(v-1.25) > 1e-12 {
		t.Fatalf("variance = %v, want 1.25", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty series should give 0")
	}
}

func TestAutocorrelation(t *testing.T) {
	// Strong AR(1) has high lag-1 autocorrelation; white noise near zero.
	rng := rand.New(rand.NewSource(1))
	ar := make([]float64, 3000)
	wn := make([]float64, 3000)
	x := 0.0
	for i := range ar {
		x = 0.9*x + rng.NormFloat64()
		ar[i] = x
		wn[i] = rng.NormFloat64()
	}
	a1, err := Autocorrelation(ar, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a1 < 0.8 {
		t.Fatalf("AR(0.9) lag-1 autocorr = %v", a1)
	}
	w1, err := Autocorrelation(wn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w1) > 0.1 {
		t.Fatalf("white noise lag-1 autocorr = %v", w1)
	}
	a0, err := Autocorrelation(ar, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a0-1) > 1e-12 {
		t.Fatalf("lag-0 autocorr = %v, want 1", a0)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation([]float64{1, 2}, -1); err == nil {
		t.Fatal("expected error for negative lag")
	}
	if _, err := Autocorrelation([]float64{1, 2}, 5); err == nil {
		t.Fatal("expected error for short series")
	}
	if _, err := Autocorrelation([]float64{3, 3, 3, 3}, 1); err == nil {
		t.Fatal("expected error for constant series")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, err = Pearson(x, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", r)
	}
	if _, err := Pearson(x, y[:2]); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected short error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("expected constant error")
	}
}

func TestSeasonalStrength(t *testing.T) {
	// A pure sinusoid with period 24 is almost entirely seasonal.
	pure := make([]float64, 240)
	for i := range pure {
		pure[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	s, err := SeasonalStrength(pure, 24)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.99 {
		t.Fatalf("pure sinusoid seasonal strength = %v", s)
	}
	// White noise has almost none.
	rng := rand.New(rand.NewSource(2))
	noise := make([]float64, 2400)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	s, err = SeasonalStrength(noise, 24)
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.1 {
		t.Fatalf("noise seasonal strength = %v", s)
	}
	if _, err := SeasonalStrength(pure, 1); err == nil {
		t.Fatal("expected error for period 1")
	}
	if _, err := SeasonalStrength(pure[:30], 24); err == nil {
		t.Fatal("expected error for short series")
	}
}

func TestCorrelationMatrix(t *testing.T) {
	rows := [][]float64{{1, 2, 5}, {2, 4, 5}, {3, 6, 5}, {4, 8, 5}}
	m, err := CorrelationMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 1 || math.Abs(m[0][1]-1) > 1e-12 {
		t.Fatalf("matrix = %v", m)
	}
	// Constant column correlates as 0 by convention.
	if m[0][2] != 0 {
		t.Fatalf("constant column correlation = %v", m[0][2])
	}
	if m[1][0] != m[0][1] {
		t.Fatal("matrix not symmetric")
	}
	if _, err := CorrelationMatrix([][]float64{{1}}); err == nil {
		t.Fatal("expected short error")
	}
	if _, err := CorrelationMatrix([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestMeanAbsDiff(t *testing.T) {
	d, err := MeanAbsDiff([]float64{0, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-4.0/3) > 1e-12 {
		t.Fatalf("mean abs diff = %v", d)
	}
	if _, err := MeanAbsDiff([]float64{1}); err == nil {
		t.Fatal("expected short error")
	}
}
