// Package tracestore is the segmented, tamper-evident trace store behind
// the observability layer's -trace-out directory mode: instead of one
// unbounded JSONL file, a store is a directory of bounded segment files
// whose integrity is provable after the fact and whose contents are
// seekable without a full scan.
//
// The design follows the ledger triangle of append-only audit logs —
// integrity proofs, bulk storage, and a compact index:
//
//   - Bulk storage: events live in segment files (seg-00000000.jsonl,
//     seg-00000001.jsonl, …), each capped by event count and byte size.
//     Inside a segment the format is exactly the JSONL the single-file
//     tracer writes, so every existing line-oriented tool still works.
//
//   - Integrity proofs: every segment opens with a schema-3 header naming
//     its ordinal and the SHA-256 of the *entire previous segment file*
//     (the chain link), and closes with a seal line carrying the SHA-256
//     of its own content (header + event lines). A bit flip anywhere
//     breaks the sealed content hash; rewriting a seal to match breaks
//     the next header's chain link; deleting, reordering or truncating
//     segments breaks ordinal or chain continuity. Only the final
//     segment's seal has no successor covering it, which is inherent to
//     hash chains — anchor the head hash (reported by VerifyChain)
//     externally when the trace is evidentiary.
//
//   - Compact index: each sealed segment carries its per-scope index
//     (scope → first byte offset, step range, event count) as the line
//     right before the seal — inside the sealed content, so the index
//     itself is tamper-evident — and the same entries are mirrored into
//     index.jsonl for one-read lookup. The mirror is a pure cache: if a
//     crash lands between a seal and its index append, LoadIndex
//     rebuilds the missing entries from the segments.
//
// The package is deliberately stdlib-only and line-oriented: it never
// decodes event JSON. The tracer hands it (scope, step, line) triples —
// see obs.NewTracerSink — and readers hand lines back for the caller to
// decode, which keeps the dependency arrow pointing obs → tracestore.
package tracestore

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Naming and format constants of a store directory.
const (
	// Kind is the header/seal discriminator ("ken-trace" matches the
	// single-file tracer so a segment's first line is recognisably a
	// trace header; index lines use KindIndex and seals KindSeal).
	Kind      = "ken-trace"
	KindIndex = "ken-index"
	KindSeal  = "ken-seal"
	// Schema is the segmented trace schema version. Schema 1 is a
	// headerless JSONL file, schema 2 a single JSONL file with a header
	// line; schema 3 adds segmenting, hash chaining and sealing.
	Schema = 3
	// IndexFile is the per-directory index mirror.
	IndexFile = "index.jsonl"
	// segPrefix/segSuffix frame segment file names: seg-00000000.jsonl.
	segPrefix = "seg-"
	segSuffix = ".jsonl"
	segDigits = 8
)

// Defaults for Options zero values.
const (
	DefaultMaxEvents = 100_000
	DefaultMaxBytes  = 16 << 20
)

// Header is the first line of every segment file.
type Header struct {
	Kind    string `json:"kind"`
	Schema  int    `json:"schema"`
	Segment int    `json:"segment"`
	// Prev is the hex SHA-256 of the entire previous segment file
	// (content and seal line included); empty for segment 0. It is what
	// makes the segments a chain rather than a pile.
	Prev string `json:"prev,omitempty"`
}

// IndexEntry locates one scope's events inside one segment: the byte
// offset of the scope's first event line, the inclusive step range its
// events span, and how many there are. Entries are written in the
// segment's index line (authoritative, covered by the seal's content
// hash) and mirrored into index.jsonl (cache).
type IndexEntry struct {
	Segment int    `json:"segment"`
	Scope   string `json:"scope"`
	Offset  int64  `json:"offset"`
	MinStep int64  `json:"min_step"`
	MaxStep int64  `json:"max_step"`
	Events  int    `json:"events"`
}

// IndexLine is the penultimate line of a sealed segment: the per-scope
// index, written before the seal so the seal's content hash covers it.
type IndexLine struct {
	Kind    string       `json:"kind"` // KindIndex
	Segment int          `json:"segment"`
	Entries []IndexEntry `json:"entries"`
}

// Seal is the last line of a sealed segment. It is deliberately flat and
// fully cross-checkable: no seal covers the FINAL segment's seal (the
// inherent limit of a hash chain), so VerifyChain validates every field
// of it against recomputed values instead — Segment against the file
// name, Events against the counted lines, Hash against the re-hashed
// content, and the line's exact bytes against a canonical re-marshal.
type Seal struct {
	Kind    string `json:"kind"` // KindSeal
	Segment int    `json:"segment"`
	Events  int    `json:"events"`
	// Hash is the hex SHA-256 of every byte of the segment before the
	// seal line (header, event lines and index line, newlines included).
	Hash string `json:"hash"`
}

// sealPrefix/indexPrefix are how readers cheaply recognise control lines
// without decoding every event: both structs marshal with Kind first.
var (
	sealPrefix  = []byte(`{"kind":"` + KindSeal + `"`)
	indexPrefix = []byte(`{"kind":"` + KindIndex + `"`)
)

// IsSealLine reports whether a raw segment line is a seal.
func IsSealLine(line []byte) bool { return hasBytePrefix(line, sealPrefix) }

// IsIndexLine reports whether a raw segment line is an index line.
func IsIndexLine(line []byte) bool { return hasBytePrefix(line, indexPrefix) }

func hasBytePrefix(line, prefix []byte) bool {
	if len(line) < len(prefix) {
		return false
	}
	for i, b := range prefix {
		if line[i] != b {
			return false
		}
	}
	return true
}

// SegmentPath returns the file name of segment n inside dir.
func SegmentPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%0*d%s", segPrefix, segDigits, n, segSuffix))
}

// Options bound a segment's growth; zero values take the defaults.
type Options struct {
	// MaxEvents rolls the segment after this many event lines.
	MaxEvents int
	// MaxBytes rolls the segment once its size would exceed this many
	// bytes (a segment always accepts at least one event).
	MaxBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxEvents <= 0 {
		o.MaxEvents = DefaultMaxEvents
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	return o
}

// scopeIdx accumulates one scope's index entry for the open segment.
type scopeIdx struct {
	offset   int64
	min, max int64
	events   int
}

// Writer appends events to a segmented store. It implements the
// obs.LineSink contract (WriteEventLine, Flush); Close seals the open
// segment. Safe for concurrent use.
type Writer struct {
	dir  string
	opts Options

	mu     sync.Mutex
	seg    int      // ordinal of the open segment
	f      *os.File // open segment file (nil between Seal and next write)
	bw     *bufio.Writer
	h      hash.Hash // running SHA-256 over the open segment's bytes
	events int       // event lines in the open segment
	size   int64     // bytes written to the open segment
	prev   string    // full-file hash of the previous segment
	scopes map[string]*scopeIdx
	idx    *os.File // index.jsonl, append-only
	err    error    // first write error; sticks
}

// Create initialises a store in dir (created if missing). The directory
// must not already contain segments: a store is a single chained history,
// so resuming one would fork the chain.
func Create(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	if segs, err := segmentFiles(dir); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		return nil, fmt.Errorf("tracestore: %s already holds %d segment(s); a chained store cannot be resumed", dir, len(segs))
	}
	idx, err := os.OpenFile(filepath.Join(dir, IndexFile), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	w := &Writer{dir: dir, opts: opts.withDefaults(), idx: idx}
	if err := w.openSegment(); err != nil {
		_ = idx.Close() // surfacing the openSegment error; the close error adds nothing
		return nil, err
	}
	return w, nil
}

// openSegment starts segment w.seg with its chained header. Caller holds
// the lock (or is the constructor).
func (w *Writer) openSegment() error {
	f, err := os.OpenFile(SegmentPath(w.dir, w.seg), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	hdr, err := json.Marshal(Header{Kind: Kind, Schema: Schema, Segment: w.seg, Prev: w.prev})
	if err != nil {
		_ = f.Close() // surfacing the marshal error; the close error adds nothing
		return fmt.Errorf("tracestore: segment header: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.h = sha256.New()
	w.events = 0
	w.size = 0
	w.scopes = map[string]*scopeIdx{}
	return w.writeLine(hdr)
}

// writeLine appends one raw line (sans newline) to the open segment,
// feeding the running hash the exact bytes written.
func (w *Writer) writeLine(line []byte) error {
	for _, chunk := range [][]byte{line, {'\n'}} {
		if _, err := w.bw.Write(chunk); err != nil {
			return fmt.Errorf("tracestore: segment %d: %w", w.seg, err)
		}
		w.h.Write(chunk) // sha256.Write never errors
	}
	w.size += int64(len(line)) + 1
	return nil
}

// WriteEventLine appends one encoded event line, rolling to a new sealed
// segment when the open one is full. The scope and step feed the
// per-segment index; the line bytes are stored verbatim. The first error
// sticks: later writes return it without touching the store.
func (w *Writer) WriteEventLine(scope string, step int64, line []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f != nil && w.events > 0 &&
		(w.events >= w.opts.MaxEvents || w.size+int64(len(line))+1 > w.opts.MaxBytes) {
		if err := w.sealLocked(); err != nil {
			return err
		}
	}
	if w.f == nil { // first write, or first after a seal
		if err := w.setErr(w.openSegment()); err != nil {
			return err
		}
	}
	off := w.size
	if err := w.setErr(w.writeLine(line)); err != nil {
		return err
	}
	w.events++
	si, ok := w.scopes[scope]
	if !ok {
		si = &scopeIdx{offset: off, min: step, max: step}
		w.scopes[scope] = si
	}
	if step < si.min {
		si.min = step
	}
	if step > si.max {
		si.max = step
	}
	si.events++
	return nil
}

// setErr records the first error.
func (w *Writer) setErr(err error) error {
	if err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Flush drains buffered bytes of the open segment to the OS.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.bw != nil {
		//lint:ignore locksafe the store serializes segment writes behind the lock by design; Flush must not race WriteEventLine
		if err := w.bw.Flush(); err != nil {
			return w.setErr(fmt.Errorf("tracestore: flush segment %d: %w", w.seg, err))
		}
	}
	return nil
}

// Seal closes the open segment with its seal line and index entries; the
// next WriteEventLine opens the successor. Sealing an already-sealed (or
// never-written) store is a no-op, so it is safe to call from a signal
// handler racing normal shutdown.
func (w *Writer) Seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return nil
	}
	return w.sealLocked()
}

// sealLocked writes the index line + seal for the open segment and
// advances the chain state. Caller holds the lock.
func (w *Writer) sealLocked() error {
	entries := w.indexEntries()
	idxLine, err := json.Marshal(IndexLine{Kind: KindIndex, Segment: w.seg, Entries: entries})
	if err != nil {
		return w.setErr(fmt.Errorf("tracestore: index line: %w", err))
	}
	// The index line goes in before the seal so the content hash covers it.
	if err := w.setErr(w.writeLine(idxLine)); err != nil {
		return err
	}
	content := hex.EncodeToString(w.h.Sum(nil))
	seal, err := json.Marshal(Seal{Kind: KindSeal, Segment: w.seg, Events: w.events, Hash: content})
	if err != nil {
		return w.setErr(fmt.Errorf("tracestore: seal: %w", err))
	}
	if err := w.setErr(w.writeLine(seal)); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return w.setErr(fmt.Errorf("tracestore: seal segment %d: %w", w.seg, err))
	}
	if err := w.f.Sync(); err != nil {
		return w.setErr(fmt.Errorf("tracestore: sync segment %d: %w", w.seg, err))
	}
	if err := w.f.Close(); err != nil {
		return w.setErr(fmt.Errorf("tracestore: close segment %d: %w", w.seg, err))
	}
	w.prev = hex.EncodeToString(w.h.Sum(nil)) // now includes the seal line
	w.f, w.bw, w.h = nil, nil, nil
	// Mirror the entries into index.jsonl. The seal already landed, so a
	// crash from here on loses only the cache copy — LoadIndex recovers.
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return w.setErr(fmt.Errorf("tracestore: index entry: %w", err))
		}
		if _, err := w.idx.Write(append(line, '\n')); err != nil {
			return w.setErr(fmt.Errorf("tracestore: index append: %w", err))
		}
	}
	if err := w.idx.Sync(); err != nil {
		return w.setErr(fmt.Errorf("tracestore: index sync: %w", err))
	}
	w.seg++
	return nil
}

// indexEntries snapshots the open segment's per-scope index, sorted by
// scope for determinism.
func (w *Writer) indexEntries() []IndexEntry {
	names := make([]string, 0, len(w.scopes))
	for s := range w.scopes {
		names = append(names, s)
	}
	sort.Strings(names)
	out := make([]IndexEntry, 0, len(names))
	for _, s := range names {
		si := w.scopes[s]
		out = append(out, IndexEntry{Segment: w.seg, Scope: s,
			Offset: si.offset, MinStep: si.min, MaxStep: si.max, Events: si.events})
	}
	return out
}

// Close seals the open segment and releases the index file. The Writer is
// unusable afterwards.
func (w *Writer) Close() error {
	sealErr := w.Seal()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.idx != nil {
		//lint:ignore locksafe teardown closes the index file under the lock so a racing Seal cannot resurrect it
		if err := w.idx.Close(); err != nil && sealErr == nil {
			sealErr = fmt.Errorf("tracestore: index close: %w", err)
		}
		w.idx = nil
	}
	if sealErr == nil {
		sealErr = w.err
	}
	return sealErr
}

// Segments returns how many segments have been sealed plus the open one,
// and Events the event count of the open segment — observability for
// logs and tests.
func (w *Writer) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		return w.seg + 1
	}
	return w.seg
}
