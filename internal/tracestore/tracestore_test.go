package tracestore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStore fills a fresh store in dir with events lines of the shape
// {"scope":..., "step":...} across the given scopes, rolling as opts
// dictate, and closes it. Returns the lines written, in order.
func writeStore(t *testing.T, dir string, opts Options, scopes []string, perScope int) []string {
	t.Helper()
	w, err := Create(dir, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var lines []string
	for step := 0; step < perScope; step++ {
		for _, sc := range scopes {
			line := fmt.Sprintf(`{"scope":%q,"step":%d,"v":%d}`, sc, step, step*7)
			if err := w.WriteEventLine(sc, int64(step), []byte(line)); err != nil {
				t.Fatalf("WriteEventLine: %v", err)
			}
			lines = append(lines, line)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return lines
}

func readBack(t *testing.T, dir string) []string {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var got []string
	if err := st.Scan(func(line []byte) error {
		got = append(got, string(line))
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return got
}

func TestRoundTripSingleSegment(t *testing.T) {
	dir := t.TempDir()
	want := writeStore(t, dir, Options{}, []string{"a", "b"}, 10)
	got := readBack(t, dir)
	if len(got) != len(want) {
		t.Fatalf("read %d lines, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: got %s want %s", i, got[i], want[i])
		}
	}
	info, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if info.Segments != 1 || info.Events != len(want) || info.Head == "" {
		t.Fatalf("chain info = %+v, want 1 segment, %d events, non-empty head", info, len(want))
	}
}

func TestRollByEventCount(t *testing.T) {
	dir := t.TempDir()
	want := writeStore(t, dir, Options{MaxEvents: 7}, []string{"s"}, 25)
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// 25 events at 7/segment: ceil(25/7) = 4 segments.
	if len(st.Segments) != 4 {
		t.Fatalf("got %d segments, want 4", len(st.Segments))
	}
	got := readBack(t, dir)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("roll changed event order/content")
	}
	if _, err := VerifyChain(dir); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestRollByBytes(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{MaxBytes: 400}, []string{"s"}, 40)
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(st.Segments) < 3 {
		t.Fatalf("byte cap of 400 over ~30-byte lines produced only %d segments", len(st.Segments))
	}
	for _, seg := range st.Segments {
		fi, err := os.Stat(seg.Path)
		if err != nil {
			t.Fatal(err)
		}
		// The cap bounds content; header + seal + one oversize-tolerated
		// event leave slack, but nothing should balloon.
		if fi.Size() > 1200 {
			t.Fatalf("%s is %d bytes, cap was 400", seg.Path, fi.Size())
		}
	}
	if _, err := VerifyChain(dir); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestOversizeEventStillAccepted(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{MaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	big := `{"scope":"s","pad":"` + strings.Repeat("x", 500) + `"}`
	if err := w.WriteEventLine("s", 0, []byte(big)); err != nil {
		t.Fatalf("oversize event rejected: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, dir)
	if len(got) != 1 || got[0] != big {
		t.Fatalf("oversize event lost or mangled")
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{}, []string{"s"}, 1)
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create resumed an existing chained store")
	}
}

func TestSealIdempotentAndRollAfterSeal(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEventLine("s", 1, []byte(`{"scope":"s","step":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil { // no-op, must not error or write
		t.Fatalf("second Seal: %v", err)
	}
	// Next write opens the successor segment.
	if err := w.WriteEventLine("s", 2, []byte(`{"scope":"s","step":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if info.Segments != 2 || info.Events != 2 {
		t.Fatalf("chain info = %+v, want 2 segments / 2 events", info)
	}
}

func TestIndexSeekMatchesFullScan(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{MaxEvents: 10}, []string{"fig9", "fig9/sub", "fig12"}, 20)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Filter{
		{Scope: "fig12"},
		{Scope: "fig9"}, // prefix: matches fig9 and fig9/sub
		{HasSteps: true, MinStep: 5, MaxStep: 8},
		{Scope: "fig9/sub", HasSteps: true, MinStep: 0, MaxStep: 3},
		{Scope: "nope"},
	}
	for _, f := range cases {
		var want []string
		if err := st.Scan(func(line []byte) error {
			var ev struct {
				Scope string `json:"scope"`
				Step  int64  `json:"step"`
			}
			mustUnmarshal(t, line, &ev)
			if f.MatchScope(ev.Scope) && f.MatchStep(ev.Step) {
				want = append(want, string(line))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		sel, err := st.Select(f)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		if err := st.ScanSelection(sel, func(line []byte) error {
			var ev struct {
				Scope string `json:"scope"`
				Step  int64  `json:"step"`
			}
			mustUnmarshal(t, line, &ev)
			if f.MatchScope(ev.Scope) && f.MatchStep(ev.Step) {
				got = append(got, string(line))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("filter %+v: index-driven scan disagrees with full scan:\ngot  %d lines\nwant %d lines", f, len(got), len(want))
		}
	}
}

func TestSelectSkipsRuledOutSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{MaxEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Segment 0: scope "early" steps 0-4; segment 1+: scope "late" 100+.
	for i := 0; i < 5; i++ {
		if err := w.WriteEventLine("early", int64(i), []byte(fmt.Sprintf(`{"scope":"early","step":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 100; i < 105; i++ {
		if err := w.WriteEventLine("late", int64(i), []byte(fmt.Sprintf(`{"scope":"late","step":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := st.Select(Filter{Scope: "late"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0].Num != 1 {
		t.Fatalf("Select(scope=late) = %+v, want only segment 1", sel)
	}
	sel, err = st.Select(Filter{HasSteps: true, MinStep: 0, MaxStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0].Num != 0 {
		t.Fatalf("Select(steps 0-10) = %+v, want only segment 0", sel)
	}
}

func mustUnmarshal(t *testing.T, line []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(line, v); err != nil {
		t.Fatalf("unmarshal %s: %v", line, err)
	}
}

// TestCrashBetweenSealAndIndexWrite simulates the torn state the mirror
// cache exists for: seals landed, index.jsonl lost. LoadIndex must
// recover every entry from the seals.
func TestCrashBetweenSealAndIndexWrite(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{MaxEvents: 10}, []string{"a", "b"}, 20)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.LoadIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("store produced no index entries")
	}
	// "Crash": the cache mirror never made it to disk.
	if err := os.Remove(filepath.Join(dir, IndexFile)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open without index mirror: %v", err)
	}
	got, err := st2.LoadIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// And the chain is still whole: the mirror is pure cache.
	if _, err := VerifyChain(dir); err != nil {
		t.Fatalf("VerifyChain after index loss: %v", err)
	}
}

// TestVerifyChainBitFlipSweep flips every single bit-position-carrying
// byte of every segment of a small store, one at a time, and requires
// VerifyChain to fail each time with a ChainError naming a segment.
func TestVerifyChainBitFlipSweep(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{MaxEvents: 3}, []string{"s"}, 7)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range st.Segments {
		orig, err := os.ReadFile(seg.Path)
		if err != nil {
			t.Fatal(err)
		}
		for pos := range orig {
			mut := make([]byte, len(orig))
			copy(mut, orig)
			mut[pos] ^= 0x01
			if err := os.WriteFile(seg.Path, mut, 0o666); err != nil {
				t.Fatal(err)
			}
			if _, err := VerifyChain(dir); err == nil {
				t.Fatalf("%s: bit flip at byte %d went undetected", filepath.Base(seg.Path), pos)
			}
		}
		if err := os.WriteFile(seg.Path, orig, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := VerifyChain(dir); err != nil {
		t.Fatalf("restored store fails verification: %v", err)
	}
}

// TestVerifyChainTruncationSweep cuts every suffix length off the final
// segment (1 byte through the whole file) and requires detection.
func TestVerifyChainTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{MaxEvents: 3}, []string{"s"}, 5)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := st.Segments[len(st.Segments)-1]
	orig, err := os.ReadFile(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= len(orig); cut++ {
		if err := os.WriteFile(last.Path, orig[:len(orig)-cut], 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyChain(dir); err == nil {
			t.Fatalf("truncating %d byte(s) off %s went undetected", cut, filepath.Base(last.Path))
		}
	}
	// Deleting the whole final segment must also fail (sealed predecessor
	// has a successor hash no one carries — wait, it does not; deletion of
	// the tail is caught because VerifyChain requires a sealed final
	// segment and the predecessor IS sealed... the tail's absence shortens
	// the chain silently only if the predecessor looks final. That is the
	// head-anchoring caveat: whole-tail deletion needs the externally
	// anchored head hash. What IS detectable: deleting a non-final segment.
	if err := os.WriteFile(last.Path, orig, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(st.Segments[0].Path); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain(dir); err == nil {
		t.Fatal("deleting an interior segment went undetected")
	}
}

// TestVerifyChainReorder swaps two segment files (contents exchanged,
// names kept) and requires detection.
func TestVerifyChainReorder(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{MaxEvents: 3}, []string{"s"}, 9)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Segments) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(st.Segments))
	}
	a, b := st.Segments[0].Path, st.Segments[1].Path
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a, bb, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, ab, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain(dir); err == nil {
		t.Fatal("segment swap went undetected")
	}
}

// TestVerifyChainNamesSegment asserts the error is a *ChainError naming
// the corrupted file.
func TestVerifyChainNamesSegment(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{MaxEvents: 3}, []string{"s"}, 7)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	target := st.Segments[1]
	raw, err := os.ReadFile(target.Path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the first event line (past the header), so the
	// failure is a content-hash breach rather than a structural one.
	off := strings.IndexByte(string(raw), '\n') + 5
	f, err := os.OpenFile(target.Path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, int64(off)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyChain(dir)
	ce, ok := err.(*ChainError)
	if !ok {
		t.Fatalf("want *ChainError, got %T: %v", err, err)
	}
	if ce.Segment != filepath.Base(target.Path) {
		t.Fatalf("error names %q, corrupted %q", ce.Segment, filepath.Base(target.Path))
	}
}

// TestUnsealedTailReadableButUnverifiable: a writer that died without
// sealing (kill -9) leaves a readable store whose chain honestly fails.
func TestUnsealedTailReadableButUnverifiable(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{MaxEvents: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := w.WriteEventLine("s", int64(i), []byte(fmt.Sprintf(`{"scope":"s","step":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil { // flushed but never sealed
		t.Fatal(err)
	}
	// (writer abandoned without Close — simulated crash)
	got := readBack(t, dir)
	if len(got) != 7 {
		t.Fatalf("read %d events from crashed store, want 7", len(got))
	}
	if _, err := VerifyChain(dir); err == nil {
		t.Fatal("unsealed tail passed chain verification")
	}
}

func TestWriterStickyError(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEventLine("s", 0, []byte(`{"scope":"s"}`)); err != nil {
		t.Fatal(err)
	}
	// Force a write failure by closing the file out from under the writer.
	w.mu.Lock()
	w.f.Close()
	w.mu.Unlock()
	var firstErr error
	for i := 0; i < 3; i++ {
		// The bufio layer absorbs small writes; Seal forces a flush + sync
		// against the closed fd.
		if err := w.Seal(); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Skip("could not provoke a write error on this platform")
	}
	if err := w.WriteEventLine("s", 1, []byte(`{"scope":"s"}`)); err == nil {
		t.Fatal("write after failure succeeded; error must stick")
	}
}
