package tracestore

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// maxLine bounds one trace line on the read path (matches bufio scanner
// sizing for generous payloads; a 16 MiB line is corruption, not data).
const maxLine = 16 << 20

// IsStore reports whether path is a segmented trace directory: an
// existing directory holding at least one segment file.
func IsStore(path string) bool {
	segs, err := segmentFiles(path)
	return err == nil && len(segs) > 0
}

// segmentFiles lists dir's segment file names in ordinal order, verifying
// the names parse. Returns nil for a missing directory.
func segmentFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		if _, err := segmentNum(name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names) // zero-padded ordinals sort lexically
	return names, nil
}

// segmentNum parses the ordinal out of a segment file name.
func segmentNum(name string) (int, error) {
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("tracestore: malformed segment name %q", name)
	}
	return n, nil
}

// SegmentInfo describes one segment as found on disk.
type SegmentInfo struct {
	Path   string
	Num    int
	Header Header
	Seal   *Seal        // nil when the segment is unsealed (open or truncated)
	Index  []IndexEntry // from the segment's index line; nil when unsealed
}

// Store is an opened trace directory.
type Store struct {
	Dir      string
	Segments []SegmentInfo
}

// Open lists and header-checks the segments of dir. It tolerates an
// unsealed final segment (a live or interrupted writer) but rejects
// gaps, duplicate ordinals and unreadable headers: those are structural,
// not merely unverified. Chain hashes are NOT checked here — use
// VerifyChain for the cryptographic pass.
func Open(dir string) (*Store, error) {
	names, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("tracestore: %s holds no segments", dir)
	}
	st := &Store{Dir: dir}
	for i, name := range names {
		num, err := segmentNum(name)
		if err != nil {
			return nil, err
		}
		if num != i {
			return nil, fmt.Errorf("tracestore: segment %s out of sequence (want ordinal %d)", name, i)
		}
		info := SegmentInfo{Path: filepath.Join(dir, name), Num: num}
		if err := readHeaderAndSeal(&info); err != nil {
			return nil, err
		}
		if info.Header.Segment != num {
			return nil, fmt.Errorf("tracestore: %s: header names segment %d (file renamed?)", name, info.Header.Segment)
		}
		st.Segments = append(st.Segments, info)
	}
	return st, nil
}

// readHeaderAndSeal fills info.Header and, for sealed segments,
// info.Seal and info.Index — reading only the first and last two lines.
func readHeaderAndSeal(info *SegmentInfo) error {
	base := filepath.Base(info.Path)
	f, err := os.Open(info.Path)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	hdrLine, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("tracestore: %s: reading header: %w", base, err)
	}
	if err := json.Unmarshal(hdrLine, &info.Header); err != nil {
		return fmt.Errorf("tracestore: %s: malformed header: %w", base, err)
	}
	if info.Header.Kind != Kind || info.Header.Schema != Schema {
		return fmt.Errorf("tracestore: %s: header is %q schema %d, want %q schema %d",
			base, info.Header.Kind, info.Header.Schema, Kind, Schema)
	}
	tail, err := tailLines(f, 2)
	if err != nil {
		return fmt.Errorf("tracestore: %s: %w", base, err)
	}
	if len(tail) == 0 || !IsSealLine(tail[len(tail)-1]) {
		return nil // unsealed (open writer or truncation); caller decides
	}
	var s Seal
	if err := json.Unmarshal(tail[len(tail)-1], &s); err != nil {
		return fmt.Errorf("tracestore: %s: malformed seal: %w", base, err)
	}
	info.Seal = &s
	if len(tail) == 2 && IsIndexLine(tail[0]) {
		var il IndexLine
		if err := json.Unmarshal(tail[0], &il); err != nil {
			return fmt.Errorf("tracestore: %s: malformed index line: %w", base, err)
		}
		info.Index = il.Entries
	}
	return nil
}

// tailLines returns up to the last n newline-terminated lines of f (in
// file order, trailing newlines stripped) without scanning the whole
// file. A final unterminated fragment counts as a line.
func tailLines(f *os.File, n int) ([][]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	const chunk = 64 << 10
	var buf []byte
	off := size
	for off > 0 {
		step := int64(chunk)
		if step > off {
			step = off
		}
		off -= step
		b := make([]byte, step)
		if _, err := f.ReadAt(b, off); err != nil {
			return nil, err
		}
		buf = append(b, buf...)
		if countByte(buf, '\n') > n || off == 0 {
			break
		}
		if int64(len(buf)) > int64(n)*maxLine {
			return nil, fmt.Errorf("final %d lines exceed %d bytes", n, int64(n)*maxLine)
		}
	}
	var lines [][]byte
	for len(buf) > 0 {
		i := lastIndexByte(buf[:len(buf)-boolToInt(buf[len(buf)-1] == '\n')], '\n')
		line := buf[i+1:]
		if len(line) > 0 && line[len(line)-1] == '\n' {
			line = line[:len(line)-1]
		}
		lines = append([][]byte{line}, lines...)
		if i < 0 || len(lines) == n {
			break
		}
		buf = buf[:i+1]
	}
	return lines, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func countByte(b []byte, c byte) int {
	n := 0
	for _, x := range b {
		if x == c {
			n++
		}
	}
	return n
}

func lastIndexByte(b []byte, c byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// LoadIndex returns the store's index entries in (segment, scope) order,
// straight from the segments' own index lines (tamper-covered by the
// chain) rather than the index.jsonl mirror — which is only a cache for
// external tools. A crash between a seal and its index.jsonl append
// therefore loses nothing: the sealed segment still carries its entries.
func (st *Store) LoadIndex() ([]IndexEntry, error) {
	var out []IndexEntry
	for _, seg := range st.Segments {
		out = append(out, seg.Index...)
	}
	return out, nil
}

// Selection is one (segment, starting offset) pair a filtered scan
// should visit.
type Selection struct {
	Path   string
	Num    int
	Offset int64 // byte offset of the first line to read; 0 = whole segment
}

// Filter narrows a scan. The zero value selects everything.
type Filter struct {
	// Scope, when non-empty, selects events whose scope equals it or
	// lives under it ("fig9" matches "fig9" and "fig9/3").
	Scope string
	// MinStep/MaxStep bound the step range when HasSteps is set
	// (inclusive).
	HasSteps         bool
	MinStep, MaxStep int64
}

// MatchScope reports whether an event scope passes the filter.
func (f Filter) MatchScope(scope string) bool {
	return f.Scope == "" || scope == f.Scope || strings.HasPrefix(scope, f.Scope+"/")
}

// MatchStep reports whether an event step passes the filter.
func (f Filter) MatchStep(step int64) bool {
	return !f.HasSteps || (step >= f.MinStep && step <= f.MaxStep)
}

// Select plans a filtered scan from the index: the segments whose index
// entries can satisfy the filter, each with the earliest byte offset a
// matching event can live at. Unsealed segments (no index yet) are
// always selected in full. This is the seek-not-scan path: segments the
// index rules out are never opened.
func (st *Store) Select(f Filter) ([]Selection, error) {
	var out []Selection
	for _, seg := range st.Segments {
		if seg.Seal == nil {
			out = append(out, Selection{Path: seg.Path, Num: seg.Num})
			continue
		}
		offset := int64(-1)
		for _, e := range seg.Index {
			if !f.MatchScope(e.Scope) {
				continue
			}
			if f.HasSteps && (e.MaxStep < f.MinStep || e.MinStep > f.MaxStep) {
				continue
			}
			if offset < 0 || e.Offset < offset {
				offset = e.Offset
			}
		}
		if offset >= 0 {
			out = append(out, Selection{Path: seg.Path, Num: seg.Num, Offset: offset})
		}
	}
	return out, nil
}

// scanSegment streams the event lines of one segment from the given
// offset, skipping the header (when offset is 0) and stopping at the
// seal. fn receives each line without its trailing newline; the slice is
// only valid during the call.
func scanSegment(path string, offset int64, fn func(line []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	if offset > 0 {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			return fmt.Errorf("tracestore: %s: %w", filepath.Base(path), err)
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	first := offset == 0
	for sc.Scan() {
		line := sc.Bytes()
		if first {
			first = false
			continue // header
		}
		if IsSealLine(line) || IsIndexLine(line) {
			break // control tail: index line (when present) precedes the seal
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("tracestore: %s: %w", filepath.Base(path), err)
	}
	return nil
}

// Scan streams every event line of the store in segment order (the
// unsealed tail included). fn's line slice is only valid during the call.
func (st *Store) Scan(fn func(line []byte) error) error {
	for _, seg := range st.Segments {
		if err := scanSegment(seg.Path, 0, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanSelection streams the planned selections of a filtered scan. The
// caller still applies the filter per event after decoding — the index
// only rules segments out, it does not prove every remaining line
// matches.
func (st *Store) ScanSelection(sel []Selection, fn func(line []byte) error) error {
	for _, s := range sel {
		if err := scanSegment(s.Path, s.Offset, fn); err != nil {
			return err
		}
	}
	return nil
}

// ChainInfo summarises a successful VerifyChain pass.
type ChainInfo struct {
	Segments int
	Events   int
	// Head is the hex SHA-256 of the final segment file — the value to
	// anchor externally (a release note, a signed mail, another ledger)
	// when the trace is evidence: everything before it is then immutable.
	Head string
	// Sealed is false when the final segment is unsealed (live writer or
	// a crash); VerifyChain reports that as an error, so a ChainInfo in
	// hand means Sealed or the caller opted into tolerating it.
	Sealed bool
}

// ChainError is a chain verification failure, naming the segment.
type ChainError struct {
	Segment string // file name, e.g. "seg-00000003.jsonl"
	Reason  string
}

func (e *ChainError) Error() string {
	return fmt.Sprintf("tracestore: chain broken at %s: %s", e.Segment, e.Reason)
}

// VerifyChain re-hashes every segment of dir and checks the full ledger
// contract: contiguous ordinals, headers chained to the previous
// segment's file hash, seal hashes matching recomputed content, event
// counts matching, nothing after the seal, and a sealed final segment.
// The first breach aborts with a *ChainError naming the segment; single
// bit flips, line reordering across segments, truncation and segment
// reordering all land here.
func VerifyChain(dir string) (*ChainInfo, error) {
	st, err := Open(dir) // structural pass: names, ordinals, headers
	if err != nil {
		return nil, err
	}
	info := &ChainInfo{Sealed: true}
	prev := ""
	for _, seg := range st.Segments {
		base := filepath.Base(seg.Path)
		if seg.Header.Prev != prev {
			return nil, &ChainError{Segment: base,
				Reason: fmt.Sprintf("header prev %.12q does not match previous segment hash %.12q", seg.Header.Prev, prev)}
		}
		events, fileHash, err := verifySegment(seg)
		if err != nil {
			return nil, err
		}
		if seg.Seal == nil {
			return nil, &ChainError{Segment: base, Reason: "segment is unsealed (truncated, or writer died before sealing)"}
		}
		info.Events += events
		info.Segments++
		prev = fileHash
	}
	info.Head = prev
	return info, nil
}

// verifySegment re-hashes one segment file: the content hash must match
// the seal (when sealed), the seal must be the last line, and the event
// count must match. Returns the event count and the whole-file hash. The
// whole-file hash is computed over the raw bytes (via TeeReader), not
// reconstructed from lines, so even a truncated final newline changes it.
func verifySegment(seg SegmentInfo) (int, string, error) {
	base := filepath.Base(seg.Path)
	f, err := os.Open(seg.Path)
	if err != nil {
		return 0, "", fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, "", fmt.Errorf("tracestore: %s: %w", base, err)
	}
	if fi.Size() > 0 {
		lastByte := make([]byte, 1)
		if _, err := f.ReadAt(lastByte, fi.Size()-1); err != nil {
			return 0, "", fmt.Errorf("tracestore: %s: %w", base, err)
		}
		if lastByte[0] != '\n' {
			return 0, "", &ChainError{Segment: base, Reason: "file does not end in a newline (truncated)"}
		}
	}
	content := sha256.New() // bytes before the seal line
	full := sha256.New()    // every raw byte of the file
	sc := bufio.NewScanner(io.TeeReader(f, full))
	sc.Buffer(make([]byte, 64<<10), maxLine)
	events := 0
	lineNo := 0
	sawSeal := false
	sawIndex := false
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if sawSeal {
			return 0, "", &ChainError{Segment: base, Reason: fmt.Sprintf("line %d follows the seal", lineNo)}
		}
		switch {
		case lineNo > 1 && IsSealLine(line):
			var s Seal
			if err := json.Unmarshal(line, &s); err != nil {
				return 0, "", &ChainError{Segment: base, Reason: fmt.Sprintf("malformed seal: %v", err)}
			}
			// The final segment's seal has no successor hashing it, so
			// every field is cross-checked instead — starting with the
			// line's exact bytes against a canonical re-marshal, which
			// catches shape-level edits (field renames, whitespace,
			// number formats) the field checks below cannot see.
			canon, err := json.Marshal(s)
			if err != nil {
				return 0, "", fmt.Errorf("tracestore: %s: %w", base, err)
			}
			if string(canon) != string(line) {
				return 0, "", &ChainError{Segment: base, Reason: "seal line is not in canonical form (edited)"}
			}
			got := hex.EncodeToString(content.Sum(nil))
			if s.Hash != got {
				return 0, "", &ChainError{Segment: base,
					Reason: fmt.Sprintf("content hash %.12s… does not match sealed hash %.12s… (bit flip or edit)", got, s.Hash)}
			}
			if s.Segment != seg.Num {
				return 0, "", &ChainError{Segment: base, Reason: fmt.Sprintf("seal names segment %d", s.Segment)}
			}
			if s.Events != events {
				return 0, "", &ChainError{Segment: base,
					Reason: fmt.Sprintf("segment holds %d events but seal declares %d (lines added or removed)", events, s.Events)}
			}
			if !sawIndex {
				return 0, "", &ChainError{Segment: base, Reason: "sealed segment is missing its index line"}
			}
			sawSeal = true
			continue // seal bytes are in the full-file hash only
		case lineNo > 1 && IsIndexLine(line):
			if sawIndex {
				return 0, "", &ChainError{Segment: base, Reason: "duplicate index line"}
			}
			var il IndexLine
			if err := json.Unmarshal(line, &il); err != nil {
				return 0, "", &ChainError{Segment: base, Reason: fmt.Sprintf("malformed index line: %v", err)}
			}
			if il.Segment != seg.Num {
				return 0, "", &ChainError{Segment: base, Reason: fmt.Sprintf("index line names segment %d", il.Segment)}
			}
			sum := 0
			for _, e := range il.Entries {
				sum += e.Events
			}
			if sum != events {
				return 0, "", &ChainError{Segment: base,
					Reason: fmt.Sprintf("index entries cover %d events but segment holds %d", sum, events)}
			}
			sawIndex = true
		case lineNo > 1:
			if sawIndex {
				return 0, "", &ChainError{Segment: base, Reason: fmt.Sprintf("event line %d follows the index line", lineNo)}
			}
			events++
		}
		content.Write(line)
		content.Write([]byte{'\n'})
	}
	if err := sc.Err(); err != nil {
		return 0, "", &ChainError{Segment: base, Reason: fmt.Sprintf("unreadable: %v", err)}
	}
	// Drain whatever the scanner's buffer did not pull (none in practice,
	// but TeeReader only hashes what is read).
	if _, err := io.Copy(io.Discard, io.TeeReader(f, full)); err != nil {
		return 0, "", fmt.Errorf("tracestore: %s: %w", base, err)
	}
	return events, hex.EncodeToString(full.Sum(nil)), nil
}
