package simnet

import (
	"fmt"

	"ken/internal/model"
	"ken/internal/obs"
)

// DistributedAverage runs the paper's Average model (Example 3.5, Figure 4)
// as a real node program: every epoch the network aggregates the global
// average up the routing tree with partial sums (one message per tree
// edge), the base disseminates it back down (one message per edge), and
// each node runs a two-variable model over (own reading, last disseminated
// average), reporting its reading only on a prediction miss.
//
// Failure semantics are physical: a dead node silently drops its whole
// subtree from the aggregate (the average is computed over whatever
// reached the base), and dissemination does not cross dead nodes, so
// orphaned nodes keep predicting with a stale average.
type DistributedAverage struct {
	net  *Network
	n    int
	eps  []float64
	src  []model.Model // per node, over [x_i(t), avg(t−1)]
	sink []model.Model
	// parent is the aggregation/dissemination tree.
	parent   []int
	children [][]int
	order    []int // leaves-first traversal for aggregation
	// prevAvg is the base's last computed average; per-node lastAvg is what
	// each node most recently received (stale for orphans).
	prevAvg float64
	primed  bool
	lastAvg []float64
}

var _ Program = (*DistributedAverage)(nil)

// NewDistributedAverage fits the per-node models and builds the tree.
func NewDistributedAverage(net *Network, train [][]float64, eps []float64, fitCfg model.FitConfig) (*DistributedAverage, error) {
	if net == nil {
		return nil, fmt.Errorf("simnet: nil network")
	}
	if len(train) < 2 {
		return nil, fmt.Errorf("simnet: need at least 2 training rows")
	}
	n := len(train[0])
	if n != net.top.N() {
		return nil, fmt.Errorf("simnet: training dim %d, network has %d nodes", n, net.top.N())
	}
	if len(eps) != n {
		return nil, fmt.Errorf("simnet: eps dim %d, want %d", len(eps), n)
	}
	parent, err := net.top.RoutingTree()
	if err != nil {
		return nil, err
	}
	d := &DistributedAverage{
		net:     net,
		n:       n,
		eps:     append([]float64(nil), eps...),
		parent:  parent,
		lastAvg: make([]float64, n),
	}
	d.children = make([][]int, n+1) // index n = base
	for i, p := range parent {
		d.children[p] = append(d.children[p], i)
	}
	d.order = postOrder(d.children, net.top.Base())

	// Training averages (lagged pairing, as in core.Average).
	avg := make([]float64, len(train))
	for t, row := range train {
		s := 0.0
		for _, v := range row {
			s += v
		}
		avg[t] = s / float64(n)
	}
	for i := 0; i < n; i++ {
		cols := make([][]float64, 0, len(train)-1)
		for t := 1; t < len(train); t++ {
			cols = append(cols, []float64{train[t][i], avg[t-1]})
		}
		mdl, err := model.FitLinearGaussian(cols, fitCfg)
		if err != nil {
			return nil, fmt.Errorf("simnet: fitting average model for node %d: %w", i, err)
		}
		d.src = append(d.src, mdl.Clone())
		d.sink = append(d.sink, mdl.Clone())
	}
	d.prevAvg = avg[len(avg)-1]
	for i := range d.lastAvg {
		d.lastAvg[i] = d.prevAvg
	}
	d.primed = true
	return d, nil
}

// postOrder returns the sensor nodes in leaves-first order under the base.
func postOrder(children [][]int, base int) []int {
	var out []int
	var walk func(v int)
	walk = func(v int) {
		for _, c := range children[v] {
			walk(c)
		}
		if v != base {
			out = append(out, v)
		}
	}
	walk(base)
	return out
}

// Name implements Program.
func (d *DistributedAverage) Name() string { return "avg" }

// Epoch implements Program.
func (d *DistributedAverage) Epoch(truth []float64) (EpochResult, error) {
	if len(truth) != d.n {
		return EpochResult{}, fmt.Errorf("simnet: truth dim %d, want %d", len(truth), d.n)
	}
	sp := d.net.BeginEpoch()
	res := EpochResult{Estimates: make([]float64, d.n)}

	// Phase 1 — aggregate partial (sum, count) pairs up the tree. Each
	// live node sends exactly one two-value message to its parent;
	// delivery failures drop the subtree's contribution.
	sums := make([]float64, d.n+1)
	counts := make([]float64, d.n+1)
	for i := 0; i < d.n; i++ {
		if d.net.Alive(i) {
			sums[i] += truth[i]
			counts[i]++
		}
	}
	for _, i := range d.order { // leaves first: children already folded in
		if counts[i] == 0 {
			continue
		}
		if !d.net.Alive(i) {
			continue
		}
		ok := d.net.SendSpan(Message{From: i, To: d.parent[i],
			Values: []float64{sums[i], counts[i]}}, sp)
		if ok {
			sums[d.parent[i]] += sums[i]
			counts[d.parent[i]] += counts[i]
		}
	}
	base := d.net.top.Base()

	// Phase 2 — disseminate the PREVIOUS epoch's average down the tree:
	// aggregating and disseminating takes a communication round (paper
	// footnote 2), and the per-node models were fit on the lagged pairing
	// (x_i(t), avg(t−1)). Nodes behind dead ancestors keep a stale copy.
	var spread func(v int, avg float64)
	spread = func(v int, avg float64) {
		for _, c := range d.children[v] {
			if !d.net.SendSpan(Message{From: v, To: c, Values: []float64{avg}}, sp) {
				continue
			}
			d.lastAvg[c] = avg
			spread(c, avg)
		}
	}
	spread(base, d.prevAvg)
	// This epoch's aggregate becomes next epoch's dissemination.
	defer func() {
		if counts[base] > 0 {
			d.prevAvg = sums[base] / counts[base]
		}
	}()

	// Phase 3 — per-node prediction and reporting.
	reportBytes := 0
	for i := 0; i < d.n; i++ {
		d.src[i].Step()
		d.sink[i].Step()
		// The node conditions on the average it actually holds; the base's
		// sink replica conditions on what it disseminated. These agree
		// unless the node is orphaned — in which case its reports stopped
		// flowing anyway and divergence shows up as violations.
		if err := d.src[i].Condition(map[int]float64{1: d.lastAvg[i]}); err != nil {
			return EpochResult{}, err
		}
		if err := d.sink[i].Condition(map[int]float64{1: d.prevAvg}); err != nil {
			return EpochResult{}, err
		}
		if d.net.Alive(i) {
			mean := d.src[i].Mean()
			if diff := mean[0] - truth[i]; diff > d.eps[i] || diff < -d.eps[i] {
				reportBytes += obs.WireBytesPerValue
				var rs *obs.Span
				if sp.Active() {
					rs = sp.Child()
					rs.Emit(obs.Event{
						Type: obs.EvReport, Step: int64(d.net.stats.Epochs), Clique: -1, Node: i,
						Attrs: []int{i}, Values: []float64{truth[i]},
						Payload: &obs.Payload{
							Predicted: []float64{mean[0]}, Observed: []float64{truth[i]},
							Eps: []float64{d.eps[i]}, Bytes: obs.WireBytesPerValue,
						},
					})
				}
				if d.net.SendSpan(Message{From: i, To: base, Attrs: []int{i}, Values: []float64{truth[i]}}, rs) {
					if err := d.sink[i].Condition(map[int]float64{0: truth[i]}); err != nil {
						return EpochResult{}, err
					}
					res.ValuesDelivered++
					rs.Child().Emit(obs.Event{
						Type: obs.EvApply, Step: int64(d.net.stats.Epochs), Clique: -1, Node: base,
						Attrs: []int{i}, Values: []float64{truth[i]}, N: 1,
					})
				}
				// The node assumes delivery (no acks): its own replica
				// conditions regardless.
				if err := d.src[i].Condition(map[int]float64{0: truth[i]}); err != nil {
					return EpochResult{}, err
				}
			}
		}
		est := d.sink[i].Mean()[0]
		res.Estimates[i] = est
		if diff := est - truth[i]; diff > d.eps[i] || diff < -d.eps[i] {
			res.Violations++
		}
	}
	if sp.Active() {
		sp.EndEpoch(obs.Event{
			Step: int64(d.net.stats.Epochs), Clique: -1, Node: -1, N: res.ValuesDelivered,
			Payload: &obs.Payload{
				Predicted: res.Estimates, Observed: truth, Eps: d.eps,
				Bytes:     reportBytes,
				LinkBytes: d.net.EpochLinkBytes(), Retx: d.net.EpochRetransmits(),
			},
		})
	}
	return res, nil
}
