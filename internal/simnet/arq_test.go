package simnet

import (
	"bytes"
	"math"
	"testing"

	"ken/internal/model"
	"ken/internal/obs"
)

// TestSendToDeadDestinationBurnsTxEnergy pins the no-global-knowledge
// rule: a sender cannot see its receiver's battery, so a unicast to a
// dead destination still transmits (and charges Tx energy) and the
// message dies at the receiver.
func TestSendToDeadDestinationBurnsTxEnergy(t *testing.T) {
	top := chainTop(t, 3)
	radio := DefaultRadio()
	net, err := New(top, radio, 1)
	if err != nil {
		t.Fatal(err)
	}
	net.spend(1, net.Energy(1)+1)
	if net.Alive(1) {
		t.Fatal("node 1 should be dead")
	}
	e0 := net.Energy(0)
	msg := Message{From: 0, To: 1, Attrs: []int{0}, Values: []float64{1}}
	if net.Send(msg) {
		t.Fatal("delivery to a dead destination should fail")
	}
	st := net.Stats()
	if st.MessagesSent != 1 {
		t.Fatalf("MessagesSent = %d, want 1 (the sender must transmit)", st.MessagesSent)
	}
	wantTx := radio.TxPerByte * float64(msg.bytes(radio.OverheadBytes))
	if spent := e0 - net.Energy(0); math.Abs(spent-wantTx) > 1e-12 {
		t.Fatalf("sender spent %v J, want Tx cost %v", spent, wantTx)
	}
	if st.DroppedNoPath != 1 {
		t.Fatalf("DroppedNoPath = %d, want 1", st.DroppedNoPath)
	}
}

// TestEnergySpentCappedAtTotalBattery runs a chatty program to full
// network death and checks the books: a node cannot deliver energy it
// does not hold, so the total spend equals the total battery exactly —
// never more (the pre-clamp accounting overshot on the killing charge).
func TestEnergySpentCappedAtTotalBattery(t *testing.T) {
	radio := DefaultRadio()
	radio.BatteryJ = 0.002
	net, _, test, eps := gardenNet(t, radio, 5, true)
	prog, err := NewDistributedTinyDB(net, eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range test {
		if _, err := prog.Epoch(row); err != nil {
			t.Fatal(err)
		}
		if net.AliveCount() == 0 {
			break
		}
	}
	if net.AliveCount() != 0 {
		t.Fatal("network should have died within the test window")
	}
	total := radio.BatteryJ * 11
	spent := net.Stats().EnergySpent
	if spent > total+1e-12 {
		t.Fatalf("EnergySpent %v exceeds the %v J the batteries held", spent, total)
	}
	if diff := total - spent; diff > 1e-9 {
		t.Fatalf("all nodes dead but %v J unaccounted for", diff)
	}
}

// TestDeadRootMembersStillTransmit checks the other side of the same
// rule at the program level: clique members keep shipping readings to a
// dead root — burning Tx energy for messages that die at the receiver —
// instead of consulting global liveness they cannot have.
func TestDeadRootMembersStillTransmit(t *testing.T) {
	radio := DefaultRadio()
	net, train, test, eps := gardenNet(t, radio, 7, true)
	prog, err := NewDistributedKen(net, pairsPartition(11), train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Kill node 0, the root of clique {0,1}; its member 1 sits at the far
	// end of the chain, so no other clique's traffic relays through it.
	net.spend(0, net.Energy(0)+1)
	e0 := net.Energy(1)
	epochs := 150
	for _, row := range test[:epochs] {
		if _, err := prog.Epoch(row); err != nil {
			t.Fatal(err)
		}
	}
	idleOnly := float64(epochs) * radio.IdlePerEpoch
	if spent := e0 - net.Energy(1); spent <= idleOnly+1e-12 {
		t.Fatalf("member spent %v J ≈ idle-only %v: it stopped transmitting to its dead root", spent, idleOnly)
	}
	if net.Stats().DroppedNoPath == 0 {
		t.Fatal("no messages died at the dead root")
	}
}

// arqNet builds a 2-node chain (0 — 1 — base) for link-level ARQ tests.
func arqNet(t *testing.T, radio Radio, seed int64) *Network {
	t.Helper()
	net, err := New(chainTop(t, 2), radio, seed)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestSendReliableDeliversThroughLoss compares fire-and-forget against
// stop-and-wait ARQ on the same lossy link: retransmissions must buy a
// strictly better delivery rate, at the cost of retransmit and ack
// traffic.
func TestSendReliableDeliversThroughLoss(t *testing.T) {
	radio := DefaultRadio()
	radio.LossRate = 0.4
	msg := Message{From: 0, To: 2, Attrs: []int{0}, Values: []float64{1}}
	const sends = 200

	plainNet := arqNet(t, radio, 3)
	plainNet.BeginEpoch()
	plain := 0
	for i := 0; i < sends; i++ {
		if plainNet.Send(msg) {
			plain++
		}
	}

	radio.ARQ.MaxRetries = 5
	arq := arqNet(t, radio, 3)
	arq.BeginEpoch()
	reliable := 0
	for i := 0; i < sends; i++ {
		if arq.SendReliable(msg, nil) {
			reliable++
		}
	}
	if reliable <= plain {
		t.Fatalf("ARQ delivered %d/%d, plain %d/%d — retries bought nothing", reliable, sends, plain, sends)
	}
	st := arq.Stats()
	if st.Retransmits == 0 || st.Acks == 0 {
		t.Fatalf("40%% loss produced no ARQ traffic: %d retx, %d acks", st.Retransmits, st.Acks)
	}
	// Delivered counts end-to-end data arrivals — a lost ack means a
	// duplicate delivery, so it can exceed the per-message success count,
	// but ack traffic itself must never inflate it.
	if st.Delivered < reliable || st.Delivered > reliable+st.Retransmits {
		t.Fatalf("Delivered = %d outside [%d, %d]: ack traffic leaked into the data count",
			st.Delivered, reliable, reliable+st.Retransmits)
	}
}

// TestSendReliableRespectsRetryBudget caps an epoch's backoff slots and
// checks retransmissions stay within it — and that BeginEpoch refills it.
func TestSendReliableRespectsRetryBudget(t *testing.T) {
	radio := DefaultRadio()
	radio.LossRate = 0.6
	radio.ARQ.MaxRetries = 5
	radio.ARQ.RetryBudget = 3
	net := arqNet(t, radio, 11)
	msg := Message{From: 0, To: 2, Attrs: []int{0}, Values: []float64{1}}

	net.BeginEpoch()
	for i := 0; i < 50; i++ {
		net.SendReliable(msg, nil)
	}
	if r := net.Stats().Retransmits; r > 3 {
		t.Fatalf("%d retransmissions in one epoch, budget allows at most 3 slots", r)
	}
	first := net.Stats().Retransmits
	if first == 0 {
		t.Fatal("60% loss spent no retry budget at all")
	}
	net.BeginEpoch()
	for i := 0; i < 50; i++ {
		net.SendReliable(msg, nil)
	}
	if r := net.Stats().Retransmits; r <= first || r > first+3 {
		t.Fatalf("second epoch retransmits %d (after %d): budget did not refill to 3", r-first, first)
	}
}

// TestSendReliableNoARQIsFireAndForget: MaxRetries 0 must behave exactly
// like Send — no acks, no retransmissions, identical rng consumption.
func TestSendReliableNoARQIsFireAndForget(t *testing.T) {
	radio := DefaultRadio()
	radio.LossRate = 0.3
	a, b := arqNet(t, radio, 4), arqNet(t, radio, 4)
	a.BeginEpoch()
	b.BeginEpoch()
	msg := Message{From: 0, To: 2, Attrs: []int{0}, Values: []float64{1}}
	for i := 0; i < 100; i++ {
		if a.Send(msg) != b.SendReliable(msg, nil) {
			t.Fatalf("send %d: outcomes diverged with ARQ off", i)
		}
	}
	st := b.Stats()
	if st.Retransmits != 0 || st.Acks != 0 {
		t.Fatalf("ARQ off but %d retx, %d acks", st.Retransmits, st.Acks)
	}
	if a.Stats() != st {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), st)
	}
}

// TestSendReliableTracesRetxAndAcks checks the trace tells the same
// story as the counters: one EvRetx per retransmission, EvAck only for
// acks that actually made it back.
func TestSendReliableTracesRetxAndAcks(t *testing.T) {
	radio := DefaultRadio()
	radio.LossRate = 0.3
	radio.ARQ.MaxRetries = 4
	net := arqNet(t, radio, 6)
	var buf bytes.Buffer
	ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(&buf)}
	net.Instrument(ob)
	net.BeginEpoch()
	msg := Message{From: 0, To: 2, Attrs: []int{0}, Values: []float64{1}}
	for i := 0; i < 50; i++ {
		net.SendReliable(msg, nil)
	}
	if err := ob.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	retx, acks := 0, 0
	for _, e := range events {
		switch e.Type {
		case obs.EvRetx:
			retx++
			if e.Payload == nil || e.Payload.Attempt < 1 {
				t.Fatalf("EvRetx without a positive attempt number: %+v", e)
			}
		case obs.EvAck:
			acks++
		}
	}
	st := net.Stats()
	if retx != st.Retransmits {
		t.Fatalf("trace carries %d EvRetx, stats count %d retransmissions", retx, st.Retransmits)
	}
	if acks == 0 || acks > st.Acks {
		t.Fatalf("trace carries %d EvAck, stats sent %d acks (traced acks are the delivered subset)", acks, st.Acks)
	}
}
