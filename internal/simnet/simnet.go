// Package simnet is a node-level sensor network simulator: hop-by-hop
// message forwarding over the link graph, per-hop loss, per-node radio
// energy accounting, battery exhaustion and route repair around dead
// nodes.
//
// The paper's evaluation counts messages as an energy proxy ("a count of
// messages sent also serves as a fair proxy for energy expended", §5.2);
// this package closes the remaining gap to a deployment: it charges
// transmit/receive energy per byte (Telos-class radios spend an order of
// magnitude more energy on the radio than on computation, §1), drains
// per-node batteries, and lets the distributed Ken programs of kennet.go
// run until nodes start dying — reproducing the paper's motivating
// anecdote of the Sonoma deployment whose chatty nodes "exhausted their
// batteries in only a few days".
//
// The simulator is epoch-synchronous: one sampling epoch is one round of
// message exchange. Radio latency (milliseconds) is negligible against the
// sampling interval (minutes to hours), so no finer event queue is needed.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ken/internal/network"
	"ken/internal/obs"
)

// Radio holds the energy/cost parameters of the simulated radio and node.
// The defaults (DefaultRadio) are Telos-mote-like orders of magnitude:
// ~0.2 µJ per bit transmitted or received, tiny idle draw, and a pair of
// AA cells.
type Radio struct {
	// TxPerByte and RxPerByte are Joules per payload byte sent/received.
	TxPerByte, RxPerByte float64
	// OverheadBytes is the per-message header cost (preamble, addressing,
	// CRC) added to every transmission.
	OverheadBytes int
	// IdlePerEpoch is the Joules a live node burns per epoch on sensing,
	// CPU and duty-cycled listening, independent of traffic.
	IdlePerEpoch float64
	// BatteryJ is each node's initial energy budget.
	BatteryJ float64
	// LossRate is the independent per-hop probability of losing a message.
	LossRate float64
	// ARQ configures link/transport-layer reliability for SendReliable.
	ARQ ARQConfig
}

// ARQConfig parameterises stop-and-wait ARQ: after a SendReliable the
// destination routes a small ack back (full per-hop energy both ways);
// on silence the sender backs off and retransmits. MaxRetries == 0
// disables ARQ entirely, making SendReliable identical to Send.
type ARQConfig struct {
	// MaxRetries bounds retransmissions per message (0 = ARQ off).
	MaxRetries int
	// AckBytes is the ack payload size; header overhead is added per hop.
	AckBytes int
	// RetryBudget caps the total backoff slots spendable per epoch across
	// all messages, so a lossy epoch cannot retransmit unboundedly
	// (0 = unlimited).
	RetryBudget int
}

// DefaultRadio returns Telos-like parameters. With hourly epochs and no
// traffic a node idles for years; a TinyDB-style full dump shortens that
// dramatically.
func DefaultRadio() Radio {
	return Radio{
		TxPerByte:     2e-6,
		RxPerByte:     2e-6,
		OverheadBytes: 16,
		IdlePerEpoch:  3e-4,
		BatteryJ:      20,
		ARQ:           ARQConfig{AckBytes: 2},
	}
}

// Message is a unicast payload routed hop-by-hop from From to To (either
// may be the base station vertex).
type Message struct {
	From, To int
	// Attrs and Values carry reported attribute indices and their
	// readings; 2 bytes per value on the wire (ADC-width, as on motes).
	Attrs  []int
	Values []float64
}

// bytes returns the payload size on the wire.
func (m Message) bytes(overhead int) int {
	return overhead + 2*len(m.Values) + 2*len(m.Attrs)
}

// Stats aggregates network-wide accounting.
type Stats struct {
	Epochs        int
	MessagesSent  int     // link-level transmissions (one per hop)
	BytesSent     int     // link-level bytes
	Delivered     int     // end-to-end data deliveries (acks excluded)
	DroppedLoss   int     // messages lost to per-hop loss
	DroppedNoPath int     // messages dropped for lack of a live route
	Retransmits   int     // ARQ retransmissions issued
	Acks          int     // link-layer acks sent by destinations
	EnergySpent   float64 // total Joules across all nodes
}

// Network simulates the deployment: topology, batteries, loss.
type Network struct {
	top   *network.Topology
	radio Radio
	rng   *rand.Rand

	energy []float64 // remaining J per sensor node (base is mains-powered)
	alive  []bool
	stats  Stats

	// Per-epoch reliability state, reset by BeginEpoch.
	retxBudget  int // backoff slots left this epoch (-1 = unlimited)
	epochBytes0 int // Stats.BytesSent snapshot at epoch start
	epochRetx0  int // Stats.Retransmits snapshot at epoch start

	// Observability handles (nil and no-op until Instrument is called).
	tracer     *obs.Tracer
	span       *obs.Span      // current epoch span, set by BeginEpoch
	mEpochs    *obs.Counter   // simnet_epochs_total
	mMsgs      *obs.Counter   // simnet_messages_sent_total
	mBytes     *obs.Counter   // simnet_bytes_sent_total
	mDelivered *obs.Counter   // simnet_delivered_total
	mDropLoss  *obs.Counter   // simnet_dropped_loss_total
	mDropRoute *obs.Counter   // simnet_dropped_noroute_total
	mRetx      *obs.Counter   // simnet_retransmits_total
	mAcks      *obs.Counter   // simnet_acks_total
	mDeaths    *obs.Counter   // simnet_node_deaths_total
	gEnergy    *obs.Gauge     // simnet_energy_spent_joules
	gAlive     *obs.Gauge     // simnet_alive_nodes
	hMsgBytes  *obs.Histogram // simnet_message_bytes
}

// ErrNoRoute is returned internally when no live path exists.
var ErrNoRoute = errors.New("simnet: no live route")

// New builds a simulated network over the topology.
func New(top *network.Topology, radio Radio, seed int64) (*Network, error) {
	if top == nil {
		return nil, errors.New("simnet: nil topology")
	}
	if radio.TxPerByte < 0 || radio.RxPerByte < 0 || radio.BatteryJ <= 0 {
		return nil, fmt.Errorf("simnet: invalid radio parameters %+v", radio)
	}
	if radio.LossRate < 0 || radio.LossRate >= 1 {
		return nil, fmt.Errorf("simnet: loss rate %v outside [0,1)", radio.LossRate)
	}
	if a := radio.ARQ; a.MaxRetries < 0 || a.AckBytes < 0 || a.RetryBudget < 0 {
		return nil, fmt.Errorf("simnet: invalid ARQ parameters %+v", a)
	}
	n := top.N()
	net := &Network{
		top:    top,
		radio:  radio,
		rng:    rand.New(rand.NewSource(seed)),
		energy: make([]float64, n),
		alive:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		net.energy[i] = radio.BatteryJ
		net.alive[i] = true
	}
	return net, nil
}

// Instrument attaches metrics and protocol event tracing to the network.
// Call before the first epoch; a nil observer leaves the network
// unobserved (the default).
func (s *Network) Instrument(ob *obs.Observer) {
	s.tracer = ob.Tracer()
	reg := ob.Registry()
	s.mEpochs = reg.Counter("simnet_epochs_total")
	s.mMsgs = reg.Counter("simnet_messages_sent_total")
	s.mBytes = reg.Counter("simnet_bytes_sent_total")
	s.mDelivered = reg.Counter("simnet_delivered_total")
	s.mDropLoss = reg.Counter("simnet_dropped_loss_total")
	s.mDropRoute = reg.Counter("simnet_dropped_noroute_total")
	s.mRetx = reg.Counter("simnet_retransmits_total")
	s.mAcks = reg.Counter("simnet_acks_total")
	s.mDeaths = reg.Counter("simnet_node_deaths_total")
	s.gEnergy = reg.Gauge("simnet_energy_spent_joules")
	s.gAlive = reg.Gauge("simnet_alive_nodes")
	s.hMsgBytes = reg.Histogram("simnet_message_bytes")
	s.gAlive.Set(float64(s.AliveCount()))
}

// Base returns the base station vertex.
func (s *Network) Base() int { return s.top.Base() }

// Alive reports whether sensor node i still has battery.
func (s *Network) Alive(i int) bool { return s.alive[i] }

// AliveCount returns the number of live sensor nodes.
func (s *Network) AliveCount() int {
	c := 0
	for _, a := range s.alive {
		if a {
			c++
		}
	}
	return c
}

// Energy returns node i's remaining battery in Joules.
func (s *Network) Energy(i int) float64 { return s.energy[i] }

// Stats returns a copy of the accumulated accounting.
func (s *Network) Stats() Stats { return s.stats }

// BeginEpoch charges idle energy to every live node and advances the epoch
// counter. Call once per sampling period before sending traffic. It opens
// the epoch's causal span (nil when untraced) and returns it so the
// distributed programs above can parent their traffic to it and close it
// with their audit payload.
func (s *Network) BeginEpoch() *obs.Span {
	s.stats.Epochs++
	if b := s.radio.ARQ.RetryBudget; b > 0 {
		s.retxBudget = b
	} else {
		s.retxBudget = -1
	}
	s.epochBytes0 = s.stats.BytesSent
	s.epochRetx0 = s.stats.Retransmits
	for i := range s.energy {
		if s.alive[i] {
			s.spend(i, s.radio.IdlePerEpoch)
		}
	}
	s.mEpochs.Inc()
	s.gAlive.Set(float64(s.AliveCount()))
	s.span = s.tracer.StartEpoch(obs.Event{
		Step: int64(s.stats.Epochs), Clique: -1, Node: -1,
		N: s.AliveCount(), Detail: "simnet",
	})
	return s.span
}

// EpochSpan returns the current epoch's span (nil when untraced or before
// the first BeginEpoch).
func (s *Network) EpochSpan() *obs.Span { return s.span }

// EpochLinkBytes returns the link-level bytes transmitted so far in the
// current epoch — the radio ledger (every hop of every message, acks
// included), distinct from the protocol ledger of EvReport payloads. See
// docs/OBSERVABILITY.md, "Two byte ledgers".
func (s *Network) EpochLinkBytes() int { return s.stats.BytesSent - s.epochBytes0 }

// EpochRetransmits returns the ARQ retransmissions issued so far in the
// current epoch.
func (s *Network) EpochRetransmits() int { return s.stats.Retransmits - s.epochRetx0 }

// spend drains energy from node i, flipping it dead at zero. The charge
// is clamped to the remaining battery: a node cannot deliver energy it
// does not hold, so Stats.EnergySpent never exceeds N × BatteryJ.
func (s *Network) spend(i int, j float64) {
	if i == s.top.Base() || !s.alive[i] {
		return // the base is mains-powered
	}
	if j > s.energy[i] {
		j = s.energy[i]
	}
	s.energy[i] -= j
	s.stats.EnergySpent += j
	s.gEnergy.Add(j)
	if s.energy[i] <= 0 {
		s.energy[i] = 0
		s.alive[i] = false
		s.mDeaths.Inc()
		s.gAlive.Set(float64(s.AliveCount()))
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{
				Type: obs.EvNodeFailure, Step: int64(s.stats.Epochs), Clique: -1, Node: i,
			})
		}
	}
}

// liveVertex reports whether vertex v can participate in forwarding.
func (s *Network) liveVertex(v int) bool {
	if v == s.top.Base() {
		return true
	}
	return s.alive[v]
}

// Send routes the message hop-by-hop along live neighbours that make
// progress toward the destination, charging energy per hop. It returns
// true when the message reaches its destination. A dead source, a lossy
// hop, or a partitioned network yields false.
func (s *Network) Send(msg Message) bool { return s.SendSpan(msg, nil) }

// SendSpan routes like Send, additionally tracing every link-level
// transmission (EvHop, with from/to/bytes in the payload) and any message
// death (EvDrop, Detail "loss", "noroute" or "dead") through a message
// span parented to cause — typically the report span whose traffic this
// is. A nil cause falls back to the current epoch span; with no tracer
// attached SendSpan is exactly Send.
func (s *Network) SendSpan(msg Message, cause *obs.Span) bool {
	return s.route(msg, msg.bytes(s.radio.OverheadBytes), cause, false)
}

// SendReliable routes like SendSpan and, when the radio's ARQ is enabled
// (MaxRetries > 0), runs stop-and-wait ARQ on top: after each delivery
// the destination routes an ack back (paying per-hop energy in both
// directions); on silence — the data or its ack lost — the sender draws a
// binary-exponential backoff from the deterministic network rng (motes
// have no wall clock, and replays must not either), charges the slots
// against the epoch's retry budget, traces EvRetx, and retransmits, up to
// MaxRetries times. Returns whether the payload reached its destination
// at least once: a lost ack costs a duplicate transmission, never
// correctness.
func (s *Network) SendReliable(msg Message, cause *obs.Span) bool {
	arq := s.radio.ARQ
	if arq.MaxRetries <= 0 {
		return s.SendSpan(msg, cause)
	}
	//lint:ignore obshandle nil selects the fallback parent span here; emission below still guards with Active()
	if cause == nil {
		cause = s.span
	}
	wire := msg.bytes(s.radio.OverheadBytes)
	delivered := false
	for attempt := 0; ; attempt++ {
		if s.route(msg, wire, cause, false) {
			delivered = true
			if s.ackBack(msg, cause) {
				return true
			}
		}
		if attempt >= arq.MaxRetries || !s.liveVertex(msg.From) {
			return delivered
		}
		slots := 1 + s.rng.Intn(1<<uint(attempt))
		if s.retxBudget >= 0 {
			if slots > s.retxBudget {
				return delivered // epoch retry budget exhausted
			}
			s.retxBudget -= slots
		}
		s.stats.Retransmits++
		s.mRetx.Inc()
		if cause.Active() {
			cause.Child().Emit(obs.Event{
				Type: obs.EvRetx, Step: int64(s.stats.Epochs), Clique: -1, Node: msg.From,
				Attrs: msg.Attrs, N: slots,
				Payload: &obs.Payload{From: msg.From, To: msg.To, Attempt: attempt + 1},
			})
		}
	}
}

// ackBack routes the link-layer acknowledgement for msg from its
// destination back to its sender, carrying the acked attrs so trace
// consumers can correlate ack losses with the data they confirmed.
func (s *Network) ackBack(msg Message, cause *obs.Span) bool {
	ack := Message{From: msg.To, To: msg.From, Attrs: msg.Attrs}
	wire := s.radio.OverheadBytes + s.radio.ARQ.AckBytes
	s.stats.Acks++
	s.mAcks.Inc()
	if !s.route(ack, wire, cause, true) {
		return false
	}
	if cause.Active() {
		cause.Child().Emit(obs.Event{
			Type: obs.EvAck, Step: int64(s.stats.Epochs), Clique: -1, Node: msg.From,
			Attrs:   msg.Attrs,
			Payload: &obs.Payload{From: msg.To, To: msg.From, Bytes: wire},
		})
	}
	return true
}

// route is the shared hop-by-hop forwarding engine behind SendSpan and
// the ARQ ack path; wire is the full per-hop byte cost and isAck excludes
// ack traffic from the end-to-end Delivered count.
func (s *Network) route(msg Message, wire int, cause *obs.Span, isAck bool) bool {
	//lint:ignore obshandle nil selects the fallback parent span here; emission below still guards with Active()
	if cause == nil {
		cause = s.span
	}
	var ms *obs.Span
	if cause.Active() {
		ms = cause.Child()
	}
	step := int64(s.stats.Epochs)
	drop := func(node int, detail string) {
		if ms.Active() {
			ms.Emit(obs.Event{
				Type: obs.EvDrop, Step: step, Clique: -1, Node: node, Detail: detail,
				Attrs:   msg.Attrs,
				Payload: &obs.Payload{From: msg.From, To: msg.To},
			})
		}
	}
	if !s.liveVertex(msg.From) {
		s.stats.DroppedNoPath++
		s.mDropRoute.Inc()
		drop(msg.From, "dead")
		return false
	}
	bytes := wire
	s.hMsgBytes.Observe(float64(bytes))
	cur := msg.From
	for cur != msg.To {
		next, err := s.nextHop(cur, msg.To)
		if err != nil {
			s.stats.DroppedNoPath++
			s.mDropRoute.Inc()
			drop(cur, "noroute")
			return false
		}
		// Transmit.
		s.stats.MessagesSent++
		s.stats.BytesSent += bytes
		s.mMsgs.Inc()
		s.mBytes.Add(int64(bytes))
		s.spend(cur, s.radio.TxPerByte*float64(bytes))
		if ms.Active() {
			ms.Emit(obs.Event{
				Type: obs.EvHop, Step: step, Clique: -1, Node: cur,
				Payload: &obs.Payload{From: cur, To: next, Bytes: bytes},
			})
		}
		// Per-hop loss: energy already spent, message gone.
		if s.radio.LossRate > 0 && s.rng.Float64() < s.radio.LossRate {
			s.stats.DroppedLoss++
			s.mDropLoss.Inc()
			drop(cur, "loss")
			return false
		}
		// Receive.
		s.spend(next, s.radio.RxPerByte*float64(bytes))
		if !s.liveVertex(next) {
			// Receiver died mid-receive; the message is lost.
			s.stats.DroppedNoPath++
			s.mDropRoute.Inc()
			drop(next, "dead")
			return false
		}
		cur = next
	}
	if !isAck {
		s.stats.Delivered++
		s.mDelivered.Inc()
	}
	return true
}

// nextHop picks the live neighbour minimising hop-cost plus remaining
// shortest-path distance — greedy geographic-style repair that routes
// around dead nodes without a global recompute. A dead destination is
// still selectable as the final hop: a sender cannot know its receiver's
// battery died, so it transmits (burning Tx energy) and the message dies
// at the receiver.
func (s *Network) nextHop(cur, dst int) (int, error) {
	best, bestCost := -1, math.Inf(1)
	for _, l := range s.top.Neighbors(cur) {
		if !s.liveVertex(l.V) && l.V != dst {
			continue
		}
		c := l.Cost + s.top.Comm(l.V, dst)
		// Require progress to avoid loops among equidistant neighbours.
		if s.top.Comm(l.V, dst) >= s.top.Comm(cur, dst) && l.V != dst {
			continue
		}
		if c < bestCost {
			best, bestCost = l.V, c
		}
	}
	if best < 0 {
		return 0, ErrNoRoute
	}
	return best, nil
}
