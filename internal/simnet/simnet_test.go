package simnet

import (
	"math"
	"testing"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/trace"
)

// chainTop builds 0-1-2-...-(n-1)-base with unit links.
func chainTop(t *testing.T, n int) *network.Topology {
	t.Helper()
	links := make([]network.Link, 0, n)
	for i := 0; i < n; i++ {
		links = append(links, network.Link{U: i, V: i + 1, Cost: 1})
	}
	top, err := network.New(n, links)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestNewValidation(t *testing.T) {
	top := chainTop(t, 3)
	if _, err := New(nil, DefaultRadio(), 1); err == nil {
		t.Fatal("expected error for nil topology")
	}
	bad := DefaultRadio()
	bad.BatteryJ = 0
	if _, err := New(top, bad, 1); err == nil {
		t.Fatal("expected error for zero battery")
	}
	bad = DefaultRadio()
	bad.LossRate = 1
	if _, err := New(top, bad, 1); err == nil {
		t.Fatal("expected error for loss rate 1")
	}
}

func TestSendDeliversAndCharges(t *testing.T) {
	top := chainTop(t, 3)
	radio := DefaultRadio()
	net, err := New(top, radio, 1)
	if err != nil {
		t.Fatal(err)
	}
	msg := Message{From: 0, To: top.Base(), Attrs: []int{0}, Values: []float64{20}}
	if !net.Send(msg) {
		t.Fatal("delivery failed on a clean chain")
	}
	st := net.Stats()
	if st.MessagesSent != 3 { // three hops: 0→1→2→base
		t.Fatalf("hops = %d, want 3", st.MessagesSent)
	}
	if st.Delivered != 1 {
		t.Fatalf("delivered = %d", st.Delivered)
	}
	// Node 0 paid tx once, node 1 rx+tx, node 2 rx+tx, base free.
	bytes := float64(msg.bytes(radio.OverheadBytes))
	wantMiddle := radio.BatteryJ - bytes*(radio.TxPerByte+radio.RxPerByte)
	if got := net.Energy(1); math.Abs(got-wantMiddle) > 1e-12 {
		t.Fatalf("node 1 energy = %v, want %v", got, wantMiddle)
	}
	if got := net.Energy(0); math.Abs(got-(radio.BatteryJ-bytes*radio.TxPerByte)) > 1e-12 {
		t.Fatalf("node 0 energy = %v", got)
	}
}

func TestBeginEpochIdleDrain(t *testing.T) {
	top := chainTop(t, 2)
	radio := DefaultRadio()
	net, err := New(top, radio, 1)
	if err != nil {
		t.Fatal(err)
	}
	net.BeginEpoch()
	net.BeginEpoch()
	if got := net.Energy(0); math.Abs(got-(radio.BatteryJ-2*radio.IdlePerEpoch)) > 1e-12 {
		t.Fatalf("idle drain wrong: %v", got)
	}
	if net.Stats().Epochs != 2 {
		t.Fatalf("epochs = %d", net.Stats().Epochs)
	}
}

func TestDeadNodeKillsRelay(t *testing.T) {
	top := chainTop(t, 3)
	radio := DefaultRadio()
	radio.BatteryJ = 1e-9 // everything dies on first spend
	net, err := New(top, radio, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drain node 1 via idle.
	radioAlive := net.AliveCount()
	if radioAlive != 3 {
		t.Fatalf("alive = %d", radioAlive)
	}
	net.BeginEpoch()
	if net.AliveCount() != 0 {
		t.Fatalf("tiny batteries should all be dead, alive = %d", net.AliveCount())
	}
	if net.Send(Message{From: 0, To: top.Base()}) {
		t.Fatal("dead source should not send")
	}
}

func TestRouteRepairAroundDeadNode(t *testing.T) {
	// Diamond: 0 can reach base via 1 or 2; kill 1 and expect delivery
	// via 2.
	links := []network.Link{
		{U: 0, V: 1, Cost: 1},
		{U: 0, V: 2, Cost: 1.5},
		{U: 1, V: 3, Cost: 1},
		{U: 2, V: 3, Cost: 1.5},
	}
	top, err := network.New(3, links)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(top, DefaultRadio(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Kill node 1 directly.
	net.spend(1, net.Energy(1)+1)
	if net.Alive(1) {
		t.Fatal("node 1 should be dead")
	}
	if !net.Send(Message{From: 0, To: top.Base(), Values: []float64{1}}) {
		t.Fatal("route repair via node 2 failed")
	}
}

func TestLossDropsMessages(t *testing.T) {
	top := chainTop(t, 2)
	radio := DefaultRadio()
	radio.LossRate = 0.5
	net, err := New(top, radio, 7)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 200; i++ {
		if net.Send(Message{From: 0, To: top.Base(), Values: []float64{1}}) {
			delivered++
		}
	}
	// Two hops at 50% each ⇒ ~25% end-to-end delivery.
	if delivered < 20 || delivered > 90 {
		t.Fatalf("delivered %d of 200, want ~50", delivered)
	}
	if net.Stats().DroppedLoss == 0 {
		t.Fatal("no losses recorded")
	}
}

// gardenNet builds an 11-node garden network plus training/test data.
// multihop selects a chain topology (node 10 adjacent to the base, node 0
// eleven hops away — the transect layout); otherwise all nodes reach the
// base directly.
func gardenNet(t *testing.T, radio Radio, seed int64, multihop bool) (*Network, [][]float64, [][]float64, []float64) {
	t.Helper()
	tr, err := trace.GenerateGarden(21, 300)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Deployment.N()
	var top *network.Topology
	if multihop {
		top = chainTop(t, n)
	} else {
		top, err = network.Uniform(n, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
	}
	net, err := New(top, radio, seed)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	return net, rows[:100], rows[100:], eps
}

// pairsPartition covers n attributes with pairs (plus a final singleton).
func pairsPartition(n int) *cliques.Partition {
	p := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
		} else {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	return p
}

func TestDistributedKenCleanNetworkKeepsGuarantee(t *testing.T) {
	net, train, test, eps := gardenNet(t, DefaultRadio(), 1, false)
	prog, err := NewDistributedKen(net, pairsPartition(11), train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	totalViolations, totalDelivered := 0, 0
	for _, row := range test {
		res, err := prog.Epoch(row)
		if err != nil {
			t.Fatal(err)
		}
		totalViolations += res.Violations
		totalDelivered += res.ValuesDelivered
	}
	if totalViolations != 0 {
		t.Fatalf("clean network violated ε %d times", totalViolations)
	}
	if totalDelivered == 0 || totalDelivered >= len(test)*11 {
		t.Fatalf("delivered %d values, expected partial reporting", totalDelivered)
	}
}

func TestDistributedKenLossCausesTransientViolations(t *testing.T) {
	radio := DefaultRadio()
	radio.LossRate = 0.3
	net, train, test, eps := gardenNet(t, radio, 2, false)
	prog, err := NewDistributedKen(net, pairsPartition(11), train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	totalViolations := 0
	for _, row := range test {
		res, err := prog.Epoch(row)
		if err != nil {
			t.Fatal(err)
		}
		totalViolations += res.Violations
	}
	if totalViolations == 0 {
		t.Fatal("30% loss should cause some violations")
	}
	// But divergence stays transient: far fewer violations than readings.
	if totalViolations >= len(test)*11/2 {
		t.Fatalf("violations %d of %d — divergence not transient", totalViolations, len(test)*11)
	}
}

func TestDistributedKenOutlivesTinyDB(t *testing.T) {
	// The headline energy claim: with small batteries, TinyDB's full dump
	// kills nodes much sooner than Ken's model-driven silence.
	radio := DefaultRadio()
	radio.BatteryJ = 0.012 // tiny batteries so deaths occur within the test window
	radio.IdlePerEpoch = 1e-5

	netT, train, test, eps := gardenNet(t, radio, 3, true)
	tiny, err := NewDistributedTinyDB(netT, eps)
	if err != nil {
		t.Fatal(err)
	}
	tinyDeath, _, err := RunLifetime(netT, tiny, test)
	if err != nil {
		t.Fatal(err)
	}

	netK, train2, test2, eps2 := gardenNet(t, radio, 3, true)
	ken, err := NewDistributedKen(netK, pairsPartition(11), train2, eps2, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	kenDeath, _, err := RunLifetime(netK, ken, test2)
	if err != nil {
		t.Fatal(err)
	}
	_ = train
	if tinyDeath < 0 {
		t.Fatal("TinyDB should exhaust the relay node within the window")
	}
	if kenDeath >= 0 && kenDeath <= tinyDeath {
		t.Fatalf("Ken first death at %d, TinyDB at %d — Ken should last longer", kenDeath, tinyDeath)
	}
}

func TestDistributedTinyDBExactWhileAlive(t *testing.T) {
	net, _, test, eps := gardenNet(t, DefaultRadio(), 4, false)
	prog, err := NewDistributedTinyDB(net, eps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Epoch(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 || res.ValuesDelivered != 11 {
		t.Fatalf("clean tinydb epoch: %d violations, %d delivered", res.Violations, res.ValuesDelivered)
	}
	for i, v := range res.Estimates {
		if v != test[0][i] {
			t.Fatalf("estimate %d = %v, want exact %v", i, v, test[0][i])
		}
	}
}

func TestDistributedKenValidation(t *testing.T) {
	net, train, _, eps := gardenNet(t, DefaultRadio(), 5, false)
	if _, err := NewDistributedKen(nil, pairsPartition(11), train, eps, model.FitConfig{}); err == nil {
		t.Fatal("expected error for nil network")
	}
	if _, err := NewDistributedKen(net, pairsPartition(11), nil, eps, model.FitConfig{}); err == nil {
		t.Fatal("expected error for empty training data")
	}
	if _, err := NewDistributedKen(net, pairsPartition(3), train, eps, model.FitConfig{}); err == nil {
		t.Fatal("expected error for bad partition")
	}
	if _, err := NewDistributedKen(net, pairsPartition(11), train, eps[:3], model.FitConfig{}); err == nil {
		t.Fatal("expected error for eps mismatch")
	}
	if _, err := NewDistributedTinyDB(net, eps[:2]); err == nil {
		t.Fatal("expected error for eps mismatch")
	}
}

func TestMessageBytes(t *testing.T) {
	m := Message{Attrs: []int{1, 2}, Values: []float64{1, 2}}
	if got := m.bytes(16); got != 16+4+4 {
		t.Fatalf("bytes = %d, want 24", got)
	}
}

// TestEnergyConservation: total energy spent plus remaining batteries must
// equal the initial budget, regardless of traffic pattern.
func TestEnergyConservation(t *testing.T) {
	radio := DefaultRadio()
	net, train, test, eps := gardenNet(t, radio, 8, true)
	prog, err := NewDistributedKen(net, pairsPartition(11), train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range test[:100] {
		if _, err := prog.Epoch(row); err != nil {
			t.Fatal(err)
		}
	}
	remaining := 0.0
	for i := 0; i < 11; i++ {
		remaining += net.Energy(i)
	}
	initial := radio.BatteryJ * 11
	if diff := math.Abs(initial - remaining - net.Stats().EnergySpent); diff > 1e-9 {
		t.Fatalf("energy leak: initial %v, remaining %v, spent %v (diff %v)",
			initial, remaining, net.Stats().EnergySpent, diff)
	}
}

// TestDeadRootSilencesCliqueButEpochContinues: killing a clique root must
// not wedge the protocol — the sink predicts blind for that clique and
// counts violations when predictions drift.
func TestDeadRootSilencesCliqueButEpochContinues(t *testing.T) {
	radio := DefaultRadio()
	net, train, test, eps := gardenNet(t, radio, 9, false)
	prog, err := NewDistributedKen(net, pairsPartition(11), train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Kill node 0, the root of clique {0,1}.
	net.spend(0, net.Energy(0)+1)
	if net.Alive(0) {
		t.Fatal("node 0 should be dead")
	}
	violations := 0
	for _, row := range test[:150] {
		res, err := prog.Epoch(row)
		if err != nil {
			t.Fatal(err)
		}
		violations += res.Violations
	}
	if violations == 0 {
		t.Fatal("a dead clique root should eventually cause prediction violations")
	}
	// The healthy cliques keep the damage localized: violations are far
	// below total readings.
	if violations > 150*11/2 {
		t.Fatalf("violations %d — dead root poisoned healthy cliques", violations)
	}
}

func TestDistributedAverageCleanNetwork(t *testing.T) {
	net, train, test, eps := gardenNet(t, DefaultRadio(), 12, true)
	prog, err := NewDistributedAverage(net, train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	violations, delivered := 0, 0
	for _, row := range test {
		res, err := prog.Epoch(row)
		if err != nil {
			t.Fatal(err)
		}
		violations += res.Violations
		delivered += res.ValuesDelivered
	}
	if violations != 0 {
		t.Fatalf("clean network: %d violations", violations)
	}
	if delivered == 0 || delivered >= len(test)*11 {
		t.Fatalf("delivered %d, expected partial reporting", delivered)
	}
	// Aggregation + dissemination traffic flows every epoch: message count
	// far exceeds the reported values alone.
	if st := net.Stats(); st.MessagesSent <= delivered {
		t.Fatalf("aggregation traffic missing: %d messages for %d reports", st.MessagesSent, delivered)
	}
}

func TestDistributedAverageValidation(t *testing.T) {
	net, train, _, eps := gardenNet(t, DefaultRadio(), 13, false)
	if _, err := NewDistributedAverage(nil, train, eps, model.FitConfig{}); err == nil {
		t.Fatal("expected error for nil network")
	}
	if _, err := NewDistributedAverage(net, train[:1], eps, model.FitConfig{}); err == nil {
		t.Fatal("expected error for too little training data")
	}
	if _, err := NewDistributedAverage(net, train, eps[:2], model.FitConfig{}); err == nil {
		t.Fatal("expected error for eps mismatch")
	}
}

func TestDistributedAverageFixedCostHurtsLifetime(t *testing.T) {
	// The paper's §5.3 argument: the Average model's fixed per-epoch
	// aggregation/dissemination traffic makes it structurally more
	// expensive than Ken's cliques. On equal batteries, Avg's first death
	// must come no later than Ken's.
	radio := DefaultRadio()
	radio.BatteryJ = 0.012
	radio.IdlePerEpoch = 1e-5

	netA, train, test, eps := gardenNet(t, radio, 14, true)
	avg, err := NewDistributedAverage(netA, train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	avgDeath, _, err := RunLifetime(netA, avg, test)
	if err != nil {
		t.Fatal(err)
	}

	netK, train2, test2, eps2 := gardenNet(t, radio, 14, true)
	ken, err := NewDistributedKen(netK, pairsPartition(11), train2, eps2, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	kenDeath, _, err := RunLifetime(netK, ken, test2)
	if err != nil {
		t.Fatal(err)
	}
	if avgDeath < 0 {
		avgDeath = len(test) + 1
	}
	if kenDeath < 0 {
		kenDeath = len(test2) + 1
	}
	if avgDeath > kenDeath {
		t.Fatalf("Avg first death %d later than Ken %d — fixed aggregation cost unaccounted", avgDeath, kenDeath)
	}
}

// TestDistributedKenMatchesCoreEngine: on a loss-free network the
// packet-level program runs the identical protocol to the idealised
// core.Ken scheme — same models, same reports, same estimates, step for
// step. This ties the two engines together exactly.
func TestDistributedKenMatchesCoreEngine(t *testing.T) {
	net, train, test, eps := gardenNet(t, DefaultRadio(), 15, false)
	part := pairsPartition(11)
	prog, err := NewDistributedKen(net, part, train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := core.NewKen(core.KenConfig{
		Partition: part,
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	for step, row := range test[:200] {
		dres, err := prog.Epoch(row)
		if err != nil {
			t.Fatal(err)
		}
		iest, ist, err := ideal.Step(row)
		if err != nil {
			t.Fatal(err)
		}
		if dres.ValuesDelivered != ist.ValuesReported {
			t.Fatalf("step %d: distributed delivered %d, core reported %d",
				step, dres.ValuesDelivered, ist.ValuesReported)
		}
		for i := range iest {
			if diff := dres.Estimates[i] - iest[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("step %d attr %d: estimates diverged %v vs %v",
					step, i, dres.Estimates[i], iest[i])
			}
		}
	}
}

// TestDistributedAverageMatchesCoreEngine: on a loss-free network the
// packet-level Average program and the idealised core.Average scheme run
// the identical protocol (lagged disseminated average, same models), so
// their reports and estimates must agree step for step.
func TestDistributedAverageMatchesCoreEngine(t *testing.T) {
	net, train, test, eps := gardenNet(t, DefaultRadio(), 16, false)
	prog, err := NewDistributedAverage(net, train, eps, model.FitConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := core.NewAverage(train, eps, model.FitConfig{Period: 24}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step, row := range test[:150] {
		dres, err := prog.Epoch(row)
		if err != nil {
			t.Fatal(err)
		}
		iest, ist, err := ideal.Step(row)
		if err != nil {
			t.Fatal(err)
		}
		if dres.ValuesDelivered != ist.ValuesReported {
			t.Fatalf("step %d: distributed delivered %d, core reported %d",
				step, dres.ValuesDelivered, ist.ValuesReported)
		}
		for i := range iest {
			if diff := dres.Estimates[i] - iest[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("step %d attr %d: estimates diverged %v vs %v",
					step, i, dres.Estimates[i], iest[i])
			}
		}
	}
}
