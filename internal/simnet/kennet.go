package simnet

import (
	"fmt"
	"math"
	"sort"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/obs"
)

// Program is a distributed data-collection protocol executing over the
// simulated network, one Epoch call per sampling period.
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Epoch feeds the ground-truth readings of all sensor nodes for one
	// sampling period and returns the base station's view.
	Epoch(truth []float64) (EpochResult, error)
}

// EpochResult is the base station's per-epoch outcome.
type EpochResult struct {
	// Estimates is the base station's answer vector (one per node).
	Estimates []float64
	// ValuesDelivered counts attribute values that reached the base.
	ValuesDelivered int
	// Violations counts nodes whose estimate missed ε this epoch — caused
	// only by message loss or dead nodes; zero on a clean network.
	Violations int
	// Stale flags estimates served from a clique the base-station failure
	// detector currently suspects — graceful degradation instead of
	// silently serving possibly-dead sources. Nil when failure detection
	// is disabled (KenNetConfig.FailureAlpha == 0).
	Stale []bool
	// SuspectedCliques counts cliques currently under suspicion.
	SuspectedCliques int
}

// KenNetConfig tunes DistributedKen's reliability layer. The zero value
// reproduces the bare protocol (no heartbeats, no failure detection);
// message-level ARQ is configured separately on the Radio.
type KenNetConfig struct {
	// HeartbeatEvery makes every HeartbeatEvery-th epoch a heartbeat: the
	// root ships ALL values it collected (not the minimal report set),
	// re-synchronising the sink replica so divergence after loss is
	// transient per the Markov argument of §6. 0 disables.
	HeartbeatEvery int
	// FailureAlpha, when > 0, wires one core.FailureDetector per clique
	// at the base station, fed by report arrivals: a clique whose silence
	// is less probable than FailureAlpha under its fitted report rate is
	// suspected and its estimates are flagged Stale in EpochResult.
	FailureAlpha float64
}

// DistributedKen runs Ken as true node programs over the simulator:
// clique members unicast their readings to the clique root every epoch
// (intra-source), the root executes the source replica and unicasts each
// report value to the base (source-sink, one data unit per message as in
// §5.2), and the base executes the sink replicas.
//
// Unlike core.Ken — which scores an idealised protocol — DistributedKen
// inherits the network's failure modes: collection messages from dying
// members leave the root partially informed, lost reports desynchronise
// the replicas, and dead roots silence whole cliques.
type DistributedKen struct {
	net   *Network
	eps   []float64
	n     int
	cl    []distClique
	cfg   KenNetConfig
	epoch int // local epoch counter scheduling heartbeats
}

type distClique struct {
	members []int
	root    int
	src     model.Model // executes at the clique root
	sink    model.Model // executes at the base station
	eps     []float64
	det     *core.FailureDetector // at the base; nil when detection is off
}

var _ Program = (*DistributedKen)(nil)

// NewDistributedKen fits per-clique models and installs the node programs
// with the bare protocol (KenNetConfig zero value).
func NewDistributedKen(net *Network, part *cliques.Partition, train [][]float64, eps []float64, fitCfg model.FitConfig) (*DistributedKen, error) {
	return NewDistributedKenConfig(net, part, train, eps, fitCfg, KenNetConfig{})
}

// NewDistributedKenConfig is NewDistributedKen with an explicit
// reliability configuration. Instrument the network before constructing
// the program so the failure detectors share its tracer.
func NewDistributedKenConfig(net *Network, part *cliques.Partition, train [][]float64, eps []float64, fitCfg model.FitConfig, cfg KenNetConfig) (*DistributedKen, error) {
	if net == nil {
		return nil, fmt.Errorf("simnet: nil network")
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("simnet: empty training data")
	}
	n := len(train[0])
	if n != net.top.N() {
		return nil, fmt.Errorf("simnet: training dim %d, network has %d nodes", n, net.top.N())
	}
	if len(eps) != n {
		return nil, fmt.Errorf("simnet: eps dim %d, want %d", len(eps), n)
	}
	if err := part.Validate(n); err != nil {
		return nil, err
	}
	if cfg.HeartbeatEvery < 0 {
		return nil, fmt.Errorf("simnet: heartbeat interval %d must be >= 0", cfg.HeartbeatEvery)
	}
	if cfg.FailureAlpha < 0 || cfg.FailureAlpha >= 1 {
		return nil, fmt.Errorf("simnet: failure alpha %v outside [0,1)", cfg.FailureAlpha)
	}
	d := &DistributedKen{net: net, eps: append([]float64(nil), eps...), n: n, cfg: cfg}
	for _, c := range part.Cliques {
		cols := make([][]float64, len(train))
		for t, row := range train {
			r := make([]float64, len(c.Members))
			for i, g := range c.Members {
				r[i] = row[g]
			}
			cols[t] = r
		}
		mdl, err := model.FitLinearGaussian(cols, fitCfg)
		if err != nil {
			return nil, fmt.Errorf("simnet: fitting clique %v: %w", c.Members, err)
		}
		le := make([]float64, len(c.Members))
		for i, g := range c.Members {
			le[i] = eps[g]
		}
		dc := distClique{
			members: append([]int(nil), c.Members...),
			root:    c.Root,
			src:     mdl.Clone(),
			sink:    mdl.Clone(),
			eps:     le,
		}
		if cfg.FailureAlpha > 0 {
			det, err := core.NewFailureDetector(reportRate(mdl, cols, le, cfg.HeartbeatEvery), cfg.FailureAlpha)
			if err != nil {
				return nil, fmt.Errorf("simnet: failure detector for clique %v: %w", c.Members, err)
			}
			det.Instrument(net.tracer, len(d.cl), c.Root)
			dc.det = det
		}
		d.cl = append(d.cl, dc)
	}
	return d, nil
}

// reportRate estimates a clique's per-epoch report probability by
// replaying the training rows through a clone of the fitted model and
// counting epochs with a non-empty minimal report set — the m_C the
// failure detector needs (§6). Heartbeats guarantee a report at least
// every hb epochs, so they floor the rate; the result is clamped away
// from {0,1} to keep the detector's log-probabilities finite.
func reportRate(m model.Model, rows [][]float64, eps []float64, hb int) float64 {
	clone := m.Clone()
	reports := 0
	for _, row := range rows {
		clone.Step()
		avail := make(map[int]float64, len(row))
		for i, v := range row {
			avail[i] = v
		}
		sent, err := model.ChooseReportGreedyPartial(clone, avail, eps)
		if err != nil {
			break // fall through to the clamped estimate so far
		}
		if len(sent) > 0 {
			reports++
		}
		if err := clone.Condition(sent); err != nil {
			break
		}
	}
	rate := 0.0
	if len(rows) > 0 {
		rate = float64(reports) / float64(len(rows))
	}
	if hb > 0 {
		if floor := 1 / float64(hb); rate < floor {
			rate = floor
		}
	}
	return math.Min(0.98, math.Max(0.02, rate))
}

// Name implements Program.
func (d *DistributedKen) Name() string { return "ken" }

// Epoch implements Program.
func (d *DistributedKen) Epoch(truth []float64) (EpochResult, error) {
	if len(truth) != d.n {
		return EpochResult{}, fmt.Errorf("simnet: truth dim %d, want %d", len(truth), d.n)
	}
	sp := d.net.BeginEpoch()
	d.epoch++
	heartbeat := d.cfg.HeartbeatEvery > 0 && d.epoch%d.cfg.HeartbeatEvery == 0
	if heartbeat && sp.Active() {
		sp.Emit(obs.Event{Type: obs.EvResync, Step: int64(d.net.stats.Epochs), Clique: -1, Node: -1})
	}
	res := EpochResult{Estimates: make([]float64, d.n)}
	if d.cfg.FailureAlpha > 0 {
		res.Stale = make([]bool, d.n)
	}
	reportBytes := 0
	for ci := range d.cl {
		c := &d.cl[ci]
		// Phase 1 — intra-source collection: each live member ships its
		// reading to the clique root (the root's own reading is local).
		// Members cannot know whether the root is still alive, so they
		// transmit regardless, burning Tx energy; the message dies at a
		// dead receiver.
		avail := map[int]float64{}
		rootAlive := d.net.Alive(c.root)
		for i, g := range c.members {
			if g == c.root {
				if rootAlive {
					avail[i] = truth[g]
				}
				continue
			}
			ok := d.net.SendReliable(Message{From: g, To: c.root, Attrs: []int{g}, Values: []float64{truth[g]}}, sp)
			if ok {
				avail[i] = truth[g]
			}
		}

		// Phase 2 — inference at the root and minimal reporting. Both
		// replicas advance even when the root is dead: the sink keeps
		// predicting from the model (that is the point of Ken).
		c.src.Step()
		c.sink.Step()
		var pred []float64
		if sp.Active() {
			pred = append([]float64(nil), c.sink.Mean()...)
		}
		var sent map[int]float64
		if rootAlive && len(avail) > 0 {
			if heartbeat {
				// Heartbeat: ship everything the root collected, not the
				// minimal set — a full resync of the sink replica (§6).
				sent = avail
			} else {
				var err error
				sent, err = model.ChooseReportGreedyPartial(c.src, avail, c.eps)
				if err != nil {
					return EpochResult{}, err
				}
			}
		}
		// The source believes what it transmitted (it cannot observe
		// loss); the sink conditions on what actually arrived.
		if err := c.src.Condition(sent); err != nil {
			return EpochResult{}, err
		}
		// The report is a child span of the epoch; its unicasts (and any
		// loss along the way) trace as grandchildren, so the auditor can
		// tell a silent divergence from an explained one.
		reportBytes += obs.WireBytesPerValue * len(sent)
		var rs *obs.Span
		if sp.Active() && len(sent) > 0 {
			rs = sp.Child()
			attrs := make([]int, 0, len(sent))
			values := make([]float64, 0, len(sent))
			preds := make([]float64, 0, len(sent))
			epsR := make([]float64, 0, len(sent))
			for _, i := range sortedKeys(sent) {
				attrs = append(attrs, c.members[i])
				values = append(values, sent[i])
				preds = append(preds, pred[i])
				epsR = append(epsR, c.eps[i])
			}
			rs.Emit(obs.Event{
				Type: obs.EvReport, Step: int64(d.net.stats.Epochs), Clique: ci, Node: c.root,
				Attrs: attrs, Values: values,
				Payload: &obs.Payload{
					Predicted: preds, Observed: values, Eps: epsR,
					Bytes: obs.WireBytesPerValue * len(attrs),
				},
			})
		}
		delivered := map[int]float64{}
		for _, i := range sortedKeys(sent) {
			g := c.members[i]
			if d.net.SendReliable(Message{From: c.root, To: d.net.Base(), Attrs: []int{g}, Values: []float64{sent[i]}}, rs) {
				delivered[i] = sent[i]
			}
		}
		if err := c.sink.Condition(delivered); err != nil {
			return EpochResult{}, err
		}
		res.ValuesDelivered += len(delivered)
		if rs.Active() && len(delivered) > 0 {
			attrs := make([]int, 0, len(delivered))
			values := make([]float64, 0, len(delivered))
			for _, i := range sortedKeys(delivered) {
				attrs = append(attrs, c.members[i])
				values = append(values, delivered[i])
			}
			rs.Child().Emit(obs.Event{
				Type: obs.EvApply, Step: int64(d.net.stats.Epochs), Clique: ci, Node: d.net.Base(),
				Attrs: attrs, Values: values, N: len(attrs),
			})
		}

		// Phase 3 — the base answers from the sink replica. The per-clique
		// failure detector watches report arrivals: a suspected clique's
		// estimates are still served (the model is all the base has) but
		// flagged stale instead of being passed off as live data.
		suspected := false
		if c.det != nil {
			suspected = c.det.Observe(len(delivered) > 0)
			if suspected {
				res.SuspectedCliques++
			}
		}
		mean := c.sink.Mean()
		for i, g := range c.members {
			res.Estimates[g] = mean[i]
			if suspected {
				res.Stale[g] = true
			}
			if diff := mean[i] - truth[g]; diff > d.eps[g] || diff < -d.eps[g] {
				res.Violations++
			}
		}
	}
	if sp.Active() {
		sp.EndEpoch(obs.Event{
			Step: int64(d.net.stats.Epochs), Clique: -1, Node: -1, N: res.ValuesDelivered,
			Payload: &obs.Payload{
				Predicted: res.Estimates, Observed: truth, Eps: d.eps,
				Bytes:     reportBytes,
				LinkBytes: d.net.EpochLinkBytes(),
				Retx:      d.net.EpochRetransmits(),
			},
		})
	}
	return res, nil
}

// sortedKeys iterates a report set deterministically.
func sortedKeys(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// DistributedTinyDB is the exact-collection node program: every live node
// unicasts its reading to the base each epoch.
type DistributedTinyDB struct {
	net  *Network
	n    int
	eps  []float64
	last []float64 // base's last delivered value per node
	seen []bool
}

var _ Program = (*DistributedTinyDB)(nil)

// NewDistributedTinyDB installs the TinyDB-style program.
func NewDistributedTinyDB(net *Network, eps []float64) (*DistributedTinyDB, error) {
	if net == nil {
		return nil, fmt.Errorf("simnet: nil network")
	}
	n := net.top.N()
	if len(eps) != n {
		return nil, fmt.Errorf("simnet: eps dim %d, want %d", len(eps), n)
	}
	return &DistributedTinyDB{
		net:  net,
		n:    n,
		eps:  append([]float64(nil), eps...),
		last: make([]float64, n),
		seen: make([]bool, n),
	}, nil
}

// Name implements Program.
func (d *DistributedTinyDB) Name() string { return "tinydb" }

// Epoch implements Program.
func (d *DistributedTinyDB) Epoch(truth []float64) (EpochResult, error) {
	if len(truth) != d.n {
		return EpochResult{}, fmt.Errorf("simnet: truth dim %d, want %d", len(truth), d.n)
	}
	sp := d.net.BeginEpoch()
	res := EpochResult{Estimates: make([]float64, d.n)}
	for i := 0; i < d.n; i++ {
		if d.net.Alive(i) &&
			d.net.SendSpan(Message{From: i, To: d.net.Base(), Attrs: []int{i}, Values: []float64{truth[i]}}, sp) {
			d.last[i] = truth[i]
			d.seen[i] = true
			res.ValuesDelivered++
		}
		res.Estimates[i] = d.last[i]
		if !d.seen[i] {
			res.Violations++
			continue
		}
		if diff := d.last[i] - truth[i]; diff > d.eps[i] || diff < -d.eps[i] {
			res.Violations++
		}
	}
	if sp.Active() {
		sp.EndEpoch(obs.Event{
			Step: int64(d.net.stats.Epochs), Clique: -1, Node: -1, N: res.ValuesDelivered,
			Payload: &obs.Payload{
				Predicted: res.Estimates, Observed: truth, Eps: d.eps,
				LinkBytes: d.net.EpochLinkBytes(), Retx: d.net.EpochRetransmits(),
			},
		})
	}
	return res, nil
}

// RunLifetime drives a program over the trace rows until the network's
// first node dies or the rows run out, then returns (epochs survived by
// the full network, total epochs executed). Use fresh Network/Program
// pairs per run.
func RunLifetime(net *Network, prog Program, rows [][]float64) (firstDeath, epochs int, err error) {
	firstDeath = -1
	for t, row := range rows {
		if _, err := prog.Epoch(row); err != nil {
			return 0, 0, err
		}
		epochs++
		if firstDeath < 0 && net.AliveCount() < net.top.N() {
			firstDeath = t + 1
		}
	}
	return firstDeath, epochs, nil
}
