package simnet

import (
	"fmt"
	"sort"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/obs"
)

// Program is a distributed data-collection protocol executing over the
// simulated network, one Epoch call per sampling period.
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Epoch feeds the ground-truth readings of all sensor nodes for one
	// sampling period and returns the base station's view.
	Epoch(truth []float64) (EpochResult, error)
}

// EpochResult is the base station's per-epoch outcome.
type EpochResult struct {
	// Estimates is the base station's answer vector (one per node).
	Estimates []float64
	// ValuesDelivered counts attribute values that reached the base.
	ValuesDelivered int
	// Violations counts nodes whose estimate missed ε this epoch — caused
	// only by message loss or dead nodes; zero on a clean network.
	Violations int
}

// DistributedKen runs Ken as true node programs over the simulator:
// clique members unicast their readings to the clique root every epoch
// (intra-source), the root executes the source replica and unicasts each
// report value to the base (source-sink, one data unit per message as in
// §5.2), and the base executes the sink replicas.
//
// Unlike core.Ken — which scores an idealised protocol — DistributedKen
// inherits the network's failure modes: collection messages from dying
// members leave the root partially informed, lost reports desynchronise
// the replicas, and dead roots silence whole cliques.
type DistributedKen struct {
	net *Network
	eps []float64
	n   int
	cl  []distClique
}

type distClique struct {
	members []int
	root    int
	src     model.Model // executes at the clique root
	sink    model.Model // executes at the base station
	eps     []float64
}

var _ Program = (*DistributedKen)(nil)

// NewDistributedKen fits per-clique models and installs the node programs.
func NewDistributedKen(net *Network, part *cliques.Partition, train [][]float64, eps []float64, fitCfg model.FitConfig) (*DistributedKen, error) {
	if net == nil {
		return nil, fmt.Errorf("simnet: nil network")
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("simnet: empty training data")
	}
	n := len(train[0])
	if n != net.top.N() {
		return nil, fmt.Errorf("simnet: training dim %d, network has %d nodes", n, net.top.N())
	}
	if len(eps) != n {
		return nil, fmt.Errorf("simnet: eps dim %d, want %d", len(eps), n)
	}
	if err := part.Validate(n); err != nil {
		return nil, err
	}
	d := &DistributedKen{net: net, eps: append([]float64(nil), eps...), n: n}
	for _, c := range part.Cliques {
		cols := make([][]float64, len(train))
		for t, row := range train {
			r := make([]float64, len(c.Members))
			for i, g := range c.Members {
				r[i] = row[g]
			}
			cols[t] = r
		}
		mdl, err := model.FitLinearGaussian(cols, fitCfg)
		if err != nil {
			return nil, fmt.Errorf("simnet: fitting clique %v: %w", c.Members, err)
		}
		le := make([]float64, len(c.Members))
		for i, g := range c.Members {
			le[i] = eps[g]
		}
		d.cl = append(d.cl, distClique{
			members: append([]int(nil), c.Members...),
			root:    c.Root,
			src:     mdl.Clone(),
			sink:    mdl.Clone(),
			eps:     le,
		})
	}
	return d, nil
}

// Name implements Program.
func (d *DistributedKen) Name() string { return "ken" }

// Epoch implements Program.
func (d *DistributedKen) Epoch(truth []float64) (EpochResult, error) {
	if len(truth) != d.n {
		return EpochResult{}, fmt.Errorf("simnet: truth dim %d, want %d", len(truth), d.n)
	}
	sp := d.net.BeginEpoch()
	res := EpochResult{Estimates: make([]float64, d.n)}
	for ci := range d.cl {
		c := &d.cl[ci]
		// Phase 1 — intra-source collection: each live member ships its
		// reading to the clique root (the root's own reading is local).
		avail := map[int]float64{}
		rootAlive := d.net.Alive(c.root)
		for i, g := range c.members {
			if g == c.root {
				if rootAlive {
					avail[i] = truth[g]
				}
				continue
			}
			if !rootAlive {
				continue // nobody to collect at
			}
			ok := d.net.SendSpan(Message{From: g, To: c.root, Attrs: []int{g}, Values: []float64{truth[g]}}, sp)
			if ok {
				avail[i] = truth[g]
			}
		}

		// Phase 2 — inference at the root and minimal reporting. Both
		// replicas advance even when the root is dead: the sink keeps
		// predicting from the model (that is the point of Ken).
		c.src.Step()
		c.sink.Step()
		var pred []float64
		if sp.Active() {
			pred = append([]float64(nil), c.sink.Mean()...)
		}
		var sent map[int]float64
		if rootAlive && len(avail) > 0 {
			var err error
			sent, err = model.ChooseReportGreedyPartial(c.src, avail, c.eps)
			if err != nil {
				return EpochResult{}, err
			}
		}
		// The source believes what it transmitted (it cannot observe
		// loss); the sink conditions on what actually arrived.
		if err := c.src.Condition(sent); err != nil {
			return EpochResult{}, err
		}
		// The report is a child span of the epoch; its unicasts (and any
		// loss along the way) trace as grandchildren, so the auditor can
		// tell a silent divergence from an explained one.
		var rs *obs.Span
		if sp.Active() && len(sent) > 0 {
			rs = sp.Child()
			attrs := make([]int, 0, len(sent))
			values := make([]float64, 0, len(sent))
			preds := make([]float64, 0, len(sent))
			epsR := make([]float64, 0, len(sent))
			for _, i := range sortedKeys(sent) {
				attrs = append(attrs, c.members[i])
				values = append(values, sent[i])
				preds = append(preds, pred[i])
				epsR = append(epsR, c.eps[i])
			}
			rs.Emit(obs.Event{
				Type: obs.EvReport, Step: int64(d.net.stats.Epochs), Clique: ci, Node: c.root,
				Attrs: attrs, Values: values,
				Payload: &obs.Payload{
					Predicted: preds, Observed: values, Eps: epsR,
					Bytes: obs.WireBytesPerValue * len(attrs),
				},
			})
		}
		delivered := map[int]float64{}
		for _, i := range sortedKeys(sent) {
			g := c.members[i]
			if d.net.SendSpan(Message{From: c.root, To: d.net.Base(), Attrs: []int{g}, Values: []float64{sent[i]}}, rs) {
				delivered[i] = sent[i]
			}
		}
		if err := c.sink.Condition(delivered); err != nil {
			return EpochResult{}, err
		}
		res.ValuesDelivered += len(delivered)
		if rs.Active() && len(delivered) > 0 {
			attrs := make([]int, 0, len(delivered))
			values := make([]float64, 0, len(delivered))
			for _, i := range sortedKeys(delivered) {
				attrs = append(attrs, c.members[i])
				values = append(values, delivered[i])
			}
			rs.Child().Emit(obs.Event{
				Type: obs.EvApply, Step: int64(d.net.stats.Epochs), Clique: ci, Node: d.net.Base(),
				Attrs: attrs, Values: values, N: len(attrs),
			})
		}

		// Phase 3 — the base answers from the sink replica.
		mean := c.sink.Mean()
		for i, g := range c.members {
			res.Estimates[g] = mean[i]
			if diff := mean[i] - truth[g]; diff > d.eps[g] || diff < -d.eps[g] {
				res.Violations++
			}
		}
	}
	if sp.Active() {
		sp.EndEpoch(obs.Event{
			Step: int64(d.net.stats.Epochs), Clique: -1, Node: -1, N: res.ValuesDelivered,
			Payload: &obs.Payload{Predicted: res.Estimates, Observed: truth, Eps: d.eps},
		})
	}
	return res, nil
}

// sortedKeys iterates a report set deterministically.
func sortedKeys(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// DistributedTinyDB is the exact-collection node program: every live node
// unicasts its reading to the base each epoch.
type DistributedTinyDB struct {
	net  *Network
	n    int
	eps  []float64
	last []float64 // base's last delivered value per node
	seen []bool
}

var _ Program = (*DistributedTinyDB)(nil)

// NewDistributedTinyDB installs the TinyDB-style program.
func NewDistributedTinyDB(net *Network, eps []float64) (*DistributedTinyDB, error) {
	if net == nil {
		return nil, fmt.Errorf("simnet: nil network")
	}
	n := net.top.N()
	if len(eps) != n {
		return nil, fmt.Errorf("simnet: eps dim %d, want %d", len(eps), n)
	}
	return &DistributedTinyDB{
		net:  net,
		n:    n,
		eps:  append([]float64(nil), eps...),
		last: make([]float64, n),
		seen: make([]bool, n),
	}, nil
}

// Name implements Program.
func (d *DistributedTinyDB) Name() string { return "tinydb" }

// Epoch implements Program.
func (d *DistributedTinyDB) Epoch(truth []float64) (EpochResult, error) {
	if len(truth) != d.n {
		return EpochResult{}, fmt.Errorf("simnet: truth dim %d, want %d", len(truth), d.n)
	}
	sp := d.net.BeginEpoch()
	res := EpochResult{Estimates: make([]float64, d.n)}
	for i := 0; i < d.n; i++ {
		if d.net.Alive(i) &&
			d.net.SendSpan(Message{From: i, To: d.net.Base(), Attrs: []int{i}, Values: []float64{truth[i]}}, sp) {
			d.last[i] = truth[i]
			d.seen[i] = true
			res.ValuesDelivered++
		}
		res.Estimates[i] = d.last[i]
		if !d.seen[i] {
			res.Violations++
			continue
		}
		if diff := d.last[i] - truth[i]; diff > d.eps[i] || diff < -d.eps[i] {
			res.Violations++
		}
	}
	if sp.Active() {
		sp.EndEpoch(obs.Event{
			Step: int64(d.net.stats.Epochs), Clique: -1, Node: -1, N: res.ValuesDelivered,
			Payload: &obs.Payload{Predicted: res.Estimates, Observed: truth, Eps: d.eps},
		})
	}
	return res, nil
}

// RunLifetime drives a program over the trace rows until the network's
// first node dies or the rows run out, then returns (epochs survived by
// the full network, total epochs executed). Use fresh Network/Program
// pairs per run.
func RunLifetime(net *Network, prog Program, rows [][]float64) (firstDeath, epochs int, err error) {
	firstDeath = -1
	for t, row := range rows {
		if _, err := prog.Epoch(row); err != nil {
			return 0, 0, err
		}
		epochs++
		if firstDeath < 0 && net.AliveCount() < net.top.N() {
			firstDeath = t + 1
		}
	}
	return firstDeath, epochs, nil
}
