package simnet_test

// External test package: the auditor imports simnet for its energy
// model, so closing the loop trace → audit from here avoids the cycle.

import (
	"bytes"
	"testing"

	"ken/internal/audit"
	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
	"ken/internal/simnet"
	"ken/internal/trace"
)

// TestARQHeartbeatCutsViolationsTenfold is the PR's acceptance bar: on
// the Lab deployment over a single-hop star with 20% per-hop loss, 200
// epochs of DistributedKen with ARQ (3 retries) plus a 10-epoch
// heartbeat must produce at least 10× fewer ε violations than the bare
// protocol — and the reliable run's protocol trace must audit clean.
func TestARQHeartbeatCutsViolationsTenfold(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 400 Lab epochs")
	}
	tr, err := trace.GenerateLab(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Deployment.N()
	train, test := rows[:100], rows[100:300]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = trace.Temperature.DefaultEpsilon()
	}
	links := make([]network.Link, 0, n)
	for i := 0; i < n; i++ {
		links = append(links, network.Link{U: i, V: n, Cost: 1})
	}
	top, err := network.New(n, links)
	if err != nil {
		t.Fatal(err)
	}
	part := &cliques.Partition{}
	for i := 0; i+1 < n; i += 2 {
		part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
	}
	if n%2 == 1 {
		part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{n - 1}, Root: n - 1})
	}

	run := func(retries, hb int, ob *obs.Observer) int {
		t.Helper()
		radio := simnet.DefaultRadio()
		radio.LossRate = 0.2
		radio.ARQ.MaxRetries = retries
		net, err := simnet.New(top, radio, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ob != nil {
			net.Instrument(ob)
		}
		prog, err := simnet.NewDistributedKenConfig(net, part, train, eps, model.FitConfig{Period: 24},
			simnet.KenNetConfig{HeartbeatEvery: hb})
		if err != nil {
			t.Fatal(err)
		}
		violations := 0
		for _, row := range test {
			res, err := prog.Epoch(row)
			if err != nil {
				t.Fatal(err)
			}
			violations += res.Violations
		}
		return violations
	}

	bare := run(0, 0, nil)
	var buf bytes.Buffer
	ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(&buf)}
	reliable := run(3, 10, ob)
	if bare == 0 {
		t.Fatal("20% loss without ARQ caused no violations; the comparison is vacuous")
	}
	if reliable*10 > bare {
		t.Fatalf("ARQ+heartbeat run has %d violations vs %d bare — less than the required 10× reduction", reliable, bare)
	}

	if err := ob.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := audit.Audit(events)
	if !rep.Clean() {
		for _, v := range rep.Violations {
			t.Errorf("audit: %s", v.String())
		}
		t.Fatalf("the reliable run's trace failed its own audit (%d violations)", len(rep.Violations))
	}
}
