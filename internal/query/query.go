// Package query answers windowed aggregate queries over the sink's
// answer stream. Because every Ken estimate is within ±ε of the truth,
// aggregates over estimates carry provable bounds with no further
// communication:
//
//	AVG of m values, each within ±εᵢ  →  within ±mean(εᵢ)
//	SUM of m values                    →  within ±Σ εᵢ
//	MIN / MAX of m values              →  within ±max εᵢ
//
// This is the "biologists test hypotheses over the data" workload of the
// paper's introduction: exploratory aggregates run at the base station,
// for free, with error bars derived from the collection contract.
package query

import (
	"errors"
	"fmt"
	"math"
)

// Aggregate selects the window function.
type Aggregate int

const (
	// Avg averages the selected readings.
	Avg Aggregate = iota
	// Sum totals them.
	Sum
	// Min takes the smallest.
	Min
	// Max takes the largest.
	Max
)

// String names the aggregate.
func (a Aggregate) String() string {
	switch a {
	case Avg:
		return "avg"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("aggregate(%d)", int(a))
	}
}

// ParseAggregate resolves the lowercase aggregate name used on the wire
// (kensinkd's /v1/query agg= parameter) onto the enum.
func ParseAggregate(s string) (Aggregate, error) {
	switch s {
	case "avg":
		return Avg, nil
	case "sum":
		return Sum, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	default:
		return 0, fmt.Errorf("query: unknown aggregate %q (avg, sum, min or max)", s)
	}
}

// Window selects steps [From, To) of the listed attributes.
type Window struct {
	Agg   Aggregate
	Attrs []int
	From  int
	To    int
}

// Answer is an aggregate value with its guaranteed error bound: the true
// aggregate lies in [Value − Bound, Value + Bound] whenever the estimates
// honoured their ±ε contract.
type Answer struct {
	Value float64
	Bound float64
	Count int
}

// ErrEmptyWindow is returned when the window selects no readings.
var ErrEmptyWindow = errors.New("query: empty window")

// Eval evaluates the window over the estimate stream (estimates[t][i])
// with the collection bounds eps.
func Eval(estimates [][]float64, eps []float64, w Window) (*Answer, error) {
	if len(estimates) == 0 {
		return nil, ErrEmptyWindow
	}
	n := len(eps)
	if w.From < 0 || w.To > len(estimates) || w.From >= w.To {
		return nil, fmt.Errorf("query: window [%d,%d) out of range %d", w.From, w.To, len(estimates))
	}
	if len(w.Attrs) == 0 {
		return nil, errors.New("query: no attributes selected")
	}
	for _, a := range w.Attrs {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("query: attribute %d out of range %d", a, n)
		}
		if eps[a] <= 0 {
			return nil, fmt.Errorf("query: non-positive epsilon %v for attribute %d", eps[a], a)
		}
	}

	ans := &Answer{}
	var sum, epsSum, epsMax float64
	min, max := math.Inf(1), math.Inf(-1)
	for t := w.From; t < w.To; t++ {
		row := estimates[t]
		if len(row) != n {
			return nil, fmt.Errorf("query: step %d has %d estimates, want %d", t, len(row), n)
		}
		for _, a := range w.Attrs {
			v := row[a]
			sum += v
			epsSum += eps[a]
			if eps[a] > epsMax {
				epsMax = eps[a]
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			ans.Count++
		}
	}

	switch w.Agg {
	case Avg:
		ans.Value = sum / float64(ans.Count)
		ans.Bound = epsSum / float64(ans.Count)
	case Sum:
		ans.Value = sum
		ans.Bound = epsSum
	case Min:
		ans.Value = min
		ans.Bound = epsMax
	case Max:
		ans.Value = max
		ans.Bound = epsMax
	default:
		return nil, fmt.Errorf("query: unknown aggregate %d", w.Agg)
	}
	return ans, nil
}

// EvalSnapshot evaluates an aggregate over one live answer vector — the
// single-step window a sink daemon serves from a replica snapshot. An
// empty attrs selects every attribute.
func EvalSnapshot(estimates, eps []float64, agg Aggregate, attrs []int) (*Answer, error) {
	if len(estimates) != len(eps) {
		return nil, fmt.Errorf("query: %d estimates, %d eps", len(estimates), len(eps))
	}
	if len(attrs) == 0 {
		attrs = make([]int, len(estimates))
		for i := range attrs {
			attrs[i] = i
		}
	}
	return Eval([][]float64{estimates}, eps, Window{Agg: agg, Attrs: attrs, From: 0, To: 1})
}

// TruthAggregate computes the same aggregate over ground truth — the
// reference Eval's bound is audited against in tests.
func TruthAggregate(truth [][]float64, w Window) (float64, error) {
	if w.From < 0 || w.To > len(truth) || w.From >= w.To || len(w.Attrs) == 0 {
		return 0, ErrEmptyWindow
	}
	var sum float64
	count := 0
	min, max := math.Inf(1), math.Inf(-1)
	for t := w.From; t < w.To; t++ {
		for _, a := range w.Attrs {
			if a < 0 || a >= len(truth[t]) {
				return 0, fmt.Errorf("query: attribute %d out of range", a)
			}
			v := truth[t][a]
			sum += v
			count++
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	switch w.Agg {
	case Avg:
		return sum / float64(count), nil
	case Sum:
		return sum, nil
	case Min:
		return min, nil
	case Max:
		return max, nil
	default:
		return 0, fmt.Errorf("query: unknown aggregate %d", w.Agg)
	}
}
