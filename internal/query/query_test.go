package query

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/trace"
)

func TestAggregateString(t *testing.T) {
	for agg, want := range map[Aggregate]string{Avg: "avg", Sum: "sum", Min: "min", Max: "max"} {
		if agg.String() != want {
			t.Errorf("%d.String() = %q", int(agg), agg.String())
		}
	}
	if Aggregate(9).String() == "" {
		t.Fatal("unknown aggregate should still print")
	}
}

func TestEvalValidation(t *testing.T) {
	est := [][]float64{{1, 2}, {3, 4}}
	eps := []float64{0.5, 0.5}
	if _, err := Eval(nil, eps, Window{Agg: Avg, Attrs: []int{0}, From: 0, To: 1}); err == nil {
		t.Fatal("expected error for empty estimates")
	}
	if _, err := Eval(est, eps, Window{Agg: Avg, Attrs: []int{0}, From: 1, To: 1}); err == nil {
		t.Fatal("expected error for empty window")
	}
	if _, err := Eval(est, eps, Window{Agg: Avg, Attrs: nil, From: 0, To: 1}); err == nil {
		t.Fatal("expected error for no attributes")
	}
	if _, err := Eval(est, eps, Window{Agg: Avg, Attrs: []int{9}, From: 0, To: 1}); err == nil {
		t.Fatal("expected error for bad attribute")
	}
	if _, err := Eval(est, []float64{0, 1}, Window{Agg: Avg, Attrs: []int{0}, From: 0, To: 1}); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
	if _, err := Eval(est, eps, Window{Agg: Aggregate(9), Attrs: []int{0}, From: 0, To: 1}); err == nil {
		t.Fatal("expected error for unknown aggregate")
	}
}

func TestEvalKnownValues(t *testing.T) {
	est := [][]float64{
		{1, 10},
		{3, 30},
	}
	eps := []float64{0.5, 1.0}
	w := Window{Agg: Avg, Attrs: []int{0, 1}, From: 0, To: 2}
	ans, err := Eval(est, eps, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Value-11) > 1e-12 {
		t.Fatalf("avg = %v, want 11", ans.Value)
	}
	if math.Abs(ans.Bound-0.75) > 1e-12 { // mean of {0.5, 1.0, 0.5, 1.0}
		t.Fatalf("avg bound = %v, want 0.75", ans.Bound)
	}
	if ans.Count != 4 {
		t.Fatalf("count = %d", ans.Count)
	}

	w.Agg = Sum
	ans, err = Eval(est, eps, w)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Value != 44 || math.Abs(ans.Bound-3) > 1e-12 {
		t.Fatalf("sum = %v ± %v", ans.Value, ans.Bound)
	}

	w.Agg = Min
	ans, err = Eval(est, eps, w)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Value != 1 || ans.Bound != 1.0 {
		t.Fatalf("min = %v ± %v", ans.Value, ans.Bound)
	}

	w.Agg = Max
	ans, err = Eval(est, eps, w)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Value != 30 || ans.Bound != 1.0 {
		t.Fatalf("max = %v ± %v", ans.Value, ans.Bound)
	}
}

// TestBoundsHoldOverKenStream runs Ken on garden data and audits every
// aggregate's bound against ground truth — the end-to-end contract.
func TestBoundsHoldOverKenStream(t *testing.T) {
	tr, err := trace.GenerateGarden(33, 400)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Deployment.N()
	train, test := rows[:100], rows[100:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	p := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
		} else {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	s, err := core.NewKen(core.KenConfig{
		Partition: p, Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), s, test, core.RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Fatal("collection violated ε")
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		from := rng.Intn(len(test) - 24)
		to := from + 1 + rng.Intn(24)
		k := 1 + rng.Intn(n)
		attrs := rng.Perm(n)[:k]
		agg := Aggregate(rng.Intn(4))
		w := Window{Agg: agg, Attrs: attrs, From: from, To: to}
		ans, err := Eval(res.Estimates, eps, w)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := TruthAggregate(test, w)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(ans.Value - truth); d > ans.Bound+1e-9 {
			t.Fatalf("trial %d (%v over %d attrs, window %d-%d): |%v − %v| = %v exceeds bound %v",
				trial, agg, k, from, to, ans.Value, truth, d, ans.Bound)
		}
	}
}
