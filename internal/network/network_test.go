package network

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ken/internal/trace"
)

// line3 builds a 3-node chain 0-1-2-base with unit links.
func line3(t *testing.T) *Topology {
	t.Helper()
	top, err := New(3, []Link{
		{U: 0, V: 1, Cost: 1},
		{U: 1, V: 2, Cost: 1},
		{U: 2, V: 3, Cost: 1}, // vertex 3 is the base
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := New(2, []Link{{U: 0, V: 5, Cost: 1}}); err == nil {
		t.Fatal("expected error for out-of-range link")
	}
	if _, err := New(2, []Link{{U: 0, V: 0, Cost: 1}}); err == nil {
		t.Fatal("expected error for self link")
	}
	if _, err := New(2, []Link{{U: 0, V: 1, Cost: -1}}); err == nil {
		t.Fatal("expected error for negative cost")
	}
	if _, err := New(2, []Link{{U: 0, V: 1, Cost: 1}}); err == nil {
		t.Fatal("expected disconnected error (no path to base)")
	}
}

func TestShortestPathCosts(t *testing.T) {
	top := line3(t)
	if got := top.Comm(0, 2); got != 2 {
		t.Fatalf("Comm(0,2) = %v, want 2", got)
	}
	if got := top.CommToBase(0); got != 3 {
		t.Fatalf("CommToBase(0) = %v, want 3", got)
	}
	if got := top.Comm(1, top.Base()); got != 2 {
		t.Fatalf("Comm(1,base) = %v, want 2", got)
	}
	if got := top.Comm(1, 1); got != 0 {
		t.Fatalf("Comm(1,1) = %v, want 0", got)
	}
}

func TestShortcutBeatsChain(t *testing.T) {
	top, err := New(3, []Link{
		{U: 0, V: 1, Cost: 1},
		{U: 1, V: 2, Cost: 1},
		{U: 2, V: 3, Cost: 1},
		{U: 0, V: 3, Cost: 1.5}, // direct shortcut to base
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := top.CommToBase(0); got != 1.5 {
		t.Fatalf("CommToBase(0) = %v, want 1.5 via shortcut", got)
	}
}

func TestCommPanicsOutOfRange(t *testing.T) {
	top := line3(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	top.Comm(0, 99)
}

func TestMaxPairCost(t *testing.T) {
	top := line3(t)
	if got := top.MaxPairCost(); got != 2 {
		t.Fatalf("MaxPairCost = %v, want 2 (0 to 2)", got)
	}
}

func TestUpdateLink(t *testing.T) {
	top := line3(t)
	// Add a direct 0-base shortcut.
	up, err := top.UpdateLink(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := up.CommToBase(0); got != 1 {
		t.Fatalf("after update CommToBase(0) = %v, want 1", got)
	}
	// Removing the only 2-base link disconnects unless other paths exist.
	if _, err := top.UpdateLink(2, 3, 0); err == nil {
		t.Fatal("expected disconnected error after removing base link")
	}
	// Original topology unchanged (immutable update).
	if got := top.CommToBase(0); got != 3 {
		t.Fatalf("original mutated: %v", got)
	}
}

func TestRoutingTree(t *testing.T) {
	top := line3(t)
	parent, err := top.RoutingTree()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if parent[i] != want[i] {
			t.Fatalf("parent = %v, want %v", parent, want)
		}
	}
}

func TestTreeMessageCost(t *testing.T) {
	top := line3(t)
	c, err := top.TreeMessageCost()
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("tree cost = %v, want 3 (three unit edges)", c)
	}
}

func TestUniform(t *testing.T) {
	top, err := Uniform(11, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if top.N() != 11 {
		t.Fatalf("N = %d", top.N())
	}
	if got := top.Comm(0, 10); got != 1 {
		t.Fatalf("inter cost = %v, want 1", got)
	}
	if got := top.CommToBase(4); got != 5 {
		t.Fatalf("base cost = %v, want 5", got)
	}
	if _, err := Uniform(3, 0, 1); err == nil {
		t.Fatal("expected error for zero inter cost")
	}
}

func TestUniformBaseMultiplierBelowTriangle(t *testing.T) {
	// With multiplier 0.5 the cheapest node-to-node path routes through
	// the base (0.5 + 0.5 = 1 == direct); Dijkstra should still give 1.
	top, err := Uniform(4, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := top.Comm(0, 1); got != 1 {
		t.Fatalf("Comm = %v, want 1", got)
	}
}

func TestGeometric(t *testing.T) {
	d := trace.GardenDeployment()
	// Base just east of the transect; generous radius keeps it connected.
	top, err := Geometric(d, 44, 0, 12, 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if top.N() != 11 {
		t.Fatalf("N = %d", top.N())
	}
	// Farther nodes pay more to reach the base.
	if top.CommToBase(0) <= top.CommToBase(10) {
		t.Fatalf("west node should pay more: %v vs %v", top.CommToBase(0), top.CommToBase(10))
	}
	if _, err := Geometric(d, 44, 0, 0, 1, 0); err == nil {
		t.Fatal("expected error for zero radius")
	}
	// Radius too small to connect: disconnected error.
	if _, err := Geometric(d, 44, 0, 0.5, 1, 0.1); err == nil {
		t.Fatal("expected disconnected error")
	}
}

func TestLabRegions(t *testing.T) {
	d := trace.LabDeployment()
	regions := LabRegions(d)
	if len(regions) != 3 {
		t.Fatalf("regions = %d", len(regions))
	}
	total := 0
	seen := map[int]bool{}
	for _, r := range regions {
		total += len(r.Nodes)
		for _, i := range r.Nodes {
			if seen[i] {
				t.Fatalf("node %d in two regions", i)
			}
			seen[i] = true
		}
	}
	if total != d.N() {
		t.Fatalf("regions cover %d of %d nodes", total, d.N())
	}
	// East nodes must be east (larger x) of west nodes on average.
	avgX := func(nodes []int) float64 {
		s := 0.0
		for _, i := range nodes {
			s += d.Nodes[i].X
		}
		return s / float64(len(nodes))
	}
	if avgX(regions[0].Nodes) <= avgX(regions[2].Nodes) {
		t.Fatal("east region not east of west region")
	}
	if regions[0].BaseMultiplier >= regions[2].BaseMultiplier {
		t.Fatal("east multiplier should be smallest")
	}
}

// Property: Comm is a metric-like function — symmetric, zero on diagonal,
// and obeying the triangle inequality (it is a shortest path).
func TestQuickCommMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		var links []Link
		// Random connected-ish graph: a spanning chain plus extras.
		for i := 0; i < n; i++ {
			links = append(links, Link{U: i, V: i + 1, Cost: 0.5 + r.Float64()*3})
		}
		for e := 0; e < n; e++ {
			u, v := r.Intn(n+1), r.Intn(n+1)
			if u != v {
				links = append(links, Link{U: u, V: v, Cost: 0.5 + r.Float64()*3})
			}
		}
		top, err := New(n, links)
		if err != nil {
			return false
		}
		for i := 0; i <= n; i++ {
			if top.Comm(i, i) != 0 {
				return false
			}
			for j := 0; j <= n; j++ {
				if math.Abs(top.Comm(i, j)-top.Comm(j, i)) > 1e-12 {
					return false
				}
				for k := 0; k <= n; k++ {
					if top.Comm(i, j) > top.Comm(i, k)+top.Comm(k, j)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the routing tree always walks downhill in base distance and
// terminates at the base.
func TestQuickRoutingTreeReachesBase(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		var links []Link
		for i := 0; i < n; i++ {
			links = append(links, Link{U: i, V: i + 1, Cost: 0.5 + r.Float64()*2})
		}
		for e := 0; e < n/2; e++ {
			u, v := r.Intn(n+1), r.Intn(n+1)
			if u != v {
				links = append(links, Link{U: u, V: v, Cost: 0.5 + r.Float64()*2})
			}
		}
		top, err := New(n, links)
		if err != nil {
			return false
		}
		parent, err := top.RoutingTree()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			cur, hops := i, 0
			for cur != top.Base() {
				next := parent[cur]
				if top.CommToBase(next) >= top.CommToBase(cur) && next != top.Base() {
					return false // not walking downhill
				}
				cur = next
				hops++
				if hops > n+1 {
					return false // cycle
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalExpansion(t *testing.T) {
	phys := line3(t) // 0-1-2-base, unit links
	lt, err := Logical(phys, 3, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if lt.N() != 9 {
		t.Fatalf("logical N = %d, want 9", lt.N())
	}
	// Same-node attributes are nearly free to pool.
	if c := lt.Comm(0, 2); c > 0.01 {
		t.Fatalf("same-node comm = %v, want ~0", c)
	}
	// Cross-node same-attribute cost matches the physical path.
	if c := lt.Comm(0, 3); math.Abs(c-1) > 0.01 {
		t.Fatalf("cross-node comm = %v, want ~1", c)
	}
	// Base reachability with physical distance preserved (node 0 is three
	// physical hops from the base).
	if c := lt.CommToBase(0); math.Abs(c-3) > 0.01 {
		t.Fatalf("logical base comm = %v, want ~3", c)
	}
	// Cross-node, cross-attribute routes through the attribute chains.
	if c := lt.Comm(2, 5); math.Abs(c-1) > 0.02 {
		t.Fatalf("cross comm = %v, want ~1", c)
	}
	// Validation.
	if _, err := Logical(phys, 0, 0.001); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Logical(phys, 2, 0); err == nil {
		t.Fatal("expected error for zero same-node cost")
	}
}
