package network

import (
	"fmt"
	"math"
	"sort"

	"ken/internal/trace"
)

// Uniform builds the paper's garden evaluation topology (Fig 12): n sensor
// nodes with equivalent path cost interCost between every pair, and cost
// interCost·baseMultiplier from every node to the base station.
func Uniform(n int, interCost, baseMultiplier float64) (*Topology, error) {
	if interCost <= 0 || baseMultiplier <= 0 {
		return nil, fmt.Errorf("network: uniform costs must be positive (inter %v, base multiplier %v)", interCost, baseMultiplier)
	}
	links := make([]Link, 0, n*(n-1)/2+n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			links = append(links, Link{U: i, V: j, Cost: interCost})
		}
		links = append(links, Link{U: i, V: n, Cost: interCost * baseMultiplier})
	}
	return New(n, links)
}

// Geometric builds a topology from a deployment's node positions: nodes
// within radius metres get a link whose cost is costPerMetre·distance
// (minimum minCost), and the base station sits at (baseX, baseY) linked to
// nodes within radius of it. "Link quality is roughly proportional to
// geographic distance" (§5.4).
func Geometric(d *trace.Deployment, baseX, baseY, radius, costPerMetre, minCost float64) (*Topology, error) {
	if radius <= 0 || costPerMetre <= 0 {
		return nil, fmt.Errorf("network: geometric radius %v and cost %v must be positive", radius, costPerMetre)
	}
	n := d.N()
	var links []Link
	cost := func(dist float64) float64 {
		c := dist * costPerMetre
		if c < minCost {
			c = minCost
		}
		return c
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist := d.Nodes[i].Distance(d.Nodes[j]); dist <= radius {
				links = append(links, Link{U: i, V: j, Cost: cost(dist)})
			}
		}
		dx, dy := d.Nodes[i].X-baseX, d.Nodes[i].Y-baseY
		if dist := math.Sqrt(dx*dx + dy*dy); dist <= radius {
			links = append(links, Link{U: i, V: n, Cost: cost(dist)})
		}
	}
	return New(n, links)
}

// Region identifies a subset of a deployment by distance from the base
// station, as in the paper's east/central/west partition of the lab (Fig 13).
type Region struct {
	Name           string
	Nodes          []int   // node indices in the region
	BaseMultiplier float64 // cost-to-base relative to intra-region cost
}

// LabRegions splits a deployment's nodes into three equal-size bands by
// x-position. The base station resides at the east (max-x) end, so the
// bands carry the paper's base-cost multipliers: East ×1.5 ("excellent"),
// Central ×3 ("good"), West ×6 ("moderate").
func LabRegions(d *trace.Deployment) []Region {
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d.Nodes[idx[a]].X > d.Nodes[idx[b]].X })
	third := (len(idx) + 2) / 3
	regions := []Region{
		{Name: "east", BaseMultiplier: 1.5},
		{Name: "central", BaseMultiplier: 3},
		{Name: "west", BaseMultiplier: 6},
	}
	for k, i := range idx {
		r := k / third
		if r > 2 {
			r = 2
		}
		regions[r].Nodes = append(regions[r].Nodes, i)
	}
	for r := range regions {
		sort.Ints(regions[r].Nodes)
	}
	return regions
}

// Logical expands a physical topology into a logical one over (node,
// attribute) pairs, unlocking cliques that mix attributes across nodes —
// the §5.5 idea ("multiple attributes per physical node are multiple
// logical nodes with zero communication cost among them") composed with
// Disjoint-Cliques partitioning.
//
// Logical vertex node*k + attr lives on physical node `node`. Attributes
// co-located on a node are chained with sameNodeCost (≈ 0, must be
// positive); each node's attribute 0 inherits the node's physical links.
// The logical base station is the last vertex, linked wherever the
// physical base was.
func Logical(phys *Topology, k int, sameNodeCost float64) (*Topology, error) {
	if k < 1 {
		return nil, fmt.Errorf("network: logical expansion needs k >= 1, got %d", k)
	}
	if sameNodeCost <= 0 {
		return nil, fmt.Errorf("network: same-node cost %v must be positive", sameNodeCost)
	}
	n := phys.N()
	ln := n * k
	logical := func(node, attr int) int { return node*k + attr }
	var links []Link
	// Same-node attribute chains.
	for i := 0; i < n; i++ {
		for a := 1; a < k; a++ {
			links = append(links, Link{U: logical(i, a-1), V: logical(i, a), Cost: sameNodeCost})
		}
	}
	// Physical links attach at attribute 0 (radio is per node, not per
	// attribute).
	for _, l := range phys.Links() {
		u, v := l.U, l.V
		lu, lv := 0, 0
		if u == phys.Base() {
			lu = ln
		} else {
			lu = logical(u, 0)
		}
		if v == phys.Base() {
			lv = ln
		} else {
			lv = logical(v, 0)
		}
		links = append(links, Link{U: lu, V: lv, Cost: l.Cost})
	}
	return New(ln, links)
}
