// Package network models the communication topology of a sensor network:
// pairwise path costs between sensor nodes and the base station, shortest
// path routing, and sink-rooted routing trees.
//
// The paper's optimisation problem (§3.3) is phrased over a pairwise cost
// function comm : N × N → R; this package computes that function from a
// link-level description via all-pairs shortest paths, and provides the
// synthetic topologies used in the evaluation (uniform garden topologies
// with a base-cost multiplier for Fig 12, geometric lab topologies with
// east/central/west regions for Fig 13). Topologies are mutable
// (UpdateLink) to support the dynamic-topology extension of §6.
package network

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Base is the conventional vertex index of the base station in a Topology
// with n sensor nodes: vertex n. Callers should use Topology.Base().
//
// Sensor nodes are 0..n-1, matching trace node indices.

// Link is an undirected communication link with a positive cost
// (expected transmissions, ETX-style).
type Link struct {
	U, V int
	Cost float64
}

// Topology holds pairwise shortest-path costs over n sensor nodes plus the
// base station, and the underlying link set for routing-tree construction.
type Topology struct {
	n     int
	links []Link
	cost  [][]float64 // (n+1)×(n+1) path costs; vertex n is the base
}

// ErrDisconnected is returned when some vertex cannot reach the base.
var ErrDisconnected = errors.New("network: topology is disconnected")

// New builds a topology over n sensor nodes from undirected links. Vertex n
// denotes the base station. All-pairs shortest path costs are computed with
// Dijkstra from every vertex. Every sensor must be connected to the base.
func New(n int, links []Link) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("network: need at least one sensor node, got %d", n)
	}
	v := n + 1
	adj := make([][]Link, v)
	for _, l := range links {
		if l.U < 0 || l.U >= v || l.V < 0 || l.V >= v {
			return nil, fmt.Errorf("network: link %d-%d out of range [0,%d]", l.U, l.V, n)
		}
		if l.U == l.V {
			return nil, fmt.Errorf("network: self link at %d", l.U)
		}
		if l.Cost <= 0 || math.IsNaN(l.Cost) || math.IsInf(l.Cost, 0) {
			return nil, fmt.Errorf("network: link %d-%d has invalid cost %v", l.U, l.V, l.Cost)
		}
		adj[l.U] = append(adj[l.U], Link{U: l.U, V: l.V, Cost: l.Cost})
		adj[l.V] = append(adj[l.V], Link{U: l.V, V: l.U, Cost: l.Cost})
	}
	t := &Topology{n: n, links: append([]Link(nil), links...)}
	t.cost = make([][]float64, v)
	for src := 0; src < v; src++ {
		t.cost[src] = dijkstra(adj, src)
	}
	for i := 0; i < n; i++ {
		if math.IsInf(t.cost[i][n], 1) {
			return nil, fmt.Errorf("%w: node %d cannot reach the base", ErrDisconnected, i)
		}
	}
	return t, nil
}

// dijkstra returns shortest path costs from src over the adjacency lists.
func dijkstra(adj [][]Link, src int) []float64 {
	dist := make([]float64, len(adj))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &costHeap{{node: src, cost: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(costItem)
		if it.cost > dist[it.node] {
			continue
		}
		for _, l := range adj[it.node] {
			if nd := it.cost + l.Cost; nd < dist[l.V] {
				dist[l.V] = nd
				heap.Push(pq, costItem{node: l.V, cost: nd})
			}
		}
	}
	return dist
}

type costItem struct {
	node int
	cost float64
}

type costHeap []costItem

func (h costHeap) Len() int            { return len(h) }
func (h costHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x interface{}) { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// N returns the number of sensor nodes.
func (t *Topology) N() int { return t.n }

// Links returns a copy of the underlying undirected link set.
func (t *Topology) Links() []Link { return append([]Link(nil), t.links...) }

// Neighbors returns the links incident to vertex u (u may be the base).
func (t *Topology) Neighbors(u int) []Link {
	if u < 0 || u > t.n {
		panic(fmt.Sprintf("network: Neighbors(%d) out of range [0,%d]", u, t.n))
	}
	var out []Link
	for _, l := range t.links {
		switch u {
		case l.U:
			out = append(out, l)
		case l.V:
			out = append(out, Link{U: l.V, V: l.U, Cost: l.Cost})
		}
	}
	return out
}

// Base returns the vertex index of the base station.
func (t *Topology) Base() int { return t.n }

// Comm returns the shortest path cost between vertices i and j (either may
// be the base vertex). It panics on out-of-range indices: cost lookups sit
// on the optimiser's innermost loop and indices are fixed by construction.
func (t *Topology) Comm(i, j int) float64 {
	if i < 0 || i > t.n || j < 0 || j > t.n {
		panic(fmt.Sprintf("network: Comm(%d,%d) out of range [0,%d]", i, j, t.n))
	}
	return t.cost[i][j]
}

// CommToBase returns the shortest path cost from sensor i to the base.
func (t *Topology) CommToBase(i int) float64 { return t.Comm(i, t.n) }

// MaxPairCost returns max over sensor pairs of Comm(u, v), used by the
// Greedy-k pruning rule (Fig 6): cliques containing a pair farther apart
// than ¼ of this maximum are discarded.
func (t *Topology) MaxPairCost() float64 {
	max := 0.0
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			if c := t.cost[i][j]; c > max {
				max = c
			}
		}
	}
	return max
}

// UpdateLink changes (or adds) the undirected link u-v with the new cost
// and recomputes all path costs; cost <= 0 removes the link. This supports
// the dynamic-topology extension (§6): Ken re-plans cliques after calling
// this.
func (t *Topology) UpdateLink(u, v int, cost float64) (*Topology, error) {
	links := make([]Link, 0, len(t.links)+1)
	replaced := false
	for _, l := range t.links {
		if (l.U == u && l.V == v) || (l.U == v && l.V == u) {
			replaced = true
			if cost > 0 {
				links = append(links, Link{U: u, V: v, Cost: cost})
			}
			continue
		}
		links = append(links, l)
	}
	if !replaced && cost > 0 {
		links = append(links, Link{U: u, V: v, Cost: cost})
	}
	return New(t.n, links)
}

// RoutingTree returns, for every sensor node, its parent on a shortest path
// toward the base station (parent[i] == Base() for nodes adjacent to it).
// The tree is what the Average model's in-network aggregation runs over.
func (t *Topology) RoutingTree() ([]int, error) {
	v := t.n + 1
	adj := make([][]Link, v)
	for _, l := range t.links {
		adj[l.U] = append(adj[l.U], Link{U: l.U, V: l.V, Cost: l.Cost})
		adj[l.V] = append(adj[l.V], Link{U: l.V, V: l.U, Cost: l.Cost})
	}
	distFromBase := t.cost[t.n]
	parent := make([]int, t.n)
	for i := 0; i < t.n; i++ {
		best, bestCost := -1, math.Inf(1)
		for _, l := range adj[i] {
			// Parent candidate: neighbour on a shortest path to the base.
			if c := distFromBase[l.V] + l.Cost; c <= distFromBase[i]+1e-12 && distFromBase[l.V] < bestCost {
				best, bestCost = l.V, distFromBase[l.V]
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w: node %d has no uphill neighbour", ErrDisconnected, i)
		}
		parent[i] = best
	}
	return parent, nil
}

// TreeMessageCost returns the summed link cost of one message per sensor
// node up its routing-tree edge — the per-round cost of the Average model's
// aggregation phase (and, symmetrically, of disseminating the average).
func (t *Topology) TreeMessageCost() (float64, error) {
	parent, err := t.RoutingTree()
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i, p := range parent {
		total += t.edgeCost(i, p)
	}
	return total, nil
}

// edgeCost returns the direct link cost between u and v, falling back to
// the path cost when no direct link exists.
func (t *Topology) edgeCost(u, v int) float64 {
	for _, l := range t.links {
		if (l.U == u && l.V == v) || (l.U == v && l.V == u) {
			return l.Cost
		}
	}
	return t.cost[u][v]
}
