package sinkd

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/query"
	"ken/internal/stream"
	"ken/internal/wire"
)

// newDaemon starts a daemon on an ephemeral port and tears it down with
// the test.
func newDaemon(t *testing.T, cfg Config) (*Daemon, string) {
	t.Helper()
	d := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = d.Serve(ln) }()
	t.Cleanup(func() { _ = ln.Close(); d.Close() })
	return d, ln.Addr().String()
}

// runTenant plays one full source session against the daemon and mirrors
// every frame into a local reference replica — the bit-identical oracle.
func runTenant(addr, name string, p deploy.Params) (*stream.Replica, error) {
	dep, err := deploy.Build(p)
	if err != nil {
		return nil, err
	}
	return runTenantWith(addr, name, p, dep)
}

func runTenantWith(addr, name string, p deploy.Params, dep *deploy.Deployment) (*stream.Replica, error) {
	src, err := stream.NewSource(dep.Config)
	if err != nil {
		return nil, err
	}
	ref, err := stream.NewReplica(dep.Config)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := stream.Handshake(conn, wire.Hello{Tenant: name, Spec: p.EncodeSpec()}); err != nil {
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	for _, row := range dep.Test {
		f, err := src.Collect(row)
		if err != nil {
			return nil, err
		}
		if err := stream.WriteFrame(conn, f, src.Resolution()); err != nil {
			return nil, fmt.Errorf("tenant %s write: %w", name, err)
		}
		if err := ref.Apply(f); err != nil {
			return nil, err
		}
	}
	return ref, nil
}

// waitForStep polls until the tenant's answer reaches step (the daemon
// applies asynchronously, so the stream can close before the queue drains).
func waitForStep(d *Daemon, name string, step int) (stream.Answer, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ans, ok := d.Answer(name)
		if ok && ans.Step >= step {
			return ans, nil
		}
		if time.Now().After(deadline) {
			return ans, fmt.Errorf("tenant %s stuck at step %d, want %d", name, ans.Step, step)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestSingleTenantEndToEnd(t *testing.T) {
	d, addr := newDaemon(t, Config{})
	p := deploy.Params{Dataset: "garden", Seed: 3, TestSteps: 80, HeartbeatEvery: 10}
	ref, err := runTenant(addr, "solo", p)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := waitForStep(d, "solo", 80)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Answer()
	if !sameBits(ans.Estimates, want.Estimates) {
		t.Fatalf("daemon replica diverged:\n got  %v\n want %v", ans.Estimates, want.Estimates)
	}
	if ans.Heartbeats != want.Heartbeats || ans.Heartbeats == 0 {
		t.Fatalf("heartbeats: daemon %d, reference %d", ans.Heartbeats, want.Heartbeats)
	}
	tns := d.Tenants()
	if len(tns) != 1 || tns[0].Name != "solo" || tns[0].Spec != p.ReplicaKey() {
		t.Fatalf("tenants: %+v", tns)
	}
	st, _ := waitForState(d, "solo", StateClosed)
	if st != StateClosed {
		t.Fatalf("tenant state %s, want closed", st)
	}
	if got := d.mAccepts.Value(); got != 1 {
		t.Fatalf("sinkd_sessions_accepted_total = %d", got)
	}
}

// waitForState polls for the tenant to reach a terminal state.
func waitForState(d *Daemon, name string, want TenantState) (TenantState, string) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		tn, ok := d.lookup(name)
		if ok {
			if st, detail := tn.snapshot(); st == want || time.Now().After(deadline) {
				return st, detail
			}
		} else if time.Now().After(deadline) {
			return "", "tenant never registered"
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManyTenantsBitIdentical is the headline multi-tenant guarantee: 64
// concurrent sessions over four distinct deployments, every daemon
// replica bit-identical to a single-tenant reference fed the same frames.
func TestManyTenantsBitIdentical(t *testing.T) {
	const tenants, specs, steps = 64, 4, 60
	d, addr := newDaemon(t, Config{})

	deps := make([]*deploy.Deployment, specs)
	params := make([]deploy.Params, specs)
	for i := range deps {
		params[i] = deploy.Params{Dataset: "garden", Seed: int64(i + 1), TestSteps: steps, HeartbeatEvery: 16}
		dep, err := deploy.Build(params[i])
		if err != nil {
			t.Fatal(err)
		}
		deps[i] = dep
	}

	refs := make([]*stream.Replica, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := i % specs
			ref, err := runTenantWith(addr, fmt.Sprintf("swarm-%02d", i), params[s], deps[s])
			if err != nil {
				t.Error(err)
				return
			}
			refs[i] = ref
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("swarm-%02d", i)
		ans, err := waitForStep(d, name, steps)
		if err != nil {
			t.Fatal(err)
		}
		want := refs[i].Answer()
		if !sameBits(ans.Estimates, want.Estimates) {
			t.Fatalf("%s diverged from its reference replica", name)
		}
		if ans.Heartbeats != want.Heartbeats {
			t.Fatalf("%s heartbeats: %d vs %d", name, ans.Heartbeats, want.Heartbeats)
		}
	}
	// Four distinct replica keys → exactly four builds, shared by 64 tenants.
	d.mu.Lock()
	builds := len(d.builds)
	d.mu.Unlock()
	if builds != specs {
		t.Fatalf("%d builds for %d specs", builds, specs)
	}
	if got := d.mAccepts.Value(); got != tenants {
		t.Fatalf("accepted %d sessions, want %d", got, tenants)
	}
}

func handshake(t *testing.T, addr string, h wire.Hello) (net.Conn, wire.Accept, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := stream.Handshake(conn, h)
	return conn, acc, err
}

func TestTypedRejects(t *testing.T) {
	pin := deploy.Params{Dataset: "garden", Seed: 1}
	d, addr := newDaemon(t, Config{MaxTenants: 2, Pin: &pin})
	spec := pin.EncodeSpec()

	t.Run("version skew", func(t *testing.T) {
		conn, _, err := handshake(t, addr, wire.Hello{Version: 99, Tenant: "v", Spec: spec})
		defer conn.Close()
		if !errors.Is(err, wire.ErrVersionMismatch) {
			t.Fatalf("got %v, want ErrVersionMismatch", err)
		}
		if !strings.Contains(err.Error(), "v1") || !strings.Contains(err.Error(), "v99") {
			t.Fatalf("error %q does not name both versions", err)
		}
	})

	t.Run("stale pre-session peer", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		f := wire.Frame{Step: 0, Attrs: []int{0}, Values: []float64{1}}
		if err := stream.WriteFrame(conn, f, 0.01); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		s, err := stream.ReadSession(conn)
		if err != nil {
			t.Fatal(err)
		}
		if s.Reject == nil || s.Reject.Code != wire.RejectVersion {
			t.Fatalf("stale peer answered with %+v, want version reject", s)
		}
	})

	t.Run("bad spec bytes", func(t *testing.T) {
		conn, _, err := handshake(t, addr, wire.Hello{Tenant: "b", Spec: []byte{0x09, 0x01}})
		defer conn.Close()
		if !errors.Is(err, wire.ErrSpecRejected) || !strings.Contains(err.Error(), "bad-spec") {
			t.Fatalf("got %v, want bad-spec ErrSpecRejected", err)
		}
	})

	t.Run("invalid spec", func(t *testing.T) {
		bad := deploy.Params{Dataset: "office"}
		conn, _, err := handshake(t, addr, wire.Hello{Tenant: "b2", Spec: bad.EncodeSpec()})
		defer conn.Close()
		if !errors.Is(err, wire.ErrSpecRejected) || !strings.Contains(err.Error(), "bad-spec") {
			t.Fatalf("got %v, want bad-spec ErrSpecRejected", err)
		}
	})

	t.Run("pin mismatch", func(t *testing.T) {
		other := deploy.Params{Dataset: "garden", Seed: 2}
		conn, _, err := handshake(t, addr, wire.Hello{Tenant: "p", Spec: other.EncodeSpec()})
		defer conn.Close()
		if !errors.Is(err, wire.ErrSpecRejected) || !strings.Contains(err.Error(), "spec-mismatch") {
			t.Fatalf("got %v, want spec-mismatch ErrSpecRejected", err)
		}
		// The reject names both replica keys so the operator sees the gap.
		if !strings.Contains(err.Error(), pin.ReplicaKey()) || !strings.Contains(err.Error(), other.ReplicaKey()) {
			t.Fatalf("error %q does not name both specs", err)
		}
	})

	t.Run("pin accepts TestSteps variants", func(t *testing.T) {
		variant := pin
		variant.TestSteps = 7777 // source-local: same replica key
		conn, acc, err := handshake(t, addr, wire.Hello{Tenant: "ok", Spec: variant.EncodeSpec()})
		defer conn.Close()
		if err != nil {
			t.Fatalf("pinned sink rejected a TestSteps variant: %v", err)
		}
		if acc.Tenant != "ok" {
			t.Fatalf("accept %+v", acc)
		}
	})

	t.Run("duplicate live tenant", func(t *testing.T) {
		conn1, _, err := handshake(t, addr, wire.Hello{Tenant: "dup", Spec: spec})
		defer conn1.Close()
		if err != nil {
			t.Fatal(err)
		}
		conn2, _, err := handshake(t, addr, wire.Hello{Tenant: "dup", Spec: spec})
		defer conn2.Close()
		if !errors.Is(err, wire.ErrSpecRejected) || !strings.Contains(err.Error(), "duplicate-tenant") {
			t.Fatalf("got %v, want duplicate-tenant ErrSpecRejected", err)
		}
	})

	t.Run("overloaded", func(t *testing.T) {
		// Earlier subtests' sessions have closed their connections; wait for
		// them to go terminal so only this subtest's two count against the cap.
		for _, name := range []string{"ok", "dup"} {
			if st, detail := waitForState(d, name, StateClosed); st != StateClosed {
				t.Fatalf("tenant %s stuck in %s (%s)", name, st, detail)
			}
		}
		c1, _, err := handshake(t, addr, wire.Hello{Tenant: "o1", Spec: spec})
		defer c1.Close()
		if err != nil {
			t.Fatal(err)
		}
		c2, _, err := handshake(t, addr, wire.Hello{Tenant: "o2", Spec: spec})
		defer c2.Close()
		if err != nil {
			t.Fatal(err)
		}
		conn, _, err := handshake(t, addr, wire.Hello{Tenant: "over", Spec: spec})
		defer conn.Close()
		if !errors.Is(err, wire.ErrSpecRejected) || !strings.Contains(err.Error(), "overloaded") {
			t.Fatalf("got %v, want overloaded ErrSpecRejected", err)
		}
	})
}

// TestEmptyTenantAssigned: an empty HELLO name gets a daemon-assigned one.
func TestEmptyTenantAssigned(t *testing.T) {
	_, addr := newDaemon(t, Config{})
	p := deploy.Params{Dataset: "garden", Seed: 1, TestSteps: 5}
	conn, acc, err := handshake(t, addr, wire.Hello{Spec: p.EncodeSpec()})
	defer conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if acc.Tenant != "t1" {
		t.Fatalf("assigned tenant %q, want t1", acc.Tenant)
	}
}

// TestShedSlowTenant exercises the backpressure path: with a one-frame
// budget and a deliberately slow applier, the third frame overflows, the
// daemon sheds the tenant with a typed RejectSlowTenant and the replica
// stays queryable.
func TestShedSlowTenant(t *testing.T) {
	d, addr := newDaemon(t, Config{FrameBudget: 1, ApplyDelay: 300 * time.Millisecond})
	p := deploy.Params{Dataset: "garden", Seed: 1, TestSteps: 3}
	dep, err := deploy.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.NewSource(dep.Config)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := stream.Handshake(conn, wire.Hello{Tenant: "slow", Spec: p.EncodeSpec()}); err != nil {
		t.Fatal(err)
	}
	for i, row := range dep.Test {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := stream.WriteFrame(conn, f, src.Resolution()); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Let the applier dequeue frame 0 before the burst, so the shed
			// lands deterministically on frame 2 with nothing left unread.
			time.Sleep(100 * time.Millisecond)
		}
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	s, err := stream.ReadSession(conn)
	if err != nil {
		t.Fatal(err)
	}
	if s.Reject == nil || s.Reject.Code != wire.RejectSlowTenant {
		t.Fatalf("shed answered with %+v, want slow-tenant reject", s)
	}
	if rejErr := s.Reject.Err(); !errors.Is(rejErr, wire.ErrSpecRejected) || !strings.Contains(rejErr.Error(), "shed") {
		t.Fatalf("reject error %v", rejErr)
	}
	st, detail := waitForState(d, "slow", StateShed)
	if st != StateShed || !strings.Contains(detail, "budget") {
		t.Fatalf("tenant state %s (%s), want shed", st, detail)
	}
	if got := d.mShed.Value(); got != 1 {
		t.Fatalf("sinkd_tenants_shed_total = %d", got)
	}
	if _, ok := d.Answer("slow"); !ok {
		t.Fatal("shed tenant's replica no longer queryable")
	}
}

// TestCloseJoinsAppliersUnderLoad shuts the daemon down while several
// tenants' appliers are still draining slowed frame queues, and verifies
// Close joins every applier goroutine: once it returns the frame counter
// is quiescent and every tenant has reached a terminal state.
func TestCloseJoinsAppliersUnderLoad(t *testing.T) {
	d := New(Config{ApplyDelay: 20 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = d.Serve(ln) }()
	addr := ln.Addr().String()

	p := deploy.Params{Dataset: "garden", Seed: 5, TestSteps: 40}
	dep, err := deploy.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 3
	var writers sync.WaitGroup
	conns := make([]net.Conn, tenants)
	for i := 0; i < tenants; i++ {
		src, err := stream.NewSource(dep.Config)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
		if _, err := stream.Handshake(conn, wire.Hello{Tenant: fmt.Sprintf("load%d", i), Spec: p.EncodeSpec()}); err != nil {
			t.Fatal(err)
		}
		writers.Add(1)
		go func(src *stream.Source, conn net.Conn) {
			defer writers.Done()
			for _, row := range dep.Test {
				f, err := src.Collect(row)
				if err != nil {
					return
				}
				// Write errors just end the writer: the daemon may close the
				// connection under us mid-shutdown, which is the point.
				if err := stream.WriteFrame(conn, f, src.Resolution()); err != nil {
					return
				}
			}
		}(src, conn)
	}

	// Let frames pile up behind the slowed appliers, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	_ = ln.Close()
	d.Close()

	applied := d.mFrames.Value()
	time.Sleep(3 * 20 * time.Millisecond)
	if got := d.mFrames.Value(); got != applied {
		t.Fatalf("appliers still running after Close: frames %d -> %d", applied, got)
	}
	for _, info := range d.Tenants() {
		if !info.State.terminal() {
			t.Fatalf("tenant %s left in state %q after Close", info.Name, info.State)
		}
	}
	writers.Wait()
	for _, c := range conns {
		_ = c.Close()
	}
}

// TestHTTPAPI drives the /v1 endpoints end to end against a live tenant.
func TestHTTPAPI(t *testing.T) {
	d, addr := newDaemon(t, Config{})
	const steps = 40
	p := deploy.Params{Dataset: "garden", Seed: 2, TestSteps: steps}
	ref, err := runTenant(addr, "web", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := waitForStep(d, "web", steps); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	getJSON := func(t *testing.T, path string, into any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	wantStatus := func(t *testing.T, path string, code int) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != code {
			t.Fatalf("GET %s: got %s, want %d", path, resp.Status, code)
		}
	}

	var tl struct {
		Tenants []TenantInfo `json:"tenants"`
	}
	getJSON(t, "/v1/tenants", &tl)
	if len(tl.Tenants) != 1 || tl.Tenants[0].Name != "web" || tl.Tenants[0].Step != steps {
		t.Fatalf("/v1/tenants: %+v", tl)
	}

	var q QueryResponse
	getJSON(t, "/v1/query?tenant=web", &q)
	want := ref.Answer()
	// JSON float64 round-trips exactly, so even over HTTP the answer must
	// be bit-identical to the reference replica.
	if q.Answer.Step != steps || !sameBits(q.Answer.Estimates, want.Estimates) {
		t.Fatalf("/v1/query diverged:\n got  %+v\n want %+v", q.Answer, want)
	}

	var qa QueryResponse
	getJSON(t, "/v1/query?tenant=web&agg=avg&attrs=0,1", &qa)
	if qa.Aggregate == nil {
		t.Fatal("agg=avg returned no aggregate")
	}
	wantAgg, err := query.EvalSnapshot(want.Estimates, want.Eps, query.Avg, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if qa.Aggregate.Agg != "avg" || qa.Aggregate.Count != 2 ||
		math.Float64bits(qa.Aggregate.Value) != math.Float64bits(wantAgg.Value) ||
		math.Float64bits(qa.Aggregate.Bound) != math.Float64bits(wantAgg.Bound) {
		t.Fatalf("aggregate %+v, want %+v", qa.Aggregate, wantAgg)
	}

	var ms obs.Snapshot
	getJSON(t, "/v1/metrics?tenant=web", &ms)
	if ms.Counters["stream_frames_applied_total"] != steps {
		t.Fatalf("per-tenant metrics: %+v", ms.Counters)
	}

	// Bare /v1/metrics serves the daemon-wide snapshot.
	var ds obs.Snapshot
	getJSON(t, "/v1/metrics", &ds)
	if ds.Counters["sinkd_sessions_accepted_total"] != 1 ||
		ds.Counters["sinkd_frames_total"] != steps {
		t.Fatalf("daemon-wide metrics: %+v", ds.Counters)
	}

	wantStatus(t, "/v1/query", http.StatusBadRequest)
	wantStatus(t, "/v1/query?tenant=nobody", http.StatusNotFound)
	wantStatus(t, "/v1/query?tenant=web&agg=median", http.StatusBadRequest)
	wantStatus(t, "/v1/query?tenant=web&agg=avg&attrs=zero", http.StatusBadRequest)
	wantStatus(t, "/v1/query?tenant=web&agg=avg&attrs=999", http.StatusBadRequest)
	wantStatus(t, "/v1/metrics?tenant=nobody", http.StatusNotFound)

	// A tenant whose replica is still building answers 409, not a panic.
	if tn, _, _ := d.register("pending", p, ""); tn == nil {
		t.Fatal("register failed")
	}
	wantStatus(t, "/v1/query?tenant=pending", http.StatusConflict)
}

// TestCloseKeepsTenantsQueryable: Close drops connections but answers
// must survive until the process exits.
func TestCloseKeepsTenantsQueryable(t *testing.T) {
	d := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = d.Serve(ln) }()
	p := deploy.Params{Dataset: "garden", Seed: 4, TestSteps: 10}
	ref, err := runTenant(ln.Addr().String(), "keep", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := waitForStep(d, "keep", 10); err != nil {
		t.Fatal(err)
	}
	_ = ln.Close()
	d.Close()
	ans, ok := d.Answer("keep")
	if !ok || !sameBits(ans.Estimates, ref.Answer().Estimates) {
		t.Fatal("answer lost after Close")
	}
}
