// The daemon's HTTP query API. Read-only JSON endpoints over the live
// replicas and the live SLO monitor:
//
//	GET /v1/tenants                  — every tenant with state and spec
//	GET /v1/query?tenant=T           — T's live SELECT * answer (±ε)
//	GET /v1/query?tenant=T&agg=avg   — internal/query aggregate over the
//	     [&attrs=0,3,7]                 snapshot, with its derived bound
//	GET /v1/metrics                  — daemon-wide sinkd_* counters
//	GET /v1/metrics?tenant=T         — T's per-tenant stream_* metrics
//	GET /v1/health                   — readiness: per-tenant health states
//	                                   (503 when any tenant is unhealthy)
//	GET /v1/slo?tenant=T             — T's windowed SLO numbers
//
// Answers come from stream.Replica.Answer, a mutex-held snapshot, so
// queries are safe (and meaningful) while frames keep applying. Every
// request is wrapped in withRequestLog: one structured slog line plus the
// sinkd_http_requests_total / sinkd_http_request_seconds series.
package sinkd

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ken/internal/query"
	"ken/internal/stream"
)

// QueryResponse is the /v1/query payload.
type QueryResponse struct {
	Tenant string        `json:"tenant"`
	State  TenantState   `json:"state"`
	Answer stream.Answer `json:"answer"`
	// Aggregate is present when agg= was given.
	Aggregate *AggregateResponse `json:"aggregate,omitempty"`
}

// AggregateResponse is the agg= portion of a /v1/query payload.
type AggregateResponse struct {
	Agg   string  `json:"agg"`
	Attrs []int   `json:"attrs"`
	Value float64 `json:"value"`
	Bound float64 `json:"bound"`
	Count int     `json:"count"`
}

// Handler returns the /v1 query API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tenants", d.handleTenants)
	mux.HandleFunc("GET /v1/query", d.handleQuery)
	mux.HandleFunc("GET /v1/metrics", d.handleMetrics)
	mux.HandleFunc("GET /v1/health", d.handleHealth)
	mux.HandleFunc("GET /v1/slo", d.handleSLO)
	return d.withRequestLog(mux)
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// withRequestLog emits one structured log line per request (method, path,
// tenant, status, duration) and feeds the HTTP request metrics.
func (d *Daemon) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		d.mHTTP.Inc()
		d.tHTTP.Observe(elapsed)
		slog.Info("http",
			"method", r.Method,
			"path", r.URL.Path,
			"tenant", r.URL.Query().Get("tenant"),
			"status", rec.status,
			"duration", elapsed,
		)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (d *Daemon) handleTenants(w http.ResponseWriter, _ *http.Request) {
	d.mQueries.Inc()
	writeJSON(w, struct {
		Tenants []TenantInfo `json:"tenants"`
	}{d.Tenants()})
}

func (d *Daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	d.mQueries.Inc()
	name := r.URL.Query().Get("tenant")
	if name == "" {
		http.Error(w, "missing tenant parameter", http.StatusBadRequest)
		return
	}
	tn, ok := d.lookup(name)
	if !ok {
		http.Error(w, "unknown tenant "+strconv.Quote(name), http.StatusNotFound)
		return
	}
	ans, ok := d.Answer(name)
	if !ok {
		http.Error(w, "tenant "+strconv.Quote(name)+" has no replica yet", http.StatusConflict)
		return
	}
	st, _ := tn.snapshot()
	resp := QueryResponse{Tenant: name, State: st, Answer: ans}

	if aggName := r.URL.Query().Get("agg"); aggName != "" {
		agg, err := query.ParseAggregate(aggName)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		attrs, err := parseAttrs(r.URL.Query().Get("attrs"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a, err := query.EvalSnapshot(ans.Estimates, ans.Eps, agg, attrs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if attrs == nil {
			attrs = []int{}
		}
		resp.Aggregate = &AggregateResponse{
			Agg: agg.String(), Attrs: attrs,
			Value: a.Value, Bound: a.Bound, Count: a.Count,
		}
	}
	writeJSON(w, resp)
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d.mQueries.Inc()
	name := r.URL.Query().Get("tenant")
	if name == "" {
		writeJSON(w, d.cfg.Obs.Registry().Snapshot())
		return
	}
	snap, ok := d.Metrics(name)
	if !ok {
		http.Error(w, "unknown tenant "+strconv.Quote(name), http.StatusNotFound)
		return
	}
	writeJSON(w, snap)
}

// handleHealth is the readiness probe: 200 with the full report while
// every tenant is ok (clean closes included), 503 with the same payload
// the moment any tenant is degraded, stale, shedding or failed — a probe
// can act on the status code alone, the reasons are in the body.
func (d *Daemon) handleHealth(w http.ResponseWriter, _ *http.Request) {
	d.mQueries.Inc()
	rep := d.Health()
	if rep.Status != "ok" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
		return
	}
	writeJSON(w, rep)
}

func (d *Daemon) handleSLO(w http.ResponseWriter, r *http.Request) {
	d.mQueries.Inc()
	name := r.URL.Query().Get("tenant")
	if name == "" {
		http.Error(w, "missing tenant parameter", http.StatusBadRequest)
		return
	}
	st, ok := d.SLO(name)
	if !ok {
		http.Error(w, "unknown tenant "+strconv.Quote(name), http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

// parseAttrs parses the comma-separated attrs= list; empty means all.
func parseAttrs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
