// Package sinkd is the multi-tenant base-station daemon behind
// cmd/kensinkd. One listener hosts many concurrent deployments: each
// connection opens with a session handshake (internal/stream,
// internal/wire) carrying the serialized deployment spec, the daemon
// builds that tenant's replica via internal/deploy (a spec-keyed,
// single-flight build cache deduplicates the expensive model selection
// across tenants sharing a spec), and per-tenant goroutines apply the
// report stream under a bounded frame budget — a tenant that outruns its
// budget is shed with a typed wire.Reject frame instead of ever blocking
// the accept loop or the other tenants. Live answers are served
// thread-safely from the replicas (stream.Replica.Answer) through the
// HTTP query API in http.go.
package sinkd

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/slo"
	"ken/internal/stream"
	"ken/internal/wire"
)

// Config sizes and polices the daemon.
type Config struct {
	// MaxTenants caps concurrently registered tenants (default 1024);
	// further HELLOs are rejected with wire.RejectOverloaded.
	MaxTenants int
	// FrameBudget bounds each tenant's queue of decoded-but-unapplied
	// frames (default 256). A source that overruns it is shed with
	// wire.RejectSlowTenant.
	FrameBudget int
	// HandshakeTimeout bounds how long a connection may sit between
	// accept and a complete HELLO (default 10s) so half-open dials
	// cannot pin goroutines.
	HandshakeTimeout time.Duration
	// Pin, when non-nil, restricts admission to specs that build the
	// same replica (deploy.Params.ReplicaKey); others are rejected with
	// wire.RejectSpecMismatch. TestSteps/HeartbeatEvery may still differ.
	Pin *deploy.Params
	// Obs receives the daemon-wide metrics (sinkd_* series).
	Obs *obs.Observer
	// SLO polices the live monitor's health thresholds (internal/slo).
	// The zero value takes the slo defaults; QueueCap is always overridden
	// with FrameBudget and Obs with the daemon's observer.
	SLO slo.Config

	// ApplyDelay slows every frame apply. A fault-injection hook: tests
	// and ops rehearsals (make sinkd-smoke's degraded leg) use it to
	// drive the backpressure → shed → degraded-health path on demand.
	ApplyDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	if c.FrameBudget <= 0 {
		c.FrameBudget = 256
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	return c
}

// TenantState is the lifecycle phase of a tenant session.
type TenantState string

const (
	// StateBuilding: handshake received, replica still being built.
	StateBuilding TenantState = "building"
	// StateStreaming: accepted and applying frames.
	StateStreaming TenantState = "streaming"
	// StateClosed: the source finished and closed the stream cleanly.
	StateClosed TenantState = "closed"
	// StateShed: the tenant outran its frame budget and was disconnected
	// with a typed reject; its replica stays queryable.
	StateShed TenantState = "shed"
	// StateFailed: the stream died on a decode or apply error.
	StateFailed TenantState = "failed"
)

func (s TenantState) terminal() bool {
	return s == StateClosed || s == StateShed || s == StateFailed
}

// queued is one decoded frame stamped at enqueue time, so the applier can
// measure ingest→apply latency for the live SLO monitor.
type queued struct {
	f  wire.Frame
	at int64 // UnixNano when the reader queued the frame
}

// tenant is one deployment session and its replica.
type tenant struct {
	name   string
	params deploy.Params
	remote string
	mon    *slo.Monitor // the daemon's live monitor (nil-safe)

	mu      sync.Mutex
	state   TenantState
	detail  string          // failure/shed reason
	replica *stream.Replica // nil until built
	reg     *obs.Registry   // per-tenant stream_* metrics

	frames chan queued
}

// lifecycleOf maps the session state machine onto the monitor's coarser
// lifecycle.
func lifecycleOf(s TenantState) slo.Lifecycle {
	switch s {
	case StateClosed:
		return slo.LifeClosed
	case StateShed:
		return slo.LifeShed
	case StateFailed:
		return slo.LifeFailed
	default:
		return slo.LifeActive
	}
}

// setState advances the lifecycle; terminal states are sticky so a late
// applier error cannot overwrite the shed/closed verdict. The live
// monitor is notified after the tenant lock is released.
func (t *tenant) setState(s TenantState, detail string) {
	t.mu.Lock()
	if t.state.terminal() {
		t.mu.Unlock()
		return
	}
	t.state = s
	t.detail = detail
	t.mu.Unlock()
	t.mon.NoteLifecycle(t.name, lifecycleOf(s))
}

func (t *tenant) snapshot() (TenantState, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state, t.detail
}

// buildEntry single-flights one deploy.Build per replica key.
type buildEntry struct {
	once sync.Once
	dep  *deploy.Deployment
	err  error
}

// Daemon hosts many concurrent tenant deployments behind one listener.
type Daemon struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenant
	builds  map[string]*buildEntry
	conns   map[net.Conn]struct{}
	seq     int
	closed  bool
	wg      sync.WaitGroup

	// Live SLO monitoring: appliers publish into feed (bounded,
	// drop-counting), monitor consumes it on a joined goroutine.
	monitor *slo.Monitor
	feed    *slo.Feed

	// Daemon-wide metrics (per-tenant stream_* series live in each
	// tenant's own registry, served via the HTTP API).
	mSessions *obs.Counter // sinkd_sessions_total
	mAccepts  *obs.Counter // sinkd_sessions_accepted_total
	mRejects  *obs.Counter // sinkd_sessions_rejected_total
	mFrames   *obs.Counter // sinkd_frames_total
	mValues   *obs.Counter // sinkd_values_total
	mShed     *obs.Counter // sinkd_tenants_shed_total
	mQueries  *obs.Counter // sinkd_queries_total
	gTenants  *obs.Gauge   // sinkd_tenants_registered
	mHTTP     *obs.Counter // sinkd_http_requests_total
	tHTTP     *obs.Timer   // sinkd_http_request_seconds
}

// New assembles a daemon. Serve starts it; Close tears it down.
func New(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	if cfg.Obs == nil {
		// Counters stay live even unobserved: they are cheap and the shed /
		// reject totals are part of the daemon's behavioural contract.
		cfg.Obs = &obs.Observer{Reg: obs.NewRegistry()}
	}
	cfg.SLO.QueueCap = cfg.FrameBudget
	cfg.SLO.Obs = cfg.Obs
	monitor := slo.NewMonitor(cfg.SLO)
	monitor.Start()
	reg := cfg.Obs.Registry()
	return &Daemon{
		cfg:       cfg,
		tenants:   map[string]*tenant{},
		builds:    map[string]*buildEntry{},
		conns:     map[net.Conn]struct{}{},
		monitor:   monitor,
		feed:      monitor.Feed(),
		mSessions: reg.Counter("sinkd_sessions_total"),
		mAccepts:  reg.Counter("sinkd_sessions_accepted_total"),
		mRejects:  reg.Counter("sinkd_sessions_rejected_total"),
		mFrames:   reg.Counter("sinkd_frames_total"),
		mValues:   reg.Counter("sinkd_values_total"),
		mShed:     reg.Counter("sinkd_tenants_shed_total"),
		mQueries:  reg.Counter("sinkd_queries_total"),
		gTenants:  reg.Gauge("sinkd_tenants_registered"),
		mHTTP:     reg.Counter("sinkd_http_requests_total"),
		tHTTP:     reg.Timer("sinkd_http_request_seconds"),
	}
}

// Serve runs the accept loop until the listener closes. Every connection
// is handled on its own goroutine — handshake, replica build and frame
// application never run on the accept path, so one slow or hostile client
// cannot delay admission of the next.
func (d *Daemon) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		d.conns[conn] = struct{}{}
		d.wg.Add(1)
		d.mu.Unlock()
		go d.handleConn(conn)
	}
}

// Close disconnects every live session and waits for their goroutines.
// The tenants stay registered: their replicas remain queryable through
// the HTTP API until the process exits.
func (d *Daemon) Close() {
	d.mu.Lock()
	d.closed = true
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		//lint:ignore maprange close order is irrelevant: every connection is closed exactly once and no output depends on the order
		conns = append(conns, c)
	}
	d.mu.Unlock()
	// Closing a socket can block; do it outside the daemon lock so queries
	// and tenant listings stay live during shutdown.
	for _, c := range conns {
		_ = c.Close()
	}
	d.wg.Wait()
	d.monitor.Close()
}

// reject answers a handshake (or sheds a stream) with a typed REJECT and
// counts it. Write errors are ignored — the peer may already be gone.
func (d *Daemon) reject(conn net.Conn, code wire.RejectCode, format string, args ...any) {
	d.mRejects.Inc()
	_ = stream.WriteReject(conn, wire.Reject{Code: code, Reason: fmt.Sprintf(format, args...)})
}

// handleConn drives one session end to end.
func (d *Daemon) handleConn(conn net.Conn) {
	defer d.wg.Done()
	defer func() {
		_ = conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()

	d.mSessions.Inc()
	_ = conn.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	h, err := stream.ReadHello(conn)
	if err != nil {
		if errors.Is(err, wire.ErrVersionMismatch) {
			d.reject(conn, wire.RejectVersion, "%v", err)
		} else {
			d.mRejects.Inc()
		}
		return
	}
	if h.Version != wire.SessionVersion {
		d.reject(conn, wire.RejectVersion,
			"session version mismatch: sink v%d, source v%d", uint64(wire.SessionVersion), h.Version)
		return
	}
	p, err := deploy.DecodeSpec(h.Spec)
	if err != nil {
		d.reject(conn, wire.RejectBadSpec, "%v", err)
		return
	}
	if err := p.Validate(); err != nil {
		d.reject(conn, wire.RejectBadSpec, "%v", err)
		return
	}
	if d.cfg.Pin != nil && p.ReplicaKey() != d.cfg.Pin.ReplicaKey() {
		d.reject(conn, wire.RejectSpecMismatch,
			"sink is pinned to %s, offered %s", d.cfg.Pin.ReplicaKey(), p.ReplicaKey())
		return
	}

	tn, rejCode, rejReason := d.register(h.Tenant, p, conn.RemoteAddr().String())
	if tn == nil {
		d.reject(conn, rejCode, "%s", rejReason)
		return
	}
	dep, err := d.build(p)
	if err != nil {
		d.unregister(tn.name)
		d.reject(conn, wire.RejectBadSpec, "building deployment: %v", err)
		return
	}
	replica, err := stream.NewReplica(dep.Config)
	if err != nil {
		d.unregister(tn.name)
		d.reject(conn, wire.RejectBadSpec, "building replica: %v", err)
		return
	}
	replica.Instrument(&obs.Observer{Reg: tn.reg})
	tn.mu.Lock()
	tn.replica = replica
	tn.mu.Unlock()

	if err := stream.WriteAccept(conn, wire.Accept{Tenant: tn.name}); err != nil {
		tn.setState(StateFailed, fmt.Sprintf("writing accept: %v", err))
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	tn.setState(StateStreaming, "")
	d.mAccepts.Inc()
	d.stream(conn, tn, replica)
}

// register reserves the tenant name (assigning one when empty). A name
// whose previous session already ended is replaced — reconnecting with a
// fresh spec starts a fresh deployment; a live duplicate is rejected.
func (d *Daemon) register(name string, p deploy.Params, remote string) (*tenant, wire.RejectCode, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if name == "" {
		d.seq++
		name = fmt.Sprintf("t%d", d.seq)
	}
	if old, ok := d.tenants[name]; ok {
		if st, _ := old.snapshot(); !st.terminal() {
			return nil, wire.RejectDuplicateTenant, fmt.Sprintf("tenant %q is already streaming", name)
		}
	}
	live := 0
	for _, t := range d.tenants {
		if st, _ := t.snapshot(); !st.terminal() {
			live++
		}
	}
	if live >= d.cfg.MaxTenants {
		return nil, wire.RejectOverloaded, fmt.Sprintf("at capacity (%d live tenants)", live)
	}
	tn := &tenant{
		name:   name,
		params: p,
		remote: remote,
		mon:    d.monitor,
		state:  StateBuilding,
		reg:    obs.NewRegistry(),
		frames: make(chan queued, d.cfg.FrameBudget),
	}
	d.tenants[name] = tn
	d.gTenants.Set(float64(len(d.tenants)))
	d.monitor.Track(name)
	return tn, 0, ""
}

func (d *Daemon) unregister(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.tenants, name)
	d.gTenants.Set(float64(len(d.tenants)))
}

// build returns the deployment for p's replica key, building it at most
// once across all tenants (single-flight). TestSteps is normalized to the
// minimum: the sink needs the training prefix only, and generators are
// prefix-stable, so tenants that differ in TestSteps share one build.
func (d *Daemon) build(p deploy.Params) (*deploy.Deployment, error) {
	key := p.ReplicaKey()
	d.mu.Lock()
	e, ok := d.builds[key]
	if !ok {
		e = &buildEntry{}
		d.builds[key] = e
	}
	d.mu.Unlock()
	e.once.Do(func() {
		sinkParams := p
		sinkParams.TestSteps = 1
		sinkParams.HeartbeatEvery = 0
		e.dep, e.err = deploy.Build(sinkParams)
	})
	return e.dep, e.err
}

// applyLoop is the tenant's applier: it folds queued frames into the
// replica until the reader closes the channel. It runs on its own
// goroutine, registered with the daemon WaitGroup so Close() joins it
// explicitly (not just transitively through the reader), and signals done
// so the reader can also join it before returning.
//
//ken:hotpath the sink daemon's per-tenant frame-apply loop
func (d *Daemon) applyLoop(tn *tenant, replica *stream.Replica, done chan<- struct{}) {
	defer d.wg.Done()
	defer close(done)
	for q := range tn.frames {
		if err := d.applyFrame(tn, replica, q); err != nil {
			//lint:ignore hotalloc the failure path formats the terminal state detail once, then the loop exits
			tn.setState(StateFailed, fmt.Sprintf("applying frame %d: %v", q.f.Step, err))
			// Drain so the reader never blocks on a dead applier.
			for range tn.frames {
			}
			return
		}
	}
}

// applyFrame folds one queued frame into the replica, measuring pre-apply
// ε deviations and publishing the apply event into the SLO feed. The feed
// publish is bounded, non-blocking and allocation-free, so the apply path
// keeps its 0-alloc budget (TestAllocBudgetSinkdApply) with the monitor
// attached.
//
//ken:hotpath the sink daemon's per-frame apply
func (d *Daemon) applyFrame(tn *tenant, replica *stream.Replica, q queued) error {
	if d.cfg.ApplyDelay > 0 {
		time.Sleep(d.cfg.ApplyDelay)
	}
	var st stream.ApplyStats
	if err := replica.ApplyObserved(q.f, &st); err != nil {
		return err
	}
	d.mFrames.Inc()
	d.mValues.Add(int64(len(q.f.Attrs)))
	d.feed.Publish(slo.Event{
		Tenant:        tn.name,
		Kind:          slo.KindApply,
		Step:          st.Step,
		Values:        st.Values,
		Heartbeat:     st.Heartbeat,
		Deviations:    st.Deviations,
		MaxDevEps:     st.MaxDevEps,
		EnqueuedNanos: q.at,
		AppliedNanos:  time.Now().UnixNano(),
		QueueDepth:    len(tn.frames),
	})
	return nil
}

// stream is the per-tenant ingest loop: a reader goroutine decodes frames
// off the socket and a separate applier folds them into the replica, so a
// long Gaussian conditioning never backs up into the kernel buffers of
// other connections. The channel between them is the tenant's frame
// budget: when it overflows, the tenant is shed with a typed reject
// rather than blocking.
//
// The reader reuses one raw-body buffer across frames
// (stream.ReadFrameBuf); the decoded frames queue in tn.frames, so their
// Attrs/Values are freshly allocated per frame — only the undecoded body
// is recycled.
func (d *Daemon) stream(conn net.Conn, tn *tenant, replica *stream.Replica) {
	applyDone := make(chan struct{})
	d.wg.Add(1)
	go d.applyLoop(tn, replica, applyDone)

	var body []byte
reader:
	for {
		var f wire.Frame
		var err error
		f, body, err = stream.ReadFrameBuf(conn, replica.Resolution(), body)
		if err == io.EOF {
			tn.setState(StateClosed, "")
			break
		}
		if err != nil {
			tn.setState(StateFailed, fmt.Sprintf("reading frame: %v", err))
			break
		}
		if st, _ := tn.snapshot(); st.terminal() {
			break // applier failed; stop reading
		}
		select {
		case tn.frames <- queued{f: f, at: time.Now().UnixNano()}:
		default:
			d.mShed.Inc()
			now := time.Now().UnixNano()
			d.feed.Publish(slo.Event{
				Tenant: tn.name, Kind: slo.KindShed, Step: f.Step,
				EnqueuedNanos: now, AppliedNanos: now, QueueDepth: len(tn.frames),
			})
			tn.setState(StateShed, fmt.Sprintf(
				"outran the %d-frame budget at step %d", d.cfg.FrameBudget, f.Step))
			d.reject(conn, wire.RejectSlowTenant,
				"shed: outran the %d-frame budget at step %d; reconnect to resume",
				d.cfg.FrameBudget, f.Step)
			break reader
		}
	}
	close(tn.frames)
	<-applyDone
}

// TenantInfo is the /v1/tenants summary of one tenant.
type TenantInfo struct {
	Name       string      `json:"name"`
	State      TenantState `json:"state"`
	Detail     string      `json:"detail,omitempty"`
	Spec       string      `json:"spec"`
	Remote     string      `json:"remote,omitempty"`
	Step       int         `json:"step"`
	Heartbeats int         `json:"heartbeats"`
}

// Tenants lists every registered tenant, sorted by name for deterministic
// output.
func (d *Daemon) Tenants() []TenantInfo {
	d.mu.Lock()
	tns := make([]*tenant, 0, len(d.tenants))
	for _, t := range d.tenants {
		tns = append(tns, t)
	}
	d.mu.Unlock()
	sort.Slice(tns, func(i, j int) bool { return tns[i].name < tns[j].name })
	out := make([]TenantInfo, 0, len(tns))
	for _, t := range tns {
		st, detail := t.snapshot()
		info := TenantInfo{
			Name: t.name, State: st, Detail: detail,
			Spec: t.params.ReplicaKey(), Remote: t.remote,
		}
		t.mu.Lock()
		replica := t.replica
		t.mu.Unlock()
		if replica != nil {
			info.Step = replica.Steps()
			info.Heartbeats = replica.Heartbeats()
		}
		out = append(out, info)
	}
	return out
}

// lookup returns the named tenant.
func (d *Daemon) lookup(name string) (*tenant, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tenants[name]
	return t, ok
}

// Answer snapshots the named tenant's live SELECT * answer.
func (d *Daemon) Answer(name string) (stream.Answer, bool) {
	t, ok := d.lookup(name)
	if !ok {
		return stream.Answer{}, false
	}
	t.mu.Lock()
	replica := t.replica
	t.mu.Unlock()
	if replica == nil {
		return stream.Answer{}, false
	}
	return replica.Answer(), true
}

// Metrics snapshots the named tenant's per-tenant registry (the stream_*
// series of its replica).
func (d *Daemon) Metrics(name string) (obs.Snapshot, bool) {
	t, ok := d.lookup(name)
	if !ok {
		return obs.Snapshot{}, false
	}
	return t.reg.Snapshot(), true
}

// SLO returns the named tenant's live windowed SLO status.
func (d *Daemon) SLO(name string) (slo.TenantStatus, bool) {
	return d.monitor.Status(name)
}

// HealthTenant is one tenant's entry in the health report: the session
// state machine's view (state/detail) joined with the live monitor's
// windowed verdict.
type HealthTenant struct {
	Name    string          `json:"name"`
	State   TenantState     `json:"state"`
	Detail  string          `json:"detail,omitempty"`
	Health  slo.Health      `json:"health"`
	Reasons []string        `json:"reasons,omitempty"`
	Window  slo.WindowStats `json:"window"`
}

// HealthReport is the GET /v1/health payload. Status is "ok" when no
// tenant is unhealthy (clean closes are benign), "degraded" otherwise —
// the HTTP layer maps "degraded" to a non-200 so probes and load
// balancers need no JSON parsing.
type HealthReport struct {
	Status    string         `json:"status"`
	Unhealthy int            `json:"unhealthy"`
	Tenants   []HealthTenant `json:"tenants"`
	Feed      slo.FeedStats  `json:"feed"`
}

// Health evaluates every tenant against the live SLO window and folds the
// verdicts into one daemon-level readiness answer.
func (d *Daemon) Health() HealthReport {
	infos := d.Tenants()
	byName := make(map[string]slo.TenantStatus, len(infos))
	for _, st := range d.monitor.StatusAll() {
		byName[st.Tenant] = st
	}
	rep := HealthReport{Status: "ok", Feed: d.monitor.FeedStats()}
	rep.Tenants = make([]HealthTenant, 0, len(infos))
	for _, info := range infos {
		st := byName[info.Name]
		ht := HealthTenant{
			Name: info.Name, State: info.State, Detail: info.Detail,
			Health: st.Health, Reasons: st.Reasons, Window: st.Window,
		}
		if st.Health == "" {
			// Registered but not yet tracked (a register/track race at
			// admission): report it plainly rather than inventing a verdict.
			ht.Health = slo.HealthOK
		}
		if st.Unhealthy {
			rep.Unhealthy++
		}
		rep.Tenants = append(rep.Tenants, ht)
	}
	if rep.Unhealthy > 0 {
		rep.Status = "degraded"
	}
	return rep
}
