package sinkd

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/slo"
	"ken/internal/stream"
	"ken/internal/wire"
)

// shedTenant drives the named tenant into the shed state: one-frame
// budget daemons with a slowed applier overflow on a three-frame burst.
// The daemon must have been built with FrameBudget 1 and a large
// ApplyDelay.
func shedTenant(t *testing.T, d *Daemon, addr, name string) {
	t.Helper()
	p := deploy.Params{Dataset: "garden", Seed: 1, TestSteps: 3}
	dep, err := deploy.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.NewSource(dep.Config)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := stream.Handshake(conn, wire.Hello{Tenant: name, Spec: p.EncodeSpec()}); err != nil {
		t.Fatal(err)
	}
	for i, row := range dep.Test {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := stream.WriteFrame(conn, f, src.Resolution()); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			time.Sleep(100 * time.Millisecond)
		}
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	s, err := stream.ReadSession(conn)
	if err != nil {
		t.Fatal(err)
	}
	if s.Reject == nil || s.Reject.Code != wire.RejectSlowTenant {
		t.Fatalf("shed answered with %+v, want slow-tenant reject", s)
	}
	if st, detail := waitForState(d, name, StateShed); st != StateShed {
		t.Fatalf("tenant state %s (%s), want shed", st, detail)
	}
}

// TestHealthEndpoint walks /v1/health through the full transition: 200
// "ok" while a tenant streams and after it closes cleanly, 503 "degraded"
// the moment a tenant is shed — the smoke test's end-to-end probe, pinned
// here at the package level.
func TestHealthEndpoint(t *testing.T) {
	d, addr := newDaemon(t, Config{FrameBudget: 1, ApplyDelay: 300 * time.Millisecond})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	getHealth := func(t *testing.T) (int, HealthReport) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rep
	}

	// No tenants yet: healthy and empty.
	code, rep := getHealth(t)
	if code != http.StatusOK || rep.Status != "ok" || len(rep.Tenants) != 0 {
		t.Fatalf("empty daemon: code=%d report=%+v, want 200 ok", code, rep)
	}

	// A tenant that finishes cleanly stays benign: terminal, but not
	// unhealthy, so the daemon keeps answering 200.
	p := deploy.Params{Dataset: "garden", Seed: 2, TestSteps: 2}
	if _, err := runTenant(addr, "clean", p); err != nil {
		t.Fatal(err)
	}
	if st, detail := waitForState(d, "clean", StateClosed); st != StateClosed {
		t.Fatalf("tenant state %s (%s), want closed", st, detail)
	}
	code, rep = getHealth(t)
	if code != http.StatusOK || rep.Status != "ok" || rep.Unhealthy != 0 {
		t.Fatalf("after clean close: code=%d report status=%s unhealthy=%d, want 200 ok 0", code, rep.Status, rep.Unhealthy)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Health != slo.HealthTerminal {
		t.Fatalf("closed tenant entry: %+v, want terminal", rep.Tenants)
	}

	// Shedding flips the daemon to 503 with a machine-readable reason.
	shedTenant(t, d, addr, "slow")
	code, rep = getHealth(t)
	if code != http.StatusServiceUnavailable || rep.Status != "degraded" || rep.Unhealthy != 1 {
		t.Fatalf("after shed: code=%d status=%s unhealthy=%d, want 503 degraded 1", code, rep.Status, rep.Unhealthy)
	}
	var shed *HealthTenant
	for i := range rep.Tenants {
		if rep.Tenants[i].Name == "slow" {
			shed = &rep.Tenants[i]
		}
	}
	if shed == nil || shed.Health != slo.HealthShedding || shed.State != StateShed {
		t.Fatalf("shed tenant entry: %+v, want shedding/shed", shed)
	}
	found := false
	for _, r := range shed.Reasons {
		if r == slo.ReasonShed {
			found = true
		}
	}
	if !found {
		t.Fatalf("shed reasons %v, want %q", shed.Reasons, slo.ReasonShed)
	}
	if rep.Feed.Published == 0 {
		t.Fatal("feed stats report zero published events after applies and a shed")
	}
}

// TestSLOEndpoint pins /v1/slo: windowed numbers for a live tenant, 400
// without a tenant, 404 for an unknown one.
func TestSLOEndpoint(t *testing.T) {
	d, addr := newDaemon(t, Config{})
	const steps = 30
	p := deploy.Params{Dataset: "garden", Seed: 2, TestSteps: steps}
	if _, err := runTenant(addr, "web", p); err != nil {
		t.Fatal(err)
	}
	if _, err := waitForStep(d, "web", steps); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/slo?tenant=web")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slo?tenant=web: %s", resp.Status)
	}
	var st slo.TenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "web" || st.Window.TotalFrames != steps || st.Window.LastStep != steps-1 {
		t.Fatalf("slo status %+v, want %d total frames ending at step %d", st, steps, steps-1)
	}
	if st.Window.QueueCap != 256 {
		t.Fatalf("queue cap %d, want the default frame budget 256", st.Window.QueueCap)
	}

	for path, code := range map[string]int{
		"/v1/slo":               http.StatusBadRequest,
		"/v1/slo?tenant=nobody": http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != code {
			t.Errorf("GET %s: got %s, want %d", path, resp.Status, code)
		}
	}
}

// TestTerminalTenantQueryable pins the sticky-terminal contract on the
// HTTP surface: shed and closed tenants keep answering /v1/query and
// /v1/metrics with 200 and their frozen state — shedding disconnects the
// source, never the readers.
func TestTerminalTenantQueryable(t *testing.T) {
	d, addr := newDaemon(t, Config{FrameBudget: 1, ApplyDelay: 300 * time.Millisecond})
	shedTenant(t, d, addr, "slow")
	// The shed disconnects the source; the already-queued frames still
	// drain through the (slowed) applier. Wait for them so the frozen
	// answer below is past step 0.
	if _, err := waitForStep(d, "slow", 1); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var q QueryResponse
	resp, err := http.Get(srv.URL + "/v1/query?tenant=slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/query on shed tenant: %s, want 200", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.State != StateShed || len(q.Answer.Estimates) == 0 {
		t.Fatalf("shed query %+v, want state shed with a frozen answer", q)
	}

	var ms obs.Snapshot
	resp2, err := http.Get(srv.URL + "/v1/metrics?tenant=slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics on shed tenant: %s, want 200", resp2.Status)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if ms.Counters["stream_frames_applied_total"] == 0 {
		t.Fatalf("shed tenant metrics %+v, want applied frames > 0", ms.Counters)
	}

	// A cleanly closed tenant answers the same way, with state "closed" —
	// on a healthy daemon, so the budget fault above cannot shed it too.
	d2, addr2 := newDaemon(t, Config{})
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	p := deploy.Params{Dataset: "garden", Seed: 2, TestSteps: 4}
	if _, err := runTenant(addr2, "done", p); err != nil {
		t.Fatal(err)
	}
	if st, detail := waitForState(d2, "done", StateClosed); st != StateClosed {
		t.Fatalf("tenant state %s (%s), want closed", st, detail)
	}
	resp3, err := http.Get(srv2.URL + "/v1/query?tenant=done")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("/v1/query on closed tenant: %s, want 200", resp3.Status)
	}
	var qc QueryResponse
	if err := json.NewDecoder(resp3.Body).Decode(&qc); err != nil {
		t.Fatal(err)
	}
	if qc.State != StateClosed || qc.Answer.Step != 4 {
		t.Fatalf("closed query %+v, want state closed at step 4", qc)
	}
}

// TestRequestLogMiddleware captures the default slog output and checks
// every /v1 request emits one structured line and feeds the HTTP metrics.
func TestRequestLogMiddleware(t *testing.T) {
	var buf bytes.Buffer
	prev := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))
	defer slog.SetDefault(prev)

	d, _ := newDaemon(t, Config{})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	get := func(path string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	get("/v1/tenants")
	get("/v1/query?tenant=nobody")

	logs := buf.String()
	if !strings.Contains(logs, "method=GET") || !strings.Contains(logs, "path=/v1/tenants") || !strings.Contains(logs, "status=200") {
		t.Errorf("request log missing the /v1/tenants line:\n%s", logs)
	}
	if !strings.Contains(logs, "path=/v1/query") || !strings.Contains(logs, "tenant=nobody") || !strings.Contains(logs, "status=404") {
		t.Errorf("request log missing the 404 query line:\n%s", logs)
	}

	snap := d.cfg.Obs.Registry().Snapshot()
	if snap.Counters["sinkd_http_requests_total"] != 2 {
		t.Errorf("sinkd_http_requests_total=%d, want 2", snap.Counters["sinkd_http_requests_total"])
	}
	if snap.Histograms["sinkd_http_request_seconds"].Count != 2 {
		t.Errorf("sinkd_http_request_seconds count=%d, want 2", snap.Histograms["sinkd_http_request_seconds"].Count)
	}
}

// TestMonitorSeesApplies checks the feed → monitor plumbing end to end in
// process: after a session the monitor's window carries the applied
// frames, and sinkd's own registry mirrors the slo_* series.
func TestMonitorSeesApplies(t *testing.T) {
	d, addr := newDaemon(t, Config{})
	const steps = 25
	p := deploy.Params{Dataset: "garden", Seed: 3, TestSteps: steps, HeartbeatEvery: 10}
	if _, err := runTenant(addr, "mon", p); err != nil {
		t.Fatal(err)
	}
	if _, err := waitForStep(d, "mon", steps); err != nil {
		t.Fatal(err)
	}
	st, ok := d.SLO("mon")
	if !ok {
		t.Fatal("monitor does not know tenant mon")
	}
	if st.Window.TotalFrames != steps {
		t.Fatalf("monitor frames=%d, want %d", st.Window.TotalFrames, steps)
	}
	if st.Window.Heartbeats == 0 {
		t.Fatal("monitor saw no heartbeat frames despite HeartbeatEvery=10")
	}
	if st.Window.LatencyP95 <= 0 {
		t.Fatalf("latency p95=%v, want > 0", st.Window.LatencyP95)
	}
	snap := d.cfg.Obs.Registry().Snapshot()
	if snap.Counters["slo_events_total"] < steps {
		t.Fatalf("slo_events_total=%d, want >= %d", snap.Counters["slo_events_total"], steps)
	}
	if errs := snap.Counters["slo_feed_dropped_total"]; errs != 0 {
		t.Fatalf("slo_feed_dropped_total=%d, want 0", errs)
	}
}
