package sinkd

import (
	"testing"
	"time"

	"ken/internal/alloctest"
	"ken/internal/deploy"
	"ken/internal/slo"
	"ken/internal/stream"
	"ken/internal/wire"
)

// TestAllocBudgetSinkdApply pins the daemon's per-frame apply — replica
// conditioning, daemon counters and the SLO feed publish — at zero heap
// allocations for steady-state empty frames, with the live monitor
// attached. The monitor's sync interval is pushed out so its drain
// goroutine (whose scratch growth is off the hot path by design) cannot
// allocate mid-measurement: AllocsPerRun counts process-wide mallocs.
func TestAllocBudgetSinkdApply(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	d := New(Config{SLO: slo.Config{SyncEvery: time.Hour}})
	defer d.Close()
	dep, err := deploy.Build(deploy.Params{Dataset: "garden", Seed: 1, TestSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	replica, err := stream.NewReplica(dep.Config)
	if err != nil {
		t.Fatal(err)
	}
	tn := &tenant{name: "alloc", mon: d.monitor, frames: make(chan queued, 4)}

	var step uint64
	if got := testing.AllocsPerRun(100, func() {
		if err := d.applyFrame(tn, replica, queued{f: wire.Frame{Step: step}}); err != nil {
			t.Fatal(err)
		}
		step++
	}); got != 0 {
		t.Errorf("applyFrame with monitor attached: %v allocs/op, budget 0", got)
	}
	if st := d.monitor.FeedStats(); st.Published+st.Dropped < 100 {
		t.Fatalf("feed saw %d events, want >= 100 — publishes not reaching the feed", st.Published+st.Dropped)
	}
}
