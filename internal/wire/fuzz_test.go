package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the frame parser: arbitrary bytes must never panic,
// and every frame the fuzzer round-trips through Encode must decode back.
func FuzzDecode(f *testing.F) {
	// Seed with valid frames of varying shapes.
	seeds := []Frame{
		{},
		{Step: 1, Attrs: []int{0}, Values: []float64{1}},
		{Step: 1 << 40, Attrs: []int{0, 5, 1000}, Values: []float64{-3.5, 0, 99.25}},
		{Step: 3, Special: KindHeartbeat, Attrs: []int{2}, Values: []float64{7}},
	}
	for _, s := range seeds {
		buf, err := Encode(s, 0.01)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Magic})
	f.Add([]byte{Magic, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data, 0.01)
		if err != nil {
			return // rejecting garbage is correct
		}
		// Anything that decodes must re-encode and decode identically.
		out, err := Encode(frame, 0.01)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		again, err := Decode(out, 0.01)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if again.Step != frame.Step || len(again.Attrs) != len(frame.Attrs) {
			t.Fatalf("unstable round trip: %+v vs %+v", frame, again)
		}
	})
}

// FuzzDecodeSession hardens the session-frame parser the same way:
// arbitrary bytes must never panic, and every frame that decodes must
// survive a re-encode/decode round trip unchanged.
func FuzzDecodeSession(f *testing.F) {
	for _, h := range []Hello{
		{Version: SessionVersion},
		{Version: SessionVersion, Tenant: "garden-a", Spec: []byte{1, 6, 'g', 'a', 'r', 'd', 'e', 'n', 2}},
		{Version: 1 << 40, Tenant: "x"},
	} {
		buf, err := EncodeHello(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	for _, a := range []Accept{{Version: SessionVersion}, {Version: 1, Tenant: "t42"}} {
		buf, err := EncodeAccept(a)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	for _, r := range []Reject{
		{Version: 1, Code: RejectVersion, Reason: "local v1, remote v2"},
		{Version: 1, Code: RejectSlowTenant, Reason: "shed at step 17"},
	} {
		buf, err := EncodeReject(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{SessionMagic})
	f.Add([]byte{Magic, 0x00}) // stale pre-session peer
	f.Add([]byte{SessionMagic, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSession(data)
		if err != nil {
			return // rejecting garbage (and stale peers) is correct
		}
		var out []byte
		switch s.Kind() {
		case KindHello:
			out, err = EncodeHello(*s.Hello)
		case KindAccept:
			out, err = EncodeAccept(*s.Accept)
		case KindReject:
			out, err = EncodeReject(*s.Reject)
		}
		if err != nil {
			t.Fatalf("decoded session does not re-encode: %v", err)
		}
		again, err := DecodeSession(out)
		if err != nil {
			t.Fatalf("re-encoded session does not decode: %v", err)
		}
		if again.Kind() != s.Kind() {
			t.Fatalf("unstable round trip: kind %d vs %d", s.Kind(), again.Kind())
		}
		switch s.Kind() {
		case KindHello:
			if again.Hello.Version != s.Hello.Version || again.Hello.Tenant != s.Hello.Tenant ||
				!bytes.Equal(again.Hello.Spec, s.Hello.Spec) {
				t.Fatalf("unstable hello: %+v vs %+v", *s.Hello, *again.Hello)
			}
		case KindAccept:
			if *again.Accept != *s.Accept {
				t.Fatalf("unstable accept: %+v vs %+v", *s.Accept, *again.Accept)
			}
		case KindReject:
			if *again.Reject != *s.Reject {
				t.Fatalf("unstable reject: %+v vs %+v", *s.Reject, *again.Reject)
			}
		}
	})
}

// TestGoldenBytes pins the wire format: changing the encoding silently
// would break deployed source/sink pairs, so the exact bytes of a
// reference frame are asserted.
func TestGoldenBytes(t *testing.T) {
	f := Frame{
		Step:   300,
		Attrs:  []int{2, 7},
		Values: []float64{1.0, -2.5},
	}
	got, err := Encode(f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0xC3,       // magic
		0x00,       // kind = report
		0xAC, 0x02, // step 300 uvarint
		0x02,       // count 2
		0x02, 0x05, // attr deltas 2, 5
		0x04, // value 1.0/0.5 = 2 zigzag → 4
		0x09, // value −2.5/0.5 = −5 zigzag → 9
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire format changed:\n got  %#v\n want %#v", got, want)
	}
}
