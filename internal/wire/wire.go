// Package wire defines the compact binary frame format Ken reports travel
// in between a source process and the base-station sink (see
// internal/stream for the transport). One frame carries one time step's
// report set.
//
// Layout (all integers varint-encoded, little-endian groups):
//
//	magic      byte 0xK3 (0xC3)
//	step       uvarint — the sampling step the reports belong to
//	count      uvarint — number of (attr, value) pairs
//	attrs      delta-encoded uvarints (attr indices ascending)
//	values     varint quantized readings (value / resolution, zigzag)
//
// Values are quantized to a caller-chosen resolution. Ken's guarantee
// composes cleanly: quantizing to resolution r adds at most r/2 error, so a
// deployment that needs ±ε end-to-end runs the protocol at ε − r/2. With
// the default resolution of ε/100 the slack is negligible.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Magic is the frame marker byte.
const Magic = 0xC3

// Frame is one step's report set.
type Frame struct {
	Step    uint64
	Attrs   []int
	Values  []float64
	Special Kind
}

// Kind distinguishes regular reports from control frames.
type Kind byte

const (
	// KindReport is a normal report set (possibly empty).
	KindReport Kind = 0
	// KindHeartbeat marks a full-state resynchronisation frame (§6).
	KindHeartbeat Kind = 1
)

// ErrCorrupt is returned (wrapped) when a frame fails to parse.
var ErrCorrupt = errors.New("wire: corrupt frame")

// Encode serialises the frame with the given value resolution. Attributes
// are sorted ascending; attrs and values must have equal length.
func Encode(f Frame, resolution float64) ([]byte, error) {
	if len(f.Attrs) != len(f.Values) {
		return nil, fmt.Errorf("wire: %d attrs, %d values", len(f.Attrs), len(f.Values))
	}
	if resolution <= 0 {
		return nil, fmt.Errorf("wire: non-positive resolution %v", resolution)
	}
	type pair struct {
		attr int
		val  float64
	}
	pairs := make([]pair, len(f.Attrs))
	for i := range f.Attrs {
		if f.Attrs[i] < 0 {
			return nil, fmt.Errorf("wire: negative attribute %d", f.Attrs[i])
		}
		if math.IsNaN(f.Values[i]) || math.IsInf(f.Values[i], 0) {
			return nil, fmt.Errorf("wire: non-finite value %v", f.Values[i])
		}
		pairs[i] = pair{f.Attrs[i], f.Values[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].attr < pairs[b].attr })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].attr == pairs[i-1].attr {
			return nil, fmt.Errorf("wire: duplicate attribute %d", pairs[i].attr)
		}
	}

	buf := make([]byte, 0, 4+3*len(pairs))
	buf = append(buf, Magic, byte(f.Special))
	buf = binary.AppendUvarint(buf, f.Step)
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	prev := 0
	for _, p := range pairs {
		buf = binary.AppendUvarint(buf, uint64(p.attr-prev))
		prev = p.attr
	}
	for _, p := range pairs {
		q := int64(math.Round(p.val / resolution))
		buf = binary.AppendVarint(buf, q)
	}
	return buf, nil
}

// Decode parses a frame encoded with the same resolution.
func Decode(buf []byte, resolution float64) (Frame, error) {
	var f Frame
	if err := DecodeInto(&f, buf, resolution); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// DecodeInto parses a frame encoded with the same resolution into f,
// reusing f's Attrs and Values backing arrays when their capacity suffices
// (they come back length-0 rather than nil for empty frames). A frame
// whose pairs fit the existing capacity decodes without allocating. On
// error f is left in an unspecified state.
//
//ken:hotpath decodes into the caller's frame, reusing its backing arrays
func DecodeInto(f *Frame, buf []byte, resolution float64) error {
	if resolution <= 0 {
		return fmt.Errorf("wire: non-positive resolution %v", resolution)
	}
	if len(buf) < 2 || buf[0] != Magic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	kind := Kind(buf[1])
	if kind != KindReport && kind != KindHeartbeat {
		return fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	rest := buf[2:]
	step, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("%w: step", ErrCorrupt)
	}
	rest = rest[n:]
	count64, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("%w: count", ErrCorrupt)
	}
	rest = rest[n:]
	if count64 > 1<<20 {
		return fmt.Errorf("%w: implausible count %d", ErrCorrupt, count64)
	}
	count := int(count64)
	f.Step = step
	f.Special = kind
	attrs := f.Attrs[:0]
	values := f.Values[:0]
	f.Attrs = attrs
	f.Values = values
	if count == 0 {
		if len(rest) != 0 {
			return fmt.Errorf("%w: trailing bytes", ErrCorrupt)
		}
		return nil
	}
	prev := 0
	for i := 0; i < count; i++ {
		d, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("%w: attr %d", ErrCorrupt, i)
		}
		// Attributes are strictly ascending: every delta after the first
		// must be at least 1 (a zero delta would be a duplicate).
		if i > 0 && d == 0 {
			return fmt.Errorf("%w: duplicate attribute delta", ErrCorrupt)
		}
		rest = rest[n:]
		prev += int(d)
		attrs = append(attrs, prev)
	}
	for i := 0; i < count; i++ {
		q, n := binary.Varint(rest)
		if n <= 0 {
			return fmt.Errorf("%w: value %d", ErrCorrupt, i)
		}
		rest = rest[n:]
		values = append(values, float64(q)*resolution)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	f.Attrs = attrs
	f.Values = values
	return nil
}
