// Session-layer frames. Before any report frame flows, the source opens
// the connection with a HELLO carrying the session protocol version, its
// chosen tenant name, and the serialized deployment spec (opaque bytes at
// this layer — internal/deploy owns the schema). The sink answers with a
// typed ACCEPT (echoing the assigned tenant) or REJECT (a machine-readable
// code plus a human reason). This replaces the old implicit contract where
// both processes had to be launched with byte-identical CLI flags: the
// spec travels in-band, so one sink can serve many deployments and a
// mismatch is a named error instead of a garbled decode.
//
// Layout (all integers uvarint unless noted):
//
//	HELLO:  0xC5 0x00  version  len(tenant) tenant  len(spec) spec
//	ACCEPT: 0xC5 0x01  version  len(tenant) tenant
//	REJECT: 0xC5 0x02  version  code  len(reason) reason
//
// SessionMagic differs from the report-frame Magic, so a pre-session
// binary that opens with a report frame is recognised as a stale peer
// (ErrVersionMismatch) rather than corruption.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SessionMagic marks a session-layer frame (HELLO/ACCEPT/REJECT).
const SessionMagic = 0xC5

// SessionVersion is the session protocol version this build speaks. The
// handshake requires an exact match: the replica lock-step guarantee is
// only as strong as both endpoints running the same protocol.
const SessionVersion = 1

// Limits guard the session parser against hostile lengths.
const (
	maxTenantLen = 128
	maxSpecLen   = 4096
	maxReasonLen = 1024
)

// ErrVersionMismatch reports that the two endpoints speak different
// session protocol versions (including a pre-session peer that opened
// with a raw report frame). The wrapped message names both versions so an
// operator can tell a stale binary from corruption.
var ErrVersionMismatch = errors.New("wire: session version mismatch")

// ErrSpecRejected reports that the sink refused the deployment spec
// offered in HELLO. The wrapped message carries the reject code and the
// sink's reason.
var ErrSpecRejected = errors.New("wire: spec rejected")

// SessionKind discriminates the session frames.
type SessionKind byte

const (
	// KindHello opens a session: version + tenant + deployment spec.
	KindHello SessionKind = 0
	// KindAccept confirms the session; reports may follow.
	KindAccept SessionKind = 1
	// KindReject refuses the session (or sheds it mid-stream) with a
	// typed reason; the sink closes the connection after sending it.
	KindReject SessionKind = 2
)

// RejectCode is the machine-readable reason of a REJECT frame.
type RejectCode uint8

const (
	// RejectVersion: the endpoints speak different session versions.
	RejectVersion RejectCode = 1
	// RejectBadSpec: the spec failed to decode, validate or build.
	RejectBadSpec RejectCode = 2
	// RejectSpecMismatch: the sink is pinned to one deployment and the
	// offered spec builds a different replica.
	RejectSpecMismatch RejectCode = 3
	// RejectOverloaded: the sink is at its tenant capacity.
	RejectOverloaded RejectCode = 4
	// RejectDuplicateTenant: the tenant name is already connected.
	RejectDuplicateTenant RejectCode = 5
	// RejectSlowTenant: the tenant outran its frame budget and was shed
	// so it could not block other tenants (sent mid-stream).
	RejectSlowTenant RejectCode = 6
)

// String names the code.
func (c RejectCode) String() string {
	switch c {
	case RejectVersion:
		return "version-mismatch"
	case RejectBadSpec:
		return "bad-spec"
	case RejectSpecMismatch:
		return "spec-mismatch"
	case RejectOverloaded:
		return "overloaded"
	case RejectDuplicateTenant:
		return "duplicate-tenant"
	case RejectSlowTenant:
		return "slow-tenant"
	default:
		return fmt.Sprintf("reject(%d)", uint8(c))
	}
}

// Hello is the client's opening frame.
type Hello struct {
	// Version is the client's SessionVersion.
	Version uint64
	// Tenant is the client-chosen tenant name (may be empty; the sink
	// assigns one and echoes it in ACCEPT).
	Tenant string
	// Spec is the serialized deployment spec (internal/deploy schema).
	Spec []byte
}

// Accept confirms a session.
type Accept struct {
	// Version is the sink's SessionVersion.
	Version uint64
	// Tenant is the assigned tenant name (the HELLO name, or generated).
	Tenant string
}

// Reject refuses or sheds a session.
type Reject struct {
	// Version is the sink's SessionVersion.
	Version uint64
	// Code is the machine-readable reason.
	Code RejectCode
	// Reason is the human-readable detail.
	Reason string
}

// Err converts the reject into the typed error a client should surface:
// ErrVersionMismatch for RejectVersion, ErrSpecRejected otherwise. The
// message keeps the code and the sink's reason.
func (r Reject) Err() error {
	if r.Code == RejectVersion {
		return fmt.Errorf("%w: local v%d: %s", ErrVersionMismatch, uint64(SessionVersion), r.Reason)
	}
	return fmt.Errorf("%w (%s): %s", ErrSpecRejected, r.Code, r.Reason)
}

// Session is one decoded session-layer frame; exactly one field is set.
type Session struct {
	Hello  *Hello
	Accept *Accept
	Reject *Reject
}

// Kind returns the discriminator of the decoded frame.
func (s Session) Kind() SessionKind {
	switch {
	case s.Hello != nil:
		return KindHello
	case s.Accept != nil:
		return KindAccept
	default:
		return KindReject
	}
}

// EncodeHello serialises a HELLO frame.
func EncodeHello(h Hello) ([]byte, error) {
	if len(h.Tenant) > maxTenantLen {
		return nil, fmt.Errorf("wire: tenant name of %d bytes exceeds %d", len(h.Tenant), maxTenantLen)
	}
	if len(h.Spec) > maxSpecLen {
		return nil, fmt.Errorf("wire: spec of %d bytes exceeds %d", len(h.Spec), maxSpecLen)
	}
	buf := make([]byte, 0, 8+len(h.Tenant)+len(h.Spec))
	buf = append(buf, SessionMagic, byte(KindHello))
	buf = binary.AppendUvarint(buf, h.Version)
	buf = appendBytes(buf, []byte(h.Tenant))
	buf = appendBytes(buf, h.Spec)
	return buf, nil
}

// EncodeAccept serialises an ACCEPT frame.
func EncodeAccept(a Accept) ([]byte, error) {
	if len(a.Tenant) > maxTenantLen {
		return nil, fmt.Errorf("wire: tenant name of %d bytes exceeds %d", len(a.Tenant), maxTenantLen)
	}
	buf := make([]byte, 0, 8+len(a.Tenant))
	buf = append(buf, SessionMagic, byte(KindAccept))
	buf = binary.AppendUvarint(buf, a.Version)
	buf = appendBytes(buf, []byte(a.Tenant))
	return buf, nil
}

// EncodeReject serialises a REJECT frame.
func EncodeReject(r Reject) ([]byte, error) {
	if len(r.Reason) > maxReasonLen {
		r.Reason = r.Reason[:maxReasonLen]
	}
	buf := make([]byte, 0, 8+len(r.Reason))
	buf = append(buf, SessionMagic, byte(KindReject))
	buf = binary.AppendUvarint(buf, r.Version)
	buf = binary.AppendUvarint(buf, uint64(r.Code))
	buf = appendBytes(buf, []byte(r.Reason))
	return buf, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(buf []byte, limit int, what string) ([]byte, []byte, error) {
	n64, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: %s length", ErrCorrupt, what)
	}
	buf = buf[n:]
	if n64 > uint64(limit) {
		return nil, nil, fmt.Errorf("%w: %s of %d bytes exceeds %d", ErrCorrupt, what, n64, limit)
	}
	if uint64(len(buf)) < n64 {
		return nil, nil, fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
	return buf[:n64], buf[n64:], nil
}

// DecodeSession parses one session-layer frame. A buffer that starts with
// the report-frame Magic instead of SessionMagic is a stale, pre-session
// peer and yields ErrVersionMismatch (naming "v0"), not ErrCorrupt — an
// operator must be able to tell an old binary from a corrupt stream.
func DecodeSession(buf []byte) (Session, error) {
	if len(buf) < 2 {
		return Session{}, fmt.Errorf("%w: short session frame", ErrCorrupt)
	}
	if buf[0] == Magic {
		return Session{}, fmt.Errorf("%w: local v%d, remote v0 (peer opened with a pre-session report frame; stale binary?)",
			ErrVersionMismatch, uint64(SessionVersion))
	}
	if buf[0] != SessionMagic {
		return Session{}, fmt.Errorf("%w: bad session magic 0x%02X", ErrCorrupt, buf[0])
	}
	kind := SessionKind(buf[1])
	rest := buf[2:]
	version, n := binary.Uvarint(rest)
	if n <= 0 {
		return Session{}, fmt.Errorf("%w: session version", ErrCorrupt)
	}
	rest = rest[n:]
	switch kind {
	case KindHello:
		tenant, rest, err := readBytes(rest, maxTenantLen, "tenant")
		if err != nil {
			return Session{}, err
		}
		spec, rest, err := readBytes(rest, maxSpecLen, "spec")
		if err != nil {
			return Session{}, err
		}
		if len(rest) != 0 {
			return Session{}, fmt.Errorf("%w: trailing bytes after hello", ErrCorrupt)
		}
		return Session{Hello: &Hello{Version: version, Tenant: string(tenant), Spec: append([]byte(nil), spec...)}}, nil
	case KindAccept:
		tenant, rest, err := readBytes(rest, maxTenantLen, "tenant")
		if err != nil {
			return Session{}, err
		}
		if len(rest) != 0 {
			return Session{}, fmt.Errorf("%w: trailing bytes after accept", ErrCorrupt)
		}
		return Session{Accept: &Accept{Version: version, Tenant: string(tenant)}}, nil
	case KindReject:
		code, n := binary.Uvarint(rest)
		if n <= 0 || code == 0 || code > 255 {
			return Session{}, fmt.Errorf("%w: reject code", ErrCorrupt)
		}
		rest = rest[n:]
		reason, rest, err := readBytes(rest, maxReasonLen, "reason")
		if err != nil {
			return Session{}, err
		}
		if len(rest) != 0 {
			return Session{}, fmt.Errorf("%w: trailing bytes after reject", ErrCorrupt)
		}
		return Session{Reject: &Reject{Version: version, Code: RejectCode(code), Reason: string(reason)}}, nil
	default:
		return Session{}, fmt.Errorf("%w: unknown session kind %d", ErrCorrupt, kind)
	}
}
