package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	f := Frame{
		Step:   12345,
		Attrs:  []int{3, 0, 17},
		Values: []float64{21.53, -4.08, 19.999},
	}
	const res = 0.005
	buf, err := Encode(f, res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf, res)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != f.Step || got.Special != KindReport {
		t.Fatalf("header mismatch: %+v", got)
	}
	// Attrs come back sorted ascending.
	wantAttrs := []int{0, 3, 17}
	wantVals := []float64{-4.08, 21.53, 19.999}
	for i := range wantAttrs {
		if got.Attrs[i] != wantAttrs[i] {
			t.Fatalf("attrs = %v, want %v", got.Attrs, wantAttrs)
		}
		if math.Abs(got.Values[i]-wantVals[i]) > res/2+1e-12 {
			t.Fatalf("value %d = %v, want %v within %v", i, got.Values[i], wantVals[i], res/2)
		}
	}
}

func TestEmptyFrame(t *testing.T) {
	buf, err := Encode(Frame{Step: 7}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 7 || len(got.Attrs) != 0 || len(got.Values) != 0 {
		t.Fatalf("empty frame round trip: %+v", got)
	}
}

func TestHeartbeatKind(t *testing.T) {
	buf, err := Encode(Frame{Step: 1, Special: KindHeartbeat, Attrs: []int{0}, Values: []float64{1}}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got.Special != KindHeartbeat {
		t.Fatalf("kind = %d", got.Special)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(Frame{Attrs: []int{0}, Values: nil}, 0.01); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Encode(Frame{}, 0); err == nil {
		t.Fatal("expected error for zero resolution")
	}
	if _, err := Encode(Frame{Attrs: []int{-1}, Values: []float64{1}}, 0.01); err == nil {
		t.Fatal("expected error for negative attribute")
	}
	if _, err := Encode(Frame{Attrs: []int{0}, Values: []float64{math.NaN()}}, 0.01); err == nil {
		t.Fatal("expected error for NaN value")
	}
	if _, err := Encode(Frame{Attrs: []int{1, 1}, Values: []float64{1, 2}}, 0.01); err == nil {
		t.Fatal("expected error for duplicate attribute")
	}
}

func TestDecodeCorruption(t *testing.T) {
	good, err := Encode(Frame{Step: 9, Attrs: []int{1, 4}, Values: []float64{2, 3}}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{0x00}, good[1:]...),
		"bad kind":    append([]byte{Magic, 0x7}, good[2:]...),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0xFF),
		"only header": good[:2],
	}
	for name, buf := range cases {
		if _, err := Decode(buf, 0.01); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	if _, err := Decode(good, 0); err == nil {
		t.Fatal("expected error for zero resolution at decode")
	}
}

func TestCompactness(t *testing.T) {
	// Clustered small attrs and modest values: the frame should be far
	// smaller than a naive 12-bytes-per-pair encoding.
	attrs := make([]int, 20)
	vals := make([]float64, 20)
	for i := range attrs {
		attrs[i] = i + 5
		vals[i] = 20 + float64(i)/10
	}
	buf, err := Encode(Frame{Step: 1000, Attrs: attrs, Values: vals}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 20*6 {
		t.Fatalf("frame is %d bytes for 20 pairs — encoding not compact", len(buf))
	}
}

// Property: round trip preserves step, kind, sorted attrs, and values to
// within half a quantum.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30)
		perm := r.Perm(200)
		attrs := perm[:n]
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = (r.Float64() - 0.5) * 200
		}
		res := []float64{0.001, 0.01, 0.5}[r.Intn(3)]
		frame := Frame{Step: uint64(r.Intn(1 << 30)), Attrs: attrs, Values: vals}
		buf, err := Encode(frame, res)
		if err != nil {
			return false
		}
		got, err := Decode(buf, res)
		if err != nil {
			return false
		}
		if got.Step != frame.Step || len(got.Attrs) != n {
			return false
		}
		// Build expected map.
		want := map[int]float64{}
		for i, a := range attrs {
			want[a] = vals[i]
		}
		prev := -1
		for i, a := range got.Attrs {
			if a <= prev {
				return false // not strictly ascending
			}
			prev = a
			if math.Abs(got.Values[i]-want[a]) > res/2+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
