package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSessionRoundTrip(t *testing.T) {
	hello := Hello{Version: SessionVersion, Tenant: "garden-a", Spec: []byte{1, 2, 3, 4}}
	buf, err := EncodeHello(hello)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSession(buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hello == nil || s.Kind() != KindHello {
		t.Fatalf("decoded %+v, want hello", s)
	}
	if s.Hello.Version != hello.Version || s.Hello.Tenant != hello.Tenant || !bytes.Equal(s.Hello.Spec, hello.Spec) {
		t.Fatalf("hello round trip: %+v vs %+v", *s.Hello, hello)
	}

	acc := Accept{Version: SessionVersion, Tenant: "t7"}
	buf, err = EncodeAccept(acc)
	if err != nil {
		t.Fatal(err)
	}
	s, err = DecodeSession(buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Accept == nil || *s.Accept != acc {
		t.Fatalf("accept round trip: %+v vs %+v", s, acc)
	}

	rej := Reject{Version: SessionVersion, Code: RejectSpecMismatch, Reason: "pinned to garden, offered lab"}
	buf, err = EncodeReject(rej)
	if err != nil {
		t.Fatal(err)
	}
	s, err = DecodeSession(buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Reject == nil || *s.Reject != rej {
		t.Fatalf("reject round trip: %+v vs %+v", s, rej)
	}
}

// TestSessionGoldenBytes pins the session frame encoding: changing it
// silently would strand every deployed source against a new sink.
func TestSessionGoldenBytes(t *testing.T) {
	buf, err := EncodeHello(Hello{Version: 1, Tenant: "ab", Spec: []byte{0xAA, 0xBB}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0xC5,     // session magic
		0x00,     // kind = hello
		0x01,     // version 1
		0x02,     // tenant length
		'a', 'b', // tenant
		0x02,       // spec length
		0xAA, 0xBB, // spec
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("hello format changed:\n got  %#v\n want %#v", buf, want)
	}

	buf, err = EncodeReject(Reject{Version: 1, Code: RejectVersion, Reason: "no"})
	if err != nil {
		t.Fatal(err)
	}
	want = []byte{0xC5, 0x02, 0x01, 0x01, 0x02, 'n', 'o'}
	if !bytes.Equal(buf, want) {
		t.Fatalf("reject format changed:\n got  %#v\n want %#v", buf, want)
	}
}

// TestDecodeSessionStalePeer: a peer that opens with a pre-session report
// frame must surface as a version mismatch naming v0 — operators need to
// tell a stale binary from corruption.
func TestDecodeSessionStalePeer(t *testing.T) {
	frame, err := Encode(Frame{Step: 1, Attrs: []int{0}, Values: []float64{1}}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeSession(frame)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale peer surfaced as %v, want ErrVersionMismatch", err)
	}
	if !strings.Contains(err.Error(), "v0") || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("error %q does not name the stale peer", err)
	}
}

func TestDecodeSessionCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"short":          {SessionMagic},
		"bad magic":      {0x00, 0x00, 0x01},
		"unknown kind":   {SessionMagic, 0x09, 0x01},
		"tenant too big": {SessionMagic, 0x00, 0x01, 0xFF, 0x7F},
		"truncated spec": {SessionMagic, 0x00, 0x01, 0x00, 0x05, 0x01},
		"trailing":       {SessionMagic, 0x01, 0x01, 0x00, 0xEE},
		"zero code":      {SessionMagic, 0x02, 0x01, 0x00, 0x00},
	}
	for name, buf := range cases {
		if _, err := DecodeSession(buf); err == nil {
			t.Errorf("%s: decoded garbage %#v", name, buf)
		} else if errors.Is(err, ErrVersionMismatch) {
			t.Errorf("%s: corrupt frame misreported as version mismatch: %v", name, err)
		}
	}
}

// TestRejectErrTyping: reject codes map onto the two typed errors so
// clients can branch with errors.Is.
func TestRejectErrTyping(t *testing.T) {
	err := Reject{Code: RejectVersion, Reason: "sink v1, source v9"}.Err()
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version reject: %v", err)
	}
	if errors.Is(err, ErrSpecRejected) {
		t.Fatalf("version reject must not also be a spec rejection: %v", err)
	}
	for _, code := range []RejectCode{RejectBadSpec, RejectSpecMismatch, RejectOverloaded, RejectDuplicateTenant, RejectSlowTenant} {
		err := Reject{Code: code, Reason: "r"}.Err()
		if !errors.Is(err, ErrSpecRejected) {
			t.Fatalf("%v reject: %v", code, err)
		}
		if !strings.Contains(err.Error(), code.String()) {
			t.Fatalf("%v reject does not name its code: %v", code, err)
		}
	}
}

func TestSessionEncodeLimits(t *testing.T) {
	if _, err := EncodeHello(Hello{Tenant: strings.Repeat("x", maxTenantLen+1)}); err == nil {
		t.Fatal("oversized tenant encoded")
	}
	if _, err := EncodeHello(Hello{Spec: make([]byte, maxSpecLen+1)}); err == nil {
		t.Fatal("oversized spec encoded")
	}
	// Oversized reasons are truncated, not failed: the reject path must
	// always be sendable.
	buf, err := EncodeReject(Reject{Code: RejectBadSpec, Reason: strings.Repeat("r", maxReasonLen+100)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSession(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Reject.Reason) != maxReasonLen {
		t.Fatalf("reason length %d, want truncation to %d", len(s.Reject.Reason), maxReasonLen)
	}
}
