package slo

import (
	"testing"

	"ken/internal/alloctest"
)

// TestAllocBudgetFeedPublish pins Feed.Publish — the only slo entry point
// on the frame-apply hot path — at zero heap allocations, on both the
// buffered and the full-ring (drop) paths.
func TestAllocBudgetFeedPublish(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	f := NewFeed(64)
	ev := Event{Tenant: "t0", Kind: KindApply, Step: 1, Values: 3}

	var scratch []Event
	if got := testing.AllocsPerRun(100, func() {
		f.Publish(ev)
		scratch = f.DrainInto(scratch[:0])
	}); got != 0 {
		t.Errorf("buffered Publish: %v allocs/op, budget 0", got)
	}

	for i := 0; i < 64; i++ {
		f.Publish(ev) // fill the ring
	}
	if got := testing.AllocsPerRun(100, func() {
		f.Publish(ev)
	}); got != 0 {
		t.Errorf("full-ring Publish (drop path): %v allocs/op, budget 0", got)
	}
	if st := f.Stats(); st.Dropped < 100 {
		t.Fatalf("dropped=%d, want >=100 — drop path not exercised", st.Dropped)
	}
}
