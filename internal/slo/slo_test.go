package slo

import (
	"testing"
	"time"

	"ken/internal/obs"
)

// fixedClock is the injectable test clock.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time          { return c.t }
func (c *fixedClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testMonitor builds a monitor on a deterministic clock, not started —
// tests drive Sync directly.
func testMonitor(t *testing.T, cfg Config) (*Monitor, *fixedClock) {
	t.Helper()
	clk := &fixedClock{t: time.Unix(1_700_000_000, 0)}
	cfg.now = clk.now
	if cfg.Obs == nil {
		cfg.Obs = &obs.Observer{Reg: obs.NewRegistry()}
	}
	return NewMonitor(cfg), clk
}

func TestFeedRingOrderAndDrop(t *testing.T) {
	f := NewFeed(3)
	for i := 0; i < 5; i++ {
		f.Publish(Event{Tenant: "t0", Kind: KindApply, Step: uint64(i)})
	}
	got := f.DrainInto(nil)
	if len(got) != 3 {
		t.Fatalf("drained %d events, want 3 (ring capacity)", len(got))
	}
	for i, ev := range got {
		if ev.Step != uint64(i) {
			t.Errorf("event %d has step %d, want %d (publish order, newest dropped)", i, ev.Step, i)
		}
	}
	if st := f.Stats(); st.Published != 3 || st.Dropped != 2 {
		t.Errorf("stats=%+v, want published 3 dropped 2", st)
	}
	if again := f.DrainInto(nil); len(again) != 0 {
		t.Errorf("second drain returned %d events, want 0", len(again))
	}
}

func TestFeedNilSafe(t *testing.T) {
	var f *Feed
	f.Publish(Event{Tenant: "x"})
	if got := f.DrainInto(nil); len(got) != 0 {
		t.Errorf("nil feed drained %d events", len(got))
	}
	if st := f.Stats(); st != (FeedStats{}) {
		t.Errorf("nil feed stats=%+v, want zero", st)
	}
}

// publishApply publishes one applied frame with the given queue latency,
// stamped at the clock's current time.
func publishApply(m *Monitor, clk *fixedClock, tenant string, step uint64, values, deviations int, latency time.Duration, heartbeat bool, maxDev float64) {
	applied := clk.t.UnixNano()
	m.Feed().Publish(Event{
		Tenant:        tenant,
		Kind:          KindApply,
		Step:          step,
		Values:        values,
		Heartbeat:     heartbeat,
		Deviations:    deviations,
		MaxDevEps:     maxDev,
		EnqueuedNanos: applied - int64(latency),
		AppliedNanos:  applied,
		QueueDepth:    1,
	})
}

func TestMonitorWindowAccounting(t *testing.T) {
	m, clk := testMonitor(t, Config{LatencyBudget: 100 * time.Millisecond, QueueCap: 8})
	m.Track("t0")

	// Three frames: a fast deviation (no violation), a slow deviation
	// (violation), and a clean heartbeat.
	publishApply(m, clk, "t0", 1, 4, 1, time.Millisecond, false, 1.2)
	clk.advance(time.Second)
	publishApply(m, clk, "t0", 2, 4, 2, 250*time.Millisecond, false, 2.0)
	clk.advance(time.Second)
	publishApply(m, clk, "t0", 3, 8, 0, time.Millisecond, true, 0.4)

	st, ok := m.Status("t0")
	if !ok {
		t.Fatal("tenant t0 unknown to monitor")
	}
	w := st.Window
	if w.Frames != 3 || w.Values != 16 || w.Heartbeats != 1 {
		t.Errorf("frames=%d values=%d heartbeats=%d, want 3/16/1", w.Frames, w.Values, w.Heartbeats)
	}
	if w.Deviations != 3 || w.Violations != 2 {
		t.Errorf("deviations=%d violations=%d, want 3 and 2 (only the slow frame's)", w.Deviations, w.Violations)
	}
	if w.ViolationRate != 2.0/16.0 {
		t.Errorf("violation rate=%v, want %v", w.ViolationRate, 2.0/16.0)
	}
	if w.MaxDevEps != 2.0 || w.HeartbeatMaxDevEps != 0.4 {
		t.Errorf("maxDev=%v hbMaxDev=%v, want 2.0 and 0.4", w.MaxDevEps, w.HeartbeatMaxDevEps)
	}
	if w.DivergenceSuspected {
		t.Error("divergence suspected at 0.4 ε on heartbeats")
	}
	if w.LastStep != 3 || w.TotalFrames != 3 || w.QueueDepth != 1 || w.QueueCap != 8 {
		t.Errorf("lastStep=%d totalFrames=%d queue=%d/%d, want 3, 3, 1/8", w.LastStep, w.TotalFrames, w.QueueDepth, w.QueueCap)
	}
	if w.LatencyP95 < 0.2 || w.LatencyP50 > 0.01 {
		t.Errorf("latency p50=%v p95=%v, want p50 ~1ms and p95 ~250ms", w.LatencyP50, w.LatencyP95)
	}
}

func TestMonitorWindowRotation(t *testing.T) {
	m, clk := testMonitor(t, Config{Window: 60 * time.Second})
	m.Track("t0")
	publishApply(m, clk, "t0", 1, 2, 0, time.Millisecond, false, 0)
	clk.advance(90 * time.Second)
	publishApply(m, clk, "t0", 2, 2, 0, time.Millisecond, false, 0)

	st, _ := m.Status("t0")
	if st.Window.Frames != 1 {
		t.Errorf("window frames=%d, want 1 — the 90s-old frame must have rotated out", st.Window.Frames)
	}
	if st.Window.TotalFrames != 2 {
		t.Errorf("total frames=%d, want 2 — lifetime tally must survive rotation", st.Window.TotalFrames)
	}
}

func TestMonitorHealthTransitions(t *testing.T) {
	m, clk := testMonitor(t, Config{
		StaleAfter:       10 * time.Second,
		LatencyBudget:    100 * time.Millisecond,
		MaxViolationRate: 0.01,
		QueueCap:         10,
	})

	// Fresh tenant: tracked moments ago, nothing applied — still ok.
	m.Track("t0")
	if st, _ := m.Status("t0"); st.Health != HealthOK || st.Unhealthy {
		t.Errorf("fresh tenant: %+v, want ok", st)
	}

	// Healthy streaming.
	publishApply(m, clk, "t0", 1, 100, 0, time.Millisecond, false, 0)
	if st, _ := m.Status("t0"); st.Health != HealthOK {
		t.Errorf("healthy tenant: health=%s, want ok", st.Health)
	}

	// Violation rate above 1% degrades.
	publishApply(m, clk, "t0", 2, 10, 5, time.Second, false, 4.0)
	st, _ := m.Status("t0")
	if st.Health != HealthDegraded || !st.Unhealthy {
		t.Errorf("violating tenant: %+v, want degraded", st)
	}
	if !hasReason(st, ReasonViolationRate) {
		t.Errorf("reasons=%v, want %s", st.Reasons, ReasonViolationRate)
	}

	// Heartbeat deviation past the sentinel threshold — a gross
	// lock-step break, orders of magnitude beyond healthy drift.
	publishApply(m, clk, "t0", 3, 10, 0, time.Millisecond, true, 40)
	if st, _ = m.Status("t0"); !hasReason(st, ReasonDivergence) {
		t.Errorf("reasons=%v, want %s", st.Reasons, ReasonDivergence)
	}

	// Queue near the budget.
	applied := clk.t.UnixNano()
	m.Feed().Publish(Event{Tenant: "t0", Kind: KindApply, Step: 4, Values: 1,
		EnqueuedNanos: applied, AppliedNanos: applied, QueueDepth: 9})
	if st, _ = m.Status("t0"); !hasReason(st, ReasonQueuePressure) {
		t.Errorf("reasons=%v, want %s", st.Reasons, ReasonQueuePressure)
	}

	// Silence past StaleAfter goes stale (stale outranks degraded).
	clk.advance(11 * time.Second)
	if st, _ = m.Status("t0"); st.Health != HealthStale || !hasReason(st, ReasonStale) {
		t.Errorf("silent tenant: %+v, want stale", st)
	}

	// Lifecycle states override everything.
	m.NoteLifecycle("t0", LifeShed)
	if st, _ = m.Status("t0"); st.Health != HealthShedding || !st.Unhealthy || !hasReason(st, ReasonShed) {
		t.Errorf("shed tenant: %+v, want shedding/unhealthy", st)
	}
	m.NoteLifecycle("t0", LifeFailed)
	if st, _ = m.Status("t0"); st.Health != HealthTerminal || !st.Unhealthy || !hasReason(st, ReasonFailed) {
		t.Errorf("failed tenant: %+v, want terminal/unhealthy", st)
	}
	m.NoteLifecycle("t0", LifeClosed)
	if st, _ = m.Status("t0"); st.Health != HealthTerminal || st.Unhealthy || !hasReason(st, ReasonClosed) {
		t.Errorf("closed tenant: %+v, want terminal and healthy (clean close is benign)", st)
	}
}

func hasReason(st TenantStatus, want string) bool {
	for _, r := range st.Reasons {
		if r == want {
			return true
		}
	}
	return false
}

func TestMonitorShedEventsCount(t *testing.T) {
	m, clk := testMonitor(t, Config{})
	m.Feed().Publish(Event{Tenant: "t0", Kind: KindShed, AppliedNanos: clk.t.UnixNano()})
	m.Feed().Publish(Event{Tenant: "t0", Kind: KindShed, AppliedNanos: clk.t.UnixNano()})
	st, ok := m.Status("t0")
	if !ok {
		t.Fatal("shed events must create the tenant")
	}
	if st.Window.Sheds != 2 || st.Window.TotalSheds != 2 {
		t.Errorf("sheds=%d total=%d, want 2/2", st.Window.Sheds, st.Window.TotalSheds)
	}
}

func TestMonitorStatusAllSortedAndUnknown(t *testing.T) {
	m, clk := testMonitor(t, Config{})
	for _, name := range []string{"t2", "t0", "t1"} {
		publishApply(m, clk, name, 1, 1, 0, time.Millisecond, false, 0)
	}
	all := m.StatusAll()
	if len(all) != 3 {
		t.Fatalf("%d statuses, want 3", len(all))
	}
	for i, want := range []string{"t0", "t1", "t2"} {
		if all[i].Tenant != want {
			t.Errorf("status %d is %q, want %q (sorted)", i, all[i].Tenant, want)
		}
	}
	if _, ok := m.Status("nope"); ok {
		t.Error("unknown tenant reported a status")
	}
}

func TestMonitorMetricsMirror(t *testing.T) {
	reg := obs.NewRegistry()
	m, clk := testMonitor(t, Config{Obs: &obs.Observer{Reg: reg}, FeedCapacity: 2, LatencyBudget: 100 * time.Millisecond})
	publishApply(m, clk, "t0", 1, 4, 2, time.Second, false, 2.0)
	publishApply(m, clk, "t0", 2, 4, 1, time.Millisecond, false, 1.1)
	publishApply(m, clk, "t0", 3, 4, 0, time.Millisecond, false, 0) // dropped: ring is full
	m.Sync()

	s := reg.Snapshot()
	if s.Counters["slo_events_total"] != 2 {
		t.Errorf("slo_events_total=%d, want 2", s.Counters["slo_events_total"])
	}
	if s.Counters["slo_feed_dropped_total"] != 1 {
		t.Errorf("slo_feed_dropped_total=%d, want 1", s.Counters["slo_feed_dropped_total"])
	}
	if s.Counters["slo_eps_deviations_total"] != 3 || s.Counters["slo_eps_violations_total"] != 2 {
		t.Errorf("deviations=%d violations=%d, want 3/2",
			s.Counters["slo_eps_deviations_total"], s.Counters["slo_eps_violations_total"])
	}
	if s.Histograms["slo_apply_latency_seconds"].Count != 2 {
		t.Errorf("latency histogram count=%d, want 2", s.Histograms["slo_apply_latency_seconds"].Count)
	}
	if s.Help["slo_events_total"] == "" {
		t.Error("slo_events_total has no help string")
	}
}

// TestMonitorStartCloseJoins proves the drain goroutine lifecycle: Start
// twice is idempotent, Close joins and takes a final drain so nothing
// published before Close is lost.
func TestMonitorStartCloseJoins(t *testing.T) {
	m, clk := testMonitor(t, Config{SyncEvery: time.Hour}) // ticker never fires
	m.Start()
	m.Start()
	publishApply(m, clk, "t0", 1, 1, 0, time.Millisecond, false, 0)
	m.Close()
	m.mu.Lock()
	frames := m.tenants["t0"].totalFrames
	m.mu.Unlock()
	if frames != 1 {
		t.Errorf("totalFrames=%d after Close, want 1 (final drain)", frames)
	}
	m.Close() // idempotent
}

func TestNilMonitorIsInert(t *testing.T) {
	var m *Monitor
	m.Track("x")
	m.NoteLifecycle("x", LifeShed)
	m.Start()
	m.Sync()
	m.Close()
	if m.Feed() != nil {
		t.Error("nil monitor returned a feed")
	}
	if _, ok := m.Status("x"); ok {
		t.Error("nil monitor reported a status")
	}
	if all := m.StatusAll(); all != nil {
		t.Errorf("nil monitor StatusAll=%v, want nil", all)
	}
	if st := m.FeedStats(); st != (FeedStats{}) {
		t.Errorf("nil monitor FeedStats=%+v, want zero", st)
	}
}
