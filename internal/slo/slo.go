// Package slo is kensinkd's live SLO monitor: the in-process half of the
// audit machinery, attached to running tenants instead of a finished
// trace. The daemon's applier loops publish one fixed-size Event per
// applied frame (and per shed) into a bounded, preallocated Feed — the
// hot path never allocates and never blocks; when the ring is full the
// event is counted as dropped instead of queued. A Monitor drains the
// feed on its own joined goroutine and maintains per-tenant
// rolling-window state: ε-deviation and ε-violation rates measured from
// the replica's pre-apply predictions, a staleness watermark, an
// ingest→apply latency window, queue depth and shed counts, and a
// replica-divergence sentinel fed by heartbeat frames.
//
// # What "ε violation" means live
//
// Offline (kenaudit) the ε bound is checked against ground truth. A live
// sink has no truth except what is reported, so the monitor measures the
// operational form of the guarantee: when a frame carries a value whose
// pre-apply prediction missed its ε (an ε deviation — the normal reason a
// report exists), the answers served while that frame sat in the tenant's
// queue were out of contract. A deviation is therefore escalated to a
// counted violation only when the frame's ingest→apply latency exceeded
// the configured latency budget: the daemon served a knowably-stale
// answer for longer than the budget allows. On a healthy daemon latency
// is microseconds and the violation rate is zero even while deviations
// tick along at the tenant's natural report rate.
//
// # The divergence sentinel
//
// Heartbeat frames carry every attribute, so they are the one moment the
// sink can compare its full model state against ground truth. The
// comparison is weaker than it looks: heartbeat steps skip suppression,
// so a heartbeat deviation of a few ε is ordinary one-step model error
// (the value would have been reported in a normal step), and heartbeats
// re-condition on every value, healing state drift each round — healthy
// lock-step runs show heartbeat deviations up to ~7×ε. What a heartbeat
// CAN expose live is a gross lock-step break — corrupt values, wrong
// units, a replica fed the wrong stream — which lands orders of
// magnitude past ε. The sentinel flags `divergence-suspected` when a
// windowed heartbeat deviation exceeds DivergenceDevEps multiples of ε
// (default 25): a heuristic for the gross class only; subtle divergence
// is kenaudit's offline silent-divergence invariant.
package slo

import (
	"sync"
)

// Kind tags a feed event.
type Kind uint8

const (
	// KindApply: one frame was folded into the tenant's replica.
	KindApply Kind = iota + 1
	// KindShed: the tenant overflowed its frame budget and was shed.
	KindShed
)

// Event is one fixed-size feed record. Events are published by value and
// buffered in a preallocated ring, so the applier hot path stays
// allocation-free (TestAllocBudgetFeedPublish pins it).
type Event struct {
	// Tenant names the session the event belongs to.
	Tenant string
	// Kind is the event type.
	Kind Kind
	// Step is the frame's protocol step.
	Step uint64
	// Values counts the reported values the frame carried.
	Values int
	// Heartbeat marks a full-value heartbeat frame.
	Heartbeat bool
	// Deviations counts reported values whose pre-apply prediction
	// missed its ε (stream.ApplyStats.Deviations).
	Deviations int
	// MaxDevEps is the largest |prediction − value| / ε seen in the frame.
	MaxDevEps float64
	// EnqueuedNanos/AppliedNanos are UnixNano stamps taken when the
	// reader queued the frame and when the applier finished folding it
	// in; their difference is the ingest→apply latency.
	EnqueuedNanos int64
	AppliedNanos  int64
	// QueueDepth is the tenant's queue occupancy after the apply.
	QueueDepth int
}

// Feed is the bounded in-process event tap between the daemon's applier
// loops and the Monitor. Publish is allocation-free and non-blocking:
// when the ring is full the event is dropped and counted, never queued —
// backpressure from a slow monitor must not reach the apply hot path.
type Feed struct {
	mu        sync.Mutex
	buf       []Event
	start     int // index of the oldest buffered event
	n         int // buffered count
	published int64
	dropped   int64
}

// DefaultFeedCapacity bounds the ring when the config does not.
const DefaultFeedCapacity = 4096

// NewFeed preallocates a ring of the given capacity (DefaultFeedCapacity
// when non-positive).
func NewFeed(capacity int) *Feed {
	if capacity <= 0 {
		capacity = DefaultFeedCapacity
	}
	return &Feed{buf: make([]Event, capacity)}
}

// Publish appends ev to the ring, or counts it as dropped when the ring
// is full. Nil-safe, allocation-free, non-blocking — callable from a
// //ken:hotpath applier loop.
func (f *Feed) Publish(ev Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n == len(f.buf) {
		f.dropped++
		return
	}
	pos := f.start + f.n
	if pos >= len(f.buf) {
		pos -= len(f.buf)
	}
	f.buf[pos] = ev
	f.n++
	f.published++
}

// DrainInto appends every buffered event to dst in publish order and
// empties the ring. The returned slice replaces dst for the next call.
func (f *Feed) DrainInto(dst []Event) []Event {
	if f == nil {
		return dst
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.n > 0 {
		dst = append(dst, f.buf[f.start])
		f.start++
		if f.start == len(f.buf) {
			f.start = 0
		}
		f.n--
	}
	return dst
}

// FeedStats is the feed's lifetime accounting. Dropped counts events the
// full ring refused — a nonzero, growing value means the monitor is not
// keeping up and the SLO windows undercount.
type FeedStats struct {
	Published int64 `json:"published"`
	Dropped   int64 `json:"dropped"`
}

// Stats snapshots the lifetime publish/drop counters.
func (f *Feed) Stats() FeedStats {
	if f == nil {
		return FeedStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return FeedStats{Published: f.published, Dropped: f.dropped}
}
