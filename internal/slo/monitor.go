package slo

import (
	"sort"
	"sync"
	"time"

	"ken/internal/obs"
)

// Lifecycle is the daemon-side tenant lifecycle folded into health
// evaluation. The monitor learns it from the daemon (which owns the
// session state machine) rather than inferring it from events.
type Lifecycle uint8

const (
	// LifeActive: the session is building or streaming.
	LifeActive Lifecycle = iota
	// LifeClosed: the source finished cleanly. Benign.
	LifeClosed
	// LifeShed: the tenant overran its frame budget and was disconnected.
	LifeShed
	// LifeFailed: the stream died on a decode or apply error.
	LifeFailed
)

// Health is a tenant's operator-facing health state.
type Health string

const (
	// HealthOK: streaming within every SLO.
	HealthOK Health = "ok"
	// HealthDegraded: streaming, but an SLO is out of bounds (see the
	// status reasons).
	HealthDegraded Health = "degraded"
	// HealthStale: no frame applied for longer than the staleness
	// threshold while the session is nominally live — the spec's
	// heartbeat interval guarantees a frame cadence, so silence this
	// long means the served answers can no longer be trusted to track
	// the source.
	HealthStale Health = "stale"
	// HealthShedding: the tenant was shed; its replica is frozen and
	// queryable but no longer within the ε contract.
	HealthShedding Health = "shedding"
	// HealthTerminal: the session ended (cleanly or on error); see the
	// reasons for which.
	HealthTerminal Health = "terminal"
)

// Health-state reasons, machine-readable (stable strings).
const (
	ReasonViolationRate = "eps-violation-rate"
	ReasonDivergence    = "divergence-suspected"
	ReasonQueuePressure = "queue-pressure"
	ReasonStale         = "stale"
	ReasonShed          = "shed"
	ReasonFailed        = "failed"
	ReasonClosed        = "closed"
)

// Config sizes and polices the monitor.
type Config struct {
	// Window is the rolling SLO window width (default 60s).
	Window time.Duration
	// StaleAfter marks an active tenant stale when no frame has applied
	// for this long (default 10s).
	StaleAfter time.Duration
	// LatencyBudget is the ingest→apply latency above which an ε
	// deviation counts as a served violation (default 100ms).
	LatencyBudget time.Duration
	// MaxViolationRate is the windowed violations-per-reported-value
	// rate above which a tenant degrades (default 0.01).
	MaxViolationRate float64
	// DivergenceDevEps is the heartbeat deviation (in multiples of ε)
	// that trips the replica-divergence sentinel (default 25). The
	// default is calibrated for gross lock-step breaks only — corrupt
	// values, wrong units, a replica conditioned on the wrong stream —
	// which land orders of magnitude past ε. Healthy lock-step runs
	// show heartbeat deviations up to ~7×ε (measured on garden across
	// seeds), and even a replica built from the wrong model stays in
	// that band because heartbeats keep resyncing its state; subtle
	// divergence is indistinguishable live and belongs to the offline
	// auditor (kenaudit).
	DivergenceDevEps float64
	// QueuePressure degrades a tenant whose queue depth exceeds this
	// fraction of QueueCap (default 0.8; disabled when QueueCap is 0).
	QueuePressure float64
	// QueueCap is the tenant frame budget (for pressure and reporting).
	QueueCap int
	// FeedCapacity bounds the event ring (default DefaultFeedCapacity).
	FeedCapacity int
	// SyncEvery is the drain goroutine's poll interval (default 250ms).
	SyncEvery time.Duration
	// Obs receives the slo_* metric mirror.
	Obs *obs.Observer

	// now is the test clock (default time.Now).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 10 * time.Second
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = 100 * time.Millisecond
	}
	if c.MaxViolationRate <= 0 {
		c.MaxViolationRate = 0.01
	}
	if c.DivergenceDevEps <= 0 {
		c.DivergenceDevEps = 25
	}
	if c.QueuePressure <= 0 {
		c.QueuePressure = 0.8
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 250 * time.Millisecond
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// numBuckets fixes the rolling window's resolution: the window is split
// into 60 slots rotated in place, so memory per tenant is constant.
const numBuckets = 60

// latCap bounds the per-tenant latency reservoir (most recent samples).
const latCap = 256

// bucket accumulates one window slot.
type bucket struct {
	slot       int64 // bucket ordinal since the epoch; 0 = unused
	frames     int64
	values     int64
	heartbeats int64
	deviations int64
	violations int64
	sheds      int64
	maxDev     float64 // max |pred−value|/ε in the slot
	hbMaxDev   float64 // same, heartbeat frames only
}

// tenantState is the monitor's per-tenant bookkeeping.
type tenantState struct {
	life        Lifecycle
	firstSeen   time.Time
	lastApplied time.Time // zero until the first apply
	lastStep    uint64
	queueDepth  int

	totalFrames     int64
	totalViolations int64
	totalSheds      int64

	buckets [numBuckets]bucket
	lat     [latCap]float64 // seconds; ring of the latest latencies
	latN    int64           // total latency samples ever
}

// WindowStats is the windowed view of one tenant's SLOs — the payload of
// GET /v1/slo and of each /v1/health tenant entry.
type WindowStats struct {
	// Seconds is the window width the numbers below cover.
	Seconds float64 `json:"seconds"`
	// Frames/Values/Heartbeats applied inside the window.
	Frames     int64 `json:"frames"`
	Values     int64 `json:"values"`
	Heartbeats int64 `json:"heartbeats"`
	// Deviations counts reported values whose pre-apply prediction
	// missed ε; DeviationRate is per reported value.
	Deviations    int64   `json:"deviations"`
	DeviationRate float64 `json:"deviation_rate"`
	// Violations counts deviations served beyond the latency budget;
	// ViolationRate is per reported value — the live ε-violation rate.
	Violations    int64   `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`
	// MaxDevEps is the worst |prediction − value| / ε in the window.
	MaxDevEps float64 `json:"max_dev_eps"`
	// HeartbeatMaxDevEps is the same over heartbeat frames only — the
	// divergence sentinel's input.
	HeartbeatMaxDevEps  float64 `json:"heartbeat_max_dev_eps"`
	DivergenceSuspected bool    `json:"divergence_suspected"`
	// StalenessSeconds is the time since the last applied frame (since
	// first tracking, when nothing has applied yet).
	StalenessSeconds float64 `json:"staleness_seconds"`
	// Ingest→apply latency quantiles over the recent-sample reservoir.
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP95 float64 `json:"latency_p95_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`
	// QueueDepth/QueueCap: last observed queue occupancy vs the budget.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Sheds inside the window (and the tenant lifetime total).
	Sheds      int64 `json:"sheds"`
	TotalSheds int64 `json:"total_sheds"`
	// LastStep is the step of the newest applied frame; TotalFrames and
	// TotalViolations are lifetime tallies.
	LastStep        uint64 `json:"last_step"`
	TotalFrames     int64  `json:"total_frames"`
	TotalViolations int64  `json:"total_violations"`
}

// TenantStatus is one tenant's evaluated health.
type TenantStatus struct {
	Tenant string `json:"tenant"`
	Health Health `json:"health"`
	// Unhealthy is the daemon-aggregation verdict: true for degraded,
	// stale, shedding and failed-terminal tenants; false for ok and for
	// a clean close.
	Unhealthy bool `json:"unhealthy"`
	// Reasons are machine-readable (the Reason* constants).
	Reasons []string    `json:"reasons,omitempty"`
	Window  WindowStats `json:"window"`
}

// Monitor consumes the feed and serves windowed per-tenant SLO state.
type Monitor struct {
	cfg  Config
	feed *Feed

	mu      sync.Mutex
	tenants map[string]*tenantState
	scratch []Event
	stop    chan struct{}
	started bool
	wg      sync.WaitGroup

	lastDropped int64

	mEvents     *obs.Counter   // slo_events_total
	mDropped    *obs.Counter   // slo_feed_dropped_total
	mDeviations *obs.Counter   // slo_eps_deviations_total
	mViolations *obs.Counter   // slo_eps_violations_total
	mSheds      *obs.Counter   // slo_sheds_total
	hLatency    *obs.Histogram // slo_apply_latency_seconds
	gTracked    *obs.Gauge     // slo_tenants_tracked
	gUnhealthy  *obs.Gauge     // slo_tenants_unhealthy
}

// NewMonitor assembles a monitor and its feed. Start launches the drain
// goroutine; Sync drains inline (the HTTP handlers do, so health answers
// never lag the feed by more than the handler's own latency).
func NewMonitor(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	reg := cfg.Obs.Registry()
	reg.Describe("slo_events_total", "SLO feed events consumed by the live monitor")
	reg.Describe("slo_feed_dropped_total", "SLO feed events dropped because the ring was full")
	reg.Describe("slo_eps_deviations_total", "reported values whose pre-apply prediction missed epsilon")
	reg.Describe("slo_eps_violations_total", "epsilon deviations served beyond the latency budget")
	reg.Describe("slo_sheds_total", "tenant sheds observed by the live monitor")
	reg.Describe("slo_apply_latency_seconds", "ingest-to-apply latency of tenant frames")
	reg.Describe("slo_tenants_tracked", "tenants tracked by the live monitor")
	reg.Describe("slo_tenants_unhealthy", "tenants currently degraded, stale, shedding or failed")
	return &Monitor{
		cfg:         cfg,
		feed:        NewFeed(cfg.FeedCapacity),
		tenants:     map[string]*tenantState{},
		mEvents:     reg.Counter("slo_events_total"),
		mDropped:    reg.Counter("slo_feed_dropped_total"),
		mDeviations: reg.Counter("slo_eps_deviations_total"),
		mViolations: reg.Counter("slo_eps_violations_total"),
		mSheds:      reg.Counter("slo_sheds_total"),
		hLatency:    reg.Histogram("slo_apply_latency_seconds"),
		gTracked:    reg.Gauge("slo_tenants_tracked"),
		gUnhealthy:  reg.Gauge("slo_tenants_unhealthy"),
	}
}

// Feed returns the publish handle the applier loops write to.
func (m *Monitor) Feed() *Feed {
	if m == nil {
		return nil
	}
	return m.feed
}

// Start launches the drain goroutine. Idempotent; Close joins it.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.stop = make(chan struct{})
	m.wg.Add(1)
	go m.loop(m.stop)
}

// loop is the drain goroutine: joined by Close via the stop channel and
// the monitor WaitGroup.
func (m *Monitor) loop(stop <-chan struct{}) {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.Sync()
		}
	}
}

// Close stops and joins the drain goroutine, then drains the feed one
// final time so nothing published before Close is lost.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.mu.Lock()
	stop, started := m.stop, m.started
	m.started = false
	m.stop = nil
	m.mu.Unlock()
	if started {
		close(stop)
		m.wg.Wait()
	}
	m.Sync()
}

// Track registers a tenant with the monitor (its staleness clock starts
// now). Called by the daemon at admission, before any event can arrive.
func (m *Monitor) Track(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenant(name)
}

// NoteLifecycle records the daemon-side lifecycle of a tenant. Nil-safe
// and allocation-free for known tenants, so the daemon state machine can
// call it from any path.
func (m *Monitor) NoteLifecycle(name string, life Lifecycle) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenant(name).life = life
}

// tenant returns (creating on first use) the named state. Caller holds mu.
func (m *Monitor) tenant(name string) *tenantState {
	ts, ok := m.tenants[name]
	if !ok {
		ts = &tenantState{firstSeen: m.cfg.now()}
		m.tenants[name] = ts
		m.gTracked.Set(float64(len(m.tenants)))
	}
	return ts
}

// Sync drains the feed into the window state and refreshes the slo_*
// metric mirror. Called by the drain goroutine, by the HTTP handlers
// before answering, and by tests for determinism.
func (m *Monitor) Sync() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.scratch = m.feed.DrainInto(m.scratch[:0])
	for i := range m.scratch {
		m.apply(&m.scratch[i])
	}
	st := m.feed.Stats()
	if d := st.Dropped - m.lastDropped; d > 0 {
		m.mDropped.Add(d)
		m.lastDropped = st.Dropped
	}
	unhealthy := 0
	for name, ts := range m.tenants {
		//lint:ignore maprange only the order-independent unhealthy count is accumulated
		if m.statusLocked(name, ts).Unhealthy {
			unhealthy++
		}
	}
	m.gUnhealthy.Set(float64(unhealthy))
}

// apply folds one event into its tenant's window. Caller holds mu.
func (m *Monitor) apply(ev *Event) {
	ts := m.tenant(ev.Tenant)
	m.mEvents.Inc()
	at := time.Unix(0, ev.AppliedNanos)
	b := m.bucketFor(ts, ev.AppliedNanos)
	switch ev.Kind {
	case KindShed:
		b.sheds++
		ts.totalSheds++
		m.mSheds.Inc()
	case KindApply:
		ts.lastApplied = at
		ts.lastStep = ev.Step
		ts.queueDepth = ev.QueueDepth
		ts.totalFrames++
		b.frames++
		b.values += int64(ev.Values)
		if ev.Heartbeat {
			b.heartbeats++
			if ev.MaxDevEps > b.hbMaxDev {
				b.hbMaxDev = ev.MaxDevEps
			}
		}
		if ev.MaxDevEps > b.maxDev {
			b.maxDev = ev.MaxDevEps
		}
		lat := time.Duration(ev.AppliedNanos - ev.EnqueuedNanos)
		if lat < 0 {
			lat = 0
		}
		ts.lat[ts.latN%latCap] = lat.Seconds()
		ts.latN++
		m.hLatency.Observe(lat.Seconds())
		if ev.Deviations > 0 {
			b.deviations += int64(ev.Deviations)
			m.mDeviations.Add(int64(ev.Deviations))
			if lat > m.cfg.LatencyBudget {
				b.violations += int64(ev.Deviations)
				ts.totalViolations += int64(ev.Deviations)
				m.mViolations.Add(int64(ev.Deviations))
			}
		}
	}
}

// bucketFor rotates the tenant's ring to the slot holding nanos.
func (m *Monitor) bucketFor(ts *tenantState, nanos int64) *bucket {
	width := int64(m.cfg.Window) / numBuckets
	if width <= 0 {
		width = int64(time.Second)
	}
	slot := nanos / width
	b := &ts.buckets[slot%numBuckets]
	if b.slot != slot {
		*b = bucket{slot: slot}
	}
	return b
}

// Status evaluates one tenant. The second return is false for a tenant
// the monitor has never seen.
func (m *Monitor) Status(name string) (TenantStatus, bool) {
	if m == nil {
		return TenantStatus{}, false
	}
	m.Sync()
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tenants[name]
	if !ok {
		return TenantStatus{}, false
	}
	return m.statusLocked(name, ts), true
}

// StatusAll evaluates every tracked tenant, sorted by name.
func (m *Monitor) StatusAll() []TenantStatus {
	if m == nil {
		return nil
	}
	m.Sync()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TenantStatus, 0, len(m.tenants))
	for name, ts := range m.tenants {
		//lint:ignore maprange the slice is sorted by tenant name below
		out = append(out, m.statusLocked(name, ts))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// FeedStats snapshots the feed's publish/drop accounting.
func (m *Monitor) FeedStats() FeedStats {
	if m == nil {
		return FeedStats{}
	}
	return m.feed.Stats()
}

// statusLocked computes the windowed stats and health verdict. Caller
// holds mu.
func (m *Monitor) statusLocked(name string, ts *tenantState) TenantStatus {
	now := m.cfg.now()
	w := m.windowLocked(ts, now)
	st := TenantStatus{Tenant: name, Window: w}
	switch ts.life {
	case LifeShed:
		st.Health = HealthShedding
		st.Unhealthy = true
		st.Reasons = append(st.Reasons, ReasonShed)
		return st
	case LifeFailed:
		st.Health = HealthTerminal
		st.Unhealthy = true
		st.Reasons = append(st.Reasons, ReasonFailed)
		return st
	case LifeClosed:
		st.Health = HealthTerminal
		st.Reasons = append(st.Reasons, ReasonClosed)
		return st
	}
	if w.StalenessSeconds > m.cfg.StaleAfter.Seconds() {
		st.Health = HealthStale
		st.Unhealthy = true
		st.Reasons = append(st.Reasons, ReasonStale)
		return st
	}
	if w.ViolationRate > m.cfg.MaxViolationRate {
		st.Reasons = append(st.Reasons, ReasonViolationRate)
	}
	if w.DivergenceSuspected {
		st.Reasons = append(st.Reasons, ReasonDivergence)
	}
	if m.cfg.QueueCap > 0 && float64(w.QueueDepth) > m.cfg.QueuePressure*float64(m.cfg.QueueCap) {
		st.Reasons = append(st.Reasons, ReasonQueuePressure)
	}
	if len(st.Reasons) > 0 {
		st.Health = HealthDegraded
		st.Unhealthy = true
		return st
	}
	st.Health = HealthOK
	return st
}

// windowLocked sums the live buckets. Caller holds mu.
func (m *Monitor) windowLocked(ts *tenantState, now time.Time) WindowStats {
	width := int64(m.cfg.Window) / numBuckets
	if width <= 0 {
		width = int64(time.Second)
	}
	nowSlot := now.UnixNano() / width
	minSlot := nowSlot - numBuckets + 1
	w := WindowStats{
		Seconds:         m.cfg.Window.Seconds(),
		QueueDepth:      ts.queueDepth,
		QueueCap:        m.cfg.QueueCap,
		TotalSheds:      ts.totalSheds,
		LastStep:        ts.lastStep,
		TotalFrames:     ts.totalFrames,
		TotalViolations: ts.totalViolations,
	}
	for i := range ts.buckets {
		b := &ts.buckets[i]
		if b.slot == 0 || b.slot < minSlot || b.slot > nowSlot {
			continue
		}
		w.Frames += b.frames
		w.Values += b.values
		w.Heartbeats += b.heartbeats
		w.Deviations += b.deviations
		w.Violations += b.violations
		w.Sheds += b.sheds
		if b.maxDev > w.MaxDevEps {
			w.MaxDevEps = b.maxDev
		}
		if b.hbMaxDev > w.HeartbeatMaxDevEps {
			w.HeartbeatMaxDevEps = b.hbMaxDev
		}
	}
	if w.Values > 0 {
		w.DeviationRate = float64(w.Deviations) / float64(w.Values)
		w.ViolationRate = float64(w.Violations) / float64(w.Values)
	}
	w.DivergenceSuspected = w.HeartbeatMaxDevEps >= m.cfg.DivergenceDevEps
	since := ts.lastApplied
	if since.IsZero() {
		since = ts.firstSeen
	}
	if !since.IsZero() {
		w.StalenessSeconds = now.Sub(since).Seconds()
		if w.StalenessSeconds < 0 {
			w.StalenessSeconds = 0
		}
	}
	w.LatencyP50, w.LatencyP95, w.LatencyP99 = latQuantiles(ts)
	return w
}

// latQuantiles sorts a copy of the latency reservoir and reads the
// 50th/95th/99th percentiles (zeros with no samples).
func latQuantiles(ts *tenantState) (p50, p95, p99 float64) {
	n := int(ts.latN)
	if n > latCap {
		n = latCap
	}
	if n == 0 {
		return 0, 0, 0
	}
	var tmp [latCap]float64
	copy(tmp[:n], ts.lat[:n])
	s := tmp[:n]
	sort.Float64s(s)
	pick := func(q float64) float64 {
		i := int(q*float64(n-1) + 0.5)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return s[i]
	}
	return pick(0.50), pick(0.95), pick(0.99)
}
