package cliques

import (
	"fmt"
	"hash/fnv"
	"sync"

	"ken/internal/mc"
	"ken/internal/model"
)

// MCEvaluator estimates m_C by fitting a LinearGaussian model to the
// clique's training columns and running the Monte Carlo protocol simulation
// of §4.4. Estimates are cached per clique (the partitioning algorithms
// revisit the same cliques many times, and cost sweeps over different
// topologies reuse the same m values — m depends only on the data and ε,
// never on the topology).
type MCEvaluator struct {
	train  [][]float64 // [t][attribute]
	eps    []float64
	fitCfg model.FitConfig
	mcCfg  mc.Config

	mu    sync.Mutex
	cache map[string]float64
}

var _ Evaluator = (*MCEvaluator)(nil)

// NewMCEvaluator builds an evaluator over the full training matrix
// (train[t][i] = attribute i at step t) with per-attribute error bounds.
func NewMCEvaluator(train [][]float64, eps []float64, fitCfg model.FitConfig, mcCfg mc.Config) (*MCEvaluator, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("cliques: empty training data")
	}
	n := len(train[0])
	if len(eps) != n {
		return nil, fmt.Errorf("cliques: eps dim %d, training dim %d", len(eps), n)
	}
	for i, e := range eps {
		if e <= 0 {
			return nil, fmt.Errorf("cliques: non-positive epsilon %v for attribute %d", e, i)
		}
	}
	return &MCEvaluator{
		train:  train,
		eps:    eps,
		fitCfg: fitCfg,
		mcCfg:  mcCfg,
		cache:  map[string]float64{},
	}, nil
}

// M implements Evaluator.
func (e *MCEvaluator) M(clique []int) (float64, error) {
	key := cliqueKey(clique)
	e.mu.Lock()
	if v, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return v, nil
	}
	e.mu.Unlock()

	cols, eps, err := e.project(clique)
	if err != nil {
		return 0, err
	}
	mdl, err := model.FitLinearGaussian(cols, e.fitCfg)
	if err != nil {
		return 0, fmt.Errorf("cliques: fitting clique %v: %w", clique, err)
	}
	cfg := e.mcCfg
	// Derive a per-clique seed so that estimates are deterministic yet
	// decorrelated across cliques.
	h := fnv.New64a()
	h.Write([]byte(key))
	cfg.Seed = e.mcCfg.Seed ^ int64(h.Sum64())
	m, err := mc.ExpectedReports(mdl, eps, cfg)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	e.cache[key] = m
	e.mu.Unlock()
	return m, nil
}

// project extracts the clique's columns and bounds.
func (e *MCEvaluator) project(clique []int) ([][]float64, []float64, error) {
	if len(clique) == 0 {
		return nil, nil, ErrEmptyClique
	}
	n := len(e.train[0])
	eps := make([]float64, len(clique))
	for k, i := range clique {
		if i < 0 || i >= n {
			return nil, nil, fmt.Errorf("cliques: attribute %d out of range %d", i, n)
		}
		eps[k] = e.eps[i]
	}
	cols := make([][]float64, len(e.train))
	for t, row := range e.train {
		r := make([]float64, len(clique))
		for k, i := range clique {
			r[k] = row[i]
		}
		cols[t] = r
	}
	return cols, eps, nil
}

// CacheSize returns the number of cached clique estimates (for tests and
// progress reporting).
func (e *MCEvaluator) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// FuncEvaluator adapts a plain function to the Evaluator interface —
// convenient for oracle-based tests and ablations.
type FuncEvaluator func(clique []int) (float64, error)

// M implements Evaluator.
func (f FuncEvaluator) M(clique []int) (float64, error) { return f(clique) }
