package cliques

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"ken/internal/network"
)

// maxExhaustiveN bounds the dynamic program: the subset tables are O(2^n)
// and the split enumeration O(3^n), so anything beyond this is hopeless
// ("prohibitively expensive except in simplest of sensor networks", §4.2).
const maxExhaustiveN = 20

// Exhaustive finds the optimal Disjoint-Cliques partition by the paper's
// dynamic program (Fig 5): for every attribute subset, the best solution is
// either the subset kept as a single clique or the best split into two
// complementary sub-solutions. maxCliqueSize limits the size of cliques
// considered as atoms (Exhaustive-k in Fig 11); pass top.N() (or any
// larger value) for the unrestricted optimum.
func Exhaustive(top *network.Topology, eval Evaluator, maxCliqueSize int) (*Partition, error) {
	n := top.N()
	if n > maxExhaustiveN {
		return nil, fmt.Errorf("cliques: exhaustive algorithm infeasible for n=%d (max %d)", n, maxExhaustiveN)
	}
	if maxCliqueSize < 1 {
		return nil, fmt.Errorf("cliques: max clique size %d < 1", maxCliqueSize)
	}
	size := 1 << n
	cost := make([]float64, size)
	// split[s] == 0 means subset s is kept whole as one clique; otherwise
	// it records one side of the best split.
	split := make([]int, size)
	asClique := make([]Clique, size)

	// Phase 1 — evaluate every admissible atomic clique concurrently; the
	// evaluations are independent Monte Carlo runs and dominate the cost
	// of the dynamic program.
	built := make([]bool, size)
	if err := buildAtoms(top, eval, maxCliqueSize, asClique, built); err != nil {
		return nil, err
	}

	// Phase 2 — the (sequential, cheap) subset dynamic program.
	for s := 1; s < size; s++ {
		cost[s] = math.Inf(1)
		if built[s] {
			cost[s] = asClique[s].Cost()
			split[s] = 0
		}
		// Enumerate splits s = c1 ⊎ c2 once each: force c1 to contain the
		// lowest set bit of s.
		low := s & -s
		for c1 := (s - 1) & s; c1 > 0; c1 = (c1 - 1) & s {
			if c1&low == 0 {
				continue
			}
			c2 := s &^ c1
			if c2 == 0 {
				continue
			}
			if c := cost[c1] + cost[c2]; c < cost[s] {
				cost[s] = c
				split[s] = c1
			}
		}
		if math.IsInf(cost[s], 1) {
			return nil, fmt.Errorf("cliques: no feasible cover for subset %b with max clique size %d", s, maxCliqueSize)
		}
	}

	p := &Partition{}
	if err := reconstruct(size-1, split, asClique, p); err != nil {
		return nil, err
	}
	return p, nil
}

// buildAtoms evaluates every subset of size <= maxCliqueSize as a clique,
// in parallel. Deterministic: each clique's Monte Carlo seed derives from
// its members, and results land in fixed slots.
func buildAtoms(top *network.Topology, eval Evaluator, maxCliqueSize int, asClique []Clique, built []bool) error {
	size := len(asClique)
	var masks []int
	for s := 1; s < size; s++ {
		if bits.OnesCount(uint(s)) <= maxCliqueSize {
			masks = append(masks, s)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(masks) {
		workers = len(masks)
	}
	errs := make([]error, len(masks))
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(masks) {
					return
				}
				s := masks[i]
				c, err := BuildClique(top, eval, bitsOf(s))
				if err != nil {
					errs[i] = err
					continue
				}
				asClique[s] = c
				built[s] = true
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// reconstruct walks the split table, collecting atomic cliques.
func reconstruct(s int, split []int, asClique []Clique, p *Partition) error {
	if s == 0 {
		return nil
	}
	if split[s] == 0 {
		if asClique[s].Members == nil {
			return fmt.Errorf("cliques: internal error, missing clique for subset %b", s)
		}
		p.Cliques = append(p.Cliques, asClique[s])
		return nil
	}
	if err := reconstruct(split[s], split, asClique, p); err != nil {
		return err
	}
	return reconstruct(s&^split[s], split, asClique, p)
}

// bitsOf expands a bitmask into sorted indices.
func bitsOf(mask int) []int {
	out := make([]int, 0, bits.OnesCount(uint(mask)))
	for mask != 0 {
		low := mask & -mask
		out = append(out, bits.TrailingZeros(uint(low)))
		mask &^= low
	}
	return out
}
