package cliques

import (
	"encoding/json"
	"fmt"
	"io"
)

// Partitions are planning artifacts computed once (model selection is the
// expensive NP-hard step) and reused across deployments and experiments;
// this file gives them a stable JSON form.

// partitionJSON is the wire form of a Partition.
type partitionJSON struct {
	Cliques []cliqueJSON `json:"cliques"`
}

type cliqueJSON struct {
	Members []int   `json:"members"`
	Root    int     `json:"root"`
	M       float64 `json:"m"`
	Intra   float64 `json:"intra"`
	Sink    float64 `json:"sink"`
}

// MarshalJSON implements json.Marshaler.
func (p *Partition) MarshalJSON() ([]byte, error) {
	w := partitionJSON{Cliques: make([]cliqueJSON, len(p.Cliques))}
	for i, c := range p.Cliques {
		w.Cliques[i] = cliqueJSON{
			Members: c.Members, Root: c.Root, M: c.M, Intra: c.Intra, Sink: c.Sink,
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Partition) UnmarshalJSON(data []byte) error {
	var w partitionJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("cliques: %w", err)
	}
	p.Cliques = p.Cliques[:0]
	for i, c := range w.Cliques {
		if len(c.Members) == 0 {
			return fmt.Errorf("cliques: json clique %d has no members", i)
		}
		p.Cliques = append(p.Cliques, Clique{
			Members: c.Members, Root: c.Root, M: c.M, Intra: c.Intra, Sink: c.Sink,
		})
	}
	return nil
}

// SavePartition writes the partition as JSON.
func SavePartition(w io.Writer, p *Partition) error {
	return json.NewEncoder(w).Encode(p)
}

// LoadPartition reads a partition written by SavePartition and validates
// it against the expected attribute count.
func LoadPartition(r io.Reader, n int) (*Partition, error) {
	var p Partition
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("cliques: load: %w", err)
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	return &p, nil
}
