// Package cliques implements Ken's Disjoint-Cliques model selection (§4):
// partitioning the sensor attributes into localized cliques, choosing each
// clique's inference root, and estimating the resulting communication cost.
//
// The optimal partitioning problem is NP-hard (reduction from minimum
// 3-dimensional assignment, §4.1). The package provides both the paper's
// dynamic-programming exhaustive algorithm (Fig 5) and the Greedy-k
// heuristic (Fig 6), plus the cost model they share:
//
//	intra-source(C) = Σ_{x∈C} comm(x, root)          (collect every step)
//	source-sink(C)  = m_C · comm(root, base)          (report on misses)
//	root(C)         = argmin_r intra(C, r) + m_C·comm(r, base)
//
// where m_C, the clique's expected reported values per step, comes from a
// pluggable Evaluator (Monte Carlo over a fitted model in production,
// oracles in tests).
package cliques

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ken/internal/network"
)

// Evaluator estimates the data reduction factor m_C — the expected number
// of attribute values per time step the clique reports to the sink.
// Implementations must be deterministic for a given clique: both
// partitioning algorithms and the cost accounting rely on repeatable
// estimates.
type Evaluator interface {
	M(clique []int) (float64, error)
}

// Clique is one element of a Disjoint-Cliques partition, with its chosen
// root and cost decomposition.
type Clique struct {
	Members []int   // sorted attribute indices
	Root    int     // sensor node where inference runs (not necessarily a member)
	M       float64 // expected reported values per step
	Intra   float64 // per-step cost of collecting members at the root
	Sink    float64 // per-step expected cost of reporting to the base
}

// Cost returns the clique's total per-step expected communication cost.
func (c Clique) Cost() float64 { return c.Intra + c.Sink }

// Partition is a disjoint cover of the attribute set by cliques.
type Partition struct {
	Cliques []Clique
}

// TotalCost returns the summed per-step expected cost.
func (p *Partition) TotalCost() float64 {
	s := 0.0
	for _, c := range p.Cliques {
		s += c.Cost()
	}
	return s
}

// IntraCost returns the summed intra-source component.
func (p *Partition) IntraCost() float64 {
	s := 0.0
	for _, c := range p.Cliques {
		s += c.Intra
	}
	return s
}

// SinkCost returns the summed source-sink component.
func (p *Partition) SinkCost() float64 {
	s := 0.0
	for _, c := range p.Cliques {
		s += c.Sink
	}
	return s
}

// ExpectedReported returns the summed expected reported values per step.
func (p *Partition) ExpectedReported() float64 {
	s := 0.0
	for _, c := range p.Cliques {
		s += c.M
	}
	return s
}

// MaxCliqueSize returns the size of the largest clique.
func (p *Partition) MaxCliqueSize() int {
	max := 0
	for _, c := range p.Cliques {
		if len(c.Members) > max {
			max = len(c.Members)
		}
	}
	return max
}

// Validate checks that the partition exactly covers {0..n-1} with disjoint
// cliques.
func (p *Partition) Validate(n int) error {
	seen := make([]bool, n)
	count := 0
	for _, c := range p.Cliques {
		for _, i := range c.Members {
			if i < 0 || i >= n {
				return fmt.Errorf("cliques: member %d out of range %d", i, n)
			}
			if seen[i] {
				return fmt.Errorf("cliques: attribute %d covered twice", i)
			}
			seen[i] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("cliques: partition covers %d of %d attributes", count, n)
	}
	return nil
}

// String renders the partition compactly, e.g. "{0,1,2}@1 {3,4}@4".
func (p *Partition) String() string {
	var sb strings.Builder
	for k, c := range p.Cliques {
		if k > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteByte('{')
		for i, m := range c.Members {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(m))
		}
		sb.WriteString("}@")
		sb.WriteString(strconv.Itoa(c.Root))
	}
	return sb.String()
}

// ErrEmptyClique is returned when a clique has no members.
var ErrEmptyClique = errors.New("cliques: empty clique")

// BuildClique evaluates a member set: estimates m_C, picks the best root,
// and fills in the cost decomposition (§4.1).
func BuildClique(top *network.Topology, eval Evaluator, members []int) (Clique, error) {
	if len(members) == 0 {
		return Clique{}, ErrEmptyClique
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	for _, i := range ms {
		if i < 0 || i >= top.N() {
			return Clique{}, fmt.Errorf("cliques: member %d out of topology range %d", i, top.N())
		}
	}
	m, err := eval.M(ms)
	if err != nil {
		return Clique{}, fmt.Errorf("cliques: evaluating %v: %w", ms, err)
	}
	if m < 0 {
		return Clique{}, fmt.Errorf("cliques: evaluator returned negative m %v for %v", m, ms)
	}
	root, intra, sink := bestRoot(top, ms, m)
	return Clique{Members: ms, Root: root, M: m, Intra: intra, Sink: sink}, nil
}

// bestRoot scans every sensor node as a candidate root; the root need not
// be a clique member ("we frequently observe otherwise", §4.1).
func bestRoot(top *network.Topology, members []int, m float64) (root int, intra, sink float64) {
	bestCost := -1.0
	for r := 0; r < top.N(); r++ {
		in := 0.0
		for _, x := range members {
			in += top.Comm(x, r)
		}
		sk := m * top.CommToBase(r)
		if c := in + sk; bestCost < 0 || c < bestCost {
			bestCost, root, intra, sink = c, r, in, sk
		}
	}
	return root, intra, sink
}

// cliqueKey returns a canonical string key for caching.
func cliqueKey(members []int) string {
	var sb strings.Builder
	for i, m := range members {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(m))
	}
	return sb.String()
}
