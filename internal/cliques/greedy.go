package cliques

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ken/internal/network"
)

// Metric selects the score Greedy uses to rank candidate cliques.
type Metric int

const (
	// MetricCost (default) minimises expected total communication cost per
	// attribute — intra-source plus source-sink with the best root. This is
	// the objective of the optimisation problem in §3.3.
	MetricCost Metric = iota
	// MetricReduction maximises per-attribute data reduction
	// (|C| − m_C)/|C|, the topology-blind score in the paper's Fig 6
	// pseudocode.
	MetricReduction
)

// GreedyConfig parameterises the Greedy-k heuristic.
type GreedyConfig struct {
	// K is the maximum clique size (the k of Greedy-k). Must be >= 1.
	K int
	// PruneFraction implements Fig 6's distance rule: a candidate clique is
	// discarded when it contains a pair with comm(a,b) >= PruneFraction ×
	// max-pair-cost. Zero defaults to the paper's ¼. The rule is skipped in
	// degenerate topologies where every pair is equidistant (it would prune
	// everything, including in the paper's own uniform garden topology).
	PruneFraction float64
	// NeighborLimit caps the candidate pool around each seed attribute to
	// its cheapest-to-reach uncovered neighbours, keeping the enumeration
	// polynomial on large networks. Zero defaults to 10.
	NeighborLimit int
	// Metric ranks candidates; the default is MetricCost.
	Metric Metric
	// Parallelism bounds the worker pool evaluating candidate cliques
	// (each evaluation is an independent Monte Carlo run). Zero defaults
	// to GOMAXPROCS. Results are deterministic regardless of the setting:
	// candidates are scored concurrently but selected in enumeration
	// order, and each clique's Monte Carlo seed is derived from its
	// members.
	Parallelism int
}

func (c GreedyConfig) withDefaults() GreedyConfig {
	if c.PruneFraction <= 0 {
		c.PruneFraction = 0.25
	}
	if c.NeighborLimit <= 0 {
		c.NeighborLimit = 10
	}
	return c
}

// Greedy runs the Greedy-k heuristic (Fig 6): repeatedly take the lowest
// uncovered attribute as seed, enumerate candidate cliques containing it
// (built from the seed's nearest uncovered neighbours, up to size K, after
// distance pruning), score them, and commit the best.
func Greedy(top *network.Topology, eval Evaluator, cfg GreedyConfig) (*Partition, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("cliques: greedy K %d < 1", cfg.K)
	}
	cfg = cfg.withDefaults()
	n := top.N()

	// The pruning threshold; disabled when the topology is pair-degenerate.
	maxPair := top.MaxPairCost()
	threshold := cfg.PruneFraction * maxPair
	if degeneratePairs(top) {
		threshold = maxPair + 1 // never prunes
	}

	covered := make([]bool, n)
	remaining := n
	p := &Partition{}
	for remaining > 0 {
		seed := -1
		for i := 0; i < n; i++ {
			if !covered[i] {
				seed = i
				break
			}
		}
		pool := nearestUncovered(top, seed, covered, cfg.NeighborLimit)
		best, err := bestCliqueAround(top, eval, seed, pool, cfg, threshold)
		if err != nil {
			return nil, err
		}
		p.Cliques = append(p.Cliques, best)
		for _, i := range best.Members {
			covered[i] = true
			remaining--
		}
	}
	return p, nil
}

// degeneratePairs reports whether all sensor pairs have (nearly) identical
// communication cost.
func degeneratePairs(top *network.Topology) bool {
	n := top.N()
	first := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := top.Comm(i, j)
			if first < 0 {
				first = c
			} else if c != first {
				return false
			}
		}
	}
	return true
}

// nearestUncovered returns up to limit uncovered attributes (excluding
// seed) ordered by communication cost from seed.
func nearestUncovered(top *network.Topology, seed int, covered []bool, limit int) []int {
	type cand struct {
		node int
		cost float64
	}
	var cands []cand
	for i := 0; i < top.N(); i++ {
		if i == seed || covered[i] {
			continue
		}
		cands = append(cands, cand{node: i, cost: top.Comm(seed, i)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		return cands[a].node < cands[b].node
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// bestCliqueAround scores every candidate clique {seed} ∪ S, S ⊆ pool,
// |S| < K, and returns the best. Candidates are enumerated first (with
// pruning applied), evaluated concurrently, and selected in enumeration
// order so the result is independent of scheduling. The singleton {seed}
// is always a candidate, so the search cannot fail.
func bestCliqueAround(top *network.Topology, eval Evaluator, seed int, pool []int, cfg GreedyConfig, pruneThreshold float64) (Clique, error) {
	candidates := enumerateCandidates(top, seed, pool, cfg.K, pruneThreshold)
	if len(candidates) == 0 {
		return Clique{}, fmt.Errorf("cliques: no candidate clique for seed %d", seed)
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}

	built := make([]Clique, len(candidates))
	errs := make([]error, len(candidates))
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(candidates) {
					return
				}
				built[i], errs[i] = BuildClique(top, eval, candidates[i])
			}
		}()
	}
	wg.Wait()

	var best Clique
	bestScore := 0.0
	have := false
	for i := range candidates {
		if errs[i] != nil {
			return Clique{}, errs[i]
		}
		score := scoreOf(built[i], cfg.Metric)
		if !have || better(score, bestScore, cfg.Metric) {
			best, bestScore, have = built[i], score, true
		}
	}
	return best, nil
}

// enumerateCandidates lists every unpruned candidate clique containing the
// seed, in deterministic enumeration order.
func enumerateCandidates(top *network.Topology, seed int, pool []int, k int, pruneThreshold float64) [][]int {
	maxExtra := k - 1
	if maxExtra > len(pool) {
		maxExtra = len(pool)
	}
	var out [][]int
	members := make([]int, 0, k)
	var walk func(start, picked int)
	walk = func(start, picked int) {
		clique := append([]int{seed}, members...)
		if !pruned(top, clique, pruneThreshold) {
			out = append(out, clique)
		}
		if picked == maxExtra {
			return
		}
		for i := start; i < len(pool); i++ {
			members = append(members, pool[i])
			walk(i+1, picked+1)
			members = members[:len(members)-1]
		}
	}
	walk(0, 0)
	return out
}

// pruned applies Fig 6's distance rule to a candidate clique.
func pruned(top *network.Topology, clique []int, threshold float64) bool {
	for i := 0; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			if top.Comm(clique[i], clique[j]) >= threshold {
				return true
			}
		}
	}
	return false
}

// scoreOf computes the metric value for a clique.
func scoreOf(c Clique, metric Metric) float64 {
	size := float64(len(c.Members))
	switch metric {
	case MetricReduction:
		return (size - c.M) / size
	default:
		return c.Cost() / size
	}
}

// better reports whether score a beats b under the metric's orientation.
func better(a, b float64, metric Metric) bool {
	if metric == MetricReduction {
		return a > b
	}
	return a < b
}
