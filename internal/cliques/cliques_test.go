package cliques

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/trace"
)

// uniformTop builds an n-node uniform topology with given base multiplier.
func uniformTop(t *testing.T, n int, baseMult float64) *network.Topology {
	t.Helper()
	top, err := network.Uniform(n, 1, baseMult)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// constEval returns m = perAttr × |clique| — no correlation benefit.
func constEval(perAttr float64) Evaluator {
	return FuncEvaluator(func(clique []int) (float64, error) {
		return perAttr * float64(len(clique)), nil
	})
}

// sharedEval models perfect correlation: any clique needs only `single`
// reported values per step regardless of size.
func sharedEval(single float64) Evaluator {
	return FuncEvaluator(func(clique []int) (float64, error) {
		return single, nil
	})
}

func TestBuildCliqueBasics(t *testing.T) {
	top := uniformTop(t, 4, 5)
	c, err := BuildClique(top, constEval(0.4), []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Members[0] != 0 || c.Members[1] != 2 {
		t.Fatalf("members not sorted: %v", c.Members)
	}
	if math.Abs(c.M-0.8) > 1e-12 {
		t.Fatalf("M = %v, want 0.8", c.M)
	}
	// Uniform topology: root is one of the members (intra = 1), sink = 0.8×5.
	if c.Intra != 1 {
		t.Fatalf("intra = %v, want 1", c.Intra)
	}
	if math.Abs(c.Sink-4) > 1e-12 {
		t.Fatalf("sink = %v, want 4", c.Sink)
	}
	if math.Abs(c.Cost()-5) > 1e-12 {
		t.Fatalf("cost = %v, want 5", c.Cost())
	}
}

func TestBuildCliqueSingletonRootSelf(t *testing.T) {
	top := uniformTop(t, 3, 10)
	c, err := BuildClique(top, constEval(0.5), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Root != 1 || c.Intra != 0 {
		t.Fatalf("singleton root = %d, intra = %v; want self, 0", c.Root, c.Intra)
	}
}

func TestBuildCliqueValidation(t *testing.T) {
	top := uniformTop(t, 3, 2)
	if _, err := BuildClique(top, constEval(1), nil); err == nil {
		t.Fatal("expected error for empty clique")
	}
	if _, err := BuildClique(top, constEval(1), []int{7}); err == nil {
		t.Fatal("expected error for out-of-range member")
	}
	bad := FuncEvaluator(func([]int) (float64, error) { return -1, nil })
	if _, err := BuildClique(top, bad, []int{0}); err == nil {
		t.Fatal("expected error for negative m")
	}
}

func TestPartitionAccounting(t *testing.T) {
	p := &Partition{Cliques: []Clique{
		{Members: []int{0, 1}, Root: 0, M: 0.5, Intra: 1, Sink: 2},
		{Members: []int{2}, Root: 2, M: 0.3, Intra: 0, Sink: 1.5},
	}}
	if p.TotalCost() != 4.5 || p.IntraCost() != 1 || p.SinkCost() != 3.5 {
		t.Fatalf("accounting wrong: %v %v %v", p.TotalCost(), p.IntraCost(), p.SinkCost())
	}
	if p.ExpectedReported() != 0.8 {
		t.Fatalf("reported = %v", p.ExpectedReported())
	}
	if p.MaxCliqueSize() != 2 {
		t.Fatalf("max size = %d", p.MaxCliqueSize())
	}
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err == nil {
		t.Fatal("expected cover error")
	}
	dup := &Partition{Cliques: []Clique{{Members: []int{0}}, {Members: []int{0}}}}
	if err := dup.Validate(1); err == nil {
		t.Fatal("expected duplicate error")
	}
	if s := p.String(); !strings.Contains(s, "{0,1}@0") {
		t.Fatalf("String = %q", s)
	}
}

func TestExhaustiveSingletonsWhenNoCorrelation(t *testing.T) {
	// With additive m and any base cost, merging cliques only adds intra
	// cost: optimal is all singletons.
	top := uniformTop(t, 5, 3)
	p, err := Exhaustive(top, constEval(0.5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	if p.MaxCliqueSize() != 1 {
		t.Fatalf("expected singletons, got %v", p)
	}
}

func TestExhaustiveMergesWhenCorrelated(t *testing.T) {
	// Perfect correlation, expensive base: one big clique wins.
	// Cost(all 5 in one) = intra 4 + 0.5×10 = 9; singletons = 5×0.5×10 = 25.
	top := uniformTop(t, 5, 10)
	p, err := Exhaustive(top, sharedEval(0.5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cliques) != 1 || p.MaxCliqueSize() != 5 {
		t.Fatalf("expected one 5-clique, got %v", p)
	}
	if math.Abs(p.TotalCost()-9) > 1e-9 {
		t.Fatalf("cost = %v, want 9", p.TotalCost())
	}
}

func TestExhaustiveRespectsMaxCliqueSize(t *testing.T) {
	top := uniformTop(t, 5, 10)
	p, err := Exhaustive(top, sharedEval(0.5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	if p.MaxCliqueSize() > 2 {
		t.Fatalf("clique size cap violated: %v", p)
	}
}

func TestExhaustiveGuards(t *testing.T) {
	top := uniformTop(t, 3, 2)
	if _, err := Exhaustive(top, constEval(1), 0); err == nil {
		t.Fatal("expected error for zero max clique size")
	}
	big, err := network.Uniform(21, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exhaustive(big, constEval(1), 2); err == nil {
		t.Fatal("expected infeasibility error for n=21")
	}
}

func TestGreedyCoversAll(t *testing.T) {
	top := uniformTop(t, 7, 5)
	p, err := Greedy(top, sharedEval(0.5), GreedyConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(7); err != nil {
		t.Fatal(err)
	}
	if p.MaxCliqueSize() > 3 {
		t.Fatalf("K violated: %v", p)
	}
}

func TestGreedyK1IsSingletons(t *testing.T) {
	top := uniformTop(t, 4, 5)
	p, err := Greedy(top, sharedEval(0.5), GreedyConfig{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cliques) != 4 || p.MaxCliqueSize() != 1 {
		t.Fatalf("expected 4 singletons, got %v", p)
	}
}

func TestGreedyMatchesExhaustiveOnEasyInstance(t *testing.T) {
	top := uniformTop(t, 5, 10)
	exh, err := Exhaustive(top, sharedEval(0.5), 5)
	if err != nil {
		t.Fatal(err)
	}
	grd, err := Greedy(top, sharedEval(0.5), GreedyConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grd.TotalCost()-exh.TotalCost()) > 1e-9 {
		t.Fatalf("greedy %v vs exhaustive %v", grd.TotalCost(), exh.TotalCost())
	}
}

func TestGreedyPruningRule(t *testing.T) {
	// A line topology where node 3 is very far: cliques pairing 0 with 3
	// must be pruned, so 0's clique stays local.
	links := []network.Link{
		{U: 0, V: 1, Cost: 1},
		{U: 1, V: 2, Cost: 1},
		{U: 2, V: 3, Cost: 50},
		{U: 3, V: 4, Cost: 1}, // vertex 4 is the base
	}
	top, err := network.New(4, links)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect correlation would otherwise favour one giant clique.
	p, err := Greedy(top, sharedEval(0.2), GreedyConfig{K: 4, PruneFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cliques {
		hasNear, hasFar := false, false
		for _, m := range c.Members {
			if m <= 2 {
				hasNear = true
			} else {
				hasFar = true
			}
		}
		if hasNear && hasFar {
			t.Fatalf("pruning failed, clique spans the long link: %v", p)
		}
	}
}

func TestGreedyValidation(t *testing.T) {
	top := uniformTop(t, 3, 2)
	if _, err := Greedy(top, constEval(1), GreedyConfig{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
}

func TestGreedyMetricReduction(t *testing.T) {
	// MetricReduction ignores topology: with shared m, bigger cliques have
	// higher per-attribute reduction, so greedy builds max-size cliques.
	top := uniformTop(t, 6, 1)
	p, err := Greedy(top, sharedEval(0.5), GreedyConfig{K: 3, Metric: MetricReduction})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxCliqueSize() != 3 {
		t.Fatalf("reduction metric should max out clique size: %v", p)
	}
}

// gardenEvaluator builds an MCEvaluator over real generated garden data.
func gardenEvaluator(t *testing.T, n int) (*MCEvaluator, *network.Topology) {
	t.Helper()
	tr, err := trace.GenerateGarden(51, 150)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	train := make([][]float64, len(rows))
	for i, r := range rows {
		train[i] = r[:n]
	}
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	eval, err := NewMCEvaluator(train, eps, model.FitConfig{Period: 24},
		mc.Config{Trajectories: 4, Horizon: 24, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	top, err := network.Uniform(n, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	return eval, top
}

func TestMCEvaluatorValidation(t *testing.T) {
	if _, err := NewMCEvaluator(nil, nil, model.FitConfig{}, mc.Config{}); err == nil {
		t.Fatal("expected error for empty training data")
	}
	if _, err := NewMCEvaluator([][]float64{{1, 2}}, []float64{1}, model.FitConfig{}, mc.Config{}); err == nil {
		t.Fatal("expected error for eps dim mismatch")
	}
	if _, err := NewMCEvaluator([][]float64{{1}}, []float64{0}, model.FitConfig{}, mc.Config{}); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
}

func TestMCEvaluatorCachingAndDeterminism(t *testing.T) {
	eval, _ := gardenEvaluator(t, 4)
	a, err := eval.M([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if eval.CacheSize() != 1 {
		t.Fatalf("cache size = %d", eval.CacheSize())
	}
	b, err := eval.M([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cached value changed: %v vs %v", a, b)
	}
	if a < 0 || a > 2 {
		t.Fatalf("m out of range: %v", a)
	}
	if _, err := eval.M([]int{9}); err == nil {
		t.Fatal("expected error for out-of-range attribute")
	}
	if _, err := eval.M(nil); err == nil {
		t.Fatal("expected error for empty clique")
	}
}

func TestGreedyEndToEndOnGardenData(t *testing.T) {
	eval, top := gardenEvaluator(t, 6)
	p1, err := Greedy(top, eval, GreedyConfig{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Greedy(top, eval, GreedyConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p3.Validate(6); err != nil {
		t.Fatal(err)
	}
	// Spatial correlation + expensive base: K=3 must not cost more than
	// singletons, and should report fewer expected values.
	if p3.TotalCost() > p1.TotalCost()+1e-9 {
		t.Fatalf("K=3 cost %v worse than K=1 %v", p3.TotalCost(), p1.TotalCost())
	}
	if p3.ExpectedReported() >= p1.ExpectedReported() {
		t.Fatalf("K=3 reports %v, K=1 reports %v", p3.ExpectedReported(), p1.ExpectedReported())
	}
}

func TestGreedyWithinFactorOfExhaustive(t *testing.T) {
	// The paper reports greedy within ~12% of optimal; allow 30% slack on
	// our small instance to keep the test robust.
	eval, top := gardenEvaluator(t, 5)
	exh, err := Exhaustive(top, eval, 3)
	if err != nil {
		t.Fatal(err)
	}
	grd, err := Greedy(top, eval, GreedyConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if grd.TotalCost() > exh.TotalCost()*1.3+1e-9 {
		t.Fatalf("greedy %v not within 30%% of exhaustive %v", grd.TotalCost(), exh.TotalCost())
	}
	if exh.TotalCost() > grd.TotalCost()+1e-9 {
		t.Fatalf("exhaustive %v worse than greedy %v — DP broken", exh.TotalCost(), grd.TotalCost())
	}
}

func TestPartitionJSONRoundTrip(t *testing.T) {
	p := &Partition{Cliques: []Clique{
		{Members: []int{0, 2}, Root: 1, M: 0.4, Intra: 2, Sink: 1.2},
		{Members: []int{1}, Root: 1, M: 0.3, Intra: 0, Sink: 0.9},
	}}
	var buf bytes.Buffer
	if err := SavePartition(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPartition(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != p.String() {
		t.Fatalf("round trip: %s vs %s", got, p)
	}
	if got.TotalCost() != p.TotalCost() {
		t.Fatalf("costs differ: %v vs %v", got.TotalCost(), p.TotalCost())
	}
}

func TestLoadPartitionValidates(t *testing.T) {
	if _, err := LoadPartition(strings.NewReader("junk"), 2); err == nil {
		t.Fatal("expected parse error")
	}
	// Valid JSON but wrong coverage.
	in := `{"cliques":[{"members":[0],"root":0}]}`
	if _, err := LoadPartition(strings.NewReader(in), 2); err == nil {
		t.Fatal("expected coverage error")
	}
	// Empty clique.
	in = `{"cliques":[{"members":[],"root":0}]}`
	if _, err := LoadPartition(strings.NewReader(in), 0); err == nil {
		t.Fatal("expected empty-clique error")
	}
}

// bruteForceBest enumerates every partition of {0..n-1} (by recursive
// block assignment) and returns the minimum total cost under the evaluator
// and clique-size cap.
func bruteForceBest(t *testing.T, top *network.Topology, eval Evaluator, n, maxSize int) float64 {
	t.Helper()
	best := math.Inf(1)
	var blocks [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			total := 0.0
			for _, b := range blocks {
				c, err := BuildClique(top, eval, b)
				if err != nil {
					t.Fatal(err)
				}
				total += c.Cost()
			}
			if total < best {
				best = total
			}
			return
		}
		for bi := range blocks {
			if len(blocks[bi]) >= maxSize {
				continue
			}
			blocks[bi] = append(blocks[bi], i)
			rec(i + 1)
			blocks[bi] = blocks[bi][:len(blocks[bi])-1]
		}
		blocks = append(blocks, []int{i})
		rec(i + 1)
		blocks = blocks[:len(blocks)-1]
	}
	rec(0)
	return best
}

// TestExhaustiveMatchesBruteForce cross-checks the dynamic program against
// full partition enumeration with randomised submodular-ish oracles.
func TestExhaustiveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(3) // 4..6 attributes
		// Random topology: chain + random extra links.
		links := []network.Link{}
		for i := 0; i < n; i++ {
			links = append(links, network.Link{U: i, V: i + 1, Cost: 0.5 + rng.Float64()*2})
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n+1), rng.Intn(n+1)
			if u != v {
				links = append(links, network.Link{U: u, V: v, Cost: 0.5 + rng.Float64()*4})
			}
		}
		top, err := network.New(n, links)
		if err != nil {
			t.Fatal(err)
		}
		// Random deterministic oracle: m grows sublinearly with clique
		// size, scaled per lowest member, memoised for consistency.
		memo := map[string]float64{}
		scale := make([]float64, n)
		for i := range scale {
			scale[i] = 0.2 + rng.Float64()*0.6
		}
		eval := FuncEvaluator(func(clique []int) (float64, error) {
			key := cliqueKey(clique)
			if v, ok := memo[key]; ok {
				return v, nil
			}
			m := 0.0
			for _, i := range clique {
				m += scale[i]
			}
			m *= 0.5 + 0.5/float64(len(clique)) // correlation discount
			memo[key] = m
			return m, nil
		})
		maxSize := 2 + rng.Intn(2)
		p, err := Exhaustive(top, eval, maxSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(n); err != nil {
			t.Fatal(err)
		}
		want := bruteForceBest(t, top, eval, n, maxSize)
		if math.Abs(p.TotalCost()-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d, k=%d): DP cost %v, brute force %v",
				trial, n, maxSize, p.TotalCost(), want)
		}
	}
}

// TestReplanAfterTopologyChange exercises the §6 dynamic-topology loop:
// when a link degrades, recomputing path costs and re-running Greedy-k
// yields a partition at least as cheap as keeping the stale one under the
// new costs.
func TestReplanAfterTopologyChange(t *testing.T) {
	links := []network.Link{
		{U: 0, V: 1, Cost: 1},
		{U: 1, V: 2, Cost: 1},
		{U: 2, V: 3, Cost: 1},
		{U: 3, V: 4, Cost: 1}, // vertex 4 is the base
		{U: 0, V: 4, Cost: 3},
	}
	top, err := network.New(4, links)
	if err != nil {
		t.Fatal(err)
	}
	eval := sharedEval(0.4)
	before, err := Greedy(top, eval, GreedyConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The 3→base link degrades badly.
	degraded, err := top.UpdateLink(3, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	replanned, err := Greedy(degraded, eval, GreedyConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Reprice the stale partition under the new topology.
	stale := 0.0
	for _, c := range before.Cliques {
		repriced, err := BuildClique(degraded, eval, c.Members)
		if err != nil {
			t.Fatal(err)
		}
		stale += repriced.Cost()
	}
	if replanned.TotalCost() > stale+1e-9 {
		t.Fatalf("replanning (%v) worse than stale plan (%v)", replanned.TotalCost(), stale)
	}
}

// TestGreedyParallelDeterminism: the worker-pool evaluation must produce
// the identical partition at any parallelism level.
func TestGreedyParallelDeterminism(t *testing.T) {
	eval, top := gardenEvaluator(t, 8)
	var want string
	for _, par := range []int{1, 2, 8} {
		// Fresh evaluator per run so the cache cannot mask ordering bugs.
		freshEval, freshTop := gardenEvaluator(t, 8)
		_ = freshTop
		p, err := Greedy(top, freshEval, GreedyConfig{K: 3, NeighborLimit: 5, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = p.String()
			continue
		}
		if p.String() != want {
			t.Fatalf("parallelism %d changed the partition: %s vs %s", par, p, want)
		}
	}
	_ = eval
}
