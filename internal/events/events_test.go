package events

import (
	"context"
	"strings"
	"testing"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/trace"
)

func TestVerdictString(t *testing.T) {
	if None.String() != "none" || Possible.String() != "possible" || Certain.String() != "certain" {
		t.Fatal("verdict names wrong")
	}
	if !strings.Contains(Verdict(9).String(), "?") {
		t.Fatal("unknown verdict should be marked")
	}
}

func TestThresholdClassify(t *testing.T) {
	th := Threshold{Attr: 0, Level: 30, Eps: 0.5}
	cases := []struct {
		est  float64
		want Verdict
	}{
		{29.4, None},
		{29.5, None}, // exactly level−ε: truth could be at most 30.0, not above
		{29.6, Possible},
		{30.0, Possible},
		{30.4, Possible},
		{30.5, Certain},
		{31.0, Certain},
	}
	for _, c := range cases {
		if got := th.Classify(c.est); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.est, got, c.want)
		}
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(0, []Threshold{{Attr: 0, Level: 1, Eps: 1}}); err == nil {
		t.Fatal("expected error for zero attributes")
	}
	if _, err := NewDetector(2, nil); err == nil {
		t.Fatal("expected error for no thresholds")
	}
	if _, err := NewDetector(2, []Threshold{{Attr: 5, Level: 1, Eps: 1}}); err == nil {
		t.Fatal("expected error for bad attribute")
	}
	if _, err := NewDetector(2, []Threshold{{Attr: 0, Level: 1, Eps: 0}}); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
}

func TestScanAndAuditSynthetic(t *testing.T) {
	d, err := NewDetector(1, []Threshold{{Attr: 0, Level: 10, Eps: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	estimates := [][]float64{{9.0}, {9.8}, {10.6}, {9.0}}
	alerts, err := d.Scan(estimates)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 2 {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].Verdict != Possible || alerts[1].Verdict != Certain {
		t.Fatalf("verdicts = %v, %v", alerts[0].Verdict, alerts[1].Verdict)
	}
	// Truth consistent with ±0.5 estimates: audit passes.
	truth := [][]float64{{9.2}, {10.1}, {10.4}, {9.3}}
	if _, _, err := d.Audit(estimates, truth); err != nil {
		t.Fatal(err)
	}
	// A truth crossing whose estimate stayed at None must be flagged.
	badTruth := [][]float64{{10.5}, {10.1}, {10.4}, {9.3}}
	if missed, _, err := d.Audit(estimates, badTruth); err == nil || missed != 1 {
		t.Fatalf("expected missed-crossing audit failure, got missed=%d err=%v", missed, err)
	}
	// A Certain alert with truth below the level must be flagged.
	spuriousTruth := [][]float64{{9.2}, {10.1}, {9.9}, {9.3}}
	if _, spurious, err := d.Audit(estimates, spuriousTruth); err == nil || spurious != 1 {
		t.Fatalf("expected spurious-certain audit failure, got spurious=%d err=%v", spurious, err)
	}
}

func TestScanValidation(t *testing.T) {
	d, err := NewDetector(2, []Threshold{{Attr: 0, Level: 10, Eps: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Scan([][]float64{{1}}); err == nil {
		t.Fatal("expected error for estimate dim mismatch")
	}
	if _, _, err := d.Audit([][]float64{{1, 2}}, nil); err == nil {
		t.Fatal("expected error for truth length mismatch")
	}
}

// TestEndToEndNoMissedEvents: inject heat spikes into a lab trace, collect
// with Ken, and verify the detector's no-false-negative guarantee over the
// sink's estimates.
func TestEndToEndNoMissedEvents(t *testing.T) {
	tr, err := trace.GenerateLab(9, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Several fire-like spikes on different nodes.
	for _, spec := range []struct{ node, at int }{{3, 150}, {20, 200}, {40, 260}} {
		if err := tr.InjectAnomaly(trace.Temperature, spec.node, 100+spec.at, 100+spec.at+2, 15); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Deployment.N()
	train, test := rows[:100], rows[100:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	p := &cliques.Partition{}
	for i := 0; i < n; i++ {
		p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
	}
	s, err := core.NewKen(core.KenConfig{
		Partition: p, Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), s, test, core.RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}

	// Fire alarms at 33 °C on every node.
	ths := make([]Threshold, n)
	for i := range ths {
		ths[i] = Threshold{Attr: i, Level: 33, Eps: 0.5}
	}
	det, err := NewDetector(n, ths)
	if err != nil {
		t.Fatal(err)
	}
	missed, spurious, err := det.Audit(res.Estimates, test)
	if err != nil {
		t.Fatalf("guarantee audit failed: %v (missed %d, spurious %d)", err, missed, spurious)
	}
	// And the spikes did actually fire alerts.
	alerts, err := det.Scan(res.Estimates)
	if err != nil {
		t.Fatal(err)
	}
	certain := 0
	for _, a := range alerts {
		if a.Verdict == Certain {
			certain++
		}
	}
	if certain == 0 {
		t.Fatal("injected 15-degree spikes produced no certain alerts")
	}
}
