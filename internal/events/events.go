// Package events turns Ken's bounded-loss answers into guaranteed event
// detection (§1.1: "approximate data collection and event detection become
// isomorphic").
//
// The sink only sees estimates, but every estimate is within ±ε of the
// truth. A threshold detector exploits that bound: comparing the estimate
// against threshold−ε can never miss a true crossing (no false negatives),
// while comparing against threshold+ε never fires spuriously (no false
// positives). Between the two lies an uncertainty band of width 2ε where
// the detector reports a *possible* event — exactly the residual ambiguity
// the user accepted when loosening ε.
package events

import (
	"fmt"
)

// Verdict classifies one estimate against one threshold.
type Verdict int

const (
	// None: the truth is certainly below the threshold.
	None Verdict = iota
	// Possible: the estimate lies within ε of the threshold; the truth may
	// be on either side.
	Possible
	// Certain: the truth is certainly above the threshold.
	Certain
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case None:
		return "none"
	case Possible:
		return "possible"
	case Certain:
		return "certain"
	default:
		return "verdict(?)"
	}
}

// Threshold watches one attribute for upward crossings of a level.
type Threshold struct {
	Attr  int
	Level float64
	// Eps is the collection error bound of the attribute.
	Eps float64
}

// Classify returns the verdict for a sink estimate.
func (t Threshold) Classify(estimate float64) Verdict {
	switch {
	case estimate >= t.Level+t.Eps:
		return Certain
	case estimate > t.Level-t.Eps:
		return Possible
	default:
		return None
	}
}

// Detector evaluates a set of thresholds against sink estimate vectors.
type Detector struct {
	thresholds []Threshold
	n          int
}

// Alert is one fired threshold at one step.
type Alert struct {
	Step    int
	Attr    int
	Level   float64
	Verdict Verdict
	// Estimate is the sink value that fired the alert.
	Estimate float64
}

// NewDetector validates the thresholds against the attribute count.
func NewDetector(n int, thresholds []Threshold) (*Detector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("events: attribute count %d", n)
	}
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("events: no thresholds")
	}
	for i, th := range thresholds {
		if th.Attr < 0 || th.Attr >= n {
			return nil, fmt.Errorf("events: threshold %d attribute %d out of range %d", i, th.Attr, n)
		}
		if th.Eps <= 0 {
			return nil, fmt.Errorf("events: threshold %d epsilon %v must be positive", i, th.Eps)
		}
	}
	return &Detector{thresholds: append([]Threshold(nil), thresholds...), n: n}, nil
}

// Scan classifies every step's estimates, returning all Possible/Certain
// alerts in step order.
func (d *Detector) Scan(estimates [][]float64) ([]Alert, error) {
	var out []Alert
	for step, est := range estimates {
		if len(est) != d.n {
			return nil, fmt.Errorf("events: step %d has %d estimates, want %d", step, len(est), d.n)
		}
		for _, th := range d.thresholds {
			v := th.Classify(est[th.Attr])
			if v == None {
				continue
			}
			out = append(out, Alert{
				Step: step, Attr: th.Attr, Level: th.Level,
				Verdict: v, Estimate: est[th.Attr],
			})
		}
	}
	return out, nil
}

// Audit verifies the detector's guarantees against ground truth: every true
// crossing must have produced at least a Possible alert (no false
// negatives), and every Certain alert must correspond to a true crossing
// (no certain false positives). It returns counts for reporting and an
// error naming the first violated guarantee.
func (d *Detector) Audit(estimates, truth [][]float64) (missed, spurious int, err error) {
	alerts, err := d.Scan(estimates)
	if err != nil {
		return 0, 0, err
	}
	if len(truth) != len(estimates) {
		return 0, 0, fmt.Errorf("events: %d truth rows for %d estimate rows", len(truth), len(estimates))
	}
	type key struct{ step, attr int }
	fired := map[key]Verdict{}
	for _, a := range alerts {
		k := key{a.Step, a.Attr}
		if a.Verdict > fired[k] {
			fired[k] = a.Verdict
		}
	}
	for step, row := range truth {
		if len(row) != d.n {
			return 0, 0, fmt.Errorf("events: truth step %d has %d values, want %d", step, len(row), d.n)
		}
		for _, th := range d.thresholds {
			truthAbove := row[th.Attr] >= th.Level
			v := fired[key{step, th.Attr}]
			if truthAbove && v == None {
				missed++
			}
			if !truthAbove && v == Certain {
				spurious++
			}
		}
	}
	if missed > 0 {
		return missed, spurious, fmt.Errorf("events: %d true crossings produced no alert — ε guarantee broken upstream", missed)
	}
	if spurious > 0 {
		return missed, spurious, fmt.Errorf("events: %d certain alerts without true crossings", spurious)
	}
	return 0, 0, nil
}
