package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"ken/internal/model"
	"ken/internal/obs"
)

// TestFailureDetectorThresholdTable pins SilenceThreshold against the
// first silence length that actually trips Observe, for ratios
// log(alpha)/log1p(-rate) that are integral and ones that are not.
// Suspect uses a strict inequality, so an integral ratio r must yield
// threshold r+1 — the case the old Ceil formula undercounted by one.
func TestFailureDetectorThresholdTable(t *testing.T) {
	cases := []struct {
		rate, alpha float64
		want        int
	}{
		// Inexact ratios: Floor+1 agrees with the old Ceil.
		{0.4, 0.01, 10}, // ratio ≈ 9.015
		{0.2, 0.05, 14}, // ratio ≈ 13.425
		// Exact ratios: alpha = (1−rate)^k, so ratio is exactly k and the
		// first improbable-enough silence is k+1 (Ceil gave k, one early).
		{0.5, 0.5, 2},   // ratio = 1
		{0.5, 0.25, 3},  // ratio = 2
		{0.9, 0.01, 3},  // ratio = 2 (0.01 = 0.1²)
		{0.75, 0.25, 2}, // ratio = 1
	}
	for _, c := range cases {
		d, err := NewFailureDetector(c.rate, c.alpha)
		if err != nil {
			t.Fatal(err)
		}
		th := d.SilenceThreshold()
		if th != c.want {
			t.Errorf("rate %v alpha %v: threshold = %d, want %d", c.rate, c.alpha, th, c.want)
		}
		// The declared threshold must be exactly the first silence length
		// Observe flags, whatever the float details of the ratio.
		first := 0
		for s := 1; s <= th+1; s++ {
			if d.Observe(false) {
				first = s
				break
			}
		}
		if first != th {
			t.Errorf("rate %v alpha %v: first suspicion at silence %d, threshold says %d",
				c.rate, c.alpha, first, th)
		}
	}
}

// TestLossyKenHeartbeatTiming checks the heartbeat schedule: the first
// heartbeat fires at step HeartbeatEvery exactly — not at step 0 (which
// would waste a full-value transmission on the first epoch) — and then
// every HeartbeatEvery steps.
func TestLossyKenHeartbeatTiming(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 12)
	lk, err := NewLossyKen(KenConfig{
		Partition: pairPartition(4), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	}, LossyConfig{HeartbeatEvery: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range test {
		if _, _, err := lk.Step(row); err != nil {
			t.Fatal(err)
		}
		step := i + 1
		want := step / 5 // 0 through step 4, 1 through step 9, ...
		if lk.Heartbeats != want {
			t.Fatalf("after step %d: %d heartbeats, want %d", step, lk.Heartbeats, want)
		}
	}
}

// TestLossyKenHeartbeatResyncsReplicas drives LossyKen under heavy loss
// and checks the §6 healing claim at the replica level: immediately after
// a heartbeat step the source and sink models are bitwise identical,
// while loss makes them diverge on at least some non-heartbeat steps.
func TestLossyKenHeartbeatResyncsReplicas(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 60)
	lk, err := NewLossyKen(KenConfig{
		Partition: pairPartition(4), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	}, LossyConfig{LossRate: 0.5, HeartbeatEvery: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	identical := func() bool {
		for ci := range lk.ken.cliques {
			c := &lk.ken.cliques[ci]
			src, sink := c.src.Mean(), c.sink.Mean()
			for i := range src {
				if math.Float64bits(src[i]) != math.Float64bits(sink[i]) {
					return false
				}
			}
		}
		return true
	}
	diverged := false
	for i, row := range test {
		if _, _, err := lk.Step(row); err != nil {
			t.Fatal(err)
		}
		if (i+1)%5 == 0 {
			if !identical() {
				t.Fatalf("replicas differ right after the heartbeat at step %d", i+1)
			}
		} else if !identical() {
			diverged = true
		}
	}
	if lk.Heartbeats == 0 {
		t.Fatal("no heartbeats issued")
	}
	if !diverged {
		t.Fatal("50% loss never desynchronised the replicas; the resync check is vacuous")
	}
}

// TestLossyKenCountersMatchTrace replays a traced lossy run and checks
// the scheme's counters against the protocol trace: LostMessages equals
// the values carried by EvDrop("loss") events, Heartbeats equals the
// EvResync count.
func TestLossyKenCountersMatchTrace(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 80)
	var buf bytes.Buffer
	ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(&buf)}
	lk, err := NewLossyKen(KenConfig{
		Partition: pairPartition(4), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24}, Obs: ob,
	}, LossyConfig{LossRate: 0.3, HeartbeatEvery: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), lk, test, RunOptions{Eps: eps, Observer: ob}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lostValues, resyncs := 0, 0
	for _, e := range events {
		switch e.Type {
		case obs.EvDrop:
			if e.Detail == "loss" {
				lostValues += len(e.Attrs)
			}
		case obs.EvResync:
			resyncs++
		}
	}
	if lk.LostMessages == 0 {
		t.Fatal("loss injector dropped nothing")
	}
	if lostValues != lk.LostMessages {
		t.Fatalf("trace carries %d lost values, scheme counted %d", lostValues, lk.LostMessages)
	}
	if resyncs != lk.Heartbeats {
		t.Fatalf("trace carries %d resyncs, scheme counted %d", resyncs, lk.Heartbeats)
	}
}
