package core

import (
	"fmt"

	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
)

// Average is the paper's Average model (Example 3.5, Figure 4): every step,
// the network computes the global average X̄ by in-network aggregation and
// disseminates it back down, and each node runs a two-variable model over
// its own reading and the average. Knowing the average, a node reports its
// own value only when the conditional prediction misses. The base station —
// the root of the aggregation tree — also receives X̄, keeping the replicas
// in sync.
//
// Aggregating and disseminating takes a communication round (paper
// footnote 2: the time-t computation happens at t+Δ), so the average
// available at step t is the one aggregated at t−1. The per-node model is
// therefore fit over the pair (X_i(t), X̄(t−1)) — its second variable IS the
// lagged average, keeping conditioning exact.
type Average struct {
	n    int
	src  []model.Model // per node, over [x_i(t), avg(t−1)]
	sink []model.Model
	eps  []float64
	top  *network.Topology
	// aggCost is the fixed per-step cost of computing and disseminating the
	// average (2 tree sweeps, O(n) messages). Zero under topology-free
	// accounting, matching the paper's Fig 9/10 which plot reported values
	// only.
	aggCost float64
	// prevAvg is the last disseminated average.
	prevAvg float64
	primed  bool
}

var _ Scheme = (*Average)(nil)

// NewAverage fits the per-node (X_i, lagged X̄) models from training data.
// top may be nil for topology-independent accounting.
func NewAverage(train [][]float64, eps []float64, fitCfg model.FitConfig, top *network.Topology) (*Average, error) {
	if len(train) < 2 {
		return nil, fmt.Errorf("core: Average needs at least 2 training rows, got %d", len(train))
	}
	n := len(train[0])
	if len(eps) != n {
		return nil, fmt.Errorf("core: eps dim %d, training dim %d", len(eps), n)
	}
	for i, e := range eps {
		if e <= 0 {
			return nil, fmt.Errorf("core: non-positive epsilon %v for attribute %d", e, i)
		}
	}
	if top != nil && top.N() != n {
		return nil, fmt.Errorf("core: topology has %d nodes, data has %d", top.N(), n)
	}
	a := &Average{
		n:   n,
		eps: append([]float64(nil), eps...),
		top: top,
	}
	if top != nil {
		tree, err := top.TreeMessageCost()
		if err != nil {
			return nil, err
		}
		a.aggCost = 2 * tree // one sweep up (aggregate), one down (disseminate)
	}
	avg := make([]float64, len(train))
	for t, row := range train {
		s := 0.0
		for _, v := range row {
			s += v
		}
		avg[t] = s / float64(n)
	}
	for i := 0; i < n; i++ {
		// Pair the reading at t with the average disseminated from t−1.
		cols := make([][]float64, 0, len(train)-1)
		for t := 1; t < len(train); t++ {
			cols = append(cols, []float64{train[t][i], avg[t-1]})
		}
		mdl, err := model.FitLinearGaussian(cols, fitCfg)
		if err != nil {
			return nil, fmt.Errorf("core: fitting average model for node %d: %w", i, err)
		}
		a.src = append(a.src, mdl.Clone())
		a.sink = append(a.sink, mdl.Clone())
	}
	// The last training average primes the first test step.
	a.prevAvg = avg[len(avg)-1]
	a.primed = true
	return a, nil
}

// Name implements Scheme.
func (a *Average) Name() string { return "Avg" }

// Dim implements Scheme.
func (a *Average) Dim() int { return a.n }

// Step implements Scheme.
func (a *Average) Step(truth []float64) ([]float64, StepStats, error) {
	if len(truth) != a.n {
		return nil, StepStats{}, fmt.Errorf("core: truth dim %d, want %d", len(truth), a.n)
	}
	est := make([]float64, a.n)
	st := StepStats{IntraCost: a.aggCost}
	for i := 0; i < a.n; i++ {
		a.src[i].Step()
		a.sink[i].Step()
		// Both replicas know the average disseminated last round.
		if a.primed {
			obs := map[int]float64{1: a.prevAvg}
			if err := a.src[i].Condition(obs); err != nil {
				return nil, StepStats{}, err
			}
			if err := a.sink[i].Condition(obs); err != nil {
				return nil, StepStats{}, err
			}
		}
		mean := a.src[i].Mean()
		if d := mean[0] - truth[i]; d > a.eps[i] || d < -a.eps[i] {
			obs := map[int]float64{0: truth[i]}
			if err := a.src[i].Condition(obs); err != nil {
				return nil, StepStats{}, err
			}
			if err := a.sink[i].Condition(obs); err != nil {
				return nil, StepStats{}, err
			}
			st.ValuesReported++
			st.Reported = append(st.Reported, i)
			if a.top == nil {
				st.SinkCost++
			} else {
				st.SinkCost += a.top.CommToBase(i)
			}
		}
		est[i] = a.sink[i].Mean()[0]
	}
	st.Bytes = obs.WireBytesPerValue * st.ValuesReported
	// Aggregate this step's readings for dissemination next round.
	sum := 0.0
	for _, v := range truth {
		sum += v
	}
	a.prevAvg = sum / float64(a.n)
	a.primed = true
	return est, st, nil
}
