// Package core implements the Ken data-collection architecture (§3): the
// replicated-model protocol between a sensor-network source and a base
// station sink, and the comparison schemes of the paper's evaluation
// (TinyDB, Approximate Caching, the Average model, and Disjoint-Cliques
// Ken).
//
// A Scheme processes one ground-truth row per time step and returns the
// sink's estimate plus message accounting. Run drives a scheme over a test
// trace, audits the ε-guarantee, and accumulates the statistics the paper
// reports: fraction of data reported (Figs 9, 10, 14) and intra-source /
// source-sink cost decomposition (Figs 12, 13).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ken/internal/obs"
)

// Scheme is a data-collection protocol replayed over a trace.
type Scheme interface {
	// Name identifies the scheme in reports (e.g. "DjC3").
	Name() string
	// Dim returns the number of collected attributes.
	Dim() int
	// Step consumes the ground truth for one time step and returns the
	// sink-side estimate along with the step's message accounting.
	Step(truth []float64) ([]float64, StepStats, error)
}

// StepStats is the communication accounting of a single step.
type StepStats struct {
	// ValuesReported counts attribute values delivered to the sink.
	ValuesReported int
	// Reported lists the global attribute indices transmitted this step
	// (unordered). Event-detection consumers use it to see exactly which
	// nodes spoke up.
	Reported []int
	// IntraCost is the intra-source communication cost (collecting clique
	// members at roots, or aggregation/dissemination for the Average model).
	IntraCost float64
	// SinkCost is the source-to-sink communication cost.
	SinkCost float64
	// Bytes is the step's source→sink payload on the wire
	// (obs.WireBytesPerValue per reported value) — the figure the offline
	// auditor reconciles against the trace's per-epoch accounting.
	Bytes int
}

// EpochScoped is implemented by schemes that accept a causal epoch span
// from Run before each step, so their report/suppress/apply events nest
// under the epoch the replay driver opened. Schemes without it still
// trace through their own (unspanned) tracer handle.
type EpochScoped interface {
	BeginEpoch(sp *obs.Span)
}

// Result accumulates a full replay.
type Result struct {
	Scheme string
	Steps  int
	Dim    int

	ValuesReported int
	IntraCost      float64
	SinkCost       float64
	// WireBytes totals the per-step source→sink payload bytes (see
	// StepStats.Bytes).
	WireBytes int

	// MaxAbsError is the largest |estimate − truth| seen at the sink.
	MaxAbsError float64
	// BoundViolations counts (step, attribute) pairs where the sink
	// estimate violated ε. Zero for all deterministic Ken schemes; may be
	// positive under probabilistic reporting or message loss.
	BoundViolations int
	// MeanAbsError is the average |estimate − truth| over all readings.
	MeanAbsError float64

	// PerStepReported records the number of values reported at each step
	// (used by event-detection analyses).
	PerStepReported []int
	// ReportedAttrs records which attribute indices were reported at each
	// step.
	ReportedAttrs [][]int
	// Estimates are the sink's answer vectors, one per step.
	Estimates [][]float64
}

// ReportedAt reports whether attribute i was transmitted at step t.
func (r *Result) ReportedAt(t, i int) bool {
	if t < 0 || t >= len(r.ReportedAttrs) {
		return false
	}
	for _, a := range r.ReportedAttrs[t] {
		if a == i {
			return true
		}
	}
	return false
}

// FractionReported returns reported values / total readings — the y-axis of
// the paper's Figs 9, 10 and 14.
func (r *Result) FractionReported() float64 {
	total := r.Steps * r.Dim
	if total == 0 {
		return 0
	}
	return float64(r.ValuesReported) / float64(total)
}

// TotalCost returns intra + sink cost — the y-axis of Figs 12 and 13.
func (r *Result) TotalCost() float64 { return r.IntraCost + r.SinkCost }

// ErrEmptyTest is returned when the test trace has no rows.
var ErrEmptyTest = errors.New("core: empty test data")

// RunOptions configure a replay. The zero value runs unaudited and
// unobserved.
type RunOptions struct {
	// Eps are the per-attribute error bounds audited at the sink. Nil
	// skips auditing (e.g. for schemes intentionally run with
	// probabilistic guarantees).
	Eps []float64
	// Observer, when non-nil, receives per-epoch start/end trace events
	// and live audit metrics (epochs, values, ε-violations, running max
	// error) while the replay progresses — the handle a live /metrics
	// endpoint watches during a long simulation.
	Observer *obs.Observer
	// Scope labels every trace event of this replay (nested under the
	// tracer's own scope), keeping concurrent replays sharing one trace
	// file attributable — engine cells pass engine.Scope(ctx).
	Scope string
}

// Run replays the scheme over the test rows, audits every sink estimate
// against opts.Eps, and accumulates the statistics the paper reports. ctx
// is checked between steps, so a canceled context stops a long replay
// promptly; nil ctx is treated as context.Background().
func Run(ctx context.Context, s Scheme, test [][]float64, opts RunOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(test) == 0 {
		return nil, ErrEmptyTest
	}
	n := s.Dim()
	eps := opts.Eps
	if eps != nil && len(eps) != n {
		return nil, fmt.Errorf("core: eps dim %d, scheme dim %d", len(eps), n)
	}
	reg := opts.Observer.Registry()
	tracer := opts.Observer.Tracer().WithScope(opts.Scope)
	mEpochs := reg.Counter("ken_epochs_total")
	mRunValues := reg.Counter("ken_run_values_reported_total")
	mViolations := reg.Counter("ken_epsilon_violations_total")
	gMaxErr := reg.Gauge("ken_max_abs_error")
	res := &Result{
		Scheme:          s.Name(),
		Steps:           len(test),
		Dim:             n,
		PerStepReported: make([]int, 0, len(test)),
		Estimates:       make([][]float64, 0, len(test)),
	}
	scoped, _ := s.(EpochScoped)
	var absErrSum float64
	for t, truth := range test {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(truth) != n {
			return nil, fmt.Errorf("core: test row %d has dim %d, want %d", t, len(truth), n)
		}
		sp := tracer.StartEpoch(obs.Event{Step: int64(t), Clique: -1, Node: -1, Detail: s.Name()})
		if scoped != nil {
			scoped.BeginEpoch(sp)
		}
		est, st, err := s.Step(truth)
		if err != nil {
			return nil, fmt.Errorf("core: step %d: %w", t, err)
		}
		if len(est) != n {
			return nil, fmt.Errorf("core: step %d estimate dim %d, want %d", t, len(est), n)
		}
		res.ValuesReported += st.ValuesReported
		res.IntraCost += st.IntraCost
		res.SinkCost += st.SinkCost
		res.WireBytes += st.Bytes
		res.PerStepReported = append(res.PerStepReported, st.ValuesReported)
		res.ReportedAttrs = append(res.ReportedAttrs, st.Reported)
		// Schemes may reuse the returned estimate slice across steps (Ken
		// does); retaining it requires a copy.
		res.Estimates = append(res.Estimates, append([]float64(nil), est...))
		stepViolations := 0
		for i := range truth {
			d := math.Abs(est[i] - truth[i])
			absErrSum += d
			if d > res.MaxAbsError {
				res.MaxAbsError = d
			}
			if eps != nil && d > eps[i]+1e-9 {
				res.BoundViolations++
				stepViolations++
			}
		}
		mEpochs.Inc()
		mRunValues.Add(int64(st.ValuesReported))
		mViolations.Add(int64(stepViolations))
		gMaxErr.Set(res.MaxAbsError)
		if sp.Active() {
			sp.EndEpoch(obs.Event{Step: int64(t), Clique: -1, Node: -1, N: st.ValuesReported,
				Payload: &obs.Payload{Predicted: est, Observed: truth, Eps: eps, Bytes: st.Bytes}})
		}
	}
	res.MeanAbsError = absErrSum / float64(res.Steps*n)
	if tracer != nil {
		tracer.Emit(obs.Event{Type: obs.EvRunEnd, Step: int64(res.Steps), Clique: -1, Node: -1, Detail: s.Name(),
			Payload: &obs.Payload{Steps: res.Steps, Values: res.ValuesReported, Violations: res.BoundViolations, Bytes: res.WireBytes}})
	}
	return res, nil
}

// ReportCounts returns how many times each attribute was reported over the
// run. The paper observes that Ken "often has the opportunity to select and
// report those few nodes which serve to strongly indicate the readings of
// other nodes" (§5.3) — in multi-node cliques this shows up as a skewed
// per-attribute report distribution.
func (r *Result) ReportCounts() []int {
	counts := make([]int, r.Dim)
	for _, attrs := range r.ReportedAttrs {
		for _, a := range attrs {
			if a >= 0 && a < r.Dim {
				counts[a]++
			}
		}
	}
	return counts
}
