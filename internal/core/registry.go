package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ken/internal/cliques"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
)

// SchemeSpec declaratively describes a collection scheme for Build: one
// config struct instead of a different positional constructor per scheme.
// Scheme selects the registered builder; the remaining fields are
// interpreted by that builder and ignored otherwise.
type SchemeSpec struct {
	// Scheme is the registry name: "TinyDB", "ApproxCache", "Average",
	// "Ken", or "DjC<k>" (Ken with K = <k>). Matching is case-insensitive
	// and the short aliases "apc", "cache", "avg" and "djc" are accepted.
	Scheme string
	// Name overrides the scheme's display name in results (optional).
	Name string
	// N is the attribute count for schemes that need nothing else
	// (TinyDB). When zero it is inferred from Eps or Train.
	N int
	// Eps are the per-attribute error bounds.
	Eps []float64
	// Train is the model-learning prefix (Average, Ken).
	Train [][]float64
	// FitCfg controls model learning.
	FitCfg model.FitConfig
	// ModelFactory overrides the default per-clique FitLinearGaussian
	// (Ken only); see KenConfig.ModelFactory.
	ModelFactory func(train [][]float64) (model.Model, error)
	// Partition fixes the Disjoint-Cliques partition (Ken). When nil, a
	// Greedy-K partition is selected on Topology (or a uniform ×5
	// topology when Topology is nil, the default of the paper's cost
	// study).
	Partition *cliques.Partition
	// K is the maximum clique size for automatic partition selection.
	K int
	// NeighborLimit caps the greedy partitioner's candidate pools.
	NeighborLimit int
	// MC sizes the Monte Carlo m_C estimation behind partition selection.
	MC mc.Config
	// Metric picks the greedy partitioner's objective.
	Metric cliques.Metric
	// Topology prices messages; nil gives topology-independent
	// accounting.
	Topology *network.Topology
	// Prob enables §6 probabilistic reporting (Ken).
	Prob *ProbConfig
	// Lossy wraps the scheme with §6 message-loss injection (Ken).
	Lossy *LossyConfig
	// Exhaustive switches Ken's report search to exact enumeration.
	Exhaustive bool
	// Obs attaches metrics and protocol event tracing.
	Obs *obs.Observer
}

// dim infers the attribute count from the spec.
func (s SchemeSpec) dim() int {
	if s.N > 0 {
		return s.N
	}
	if len(s.Eps) > 0 {
		return len(s.Eps)
	}
	if len(s.Train) > 0 {
		return len(s.Train[0])
	}
	return 0
}

// Builder constructs a scheme from a spec.
type Builder func(SchemeSpec) (Scheme, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// RegisterScheme adds (or replaces) a named scheme builder. Names are
// case-insensitive. The built-in schemes are registered at init; tests and
// extensions may add their own families.
func RegisterScheme(name string, b Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[strings.ToLower(name)] = b
}

// Schemes returns the sorted registered scheme names (lower-cased).
func Schemes() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build resolves spec.Scheme through the registry and constructs the
// scheme. "DjC<k>" (any case) resolves to the Ken builder with K = <k> and
// a matching display name.
func Build(spec SchemeSpec) (Scheme, error) {
	name := strings.ToLower(strings.TrimSpace(spec.Scheme))
	if k, ok := parseDjC(name); ok {
		spec.K = k
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("DjC%d", k)
		}
		name = "ken"
	}
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown scheme %q (have %s)", spec.Scheme, strings.Join(Schemes(), ", "))
	}
	return b(spec)
}

// parseDjC matches "djc<k>" with a positive integer k.
func parseDjC(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "djc")
	if !ok || rest == "" {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k < 1 {
		return 0, false
	}
	return k, true
}

func init() {
	tinydb := func(s SchemeSpec) (Scheme, error) { return NewTinyDB(s.dim(), s.Topology) }
	apc := func(s SchemeSpec) (Scheme, error) { return NewCache(s.Eps, s.Topology) }
	avg := func(s SchemeSpec) (Scheme, error) { return NewAverage(s.Train, s.Eps, s.FitCfg, s.Topology) }
	for _, n := range []string{"TinyDB"} {
		RegisterScheme(n, tinydb)
	}
	for _, n := range []string{"ApproxCache", "ApC", "Cache"} {
		RegisterScheme(n, apc)
	}
	for _, n := range []string{"Average", "Avg"} {
		RegisterScheme(n, avg)
	}
	for _, n := range []string{"Ken", "DjC"} {
		RegisterScheme(n, buildKen)
	}
}

// buildKen assembles the Disjoint-Cliques scheme, selecting a Greedy-K
// partition when the spec does not fix one.
func buildKen(spec SchemeSpec) (Scheme, error) {
	part := spec.Partition
	if part == nil {
		k := spec.K
		if k < 1 {
			return nil, fmt.Errorf("core: Ken needs a Partition or K >= 1 for greedy selection")
		}
		eval, err := cliques.NewMCEvaluator(spec.Train, spec.Eps, spec.FitCfg, spec.MC)
		if err != nil {
			return nil, err
		}
		top := spec.Topology
		if top == nil {
			// Partition selection needs some topology; use the uniform
			// ×5 the paper's cost study centres on.
			top, err = network.Uniform(spec.dim(), 1, 5)
			if err != nil {
				return nil, err
			}
		}
		part, err = cliques.Greedy(top, eval, cliques.GreedyConfig{
			K:             k,
			NeighborLimit: spec.NeighborLimit,
			Metric:        spec.Metric,
		})
		if err != nil {
			return nil, fmt.Errorf("core: greedy k=%d partition selection: %w", k, err)
		}
	}
	cfg := KenConfig{
		Name:         spec.Name,
		Partition:    part,
		Train:        spec.Train,
		Eps:          spec.Eps,
		FitCfg:       spec.FitCfg,
		ModelFactory: spec.ModelFactory,
		Topology:     spec.Topology,
		Exhaustive:   spec.Exhaustive,
		Prob:         spec.Prob,
		Obs:          spec.Obs,
	}
	if spec.Lossy != nil {
		return NewLossyKen(cfg, *spec.Lossy)
	}
	return NewKen(cfg)
}
