package core

import (
	"fmt"

	"ken/internal/network"
	"ken/internal/obs"
)

// TinyDB is the exact-collection baseline (§5.2): every node reports every
// reading to the base station, giving zero error at full communication
// cost.
type TinyDB struct {
	n   int
	top *network.Topology // nil → unit cost per reported value
}

var _ Scheme = (*TinyDB)(nil)

// NewTinyDB builds the baseline over n attributes; top may be nil for
// topology-independent accounting (one cost unit per value).
func NewTinyDB(n int, top *network.Topology) (*TinyDB, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: TinyDB needs n >= 1, got %d", n)
	}
	if top != nil && top.N() != n {
		return nil, fmt.Errorf("core: topology has %d nodes, scheme has %d", top.N(), n)
	}
	return &TinyDB{n: n, top: top}, nil
}

// Name implements Scheme.
func (s *TinyDB) Name() string { return "TinyDB" }

// Dim implements Scheme.
func (s *TinyDB) Dim() int { return s.n }

// Step implements Scheme.
func (s *TinyDB) Step(truth []float64) ([]float64, StepStats, error) {
	if len(truth) != s.n {
		return nil, StepStats{}, fmt.Errorf("core: truth dim %d, want %d", len(truth), s.n)
	}
	est := make([]float64, s.n)
	copy(est, truth)
	st := StepStats{ValuesReported: s.n, Reported: make([]int, s.n)}
	for i := 0; i < s.n; i++ {
		st.Reported[i] = i
	}
	st.Bytes = obs.WireBytesPerValue * s.n
	if s.top == nil {
		st.SinkCost = float64(s.n)
	} else {
		for i := 0; i < s.n; i++ {
			st.SinkCost += s.top.CommToBase(i)
		}
	}
	return est, st, nil
}

// Cache is Approximate Caching (Olston et al., §5.2): source and sink both
// remember the last reported reading; a node reports only when the current
// reading drifts more than ε from the cached one. In modelling terms it is
// a degenerate Markov model with no dynamics.
type Cache struct {
	n      int
	eps    []float64
	cached []float64
	primed bool
	top    *network.Topology
}

var _ Scheme = (*Cache)(nil)

// NewCache builds an approximate-caching scheme with the given reporting
// thresholds (set to match Ken's ε, as in the paper). top may be nil.
func NewCache(eps []float64, top *network.Topology) (*Cache, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("core: Cache needs at least one attribute")
	}
	for i, e := range eps {
		if e <= 0 {
			return nil, fmt.Errorf("core: non-positive epsilon %v for attribute %d", e, i)
		}
	}
	if top != nil && top.N() != len(eps) {
		return nil, fmt.Errorf("core: topology has %d nodes, scheme has %d", top.N(), len(eps))
	}
	return &Cache{
		n:      len(eps),
		eps:    append([]float64(nil), eps...),
		cached: make([]float64, len(eps)),
		top:    top,
	}, nil
}

// Name implements Scheme.
func (s *Cache) Name() string { return "ApC" }

// Dim implements Scheme.
func (s *Cache) Dim() int { return s.n }

// Step implements Scheme. The first step reports everything to prime the
// caches.
func (s *Cache) Step(truth []float64) ([]float64, StepStats, error) {
	if len(truth) != s.n {
		return nil, StepStats{}, fmt.Errorf("core: truth dim %d, want %d", len(truth), s.n)
	}
	var st StepStats
	for i, v := range truth {
		d := v - s.cached[i]
		if !s.primed || d > s.eps[i] || d < -s.eps[i] {
			s.cached[i] = v
			st.ValuesReported++
			st.Reported = append(st.Reported, i)
			if s.top == nil {
				st.SinkCost++
			} else {
				st.SinkCost += s.top.CommToBase(i)
			}
		}
	}
	s.primed = true
	st.Bytes = obs.WireBytesPerValue * st.ValuesReported
	est := make([]float64, s.n)
	copy(est, s.cached)
	return est, st, nil
}
