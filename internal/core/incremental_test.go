package core

import (
	"context"
	"sort"
	"testing"

	"ken/internal/model"
)

// scratchModel hides model.IncrementalConditioner so the greedy report
// search runs on the from-scratch MeanGiven reference path, while keeping
// MeanWriter visible so the suppressed-epoch fast path stays identical.
type scratchModel struct{ model.Model }

func (s scratchModel) MeanInto(dst []float64) error {
	return s.Model.(model.MeanWriter).MeanInto(dst)
}

func (s scratchModel) Clone() model.Model { return scratchModel{s.Model.Clone()} }

// A full Ken replay must make identical per-epoch report decisions and
// produce bitwise-identical sink answers whether or not the incremental
// conditioning evaluator engages: the evaluator is a source-side search
// accelerator, never a semantics change. This is the scheme-level version
// of model.TestChooseReportGreedyIncrementalMatchesScratch.
func TestKenIncrementalSearchMatchesScratch(t *testing.T) {
	const n = 6
	train, test, _ := gardenData(t, n, 100, 60)
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.3
	}
	fitCfg := model.FitConfig{Period: 24}
	fast, err := NewKen(KenConfig{
		Partition: pairPartition(n),
		Train:     train,
		Eps:       eps,
		FitCfg:    fitCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewKen(KenConfig{
		Partition: pairPartition(n),
		Train:     train,
		Eps:       eps,
		ModelFactory: func(cols [][]float64) (model.Model, error) {
			m, err := model.FitLinearGaussian(cols, fitCfg)
			if err != nil {
				return nil, err
			}
			return scratchModel{m}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reportedEpochs := 0
	for step, truth := range test {
		fe, fs, err := fast.Step(truth)
		if err != nil {
			t.Fatal(err)
		}
		se, ss, err := slow.Step(truth)
		if err != nil {
			t.Fatal(err)
		}
		if fs.ValuesReported != ss.ValuesReported {
			t.Fatalf("step %d: incremental reported %d values, scratch %d", step, fs.ValuesReported, ss.ValuesReported)
		}
		fr := append([]int(nil), fs.Reported...)
		sr := append([]int(nil), ss.Reported...)
		sort.Ints(fr)
		sort.Ints(sr)
		for i := range fr {
			if fr[i] != sr[i] {
				t.Fatalf("step %d: incremental reported %v, scratch %v", step, fr, sr)
			}
		}
		for i := range fe {
			if fe[i] != se[i] {
				t.Fatalf("step %d: sink answers diverge at attribute %d: %v vs %v", step, i, fe[i], se[i])
			}
		}
		if fs.ValuesReported > 0 {
			reportedEpochs++
		}
	}
	if reportedEpochs == 0 {
		t.Fatal("no epoch reported — the search was never exercised; tighten eps")
	}
}

// The incremental evaluator must not cost the ε guarantee: a standard Run
// over the same replay keeps zero bound violations.
func TestKenIncrementalGuaranteeHolds(t *testing.T) {
	const n = 6
	train, test, eps := gardenData(t, n, 100, 60)
	s, err := NewKen(KenConfig{
		Partition: pairPartition(n),
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Fatalf("bound violations %d with the incremental search engaged", res.BoundViolations)
	}
}
