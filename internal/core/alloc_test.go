package core

import (
	"testing"

	"ken/internal/alloctest"
	"ken/internal/model"
)

// TestAllocBudgetKenReplay pins a suppressed Ken epoch — the steady state
// the paper's savings come from — at zero heap allocations: prediction,
// bound check and sink update all run against per-clique scratch. Bounds
// far wider than the signal make every epoch suppress deterministically.
func TestAllocBudgetKenReplay(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	train, test, _ := gardenData(t, 4, 100, 10)
	eps := []float64{100, 100, 100, 100}
	s, err := NewKen(KenConfig{
		Partition: pairPartition(4),
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := test[0]
	if got := testing.AllocsPerRun(100, func() {
		_, st, err := s.Step(row)
		if err != nil {
			t.Fatal(err)
		}
		if st.ValuesReported != 0 {
			t.Fatal("epoch reported despite wide bounds — budget premise broken")
		}
	}); got != 0 {
		t.Errorf("suppressed Ken epoch: %v allocs/op, budget 0", got)
	}
}
