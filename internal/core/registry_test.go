package core

import (
	"context"
	"strings"
	"testing"

	"ken/internal/cliques"
	"ken/internal/mc"
	"ken/internal/model"
)

func registrySpec(t *testing.T) SchemeSpec {
	t.Helper()
	train, _, eps := gardenData(t, 4, 100, 50)
	return SchemeSpec{
		Train:  train,
		Eps:    eps,
		FitCfg: model.FitConfig{Period: 24},
		MC:     mc.Config{Trajectories: 2, Horizon: 12, Seed: 1},
	}
}

func TestBuildResolvesEveryBuiltin(t *testing.T) {
	spec := registrySpec(t)
	for _, tc := range []struct {
		scheme string
		name   string
	}{
		{"TinyDB", "TinyDB"},
		{"tinydb", "TinyDB"},
		{"ApproxCache", "ApC"},
		{"apc", "ApC"},
		{"Average", "Avg"},
		{"avg", "Avg"},
		{"DjC2", "DjC2"},
		{"djc2", "DjC2"},
	} {
		s := spec
		s.Scheme = tc.scheme
		got, err := Build(s)
		if err != nil {
			t.Fatalf("Build(%q): %v", tc.scheme, err)
		}
		if got.Name() != tc.name {
			t.Fatalf("Build(%q).Name() = %q, want %q", tc.scheme, got.Name(), tc.name)
		}
		if got.Dim() != 4 {
			t.Fatalf("Build(%q).Dim() = %d", tc.scheme, got.Dim())
		}
	}
}

func TestBuildKenSelectsPartition(t *testing.T) {
	spec := registrySpec(t)
	spec.Scheme = "ken"
	spec.K = 2
	s, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ken, ok := s.(*Ken)
	if !ok {
		t.Fatalf("Build(ken) returned %T", s)
	}
	p := ken.Partition()
	if p == nil {
		t.Fatal("no partition recorded")
	}
	if p.MaxCliqueSize() > 2 {
		t.Fatalf("max clique %d exceeds K=2", p.MaxCliqueSize())
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestBuildKenHonoursFixedPartition(t *testing.T) {
	spec := registrySpec(t)
	spec.Scheme = "Ken"
	spec.Partition = &cliques.Partition{Cliques: []cliques.Clique{
		{Members: []int{0, 1}, Root: 0},
		{Members: []int{2, 3}, Root: 2},
	}}
	s, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.(*Ken).Partition() != spec.Partition {
		t.Fatal("fixed partition was replaced")
	}
}

func TestBuildKenLossyWrap(t *testing.T) {
	spec := registrySpec(t)
	spec.Scheme = "DjC1"
	spec.Lossy = &LossyConfig{LossRate: 0.1, HeartbeatEvery: 10, Seed: 3}
	s, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*LossyKen); !ok {
		t.Fatalf("Build with Lossy returned %T", s)
	}
	if !strings.HasSuffix(s.Name(), "-lossy") {
		t.Fatalf("name %q missing lossy suffix", s.Name())
	}
}

func TestBuildUnknownScheme(t *testing.T) {
	_, err := Build(SchemeSpec{Scheme: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildKenNeedsPartitionOrK(t *testing.T) {
	spec := registrySpec(t)
	spec.Scheme = "ken"
	if _, err := Build(spec); err == nil {
		t.Fatal("expected error without Partition or K")
	}
}

func TestRunContextCancellation(t *testing.T) {
	s, err := NewTinyDB(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	test := [][]float64{{1, 2}, {3, 4}}
	if _, err := Run(ctx, s, test, RunOptions{}); !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want context cancellation", err)
	}
	// A nil context runs fine.
	res, err := Run(nil, s, test, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2 {
		t.Fatalf("steps = %d", res.Steps)
	}
}
