package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
)

// ProbConfig enables probabilistic reporting (§6 "Probabilistic
// Reporting"): the hard ε step function is relaxed so that small violations
// are only reported with a probability that grows with the violation ratio,
// p = 1 − exp(−Steepness·(ratio − 1)) for ratio = |error|/ε > 1. This
// trades the deterministic guarantee for further communication savings —
// gross violations are still reported almost surely, so errors stay
// stochastically bounded. Run's audit then counts bound violations instead
// of forbidding them.
type ProbConfig struct {
	// Steepness controls how fast the report probability rises past the
	// bound. Large values approach the deterministic step function.
	Steepness float64
	// Seed drives the reporting coin flips.
	Seed int64
}

// KenConfig assembles a Ken Disjoint-Cliques collection scheme.
type KenConfig struct {
	// Name labels the scheme in results; empty derives "DjCk" from the
	// partition's maximum clique size.
	Name string
	// Partition assigns attributes to cliques with chosen roots (the M
	// estimates inside are not used at runtime — real reports are counted).
	Partition *cliques.Partition
	// Train is the full training matrix used to fit one model per clique.
	Train [][]float64
	// Eps are the per-attribute error bounds.
	Eps []float64
	// FitCfg controls per-clique model learning (used by the default
	// LinearGaussian factory).
	FitCfg model.FitConfig
	// ModelFactory, when non-nil, builds each clique's model from its
	// training columns instead of the default FitLinearGaussian — the hook
	// that runs richer model families (model.Switching, model.Adaptive)
	// inside the Disjoint-Cliques engine. The returned model must satisfy
	// the replicated determinism contract: clones stepped and conditioned
	// identically stay identical.
	ModelFactory func(train [][]float64) (model.Model, error)
	// Topology prices messages; nil gives topology-independent accounting
	// (zero intra cost, one unit per reported value).
	Topology *network.Topology
	// Exhaustive switches the minimal-report search from the greedy
	// heuristic to exact subset enumeration (ablation).
	Exhaustive bool
	// Prob, when non-nil, enables probabilistic reporting.
	Prob *ProbConfig
	// Obs, when non-nil, attaches metrics and protocol event tracing.
	// With a nil observer the instrumented step path costs nothing beyond
	// nil checks (see package obs).
	Obs *obs.Observer
}

// kenClique is one clique's runtime state: the two replicated models.
type kenClique struct {
	members []int // global attribute indices, sorted
	root    int
	src     model.Model
	sink    model.Model
	eps     []float64 // clique-local bounds
	intra   float64   // per-step collection cost at the root

	// srcW/sinkW are the models' allocation-free mean writers, nil when a
	// model family does not provide one; local and meanBuf are per-clique
	// step scratch, reused across epochs.
	srcW    model.MeanWriter
	sinkW   model.MeanWriter
	local   []float64
	meanBuf []float64
}

// Ken is the paper's architecture: replicated dynamic probabilistic models
// per clique, with the source transmitting minimal value subsets on
// prediction misses (§3.2).
type Ken struct {
	name       string
	n          int
	part       *cliques.Partition
	cliques    []kenClique
	top        *network.Topology
	exhaustive bool
	prob       *ProbConfig
	rng        *rand.Rand
	estBuf     []float64 // Step's returned estimate vector, reused across epochs

	// Observability handles, resolved once in NewKen; all nil (and
	// therefore no-ops) when KenConfig.Obs is unset.
	tracer        *obs.Tracer
	span          *obs.Span // current epoch span, set by Run via BeginEpoch
	stepN         int64
	mValues       *obs.Counter // ken_values_reported_total
	mSuppressed   *obs.Counter // ken_values_suppressed_total
	mReportMsgs   *obs.Counter // ken_report_messages_total
	mProbFlips    *obs.Counter // ken_prob_flips_total
	mProbSuppress *obs.Counter // ken_prob_suppressed_total
	mStepSeconds  *obs.Timer   // ken_step_seconds
	mHeartbeats   *obs.Counter // ken_heartbeats_total (lossy wrapper)
	mLostReports  *obs.Counter // ken_lost_reports_total (lossy wrapper)
	stepObserved  bool         // true when mStepSeconds is live
}

var _ Scheme = (*Ken)(nil)

// NewKen fits per-clique models on the training data and wires up the
// replicated source/sink pairs.
func NewKen(cfg KenConfig) (*Ken, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("core: KenConfig needs a partition")
	}
	if len(cfg.Train) == 0 {
		return nil, fmt.Errorf("core: KenConfig needs training data")
	}
	n := len(cfg.Train[0])
	if len(cfg.Eps) != n {
		return nil, fmt.Errorf("core: eps dim %d, training dim %d", len(cfg.Eps), n)
	}
	if err := cfg.Partition.Validate(n); err != nil {
		return nil, err
	}
	if cfg.Topology != nil && cfg.Topology.N() != n {
		return nil, fmt.Errorf("core: topology has %d nodes, data has %d", cfg.Topology.N(), n)
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("DjC%d", cfg.Partition.MaxCliqueSize())
	}
	k := &Ken{
		name:       name,
		n:          n,
		part:       cfg.Partition,
		top:        cfg.Topology,
		exhaustive: cfg.Exhaustive,
		prob:       cfg.Prob,
	}
	k.tracer = cfg.Obs.Tracer()
	reg := cfg.Obs.Registry()
	k.mValues = reg.Counter("ken_values_reported_total")
	k.mSuppressed = reg.Counter("ken_values_suppressed_total")
	k.mReportMsgs = reg.Counter("ken_report_messages_total")
	k.mProbFlips = reg.Counter("ken_prob_flips_total")
	k.mProbSuppress = reg.Counter("ken_prob_suppressed_total")
	k.mHeartbeats = reg.Counter("ken_heartbeats_total")
	k.mLostReports = reg.Counter("ken_lost_reports_total")
	k.mStepSeconds = reg.Timer("ken_step_seconds")
	k.stepObserved = reg != nil
	if cfg.Prob != nil {
		if cfg.Prob.Steepness <= 0 {
			return nil, fmt.Errorf("core: probabilistic reporting needs positive steepness, got %v", cfg.Prob.Steepness)
		}
		k.rng = rand.New(rand.NewSource(cfg.Prob.Seed))
	}
	factory := cfg.ModelFactory
	if factory == nil {
		factory = func(train [][]float64) (model.Model, error) {
			return model.FitLinearGaussian(train, cfg.FitCfg)
		}
	}
	for _, c := range cfg.Partition.Cliques {
		cols := projectColumns(cfg.Train, c.Members)
		mdl, err := factory(cols)
		if err != nil {
			return nil, fmt.Errorf("core: fitting clique %v: %w", c.Members, err)
		}
		if mdl == nil || mdl.Dim() != len(c.Members) {
			return nil, fmt.Errorf("core: model factory returned wrong dimension for clique %v", c.Members)
		}
		eps := make([]float64, len(c.Members))
		for i, g := range c.Members {
			if cfg.Eps[g] <= 0 {
				return nil, fmt.Errorf("core: non-positive epsilon %v for attribute %d", cfg.Eps[g], g)
			}
			eps[i] = cfg.Eps[g]
		}
		intra := 0.0
		if cfg.Topology != nil {
			for _, g := range c.Members {
				intra += cfg.Topology.Comm(g, c.Root)
			}
		}
		src := mdl.Clone()
		sink := mdl.Clone()
		srcW, _ := src.(model.MeanWriter)
		sinkW, _ := sink.(model.MeanWriter)
		k.cliques = append(k.cliques, kenClique{
			members: append([]int(nil), c.Members...),
			root:    c.Root,
			src:     src,
			sink:    sink,
			eps:     eps,
			intra:   intra,
			srcW:    srcW,
			sinkW:   sinkW,
			local:   make([]float64, len(c.Members)),
			meanBuf: make([]float64, len(c.Members)),
		})
	}
	k.estBuf = make([]float64, n)
	return k, nil
}

// projectColumns extracts the member columns of the full matrix.
func projectColumns(rows [][]float64, members []int) [][]float64 {
	out := make([][]float64, len(rows))
	for t, row := range rows {
		r := make([]float64, len(members))
		for i, g := range members {
			r[i] = row[g]
		}
		out[t] = r
	}
	return out
}

// Name implements Scheme.
func (k *Ken) Name() string { return k.name }

// Dim implements Scheme.
func (k *Ken) Dim() int { return k.n }

// Partition returns the Disjoint-Cliques partition the scheme runs on
// (read-only; useful for reporting which cliques Build selected).
func (k *Ken) Partition() *cliques.Partition { return k.part }

// BeginEpoch implements EpochScoped: report/suppress/apply events of the
// next Step nest under the replay driver's epoch span.
func (k *Ken) BeginEpoch(sp *obs.Span) { k.span = sp }

// Step implements Scheme: for every clique, advance both replicas, let the
// source choose the minimal report set, deliver it, and read the sink's
// answer (§3.2). On models implementing model.IncrementalConditioner
// (LinearGaussian does), the greedy report search runs against the model's
// cached incremental conditioning evaluator — O(m²) per search round via a
// growing Cholesky factor instead of a from-scratch refactorization — with
// transparent fallback to the reference MeanGiven path when the cache goes
// stale or a pivot degenerates. The evaluator is source-side and read-only,
// so sink replicas transition identically whether or not it engages.
//
// The returned estimate slice is reused across calls — callers that retain
// it past the next Step must copy (Run does). A fully-suppressed epoch on
// MeanWriter models with tracing off runs allocation-free; see
// TestAllocBudgetKenReplay.
//
//ken:hotpath the per-epoch replay loop; suppressed epochs allocate nothing
func (k *Ken) Step(truth []float64) ([]float64, StepStats, error) {
	if len(truth) != k.n {
		return nil, StepStats{}, fmt.Errorf("core: truth dim %d, want %d", len(truth), k.n)
	}
	var start time.Time
	if k.stepObserved {
		start = time.Now()
	}
	est := k.estBuf
	var st StepStats
	for ci := range k.cliques {
		c := &k.cliques[ci]
		local := c.local
		for i, g := range c.members {
			local[i] = truth[g]
		}
		c.src.Step()
		c.sink.Step()

		// Capture the sink replica's prediction before conditioning — the
		// "what the sink would have believed" side of the audit triple.
		var pred []float64
		if k.tracer != nil {
			//lint:ignore hotalloc tracing epochs capture the pre-conditioning prediction; the untraced path never reaches this
			pred = append([]float64(nil), c.sink.Mean()...)
		}

		// Fast path: when the source prediction already satisfies every
		// bound, all report policies return the empty set — greedy and
		// exhaustive accept the empty subset, probabilistic flips no coin
		// (so the rng stream is untouched) — and the policy search with its
		// allocations can be skipped. Exhaustive keeps its dimension guard:
		// oversized cliques must keep failing deterministically.
		var rep map[int]float64
		fast := c.srcW != nil && !(k.exhaustive && len(c.members) > 20) &&
			c.srcW.MeanInto(c.meanBuf) == nil &&
			model.WithinBounds(c.meanBuf, local, c.eps)
		if !fast {
			var err error
			rep, err = k.chooseReport(c, local)
			if err != nil {
				return nil, StepStats{}, err
			}
		}
		if err := c.src.Condition(rep); err != nil {
			return nil, StepStats{}, err
		}
		if err := c.sink.Condition(rep); err != nil {
			return nil, StepStats{}, err
		}

		st.ValuesReported += len(rep)
		for i := range rep {
			//lint:ignore hotalloc report epochs accumulate the reported-attribute list; suppressed epochs never enter this loop
			st.Reported = append(st.Reported, c.members[i])
		}
		st.IntraCost += c.intra
		st.Bytes += obs.WireBytesPerValue * len(rep)
		if k.top == nil {
			st.SinkCost += float64(len(rep))
		} else {
			st.SinkCost += float64(len(rep)) * k.top.CommToBase(c.root)
		}
		//lint:ignore hotalloc counter increments are allocation-free; the allocating trace branch inside is guarded by tracer == nil
		k.observeClique(ci, c, rep, rep, pred)
		if c.sinkW != nil && c.sinkW.MeanInto(c.meanBuf) == nil {
			for i, g := range c.members {
				est[g] = c.meanBuf[i]
			}
		} else {
			mean := c.sink.Mean()
			for i, g := range c.members {
				est[g] = mean[i]
			}
		}
	}
	k.stepN++
	if k.stepObserved {
		k.mStepSeconds.Observe(time.Since(start))
	}
	return est, st, nil
}

// observeClique feeds one clique's report decision into the metrics and
// tracer. Counter handles are nil-safe; the trace branch, which allocates
// the attr and payload slices, is guarded so the unobserved path allocates
// nothing. pred is the sink replica's prediction captured before
// conditioning; delivered is the subset of reported that actually reached
// the sink (identical to reported in the lossless scheme, possibly smaller
// under the lossy wrapper). When a replay epoch span is active the report
// becomes a child span and the sink apply its grandchild, giving the
// auditor the report → apply causal chain; otherwise events are emitted
// unspanned as before. The report span (nil when no report went out or no
// epoch span is active) is returned so callers can parent loss events to it.
func (k *Ken) observeClique(ci int, c *kenClique, reported, delivered map[int]float64, pred []float64) *obs.Span {
	k.mValues.Add(int64(len(reported)))
	k.mSuppressed.Add(int64(len(c.members) - len(reported)))
	if len(reported) > 0 {
		k.mReportMsgs.Inc()
	}
	if k.tracer == nil {
		return nil
	}
	var rs *obs.Span
	if len(reported) > 0 {
		attrs := make([]int, 0, len(reported))
		values := make([]float64, 0, len(reported))
		epsR := make([]float64, 0, len(reported))
		var preds []float64
		if pred != nil {
			preds = make([]float64, 0, len(reported))
		}
		for _, i := range sortedReportKeys(reported) {
			attrs = append(attrs, c.members[i])
			values = append(values, reported[i])
			epsR = append(epsR, c.eps[i])
			if pred != nil {
				preds = append(preds, pred[i])
			}
		}
		ev := obs.Event{
			Type: obs.EvReport, Step: k.stepN, Clique: ci, Node: c.root,
			Attrs: attrs, Values: values,
			Payload: &obs.Payload{
				Predicted: preds, Observed: values, Eps: epsR,
				Bytes: obs.WireBytesPerValue * len(attrs),
			},
		}
		if k.span.Active() {
			rs = k.span.Child()
			rs.Emit(ev)
		} else {
			k.tracer.Emit(ev)
		}
	}
	if len(reported) < len(c.members) {
		supp := make([]int, 0, len(c.members)-len(reported))
		for i, g := range c.members {
			if _, ok := reported[i]; !ok {
				supp = append(supp, g)
			}
		}
		ev := obs.Event{
			Type: obs.EvSuppress, Step: k.stepN, Clique: ci, Node: c.root,
			Attrs: supp,
		}
		if k.span.Active() {
			k.span.Emit(ev)
		} else {
			k.tracer.Emit(ev)
		}
	}
	if len(delivered) > 0 {
		attrs := make([]int, 0, len(delivered))
		values := make([]float64, 0, len(delivered))
		for _, i := range sortedReportKeys(delivered) {
			attrs = append(attrs, c.members[i])
			values = append(values, delivered[i])
		}
		ev := obs.Event{
			Type: obs.EvApply, Step: k.stepN, Clique: ci, Node: -1,
			Attrs: attrs, Values: values, N: len(attrs),
		}
		if rs.Active() {
			rs.Child().Emit(ev)
		} else {
			k.tracer.Emit(ev)
		}
	}
	return rs
}

// emitResync traces a heartbeat re-synchronisation (lossy wrapper).
func (k *Ken) emitResync(step int64) {
	if k.tracer == nil {
		return
	}
	ev := obs.Event{Type: obs.EvResync, Step: step, Clique: -1, Node: -1}
	if k.span.Active() {
		k.span.Emit(ev)
	} else {
		k.tracer.Emit(ev)
	}
}

// sortedReportKeys iterates a report set deterministically for tracing.
func sortedReportKeys(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// chooseReport runs the configured report-set policy on the source model.
// The greedy default engages the model's incremental conditioning
// evaluator when available (see model.ChooseReportGreedy); the exhaustive
// and probabilistic policies use the reference paths.
func (k *Ken) chooseReport(c *kenClique, local []float64) (map[int]float64, error) {
	if k.prob != nil {
		return k.chooseProbabilistic(c, local)
	}
	if k.exhaustive {
		return model.ChooseReportExhaustive(c.src, local, c.eps)
	}
	return model.ChooseReportGreedy(c.src, local, c.eps)
}

// chooseProbabilistic implements §6's relaxed step function: attributes
// within bounds are never reported; violating attributes flip a coin whose
// success probability rises with the violation ratio, so small overshoots
// are sometimes suppressed while gross ones almost always go out.
func (k *Ken) chooseProbabilistic(c *kenClique, local []float64) (map[int]float64, error) {
	mean := c.src.Mean()
	obs := map[int]float64{}
	for i := range local {
		ratio := math.Abs(mean[i]-local[i]) / c.eps[i]
		if ratio <= 1 {
			continue
		}
		p := 1 - math.Exp(-k.prob.Steepness*(ratio-1))
		k.mProbFlips.Inc()
		if k.rng.Float64() < p {
			obs[i] = local[i]
		} else {
			// A bound violation survived the coin flip unreported — the
			// stochastic relaxation §6 trades for extra savings.
			k.mProbSuppress.Inc()
		}
	}
	return obs, nil
}
