package core

import (
	"context"
	"testing"

	"ken/internal/model"
	"ken/internal/obs"
	"ken/internal/trace"
)

// labData returns (train, test, eps) temperature matrices for the first n
// Lab nodes, seeded so the run is reproducible.
func labData(t testing.TB, n, trainSteps, testSteps int) (train, test [][]float64, eps []float64) {
	t.Helper()
	tr, err := trace.GenerateLab(42, trainSteps+testSteps)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	all := make([][]float64, len(rows))
	for i, r := range rows {
		all[i] = r[:n]
	}
	eps = make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	return all[:trainSteps], all[trainSteps:], eps
}

// checkAccounting enforces the Result bookkeeping invariants that every
// consumer (bench tables, event detection, FractionReported) relies on:
//
//   - per-step slices all have Steps entries,
//   - ValuesReported equals the PerStepReported sum,
//   - each step's count equals the number of attribute indices it lists,
//   - listed indices are in-range and unique within a step,
//   - ReportCounts redistributes exactly ValuesReported.
func checkAccounting(t *testing.T, res *Result) {
	t.Helper()
	if len(res.PerStepReported) != res.Steps {
		t.Fatalf("%s: PerStepReported has %d entries, want %d", res.Scheme, len(res.PerStepReported), res.Steps)
	}
	if len(res.ReportedAttrs) != res.Steps {
		t.Fatalf("%s: ReportedAttrs has %d entries, want %d", res.Scheme, len(res.ReportedAttrs), res.Steps)
	}
	if len(res.Estimates) != res.Steps {
		t.Fatalf("%s: Estimates has %d entries, want %d", res.Scheme, len(res.Estimates), res.Steps)
	}
	sum := 0
	for t2, c := range res.PerStepReported {
		sum += c
		if got := len(res.ReportedAttrs[t2]); got != c {
			t.Fatalf("%s: step %d reports %d values but lists %d attrs", res.Scheme, t2, c, got)
		}
		seen := map[int]bool{}
		for _, a := range res.ReportedAttrs[t2] {
			if a < 0 || a >= res.Dim {
				t.Fatalf("%s: step %d reported attr %d out of range [0,%d)", res.Scheme, t2, a, res.Dim)
			}
			if seen[a] {
				t.Fatalf("%s: step %d reports attr %d twice", res.Scheme, t2, a)
			}
			seen[a] = true
		}
	}
	if sum != res.ValuesReported {
		t.Fatalf("%s: ValuesReported=%d but PerStepReported sums to %d", res.Scheme, res.ValuesReported, sum)
	}
	counts := res.ReportCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != res.ValuesReported {
		t.Fatalf("%s: ReportCounts sums to %d, want ValuesReported=%d", res.Scheme, total, res.ValuesReported)
	}
}

// TestAccountingConsistencyAcrossSchemes replays every scheme over the same
// seeded Lab window and cross-checks the three report tallies (ValuesReported,
// PerStepReported, ReportedAttrs) against one another.
func TestAccountingConsistencyAcrossSchemes(t *testing.T) {
	const n, trainN, testN = 6, 100, 150
	train, test, eps := labData(t, n, trainN, testN)

	schemes := []struct {
		name  string
		build func() (Scheme, error)
	}{
		{"tinydb", func() (Scheme, error) { return NewTinyDB(n, nil) }},
		{"cache", func() (Scheme, error) { return NewCache(eps, nil) }},
		{"average", func() (Scheme, error) {
			return NewAverage(train, eps, model.FitConfig{Period: 24}, nil)
		}},
		{"djc1", func() (Scheme, error) {
			return NewKen(KenConfig{Partition: singletonPartition(n), Train: train, Eps: eps,
				FitCfg: model.FitConfig{Period: 24}})
		}},
		{"djc2", func() (Scheme, error) {
			return NewKen(KenConfig{Partition: pairPartition(n), Train: train, Eps: eps,
				FitCfg: model.FitConfig{Period: 24}})
		}},
		{"djc2-prob", func() (Scheme, error) {
			return NewKen(KenConfig{Partition: pairPartition(n), Train: train, Eps: eps,
				FitCfg: model.FitConfig{Period: 24}, Prob: &ProbConfig{Steepness: 2, Seed: 9}})
		}},
		{"djc2-lossy", func() (Scheme, error) {
			return NewLossyKen(
				KenConfig{Partition: pairPartition(n), Train: train, Eps: eps,
					FitCfg: model.FitConfig{Period: 24}},
				LossyConfig{LossRate: 0.2, HeartbeatEvery: 24, Seed: 9})
		}},
	}
	for _, sc := range schemes {
		t.Run(sc.name, func(t *testing.T) {
			s, err := sc.build()
			if err != nil {
				t.Fatal(err)
			}
			// Probabilistic and lossy variants may legitimately violate ε,
			// so audit without bounds there (nil eps) — the accounting
			// invariants must hold either way.
			auditEps := eps
			if sc.name == "djc2-prob" || sc.name == "djc2-lossy" {
				auditEps = nil
			}
			res, err := Run(context.Background(), s, test, RunOptions{Eps: auditEps})
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps != testN || res.Dim != n {
				t.Fatalf("res has Steps=%d Dim=%d, want %d/%d", res.Steps, res.Dim, testN, n)
			}
			checkAccounting(t, res)
		})
	}
}

// TestRunObserverMetricsMatchResult runs an observed Lab replay and checks
// that the live metrics the registry exports agree exactly with the Result
// totals — the guarantee that a /metrics scrape and a bench table never tell
// different stories.
func TestRunObserverMetricsMatchResult(t *testing.T) {
	const n, trainN, testN = 4, 100, 120
	train, test, eps := labData(t, n, trainN, testN)

	reg := obs.NewRegistry()
	ob := &obs.Observer{Reg: reg}
	s, err := NewKen(KenConfig{Partition: pairPartition(n), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24}, Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps, Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, res)

	if got := reg.Counter("ken_epochs_total").Value(); got != int64(res.Steps) {
		t.Errorf("ken_epochs_total=%d, want %d", got, res.Steps)
	}
	if got := reg.Counter("ken_run_values_reported_total").Value(); got != int64(res.ValuesReported) {
		t.Errorf("ken_run_values_reported_total=%d, want %d", got, res.ValuesReported)
	}
	// The scheme-side counter must agree with the run-side one.
	if got := reg.Counter("ken_values_reported_total").Value(); got != int64(res.ValuesReported) {
		t.Errorf("ken_values_reported_total=%d, want %d", got, res.ValuesReported)
	}
	// Every reading is either reported or suppressed.
	suppressed := reg.Counter("ken_values_suppressed_total").Value()
	if total := int64(res.Steps*res.Dim) - int64(res.ValuesReported); suppressed != total {
		t.Errorf("ken_values_suppressed_total=%d, want %d", suppressed, total)
	}
	if got := reg.Counter("ken_epsilon_violations_total").Value(); got != int64(res.BoundViolations) {
		t.Errorf("ken_epsilon_violations_total=%d, want %d", got, res.BoundViolations)
	}
	if got := reg.Gauge("ken_max_abs_error").Value(); got != res.MaxAbsError {
		t.Errorf("ken_max_abs_error=%v, want %v", got, res.MaxAbsError)
	}
}

// benchmarkKenStep measures the protocol step with and without an attached
// observer; the nil-obs variant documents the cost of the always-on
// instrumentation calls (nil checks only — see package obs).
func benchmarkKenStep(b *testing.B, ob *obs.Observer) {
	const n, trainN, testN = 6, 100, 200
	train, test, eps := labData(b, n, trainN, testN)
	s, err := NewKen(KenConfig{Partition: pairPartition(n), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24}, Obs: ob})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Step(test[i%len(test)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKenStepNoObserver(b *testing.B) { benchmarkKenStep(b, nil) }

func BenchmarkKenStepObserved(b *testing.B) {
	benchmarkKenStep(b, &obs.Observer{Reg: obs.NewRegistry()})
}
