package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/trace"
)

// gardenData returns (train, test, eps) temperature matrices for the first
// n garden nodes.
func gardenData(t *testing.T, n, trainSteps, testSteps int) (train, test [][]float64, eps []float64) {
	t.Helper()
	tr, err := trace.GenerateGarden(77, trainSteps+testSteps)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	cut := func(rows [][]float64) [][]float64 {
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = r[:n]
		}
		return out
	}
	all := cut(rows)
	eps = make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	return all[:trainSteps], all[trainSteps:], eps
}

// singletonPartition builds a DjC1 partition with self-roots.
func singletonPartition(n int) *cliques.Partition {
	p := &cliques.Partition{}
	for i := 0; i < n; i++ {
		p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
	}
	return p
}

// pairPartition builds adjacent pairs (n must be even), rooted at the first
// member.
func pairPartition(n int) *cliques.Partition {
	p := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
	}
	return p
}

func TestTinyDBExactAndFull(t *testing.T) {
	_, test, eps := gardenData(t, 4, 100, 50)
	s, err := NewTinyDB(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.FractionReported() != 1 {
		t.Fatalf("TinyDB reported %v, want 1", res.FractionReported())
	}
	if res.MaxAbsError != 0 {
		t.Fatalf("TinyDB error %v, want 0", res.MaxAbsError)
	}
	if res.BoundViolations != 0 {
		t.Fatalf("TinyDB violations %d", res.BoundViolations)
	}
}

func TestTinyDBTopologyCost(t *testing.T) {
	top, err := network.Uniform(3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewTinyDB(3, top)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := s.Step([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.SinkCost != 12 { // 3 nodes × cost 4
		t.Fatalf("sink cost %v, want 12", st.SinkCost)
	}
	if _, err := NewTinyDB(0, nil); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewTinyDB(5, top); err == nil {
		t.Fatal("expected error for topology size mismatch")
	}
}

func TestCacheGuaranteeAndSavings(t *testing.T) {
	_, test, eps := gardenData(t, 4, 100, 200)
	s, err := NewCache(eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Fatalf("cache violations %d", res.BoundViolations)
	}
	fr := res.FractionReported()
	if fr <= 0.05 || fr >= 1 {
		t.Fatalf("cache fraction reported %v out of plausible range", fr)
	}
}

func TestCacheFirstStepPrimes(t *testing.T) {
	s, err := NewCache([]float64{100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := s.Step([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if st.ValuesReported != 1 {
		t.Fatal("first step must prime the cache with a report")
	}
	_, st, err = s.Step([]float64{50.5})
	if err != nil {
		t.Fatal(err)
	}
	if st.ValuesReported != 0 {
		t.Fatal("within-threshold step should not report")
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache(nil, nil); err == nil {
		t.Fatal("expected error for no attributes")
	}
	if _, err := NewCache([]float64{0}, nil); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
}

func TestKenGuaranteeHolds(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 300)
	for _, part := range []*cliques.Partition{singletonPartition(4), pairPartition(4)} {
		s, err := NewKen(KenConfig{
			Partition: part,
			Train:     train,
			Eps:       eps,
			FitCfg:    model.FitConfig{Period: 24},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.BoundViolations != 0 {
			t.Fatalf("%s: %d bound violations — Ken's guarantee must be unconditional",
				s.Name(), res.BoundViolations)
		}
		if res.MaxAbsError > 0.5+1e-9 {
			t.Fatalf("%s: max error %v exceeds ε", s.Name(), res.MaxAbsError)
		}
		if res.FractionReported() >= 1 {
			t.Fatalf("%s: no savings at all", s.Name())
		}
	}
}

func TestKenSpatialCliquesReduceReports(t *testing.T) {
	train, test, eps := gardenData(t, 6, 100, 400)
	run := func(p *cliques.Partition) float64 {
		s, err := NewKen(KenConfig{
			Partition: p,
			Train:     train,
			Eps:       eps,
			FitCfg:    model.FitConfig{Period: 24},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.BoundViolations != 0 {
			t.Fatalf("violations in %s", s.Name())
		}
		return res.FractionReported()
	}
	single := run(singletonPartition(6))
	pairs := run(pairPartition(6))
	triple := run(&cliques.Partition{Cliques: []cliques.Clique{
		{Members: []int{0, 1, 2}, Root: 1},
		{Members: []int{3, 4, 5}, Root: 4},
	}})
	if pairs >= single {
		t.Fatalf("DjC2 (%v) should beat DjC1 (%v)", pairs, single)
	}
	if triple >= single {
		t.Fatalf("DjC3 (%v) should beat DjC1 (%v)", triple, single)
	}
}

func TestKenNameAndValidation(t *testing.T) {
	train, _, eps := gardenData(t, 2, 100, 10)
	s, err := NewKen(KenConfig{
		Partition: pairPartition(2),
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "DjC2" {
		t.Fatalf("name = %q", s.Name())
	}
	if _, err := NewKen(KenConfig{}); err == nil {
		t.Fatal("expected error for missing partition")
	}
	if _, err := NewKen(KenConfig{Partition: singletonPartition(2)}); err == nil {
		t.Fatal("expected error for missing training data")
	}
	if _, err := NewKen(KenConfig{Partition: singletonPartition(2), Train: train, Eps: []float64{1}}); err == nil {
		t.Fatal("expected error for eps mismatch")
	}
	if _, err := NewKen(KenConfig{Partition: singletonPartition(3), Train: train, Eps: eps}); err == nil {
		t.Fatal("expected error for partition/data mismatch")
	}
}

func TestKenTopologyAccounting(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 50)
	top, err := network.Uniform(4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewKen(KenConfig{
		Partition: pairPartition(4),
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
		Topology:  top,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	// Intra: each pair collects 1 member at the root each step → 2 cliques
	// × 1 × 50 steps = 100.
	if math.Abs(res.IntraCost-100) > 1e-9 {
		t.Fatalf("intra cost %v, want 100", res.IntraCost)
	}
	// Sink: every reported value crosses cost 5.
	if math.Abs(res.SinkCost-float64(res.ValuesReported)*5) > 1e-9 {
		t.Fatalf("sink cost %v for %d values", res.SinkCost, res.ValuesReported)
	}
}

func TestKenExhaustiveNoWorseThanGreedy(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 150)
	frac := func(exhaustive bool) float64 {
		s, err := NewKen(KenConfig{
			Partition:  pairPartition(4),
			Train:      train,
			Eps:        eps,
			FitCfg:     model.FitConfig{Period: 24},
			Exhaustive: exhaustive,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.BoundViolations != 0 {
			t.Fatal("guarantee violated")
		}
		return res.FractionReported()
	}
	g, e := frac(false), frac(true)
	// Exhaustive is per-step minimal, but trajectories diverge once a
	// different report changes the conditioned state, so cumulative totals
	// may differ slightly in either direction. They must stay close.
	if math.Abs(e-g) > 0.1*g {
		t.Fatalf("exhaustive (%v) and greedy (%v) subset search diverged badly", e, g)
	}
}

func TestKenProbabilisticReportsLessButViolates(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 300)
	det, err := NewKen(KenConfig{
		Partition: singletonPartition(4), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	detRes, err := Run(context.Background(), det, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewKen(KenConfig{
		Partition: singletonPartition(4), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
		Prob:   &ProbConfig{Steepness: 2, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	probRes, err := Run(context.Background(), prob, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	// The logistic policy suppresses some borderline reports...
	if probRes.FractionReported() >= detRes.FractionReported() {
		t.Fatalf("probabilistic (%v) should report less than deterministic (%v)",
			probRes.FractionReported(), detRes.FractionReported())
	}
	// ...at the price of occasional, bounded violations.
	if probRes.BoundViolations == 0 {
		t.Fatal("probabilistic reporting with steepness 2 should violate occasionally")
	}
	if probRes.MaxAbsError > 10*0.5 {
		t.Fatalf("probabilistic max error %v is unboundedly bad", probRes.MaxAbsError)
	}
	if _, err := NewKen(KenConfig{
		Partition: singletonPartition(4), Train: train, Eps: eps,
		Prob: &ProbConfig{Steepness: 0},
	}); err == nil {
		t.Fatal("expected error for zero steepness")
	}
}

func TestAverageGuaranteeAndBehaviour(t *testing.T) {
	train, test, eps := gardenData(t, 6, 100, 300)
	s, err := NewAverage(train, eps, model.FitConfig{Period: 24}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Fatalf("average model violations %d", res.BoundViolations)
	}
	if res.FractionReported() >= 1 {
		t.Fatal("average model gave no savings")
	}
	if s.Name() != "Avg" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestAverageAggregationCost(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 20)
	top, err := network.Uniform(4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewAverage(train, eps, model.FitConfig{Period: 24}, top)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform: each node's tree edge to the base costs 3; two sweeps per
	// step → 2×4×3 = 24 per step.
	if want := 24.0 * float64(res.Steps); math.Abs(res.IntraCost-want) > 1e-9 {
		t.Fatalf("aggregation cost %v, want %v", res.IntraCost, want)
	}
}

func TestAverageValidation(t *testing.T) {
	if _, err := NewAverage(nil, nil, model.FitConfig{}, nil); err == nil {
		t.Fatal("expected error for empty training data")
	}
	train, _, _ := gardenData(t, 2, 100, 10)
	if _, err := NewAverage(train, []float64{1}, model.FitConfig{}, nil); err == nil {
		t.Fatal("expected error for eps mismatch")
	}
	if _, err := NewAverage(train, []float64{1, 0}, model.FitConfig{}, nil); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
}

func TestRunValidation(t *testing.T) {
	s, err := NewTinyDB(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), s, nil, RunOptions{}); err == nil {
		t.Fatal("expected error for empty test data")
	}
	if _, err := Run(context.Background(), s, [][]float64{{1}}, RunOptions{}); err == nil {
		t.Fatal("expected error for row dim mismatch")
	}
	if _, err := Run(context.Background(), s, [][]float64{{1, 2}}, RunOptions{Eps: []float64{1}}); err == nil {
		t.Fatal("expected error for eps dim mismatch")
	}
}

func TestLossyKenDivergesAndHeartbeatsHeal(t *testing.T) {
	train, test, eps := gardenData(t, 4, 100, 400)
	base := KenConfig{
		Partition: pairPartition(4), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	}
	// Heavy loss, no heartbeats: violations accumulate.
	noHB, err := NewLossyKen(base, LossyConfig{LossRate: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resNoHB, err := Run(context.Background(), noHB, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if resNoHB.BoundViolations == 0 {
		t.Fatal("50% loss without heartbeats should violate bounds")
	}
	if noHB.LostMessages == 0 {
		t.Fatal("loss injector dropped nothing")
	}
	// Same loss with frequent heartbeats: strictly fewer violations.
	hb, err := NewLossyKen(base, LossyConfig{LossRate: 0.5, HeartbeatEvery: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resHB, err := Run(context.Background(), hb, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if hb.Heartbeats == 0 {
		t.Fatal("no heartbeats issued")
	}
	if resHB.BoundViolations >= resNoHB.BoundViolations {
		t.Fatalf("heartbeats did not reduce violations: %d vs %d",
			resHB.BoundViolations, resNoHB.BoundViolations)
	}
	// Zero loss: identical guarantee to plain Ken.
	clean, err := NewLossyKen(base, LossyConfig{LossRate: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := Run(context.Background(), clean, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if resClean.BoundViolations != 0 {
		t.Fatalf("lossless lossy-wrapper violated bounds %d times", resClean.BoundViolations)
	}
}

func TestLossyKenValidation(t *testing.T) {
	train, _, eps := gardenData(t, 2, 100, 10)
	base := KenConfig{Partition: singletonPartition(2), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24}}
	if _, err := NewLossyKen(base, LossyConfig{LossRate: 1}); err == nil {
		t.Fatal("expected error for loss rate 1")
	}
	if _, err := NewLossyKen(base, LossyConfig{HeartbeatEvery: -1}); err == nil {
		t.Fatal("expected error for negative heartbeat interval")
	}
	probCfg := base
	probCfg.Prob = &ProbConfig{Steepness: 1}
	if _, err := NewLossyKen(probCfg, LossyConfig{}); err == nil {
		t.Fatal("expected error combining probabilistic reporting with loss")
	}
}

func TestFailureDetector(t *testing.T) {
	d, err := NewFailureDetector(0.4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold for rate 0.4, alpha 0.01: floor(ln 0.01 / ln 0.6) + 1 = 10.
	if th := d.SilenceThreshold(); th != 10 {
		t.Fatalf("threshold = %d, want 10", th)
	}
	for i := 0; i < 9; i++ {
		if d.Observe(false) {
			t.Fatalf("suspected too early at silence %d", d.SilentSteps())
		}
	}
	if !d.Observe(false) {
		t.Fatal("should suspect after 10 silent steps")
	}
	if d.Observe(true) {
		t.Fatal("a report must clear suspicion")
	}
	if d.SilentSteps() != 0 {
		t.Fatal("report did not reset the silence run")
	}
	if _, err := NewFailureDetector(0, 0.01); err == nil {
		t.Fatal("expected error for rate 0")
	}
	if _, err := NewFailureDetector(0.5, 1); err == nil {
		t.Fatal("expected error for alpha 1")
	}
}

func TestKenAnomalyPushedImmediately(t *testing.T) {
	// Event-detection claim (§1.1): an anomalous reading is reported the
	// very step it happens, and the sink's estimate reflects it within ε.
	train, test, eps := gardenData(t, 4, 100, 100)
	s, err := NewKen(KenConfig{
		Partition: pairPartition(4), Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inject a 25-degree spike at step 50, node 2.
	test[50][2] += 25
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Fatal("guarantee violated")
	}
	if math.Abs(res.Estimates[50][2]-test[50][2]) > 0.5+1e-9 {
		t.Fatalf("anomaly not visible at sink: est %v truth %v",
			res.Estimates[50][2], test[50][2])
	}
	if res.PerStepReported[50] == 0 {
		t.Fatal("anomalous step sent no report")
	}
}

// TestQuickGuaranteeAcrossRandomConfigurations is the system-level
// property: for random seeds, partitions and bounds, deterministic Ken
// never violates ε.
func TestQuickGuaranteeAcrossRandomConfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		steps := 150 + r.Intn(100)
		tr, err := trace.GenerateGarden(seed, 100+steps)
		if err != nil {
			return false
		}
		rows, err := tr.Rows(trace.Temperature)
		if err != nil {
			return false
		}
		cut := make([][]float64, len(rows))
		for i, row := range rows {
			cut[i] = row[:n]
		}
		train, test := cut[:100], cut[100:]
		eps := make([]float64, n)
		for i := range eps {
			eps[i] = 0.2 + r.Float64()*1.5
		}
		// Random partition: shuffle and split into random-size blocks.
		perm := r.Perm(n)
		p := &cliques.Partition{}
		for i := 0; i < n; {
			size := 1 + r.Intn(3)
			if i+size > n {
				size = n - i
			}
			members := append([]int(nil), perm[i:i+size]...)
			p.Cliques = append(p.Cliques, cliques.Clique{Members: members, Root: members[0]})
			i += size
		}
		s, err := NewKen(KenConfig{
			Partition: p, Train: train, Eps: eps,
			FitCfg:     model.FitConfig{Period: 24},
			Exhaustive: r.Intn(2) == 0,
		})
		if err != nil {
			return false
		}
		res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
		if err != nil {
			return false
		}
		return res.BoundViolations == 0
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKenModelFactoryAdaptive(t *testing.T) {
	// Richer model families plug into the engine via ModelFactory; the
	// guarantee must survive.
	train, test, eps := gardenData(t, 4, 100, 250)
	s, err := NewKen(KenConfig{
		Partition: pairPartition(4),
		Train:     train,
		Eps:       eps,
		ModelFactory: func(cols [][]float64) (model.Model, error) {
			lg, err := model.FitLinearGaussian(cols, model.FitConfig{Period: 24})
			if err != nil {
				return nil, err
			}
			return model.NewAdaptive(lg, model.AdaptiveConfig{
				RefitEvery: 72, Window: 144, Fit: model.FitConfig{Period: 24}})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Fatalf("adaptive-model Ken violated ε %d times", res.BoundViolations)
	}
	if res.FractionReported() >= 1 {
		t.Fatal("no savings")
	}
}

func TestKenModelFactoryValidation(t *testing.T) {
	train, _, eps := gardenData(t, 2, 100, 10)
	if _, err := NewKen(KenConfig{
		Partition: pairPartition(2),
		Train:     train,
		Eps:       eps,
		ModelFactory: func(cols [][]float64) (model.Model, error) {
			// Wrong dimensionality: a 1-attribute model for a 2-clique.
			return model.NewConstant([]float64{0}, []float64{1})
		},
	}); err == nil {
		t.Fatal("expected error for wrong-dimension factory model")
	}
}

func TestKenModelFactoryLinearIsJainEtAl(t *testing.T) {
	// DjC1 with per-attribute Linear models is the single-node dual-model
	// scheme of Jain et al. (§2) — plugged in through the factory, the
	// guarantee still holds and savings remain substantial.
	train, test, eps := gardenData(t, 4, 100, 250)
	s, err := NewKen(KenConfig{
		Name:      "Jain-dual",
		Partition: singletonPartition(4),
		Train:     train,
		Eps:       eps,
		ModelFactory: func(cols [][]float64) (model.Model, error) {
			return model.FitLinear(cols)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Fatalf("linear-model Ken violated ε %d times", res.BoundViolations)
	}
	if fr := res.FractionReported(); fr >= 1 || fr <= 0.05 {
		t.Fatalf("implausible savings %v", fr)
	}
	if s.Name() != "Jain-dual" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestReportCountsSkewInCliques(t *testing.T) {
	train, test, eps := gardenData(t, 6, 100, 400)
	s, err := NewKen(KenConfig{
		Partition: &cliques.Partition{Cliques: []cliques.Clique{
			{Members: []int{0, 1, 2}, Root: 1},
			{Members: []int{3, 4, 5}, Root: 4},
		}},
		Train:  train,
		Eps:    eps,
		FitCfg: model.FitConfig{Period: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, test, RunOptions{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.ReportCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != res.ValuesReported {
		t.Fatalf("counts sum %d, values reported %d", total, res.ValuesReported)
	}
	// The minimal-subset selection concentrates reports: the most-reported
	// attribute in each clique carries disproportionately more than the
	// least (the paper's "few indicative nodes" effect).
	for _, members := range [][]int{{0, 1, 2}, {3, 4, 5}} {
		min, max := counts[members[0]], counts[members[0]]
		for _, m := range members[1:] {
			if counts[m] < min {
				min = counts[m]
			}
			if counts[m] > max {
				max = counts[m]
			}
		}
		if max == 0 {
			t.Fatalf("clique %v never reported", members)
		}
		if float64(max) < 1.2*float64(min) {
			t.Logf("clique %v counts fairly even (min %d max %d) — acceptable but unusual", members, min, max)
		}
	}
}

func TestReportedAtBounds(t *testing.T) {
	r := &Result{Dim: 2, ReportedAttrs: [][]int{{1}}}
	if !r.ReportedAt(0, 1) {
		t.Fatal("reported attribute not found")
	}
	if r.ReportedAt(0, 0) || r.ReportedAt(5, 1) || r.ReportedAt(-1, 1) {
		t.Fatal("out-of-range lookups must be false")
	}
}
