package core

import (
	"fmt"
	"math/rand"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/obs"
)

// LossyConfig parameterises the message-loss robustness extension (§6
// "Robustness to Message Loss"). Reports are dropped independently with
// LossRate; every HeartbeatEvery steps the source transmits all current
// values as a heartbeat, re-synchronising the replicas. Because the models
// are Markovian, conditioning both replicas on the full heartbeat makes the
// future independent of the divergent past — inconsistencies are transient.
type LossyConfig struct {
	// LossRate is the probability a report message never reaches the sink.
	LossRate float64
	// HeartbeatEvery triggers a full-value heartbeat each time this many
	// steps elapse; 0 disables heartbeats.
	HeartbeatEvery int
	// Seed drives the loss coin flips.
	Seed int64
}

// LossyKen runs the Ken protocol over an unreliable channel. The source
// conditions its replica on everything it sends (it cannot know what was
// lost); the sink conditions only on what arrives, so the replicas diverge
// until the next heartbeat. Run's audit counts the resulting ε violations.
type LossyKen struct {
	ken  *Ken
	cfg  LossyConfig
	rng  *rand.Rand
	step int

	// Heartbeats counts heartbeat rounds issued.
	Heartbeats int
	// LostMessages counts dropped report values.
	LostMessages int
}

var _ Scheme = (*LossyKen)(nil)

// NewLossyKen builds a Ken scheme (from kcfg) wrapped with loss injection.
func NewLossyKen(kcfg KenConfig, lcfg LossyConfig) (*LossyKen, error) {
	if lcfg.LossRate < 0 || lcfg.LossRate >= 1 {
		return nil, fmt.Errorf("core: loss rate %v outside [0,1)", lcfg.LossRate)
	}
	if lcfg.HeartbeatEvery < 0 {
		return nil, fmt.Errorf("core: negative heartbeat interval %d", lcfg.HeartbeatEvery)
	}
	if kcfg.Prob != nil {
		return nil, fmt.Errorf("core: probabilistic reporting and loss injection cannot be combined")
	}
	k, err := NewKen(kcfg)
	if err != nil {
		return nil, err
	}
	return &LossyKen{
		ken: k,
		cfg: lcfg,
		rng: rand.New(rand.NewSource(lcfg.Seed)),
	}, nil
}

// Name implements Scheme.
func (l *LossyKen) Name() string { return l.ken.name + "-lossy" }

// Dim implements Scheme.
func (l *LossyKen) Dim() int { return l.ken.n }

// Partition returns the wrapped scheme's Disjoint-Cliques partition.
func (l *LossyKen) Partition() *cliques.Partition { return l.ken.Partition() }

// BeginEpoch implements EpochScoped by forwarding the replay driver's
// epoch span to the wrapped scheme.
func (l *LossyKen) BeginEpoch(sp *obs.Span) { l.ken.BeginEpoch(sp) }

// Step implements Scheme.
func (l *LossyKen) Step(truth []float64) ([]float64, StepStats, error) {
	k := l.ken
	if len(truth) != k.n {
		return nil, StepStats{}, fmt.Errorf("core: truth dim %d, want %d", len(truth), k.n)
	}
	l.step++
	heartbeat := l.cfg.HeartbeatEvery > 0 && l.step%l.cfg.HeartbeatEvery == 0
	if heartbeat {
		l.Heartbeats++
		k.mHeartbeats.Inc()
		k.emitResync(int64(l.step))
	}

	est := make([]float64, k.n)
	var st StepStats
	for ci := range k.cliques {
		c := &k.cliques[ci]
		local := make([]float64, len(c.members))
		for i, g := range c.members {
			local[i] = truth[g]
		}
		c.src.Step()
		c.sink.Step()

		// Capture the sink replica's prediction before conditioning — under
		// loss the replicas diverge, so this is the sink's (possibly stale)
		// view the auditor compares against ground truth.
		var pred []float64
		if k.tracer != nil {
			pred = append([]float64(nil), c.sink.Mean()...)
		}

		var rep map[int]float64
		var err error
		if heartbeat {
			// Heartbeats carry every clique value and are delivered
			// reliably (acked end-to-end).
			rep = make(map[int]float64, len(local))
			for i, v := range local {
				rep[i] = v
			}
		} else {
			rep, err = model.ChooseReportGreedy(c.src, local, c.eps)
			if err != nil {
				return nil, StepStats{}, err
			}
		}

		// The source believes everything it sent.
		if err := c.src.Condition(rep); err != nil {
			return nil, StepStats{}, err
		}
		// The sink receives each value subject to loss (heartbeats exempt).
		// Loss coins are flipped in sorted attribute order so a fixed seed
		// reproduces the same loss pattern run after run.
		delivered := rep
		var lost []int
		if !heartbeat && l.cfg.LossRate > 0 {
			delivered = make(map[int]float64, len(rep))
			for _, i := range sortedReportKeys(rep) {
				if l.rng.Float64() < l.cfg.LossRate {
					l.LostMessages++
					k.mLostReports.Inc()
					lost = append(lost, c.members[i])
					continue
				}
				delivered[i] = rep[i]
			}
		}
		if err := c.sink.Condition(delivered); err != nil {
			return nil, StepStats{}, err
		}

		st.ValuesReported += len(rep)
		for i := range rep {
			st.Reported = append(st.Reported, c.members[i])
		}
		rs := k.observeClique(ci, c, rep, delivered, pred)
		if len(lost) > 0 && k.tracer != nil {
			ev := obs.Event{
				Type: obs.EvDrop, Step: k.stepN, Clique: ci, Node: c.root,
				Attrs: lost, Detail: "loss",
			}
			if rs.Active() {
				rs.Child().Emit(ev)
			} else {
				k.tracer.Emit(ev)
			}
		}
		st.IntraCost += c.intra
		st.Bytes += obs.WireBytesPerValue * len(rep)
		if k.top == nil {
			st.SinkCost += float64(len(rep))
		} else {
			st.SinkCost += float64(len(rep)) * k.top.CommToBase(c.root)
		}
		mean := c.sink.Mean()
		for i, g := range c.members {
			est[g] = mean[i]
		}
	}
	k.stepN++
	return est, st, nil
}
