package core

import (
	"fmt"
	"math"

	"ken/internal/obs"
)

// FailureDetector implements §6 "Detection of Node Failures": when the base
// station has not heard from a node (or clique) for a while, it must decide
// between "the data is simply within bounds" and "the node is dead". Ken's
// probabilistic machinery gives a principled answer: under the fitted
// model, a report arrives each step with probability ≈ rate, so a silence
// of s steps has probability (1 − rate)^s. The detector raises suspicion
// once that probability falls below alpha.
type FailureDetector struct {
	rate   float64
	alpha  float64
	silent int

	tracer    *obs.Tracer
	clique    int
	node      int
	steps     int64
	suspected bool
}

// NewFailureDetector builds a detector for a source whose expected per-step
// report probability is rate (e.g. the Monte Carlo m_C of the node's
// clique, capped at 1), with false-positive level alpha.
func NewFailureDetector(rate, alpha float64) (*FailureDetector, error) {
	if rate <= 0 || rate >= 1 {
		return nil, fmt.Errorf("core: report rate %v must be in (0,1)", rate)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v must be in (0,1)", alpha)
	}
	return &FailureDetector{rate: rate, alpha: alpha, clique: -1}, nil
}

// Instrument attaches protocol tracing for the clique/node this detector
// watches (clique -1 when the detector guards a single node): each time
// silence newly crosses the suspicion threshold, one EvSuspect event is
// emitted (N carries the silence length; the payload carries the silence
// probability against its alpha bound). Resolve the tracer once at setup,
// not per step.
func (d *FailureDetector) Instrument(tr *obs.Tracer, clique, node int) {
	d.tracer = tr
	d.clique = clique
	d.node = node
}

// Observe records whether a report arrived this step and returns true when
// the accumulated silence is too improbable for a live node.
func (d *FailureDetector) Observe(reported bool) bool {
	d.steps++
	if reported {
		d.silent = 0
		d.suspected = false
		return false
	}
	d.silent++
	s := d.Suspect()
	if s && !d.suspected {
		d.suspected = true
		if d.tracer != nil {
			d.tracer.Emit(obs.Event{
				Type: obs.EvSuspect, Step: d.steps - 1, Clique: d.clique, Node: d.node,
				N: d.silent,
				Payload: &obs.Payload{
					Observed: []float64{math.Pow(1-d.rate, float64(d.silent))},
					Eps:      []float64{d.alpha},
				},
			})
		}
	}
	return s
}

// Suspect reports the current verdict without consuming a step.
func (d *FailureDetector) Suspect() bool {
	return float64(d.silent)*math.Log1p(-d.rate) < math.Log(d.alpha)
}

// SilentSteps returns the length of the current silence run.
func (d *FailureDetector) SilentSteps() int { return d.silent }

// SilenceThreshold returns the smallest silence length that triggers
// suspicion — useful for documentation and tests. Suspect uses a strict
// inequality, so the threshold is the first integer strictly beyond the
// ratio log(alpha)/log1p(-rate): Floor(ratio)+1, not Ceil(ratio), which
// undercounts by one exactly when the ratio is integral.
func (d *FailureDetector) SilenceThreshold() int {
	return int(math.Floor(math.Log(d.alpha)/math.Log1p(-d.rate))) + 1
}
