package core

import (
	"fmt"
	"math"
)

// FailureDetector implements §6 "Detection of Node Failures": when the base
// station has not heard from a node (or clique) for a while, it must decide
// between "the data is simply within bounds" and "the node is dead". Ken's
// probabilistic machinery gives a principled answer: under the fitted
// model, a report arrives each step with probability ≈ rate, so a silence
// of s steps has probability (1 − rate)^s. The detector raises suspicion
// once that probability falls below alpha.
type FailureDetector struct {
	rate   float64
	alpha  float64
	silent int
}

// NewFailureDetector builds a detector for a source whose expected per-step
// report probability is rate (e.g. the Monte Carlo m_C of the node's
// clique, capped at 1), with false-positive level alpha.
func NewFailureDetector(rate, alpha float64) (*FailureDetector, error) {
	if rate <= 0 || rate >= 1 {
		return nil, fmt.Errorf("core: report rate %v must be in (0,1)", rate)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v must be in (0,1)", alpha)
	}
	return &FailureDetector{rate: rate, alpha: alpha}, nil
}

// Observe records whether a report arrived this step and returns true when
// the accumulated silence is too improbable for a live node.
func (d *FailureDetector) Observe(reported bool) bool {
	if reported {
		d.silent = 0
		return false
	}
	d.silent++
	return d.Suspect()
}

// Suspect reports the current verdict without consuming a step.
func (d *FailureDetector) Suspect() bool {
	return float64(d.silent)*math.Log1p(-d.rate) < math.Log(d.alpha)
}

// SilentSteps returns the length of the current silence run.
func (d *FailureDetector) SilentSteps() int { return d.silent }

// SilenceThreshold returns the smallest silence length that triggers
// suspicion — useful for documentation and tests.
func (d *FailureDetector) SilenceThreshold() int {
	return int(math.Ceil(math.Log(d.alpha) / math.Log1p(-d.rate)))
}
