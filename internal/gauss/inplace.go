package gauss

import (
	"fmt"

	"ken/internal/mat"
)

// Workspace holds the scratch storage for the in-place Gaussian updates
// Predict and ObserveExact. One workspace serves one Gaussian of dimension
// n; it is not safe for concurrent use and must never be shared between
// model replicas (a shared workspace would let one replica's update read
// the other's intermediates).
type Workspace struct {
	n    int
	all  []int      // 0..n-1, the full row index set
	mu   []float64  // n: predicted mean / conditioning adjustment
	w    []float64  // n: solve right-hand side
	col  []float64  // n: per-column solve scratch
	bb   *mat.Dense // m×m observed block Σ_bb
	s    *mat.Dense // n×m cross block Σ_{·,b}
	sol  *mat.Dense // m×n solved block Σ_bb⁻¹ Σ_{b,·}
	cov  *mat.Dense // n×n: A·Σ
	cov2 *mat.Dense // n×n: A·Σ·Aᵀ
	corr *mat.Dense // n×n: conditioning correction
	ch   *mat.Cholesky
}

// NewWorkspace allocates scratch for Gaussians of dimension n.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		n:    n,
		all:  identityIndex(n),
		mu:   make([]float64, n),
		w:    make([]float64, n),
		col:  make([]float64, n),
		bb:   mat.NewDense(n, n),
		s:    mat.NewDense(n, n),
		sol:  mat.NewDense(n, n),
		cov:  mat.NewDense(n, n),
		cov2: mat.NewDense(n, n),
		corr: mat.NewDense(n, n),
		ch:   mat.NewCholeskyWorkspace(n),
	}
}

// MeanInto copies the mean vector into dst without allocating.
//
//ken:hotpath copies into the caller's buffer
func (g *Gaussian) MeanInto(dst []float64) error {
	if len(dst) != len(g.mean) {
		return fmt.Errorf("gauss: MeanInto dst len %d, want %d", len(dst), len(g.mean))
	}
	copy(dst, g.mean)
	return nil
}

// Predict pushes the belief through the linear transition in place:
// μ ← A·μ, Σ ← A·Σ·Aᵀ + Q. aT must be the transpose of a (precomputed so
// the hot path does not allocate it). Arithmetic is bit-identical with the
// allocating sequence MulVec/Mul/Mul/AddMat/Symmetrize followed by New's
// symmetrisation: Symmetrize is bitwise idempotent, so symmetrising once
// here equals the old path's two passes.
//
//ken:hotpath the predict step runs against the workspace
func (g *Gaussian) Predict(a, aT, q *mat.Dense, ws *Workspace) error {
	n := len(g.mean)
	if ws.n != n {
		return fmt.Errorf("gauss: workspace dim %d, distribution dim %d", ws.n, n)
	}
	if err := a.MulVecInto(ws.mu, g.mean); err != nil {
		return err
	}
	if err := ws.cov.MulInto(a, g.cov); err != nil {
		return err
	}
	if err := ws.cov2.MulInto(ws.cov, aT); err != nil {
		return err
	}
	if err := g.cov.AddInto(ws.cov2, q); err != nil {
		return err
	}
	copy(g.mean, ws.mu)
	g.cov.Symmetrize()
	return nil
}

// ObserveExact collapses the belief on exact observations in place:
// variable idx[k] is observed at vals[k]. idx must be strictly increasing
// and in range — the sorted-key form of Condition's map argument. The
// observed variables become exact (zero variance); the kept block takes
// the conditional mean and covariance.
//
// The update is bit-identical with Condition followed by re-embedding the
// conditional into the full dimension (the sequence LinearGaussian used to
// run): identical submatrix extraction order, identical Cholesky with the
// same jitter ladder, identical solve and correction arithmetic, one
// Symmetrize on the embedded result. A non-PD observed block leaves the
// distribution unmodified, as before.
//
//ken:hotpath conditioning runs against the workspace
func (g *Gaussian) ObserveExact(idx []int, vals []float64, ws *Workspace) error {
	n := len(g.mean)
	if ws.n != n {
		return fmt.Errorf("gauss: workspace dim %d, distribution dim %d", ws.n, n)
	}
	m := len(idx)
	if len(vals) != m {
		return fmt.Errorf("gauss: ObserveExact has %d indices, %d values", m, len(vals))
	}
	prev := -1
	for _, i := range idx {
		if i < 0 || i >= n {
			return fmt.Errorf("gauss: condition index %d out of range %d", i, n)
		}
		if i <= prev {
			return fmt.Errorf("gauss: ObserveExact indices not strictly increasing at %d", i)
		}
		prev = i
	}
	if m == 0 {
		return nil
	}
	if m == n {
		// Every variable observed: the posterior is a point mass. No
		// factorisation — Condition's (nil, nil, nil) case never built one,
		// so heartbeat-style full observations work on singular covariances.
		copy(g.mean, vals)
		g.cov.ReuseAs(n, n)
		return nil
	}

	// Factorise Σ_bb before mutating anything: a non-PD observed block must
	// leave the distribution untouched.
	if err := ws.bb.SubmatrixInto(g.cov, idx, idx); err != nil {
		return err
	}
	if err := ws.ch.Factorize(ws.bb); err != nil {
		return fmt.Errorf("gauss: observed block not PD: %w", err)
	}

	// w = Σ_bb⁻¹ (x_b − μ_b)
	w := ws.w[:m]
	for k, i := range idx {
		w[k] = vals[k] - g.mean[i]
	}
	if err := ws.ch.SolveVecInPlace(w); err != nil {
		return err
	}

	// s = Σ_{·,b} over all n rows. Kept rows are Σ_ab; observed rows feed
	// adjustments that are overwritten by the exact values below, so
	// computing the full column block at once is safe.
	if err := ws.s.SubmatrixInto(g.cov, ws.all, idx); err != nil {
		return err
	}
	adj := ws.mu
	if err := ws.s.MulVecInto(adj, w); err != nil {
		return err
	}
	for i := range g.mean {
		g.mean[i] += adj[i]
	}
	for k, i := range idx {
		g.mean[i] = vals[k]
	}

	// sol = Σ_bb⁻¹ Σ_{b,·} column by column. Each column's solve is
	// independent, so the kept columns match Cholesky.Solve against Σ_baᵀ.
	ws.sol.ReuseAs(m, n)
	col := ws.col[:m]
	for j := 0; j < n; j++ {
		for k := 0; k < m; k++ {
			col[k] = ws.s.At(j, k)
		}
		if err := ws.ch.SolveVecInPlace(col); err != nil {
			return err
		}
		for k := 0; k < m; k++ {
			ws.sol.Set(k, j, col[k])
		}
	}
	// corr = Σ_{·,b} Σ_bb⁻¹ Σ_{b,·}; accumulate fully, subtract once —
	// incremental subtraction would reorder the floating-point sums.
	if err := ws.corr.MulInto(ws.s, ws.sol); err != nil {
		return err
	}
	if err := g.cov.SubInPlace(ws.corr); err != nil {
		return err
	}
	// Observed variables are exact: zero their rows and columns.
	for _, i := range idx {
		for j := 0; j < n; j++ {
			g.cov.Set(i, j, 0)
			g.cov.Set(j, i, 0)
		}
	}
	g.cov.Symmetrize()
	return nil
}
